// Package graphite is a from-scratch Go implementation of the
// interval-centric computing model (ICM) for distributed processing of
// temporal property graphs, reproducing "An Interval-centric Model for
// Distributed Computing over Temporal Graphs" (Gandhi & Simmhan, ICDE
// 2020).
//
// The package is a facade over the implementation packages:
//
//   - internal/interval — the time domain, half-open intervals, Allen
//     relations and interval sets;
//   - internal/tgraph — the temporal property graph model with the paper's
//     soundness constraints, plus text serialization;
//   - internal/warp — the time-warp and time-join operators;
//   - internal/core — the ICM runtime (interval vertices, partitioned
//     states, compute/scatter, warp combiners and warp suppression);
//   - internal/engine — the BSP substrate (workers, supersteps, combiners,
//     aggregators, master compute);
//   - internal/algorithms — the twelve TI and TD algorithms of the paper;
//   - internal/gen — synthetic dataset generators shaped like the paper's
//     six graphs;
//   - internal/bench — the experiment harness regenerating every table and
//     figure of the evaluation;
//   - internal/obs — observability: the metrics registry, typed
//     per-superstep trace events, and the JSONL/expvar/pprof sinks;
//   - internal/serve — the resident query service: a multi-graph JSON HTTP
//     server with admission control, result caching, singleflight dedup and
//     cancellable runs (cmd/graphite-serve is its daemon);
//   - internal/cluster — the crash-tolerant multi-process runtime: a
//     coordinator driving shard workers over framed TCP with heartbeats,
//     durable checkpoints and kill-9 rollback-and-replay recovery
//     (cmd/graphite-coordinator and cmd/graphite-worker are its daemons);
//   - internal/chaos — fault injection, from transport faults and scheduled
//     panics up to a process fleet that SIGKILLs and respawns real workers.
//
// A minimal program:
//
//	g := graphite.TransitExample()
//	r, err := graphite.RunSSSP(g, 0, 0, 4)
//	costs := graphite.SSSPCosts(r, 4) // per-arrival-interval travel costs
package graphite

import (
	"graphite/internal/algorithms"
	"graphite/internal/chaos"
	"graphite/internal/cluster"
	"graphite/internal/codec"
	"graphite/internal/core"
	"graphite/internal/engine"
	ival "graphite/internal/interval"
	"graphite/internal/obs"
	"graphite/internal/serve"
	"graphite/internal/stream"
	"graphite/internal/tgraph"
	"graphite/internal/warp"
)

// Time domain and intervals.
type (
	// Time is a discrete time-point.
	Time = ival.Time
	// Interval is a half-open time-interval [Start, End).
	Interval = ival.Interval
	// IntervalSet is a canonical set of time-points.
	IntervalSet = ival.Set
)

// Infinity is the unbounded future time-point.
const Infinity = ival.Infinity

// Interval constructors.
var (
	// NewInterval returns [start, end).
	NewInterval = ival.New
	// Point returns the unit interval [t, t+1).
	Point = ival.Point
	// From returns the unbounded interval [start, ∞).
	From = ival.From
	// Universe is [0, ∞).
	Universe = ival.Universe
)

// Temporal property graph model.
type (
	// Graph is an immutable temporal property graph.
	Graph = tgraph.Graph
	// GraphBuilder accumulates and validates a temporal graph.
	GraphBuilder = tgraph.Builder
	// VertexID identifies a vertex.
	VertexID = tgraph.VertexID
	// EdgeID identifies an edge.
	EdgeID = tgraph.EdgeID
	// Vertex is a temporal vertex.
	Vertex = tgraph.Vertex
	// Edge is a temporal edge.
	Edge = tgraph.Edge
	// MappedGraph is a Graph backed by a read-only memory mapping of a
	// snapshot (.gsn) file; Close releases the mapping (a no-op when
	// the graph was parsed into the heap).
	MappedGraph = tgraph.Mapped
)

// Graph construction and serialization.
var (
	// NewGraphBuilder returns an empty builder with capacity hints.
	NewGraphBuilder = tgraph.NewBuilder
	// ReadGraph parses the text format.
	ReadGraph = tgraph.Read
	// ReadGraphFile parses a graph file.
	ReadGraphFile = tgraph.ReadFile
	// WriteGraph serializes the text format.
	WriteGraph = tgraph.Write
	// WriteGraphFile serializes a graph to a file.
	WriteGraphFile = tgraph.WriteFile
	// TransitExample builds the paper's Fig. 1 transit network.
	TransitExample = tgraph.TransitExample
	// SliceGraph materializes the sub-graph restricted to a time window.
	SliceGraph = tgraph.Slice
	// OpenGraphFile loads a graph file in any format (text, binary or
	// snapshot), sniffing the magic header. Snapshots are memory-mapped;
	// other formats parse into the heap with a no-op Close.
	OpenGraphFile = tgraph.OpenAnyFile
	// WriteSnapshotFile serializes a graph in the mmap-able snapshot
	// format (DESIGN.md §17).
	WriteSnapshotFile = tgraph.WriteSnapshotFile
	// OpenSnapshot memory-maps a snapshot file, verifying every
	// section CRC; the adjacency and index arrays alias the mapping.
	OpenSnapshot = tgraph.OpenMapped
)

// Streaming ingestion: build temporal graphs from timestamped event logs.
type (
	// StreamEvent is one timestamped graph mutation.
	StreamEvent = stream.Event
	// StreamAccumulator folds events into a materializable graph.
	StreamAccumulator = stream.Accumulator
)

var (
	// NewStreamAccumulator returns an empty event accumulator.
	NewStreamAccumulator = stream.NewAccumulator
	// ReadEventLog parses a text event log into an accumulator.
	ReadEventLog = stream.ReadLog
)

// Interval-centric programming model.
type (
	// Program is the user-facing ICM contract (Init / Compute / Scatter).
	Program = core.Program
	// VertexCtx is the interval-vertex handle passed to user logic.
	VertexCtx = core.VertexCtx
	// OutMsg is a scatter-produced message.
	OutMsg = core.OutMsg
	// Options configures an ICM run.
	Options = core.Options
	// Result is an ICM run's outcome.
	Result = core.Result
	// PartitionedState is an interval vertex's dynamic state.
	PartitionedState = core.PartitionedState
)

// Run executes an ICM program over a temporal graph.
var Run = core.Run

// Message payload codecs — required by Options.PayloadCodec whenever a
// Transport is configured (batches must serialize to cross a wire).
type (
	// PayloadCodec encodes and decodes message payload values.
	PayloadCodec = codec.Payload
	// Int64Codec is the var-byte int64 payload codec.
	Int64Codec = codec.Int64
	// Float64Codec is the fixed 8-byte float64 payload codec.
	Float64Codec = codec.Float64
	// Int64SliceCodec is the length-prefixed []int64 payload codec.
	Int64SliceCodec = codec.Int64Slice
)

// Fault tolerance: transports, typed failures, and the injection harness.
type (
	// Transport ships encoded message batches between BSP workers.
	Transport = engine.Transport
	// TCPOptions tunes the loopback TCP mesh (IO timeouts, dial retry).
	TCPOptions = engine.TCPOptions
	// VertexPanicError reports a recovered user-program panic with the
	// vertex, superstep and stack that produced it.
	VertexPanicError = engine.VertexPanicError
	// ChaosTransportOptions schedules deterministic transport faults.
	ChaosTransportOptions = chaos.TransportOptions
	// PanicPlan schedules one injected user-program panic.
	PanicPlan = chaos.PanicPlan
)

var (
	// NewTCPTransport wires n workers into a loopback TCP mesh.
	NewTCPTransport = engine.NewTCPTransport
	// NewTCPTransportOpts is NewTCPTransport with explicit options.
	NewTCPTransportOpts = engine.NewTCPTransportOpts
	// NewChaosTransport builds an in-memory mesh with scheduled fault
	// injection (drops, corruption, duplication, delays).
	NewChaosTransport = chaos.NewTransport
	// NewFaultyProgram wraps a program to panic on schedule; use its Wrap
	// method as Options.WrapProgram.
	NewFaultyProgram = chaos.NewFaultyProgram
)

// ErrRecoveryExhausted wraps the run error once rollback-and-replay has hit
// the Options.MaxRecoveries budget.
var ErrRecoveryExhausted = engine.ErrRecoveryExhausted

// Scheduling: Options.Steal turns on the chunked work-stealing compute
// scheduler (results stay byte-identical; see DESIGN.md §13), and
// Options.Partitioner overrides the default index-modulo vertex placement.
var (
	// PartitionBalanced builds a skew-aware static partitioner: greedy
	// bin-packing of vertices onto workers by per-vertex work weights,
	// typically Graph.WorkWeights (Σ out-degree · lifespan length).
	PartitionBalanced = engine.PartitionBalanced
)

// DefaultStealChunk is the stealable chunk granularity used when
// Options.Steal is set and Options.StealChunk is zero.
const DefaultStealChunk = engine.DefaultStealChunk

// Observability: the metrics registry, the per-superstep trace stream and
// its sinks. Set Options.Tracer and/or Options.Registry to instrument a
// run; render or validate JSONL traces with the graphite-trace command or
// ParseTrace/ValidateTrace/Summarize here.
type (
	// Tracer receives typed per-superstep events from a run.
	Tracer = obs.Tracer
	// TraceEvent is one typed trace record.
	TraceEvent = obs.Event
	// MetricsRegistry is the named counter/gauge/histogram collection the
	// engine and the ICM runtime publish into.
	MetricsRegistry = obs.Registry
	// TraceRecorder keeps a run's events in memory.
	TraceRecorder = obs.Recorder
	// JSONLTracer streams events to a JSONL file or writer.
	JSONLTracer = obs.JSONLTracer
	// TraceSummary is a trace folded into per-superstep breakdown rows.
	TraceSummary = obs.Summary
)

var (
	// NewMetricsRegistry returns an empty metrics registry.
	NewMetricsRegistry = obs.NewRegistry
	// NewJSONLTracer streams trace events to a writer.
	NewJSONLTracer = obs.NewJSONLTracer
	// CreateJSONLTrace creates a JSONL trace file.
	CreateJSONLTrace = obs.CreateJSONLTrace
	// MultiTrace fans events out to several tracers.
	MultiTrace = func(ts ...obs.Tracer) obs.Tracer { return obs.MultiTracer(ts) }
	// ParseTrace reads a JSONL trace back into typed events.
	ParseTrace = obs.ParseTrace
	// ValidateTrace checks a trace's schema and totals reconciliation.
	ValidateTrace = obs.ValidateTrace
	// SummarizeTrace folds events into the per-superstep breakdown.
	SummarizeTrace = obs.Summarize
	// SplitTraceRuns splits a multi-run trace at each run_start.
	SplitTraceRuns = obs.SplitRuns
	// ServeDebug serves /debug/vars (with the registry under "graphite")
	// and /debug/pprof on addr until the returned server is closed.
	ServeDebug = obs.ServeDebug
)

// Time-warp operators.
type (
	// WarpTuple is one output triple of the warp operator.
	WarpTuple = warp.Tuple
	// WarpInput pairs an interval with a value.
	WarpInput = warp.IntervalValue
)

var (
	// Warp computes the time-warp of two interval/value sets.
	Warp = warp.Warp
	// WarpCombined is Warp with an inline combiner.
	WarpCombined = warp.WarpCombined
	// TimeJoin computes the temporal natural join.
	TimeJoin = warp.TimeJoin
)

// The twelve algorithms of the paper, ready to run.
var (
	// RunBFS runs time-independent breadth-first search.
	RunBFS = algorithms.RunBFS
	// RunWCC runs weakly connected components.
	RunWCC = algorithms.RunWCC
	// RunSCC runs strongly connected components.
	RunSCC = algorithms.RunSCC
	// RunPageRank runs PageRank with a fixed iteration budget.
	RunPageRank = algorithms.RunPageRank
	// RunSSSP runs temporal single-source shortest path (Alg. 1).
	RunSSSP = algorithms.RunSSSP
	// RunEAT runs earliest arrival time.
	RunEAT = algorithms.RunEAT
	// RunFAST runs the fastest-journey algorithm.
	RunFAST = algorithms.RunFAST
	// RunLD runs latest departure (reverse traversal).
	RunLD = algorithms.RunLD
	// RunTMST runs the time-minimum spanning tree.
	RunTMST = algorithms.RunTMST
	// RunRH runs time-respecting reachability.
	RunRH = algorithms.RunRH
	// RunLCC runs the temporal local clustering coefficient.
	RunLCC = algorithms.RunLCC
	// RunTC runs temporal triangle counting.
	RunTC = algorithms.RunTC
	// RunFFM runs temporal feed-forward motif counting (an extension: the
	// transaction-network pattern the paper's introduction motivates).
	RunFFM = algorithms.RunFFM
)

// AlgorithmParams parameterizes the algorithm catalog: source/target
// vertices, start time, deadline and iteration budget (zero values pick
// sensible defaults).
type AlgorithmParams = algorithms.Params

var (
	// NewAlgorithm builds a named catalog algorithm ("bfs", "sssp", ...)
	// with its canonical Options — the seam for attaching Options.Tracer or
	// Options.Registry to a packaged algorithm before graphite.Run.
	NewAlgorithm = algorithms.New
	// AlgorithmNames lists the catalog names.
	AlgorithmNames = algorithms.Names
)

// Result decoders.
var (
	// SSSPCosts decodes per-arrival-interval travel costs.
	SSSPCosts = algorithms.SSSPCosts
	// BFSLevels decodes per-interval BFS levels.
	BFSLevels = algorithms.BFSLevels
	// WCCLabels decodes per-interval component labels.
	WCCLabels = algorithms.WCCLabels
	// SCCLabels decodes per-interval strongly-connected components.
	SCCLabels = algorithms.SCCLabels
	// EarliestArrival returns a vertex's earliest arrival time.
	EarliestArrival = algorithms.EarliestArrival
	// FastestDuration returns a vertex's fastest journey duration.
	FastestDuration = algorithms.FastestDuration
	// LatestDeparture returns a vertex's latest valid departure.
	LatestDeparture = algorithms.LatestDeparture
	// Reachable reports time-respecting reachability.
	Reachable = algorithms.Reachable
	// TMSTTree extracts the earliest-arrival tree.
	TMSTTree = algorithms.TMSTTree
	// TriangleTotal counts directed 3-cycles at a time-point.
	TriangleTotal = algorithms.TriangleTotal
	// Coefficient returns a vertex's clustering coefficient at a time-point.
	Coefficient = algorithms.Coefficient
	// FFMTotal counts feed-forward motifs across the graph.
	FFMTotal = algorithms.FFMTotal
)

// Unreachable is the sentinel cost/time for vertices no journey reaches.
const Unreachable = algorithms.Unreachable

// The serving layer: a resident query service over pre-loaded temporal
// graphs. Build one with NewQueryServer, mount QueryServer.Handler on any
// net/http server (cmd/graphite-serve is the packaged daemon), stop with
// Drain then Close.
type (
	// QueryServer is a resident temporal graph query service with admission
	// control, an LRU result cache, singleflight dedup of identical in-flight
	// requests, and cooperative run cancellation.
	QueryServer = serve.Server
	// QueryServerConfig parameterizes a QueryServer.
	QueryServerConfig = serve.Config
	// QueryRequest is one run request against a served graph.
	QueryRequest = serve.RunRequest
	// QueryResult is a served run outcome.
	QueryResult = serve.RunResult
	// QueryWindow restricts a request to a time window.
	QueryWindow = serve.Window
	// QueryJob is the API view of an asynchronous run.
	QueryJob = serve.JobView
)

var (
	// NewQueryServer builds a query service over pre-loaded graphs.
	NewQueryServer = serve.New
	// QueryFingerprint is the canonical cache key of a (graph, algorithm,
	// params, window) request; semantically identical requests share it.
	QueryFingerprint = serve.Fingerprint
	// FormatResult renders a run's per-vertex states exactly as
	// cmd/graphite-run prints them.
	FormatResult = serve.FormatResult
)

// Typed serving errors, and the engine-level cancellation sentinel every
// aborted run (deadline, disconnect, shutdown) surfaces.
var (
	// ErrRunCanceled marks a run aborted at a superstep barrier by its
	// context, distinct from every fault-tolerance error.
	ErrRunCanceled = engine.ErrCanceled
	// ErrServerBusy is the admission-control rejection (HTTP 429).
	ErrServerBusy = serve.ErrBusy
	// ErrServerDraining rejects new work during graceful shutdown (503).
	ErrServerDraining = serve.ErrDraining
)

// The cluster runtime: a coordinator process drives worker processes over
// framed TCP — shard assignment, distributed superstep barriers, heartbeat
// leases, durable checkpoints, and rollback-and-replay recovery that
// survives kill -9 with bit-identical results (DESIGN.md §14).
type (
	// ClusterCoordinator registers workers, drives supersteps and recovers
	// from worker deaths. Create with NewClusterCoordinator, run with Serve.
	ClusterCoordinator = cluster.Coordinator
	// ClusterConfig parameterizes a cluster run (graph spec, algorithm,
	// checkpoint cadence, lease, recovery budgets).
	ClusterConfig = cluster.Config
	// ClusterReport summarizes a finished cluster run, recoveries included.
	ClusterReport = cluster.Report
	// ClusterRecoveryInfo describes one rollback-and-replay cycle: detection
	// latency, MTTR, replayed supersteps, restored checkpoint bytes.
	ClusterRecoveryInfo = cluster.RecoveryInfo
	// ClusterStats is the coordinator's point-in-time readiness view.
	ClusterStats = cluster.Stats
	// ClusterWorkerConfig parameterizes one worker process.
	ClusterWorkerConfig = cluster.WorkerConfig
	// CrashPlan plants a self-SIGKILL at a phase:superstep point (the
	// fault-injection contract of the kill-9 tests and GRAPHITE_CRASH).
	CrashPlan = cluster.CrashPlan
	// CheckpointStore is the durable, CRC-verified, generation-versioned
	// on-disk checkpoint store workers persist their shard state into.
	CheckpointStore = engine.CheckpointStore
	// CheckpointMeta describes one stored checkpoint generation.
	CheckpointMeta = engine.CheckpointMeta
	// WorkerFleet supervises real worker child processes and respawns the
	// ones that die uncleanly — the process-level chaos harness.
	WorkerFleet = chaos.Fleet
	// WorkerFleetConfig parameterizes a WorkerFleet.
	WorkerFleetConfig = chaos.FleetConfig
)

var (
	// NewClusterCoordinator validates a ClusterConfig and builds the
	// coordinator; Serve on a listener runs the cluster to completion.
	NewClusterCoordinator = cluster.New
	// RunClusterWorker dials a coordinator and works until the run ends.
	RunClusterWorker = cluster.RunWorker
	// ParseCrashPlan parses "phase:superstep" (compute, checkpoint, barrier).
	ParseCrashPlan = cluster.ParseCrashPlan
	// OpenCheckpointStore opens (or creates) a checkpoint directory.
	OpenCheckpointStore = engine.OpenCheckpointStore
	// RetryDelay is the jittered capped-exponential backoff schedule shared
	// by transport dialing and the cluster worker's coordinator dial.
	RetryDelay = engine.RetryDelay
	// StartWorkerFleet spawns supervised worker child processes;
	// RunChildWorker must be called first thing in the binary's main.
	StartWorkerFleet = chaos.StartFleet
	// RunChildWorker turns a re-executed binary into a cluster worker when
	// the fleet's environment marker is present, and returns otherwise.
	RunChildWorker = chaos.RunChildWorker
)
