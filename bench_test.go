// Benchmarks regenerating the paper's tables and figures as testing.B
// targets, one per artifact (see DESIGN.md's experiment index). Each runs
// the corresponding internal/bench experiment at a benchmark-friendly scale;
// use cmd/graphite-bench for the full-scale renderings recorded in
// EXPERIMENTS.md.
package graphite_test

import (
	"testing"

	"graphite/internal/bench"
	"graphite/internal/gen"
)

// benchConfig is the shared scaled-down configuration.
func benchConfig() bench.Config {
	cfg := bench.DefaultConfig()
	cfg.Scale = 0.25
	cfg.Workers = 4
	cfg.PRIterations = 5
	return cfg
}

// BenchmarkTable1Datasets measures dataset generation plus the Table 1
// characteristics scan.
func BenchmarkTable1Datasets(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatalf("want 6 rows, got %d", len(rows))
		}
	}
}

// BenchmarkTable2Speedups measures the full platform×algorithm×graph matrix
// behind Table 2 (and Figs. 4-5), on a two-algorithm slice.
func BenchmarkTable2Speedups(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		cells, err := bench.RunMatrix(cfg, []bench.Algo{bench.BFS, bench.SSSP})
		if err != nil {
			b.Fatal(err)
		}
		if rows := bench.Table2(cells); len(rows) == 0 {
			b.Fatal("no speedup rows")
		}
	}
}

// BenchmarkFig4Correlation measures the count/time correlation derivation.
func BenchmarkFig4Correlation(b *testing.B) {
	cfg := benchConfig()
	cells, err := bench.RunMatrix(cfg, []bench.Algo{bench.BFS, bench.SSSP})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := bench.Fig4(cells)
		if r.Points == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkFig5PerAlgorithm measures single (platform, algorithm, graph)
// cells: the unit of Fig. 5.
func BenchmarkFig5PerAlgorithm(b *testing.B) {
	cfg := benchConfig()
	ds, err := bench.Datasets(cfg)
	if err != nil {
		b.Fatal(err)
	}
	twitter := ds[3].Graph
	for _, al := range []bench.Algo{bench.BFS, bench.PR, bench.SSSP, bench.TC} {
		for _, pl := range bench.PlatformsFor(al) {
			b.Run(string(al)+"/"+string(pl), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := bench.Run(cfg, pl, al, twitter); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig6aMemory measures the representation footprint comparison.
func BenchmarkFig6aMemory(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig6a(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatal("want 6 rows")
		}
	}
}

// BenchmarkFig6bCombiner measures the warp-combiner ablation.
func BenchmarkFig6bCombiner(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig6b(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6cSuppression measures the warp-suppression ablation.
func BenchmarkFig6cSuppression(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig6c(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7WeakScaling measures the weak-scaling sweep at 1-4 workers.
func BenchmarkFig7WeakScaling(b *testing.B) {
	cfg := benchConfig()
	cfg.Scale = 0.1
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig7(cfg, []int{1, 2, 4}, []bench.Algo{bench.BFS, bench.SSSP}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMsgEncoding measures the var-byte interval message experiment.
func BenchmarkMsgEncoding(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := bench.MsgSize(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoCTable measures the lines-of-code derivation.
func BenchmarkLoCTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.LoCTable()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no loc rows")
		}
	}
}

// BenchmarkWarpOperator isolates the warp operator itself on a realistic
// per-vertex workload: 4 state partitions, 32 overlapping messages.
func BenchmarkWarpOperator(b *testing.B) {
	g, err := gen.Generate(gen.TwitterLike(0.5), 42)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("ICM-SSSP-twitter", func(b *testing.B) {
		cfg := benchConfig()
		for i := 0; i < b.N; i++ {
			if _, err := bench.Run(cfg, bench.ICM, bench.SSSP, g); err != nil {
				b.Fatal(err)
			}
		}
	})
}
