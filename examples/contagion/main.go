// Contagion tracing: time-respecting reachability as an epidemic model.
// Contacts are temporal edges (who met whom, when); an infection starting at
// patient zero can only travel along time-respecting paths. RH gives the
// exposed set, EAT the infection wave front, and the TMST the most likely
// transmission tree.
package main

import (
	"fmt"

	"graphite/internal/algorithms"
	"graphite/internal/gen"
	ival "graphite/internal/interval"
)

func main() {
	profile := gen.Tiny("contacts", 400, 6, 24, gen.MixedLife)
	g, err := gen.Generate(profile, 3)
	if err != nil {
		panic(err)
	}
	patientZero := g.VertexAt(0).ID
	fmt.Printf("contact network: %v over %d days\n", g, g.SnapshotCount())
	fmt.Printf("patient zero: %d, infectious from day 0\n\n", patientZero)

	// Who is ever exposed?
	rh, err := algorithms.RunRH(g, patientZero, 0, 0)
	if err != nil {
		panic(err)
	}
	exposed := 0
	for i := 0; i < g.NumVertices(); i++ {
		if algorithms.Reachable(rh, g.VertexAt(i).ID) {
			exposed++
		}
	}
	fmt.Printf("exposed individuals: %d / %d\n", exposed, g.NumVertices())

	// Infection wave: cumulative infections per day via earliest exposure.
	eat, err := algorithms.RunEAT(g, patientZero, 0, 0)
	if err != nil {
		panic(err)
	}
	wave := make([]int, g.Horizon()+1)
	for i := 0; i < g.NumVertices(); i++ {
		if a := algorithms.EarliestArrival(eat, g.VertexAt(i).ID); a != algorithms.Unreachable {
			day := ival.Time(a)
			if day > g.Horizon() {
				day = g.Horizon()
			}
			wave[day]++
		}
	}
	fmt.Println("\ncumulative infections by day:")
	cum := 0
	for day, n := range wave {
		cum += n
		if n > 0 {
			fmt.Printf("  day %2d: +%d (total %d)\n", day, n, cum)
		}
	}

	// Transmission tree: the earliest-arrival spanning tree.
	tmst, err := algorithms.RunTMST(g, patientZero, 0, 0)
	if err != nil {
		panic(err)
	}
	tree := algorithms.TMSTTree(tmst)
	fmt.Printf("\ntransmission tree: %d infections traced\n", len(tree))
	shown := 0
	for _, te := range tree {
		fmt.Printf("  %d infected %d on day %d\n", te.Parent, te.Vertex, te.Arrival)
		if shown++; shown == 8 {
			fmt.Printf("  ... and %d more\n", len(tree)-shown)
			break
		}
	}
}
