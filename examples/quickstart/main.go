// Quickstart: the paper's running example. Builds the transit network of
// Fig. 1(a) and runs temporal SSSP from stop A at time 0 (Alg. 1),
// reproducing the partitioned states of Fig. 2: the minimum travel cost to
// every stop, per interval of arrival time.
package main

import (
	"fmt"

	"graphite/internal/algorithms"
	"graphite/internal/tgraph"
)

func main() {
	g := tgraph.TransitExample()
	fmt.Println("transit network:", g)
	fmt.Println("running temporal SSSP from A at time 0 ...")

	r, err := algorithms.RunSSSP(g, 0, 0, 4)
	if err != nil {
		panic(err)
	}

	fmt.Println("\ncheapest time-respecting journeys from A:")
	for i := 0; i < g.NumVertices(); i++ {
		id := g.VertexAt(i).ID
		name := tgraph.TransitVertexName(id)
		costs := algorithms.SSSPCosts(r, id)
		if len(costs) == 0 {
			fmt.Printf("  %s: unreachable\n", name)
			continue
		}
		fmt.Printf("  %s:", name)
		for _, c := range costs {
			fmt.Printf("  cost %d when arriving in %v", c.Value, c.Interval)
		}
		fmt.Println()
	}

	fmt.Printf("\nthe paper counts 7 interval-vertex visits and 6 edge traversals for this example:\n")
	fmt.Printf("  interval-vertex visits (post-warp compute tuples): %d (incl. %d no-op superstep-1 calls)\n",
		r.Stats.ActiveIntervals, g.NumVertices())
	fmt.Printf("  messages sent: %d\n", r.Metrics.Messages)
	fmt.Printf("  supersteps: %d\n", r.Metrics.Supersteps)
}
