// Streaming ingestion: temporal graphs usually arrive as event logs, not as
// finished interval graphs. This example feeds a timestamped contact log
// into the stream accumulator, materializes the interval graph at two
// different cut-off points, and watches how the answer to a temporal query
// ("who can patient zero have infected so far?") evolves as events arrive.
package main

import (
	"fmt"
	"strings"

	"graphite"
)

// contactLog is a tiny hand-written event stream: people appear, meet for
// bounded intervals, and the meetings carry transmission properties.
const contactLog = `
# day 0: the household
av 0 1
av 0 2
av 0 3
ae 0 100 1 2
ep 0 100 travel-time 1
ep 0 100 travel-cost 1
# day 2: the office appears
av 2 4
av 2 5
ae 2 101 2 4
ep 2 101 travel-time 1
ep 2 101 travel-cost 1
re 3 100
# day 5: a dinner party
ae 5 102 4 5
ep 5 102 travel-time 1
ep 5 102 travel-cost 1
re 6 101
ae 6 103 5 3
ep 6 103 travel-time 1
ep 6 103 travel-cost 1
re 8 102
re 9 103
`

func main() {
	acc := graphite.NewStreamAccumulator()
	if err := graphite.ReadEventLog(strings.NewReader(contactLog), acc); err != nil {
		panic(err)
	}
	fmt.Printf("ingested %d events up to day %d\n\n", acc.Events(), acc.Now())

	// Materialize the fully evolved graph and trace the infection.
	g, err := acc.Graph(10)
	if err != nil {
		panic(err)
	}
	fmt.Printf("materialized %v\n", g)

	eat, err := graphite.RunEAT(g, 1, 0, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nearliest possible exposure (patient zero = 1, infectious from day 0):")
	for id := graphite.VertexID(1); id <= 5; id++ {
		if at := graphite.EarliestArrival(eat, id); at != graphite.Unreachable {
			fmt.Printf("  person %d: day %d\n", id, at)
		} else {
			fmt.Printf("  person %d: never\n", id)
		}
	}

	// The same query over only the first week, via temporal slicing.
	week, err := graphite.SliceGraph(g, graphite.NewInterval(0, 6))
	if err != nil {
		panic(err)
	}
	eat, err = graphite.RunEAT(week, 1, 0, 2)
	if err != nil {
		panic(err)
	}
	exposed := 0
	for id := graphite.VertexID(1); id <= 5; id++ {
		if graphite.EarliestArrival(eat, id) != graphite.Unreachable {
			exposed++
		}
	}
	fmt.Printf("\nwithin the first 6 days only %d of 5 people are exposed\n", exposed)
}
