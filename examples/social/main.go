// Social network analytics over time: PageRank, weakly connected components
// and triangle structure on a Twitter-like temporal graph, read per interval
// from the partitioned vertex states — one ICM run per analytic instead of
// one run per snapshot.
package main

import (
	"fmt"
	"sort"

	"graphite/internal/algorithms"
	"graphite/internal/gen"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

func main() {
	g, err := gen.Generate(gen.TwitterLike(0.25), 11)
	if err != nil {
		panic(err)
	}
	fmt.Printf("social graph: %v over %d time-points\n\n", g, g.SnapshotCount())

	// PageRank: one interval-centric run answers "who mattered when".
	pr, err := algorithms.RunPageRank(g, 10, 0)
	if err != nil {
		panic(err)
	}
	probe := []ival.Time{0, g.Horizon() / 2, g.Horizon() - 1}
	for _, t := range probe {
		type vr struct {
			id   tgraph.VertexID
			rank float64
		}
		var ranked []vr
		for i := 0; i < g.NumVertices(); i++ {
			if x, ok := pr.State(i).Get(t); ok {
				ranked = append(ranked, vr{g.VertexAt(i).ID, x.(float64)})
			}
		}
		sort.Slice(ranked, func(a, b int) bool { return ranked[a].rank > ranked[b].rank })
		fmt.Printf("top accounts at t=%d:", t)
		for _, r := range ranked[:3] {
			fmt.Printf("  #%d (%.4f)", r.id, r.rank)
		}
		fmt.Println()
	}

	// Connectivity over time: how fragmented is each snapshot?
	wcc, err := algorithms.RunWCC(g, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("\ncommunities (weak components) over time:")
	for _, t := range probe {
		comps := map[int64]bool{}
		for i := 0; i < g.NumVertices(); i++ {
			if x, ok := wcc.State(i).Get(t); ok {
				comps[x.(int64)] = true
			}
		}
		fmt.Printf("  t=%d: %d components\n", t, len(comps))
	}

	// Triangle structure: cohesion of the network per time-point.
	tc, err := algorithms.RunTC(g, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("\ndirected triangles over time:")
	for _, t := range probe {
		fmt.Printf("  t=%d: %d\n", t, algorithms.TriangleTotal(tc, t))
	}
	fmt.Printf("\nPR run cost: %v\n", pr.Metrics)
}
