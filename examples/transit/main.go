// Transit journey planner: the motivating workload of the paper's
// introduction. Generates a road network in the USRN mold (static planar
// topology, time-varying travel times and costs) and answers the classic
// time-dependent queries between two junctions: earliest arrival (EAT),
// cheapest journey per arrival interval (SSSP), fastest journey (FAST) and
// latest safe departure (LD).
package main

import (
	"fmt"

	"graphite/internal/algorithms"
	"graphite/internal/gen"
	ival "graphite/internal/interval"
)

func main() {
	profile := gen.USRNLike(0.5)
	g, err := gen.Generate(profile, 7)
	if err != nil {
		panic(err)
	}
	fmt.Printf("road network: %v, %d time-points of traffic data\n", g, g.SnapshotCount())

	src := g.VertexAt(0).ID

	// Destination: the farthest junction still reachable when leaving at 0.
	eat, err := algorithms.RunEAT(g, src, 0, 0)
	if err != nil {
		panic(err)
	}
	dst, bestArr := src, int64(-1)
	for i := 0; i < g.NumVertices(); i++ {
		id := g.VertexAt(i).ID
		if a := algorithms.EarliestArrival(eat, id); a != algorithms.Unreachable && a > bestArr {
			dst, bestArr = id, a
		}
	}
	fmt.Printf("planning journeys from junction %d to junction %d\n\n", src, dst)
	fmt.Printf("earliest arrival leaving at t=0: t=%d\n", bestArr)

	sssp, err := algorithms.RunSSSP(g, src, 0, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("cheapest journey per arrival window:")
	for _, c := range algorithms.SSSPCosts(sssp, dst) {
		fmt.Printf("  arrive within %v at toll cost %d\n", c.Interval, c.Value)
	}

	fast, err := algorithms.RunFAST(g, src, 0, 0)
	if err != nil {
		panic(err)
	}
	if d := algorithms.FastestDuration(fast, dst); d == algorithms.Unreachable {
		fmt.Println("fastest journey: none")
	} else {
		fmt.Printf("fastest door-to-door duration (any departure): %d time units\n", d)
	}

	deadline := g.Horizon()
	ld, err := algorithms.RunLD(g, dst, deadline, 0)
	if err != nil {
		panic(err)
	}
	if d := algorithms.LatestDeparture(ld, src); d < 0 {
		fmt.Printf("latest departure to arrive before t=%d: impossible\n", deadline)
	} else {
		fmt.Printf("latest departure from %d to arrive before t=%d: t=%d\n", src, deadline, d)
	}

	// How many junctions are reachable at all, and how does the reachable
	// set grow with the departure time?
	fmt.Println("\nreachable junctions by departure time:")
	for _, t0 := range []ival.Time{0, g.Horizon() / 2} {
		rh, err := algorithms.RunRH(g, src, t0, 0)
		if err != nil {
			panic(err)
		}
		n := 0
		for i := 0; i < g.NumVertices(); i++ {
			if algorithms.Reachable(rh, g.VertexAt(i).ID) {
				n++
			}
		}
		fmt.Printf("  departing at t=%d: %d / %d junctions\n", t0, n, g.NumVertices())
	}
}
