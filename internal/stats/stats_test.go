package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestR2LogLogPerfectFit(t *testing.T) {
	// y = 3x² is a perfect line in log space.
	var xs, ys []float64
	for x := 1.0; x <= 64; x *= 2 {
		xs = append(xs, x)
		ys = append(ys, 3*x*x)
	}
	if r2 := R2LogLog(xs, ys); math.Abs(r2-1) > 1e-12 {
		t.Errorf("perfect fit R2 = %v, want 1", r2)
	}
}

func TestR2LogLogNoise(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16, 32}
	ys := []float64{5, 1, 9, 2, 7, 3} // uncorrelated
	r2 := R2LogLog(xs, ys)
	if r2 < 0 || r2 > 0.5 {
		t.Errorf("noise R2 = %v, want small", r2)
	}
}

func TestR2SkipsNonPositive(t *testing.T) {
	xs := []float64{0, -1, 2, 4}
	ys := []float64{1, 1, 4, 16}
	if r2 := R2LogLog(xs, ys); math.Abs(r2-1) > 1e-12 {
		t.Errorf("R2 with skipped points = %v, want 1", r2)
	}
	if r2 := R2LogLog([]float64{1}, []float64{2}); r2 != 0 {
		t.Errorf("single point R2 = %v, want 0", r2)
	}
}

func TestGeoMeanAndMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4, 16}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean = %v, want 4", g)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{1, -1}) != 0 {
		t.Errorf("degenerate geomean should be 0")
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("mean = %v, want 2", m)
	}
	if Mean(nil) != 0 {
		t.Errorf("empty mean should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Header: []string{"Name", "Value"}}
	tab.Add("alpha", 1)
	tab.Add("b", 3.14159)
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header+sep+2 rows, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[3], "3.14") {
		t.Errorf("rows wrong:\n%s", out)
	}
	// Columns align: both data rows start their second column at the same
	// offset.
	if strings.Index(lines[2], "1") != strings.Index(lines[3], "3.14") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}
