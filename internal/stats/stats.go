// Package stats provides the small statistical and formatting helpers the
// experiment harness uses: coefficients of determination for the Fig. 4
// correlation claim, geometric means for speedup tables, and plain-text
// table rendering.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// R2LogLog returns the coefficient of determination of a linear fit on
// (log x, log y); the paper reports R² = 0.80 for compute calls vs compute+
// time and 0.95 for messages vs messaging time on such a log-log scatter.
// Points with non-positive coordinates are skipped.
func R2LogLog(xs, ys []float64) float64 {
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	return r2(lx, ly)
}

// r2 computes the ordinary-least-squares R² of y on x.
func r2(x, y []float64) float64 {
	n := float64(len(x))
	if n < 2 {
		return 0
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return (sxy * sxy) / (sxx * syy)
}

// GeoMean returns the geometric mean of positive values (zero otherwise).
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}

// Mean returns the arithmetic mean.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// Table renders rows of cells as a fixed-width text table.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row; values are stringified with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
