package stream

import (
	"bytes"
	"errors"
	"testing"

	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// marshalFixture drives an accumulator into a state exercising every
// marshaled structure: closed and open spans, closed property entries,
// running values on both vertices and edges.
func marshalFixture(t *testing.T) *Accumulator {
	t.Helper()
	a := NewAccumulator()
	evs := []Event{
		{Op: AddVertex, T: 0, V: 1},
		{Op: AddVertex, T: 0, V: 2},
		{Op: AddVertex, T: 1, V: 30},
		{Op: SetVertexProp, T: 2, V: 1, Label: "color", Value: 7},
		{Op: AddEdge, T: 3, E: 100, Src: 1, Dst: 2},
		{Op: SetEdgeProp, T: 3, E: 100, Label: tgraph.PropTravelTime, Value: 1},
		{Op: SetEdgeProp, T: 4, E: 100, Label: tgraph.PropTravelCost, Value: 9},
		{Op: SetVertexProp, T: 5, V: 1, Label: "color", Value: 8}, // closes the first run
		{Op: AddEdge, T: 6, E: 101, Src: 2, Dst: 30},
		{Op: RemoveEdge, T: 7, E: 101}, // closed edge span
		{Op: RemoveVertex, T: 8, V: 30},
		{Op: SetEdgeProp, T: 9, E: 100, Label: tgraph.PropTravelCost, Value: 11},
	}
	for _, ev := range evs {
		if err := a.Apply(ev); err != nil {
			t.Fatalf("apply %+v: %v", ev, err)
		}
	}
	return a
}

func TestAccumulatorMarshalRoundTrip(t *testing.T) {
	a := marshalFixture(t)
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic bytes.
	again, _ := a.MarshalBinary()
	if !bytes.Equal(data, again) {
		t.Fatal("marshal is not deterministic")
	}
	b, err := UnmarshalAccumulator(data)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if b.Events() != a.Events() || b.Now() != a.Now() {
		t.Fatalf("clock state lost: events %d/%d now %d/%d", b.Events(), a.Events(), b.Now(), a.Now())
	}

	// Identical materialization at several horizons, including unbounded.
	for _, horizon := range []ival.Time{0, 10, 100} {
		ga, errA := a.Graph(horizon)
		gb, errB := b.Graph(horizon)
		if errA != nil || errB != nil {
			t.Fatalf("materialize at %d: %v / %v", horizon, errA, errB)
		}
		if err := tgraph.Equal(ga, gb); err != nil {
			t.Fatalf("graphs at horizon %d diverge: %v", horizon, err)
		}
	}

	// Identical behavior under further ingest: apply the same tail to both.
	tail := []Event{
		{Op: SetVertexProp, T: 12, V: 1, Label: "color", Value: 9},
		{Op: AddEdge, T: 13, E: 102, Src: 2, Dst: 1},
		{Op: RemoveEdge, T: 14, E: 102},
	}
	for _, ev := range tail {
		if errA, errB := a.Apply(ev), b.Apply(ev); (errA == nil) != (errB == nil) {
			t.Fatalf("apply divergence on %+v: %v vs %v", ev, errA, errB)
		}
	}
	ga, errA := a.Graph(20)
	gb, errB := b.Graph(20)
	if errA != nil || errB != nil {
		t.Fatalf("post-tail materialize: %v / %v", errA, errB)
	}
	if err := tgraph.Equal(ga, gb); err != nil {
		t.Fatalf("post-tail graphs diverge: %v", err)
	}
}

func TestUnmarshalAccumulatorRejectsCorruption(t *testing.T) {
	a := marshalFixture(t)
	data, _ := a.MarshalBinary()
	for cut := 0; cut < len(data); cut += 3 {
		if _, err := UnmarshalAccumulator(data[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		} else if !errors.Is(err, ErrStateCorrupt) {
			t.Fatalf("truncation to %d: untyped error %v", cut, err)
		}
	}
	// Future version.
	bad := append([]byte{accStateVersion + 1}, data[1:]...)
	if _, err := UnmarshalAccumulator(bad); !errors.Is(err, ErrStateCorrupt) {
		t.Fatalf("future state version: %v", err)
	}
}
