package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// Accumulator state serialization: the live-graph WAL compactor embeds a
// marshaled accumulator in each snapshot so recovery can resume ingest
// exactly where the snapshot left off — open spans, running property
// values and the event clock all survive — without replaying the
// compacted prefix of the log.
//
// The encoding is deterministic (all maps are emitted in sorted key
// order) and versioned; it is a plain varint stream, no framing, so the
// embedding container is responsible for integrity (the snapshot format's
// section CRCs, in the live-graph case).

// ErrStateCorrupt reports a marshaled accumulator that cannot be decoded.
var ErrStateCorrupt = errors.New("stream: corrupt accumulator state")

const accStateVersion = 1

// MarshalBinary serializes the accumulator's complete ingest state.
func (a *Accumulator) MarshalBinary() ([]byte, error) {
	buf := binary.AppendUvarint(nil, accStateVersion)
	buf = binary.AppendUvarint(buf, uint64(a.events))
	buf = binary.AppendUvarint(buf, uint64(a.now))

	// Entity spans, sorted by id; edges carry their endpoints.
	vids := sortedKeys(a.vspans)
	buf = binary.AppendUvarint(buf, uint64(len(vids)))
	for _, id := range vids {
		buf = binary.AppendVarint(buf, int64(id))
		buf = appendSpan(buf, a.vspans[id])
	}
	eids := sortedKeys(a.espans)
	buf = binary.AppendUvarint(buf, uint64(len(eids)))
	for _, id := range eids {
		buf = binary.AppendVarint(buf, int64(id))
		buf = appendSpan(buf, a.espans[id])
		tails := a.etails[id]
		buf = binary.AppendVarint(buf, int64(tails[0]))
		buf = binary.AppendVarint(buf, int64(tails[1]))
	}

	// Closed property entries and running values, sorted by owner then label.
	buf = appendPropMap(buf, a.vprops, func(id tgraph.VertexID) int64 { return int64(id) })
	buf = appendPropMap(buf, a.eprops, func(id tgraph.EdgeID) int64 { return int64(id) })
	buf = appendRunMap(buf, a.vruns, func(id tgraph.VertexID) int64 { return int64(id) })
	buf = appendRunMap(buf, a.eruns, func(id tgraph.EdgeID) int64 { return int64(id) })
	return buf, nil
}

func sortedKeys[K ~int64, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func appendSpan(buf []byte, s *openSpan) []byte {
	buf = binary.AppendUvarint(buf, uint64(s.start))
	if s.closed {
		buf = append(buf, 1)
		buf = binary.AppendUvarint(buf, uint64(s.end))
	} else {
		buf = append(buf, 0)
	}
	return buf
}

func appendPropMap[K ~int64](buf []byte, m map[K]map[string][]tgraph.PropEntry, idOf func(K) int64) []byte {
	ids := make([]K, 0, len(m))
	for id, p := range m {
		if len(p) > 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		p := m[id]
		buf = binary.AppendVarint(buf, idOf(id))
		labels := make([]string, 0, len(p))
		for l := range p {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		buf = binary.AppendUvarint(buf, uint64(len(labels)))
		for _, l := range labels {
			buf = binary.AppendUvarint(buf, uint64(len(l)))
			buf = append(buf, l...)
			entries := p[l]
			buf = binary.AppendUvarint(buf, uint64(len(entries)))
			for _, e := range entries {
				buf = binary.AppendUvarint(buf, uint64(e.Interval.Start))
				buf = binary.AppendUvarint(buf, uint64(e.Interval.End))
				buf = binary.AppendVarint(buf, e.Value)
			}
		}
	}
	return buf
}

func appendRunMap[K ~int64](buf []byte, m map[K]map[string]propRun, idOf func(K) int64) []byte {
	ids := make([]K, 0, len(m))
	for id, runs := range m {
		if len(runs) > 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		runs := m[id]
		buf = binary.AppendVarint(buf, idOf(id))
		labels := make([]string, 0, len(runs))
		for l := range runs {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		buf = binary.AppendUvarint(buf, uint64(len(labels)))
		for _, l := range labels {
			buf = binary.AppendUvarint(buf, uint64(len(l)))
			buf = append(buf, l...)
			run := runs[l]
			buf = binary.AppendUvarint(buf, uint64(run.start))
			buf = binary.AppendVarint(buf, run.value)
		}
	}
	return buf
}

// accDec is a bounds-checked varint reader.
type accDec struct {
	b   []byte
	off int
	err error
}

func (d *accDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: at byte %d: %s", ErrStateCorrupt, d.off, fmt.Sprintf(format, args...))
	}
}

func (d *accDec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *accDec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.off += n
	return v
}

func (d *accDec) time() ival.Time {
	v := d.uvarint()
	if d.err == nil && v > uint64(ival.Infinity) {
		d.fail("time-point %d out of range", v)
	}
	return ival.Time(v)
}

func (d *accDec) count() int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if rem := len(d.b) - d.off; v > uint64(rem)+1 {
		d.fail("count %d exceeds remaining %d bytes", v, rem)
		return 0
	}
	return int(v)
}

func (d *accDec) label() string {
	l := d.uvarint()
	if d.err != nil {
		return ""
	}
	if l > uint64(len(d.b)-d.off) {
		d.fail("label length %d exceeds input", l)
		return ""
	}
	s := string(d.b[d.off : d.off+int(l)])
	d.off += int(l)
	return s
}

func (d *accDec) span() *openSpan {
	s := &openSpan{start: d.time()}
	if d.err != nil {
		return s
	}
	if d.off >= len(d.b) {
		d.fail("truncated span")
		return s
	}
	switch d.b[d.off] {
	case 0:
		d.off++
	case 1:
		d.off++
		s.closed, s.end = true, d.time()
		if d.err == nil && s.end < s.start {
			d.fail("span closes at %d before it opens at %d", s.end, s.start)
		}
	default:
		d.fail("bad span flag %d", d.b[d.off])
	}
	return s
}

// UnmarshalAccumulator reconstructs an accumulator from MarshalBinary
// output. The result behaves identically to the original under both
// further Apply calls and Graph materialization.
func UnmarshalAccumulator(data []byte) (*Accumulator, error) {
	d := &accDec{b: data}
	if v := d.uvarint(); d.err == nil && v != accStateVersion {
		return nil, fmt.Errorf("%w: state version %d, want %d", ErrStateCorrupt, v, accStateVersion)
	}
	a := NewAccumulator()
	events := d.uvarint()
	a.now = d.time()
	if d.err == nil && events > uint64(1)<<62 {
		d.fail("event count %d out of range", events)
	}
	a.events = int(events)

	nv := d.count()
	for i := 0; i < nv && d.err == nil; i++ {
		id := tgraph.VertexID(d.varint())
		if _, dup := a.vspans[id]; dup {
			d.fail("duplicate vertex span %d", id)
			break
		}
		a.vspans[id] = d.span()
	}
	ne := d.count()
	for i := 0; i < ne && d.err == nil; i++ {
		id := tgraph.EdgeID(d.varint())
		if _, dup := a.espans[id]; dup {
			d.fail("duplicate edge span %d", id)
			break
		}
		a.espans[id] = d.span()
		a.etails[id] = [2]tgraph.VertexID{tgraph.VertexID(d.varint()), tgraph.VertexID(d.varint())}
	}

	readProps(d, func(id int64, label string, entries []tgraph.PropEntry) {
		a.propsOf(a.vprops, tgraph.VertexID(id))[label] = entries
	})
	readProps(d, func(id int64, label string, entries []tgraph.PropEntry) {
		a.epropsOf(tgraph.EdgeID(id))[label] = entries
	})
	readRuns(d, func(id int64, label string, run propRun) {
		runs := a.vruns[tgraph.VertexID(id)]
		if runs == nil {
			runs = map[string]propRun{}
			a.vruns[tgraph.VertexID(id)] = runs
		}
		runs[label] = run
	})
	readRuns(d, func(id int64, label string, run propRun) {
		runs := a.eruns[tgraph.EdgeID(id)]
		if runs == nil {
			runs = map[string]propRun{}
			a.eruns[tgraph.EdgeID(id)] = runs
		}
		runs[label] = run
	})
	if d.err == nil && d.off != len(d.b) {
		d.fail("%d trailing bytes", len(d.b)-d.off)
	}
	if d.err != nil {
		return nil, d.err
	}
	return a, nil
}

func readProps(d *accDec, assign func(id int64, label string, entries []tgraph.PropEntry)) {
	n := d.count()
	for i := 0; i < n && d.err == nil; i++ {
		id := d.varint()
		nlabels := d.count()
		for j := 0; j < nlabels && d.err == nil; j++ {
			label := d.label()
			nentries := d.count()
			entries := make([]tgraph.PropEntry, 0, nentries)
			for k := 0; k < nentries && d.err == nil; k++ {
				start := d.time()
				end := d.time()
				val := d.varint()
				if d.err != nil {
					break
				}
				if end < start {
					d.fail("property entry [%d, %d) inverted", start, end)
					break
				}
				entries = append(entries, tgraph.PropEntry{Interval: ival.New(start, end), Value: val})
			}
			if d.err == nil {
				assign(id, label, entries)
			}
		}
	}
}

func readRuns(d *accDec, assign func(id int64, label string, run propRun)) {
	n := d.count()
	for i := 0; i < n && d.err == nil; i++ {
		id := d.varint()
		nlabels := d.count()
		for j := 0; j < nlabels && d.err == nil; j++ {
			label := d.label()
			start := d.time()
			val := d.varint()
			if d.err == nil {
				assign(id, label, propRun{start: start, value: val})
			}
		}
	}
}
