package stream

import (
	"errors"
	"strings"
	"testing"

	"graphite/internal/algorithms"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

func apply(t *testing.T, a *Accumulator, evs ...Event) {
	t.Helper()
	for _, ev := range evs {
		if err := a.Apply(ev); err != nil {
			t.Fatalf("apply %+v: %v", ev, err)
		}
	}
}

func TestAccumulatorLifespans(t *testing.T) {
	a := NewAccumulator()
	apply(t, a,
		Event{Op: AddVertex, T: 0, V: 1},
		Event{Op: AddVertex, T: 0, V: 2},
		Event{Op: AddEdge, T: 2, E: 7, Src: 1, Dst: 2},
		Event{Op: RemoveEdge, T: 5, E: 7},
		Event{Op: RemoveVertex, T: 8, V: 2},
	)
	g, err := a.Graph(10)
	if err != nil {
		t.Fatalf("Graph: %v", err)
	}
	if g.Vertex(1).Lifespan != ival.New(0, 10) {
		t.Errorf("open vertex should close at horizon: %v", g.Vertex(1).Lifespan)
	}
	if g.Vertex(2).Lifespan != ival.New(0, 8) {
		t.Errorf("removed vertex lifespan: %v", g.Vertex(2).Lifespan)
	}
	if g.Edge(0).Lifespan != ival.New(2, 5) {
		t.Errorf("edge lifespan: %v", g.Edge(0).Lifespan)
	}
	// Unbounded materialization.
	g, err = a.Graph(0)
	if err != nil {
		t.Fatalf("Graph: %v", err)
	}
	if !g.Vertex(1).Lifespan.IsUnbounded() {
		t.Errorf("open vertex should be unbounded: %v", g.Vertex(1).Lifespan)
	}
}

func TestAccumulatorPropertyRuns(t *testing.T) {
	a := NewAccumulator()
	apply(t, a,
		Event{Op: AddVertex, T: 0, V: 1},
		Event{Op: AddVertex, T: 0, V: 2},
		Event{Op: AddEdge, T: 0, E: 1, Src: 1, Dst: 2},
		Event{Op: SetEdgeProp, T: 0, E: 1, Label: "w", Value: 5},
		Event{Op: SetEdgeProp, T: 3, E: 1, Label: "w", Value: 9},
		Event{Op: RemoveEdge, T: 7, E: 1},
	)
	g, err := a.Graph(10)
	if err != nil {
		t.Fatalf("Graph: %v", err)
	}
	e := g.Edge(0)
	if v, _ := e.Props.ValueAt("w", 2); v != 5 {
		t.Errorf("w@2 = %d, want 5", v)
	}
	if v, _ := e.Props.ValueAt("w", 6); v != 9 {
		t.Errorf("w@6 = %d, want 9", v)
	}
	if _, ok := e.Props.ValueAt("w", 7); ok {
		t.Errorf("property must end with the edge")
	}
}

func TestAccumulatorRejectsInvalidStreams(t *testing.T) {
	a := NewAccumulator()
	apply(t, a, Event{Op: AddVertex, T: 5, V: 1})
	if err := a.Apply(Event{Op: AddVertex, T: 3, V: 9}); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("want ErrOutOfOrder, got %v", err)
	}
	if err := a.Apply(Event{Op: AddVertex, T: 6, V: 1}); !errors.Is(err, ErrStillOpen) {
		t.Errorf("want ErrStillOpen, got %v", err)
	}
	apply(t, a, Event{Op: RemoveVertex, T: 7, V: 1})
	if err := a.Apply(Event{Op: AddVertex, T: 8, V: 1}); !errors.Is(err, ErrReopened) {
		t.Errorf("want ErrReopened, got %v", err)
	}
	if err := a.Apply(Event{Op: AddEdge, T: 9, E: 1, Src: 1, Dst: 2}); !errors.Is(err, ErrUnknownOwner) {
		t.Errorf("want ErrUnknownOwner, got %v", err)
	}
	if err := a.Apply(Event{Op: RemoveEdge, T: 9, E: 99}); !errors.Is(err, ErrUnknownOwner) {
		t.Errorf("want ErrUnknownOwner for edge, got %v", err)
	}
}

func TestReadLogAndRunICM(t *testing.T) {
	log := `
# a tiny contact log
av 0 1
av 0 2
av 0 3
ae 1 10 1 2
ep 1 10 travel-time 1
ep 1 10 travel-cost 2
re 3 10
ae 4 11 2 3
ep 4 11 travel-time 1
ep 4 11 travel-cost 3
re 6 11
`
	a := NewAccumulator()
	if err := ReadLog(strings.NewReader(log), a); err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if a.Events() != 11 {
		t.Errorf("events = %d, want 11", a.Events())
	}
	g, err := a.Graph(8)
	if err != nil {
		t.Fatalf("Graph: %v", err)
	}
	// The materialized graph runs straight through the ICM stack.
	r, err := algorithms.RunSSSP(g, tgraph.VertexID(1), 0, 2)
	if err != nil {
		t.Fatalf("RunSSSP: %v", err)
	}
	// 1→2 departs in [1,3): cost 2 arriving from t=2. 2→3 departs in
	// [4,6): total 5 arriving from t=5.
	costs := algorithms.SSSPCosts(r, 3)
	if len(costs) != 1 || costs[0].Value != 5 || costs[0].Interval.Start != 5 {
		t.Fatalf("costs to 3 = %v", costs)
	}
}

func TestReadLogRejectsMalformed(t *testing.T) {
	for _, log := range []string{
		"zz 1 2",
		"av 1",
		"ae 1 5 1",
		"av 5 1\nav 3 2",
		"av x 1",       // non-numeric time must not silently parse as 0
		"av 1 1x",      // non-numeric id
		"av -3 1",      // negative event time
		"vp 1 1 w 1.5", // non-integer property value
	} {
		if err := ReadLog(strings.NewReader(log), NewAccumulator()); err == nil {
			t.Errorf("log %q should fail", log)
		}
	}
}

func TestReadLogErrorsCarryLineNumber(t *testing.T) {
	log := "av 0 1\nav 1 1\n"
	err := ReadLog(strings.NewReader(log), NewAccumulator())
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want error naming line 2, got %v", err)
	}
	if !errors.Is(err, ErrStillOpen) {
		t.Fatalf("want wrapped ErrStillOpen, got %v", err)
	}
}

func TestNegativeEventTimeRejected(t *testing.T) {
	if err := NewAccumulator().Apply(Event{Op: AddVertex, T: -1, V: 1}); !errors.Is(err, ErrNegativeTime) {
		t.Errorf("Apply: want ErrNegativeTime, got %v", err)
	}
	err := ReadLog(strings.NewReader("av -5 1"), NewAccumulator())
	if !errors.Is(err, ErrNegativeTime) {
		t.Errorf("ReadLog: want ErrNegativeTime, got %v", err)
	}
}

func TestEdgeReAddAfterRemoveRejected(t *testing.T) {
	a := NewAccumulator()
	apply(t, a,
		Event{Op: AddVertex, T: 0, V: 1},
		Event{Op: AddVertex, T: 0, V: 2},
		Event{Op: AddEdge, T: 1, E: 7, Src: 1, Dst: 2},
		Event{Op: RemoveEdge, T: 3, E: 7},
	)
	if err := a.Apply(Event{Op: AddEdge, T: 4, E: 7, Src: 1, Dst: 2}); !errors.Is(err, ErrReopened) {
		t.Errorf("want ErrReopened for edge re-add, got %v", err)
	}
}

func TestDuplicateRemovesRejected(t *testing.T) {
	a := NewAccumulator()
	apply(t, a,
		Event{Op: AddVertex, T: 0, V: 1},
		Event{Op: AddVertex, T: 0, V: 2},
		Event{Op: AddEdge, T: 1, E: 7, Src: 1, Dst: 2},
		Event{Op: RemoveEdge, T: 3, E: 7},
		Event{Op: RemoveVertex, T: 4, V: 2},
	)
	if err := a.Apply(Event{Op: RemoveEdge, T: 5, E: 7}); !errors.Is(err, ErrUnknownOwner) {
		t.Errorf("duplicate edge remove: want ErrUnknownOwner, got %v", err)
	}
	if err := a.Apply(Event{Op: RemoveVertex, T: 5, V: 2}); !errors.Is(err, ErrUnknownOwner) {
		t.Errorf("duplicate vertex remove: want ErrUnknownOwner, got %v", err)
	}
}

func TestPropertyChurnAtSameTimestamp(t *testing.T) {
	// Two writes at the same instant: the later one wins outright, and the
	// zero-length run of the first must not surface as a property entry.
	a := NewAccumulator()
	apply(t, a,
		Event{Op: AddVertex, T: 0, V: 1},
		Event{Op: SetVertexProp, T: 5, V: 1, Label: "w", Value: 10},
		Event{Op: SetVertexProp, T: 5, V: 1, Label: "w", Value: 20},
	)
	g, err := a.Graph(9)
	if err != nil {
		t.Fatalf("Graph: %v", err)
	}
	entries := g.Vertex(1).Props.Entries("w")
	if len(entries) != 1 {
		t.Fatalf("want one surviving run, got %v", entries)
	}
	if entries[0].Value != 20 || entries[0].Interval != ival.New(5, 9) {
		t.Errorf("surviving run = %+v, want value 20 over [5,9)", entries[0])
	}
}

func TestHorizonClosesOpenEdges(t *testing.T) {
	a := NewAccumulator()
	apply(t, a,
		Event{Op: AddVertex, T: 0, V: 1},
		Event{Op: AddVertex, T: 0, V: 2},
		Event{Op: AddEdge, T: 2, E: 7, Src: 1, Dst: 2},
		Event{Op: SetEdgeProp, T: 3, E: 7, Label: "w", Value: 4},
	)
	g, err := a.Graph(6)
	if err != nil {
		t.Fatalf("Graph: %v", err)
	}
	if g.Edge(0).Lifespan != ival.New(2, 6) {
		t.Errorf("open edge should close at horizon: %v", g.Edge(0).Lifespan)
	}
	if entries := g.Edge(0).Props.Entries("w"); len(entries) != 1 || entries[0].Interval != ival.New(3, 6) {
		t.Errorf("open property run should clip to horizon: %v", entries)
	}
	// The same accumulator still materializes unbounded afterwards.
	g, err = a.Graph(0)
	if err != nil {
		t.Fatalf("Graph(0): %v", err)
	}
	if !g.Edge(0).Lifespan.IsUnbounded() {
		t.Errorf("edge should stay open without a horizon: %v", g.Edge(0).Lifespan)
	}
}

func TestPreflightValidatesWithoutMutating(t *testing.T) {
	a := NewAccumulator()
	apply(t, a, Event{Op: AddVertex, T: 0, V: 1})
	before := a.Events()

	// A batch with intra-batch dependencies (edge between vertices added in
	// the same batch) must validate.
	good := []Event{
		{Op: AddVertex, T: 1, V: 2},
		{Op: AddEdge, T: 2, E: 7, Src: 1, Dst: 2},
		{Op: SetEdgeProp, T: 2, E: 7, Label: "w", Value: 3},
		{Op: RemoveEdge, T: 4, E: 7},
	}
	if err := a.Preflight(good); err != nil {
		t.Fatalf("good batch rejected: %v", err)
	}
	if a.Events() != before || a.Now() != 0 {
		t.Fatalf("Preflight mutated the accumulator")
	}

	bad := [][]Event{
		{{Op: AddVertex, T: 1, V: 1}},                                                           // still open
		{{Op: AddEdge, T: 1, E: 7, Src: 1, Dst: 99}},                                            // unknown endpoint
		{{Op: AddVertex, T: 1, V: 2}, {Op: AddVertex, T: 0, V: 3}},                              // order within batch
		{{Op: RemoveEdge, T: 1, E: 7}},                                                          // unknown edge
		{{Op: AddVertex, T: -1, V: 2}},                                                          // negative time
		{{Op: RemoveVertex, T: 1, V: 1}, {Op: SetVertexProp, T: 2, V: 1, Label: "w", Value: 1}}, // prop after remove in batch
	}
	for i, batch := range bad {
		if err := a.Preflight(batch); err == nil {
			t.Errorf("bad batch %d accepted", i)
		}
		if a.Events() != before {
			t.Fatalf("Preflight of bad batch %d mutated the accumulator", i)
		}
	}
	// And the accumulator still accepts the good batch for real afterwards.
	apply(t, a, good...)
}
