// Package stream builds temporal property graphs from event logs — the form
// real temporal datasets arrive in (contact traces, transaction logs, edit
// histories). An Accumulator consumes ordered events (vertex/edge appear,
// disappear, property changes) and materializes the interval graph the ICM
// runtime consumes; lifespans are derived from appear/disappear pairs, with
// still-open entities closed at a configurable horizon or left unbounded.
//
// This is the ingestion half of the paper's "streaming temporal graphs"
// future work: it turns a prefix of an event stream into a fully evolved
// graph at any cut-off point.
package stream

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// Op is an event kind.
type Op int

// Event kinds.
const (
	// AddVertex brings a vertex into existence at the event time.
	AddVertex Op = iota
	// RemoveVertex ends a vertex's lifespan at the event time (exclusive).
	RemoveVertex
	// AddEdge brings an edge into existence at the event time.
	AddEdge
	// RemoveEdge ends an edge's lifespan at the event time (exclusive).
	RemoveEdge
	// SetVertexProp starts a new value for a vertex property at the event
	// time, ending the previous value if any.
	SetVertexProp
	// SetEdgeProp starts a new value for an edge property at the event time.
	SetEdgeProp
)

// Event is one timestamped mutation.
type Event struct {
	Op    Op
	T     ival.Time
	V     tgraph.VertexID // vertex events and property owner
	E     tgraph.EdgeID   // edge events and property owner
	Src   tgraph.VertexID // AddEdge only
	Dst   tgraph.VertexID // AddEdge only
	Label string          // property events
	Value int64           // property events
}

// Errors surfaced by the accumulator.
var (
	ErrOutOfOrder   = errors.New("stream: events must be time-ordered")
	ErrUnknownOwner = errors.New("stream: event for unknown entity")
	ErrReopened     = errors.New("stream: entity re-added after removal (Constraint 1)")
	ErrStillOpen    = errors.New("stream: entity already open")
	// ErrNegativeTime rejects events before time zero. Interval validity
	// requires Start >= 0, so a negative event time would otherwise build a
	// silently wrong lifespan (or an invalid graph) much later, far from the
	// offending record.
	ErrNegativeTime = errors.New("stream: negative event time")
)

// openSpan tracks an entity whose lifespan has begun.
type openSpan struct {
	start  ival.Time
	closed bool
	end    ival.Time
}

// propRun tracks the active value run of one property label.
type propRun struct {
	start ival.Time
	value int64
}

// Accumulator consumes events and materializes temporal graphs.
type Accumulator struct {
	now ival.Time

	vspans map[tgraph.VertexID]*openSpan
	espans map[tgraph.EdgeID]*openSpan
	etails map[tgraph.EdgeID][2]tgraph.VertexID

	vprops map[tgraph.VertexID]map[string][]tgraph.PropEntry
	eprops map[tgraph.EdgeID]map[string][]tgraph.PropEntry
	vruns  map[tgraph.VertexID]map[string]propRun
	eruns  map[tgraph.EdgeID]map[string]propRun

	events int
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{
		vspans: map[tgraph.VertexID]*openSpan{},
		espans: map[tgraph.EdgeID]*openSpan{},
		etails: map[tgraph.EdgeID][2]tgraph.VertexID{},
		vprops: map[tgraph.VertexID]map[string][]tgraph.PropEntry{},
		eprops: map[tgraph.EdgeID]map[string][]tgraph.PropEntry{},
		vruns:  map[tgraph.VertexID]map[string]propRun{},
		eruns:  map[tgraph.EdgeID]map[string]propRun{},
	}
}

// Events returns the number of events applied.
func (a *Accumulator) Events() int { return a.events }

// Now returns the time of the last applied event.
func (a *Accumulator) Now() ival.Time { return a.now }

// Apply folds one event into the accumulator. Events must arrive in
// non-decreasing time order.
func (a *Accumulator) Apply(ev Event) error {
	if ev.T < 0 {
		return fmt.Errorf("%w: %d", ErrNegativeTime, ev.T)
	}
	if ev.T < a.now {
		return fmt.Errorf("%w: event at %d after %d", ErrOutOfOrder, ev.T, a.now)
	}
	a.now = ev.T
	switch ev.Op {
	case AddVertex:
		if s, ok := a.vspans[ev.V]; ok {
			if s.closed {
				return fmt.Errorf("%w: vertex %d", ErrReopened, ev.V)
			}
			return fmt.Errorf("%w: vertex %d", ErrStillOpen, ev.V)
		}
		a.vspans[ev.V] = &openSpan{start: ev.T}
	case RemoveVertex:
		s, ok := a.vspans[ev.V]
		if !ok || s.closed {
			return fmt.Errorf("%w: vertex %d", ErrUnknownOwner, ev.V)
		}
		s.closed, s.end = true, ev.T
		a.closeRuns(a.vruns[ev.V], a.propsOf(a.vprops, ev.V), ev.T)
		delete(a.vruns, ev.V)
	case AddEdge:
		if s, ok := a.espans[ev.E]; ok {
			if s.closed {
				return fmt.Errorf("%w: edge %d", ErrReopened, ev.E)
			}
			return fmt.Errorf("%w: edge %d", ErrStillOpen, ev.E)
		}
		if !a.vertexAlive(ev.Src, ev.T) || !a.vertexAlive(ev.Dst, ev.T) {
			return fmt.Errorf("%w: edge %d endpoints at t=%d", ErrUnknownOwner, ev.E, ev.T)
		}
		a.espans[ev.E] = &openSpan{start: ev.T}
		a.etails[ev.E] = [2]tgraph.VertexID{ev.Src, ev.Dst}
	case RemoveEdge:
		s, ok := a.espans[ev.E]
		if !ok || s.closed {
			return fmt.Errorf("%w: edge %d", ErrUnknownOwner, ev.E)
		}
		s.closed, s.end = true, ev.T
		a.closeRuns(a.eruns[ev.E], a.epropsOf(ev.E), ev.T)
		delete(a.eruns, ev.E)
	case SetVertexProp:
		if !a.vertexAlive(ev.V, ev.T) {
			return fmt.Errorf("%w: vertex %d", ErrUnknownOwner, ev.V)
		}
		runs := a.vruns[ev.V]
		if runs == nil {
			runs = map[string]propRun{}
			a.vruns[ev.V] = runs
		}
		a.setProp(runs, a.propsOf(a.vprops, ev.V), ev.Label, ev.Value, ev.T)
	case SetEdgeProp:
		s, ok := a.espans[ev.E]
		if !ok || s.closed {
			return fmt.Errorf("%w: edge %d", ErrUnknownOwner, ev.E)
		}
		runs := a.eruns[ev.E]
		if runs == nil {
			runs = map[string]propRun{}
			a.eruns[ev.E] = runs
		}
		a.setProp(runs, a.epropsOf(ev.E), ev.Label, ev.Value, ev.T)
	default:
		return fmt.Errorf("stream: unknown op %d", ev.Op)
	}
	a.events++
	return nil
}

// Preflight validates a whole batch against the accumulator's current state
// without mutating it, so callers can make ingest batch-atomic: either every
// event in the batch would be accepted by Apply, or the batch is rejected
// with the index of the first offending event and nothing changes. The
// checks mirror Apply's exactly (order, negative time, reopen/still-open,
// referential integrity); property contents need no validation beyond an
// alive owner.
func (a *Accumulator) Preflight(batch []Event) error {
	now := a.now
	vs := map[tgraph.VertexID]openSpan{}
	es := map[tgraph.EdgeID]openSpan{}
	vspan := func(id tgraph.VertexID) (openSpan, bool) {
		if s, ok := vs[id]; ok {
			return s, true
		}
		if s, ok := a.vspans[id]; ok {
			return *s, true
		}
		return openSpan{}, false
	}
	espan := func(id tgraph.EdgeID) (openSpan, bool) {
		if s, ok := es[id]; ok {
			return s, true
		}
		if s, ok := a.espans[id]; ok {
			return *s, true
		}
		return openSpan{}, false
	}
	alive := func(id tgraph.VertexID, t ival.Time) bool {
		s, ok := vspan(id)
		return ok && !s.closed && s.start <= t
	}
	for i, ev := range batch {
		fail := func(err error) error { return fmt.Errorf("stream: batch event %d: %w", i, err) }
		if ev.T < 0 {
			return fail(fmt.Errorf("%w: %d", ErrNegativeTime, ev.T))
		}
		if ev.T < now {
			return fail(fmt.Errorf("%w: event at %d after %d", ErrOutOfOrder, ev.T, now))
		}
		now = ev.T
		switch ev.Op {
		case AddVertex:
			if s, ok := vspan(ev.V); ok {
				if s.closed {
					return fail(fmt.Errorf("%w: vertex %d", ErrReopened, ev.V))
				}
				return fail(fmt.Errorf("%w: vertex %d", ErrStillOpen, ev.V))
			}
			vs[ev.V] = openSpan{start: ev.T}
		case RemoveVertex:
			s, ok := vspan(ev.V)
			if !ok || s.closed {
				return fail(fmt.Errorf("%w: vertex %d", ErrUnknownOwner, ev.V))
			}
			s.closed, s.end = true, ev.T
			vs[ev.V] = s
		case AddEdge:
			if s, ok := espan(ev.E); ok {
				if s.closed {
					return fail(fmt.Errorf("%w: edge %d", ErrReopened, ev.E))
				}
				return fail(fmt.Errorf("%w: edge %d", ErrStillOpen, ev.E))
			}
			if !alive(ev.Src, ev.T) || !alive(ev.Dst, ev.T) {
				return fail(fmt.Errorf("%w: edge %d endpoints at t=%d", ErrUnknownOwner, ev.E, ev.T))
			}
			es[ev.E] = openSpan{start: ev.T}
		case RemoveEdge:
			s, ok := espan(ev.E)
			if !ok || s.closed {
				return fail(fmt.Errorf("%w: edge %d", ErrUnknownOwner, ev.E))
			}
			s.closed, s.end = true, ev.T
			es[ev.E] = s
		case SetVertexProp:
			if !alive(ev.V, ev.T) {
				return fail(fmt.Errorf("%w: vertex %d", ErrUnknownOwner, ev.V))
			}
		case SetEdgeProp:
			s, ok := espan(ev.E)
			if !ok || s.closed {
				return fail(fmt.Errorf("%w: edge %d", ErrUnknownOwner, ev.E))
			}
		default:
			return fail(fmt.Errorf("stream: unknown op %d", ev.Op))
		}
	}
	return nil
}

func (a *Accumulator) vertexAlive(id tgraph.VertexID, t ival.Time) bool {
	s, ok := a.vspans[id]
	return ok && !s.closed && s.start <= t
}

func (a *Accumulator) propsOf(m map[tgraph.VertexID]map[string][]tgraph.PropEntry, id tgraph.VertexID) map[string][]tgraph.PropEntry {
	p := m[id]
	if p == nil {
		p = map[string][]tgraph.PropEntry{}
		m[id] = p
	}
	return p
}

func (a *Accumulator) epropsOf(id tgraph.EdgeID) map[string][]tgraph.PropEntry {
	p := a.eprops[id]
	if p == nil {
		p = map[string][]tgraph.PropEntry{}
		a.eprops[id] = p
	}
	return p
}

// setProp ends the label's running value at t (if any) and starts a new run.
func (a *Accumulator) setProp(runs map[string]propRun, sink map[string][]tgraph.PropEntry, label string, value int64, t ival.Time) {
	if run, ok := runs[label]; ok && run.start < t {
		sink[label] = append(sink[label], tgraph.PropEntry{Interval: ival.New(run.start, t), Value: run.value})
	}
	runs[label] = propRun{start: t, value: value}
}

// closeRuns flushes every running property value at the closing time.
func (a *Accumulator) closeRuns(runs map[string]propRun, sink map[string][]tgraph.PropEntry, t ival.Time) {
	labels := make([]string, 0, len(runs))
	for l := range runs {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		run := runs[l]
		if run.start < t {
			sink[l] = append(sink[l], tgraph.PropEntry{Interval: ival.New(run.start, t), Value: run.value})
		}
	}
}

// Graph materializes the accumulated state as a valid temporal graph.
// Entities still open are closed at the horizon when it is positive, or left
// unbounded when horizon is zero or negative.
func (a *Accumulator) Graph(horizon ival.Time) (*tgraph.Graph, error) {
	end := func(s *openSpan) ival.Time {
		if s.closed {
			return s.end
		}
		if horizon > 0 {
			return horizon
		}
		return ival.Infinity
	}
	b := tgraph.NewBuilder(len(a.vspans), len(a.espans))
	// Deterministic order: sorted ids.
	vids := make([]tgraph.VertexID, 0, len(a.vspans))
	for id := range a.vspans {
		vids = append(vids, id)
	}
	sort.Slice(vids, func(i, j int) bool { return vids[i] < vids[j] })
	for _, id := range vids {
		s := a.vspans[id]
		life := ival.New(s.start, end(s))
		if life.IsEmpty() {
			continue
		}
		b.AddVertex(id, life)
		a.flushProps(b.SetVertexProp, id, 0, a.vprops[id], a.vruns[id], life)
	}
	eids := make([]tgraph.EdgeID, 0, len(a.espans))
	for id := range a.espans {
		eids = append(eids, id)
	}
	sort.Slice(eids, func(i, j int) bool { return eids[i] < eids[j] })
	for _, id := range eids {
		s := a.espans[id]
		life := ival.New(s.start, end(s))
		if life.IsEmpty() {
			continue
		}
		tails := a.etails[id]
		b.AddEdge(id, tails[0], tails[1], life)
		for label, entries := range a.eprops[id] {
			for _, p := range entries {
				if x := p.Interval.Intersect(life); !x.IsEmpty() {
					b.SetEdgeProp(id, label, x, p.Value)
				}
			}
		}
		for label, run := range a.eruns[id] {
			if x := ival.New(run.start, life.End).Intersect(life); !x.IsEmpty() {
				b.SetEdgeProp(id, label, x, run.value)
			}
		}
	}
	return b.Build()
}

// flushProps writes closed entries plus the open runs, clipped to life.
func (a *Accumulator) flushProps(set func(tgraph.VertexID, string, ival.Interval, int64) *tgraph.Builder,
	vid tgraph.VertexID, _ tgraph.EdgeID, closed map[string][]tgraph.PropEntry,
	runs map[string]propRun, life ival.Interval) {
	for label, entries := range closed {
		for _, p := range entries {
			if x := p.Interval.Intersect(life); !x.IsEmpty() {
				set(vid, label, x, p.Value)
			}
		}
	}
	for label, run := range runs {
		if x := ival.New(run.start, life.End).Intersect(life); !x.IsEmpty() {
			set(vid, label, x, run.value)
		}
	}
}

// ReadLog parses a text event log, one event per line:
//
//	av <t> <vid>                  add vertex
//	rv <t> <vid>                  remove vertex
//	ae <t> <eid> <src> <dst>      add edge
//	re <t> <eid>                  remove edge
//	vp <t> <vid> <label> <value>  set vertex property
//	ep <t> <eid> <label> <value>  set edge property
func ReadLog(r io.Reader, acc *Accumulator) error {
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ev, err := parseEvent(line)
		if err != nil {
			return fmt.Errorf("stream: line %d: %w", lineNo, err)
		}
		if err := acc.Apply(ev); err != nil {
			return fmt.Errorf("stream: line %d: %w", lineNo, err)
		}
	}
	return sc.Err()
}

// ParseEvent parses one text event-log line into an Event (see ReadLog for
// the format). Comments and blank lines are ReadLog's concern; this expects
// exactly one record.
func ParseEvent(line string) (Event, error) { return parseEvent(line) }

func parseEvent(line string) (Event, error) {
	f := strings.Fields(line)
	need := func(n int) error {
		if len(f) != n {
			return fmt.Errorf("record %q needs %d fields", f[0], n-1)
		}
		return nil
	}
	// num surfaces the first malformed number instead of silently reading
	// zero — a mistyped id or timestamp must fail the line, not corrupt the
	// graph.
	var numErr error
	num := func(s string) int64 {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil && numErr == nil {
			numErr = fmt.Errorf("bad number %q", s)
		}
		return v
	}
	if len(f) < 2 {
		return Event{}, fmt.Errorf("short record")
	}
	t := num(f[1])
	var ev Event
	switch f[0] {
	case "av":
		if err := need(3); err != nil {
			return Event{}, err
		}
		ev = Event{Op: AddVertex, T: t, V: tgraph.VertexID(num(f[2]))}
	case "rv":
		if err := need(3); err != nil {
			return Event{}, err
		}
		ev = Event{Op: RemoveVertex, T: t, V: tgraph.VertexID(num(f[2]))}
	case "ae":
		if err := need(5); err != nil {
			return Event{}, err
		}
		ev = Event{Op: AddEdge, T: t, E: tgraph.EdgeID(num(f[2])),
			Src: tgraph.VertexID(num(f[3])), Dst: tgraph.VertexID(num(f[4]))}
	case "re":
		if err := need(3); err != nil {
			return Event{}, err
		}
		ev = Event{Op: RemoveEdge, T: t, E: tgraph.EdgeID(num(f[2]))}
	case "vp":
		if err := need(5); err != nil {
			return Event{}, err
		}
		ev = Event{Op: SetVertexProp, T: t, V: tgraph.VertexID(num(f[2])), Label: f[3], Value: num(f[4])}
	case "ep":
		if err := need(5); err != nil {
			return Event{}, err
		}
		ev = Event{Op: SetEdgeProp, T: t, E: tgraph.EdgeID(num(f[2])), Label: f[3], Value: num(f[4])}
	default:
		return Event{}, fmt.Errorf("unknown record %q", f[0])
	}
	if numErr != nil {
		return Event{}, numErr
	}
	if ev.T < 0 {
		return Event{}, fmt.Errorf("%w: %d", ErrNegativeTime, ev.T)
	}
	return ev, nil
}
