package algorithms

import (
	"graphite/internal/codec"
	"graphite/internal/core"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// LD computes the latest departure time towards a target (Wu et al. [6],
// per Sec. V): it reverse-traverses from the sink towards sources, in space
// and time. A vertex's state holds 1 over its "presence-validity" intervals:
// being at the vertex at time-point t still allows reaching Target by
// Deadline (waiting at vertices is free, so valid intervals are prefixes
// [lifespan.start, X)). The message interval is [0, overlap.end −
// travel-time), exactly the ⟨−∞, t.end − travelTime⟩ construction in the
// paper; warp enforces the temporal bounds.
type LD struct {
	Target tgraph.VertexID
	// Deadline is the exclusive bound on arrival at Target; zero or
	// negative means the target's whole lifespan qualifies.
	Deadline ival.Time
}

// Init marks every vertex's presence invalid.
func (a *LD) Init(v *core.VertexCtx) {
	v.SetState(v.Lifespan(), int64(0))
}

// Compute marks the active interval valid on any incoming flag; in
// superstep 1 the target seeds its presence up to the deadline.
func (a *LD) Compute(v *core.VertexCtx, t ival.Interval, state any, msgs []any) {
	if v.Superstep() == 1 {
		if v.ID() == a.Target {
			bound := t
			if a.Deadline > 0 {
				bound = t.Intersect(ival.New(v.Lifespan().Start, a.Deadline))
			}
			if !bound.IsEmpty() {
				v.SetState(bound, int64(1))
			}
		}
		return
	}
	if state.(int64) == 0 && len(msgs) > 0 {
		v.SetState(t, int64(1))
	}
}

// Scatter runs along in-edges (Reverse mode): a predecessor departing at d
// reaches this vertex at d + travel-time, so departures are valid while
// both d is inside the edge window and d + travel-time falls inside this
// vertex's presence prefix. Because waiting is free, the predecessor's
// presence is then valid for every time-point up to the latest such
// departure.
func (a *LD) Scatter(v *core.VertexCtx, e *tgraph.Edge, t ival.Interval, state any) []core.OutMsg {
	if state.(int64) == 0 {
		return nil
	}
	piece := v.ScatterPiece()
	tt, _, ok := travelProps(e, piece.Start)
	if !ok {
		return nil
	}
	// End of this vertex's presence prefix: presence intervals are always
	// prefixes of the lifespan because every LD message starts at 0.
	presenceEnd := t.End
	for _, p := range v.State().Parts() {
		if x, ok := p.Value.(int64); ok && x == 1 {
			presenceEnd = p.Interval.End
		} else {
			break
		}
	}
	// Valid departures d satisfy d ∈ piece (the full edge window with these
	// properties) and d + tt < presenceEnd. If any exist, the predecessor's
	// presence extends to the latest one (waiting is free before it).
	end := piece.End
	if x := ival.SatSub(presenceEnd, tt); presenceEnd != ival.Infinity && x < end {
		end = x
	}
	if end <= piece.Start || end <= 0 {
		return nil
	}
	v.Emit(ival.New(0, end), int64(1))
	return nil
}

// CombineWarp ORs flags.
func (a *LD) CombineWarp(x, y any) any { return maxInt64(x, y) }

// Options returns the run options LD needs: reverse traversal.
func (a *LD) Options() core.Options {
	return core.Options{
		Reverse:           true,
		ScatterSlackLabel: tgraph.PropTravelTime,
		PropLabels:        []string{tgraph.PropTravelTime, tgraph.PropTravelCost},
		PayloadCodec:      codec.Int64{},
		ReceiverCombine:   true,
	}
}

// RunLD executes the latest-departure algorithm towards target.
func RunLD(g *tgraph.Graph, target tgraph.VertexID, deadline ival.Time, workers int) (*core.Result, error) {
	a := &LD{Target: target, Deadline: deadline}
	opts := a.Options()
	opts.NumWorkers = workers
	return core.Run(g, a, opts)
}

// LatestDeparture returns the latest time-point at which one can be at the
// vertex and still reach the target (−1 when the target is unreachable).
// For the target itself this is the last point before the deadline.
func LatestDeparture(r *core.Result, id tgraph.VertexID) ival.Time {
	st := r.StateByID(id)
	if st == nil {
		return -1
	}
	latest := ival.Time(-1)
	for _, p := range st.Parts() {
		if v, ok := p.Value.(int64); ok && v == 1 {
			if p.Interval.End == ival.Infinity {
				return ival.Infinity
			}
			if p.Interval.End-1 > latest {
				latest = p.Interval.End - 1
			}
		}
	}
	return latest
}
