package algorithms

import (
	"graphite/internal/codec"
	"graphite/internal/core"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// BFS is the time-independent breadth-first search (Sec. V): the vertex-
// centric logic is reused unchanged, and because ICM's default scatter
// restricts message validity to the overlap of the state and the edge
// lifespan, the per-time-point result equals running BFS on each snapshot
// independently (snapshot reducibility).
type BFS struct {
	Source tgraph.VertexID
}

// Init marks every vertex unvisited.
func (a *BFS) Init(v *core.VertexCtx) {
	v.SetState(v.Lifespan(), Unreachable)
}

// Compute adopts the smallest level offered for the active interval.
func (a *BFS) Compute(v *core.VertexCtx, t ival.Interval, state any, msgs []any) {
	if v.Superstep() == 1 {
		if v.ID() == a.Source {
			v.SetState(t, int64(0))
		}
		return
	}
	best := state.(int64)
	for _, m := range msgs {
		if x := m.(int64); x < best {
			best = x
		}
	}
	if best < state.(int64) {
		v.SetState(t, best)
	}
}

// Scatter sends level+1, valid exactly while the state and edge coexist
// (the default message interval τm = τ'k).
func (a *BFS) Scatter(v *core.VertexCtx, e *tgraph.Edge, t ival.Interval, state any) []core.OutMsg {
	if state.(int64) == Unreachable {
		return nil
	}
	v.Emit(ival.Interval{}, state.(int64)+1)
	return nil
}

// CombineWarp keeps the smallest level in a group.
func (a *BFS) CombineWarp(x, y any) any { return minInt64(x, y) }

// Options returns the run options BFS needs: no edge properties are used.
func (a *BFS) Options() core.Options {
	return core.Options{
		PayloadCodec:    codec.Int64{},
		ReceiverCombine: true,
	}
}

// RunBFS executes time-independent BFS from the source.
func RunBFS(g *tgraph.Graph, source tgraph.VertexID, workers int) (*core.Result, error) {
	a := &BFS{Source: source}
	opts := a.Options()
	opts.NumWorkers = workers
	return core.Run(g, a, opts)
}

// BFSLevels decodes the per-interval BFS levels of a vertex.
func BFSLevels(r *core.Result, id tgraph.VertexID) []IntervalValue {
	st := r.StateByID(id)
	if st == nil {
		return nil
	}
	return Int64States(st, Unreachable)
}
