package algorithms

import (
	"graphite/internal/codec"
	"graphite/internal/core"
	"graphite/internal/engine"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// SCC is time-independent strongly connected components (Yan et al. [16],
// per Sec. V), implemented as the classic forward-backward coloring
// algorithm under master control, interval-centrically:
//
//   - FW phase: every unassigned vertex interval propagates the maximum
//     vertex id along out-edges until globally stable; the converged label
//     fwd(v,t) is the largest id with a time-respecting-at-t path to v.
//   - BW phase: every root (fwd == own id) claims SCC = own id and the claim
//     propagates along in-edges, restricted to equal fwd labels, until
//     stable. All reached vertices belong to the root's SCC at those
//     time-points.
//   - Rounds repeat on the unassigned remainder until every interval of
//     every vertex is assigned; the master halts the run.
//
// Each time-point evolves exactly like the snapshot algorithm, so the label
// at (v, t) is the SCC of v in snapshot S_t (with the component named by its
// maximum vertex id).
type SCC struct{}

// sccState is the per-interval state: the FW label, the assigned component
// (-1 while unassigned), and the phase the interval last acted in.
type sccState struct {
	Fwd   int64
	Scc   int64
	Phase int64
}

// Aggregator names used by the SCC master.
const (
	sccChanged    = "scc.changed"
	sccUnassigned = "scc.unassigned"
)

// Init marks every vertex unassigned.
func (a *SCC) Init(v *core.VertexCtx) {
	v.SetState(v.Lifespan(), sccState{Fwd: -1, Scc: -1, Phase: -1})
}

// Compute implements both phases; the phase parity is master-controlled
// (even = FW, odd = BW).
func (a *SCC) Compute(v *core.VertexCtx, t ival.Interval, state any, msgs []any) {
	id := int64(v.ID())
	phase := int64(v.Phase())
	if v.Superstep() == 1 {
		// Enter FW round 0: claim the own id; the update broadcasts it.
		v.Aggregate(sccChanged, true)
		v.Aggregate(sccUnassigned, true)
		v.SetState(t, sccState{Fwd: id, Scc: -1, Phase: 0})
		return
	}
	st := state.(sccState)
	if st.Scc >= 0 {
		return // assigned: inert for the rest of the run
	}
	v.Aggregate(sccUnassigned, true)

	if st.Phase != phase {
		// First compute call of a new phase for this interval.
		if phase%2 == 0 {
			// FW restart: reset the label and re-broadcast.
			v.Aggregate(sccChanged, true)
			v.SetState(t, sccState{Fwd: id, Scc: -1, Phase: phase})
			return
		}
		// BW start: roots claim their component and notify in-neighbors.
		if st.Fwd == id {
			v.Aggregate(sccChanged, true)
			v.SetState(t, sccState{Fwd: st.Fwd, Scc: id, Phase: phase})
			a.sendBackward(v, t, id)
			return
		}
		v.SetState(t, sccState{Fwd: st.Fwd, Scc: -1, Phase: phase})
		return
	}

	if phase%2 == 0 {
		best := st.Fwd
		for _, m := range msgs {
			if x := m.(int64); x > best {
				best = x
			}
		}
		if best > st.Fwd {
			v.Aggregate(sccChanged, true)
			v.SetState(t, sccState{Fwd: best, Scc: -1, Phase: phase})
		}
		return
	}
	for _, m := range msgs {
		if c := m.(int64); c == st.Fwd {
			v.Aggregate(sccChanged, true)
			v.SetState(t, sccState{Fwd: st.Fwd, Scc: c, Phase: phase})
			a.sendBackward(v, t, c)
			return
		}
	}
}

// sendBackward notifies in-neighbors of a component claim, restricted to
// the sub-intervals where the in-edge is alive.
func (a *SCC) sendBackward(v *core.VertexCtx, t ival.Interval, c int64) {
	g := v.Graph()
	for _, ei := range g.InEdges(v.Index()) {
		e := g.Edge(int(ei))
		if x := e.Lifespan.Intersect(t); !x.IsEmpty() {
			v.SendTo(g.IndexOf(e.Src), x, c)
		}
	}
}

// Scatter broadcasts the FW label during FW phases; BW messaging is done
// directly in Compute over in-edges.
func (a *SCC) Scatter(v *core.VertexCtx, e *tgraph.Edge, t ival.Interval, state any) []core.OutMsg {
	if v.Phase()%2 != 0 {
		return nil
	}
	st := state.(sccState)
	if st.Scc >= 0 {
		return nil
	}
	return []core.OutMsg{{Value: st.Fwd}}
}

// sccMaster drives the FW/BW phase machine and halts when every interval of
// every vertex is assigned.
type sccMaster struct{}

// BeforeSuperstep advances the phase when the previous superstep was
// globally stable and halts when nothing is left unassigned.
func (m *sccMaster) BeforeSuperstep(mc *engine.MasterControl) {
	if mc.Superstep() <= 2 {
		return
	}
	changed, _ := mc.AggValue(sccChanged).(bool)
	if changed {
		return
	}
	unassigned, _ := mc.AggValue(sccUnassigned).(bool)
	if !unassigned {
		mc.Halt()
		return
	}
	mc.SetPhase(mc.Phase() + 1)
}

// Options returns the run options SCC needs.
func (a *SCC) Options() core.Options {
	return core.Options{
		ActivateAll:  true,
		Master:       &sccMaster{},
		PayloadCodec: codec.Int64{},
		Aggregators: map[string]*engine.Aggregator{
			sccChanged:    engine.BoolOr(),
			sccUnassigned: engine.BoolOr(),
		},
	}
}

// RunSCC executes time-independent strongly connected components.
func RunSCC(g *tgraph.Graph, workers int) (*core.Result, error) {
	a := &SCC{}
	opts := a.Options()
	opts.NumWorkers = workers
	return core.Run(g, a, opts)
}

// SCCLabels decodes a vertex's per-interval component labels (the label is
// the maximum vertex id in the component).
func SCCLabels(r *core.Result, id tgraph.VertexID) []IntervalValue {
	st := r.StateByID(id)
	if st == nil {
		return nil
	}
	var out []IntervalValue
	for _, p := range st.Parts() {
		if s, ok := p.Value.(sccState); ok && s.Scc >= 0 {
			out = append(out, IntervalValue{Interval: p.Interval, Value: s.Scc})
		}
	}
	return out
}
