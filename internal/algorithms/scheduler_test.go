package algorithms

import (
	"fmt"
	"reflect"
	"testing"

	"graphite/internal/core"
	"graphite/internal/engine"
	"graphite/internal/gen"
)

// TestSchedulerDeterminismMatrix is the ICM half of the scheduler
// determinism acceptance: SSSP, PageRank and EAT over random temporal graphs
// must produce bit-for-bit identical partitioned states with work stealing
// {off, on, chunk=1, chunk=64}. PageRank matters most here — it folds float
// rank mass in inbox order, so any reordering of message emission or
// delivery under stealing would flip low-order mantissa bits and fail the
// exact comparison. Run under -race in `make race` this doubles as the data-
// race gate for chunk claiming and cross-worker execution.
func TestSchedulerDeterminismMatrix(t *testing.T) {
	profiles := []gen.Profile{
		gen.Tiny("sched-mixed", 48, 4, 10, gen.MixedLife),
		gen.Tiny("sched-long", 36, 5, 8, gen.LongLife),
	}
	type mode struct {
		name  string
		steal bool
		chunk int
	}
	modes := []mode{
		{name: "steal-default", steal: true},
		{name: "steal-chunk1", steal: true, chunk: 1},
		{name: "steal-chunk64", steal: true, chunk: 64},
	}

	for _, p := range profiles {
		g, err := gen.Generate(p, 7)
		if err != nil {
			t.Fatalf("generate %s: %v", p.Name, err)
		}
		source := g.VertexAt(0).ID

		runAll := func(steal bool, chunk int) [3]*core.Result {
			t.Helper()
			sssp := &SSSP{Source: source}
			pr := NewPageRank(g, 6, 0.85)
			eat := &EAT{Source: source}
			progs := [3]core.Program{sssp, pr, eat}
			opts := [3]core.Options{sssp.Options(), pr.Options(), eat.Options()}
			var out [3]*core.Result
			for i := range progs {
				o := opts[i]
				o.NumWorkers = 3
				o.Steal = steal
				o.StealChunk = chunk
				r, err := runWith(g, progs[i], o)
				if err != nil {
					t.Fatalf("%s: run: %v", p.Name, err)
				}
				out[i] = r
			}
			return out
		}
		names := [3]string{"SSSP", "PageRank", "EAT"}

		base := runAll(false, 0) // the static schedule
		for _, m := range modes {
			got := runAll(m.steal, m.chunk)
			for a := range got {
				for v := 0; v < g.NumVertices(); v++ {
					if !reflect.DeepEqual(base[a].State(v).Parts(), got[a].State(v).Parts()) {
						t.Fatalf("%s %s [%s]: vertex %d partitions diverge from static schedule:\nbase: %v\n got: %v",
							p.Name, names[a], m.name, v, base[a].State(v).Parts(), got[a].State(v).Parts())
					}
				}
				if bm, gm := base[a].Metrics, got[a].Metrics; bm.Messages != gm.Messages || bm.MessageBytes != gm.MessageBytes {
					t.Fatalf("%s %s [%s]: message totals diverge: %d/%d bytes vs %d/%d",
						p.Name, names[a], m.name, gm.Messages, gm.MessageBytes, bm.Messages, bm.MessageBytes)
				}
			}
		}
	}
}

// TestBalancedPartitionerSameResults checks the PartitionBalanced satellite
// end to end: a skew-aware static partition must leave min-fold algorithm
// results unchanged (message arrival order may legitimately differ across
// partitions, so order-sensitive float folds are out of scope here), with
// and without stealing on top.
func TestBalancedPartitionerSameResults(t *testing.T) {
	p := gen.Tiny("sched-balance", 40, 4, 10, gen.MixedLife)
	g, err := gen.Generate(p, 11)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	source := g.VertexAt(0).ID
	weights := g.WorkWeights()

	run := func(balanced, steal bool) [2]*core.Result {
		t.Helper()
		sssp := &SSSP{Source: source}
		eat := &EAT{Source: source}
		progs := [2]core.Program{sssp, eat}
		opts := [2]core.Options{sssp.Options(), eat.Options()}
		var out [2]*core.Result
		for i := range progs {
			o := opts[i]
			o.NumWorkers = 3
			o.Steal = steal
			if balanced {
				o.Partitioner = engine.PartitionBalanced(weights)
			}
			r, err := runWith(g, progs[i], o)
			if err != nil {
				t.Fatalf("run(balanced=%v steal=%v): %v", balanced, steal, err)
			}
			out[i] = r
		}
		return out
	}

	base := run(false, false)
	names := [2]string{"SSSP", "EAT"}
	for _, cfg := range [][2]bool{{true, false}, {true, true}, {false, true}} {
		got := run(cfg[0], cfg[1])
		label := fmt.Sprintf("balanced=%v steal=%v", cfg[0], cfg[1])
		for a := range got {
			for v := 0; v < g.NumVertices(); v++ {
				if !reflect.DeepEqual(base[a].State(v).Parts(), got[a].State(v).Parts()) {
					t.Fatalf("%s [%s]: vertex %d partitions diverge:\nbase: %v\n got: %v",
						names[a], label, v, base[a].State(v).Parts(), got[a].State(v).Parts())
				}
			}
		}
	}
}
