// Package algorithms implements the 12 time-independent and time-dependent
// temporal graph algorithms of Sec. V of the ICM paper as interval-centric
// programs: BFS, WCC, SCC and PageRank (TI); and SSSP, EAT, FAST, LD, TMST,
// RH, LCC and TC (TD).
//
// Each algorithm is a constructor returning a core.Program plus the
// core.Options it needs; Run* helpers wire the two. The time-dependent
// algorithms read the "travel-time" and "travel-cost" edge properties; the
// time-independent ones use no properties, exactly as in the paper's
// evaluation setup.
package algorithms

import (
	"math"

	"graphite/internal/core"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// Unreachable is the state value of a vertex interval no journey reaches.
const Unreachable = int64(math.MaxInt64)

// travelProps reads the travel-time and travel-cost properties of an edge at
// time-point t. Both must be present for the edge to be traversable.
func travelProps(e *tgraph.Edge, t ival.Time) (tt, tc int64, ok bool) {
	tt, ok1 := e.Props.ValueAt(tgraph.PropTravelTime, t)
	tc, ok2 := e.Props.ValueAt(tgraph.PropTravelCost, t)
	return tt, tc, ok1 && ok2
}

// minInt64 folds two int64 message payloads to their minimum; the shared
// warp combiner of the monotone path algorithms.
func minInt64(a, b any) any {
	if a.(int64) < b.(int64) {
		return a
	}
	return b
}

// maxInt64 folds two int64 message payloads to their maximum.
func maxInt64(a, b any) any {
	if a.(int64) > b.(int64) {
		return a
	}
	return b
}

// IntervalValue is a decoded 〈interval, int64〉 state entry exposed to
// callers reading algorithm results.
type IntervalValue struct {
	Interval ival.Interval
	Value    int64
}

// Int64States decodes a vertex's final partitioned state into int64 entries,
// dropping partitions that still hold the init value sentinel.
func Int64States(st *core.PartitionedState, skip int64) []IntervalValue {
	var out []IntervalValue
	for _, p := range st.Parts() {
		v, ok := p.Value.(int64)
		if !ok || v == skip {
			continue
		}
		out = append(out, IntervalValue{Interval: p.Interval, Value: v})
	}
	return out
}

// MinInt64State returns the minimum int64 value across a vertex's
// partitions, or skip when none beat it.
func MinInt64State(st *core.PartitionedState, skip int64) int64 {
	best := skip
	for _, p := range st.Parts() {
		if v, ok := p.Value.(int64); ok && v < best {
			best = v
		}
	}
	return best
}

// runWith executes a program with explicit options; a test seam shared by
// the algorithm test suites.
func runWith(g *tgraph.Graph, prog core.Program, opts core.Options) (*core.Result, error) {
	return core.Run(g, prog, opts)
}
