package algorithms

import (
	"graphite/internal/codec"
	"graphite/internal/core"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// EAT computes the earliest arrival time from a single source departing at
// or after StartTime (Wu et al., adapted to ICM per Sec. V): the SSSP
// skeleton with the travel cost in the message replaced by the arrival time
// at the destination.
type EAT struct {
	Source    tgraph.VertexID
	StartTime ival.Time
}

// Init marks every vertex unreached.
func (a *EAT) Init(v *core.VertexCtx) {
	v.SetState(v.Lifespan(), Unreachable)
}

// Compute adopts the smallest arrival time offered for the active interval.
func (a *EAT) Compute(v *core.VertexCtx, t ival.Interval, state any, msgs []any) {
	if v.Superstep() == 1 {
		if v.ID() == a.Source {
			if at := t.Intersect(ival.From(a.StartTime)); !at.IsEmpty() {
				// Present at the source from the later of StartTime and its
				// birth; that is the journey's start.
				v.SetState(at, at.Start)
			}
		}
		return
	}
	best := state.(int64)
	for _, m := range msgs {
		if x := m.(int64); x < best {
			best = x
		}
	}
	if best < state.(int64) {
		v.SetState(t, best)
	}
}

// Scatter departs at the earliest point of the overlap and sends the arrival
// time at the sink, valid from that arrival onward.
func (a *EAT) Scatter(v *core.VertexCtx, e *tgraph.Edge, t ival.Interval, state any) []core.OutMsg {
	if state.(int64) == Unreachable {
		return nil
	}
	tt, _, ok := travelProps(e, t.Start)
	if !ok {
		return nil
	}
	arrive := ival.SatAdd(t.Start, tt)
	v.Emit(ival.From(arrive), arrive)
	return nil
}

// CombineWarp keeps only the earliest arrival in a message group.
func (a *EAT) CombineWarp(x, y any) any { return minInt64(x, y) }

// Options returns the run options EAT needs.
func (a *EAT) Options() core.Options {
	return core.Options{
		PropLabels:      []string{tgraph.PropTravelTime, tgraph.PropTravelCost},
		PayloadCodec:    codec.Int64{},
		ReceiverCombine: true,
	}
}

// RunEAT executes the earliest-arrival-time algorithm.
func RunEAT(g *tgraph.Graph, source tgraph.VertexID, startTime ival.Time, workers int) (*core.Result, error) {
	a := &EAT{Source: source, StartTime: startTime}
	opts := a.Options()
	opts.NumWorkers = workers
	return core.Run(g, a, opts)
}

// EarliestArrival returns the earliest arrival time at a vertex, or
// Unreachable.
func EarliestArrival(r *core.Result, id tgraph.VertexID) int64 {
	st := r.StateByID(id)
	if st == nil {
		return Unreachable
	}
	return MinInt64State(st, Unreachable)
}
