package algorithms

import (
	"graphite/internal/codec"
	"graphite/internal/core"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// FFM counts temporal feed-forward triangle motifs — the monetary-routing
// pattern the paper's introduction motivates for transaction networks: three
// edges u→v, v→w, u→w usable at strictly increasing times t1 < t2 < t3
// within their lifespans. It is an extension beyond the paper's twelve
// algorithms, built from the same announce/forward/close protocol as TC but
// ordered in time rather than concurrent: messages carry the earliest usable
// continuation time instead of relying on interval overlap.
//
// The count is per closing instance triple (e1, e2, e3), accumulated at the
// wedge's middle-to-sink vertex w.
type FFM struct{}

// ffmVal is the per-interval state: pending (origin, earliest-next-time)
// pairs flattened as [u1, t1, u2, t2, ...], then the motif count.
type ffmVal struct {
	Pending []int64
	Count   int64
}

// Init seeds an empty state.
func (a *FFM) Init(v *core.VertexCtx) {
	v.SetState(v.Lifespan(), ffmVal{})
}

// Compute implements the 3-step schedule.
func (a *FFM) Compute(v *core.VertexCtx, t ival.Interval, state any, msgs []any) {
	switch v.Superstep() {
	case 1:
		// Announce: the marker makes scatter fire over every out-edge.
		v.SetState(t, ffmVal{Pending: []int64{int64(v.ID()), -1}})
	case 2:
		var collect []int64
		for _, m := range msgs {
			collect = append(collect, m.([]int64)...)
		}
		if len(collect) > 0 {
			v.SetState(t, ffmVal{Pending: collect})
		}
	case 3:
		a.close(v, t, msgs)
	}
}

// close counts, for each forwarded (origin, t2) pair, the closing edges
// origin→here usable at some t3 > t2.
func (a *FFM) close(v *core.VertexCtx, t ival.Interval, msgs []any) {
	g := v.Graph()
	self := int64(v.ID())
	// Closing edge windows indexed by source.
	windows := map[int64][]ival.Interval{}
	for _, ei := range g.InEdges(v.Index()) {
		e := g.Edge(int(ei))
		windows[int64(e.Src)] = append(windows[int64(e.Src)], e.Lifespan)
	}
	var count int64
	for _, m := range msgs {
		pairs := m.([]int64)
		for i := 0; i+1 < len(pairs); i += 2 {
			u, t3min := pairs[i], pairs[i+1] // pair value = earliest usable t3
			if u == self {
				continue
			}
			for _, w := range windows[u] {
				if t3 := maxTime(w.Start, t3min); t3 < w.End {
					count++
				}
			}
		}
	}
	if count > 0 {
		v.SetState(t, ffmVal{Count: count})
	}
}

func maxTime(a, b ival.Time) ival.Time {
	if a > b {
		return a
	}
	return b
}

// Scatter announces in superstep 1 (pair value -1 marks "pick my departure
// here") and forwards time-shifted pairs in superstep 2.
func (a *FFM) Scatter(v *core.VertexCtx, e *tgraph.Edge, t ival.Interval, state any) []core.OutMsg {
	if v.Superstep() > 2 {
		return nil
	}
	st := state.(ffmVal)
	if len(st.Pending) == 0 {
		return nil
	}
	var out []int64
	for i := 0; i+1 < len(st.Pending); i += 2 {
		u, after := st.Pending[i], st.Pending[i+1]
		if v.Superstep() == 1 {
			// First hop: u departs at the earliest point of this edge's
			// window; the chain may continue strictly later.
			out = append(out, u, e.Lifespan.Start+1)
			continue
		}
		// Second hop: depart at the earliest usable point of this window.
		t2 := maxTime(e.Lifespan.Start, after)
		if t2 >= e.Lifespan.End {
			continue
		}
		out = append(out, u, t2+1)
	}
	if len(out) == 0 {
		return nil
	}
	v.Emit(ival.Universe, out)
	return nil
}

// Options returns the run options FFM needs.
func (a *FFM) Options() core.Options {
	return core.Options{
		MaxSupersteps: 3,
		PayloadCodec:  codec.Int64Slice{},
		// The motif is defined over edge lifespans, not property pieces:
		// one scatter per edge, so restrict partitioning to a label no edge
		// carries.
		PropLabels: []string{"ffm-none"},
	}
}

// RunFFM executes temporal feed-forward motif counting.
func RunFFM(g *tgraph.Graph, workers int) (*core.Result, error) {
	a := &FFM{}
	opts := a.Options()
	opts.NumWorkers = workers
	return core.Run(g, a, opts)
}

// FFMTotal returns the number of feed-forward motifs in the graph.
func FFMTotal(r *core.Result) int64 {
	var sum int64
	for i := 0; i < r.Graph.NumVertices(); i++ {
		for _, p := range r.State(i).Parts() {
			if s, ok := p.Value.(ffmVal); ok {
				sum += s.Count
			}
		}
	}
	return sum
}
