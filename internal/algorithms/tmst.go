package algorithms

import (
	"graphite/internal/codec"
	"graphite/internal/core"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// TMST computes a time-minimum spanning tree rooted at the source (Huang et
// al. [9], per Sec. V): the EAT skeleton with the parent vertex id added to
// state and message so the earliest-arrival tree can be rebuilt. Ties on
// arrival time break towards the smaller parent id for determinism.
type TMST struct {
	Source    tgraph.VertexID
	StartTime ival.Time
}

// tmstValue is the state and message payload: arrival time plus the parent
// the journey came through. It is encoded as codec.Int64Pair on the wire.
type tmstValue = codec.Int64Pair

func tmstLess(a, b tmstValue) bool {
	if a.A != b.A {
		return a.A < b.A
	}
	return a.B < b.B
}

// Init marks every vertex unreached with no parent.
func (a *TMST) Init(v *core.VertexCtx) {
	v.SetState(v.Lifespan(), tmstValue{A: Unreachable, B: -1})
}

// Compute adopts the smallest (arrival, parent) pair for the interval.
func (a *TMST) Compute(v *core.VertexCtx, t ival.Interval, state any, msgs []any) {
	if v.Superstep() == 1 {
		if v.ID() == a.Source {
			if at := t.Intersect(ival.From(a.StartTime)); !at.IsEmpty() {
				v.SetState(at, tmstValue{A: at.Start, B: int64(a.Source)})
			}
		}
		return
	}
	best := state.(tmstValue)
	for _, m := range msgs {
		if x := m.(tmstValue); tmstLess(x, best) {
			best = x
		}
	}
	if best != state.(tmstValue) {
		v.SetState(t, best)
	}
}

// Scatter forwards (arrival-at-sink, this-vertex) along the edge.
func (a *TMST) Scatter(v *core.VertexCtx, e *tgraph.Edge, t ival.Interval, state any) []core.OutMsg {
	if state.(tmstValue).A == Unreachable {
		return nil
	}
	tt, _, ok := travelProps(e, t.Start)
	if !ok {
		return nil
	}
	arrive := ival.SatAdd(t.Start, tt)
	v.Emit(ival.From(arrive), tmstValue{A: arrive, B: int64(v.ID())})
	return nil
}

// CombineWarp keeps the lexicographically smallest (arrival, parent).
func (a *TMST) CombineWarp(x, y any) any {
	if tmstLess(x.(tmstValue), y.(tmstValue)) {
		return x
	}
	return y
}

// Options returns the run options TMST needs.
func (a *TMST) Options() core.Options {
	return core.Options{
		PropLabels:      []string{tgraph.PropTravelTime, tgraph.PropTravelCost},
		PayloadCodec:    codec.PairCodec{},
		ReceiverCombine: true,
	}
}

// RunTMST executes the time-minimum spanning tree algorithm.
func RunTMST(g *tgraph.Graph, source tgraph.VertexID, startTime ival.Time, workers int) (*core.Result, error) {
	a := &TMST{Source: source, StartTime: startTime}
	opts := a.Options()
	opts.NumWorkers = workers
	return core.Run(g, a, opts)
}

// TreeEdge describes one vertex's attachment in the earliest-arrival tree.
type TreeEdge struct {
	Vertex  tgraph.VertexID
	Parent  tgraph.VertexID
	Arrival ival.Time
}

// TMSTTree extracts the tree: for each reached vertex (except the source),
// the parent on its earliest-arrival journey.
func TMSTTree(r *core.Result) []TreeEdge {
	var out []TreeEdge
	for i := 0; i < r.Graph.NumVertices(); i++ {
		v := r.Graph.VertexAt(i)
		best := tmstValue{A: Unreachable, B: -1}
		for _, p := range r.State(i).Parts() {
			if x, ok := p.Value.(tmstValue); ok && tmstLess(x, best) {
				best = x
			}
		}
		if best.A == Unreachable || tgraph.VertexID(best.B) == v.ID {
			continue
		}
		out = append(out, TreeEdge{Vertex: v.ID, Parent: tgraph.VertexID(best.B), Arrival: best.A})
	}
	return out
}
