package algorithms

import (
	"testing"

	"graphite/internal/core"
	"graphite/internal/gen"
	ival "graphite/internal/interval"
	"graphite/internal/ref"
	"graphite/internal/tgraph"
)

// tinyGraphs builds a set of small random temporal graphs with diverse
// lifespan characteristics for oracle validation.
func tinyGraphs(t *testing.T) []*tgraph.Graph {
	t.Helper()
	var gs []*tgraph.Graph
	profiles := []gen.Profile{
		gen.Tiny("t-unit", 40, 4, 6, gen.UnitLife),
		gen.Tiny("t-long", 40, 4, 8, gen.LongLife),
		gen.Tiny("t-mixed", 50, 5, 10, gen.MixedLife),
		gen.Tiny("t-full", 30, 3, 6, gen.FullLife),
	}
	churn := gen.Tiny("t-churn", 40, 4, 12, gen.LongLife)
	churn.VertexChurn = true
	profiles = append(profiles, churn)
	for _, p := range profiles {
		for seed := int64(1); seed <= 3; seed++ {
			g, err := gen.Generate(p, seed)
			if err != nil {
				t.Fatalf("generate %s/%d: %v", p.Name, seed, err)
			}
			gs = append(gs, g)
		}
	}
	return gs
}

// stateAt reads a vertex's int64 state at time t, with dflt outside.
func stateAt(r *core.Result, v int, t ival.Time, dflt int64) int64 {
	x, ok := r.State(v).Get(t)
	if !ok {
		return dflt
	}
	if n, ok := x.(int64); ok {
		return n
	}
	return dflt
}

func TestBFSMatchesSnapshotOracle(t *testing.T) {
	for gi, g := range tinyGraphs(t) {
		source := g.VertexAt(0).ID
		r, err := RunBFS(g, source, 4)
		if err != nil {
			t.Fatalf("graph %d: RunBFS: %v", gi, err)
		}
		for ts := g.Lifespan().Start; ts < g.Horizon(); ts++ {
			want := ref.BFSLevels(g, ts, source)
			for v := 0; v < g.NumVertices(); v++ {
				got := stateAt(r, v, ts, Unreachable)
				if got != want[v] {
					t.Fatalf("graph %d t=%d vertex %d: BFS level %d, oracle %d", gi, ts, v, got, want[v])
				}
			}
		}
	}
}

func TestWCCMatchesSnapshotOracle(t *testing.T) {
	for gi, g := range tinyGraphs(t) {
		r, err := RunWCC(g, 4)
		if err != nil {
			t.Fatalf("graph %d: RunWCC: %v", gi, err)
		}
		for ts := g.Lifespan().Start; ts < g.Horizon(); ts++ {
			want := ref.WCCLabels(g, ts)
			for v := 0; v < g.NumVertices(); v++ {
				got := stateAt(r, v, ts, ref.Unreachable)
				if got != want[v] {
					t.Fatalf("graph %d t=%d vertex %d: WCC label %d, oracle %d", gi, ts, v, got, want[v])
				}
			}
		}
	}
}

func TestSCCMatchesSnapshotOracle(t *testing.T) {
	for gi, g := range tinyGraphs(t) {
		r, err := RunSCC(g, 4)
		if err != nil {
			t.Fatalf("graph %d: RunSCC: %v", gi, err)
		}
		for ts := g.Lifespan().Start; ts < g.Horizon(); ts++ {
			want := ref.SCCLabels(g, ts)
			for v := 0; v < g.NumVertices(); v++ {
				got := int64(-1)
				if x, ok := r.State(v).Get(ts); ok {
					if s, ok := x.(interface{ component() int64 }); ok {
						got = s.component()
					}
				}
				_ = got
				labels := SCCLabels(r, g.VertexAt(v).ID)
				got = -1
				for _, l := range labels {
					if l.Interval.Contains(ts) {
						got = l.Value
					}
				}
				if got != want[v] && !(want[v] == -1 && got == -1) {
					t.Fatalf("graph %d t=%d vertex %d: SCC label %d, oracle %d", gi, ts, v, got, want[v])
				}
			}
		}
	}
}

func TestPageRankMatchesSnapshotOracle(t *testing.T) {
	const iters = 5
	for gi, g := range tinyGraphs(t) {
		r, err := RunPageRank(g, iters, 4)
		if err != nil {
			t.Fatalf("graph %d: RunPageRank: %v", gi, err)
		}
		for ts := g.Lifespan().Start; ts < g.Horizon(); ts++ {
			want := ref.PageRank(g, ts, iters, 0.85)
			for v := 0; v < g.NumVertices(); v++ {
				if !g.VertexAt(v).Lifespan.Contains(ts) {
					continue
				}
				x, ok := r.State(v).Get(ts)
				if !ok {
					t.Fatalf("graph %d t=%d vertex %d: no rank state", gi, ts, v)
				}
				got := x.(float64)
				if diff := got - want[v]; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("graph %d t=%d vertex %d: rank %g, oracle %g", gi, ts, v, got, want[v])
				}
			}
		}
	}
}

func TestSSSPMatchesTemporalOracle(t *testing.T) {
	for gi, g := range tinyGraphs(t) {
		source := g.VertexAt(0).ID
		r, err := RunSSSP(g, source, 0, 4)
		if err != nil {
			t.Fatalf("graph %d: RunSSSP: %v", gi, err)
		}
		d := ref.SSSP(g, source, 0)
		for v := 0; v < g.NumVertices(); v++ {
			for ts := ival.Time(0); ts < d.Tmax; ts++ {
				if !g.VertexAt(v).Lifespan.Contains(ts) {
					continue
				}
				got := stateAt(r, v, ts, Unreachable)
				if got != d.Cost[v][ts] {
					t.Fatalf("graph %d vertex %d t=%d: cost %d, oracle %d", gi, v, ts, got, d.Cost[v][ts])
				}
			}
		}
	}
}

func TestEATMatchesTemporalOracle(t *testing.T) {
	for gi, g := range tinyGraphs(t) {
		source := g.VertexAt(0).ID
		r, err := RunEAT(g, source, 0, 4)
		if err != nil {
			t.Fatalf("graph %d: RunEAT: %v", gi, err)
		}
		want := ref.EAT(g, source, 0)
		for v := 0; v < g.NumVertices(); v++ {
			got := EarliestArrival(r, g.VertexAt(v).ID)
			if got != want[v] {
				t.Fatalf("graph %d vertex %d: EAT %d, oracle %d", gi, v, got, want[v])
			}
		}
	}
}

func TestRHMatchesTemporalOracle(t *testing.T) {
	for gi, g := range tinyGraphs(t) {
		source := g.VertexAt(0).ID
		r, err := RunRH(g, source, 0, 4)
		if err != nil {
			t.Fatalf("graph %d: RunRH: %v", gi, err)
		}
		want := ref.Reachable(g, source, 0)
		for v := 0; v < g.NumVertices(); v++ {
			if got := Reachable(r, g.VertexAt(v).ID); got != want[v] {
				t.Fatalf("graph %d vertex %d: reachable %v, oracle %v", gi, v, got, want[v])
			}
		}
	}
}

func TestFASTMatchesTemporalOracle(t *testing.T) {
	for gi, g := range tinyGraphs(t) {
		source := g.VertexAt(0).ID
		r, err := RunFAST(g, source, 0, 4)
		if err != nil {
			t.Fatalf("graph %d: RunFAST: %v", gi, err)
		}
		want := ref.Fastest(g, source, 0)
		for v := 0; v < g.NumVertices(); v++ {
			got := FastestDuration(r, g.VertexAt(v).ID)
			if got != want[v] {
				t.Fatalf("graph %d vertex %d: duration %d, oracle %d", gi, v, got, want[v])
			}
		}
	}
}

func TestLDMatchesTemporalOracle(t *testing.T) {
	for gi, g := range tinyGraphs(t) {
		target := g.VertexAt(g.NumVertices() - 1).ID
		deadline := g.Horizon()
		r, err := RunLD(g, target, deadline, 4)
		if err != nil {
			t.Fatalf("graph %d: RunLD: %v", gi, err)
		}
		want := ref.LatestDeparture(g, target, deadline)
		for v := 0; v < g.NumVertices(); v++ {
			got := LatestDeparture(r, g.VertexAt(v).ID)
			if got != want[v] {
				t.Fatalf("graph %d vertex %d: LD %d, oracle %d", gi, v, got, want[v])
			}
		}
	}
}

func TestTMSTIsAValidEarliestArrivalTree(t *testing.T) {
	for gi, g := range tinyGraphs(t) {
		source := g.VertexAt(0).ID
		r, err := RunTMST(g, source, 0, 4)
		if err != nil {
			t.Fatalf("graph %d: RunTMST: %v", gi, err)
		}
		eat := ref.EAT(g, source, 0)
		tree := TMSTTree(r)
		inTree := map[tgraph.VertexID]TreeEdge{}
		for _, te := range tree {
			inTree[te.Vertex] = te
		}
		for v := 0; v < g.NumVertices(); v++ {
			id := g.VertexAt(v).ID
			if id == source {
				continue
			}
			te, ok := inTree[id]
			if eat[v] == ref.Unreachable {
				if ok {
					t.Fatalf("graph %d: unreachable vertex %d in tree", gi, id)
				}
				continue
			}
			if !ok {
				t.Fatalf("graph %d: reachable vertex %d missing from tree", gi, id)
			}
			if te.Arrival != eat[v] {
				t.Fatalf("graph %d vertex %d: tree arrival %d, oracle EAT %d", gi, id, te.Arrival, eat[v])
			}
			// The parent hop must be feasible: departing the parent at some
			// d >= EAT(parent) over an alive edge arrives exactly at Arrival.
			pi := g.IndexOf(te.Parent)
			if pi < 0 || eat[pi] == ref.Unreachable {
				t.Fatalf("graph %d vertex %d: parent %d unreachable", gi, id, te.Parent)
			}
			feasible := false
			for _, ei := range g.OutEdges(pi) {
				e := g.Edge(int(ei))
				if e.Dst != id {
					continue
				}
				for d := e.Lifespan.Start; d < e.Lifespan.End; d++ {
					tt, _, ok := travelProps(e, d)
					if ok && d >= eat[pi] && d+tt == te.Arrival {
						feasible = true
					}
				}
			}
			if !feasible {
				t.Fatalf("graph %d vertex %d: no feasible parent hop from %d arriving at %d",
					gi, id, te.Parent, te.Arrival)
			}
		}
	}
}

func TestTCMatchesSnapshotOracle(t *testing.T) {
	for gi, g := range tinyGraphs(t) {
		r, err := RunTC(g, 4)
		if err != nil {
			t.Fatalf("graph %d: RunTC: %v", gi, err)
		}
		for ts := g.Lifespan().Start; ts < g.Horizon(); ts++ {
			want := ref.Closures(g, ts)
			var wantTotal int64
			for v := 0; v < g.NumVertices(); v++ {
				wantTotal += want[v]
				var got int64
				if x, ok := r.State(v).Get(ts); ok {
					if s, ok := x.(tcVal); ok {
						got = s.Count
					}
				}
				if got != want[v] {
					t.Fatalf("graph %d t=%d vertex %d: closures %d, oracle %d", gi, ts, v, got, want[v])
				}
			}
			if got := TriangleTotal(r, ts); got != wantTotal/3 {
				t.Fatalf("graph %d t=%d: triangles %d, oracle %d", gi, ts, got, wantTotal/3)
			}
		}
	}
}

func TestLCCMatchesSnapshotOracle(t *testing.T) {
	for gi, g := range tinyGraphs(t) {
		r, err := RunLCC(g, 4)
		if err != nil {
			t.Fatalf("graph %d: RunLCC: %v", gi, err)
		}
		for ts := g.Lifespan().Start; ts < g.Horizon(); ts++ {
			counts, degs := ref.LCCCounts(g, ts)
			for v := 0; v < g.NumVertices(); v++ {
				want := 0.0
				if degs[v] >= 2 && counts[v] > 0 {
					want = float64(counts[v]) / float64(degs[v]*(degs[v]-1))
				}
				got := Coefficient(r, g.VertexAt(v).ID, ts)
				if diff := got - want; diff > 1e-12 || diff < -1e-12 {
					t.Fatalf("graph %d t=%d vertex %d: lcc %g, oracle %g (count %d deg %d)",
						gi, ts, v, got, want, counts[v], degs[v])
				}
			}
		}
	}
}

// TestICMMessagesFewerOnLongLifespans checks the paper's core performance
// claim at the primitive level: on long-lifespan graphs ICM sends far fewer
// messages than per-snapshot execution would.
func TestICMMessagesFewerOnLongLifespans(t *testing.T) {
	g, err := gen.Generate(gen.Tiny("msg-long", 60, 5, 16, gen.LongLife), 7)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunBFS(g, g.VertexAt(0).ID, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A per-snapshot run sends at least one message per (reached edge,
	// snapshot); ICM must stay well below the edge-instance count.
	var instances int64
	for i := 0; i < g.NumEdges(); i++ {
		instances += g.Edge(i).Lifespan.Intersect(ival.New(0, g.Horizon())).Length()
	}
	if r.Metrics.Messages*2 > instances {
		t.Errorf("ICM messages %d vs %d edge instances: expected sharing", r.Metrics.Messages, instances)
	}
}

// TestAblationPathsPreserveResults runs BFS and SSSP under every ablation
// switch, asserting results identical to the default path — the paper's
// claim that warp suppression "does not affect correctness" extended to
// every execution mode.
func TestAblationPathsPreserveResults(t *testing.T) {
	g, err := gen.Generate(gen.Tiny("abl", 40, 4, 8, gen.MixedLife), 5)
	if err != nil {
		t.Fatal(err)
	}
	source := g.VertexAt(0).ID
	variants := []struct {
		name   string
		mutate func(*core.Options)
	}{
		{"no-warp", func(o *core.Options) { o.DisableWarp = true }},
		{"no-suppression", func(o *core.Options) { o.DisableSuppression = true }},
		{"no-combiner", func(o *core.Options) { o.DisableWarpCombiner = true; o.ReceiverCombine = false }},
		{"eager-suppression", func(o *core.Options) { o.SuppressionThreshold = 0.01 }},
	}

	runBoth := func(mutate func(*core.Options)) (*core.Result, *core.Result) {
		bfs := &BFS{Source: source}
		bo := bfs.Options()
		bo.NumWorkers = 2
		mutate(&bo)
		br, err := runWith(g, bfs, bo)
		if err != nil {
			t.Fatalf("bfs: %v", err)
		}
		sssp := &SSSP{Source: source}
		so := sssp.Options()
		so.NumWorkers = 2
		mutate(&so)
		sr, err := runWith(g, sssp, so)
		if err != nil {
			t.Fatalf("sssp: %v", err)
		}
		return br, sr
	}

	wantBFS, wantSSSP := runBoth(func(*core.Options) {})
	for _, v := range variants {
		gotBFS, gotSSSP := runBoth(v.mutate)
		for i := 0; i < g.NumVertices(); i++ {
			for ts := g.Lifespan().Start; ts < g.Horizon(); ts++ {
				wb, _ := wantBFS.State(i).Get(ts)
				gb, _ := gotBFS.State(i).Get(ts)
				if wb != gb {
					t.Fatalf("%s: BFS state[%d]@%d = %v, want %v", v.name, i, ts, gb, wb)
				}
				ws, _ := wantSSSP.State(i).Get(ts)
				gs, _ := gotSSSP.State(i).Get(ts)
				if ws != gs {
					t.Fatalf("%s: SSSP state[%d]@%d = %v, want %v", v.name, i, ts, gs, ws)
				}
			}
		}
	}
}

// TestSliceConsistency checks the temporal-slice query: running BFS on the
// windowed sub-graph must agree, inside the window, with running it on the
// full graph (snapshot reducibility survives slicing).
func TestSliceConsistency(t *testing.T) {
	g, err := gen.Generate(gen.Tiny("slice", 50, 4, 12, gen.MixedLife), 13)
	if err != nil {
		t.Fatal(err)
	}
	window := ival.New(3, 9)
	sliced, err := tgraph.Slice(g, window)
	if err != nil {
		t.Fatalf("Slice: %v", err)
	}
	source := g.VertexAt(0).ID
	if sliced.IndexOf(source) < 0 {
		t.Skip("source not alive in the window for this seed")
	}
	full, err := RunBFS(g, source, 3)
	if err != nil {
		t.Fatal(err)
	}
	win, err := RunBFS(sliced, source, 3)
	if err != nil {
		t.Fatal(err)
	}
	for ts := window.Start; ts < window.End; ts++ {
		for i := 0; i < g.NumVertices(); i++ {
			id := g.VertexAt(i).ID
			si := sliced.IndexOf(id)
			var fGot, wGot any
			if x, ok := full.State(i).Get(ts); ok {
				fGot = x
			}
			if si >= 0 {
				if x, ok := win.State(si).Get(ts); ok {
					wGot = x
				}
			}
			if fGot != wGot && !(fGot == nil && wGot == nil) {
				t.Fatalf("v=%d t=%d: full=%v window=%v", id, ts, fGot, wGot)
			}
		}
	}
}

// TestPerfectSharingOnStaticGraphs pins the Sec. VII-B6 claim: when every
// entity spans the whole lifetime (usrn-like), ICM shares everything — one
// compute call per vertex per activation wave and one message per edge, no
// matter how many snapshots the graph has.
func TestPerfectSharingOnStaticGraphs(t *testing.T) {
	p := gen.Tiny("static", 64, 4, 32, gen.FullLife)
	p.PropSegments = 1 // time-invariant properties
	g, err := gen.Generate(p, 21)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunBFS(g, g.VertexAt(0).ID, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Every vertex converges to a single partitioned state: BFS levels are
	// constant over the whole (shared) lifetime.
	if r.Stats.MaxPartitions != 1 {
		t.Errorf("static graph should keep 1 partition per vertex, saw %d", r.Stats.MaxPartitions)
	}
	// Messages are shared across all 32 snapshots: the total must be well
	// below one per (edge, snapshot).
	perSnapshot := int64(g.NumEdges()) * int64(g.SnapshotCount())
	if r.Metrics.Messages*8 > perSnapshot {
		t.Errorf("messages %d should be <12.5%% of %d edge-instances", r.Metrics.Messages, perSnapshot)
	}
}

// TestFFMMatchesOracle validates the feed-forward motif extension against
// the brute-force triple enumeration.
func TestFFMMatchesOracle(t *testing.T) {
	// Hand-checked instance: 0→1 [0,2), 1→2 [1,4), 0→2 [3,5): t1=0 < t2=1 <
	// t3=3 works, exactly one motif. Shrinking the closing window kills it.
	b := tgraph.NewBuilder(3, 3)
	for v := tgraph.VertexID(0); v < 3; v++ {
		b.AddVertex(v, ival.New(0, 6))
	}
	b.AddEdge(0, 0, 1, ival.New(0, 2))
	b.AddEdge(1, 1, 2, ival.New(1, 4))
	b.AddEdge(2, 0, 2, ival.New(3, 5))
	g := b.MustBuild()
	r, err := RunFFM(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := FFMTotal(r), ref.FeedForwardMotifs(g); got != want || want != 1 {
		t.Fatalf("motifs = %d, oracle %d, want 1", got, want)
	}

	b2 := tgraph.NewBuilder(3, 3)
	for v := tgraph.VertexID(0); v < 3; v++ {
		b2.AddVertex(v, ival.New(0, 6))
	}
	b2.AddEdge(0, 0, 1, ival.New(0, 2))
	b2.AddEdge(1, 1, 2, ival.New(1, 4))
	b2.AddEdge(2, 0, 2, ival.New(0, 2)) // closes before the chain can
	g2 := b2.MustBuild()
	r2, err := RunFFM(g2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := FFMTotal(r2); got != 0 || ref.FeedForwardMotifs(g2) != 0 {
		t.Fatalf("infeasible motif counted: %d", got)
	}

	// Randomized cross-validation over the usual lifespan regimes.
	for gi, g := range tinyGraphs(t) {
		r, err := RunFFM(g, 4)
		if err != nil {
			t.Fatalf("graph %d: %v", gi, err)
		}
		if got, want := FFMTotal(r), ref.FeedForwardMotifs(g); got != want {
			t.Fatalf("graph %d: motifs %d, oracle %d", gi, got, want)
		}
	}
}
