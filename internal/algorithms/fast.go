package algorithms

import (
	"math"

	"graphite/internal/codec"
	"graphite/internal/core"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// FAST computes the fastest (minimum-duration) time-respecting journey from
// a single source to every vertex (Wu et al. [6], per Sec. V): duration is
// the final arrival time minus the departure time from the source.
//
// As the paper sketches, messages carry the time at which the journey
// started at the source and the state maintains, per arrival interval, the
// journey start that minimizes duration. The dominance rule: for a fixed
// arrival point, the latest source start wins; journeys with distinct
// arrival intervals are kept apart by the partitioned state, so the state
// holds the *maximum* start time per interval and the fastest duration at a
// vertex is min over partitions of (interval start − start time).
//
// The source fans out one message per departure time-point of each out-edge
// window (clamped at the graph horizon); downstream propagation departs at
// the earliest point of each overlap, which is optimal for a fixed start.
type FAST struct {
	Source    tgraph.VertexID
	StartTime ival.Time
	// Horizon clamps source departure enumeration on unbounded edge
	// windows; RunFAST sets it to the graph horizon.
	Horizon ival.Time
}

// fastAtSource marks the source's own state: any start time is available.
const fastAtSource = int64(math.MaxInt64)

// fastNone marks intervals no journey has reached.
const fastNone = int64(-1)

// Init marks every vertex unreached.
func (a *FAST) Init(v *core.VertexCtx) {
	v.SetState(v.Lifespan(), fastNone)
}

// Compute keeps the latest journey start per arrival interval.
func (a *FAST) Compute(v *core.VertexCtx, t ival.Interval, state any, msgs []any) {
	if v.Superstep() == 1 {
		if v.ID() == a.Source {
			if at := t.Intersect(ival.From(a.StartTime)); !at.IsEmpty() {
				v.SetState(at, fastAtSource)
			}
		}
		return
	}
	best := state.(int64)
	for _, m := range msgs {
		if x := m.(int64); x > best {
			best = x
		}
	}
	if best > state.(int64) {
		v.SetState(t, best)
	}
}

// Scatter propagates journey starts. At the source every departure
// time-point in the window begins a fresh journey; elsewhere the journey
// departs at the earliest overlap point.
func (a *FAST) Scatter(v *core.VertexCtx, e *tgraph.Edge, t ival.Interval, state any) []core.OutMsg {
	s0 := state.(int64)
	if s0 == fastNone {
		return nil
	}
	tt, _, ok := travelProps(e, t.Start)
	if !ok {
		return nil
	}
	if s0 != fastAtSource {
		v.Emit(ival.From(ival.SatAdd(t.Start, tt)), s0)
		return nil
	}
	// Source fan-out: one journey per departure point, clamped to the
	// horizon (departing later than the horizon is indistinguishable from
	// departing at it, as nothing in the graph changes beyond it).
	end := t.End
	if hz := ival.SatAdd(a.Horizon, 1); end > hz {
		end = hz
	}
	for d := t.Start; d < end; d++ {
		v.Emit(ival.From(ival.SatAdd(d, tt)), d)
	}
	return nil
}

// CombineWarp keeps the latest start in a group.
func (a *FAST) CombineWarp(x, y any) any { return maxInt64(x, y) }

// Options returns the run options FAST needs.
func (a *FAST) Options() core.Options {
	return core.Options{
		PropLabels:      []string{tgraph.PropTravelTime, tgraph.PropTravelCost},
		PayloadCodec:    codec.Int64{},
		ReceiverCombine: true,
	}
}

// RunFAST executes the fastest-journey algorithm.
func RunFAST(g *tgraph.Graph, source tgraph.VertexID, startTime ival.Time, workers int) (*core.Result, error) {
	a := &FAST{Source: source, StartTime: startTime, Horizon: g.Horizon()}
	opts := a.Options()
	opts.NumWorkers = workers
	return core.Run(g, a, opts)
}

// FastestDuration returns the minimum journey duration from the source to
// the vertex, 0 for the source itself, or Unreachable.
func FastestDuration(r *core.Result, id tgraph.VertexID) int64 {
	st := r.StateByID(id)
	if st == nil {
		return Unreachable
	}
	best := Unreachable
	for _, p := range st.Parts() {
		s0, ok := p.Value.(int64)
		if !ok || s0 == fastNone {
			continue
		}
		if s0 == fastAtSource {
			return 0
		}
		if d := p.Interval.Start - s0; d < best {
			best = d
		}
	}
	return best
}
