package algorithms

import (
	"graphite/internal/codec"
	"graphite/internal/core"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// WCC is time-independent weakly connected components (Sec. V): minimum
// vertex-id label propagation over edges treated as undirected. The
// per-time-point label equals the component label on each snapshot.
type WCC struct{}

// Init seeds every vertex with its own id as component label.
func (a *WCC) Init(v *core.VertexCtx) {
	v.SetState(v.Lifespan(), Unreachable)
}

// Compute adopts the smallest label seen.
func (a *WCC) Compute(v *core.VertexCtx, t ival.Interval, state any, msgs []any) {
	if v.Superstep() == 1 {
		// Claim the own id: the state update triggers the initial scatter.
		v.SetState(t, int64(v.ID()))
		return
	}
	best := state.(int64)
	for _, m := range msgs {
		if x := m.(int64); x < best {
			best = x
		}
	}
	if best < state.(int64) {
		v.SetState(t, best)
	}
}

// Scatter forwards the current label over the overlap interval.
func (a *WCC) Scatter(v *core.VertexCtx, e *tgraph.Edge, t ival.Interval, state any) []core.OutMsg {
	v.Emit(ival.Interval{}, state.(int64))
	return nil
}

// CombineWarp keeps the smallest label in a group.
func (a *WCC) CombineWarp(x, y any) any { return minInt64(x, y) }

// Options returns the run options WCC needs: undirected propagation.
func (a *WCC) Options() core.Options {
	return core.Options{
		Undirected:      true,
		PayloadCodec:    codec.Int64{},
		ReceiverCombine: true,
	}
}

// RunWCC executes time-independent weakly connected components.
func RunWCC(g *tgraph.Graph, workers int) (*core.Result, error) {
	a := &WCC{}
	opts := a.Options()
	opts.NumWorkers = workers
	return core.Run(g, a, opts)
}

// WCCLabels decodes the per-interval component labels of a vertex.
func WCCLabels(r *core.Result, id tgraph.VertexID) []IntervalValue {
	st := r.StateByID(id)
	if st == nil {
		return nil
	}
	return Int64States(st, Unreachable)
}
