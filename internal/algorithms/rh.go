package algorithms

import (
	"graphite/internal/codec"
	"graphite/internal/core"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// RH computes time-respecting reachability from a single source (Wu et
// al. [21], per Sec. V): the SSSP skeleton with the travel cost replaced by
// a flag. A vertex's state holds 1 for the intervals during which a
// time-respecting journey from the source can have arrived.
type RH struct {
	Source    tgraph.VertexID
	StartTime ival.Time
}

// Init marks every vertex not reached.
func (a *RH) Init(v *core.VertexCtx) {
	v.SetState(v.Lifespan(), int64(0))
}

// Compute marks the active interval reached on any incoming flag.
func (a *RH) Compute(v *core.VertexCtx, t ival.Interval, state any, msgs []any) {
	if v.Superstep() == 1 {
		if v.ID() == a.Source {
			if at := t.Intersect(ival.From(a.StartTime)); !at.IsEmpty() {
				v.SetState(at, int64(1))
			}
		}
		return
	}
	if state.(int64) == 0 && len(msgs) > 0 {
		v.SetState(t, int64(1))
	}
}

// Scatter propagates the flag with the arrival time as the message start.
func (a *RH) Scatter(v *core.VertexCtx, e *tgraph.Edge, t ival.Interval, state any) []core.OutMsg {
	if state.(int64) == 0 {
		return nil
	}
	tt, _, ok := travelProps(e, t.Start)
	if !ok {
		return nil
	}
	v.Emit(ival.From(ival.SatAdd(t.Start, tt)), int64(1))
	return nil
}

// CombineWarp ORs flags (max over {0,1}).
func (a *RH) CombineWarp(x, y any) any { return maxInt64(x, y) }

// Options returns the run options RH needs.
func (a *RH) Options() core.Options {
	return core.Options{
		PropLabels:      []string{tgraph.PropTravelTime, tgraph.PropTravelCost},
		PayloadCodec:    codec.Int64{},
		ReceiverCombine: true,
	}
}

// RunRH executes single-source time-respecting reachability.
func RunRH(g *tgraph.Graph, source tgraph.VertexID, startTime ival.Time, workers int) (*core.Result, error) {
	a := &RH{Source: source, StartTime: startTime}
	opts := a.Options()
	opts.NumWorkers = workers
	return core.Run(g, a, opts)
}

// Reachable reports whether any interval of the vertex was reached.
func Reachable(r *core.Result, id tgraph.VertexID) bool {
	st := r.StateByID(id)
	if st == nil {
		return false
	}
	for _, p := range st.Parts() {
		if v, ok := p.Value.(int64); ok && v == 1 {
			return true
		}
	}
	return false
}
