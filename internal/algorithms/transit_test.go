package algorithms

import (
	"testing"

	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// The transit fixture (paper Fig. 1): A→B [3,6) (cost 4 then 3), A→C [1,2)
// cost 3, A→D [4,5) cost 2, B→E [8,9) cost 2, C→E [5,6) cost 4, D→F [0,1)
// cost 1; travel time 1 everywhere.

func TestEATOnTransit(t *testing.T) {
	g := tgraph.TransitExample()
	r, err := RunEAT(g, 0, 0, 2)
	if err != nil {
		t.Fatalf("RunEAT: %v", err)
	}
	want := map[tgraph.VertexID]int64{
		0: 0,           // A: at source
		1: 4,           // B: depart 3, arrive 4
		2: 2,           // C: depart 1, arrive 2
		3: 5,           // D: depart 4, arrive 5
		4: 6,           // E: via C, depart 5, arrive 6
		5: Unreachable, // F: D→F window closed before D is reached
	}
	for id, w := range want {
		if got := EarliestArrival(r, id); got != w {
			t.Errorf("EAT(%s) = %d, want %d", tgraph.TransitVertexName(id), got, w)
		}
	}
}

func TestRHOnTransit(t *testing.T) {
	g := tgraph.TransitExample()
	r, err := RunRH(g, 0, 0, 2)
	if err != nil {
		t.Fatalf("RunRH: %v", err)
	}
	for id, want := range map[tgraph.VertexID]bool{0: true, 1: true, 2: true, 3: true, 4: true, 5: false} {
		if got := Reachable(r, id); got != want {
			t.Errorf("RH(%s) = %v, want %v", tgraph.TransitVertexName(id), got, want)
		}
	}
	// Starting too late for everything except the B corridor.
	r, err = RunRH(g, 0, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range map[tgraph.VertexID]bool{1: true, 2: false, 3: false, 4: true} {
		if got := Reachable(r, id); got != want {
			t.Errorf("RH(%s) from t=5 = %v, want %v", tgraph.TransitVertexName(id), got, want)
		}
	}
}

func TestTMSTOnTransit(t *testing.T) {
	g := tgraph.TransitExample()
	r, err := RunTMST(g, 0, 0, 2)
	if err != nil {
		t.Fatalf("RunTMST: %v", err)
	}
	tree := map[tgraph.VertexID]TreeEdge{}
	for _, te := range TMSTTree(r) {
		tree[te.Vertex] = te
	}
	want := []TreeEdge{
		{Vertex: 1, Parent: 0, Arrival: 4},
		{Vertex: 2, Parent: 0, Arrival: 2},
		{Vertex: 3, Parent: 0, Arrival: 5},
		{Vertex: 4, Parent: 2, Arrival: 6},
	}
	if len(tree) != len(want) {
		t.Fatalf("tree = %v, want %d edges", tree, len(want))
	}
	for _, w := range want {
		if got := tree[w.Vertex]; got != w {
			t.Errorf("tree edge for %s = %+v, want %+v", tgraph.TransitVertexName(w.Vertex), got, w)
		}
	}
}

func TestFASTOnTransit(t *testing.T) {
	g := tgraph.TransitExample()
	r, err := RunFAST(g, 0, 0, 2)
	if err != nil {
		t.Fatalf("RunFAST: %v", err)
	}
	want := map[tgraph.VertexID]int64{
		0: 0,           // A
		1: 1,           // B: depart at any point of [3,6)
		2: 1,           // C: depart 1 arrive 2
		3: 1,           // D: depart 4 arrive 5
		4: 4,           // E: best is depart A at 5 → B at 6, B at 8 → E at 9
		5: Unreachable, // F
	}
	for id, w := range want {
		if got := FastestDuration(r, id); got != w {
			t.Errorf("FAST(%s) = %d, want %d", tgraph.TransitVertexName(id), got, w)
		}
	}
}

func TestLDOnTransit(t *testing.T) {
	g := tgraph.TransitExample()
	// Target E with a generous deadline.
	r, err := RunLD(g, 4, 20, 2)
	if err != nil {
		t.Fatalf("RunLD: %v", err)
	}
	want := map[tgraph.VertexID]ival.Time{
		0: 5,  // A: depart 5 → B 6, wait, B depart 8 → E 9
		1: 8,  // B: depart 8 directly
		2: 5,  // C: depart 5 directly
		3: -1, // D: no path to E
		4: 19, // E: present until the deadline
		5: -1, // F
	}
	for id, w := range want {
		if got := LatestDeparture(r, id); got != w {
			t.Errorf("LD(%s) = %d, want %d", tgraph.TransitVertexName(id), got, w)
		}
	}
	// Deadline 7: only the C corridor (arrive 6) works.
	r, err = RunLD(g, 4, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := LatestDeparture(r, 0); got != 1 {
		t.Errorf("LD(A) with deadline 7 = %d, want 1 (via C)", got)
	}
	if got := LatestDeparture(r, 1); got != -1 {
		t.Errorf("LD(B) with deadline 7 = %d, want -1 (B→E arrives at 9)", got)
	}
}

func TestClusteringOnTriangleFixture(t *testing.T) {
	// A hand-built temporal triangle: 0→1 [0,6), 1→2 [2,8), 2→0 [4,10);
	// all three coexist only during [4,6).
	b := tgraph.NewBuilder(3, 3)
	for v := tgraph.VertexID(0); v < 3; v++ {
		b.AddVertex(v, ival.New(0, 10))
	}
	b.AddEdge(0, 0, 1, ival.New(0, 6))
	b.AddEdge(1, 1, 2, ival.New(2, 8))
	b.AddEdge(2, 2, 0, ival.New(4, 10))
	g := b.MustBuild()

	r, err := RunTC(g, 2)
	if err != nil {
		t.Fatalf("RunTC: %v", err)
	}
	for _, tc := range []struct {
		t    ival.Time
		want int64
	}{{3, 0}, {4, 1}, {5, 1}, {6, 0}, {9, 0}} {
		if got := TriangleTotal(r, tc.t); got != tc.want {
			t.Errorf("triangles@%d = %d, want %d", tc.t, got, tc.want)
		}
	}

	// LCC needs a wedge plus its chord: add 0→2 so 0's neighbors {1,2}
	// have the connecting edge 1→2.
	b2 := tgraph.NewBuilder(3, 4)
	for v := tgraph.VertexID(0); v < 3; v++ {
		b2.AddVertex(v, ival.New(0, 10))
	}
	b2.AddEdge(0, 0, 1, ival.New(0, 6))
	b2.AddEdge(1, 1, 2, ival.New(2, 8))
	b2.AddEdge(2, 0, 2, ival.New(0, 10))
	g2 := b2.MustBuild()
	lcc, err := RunLCC(g2, 2)
	if err != nil {
		t.Fatalf("RunLCC: %v", err)
	}
	// During [2,6): wedge 0→1→2 closed by 0→2: one closure over deg 2.
	if got := Coefficient(lcc, 0, 4); got != 0.5 {
		t.Errorf("LCC(0)@4 = %v, want 0.5", got)
	}
	if got := Coefficient(lcc, 0, 1); got != 0 {
		t.Errorf("LCC(0)@1 = %v, want 0 (edge 1→2 not alive)", got)
	}
	if got := Coefficient(lcc, 0, 7); got != 0 {
		t.Errorf("LCC(0)@7 = %v, want 0 (edge 0→1 dead, deg < 2)", got)
	}
}
