package algorithms

import (
	"graphite/internal/codec"
	"graphite/internal/core"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// SSSP is the temporal single-source shortest path algorithm of Alg. 1 in
// the paper: it finds, for every vertex and every interval of arrival time,
// the minimum travel cost of a time-respecting journey from the source
// departing at or after StartTime. Waiting at vertices is free; the message
// a scatter emits is valid from the earliest departure in the overlap
// interval plus the edge's travel time, onward to ∞.
type SSSP struct {
	Source    tgraph.VertexID
	StartTime ival.Time
}

// Init sets every vertex's cost to Unreachable for its whole lifespan.
func (a *SSSP) Init(v *core.VertexCtx) {
	v.SetState(v.Lifespan(), Unreachable)
}

// Compute lowers the vertex's cost for the active interval to the smallest
// incoming cost; in superstep 1 the source instead claims cost 0 from
// StartTime onward.
func (a *SSSP) Compute(v *core.VertexCtx, t ival.Interval, state any, msgs []any) {
	if v.Superstep() == 1 {
		if v.ID() == a.Source {
			if at := t.Intersect(ival.From(a.StartTime)); !at.IsEmpty() {
				v.SetState(at, int64(0))
			}
		}
		return
	}
	best := state.(int64)
	for _, m := range msgs {
		if c := m.(int64); c < best {
			best = c
		}
	}
	if best < state.(int64) {
		v.SetState(t, best)
	}
}

// Scatter forwards the improved cost along an out-edge: the travel cost is
// added and the message is valid from the earliest departure plus travel
// time, to ∞ (arrive-and-wait semantics).
func (a *SSSP) Scatter(v *core.VertexCtx, e *tgraph.Edge, t ival.Interval, state any) []core.OutMsg {
	cost := state.(int64)
	if cost == Unreachable {
		return nil
	}
	tt, tc, ok := travelProps(e, t.Start)
	if !ok {
		return nil
	}
	v.Emit(ival.From(ival.SatAdd(t.Start, tt)), cost+tc)
	return nil
}

// CombineWarp implements the inline warp combiner: only the minimum cost in
// a group can win in Compute.
func (a *SSSP) CombineWarp(x, y any) any { return minInt64(x, y) }

// Options returns the run options SSSP needs.
func (a *SSSP) Options() core.Options {
	return core.Options{
		PropLabels:      []string{tgraph.PropTravelTime, tgraph.PropTravelCost},
		PayloadCodec:    codec.Int64{},
		ReceiverCombine: true,
	}
}

// RunSSSP executes temporal SSSP with the given worker count.
func RunSSSP(g *tgraph.Graph, source tgraph.VertexID, startTime ival.Time, workers int) (*core.Result, error) {
	a := &SSSP{Source: source, StartTime: startTime}
	opts := a.Options()
	opts.NumWorkers = workers
	return core.Run(g, a, opts)
}

// SSSPCosts decodes the final SSSP state of one vertex: the minimal travel
// cost per arrival interval, omitting unreachable intervals.
func SSSPCosts(r *core.Result, id tgraph.VertexID) []IntervalValue {
	st := r.StateByID(id)
	if st == nil {
		return nil
	}
	return Int64States(st, Unreachable)
}
