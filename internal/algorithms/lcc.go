package algorithms

import (
	"graphite/internal/codec"
	"graphite/internal/core"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// LCC is the temporal local clustering coefficient (Sec. V): each interval
// vertex quantifies how close its out-neighbors are to forming a clique at
// each time-point. The vertex messages its neighbors, which message their
// neighbors; a second-hop vertex that is also a direct out-neighbor of the
// origin reports the closed wedge back to the origin, which accumulates the
// count and divides by deg·(deg−1), all per interval.
//
// The schedule is 4 fixed supersteps: announce, forward, close-and-reply,
// accumulate.
type LCC struct {
	degParts [][]IntervalValue // per vertex: out-degree per interval
}

// lccVal is the per-interval state: origins pending forwarding, then the
// closed-wedge count and the out-degree for the final coefficient.
type lccVal struct {
	Pending []int64
	Count   int64
	Deg     int64
}

// NewLCC precomputes the temporal out-degree partitions.
func NewLCC(g *tgraph.Graph) *LCC {
	a := &LCC{degParts: make([][]IntervalValue, g.NumVertices())}
	for v := 0; v < g.NumVertices(); v++ {
		a.degParts[v] = degreePartition(g, v)
	}
	return a
}

// Init seeds an empty state.
func (a *LCC) Init(v *core.VertexCtx) {
	v.SetState(v.Lifespan(), lccVal{})
}

// Compute implements the 4-step schedule.
func (a *LCC) Compute(v *core.VertexCtx, t ival.Interval, state any, msgs []any) {
	switch v.Superstep() {
	case 1:
		v.SetState(t, lccVal{Pending: []int64{int64(v.ID())}})
	case 2:
		var collect []int64
		for _, m := range msgs {
			collect = append(collect, m.([]int64)...)
		}
		if len(collect) > 0 {
			v.SetState(t, lccVal{Pending: collect})
		}
	case 3:
		a.closeAndReply(v, t, msgs)
	case 4:
		a.accumulate(v, t, msgs)
	}
}

// closeAndReply checks, for each forwarded origin u, whether this vertex is
// a direct out-neighbor of u (an in-edge from u exists) and reports each
// closed wedge back to u for the overlap interval.
func (a *LCC) closeAndReply(v *core.VertexCtx, t ival.Interval, msgs []any) {
	g := v.Graph()
	self := int64(v.ID())
	// Index alive in-edges by source once per tuple.
	type window struct {
		src int
		x   ival.Interval
	}
	froms := map[int64][]window{}
	for _, ei := range g.InEdges(v.Index()) {
		e := g.Edge(int(ei))
		if x := e.Lifespan.Intersect(t); !x.IsEmpty() {
			froms[int64(e.Src)] = append(froms[int64(e.Src)], window{src: g.SrcIndex(int(ei)), x: x})
		}
	}
	// Aggregate replies per (origin, window) before sending: hubs receive
	// the same origin many times and one counted reply carries them all.
	counts := map[window]int64{}
	for _, m := range msgs {
		for _, origin := range m.([]int64) {
			if origin == self {
				continue
			}
			for _, w := range froms[origin] {
				counts[w]++
			}
		}
	}
	for w, k := range counts {
		v.SendTo(w.src, w.x, []int64{k})
	}
}

// accumulate folds the wedge replies into per-interval counts and pairs them
// with the out-degree so the coefficient can be derived.
func (a *LCC) accumulate(v *core.VertexCtx, t ival.Interval, msgs []any) {
	// Replies arrive pre-grouped by warp for this tuple; each message is
	// alive for the whole tuple interval, so the count here is constant.
	count := int64(0)
	for _, m := range msgs {
		for _, x := range m.([]int64) {
			count += x
		}
	}
	if count == 0 {
		return
	}
	for _, dp := range a.degParts[v.Index()] {
		x := dp.Interval.Intersect(t)
		if x.IsEmpty() {
			continue
		}
		v.SetState(x, lccVal{Count: count, Deg: dp.Value})
	}
}

// Scatter announces in superstep 1 and forwards in superstep 2.
func (a *LCC) Scatter(v *core.VertexCtx, e *tgraph.Edge, t ival.Interval, state any) []core.OutMsg {
	if v.Superstep() > 2 {
		return nil
	}
	st := state.(lccVal)
	if len(st.Pending) == 0 {
		return nil
	}
	v.Emit(ival.Interval{}, st.Pending)
	return nil
}

// Options returns the run options LCC needs.
func (a *LCC) Options() core.Options {
	return core.Options{
		MaxSupersteps: 4,
		PayloadCodec:  codec.Int64Slice{},
	}
}

// RunLCC executes the temporal local clustering coefficient.
func RunLCC(g *tgraph.Graph, workers int) (*core.Result, error) {
	a := NewLCC(g)
	opts := a.Options()
	opts.NumWorkers = workers
	return core.Run(g, a, opts)
}

// Coefficient returns a vertex's clustering coefficient at time-point t:
// closed wedges / (deg·(deg−1)), or 0 when it has fewer than 2 out-edges.
func Coefficient(r *core.Result, id tgraph.VertexID, t ival.Time) float64 {
	st := r.StateByID(id)
	if st == nil {
		return 0
	}
	v, ok := st.Get(t)
	if !ok {
		return 0
	}
	s, ok := v.(lccVal)
	if !ok || s.Deg < 2 || s.Count == 0 {
		return 0
	}
	return float64(s.Count) / float64(s.Deg*(s.Deg-1))
}
