package algorithms

import (
	"fmt"
	"strings"

	"graphite/internal/core"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// Params carries the per-algorithm inputs of the catalog. Zero values pick
// sensible defaults: a zero Deadline means the graph horizon, zero
// Iterations means DefaultPRIterations.
type Params struct {
	// Source seeds the traversal algorithms (BFS and the TD path family).
	Source tgraph.VertexID
	// Target is LD's destination vertex.
	Target tgraph.VertexID
	// StartTime is the journey start for the forward TD algorithms.
	StartTime ival.Time
	// Deadline is LD's arrival bound; zero means the graph horizon.
	Deadline ival.Time
	// Iterations is PageRank's superstep budget; zero means
	// DefaultPRIterations.
	Iterations int
}

// DefaultPRIterations is PageRank's iteration count when Params leaves it
// zero, matching the paper's fixed budget.
const DefaultPRIterations = 10

// optioner is the contract every algorithm in the catalog satisfies.
type optioner interface {
	Options() core.Options
}

// Names lists the catalog's algorithm names, TI then TD, in the paper's
// order.
func Names() []string {
	return []string{"bfs", "wcc", "scc", "pr", "sssp", "eat", "fast", "ld", "tmst", "rh", "lcc", "tc"}
}

// New constructs an algorithm by name with its run options. The CLIs and the
// bench harness share this single catalog, so observability knobs (tracer,
// registry, worker count) are layered onto the returned options in exactly
// one place per caller rather than per algorithm.
func New(g *tgraph.Graph, name string, p Params) (core.Program, core.Options, error) {
	iters := p.Iterations
	if iters <= 0 {
		iters = DefaultPRIterations
	}
	deadline := p.Deadline
	if deadline == 0 {
		deadline = g.Horizon()
	}
	var prog core.Program
	switch strings.ToLower(name) {
	case "bfs":
		prog = &BFS{Source: p.Source}
	case "wcc":
		prog = &WCC{}
	case "scc":
		prog = &SCC{}
	case "pr", "pagerank":
		prog = NewPageRank(g, iters, 0.85)
	case "sssp":
		prog = &SSSP{Source: p.Source, StartTime: p.StartTime}
	case "eat":
		prog = &EAT{Source: p.Source, StartTime: p.StartTime}
	case "fast":
		prog = &FAST{Source: p.Source, StartTime: p.StartTime, Horizon: g.Horizon()}
	case "ld":
		prog = &LD{Target: p.Target, Deadline: deadline}
	case "tmst":
		prog = &TMST{Source: p.Source, StartTime: p.StartTime}
	case "rh":
		prog = &RH{Source: p.Source, StartTime: p.StartTime}
	case "lcc":
		prog = NewLCC(g)
	case "tc":
		prog = &TC{}
	default:
		return nil, core.Options{}, fmt.Errorf("algorithms: unknown algorithm %q (have %s)",
			name, strings.Join(Names(), " "))
	}
	return prog, prog.(optioner).Options(), nil
}
