package algorithms

import (
	"reflect"
	"testing"

	"graphite/internal/engine"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// wantStates asserts the decoded reachable states of one vertex.
func wantStates(t *testing.T, got []IntervalValue, want []IntervalValue, who string) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s: states = %v, want %v", who, got, want)
	}
}

// TestSSSPTransitWalkthrough replays the paper's running example (Fig. 1,
// Fig. 2): temporal SSSP from A at time 0 over the transit network.
func TestSSSPTransitWalkthrough(t *testing.T) {
	g := tgraph.TransitExample()
	for _, workers := range []int{1, 2, 4} {
		r, err := RunSSSP(g, 0, 0, workers)
		if err != nil {
			t.Fatalf("RunSSSP: %v", err)
		}
		wantStates(t, SSSPCosts(r, 0), []IntervalValue{{ival.Universe, 0}}, "A")
		wantStates(t, SSSPCosts(r, 1), []IntervalValue{
			{ival.New(4, 6), 4}, {ival.From(6), 3},
		}, "B")
		wantStates(t, SSSPCosts(r, 2), []IntervalValue{{ival.From(2), 3}}, "C")
		wantStates(t, SSSPCosts(r, 3), []IntervalValue{{ival.From(5), 2}}, "D")
		wantStates(t, SSSPCosts(r, 4), []IntervalValue{
			{ival.New(6, 9), 7}, {ival.From(9), 5},
		}, "E")
		wantStates(t, SSSPCosts(r, 5), nil, "F (unreachable)")

		// The paper counts 7 interval-vertex visits and 6 edge traversals
		// for this example; visits exclude the no-op superstep-1 calls on
		// non-source vertices.
		if r.Metrics.Messages != 6 {
			t.Errorf("workers=%d: messages = %d, want 6", workers, r.Metrics.Messages)
		}
		if r.Stats.ActiveIntervals != 6+2+1+1+2 {
			t.Errorf("workers=%d: active intervals = %d, want 12 (6 init + 6 warped)",
				workers, r.Stats.ActiveIntervals)
		}
		if r.Metrics.ComputeCalls != 12 {
			t.Errorf("workers=%d: compute calls = %d, want 12", workers, r.Metrics.ComputeCalls)
		}
		if r.Metrics.Supersteps != 3 {
			t.Errorf("workers=%d: supersteps = %d, want 3", workers, r.Metrics.Supersteps)
		}
	}
}

// TestSSSPLaterStart verifies StartTime handling: starting at time 5 forfeits
// the early A->C and A->B(cost 4) departures.
func TestSSSPLaterStart(t *testing.T) {
	g := tgraph.TransitExample()
	r, err := RunSSSP(g, 0, 5, 2)
	if err != nil {
		t.Fatalf("RunSSSP: %v", err)
	}
	// A can still depart to B at cost 3 during [5,6), and to nothing else.
	wantStates(t, SSSPCosts(r, 1), []IntervalValue{{ival.From(6), 3}}, "B")
	wantStates(t, SSSPCosts(r, 2), nil, "C")
	wantStates(t, SSSPCosts(r, 4), []IntervalValue{{ival.From(9), 5}}, "E")
}

// TestSSSPStateInvariants runs with invariant checking to assert the
// partitioned-state contract holds throughout the computation.
func TestSSSPStateInvariants(t *testing.T) {
	g := tgraph.TransitExample()
	a := &SSSP{Source: 0}
	opts := a.Options()
	opts.CheckInvariants = true
	opts.VerifyCodec = true
	opts.NumWorkers = 3
	if _, err := runWith(g, a, opts); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestSSSPOverTCPTransport runs the walkthrough with all cross-worker
// traffic on real loopback sockets; results must be identical.
func TestSSSPOverTCPTransport(t *testing.T) {
	tr, err := engine.NewTCPTransport(3)
	if err != nil {
		t.Fatalf("transport: %v", err)
	}
	defer tr.Close()
	g := tgraph.TransitExample()
	a := &SSSP{Source: 0}
	opts := a.Options()
	opts.NumWorkers = 3
	opts.Transport = tr
	r, err := runWith(g, a, opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	wantStates(t, SSSPCosts(r, 4), []IntervalValue{
		{ival.New(6, 9), 7}, {ival.From(9), 5},
	}, "E over TCP")
	if r.Metrics.Messages != 6 {
		t.Errorf("messages = %d, want 6", r.Metrics.Messages)
	}
}
