package algorithms

import (
	"fmt"
	"math/rand"
	"testing"

	"graphite/internal/core"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// incrementalTestGraph builds a deterministic random temporal graph over
// [0, 100): staggered vertex births (so window extensions add vertices),
// edge lifespans inside both endpoints' lifespans, and segmented
// travel-time properties (so scatter sees property boundaries).
func incrementalTestGraph(t *testing.T, seed int64) *tgraph.Graph {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	const V = 48
	b := tgraph.NewBuilder(V, 4*V)
	births := make([]ival.Time, V)
	for i := 0; i < V; i++ {
		if i != 0 && i%5 == 0 {
			births[i] = ival.Time(r.Intn(85))
		}
		b.AddVertex(tgraph.VertexID(i), ival.New(births[i], 100))
	}
	eid := tgraph.EdgeID(0)
	for i := 0; i < V; i++ {
		deg := 2 + r.Intn(3)
		for d := 0; d < deg; d++ {
			j := r.Intn(V)
			if j == i {
				continue
			}
			lo := max(births[i], births[j])
			start := lo + ival.Time(r.Intn(20))
			end := start + ival.Time(5+r.Intn(40))
			if end > 100 {
				end = 100
			}
			if start >= end {
				continue
			}
			b.AddEdge(eid, tgraph.VertexID(i), tgraph.VertexID(j), ival.New(start, end))
			if mid := (start + end) / 2; r.Intn(3) == 0 && mid > start && mid < end {
				b.SetEdgeProp(eid, tgraph.PropTravelTime, ival.New(start, mid), int64(1+r.Intn(4)))
				b.SetEdgeProp(eid, tgraph.PropTravelTime, ival.New(mid, end), int64(1+r.Intn(4)))
			} else {
				b.SetEdgeProp(eid, tgraph.PropTravelTime, ival.New(start, end), int64(1+r.Intn(4)))
			}
			eid++
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("build graph: %v", err)
	}
	return g
}

// requireSameStates asserts two results hold bit-identical partitioned
// states for every vertex: same partition boundaries, same values.
func requireSameStates(t *testing.T, label string, want, got *core.Result) {
	t.Helper()
	if want.Graph.NumVertices() != got.Graph.NumVertices() {
		t.Fatalf("%s: vertex counts differ", label)
	}
	for i := 0; i < want.Graph.NumVertices(); i++ {
		wp, gp := want.State(i).Parts(), got.State(i).Parts()
		if len(wp) != len(gp) {
			t.Fatalf("%s: vertex %d: %d parts vs %d\nfull: %v\nincr: %v",
				label, want.Graph.VertexAt(i).ID, len(wp), len(gp), wp, gp)
		}
		for k := range wp {
			if wp[k].Interval != gp[k].Interval || wp[k].Value != gp[k].Value {
				t.Fatalf("%s: vertex %d part %d: full %v=%v, incremental %v=%v",
					label, want.Graph.VertexAt(i).ID, k,
					wp[k].Interval, wp[k].Value, gp[k].Interval, gp[k].Value)
			}
		}
	}
}

// TestIncrementalMatchesFullRecompute is the differential acceptance test:
// for every seedable algorithm, running the extended window from the prior
// window's terminal state must be bit-identical to a cold recompute of the
// extended window.
func TestIncrementalMatchesFullRecompute(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		g := incrementalTestGraph(t, seed)
		for _, cut := range []ival.Time{30, 60, 85} {
			g1, err := tgraph.Slice(g, ival.New(0, cut))
			if err != nil {
				t.Fatalf("slice [0,%d): %v", cut, err)
			}
			g2, err := tgraph.Slice(g, ival.New(0, 100))
			if err != nil {
				t.Fatalf("slice [0,100): %v", err)
			}
			for _, name := range []string{"eat", "fast", "rh"} {
				if !SupportsIncremental(name) {
					t.Fatalf("%s lost its incremental support", name)
				}
				for _, workers := range []int{1, 4} {
					label := fmt.Sprintf("seed=%d cut=%d algo=%s workers=%d", seed, cut, name, workers)
					run := func(g *tgraph.Graph, seeds []*core.PartitionedState) *core.Result {
						prog, opts, err := New(g, name, Params{Source: 0})
						if err != nil {
							t.Fatalf("%s: New: %v", label, err)
						}
						opts.NumWorkers = workers
						opts.SeedStates = seeds
						r, err := core.Run(g, prog, opts)
						if err != nil {
							t.Fatalf("%s: run: %v", label, err)
						}
						return r
					}
					prior := run(g1, nil)
					full := run(g2, nil)
					incr := run(g2, core.SeedFromResult(g2, prior))
					requireSameStates(t, label, full, incr)
				}
			}
		}
	}
}

// TestUnsupportedAlgorithmsStayCold pins the catalog's seedable set.
func TestUnsupportedAlgorithmsStayCold(t *testing.T) {
	for _, name := range Names() {
		want := name == "eat" || name == "fast" || name == "rh"
		if got := SupportsIncremental(name); got != want {
			t.Errorf("SupportsIncremental(%q) = %v, want %v", name, got, want)
		}
	}
}
