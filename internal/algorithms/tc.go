package algorithms

import (
	"graphite/internal/codec"
	"graphite/internal/core"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
	"graphite/internal/warp"
)

// TC is temporal triangle counting (Sec. V): each vertex messages its
// two-hop neighborhood to discover directed 3-cycles whose three edges are
// concurrently alive; the count is maintained per interval. A directed
// cycle u→v→w→u is detected at its closing vertex w for the sub-intervals
// where all three edges coexist, so every cycle is counted exactly three
// times across the graph (once per rotation); TriangleTotal divides by 3.
//
// The schedule is 3 fixed supersteps: announce (own id along out-edges),
// forward (received origins along out-edges), close (check an out-edge back
// to the origin).
type TC struct{}

// tcVal is the per-interval state: origins pending forwarding in superstep
// 2, then the closure count from superstep 3.
type tcVal struct {
	Pending []int64
	Count   int64
}

// Init seeds an empty state.
func (a *TC) Init(v *core.VertexCtx) {
	v.SetState(v.Lifespan(), tcVal{})
}

// Compute implements the 3-step schedule.
func (a *TC) Compute(v *core.VertexCtx, t ival.Interval, state any, msgs []any) {
	switch v.Superstep() {
	case 1:
		v.SetState(t, tcVal{Pending: []int64{int64(v.ID())}})
	case 2:
		var collect []int64
		for _, m := range msgs {
			collect = append(collect, m.([]int64)...)
		}
		if len(collect) > 0 {
			v.SetState(t, tcVal{Pending: collect})
		}
	case 3:
		a.close(v, t, msgs)
	}
}

// close counts, per sub-interval, the origins whose announcement can be
// closed by an out-edge of this vertex back to the origin.
func (a *TC) close(v *core.VertexCtx, t ival.Interval, msgs []any) {
	g := v.Graph()
	self := int64(v.ID())
	// Index the closing edges by neighbor once; each closing (origin
	// occurrence × closing-edge) pair contributes one increment over the
	// interval where the closing edge overlaps t; warp converts the
	// increments into per-sub-interval counts.
	closers := map[int64][]ival.Interval{}
	for _, ei := range g.OutEdges(v.Index()) {
		e := g.Edge(int(ei))
		if x := e.Lifespan.Intersect(t); !x.IsEmpty() {
			closers[int64(e.Dst)] = append(closers[int64(e.Dst)], x)
		}
	}
	var incs []warp.IntervalValue
	for _, m := range msgs {
		for _, origin := range m.([]int64) {
			if origin == self {
				continue
			}
			for _, x := range closers[origin] {
				incs = append(incs, warp.IntervalValue{Interval: x, Value: int64(1)})
			}
		}
	}
	if len(incs) == 0 {
		return
	}
	outer := []warp.IntervalValue{{Interval: t, Value: nil}}
	for _, tu := range warp.Warp(outer, incs) {
		v.SetState(tu.Interval, tcVal{Count: int64(len(tu.Msgs))})
	}
}

// Scatter announces in superstep 1 and forwards in superstep 2; the message
// interval is the overlap of the pending interval and the edge lifespan
// (the default τm = τ'k), which enforces edge concurrency.
func (a *TC) Scatter(v *core.VertexCtx, e *tgraph.Edge, t ival.Interval, state any) []core.OutMsg {
	if v.Superstep() > 2 {
		return nil
	}
	st := state.(tcVal)
	if len(st.Pending) == 0 {
		return nil
	}
	v.Emit(ival.Interval{}, st.Pending)
	return nil
}

// Options returns the run options TC needs.
func (a *TC) Options() core.Options {
	return core.Options{
		MaxSupersteps: 3,
		PayloadCodec:  codec.Int64Slice{},
	}
}

// RunTC executes temporal triangle counting.
func RunTC(g *tgraph.Graph, workers int) (*core.Result, error) {
	a := &TC{}
	opts := a.Options()
	opts.NumWorkers = workers
	return core.Run(g, a, opts)
}

// Closures decodes a vertex's per-interval closure counts.
func Closures(r *core.Result, id tgraph.VertexID) []IntervalValue {
	st := r.StateByID(id)
	if st == nil {
		return nil
	}
	var out []IntervalValue
	for _, p := range st.Parts() {
		if s, ok := p.Value.(tcVal); ok && s.Count > 0 {
			out = append(out, IntervalValue{Interval: p.Interval, Value: s.Count})
		}
	}
	return out
}

// TriangleTotal returns the number of directed 3-cycles alive at time-point
// t across the whole graph.
func TriangleTotal(r *core.Result, t ival.Time) int64 {
	var sum int64
	for i := 0; i < r.Graph.NumVertices(); i++ {
		if v, ok := r.State(i).Get(t); ok {
			if s, ok := v.(tcVal); ok {
				sum += s.Count
			}
		}
	}
	return sum / 3
}
