package algorithms

import (
	"fmt"
	"reflect"
	"testing"

	"graphite/internal/core"
	"graphite/internal/gen"
	ival "graphite/internal/interval"
	"graphite/internal/ref"
)

// TestDifferentialSuppressionCombinerMatrix runs BFS, SSSP, and EAT over
// random temporal graphs under every combination of warp suppression and
// combiner ablations, and requires the final partitioned states to be
// bit-for-bit identical across the matrix. The default combination is also
// checked against the internal/ref oracles, so by transitivity every cell of
// the matrix agrees with the brute-force semantics. The three algorithms all
// fold with min over integers, so their results are independent of message
// arrival order and exact equality is the right notion.
func TestDifferentialSuppressionCombinerMatrix(t *testing.T) {
	profiles := []gen.Profile{
		gen.Tiny("diff-unit", 40, 4, 6, gen.UnitLife),
		gen.Tiny("diff-long", 40, 4, 8, gen.LongLife),
		gen.Tiny("diff-mixed", 50, 5, 10, gen.MixedLife),
		gen.Tiny("diff-full", 30, 3, 6, gen.FullLife),
	}
	churn := gen.Tiny("diff-churn", 40, 4, 12, gen.LongLife)
	churn.VertexChurn = true
	profiles = append(profiles, churn)

	type combo struct {
		noSuppression bool
		noCombiner    bool
	}
	combos := []combo{
		{false, false}, // default path: suppression heuristic + inline combiner
		{false, true},
		{true, false},
		{true, true},
	}

	for _, p := range profiles {
		g, err := gen.Generate(p, 2)
		if err != nil {
			t.Fatalf("generate %s: %v", p.Name, err)
		}
		source := g.VertexAt(0).ID

		run := func(prog core.Program, opts core.Options, c combo) *core.Result {
			t.Helper()
			opts.NumWorkers = 2
			opts.DisableSuppression = c.noSuppression
			if c.noCombiner {
				opts.DisableWarpCombiner = true
				opts.ReceiverCombine = false
			}
			r, err := runWith(g, prog, opts)
			if err != nil {
				t.Fatalf("%s: run: %v", p.Name, err)
			}
			return r
		}
		runAll := func(c combo) [3]*core.Result {
			bfs := &BFS{Source: source}
			sssp := &SSSP{Source: source}
			eat := &EAT{Source: source}
			return [3]*core.Result{
				run(bfs, bfs.Options(), c),
				run(sssp, sssp.Options(), c),
				run(eat, eat.Options(), c),
			}
		}
		names := [3]string{"BFS", "SSSP", "EAT"}

		base := runAll(combos[0])
		for _, c := range combos[1:] {
			got := runAll(c)
			label := fmt.Sprintf("noSuppression=%v noCombiner=%v", c.noSuppression, c.noCombiner)
			for a := range got {
				for v := 0; v < g.NumVertices(); v++ {
					if !reflect.DeepEqual(base[a].State(v).Parts(), got[a].State(v).Parts()) {
						t.Fatalf("%s %s [%s]: vertex %d partitions diverge:\nbase: %v\n got: %v",
							p.Name, names[a], label, v, base[a].State(v).Parts(), got[a].State(v).Parts())
					}
				}
			}
		}

		// Anchor the matrix: the default combination against the oracles.
		for ts := g.Lifespan().Start; ts < g.Horizon(); ts++ {
			want := ref.BFSLevels(g, ts, source)
			for v := 0; v < g.NumVertices(); v++ {
				if got := stateAt(base[0], v, ts, Unreachable); got != want[v] {
					t.Fatalf("%s BFS t=%d vertex %d: level %d, oracle %d", p.Name, ts, v, got, want[v])
				}
			}
		}
		d := ref.SSSP(g, source, 0)
		for v := 0; v < g.NumVertices(); v++ {
			for ts := ival.Time(0); ts < d.Tmax; ts++ {
				if !g.VertexAt(v).Lifespan.Contains(ts) {
					continue
				}
				if got := stateAt(base[1], v, ts, Unreachable); got != d.Cost[v][ts] {
					t.Fatalf("%s SSSP vertex %d t=%d: cost %d, oracle %d", p.Name, v, ts, got, d.Cost[v][ts])
				}
			}
		}
		wantEAT := ref.EAT(g, source, 0)
		for v := 0; v < g.NumVertices(); v++ {
			if got := EarliestArrival(base[2], g.VertexAt(v).ID); got != wantEAT[v] {
				t.Fatalf("%s EAT vertex %d: %d, oracle %d", p.Name, v, got, wantEAT[v])
			}
		}
	}
}
