package algorithms

import (
	"sort"

	"graphite/internal/codec"
	"graphite/internal/core"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// PageRank is the time-independent PR of Sec. V with the paper's fixed
// superstep budget (10 rank updates). Each time-point evolves exactly like
// PageRank on that snapshot: messages carry rank/outdegree and are valid
// only while the carrying edge is alive; out-degree is evaluated piecewise
// over the sender's degree partition so every message interval has a
// constant degree.
//
// N is the total vertex count of the temporal graph (not the per-snapshot
// count) and rank mass from vertices with zero out-degree at a time-point is
// not redistributed — the plain Pregel formulation, mirrored by the oracle.
type PageRank struct {
	Iterations int     // rank updates; the paper uses 10
	Damping    float64 // typically 0.85

	degParts [][]IntervalValue // per vertex: out-degree per interval
}

// NewPageRank precomputes the per-vertex temporal out-degree partition.
func NewPageRank(g *tgraph.Graph, iterations int, damping float64) *PageRank {
	a := &PageRank{Iterations: iterations, Damping: damping}
	if a.Iterations <= 0 {
		a.Iterations = 10
	}
	if a.Damping <= 0 {
		a.Damping = 0.85
	}
	a.degParts = make([][]IntervalValue, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		a.degParts[v] = degreePartition(g, v)
	}
	return a
}

// degreePartition splits a vertex's lifespan at its out-edges' lifespan
// boundaries and annotates each piece with the out-degree.
func degreePartition(g *tgraph.Graph, v int) []IntervalValue {
	life := g.VertexAt(v).Lifespan
	bounds := []ival.Time{life.Start, life.End}
	for _, ei := range g.OutEdges(v) {
		x := g.Edge(int(ei)).Lifespan.Intersect(life)
		if !x.IsEmpty() {
			bounds = append(bounds, x.Start, x.End)
		}
	}
	sort.Slice(bounds, func(a, b int) bool { return bounds[a] < bounds[b] })
	var out []IntervalValue
	for i := 0; i+1 < len(bounds); i++ {
		if bounds[i] == bounds[i+1] {
			continue
		}
		piece := ival.New(bounds[i], bounds[i+1])
		out = append(out, IntervalValue{Interval: piece, Value: int64(g.OutDegreeAt(v, piece.Start))})
	}
	return out
}

// Init seeds the uniform rank.
func (a *PageRank) Init(v *core.VertexCtx) {
	v.SetState(v.Lifespan(), 1.0/float64(v.NumVertices()))
}

// Compute sums the incoming rank mass for the active interval.
func (a *PageRank) Compute(v *core.VertexCtx, t ival.Interval, state any, msgs []any) {
	n := float64(v.NumVertices())
	if v.Superstep() == 1 {
		// Re-claim the uniform rank so the initial scatter fires.
		v.SetState(t, 1.0/n)
		return
	}
	var sum float64
	for _, m := range msgs {
		sum += m.(float64)
	}
	v.SetState(t, (1-a.Damping)/n+a.Damping*sum)
}

// Scatter divides the rank by the out-degree, piecewise over the degree
// partition so each message interval has a constant divisor. After the last
// rank update nothing is sent.
func (a *PageRank) Scatter(v *core.VertexCtx, e *tgraph.Edge, t ival.Interval, state any) []core.OutMsg {
	if v.Superstep() > a.Iterations {
		return nil
	}
	rank := state.(float64)
	for _, dp := range a.degParts[v.Index()] {
		x := dp.Interval.Intersect(t)
		if x.IsEmpty() || dp.Value == 0 {
			continue
		}
		v.Emit(x, rank/float64(dp.Value))
	}
	return nil
}

// CombineWarp sums rank contributions in a group.
func (a *PageRank) CombineWarp(x, y any) any { return x.(float64) + y.(float64) }

// Options returns the run options PageRank needs: all vertices active for a
// fixed number of supersteps.
func (a *PageRank) Options() core.Options {
	return core.Options{
		ActivateAll:     true,
		MaxSupersteps:   a.Iterations + 1,
		PayloadCodec:    codec.Float64{},
		ReceiverCombine: true,
	}
}

// RunPageRank executes time-independent PageRank.
func RunPageRank(g *tgraph.Graph, iterations int, workers int) (*core.Result, error) {
	a := NewPageRank(g, iterations, 0.85)
	opts := a.Options()
	opts.NumWorkers = workers
	return core.Run(g, a, opts)
}

// Ranks decodes a vertex's per-interval PageRank.
func Ranks(r *core.Result, id tgraph.VertexID) []struct {
	Interval ival.Interval
	Rank     float64
} {
	st := r.StateByID(id)
	if st == nil {
		return nil
	}
	var out []struct {
		Interval ival.Interval
		Rank     float64
	}
	for _, p := range st.Parts() {
		if f, ok := p.Value.(float64); ok {
			out = append(out, struct {
				Interval ival.Interval
				Rank     float64
			}{p.Interval, f})
		}
	}
	return out
}
