package algorithms

import "strings"

// SupportsIncremental reports whether the named algorithm may be run from a
// prior window's captured terminal state (core.Options.SeedStates) and
// still produce bit-identical results to a cold recompute.
//
// The contract the seedable set satisfies: vertex state is a confluent
// monotone fold (min or max) of messages, every state update covers
// [t, lifespan end) so terminal partition starts coincide with update
// starts, and message departures derive only from the updated interval's
// start — which is why re-scattering the terminal partitions regenerates
// the run's message frontier exactly. EAT (min arrival), FAST (max journey
// start) and RH (max reached flag) satisfy it; the differential tests in
// incremental_test.go pin the bit-identity for each. Algorithms with
// iteration-indexed state (PageRank), phased masters (SCC, TMST) or
// non-monotone folds stay on the cold path.
func SupportsIncremental(name string) bool {
	switch strings.ToLower(name) {
	case "eat", "fast", "rh":
		return true
	}
	return false
}
