package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"graphite/internal/algorithms"
	"graphite/internal/core"
	"graphite/internal/engine"
	"graphite/internal/obs"
	"graphite/internal/tgraph"
)

// Defaults for Config zero values.
const (
	DefaultCheckpointEvery = 2
	DefaultLease           = 2 * time.Second
	DefaultRejoinTimeout   = 30 * time.Second
	DefaultMaxRecoveries   = 3
)

// Config parameterizes a coordinator.
type Config struct {
	// Workers is the cluster width: the number of worker processes, which
	// is also the shard count and the engine's NumWorkers in every process.
	Workers int
	// Graph is the shared graph spec (see LoadGraph).
	Graph string
	// Algo and Params pick the computation from the algorithm catalog.
	Algo   string
	Params algorithms.Params
	// CheckpointEvery is the durable checkpoint cadence k: generation g is
	// captured at the barrier closing superstep g*k, i.e. the cluster can
	// always roll back to "about to execute superstep g*k+1". Zero means
	// DefaultCheckpointEvery.
	CheckpointEvery int
	// Lease is how long a worker may go silent before it is declared dead.
	// Workers heartbeat at Lease/4. Zero means DefaultLease.
	Lease time.Duration
	// RejoinTimeout bounds how long a recovery waits for a replacement
	// worker before the run is abandoned. Zero means DefaultRejoinTimeout.
	RejoinTimeout time.Duration
	// MaxRecoveries bounds rollback-and-replay cycles. Zero means
	// DefaultMaxRecoveries; negative means unlimited.
	MaxRecoveries int
	// DataPlane selects how message batches travel: PlaneDirect (the
	// default) has workers ship them peer-to-peer over a full TCP mesh,
	// leaving the coordinator pure control flow; PlaneRelay routes every
	// batch through the coordinator. A direct run degrades to relay — and
	// keeps going — if any worker cannot serve or dial the mesh.
	DataPlane string
	// Span is the run-scoped span ID stamped on the coordinator's trace and
	// handed to every worker with its assignment, so all N+1 traces of the
	// run carry the same ID. Empty mints one in New (obs.NewSpanID).
	Span string
	// Registry receives the fleet gauges, counters and histograms; nil
	// creates a private one. Tracer, when set, receives the coordinator's
	// full run trace: the standard run/superstep lifecycle events plus the
	// cluster-specific ones (worker_join/worker_lost/cluster_recovery, and
	// per-superstep span/cluster_step attribution). Logger nil means
	// slog.Default.
	Registry *obs.Registry
	Tracer   obs.Tracer
	Logger   *slog.Logger
}

// ShardTiming is one shard's share of one distributed superstep, as the
// coordinator attributes it: the worker-reported compute / barrier-wait /
// deliver split, the coordinator's own time relaying batches toward this
// shard, and — under the direct data plane — the shard's peer-send and
// peer-receive clocks plus how many payload bytes it moved over each plane.
type ShardTiming struct {
	Shard       int   `json:"shard"`
	ComputeNS   int64 `json:"compute_ns"`
	WaitNS      int64 `json:"wait_ns"`
	DeliverNS   int64 `json:"deliver_ns"`
	RelayNS     int64 `json:"relay_ns"`
	PeerSendNS  int64 `json:"peer_send_ns,omitempty"`
	PeerRecvNS  int64 `json:"peer_recv_ns,omitempty"`
	DirectBytes int64 `json:"direct_bytes,omitempty"`
	RelayBytes  int64 `json:"relay_bytes,omitempty"`
}

// StepAttribution is the coordinator's straggler verdict for one superstep:
// the wall time from broadcast to last barrier report, the slowest shard by
// compute time, the compute skew (max/mean in thousandths; 1000 = perfectly
// balanced), and the per-shard split. Served as JSON by DebugHandler and
// mirrored into the trace as a cluster_step event.
type StepAttribution struct {
	Superstep    int           `json:"superstep"`
	Epoch        int           `json:"epoch"`
	WallNS       int64         `json:"wall_ns"`
	SlowestShard int           `json:"slowest_shard"`
	SkewMilli    int64         `json:"skew_milli"`
	Shards       []ShardTiming `json:"shards"`
}

// attrRingCap bounds the in-memory attribution history served by
// /debug/cluster; older supersteps fall off the front.
const attrRingCap = 512

// RecoveryInfo describes one completed rollback-and-replay cycle.
type RecoveryInfo struct {
	Epoch         int           `json:"epoch"`     // epoch recovered into
	Failed        int           `json:"failed"`    // superstep in flight at detection
	ResumeAt      int           `json:"resume_at"` // superstep execution resumed from
	Gen           int           `json:"gen"`       // committed generation restored
	Detect        time.Duration `json:"detect_ns"` // silence observed before declaring death
	MTTR          time.Duration `json:"mttr_ns"`   // detection → superstep broadcast resumed
	Replayed      int           `json:"replayed_supersteps"`
	RestoredBytes int64         `json:"restored_bytes"` // checkpoint bytes reloaded, all shards
}

// Report summarizes a finished (or aborted) cluster run.
type Report struct {
	Supersteps  int            `json:"supersteps"` // executed, including replays
	Checkpoints int            `json:"checkpoints"`
	Recoveries  []RecoveryInfo `json:"recoveries,omitempty"`
	Makespan    time.Duration  `json:"makespan_ns"`
	// DataPlane is the plane the run actually finished on — "relay" either
	// by configuration or because a direct run degraded.
	DataPlane string `json:"data_plane,omitempty"`
	// WorkerGraphBytes is each shard's reported resident graph size (mapped
	// snapshot bytes, or in-memory footprint for built graphs) — the
	// partitioning win: under shard: specs these shrink as shards grow.
	WorkerGraphBytes []int64         `json:"worker_graph_bytes,omitempty"`
	Metrics          *engine.Metrics `json:"-"`
}

// Stats is a point-in-time view of the cluster for readiness probes.
type Stats struct {
	State      string `json:"state"` // waiting | running | recovering | collecting | done
	Live       int    `json:"live"`
	Workers    int    `json:"workers"`
	Epoch      int    `json:"epoch"`
	Superstep  int    `json:"superstep"`
	Recoveries int    `json:"recoveries"`
	DataPlane  string `json:"data_plane,omitempty"` // effective plane right now
}

// driver states.
const (
	stWaiting = "waiting"
	stRunning = "running"
	stRecover = "recovering"
	stCollect = "collecting"
	stDone    = "done"
)

// Coordinator drives one cluster run. Create with New, run with Serve.
type Coordinator struct {
	cfg  Config
	g    *tgraph.Graph
	opts core.Options // reference options: halt bounds, payload codec

	events chan event
	quit   chan struct{}
	qonce  sync.Once

	mu     sync.Mutex
	stats  Stats
	report Report
	attr   []StepAttribution
}

// event kinds flowing into the driver goroutine, which owns all protocol
// state and performs every write — per-connection write order is therefore
// the driver's processing order, so a worker always sees fStep for a
// superstep before any relayed data of that superstep.
type event struct {
	kind    int // evConn | evFrame | evDead
	conn    net.Conn
	wc      *wconn
	ftype   byte
	payload []byte
	err     error
}

const (
	evConn = iota
	evFrame
	evDead
)

// wconn is the driver's view of one worker connection.
type wconn struct {
	id       int
	conn     net.Conn
	shard    int    // -1 until assigned
	meshAddr string // peer data-plane listener, "" if the worker has none
	ready    bool
	lastSeen time.Time
}

// New validates the configuration and prepares a coordinator. The graph is
// loaded and the algorithm instantiated once here, as the reference for
// halt bounds and result assembly; workers repeat both locally.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Workers <= 0 {
		return nil, errors.New("cluster: Workers must be positive")
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = DefaultCheckpointEvery
	}
	if cfg.CheckpointEvery < 0 {
		return nil, errors.New("cluster: CheckpointEvery must be positive")
	}
	if cfg.Lease <= 0 {
		cfg.Lease = DefaultLease
	}
	if cfg.RejoinTimeout <= 0 {
		cfg.RejoinTimeout = DefaultRejoinTimeout
	}
	if cfg.MaxRecoveries == 0 {
		cfg.MaxRecoveries = DefaultMaxRecoveries
	}
	switch cfg.DataPlane {
	case "":
		cfg.DataPlane = PlaneDirect
	case PlaneDirect, PlaneRelay:
	default:
		return nil, fmt.Errorf("cluster: unknown data plane %q (want %q or %q)",
			cfg.DataPlane, PlaneDirect, PlaneRelay)
	}
	if cfg.Span == "" {
		cfg.Span = obs.NewSpanID()
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	// The coordinator always loads the full graph (shard -1): it is the
	// reference for halt bounds and result assembly across every shard.
	gm, pmeta, err := LoadGraphShard(cfg.Graph, -1)
	if err != nil {
		return nil, err
	}
	g := gm.Graph // the mapping stays open for the coordinator's lifetime
	if pmeta != nil && pmeta.Shards != cfg.Workers {
		return nil, fmt.Errorf("cluster: graph partitioned for %d shards but Workers=%d",
			pmeta.Shards, cfg.Workers)
	}
	prog, opts, err := algorithms.New(g, cfg.Algo, cfg.Params)
	if err != nil {
		return nil, err
	}
	opts.NumWorkers = cfg.Workers
	if pmeta != nil {
		// Adopt the embedded assignment so message addressing matches the
		// partition files; recomputing from a partial graph would diverge.
		opts.Partitioner = pmeta.Partitioner()
	}
	// Build (and discard) shard 0 once: surfaces unsupported options —
	// aggregators, master compute — at coordinator startup instead of as a
	// worker-side error frame after the cluster assembled.
	if _, err := core.NewShard(g, prog, opts, 0); err != nil {
		return nil, err
	}
	return &Coordinator{
		cfg:    cfg,
		g:      g,
		opts:   opts,
		events: make(chan event, 64),
		quit:   make(chan struct{}),
		stats:  Stats{State: stWaiting, Workers: cfg.Workers},
	}, nil
}

// Ready implements the readiness contract: nil once the cluster is at full
// quorum and progressing (or finished successfully), an error while
// assembling, recovering, or below quorum.
func (c *Coordinator) Ready() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	switch {
	case s.State == stDone:
		return nil
	case s.Live < s.Workers:
		return fmt.Errorf("cluster: %d/%d workers live", s.Live, s.Workers)
	case s.State == stRecover:
		return fmt.Errorf("cluster: recovering (epoch %d)", s.Epoch)
	case s.State == stWaiting:
		return errors.New("cluster: awaiting worker registration")
	}
	return nil
}

// Stats returns a snapshot of the cluster state.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Report returns the run summary; complete once Serve has returned.
func (c *Coordinator) Report() Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.report
	r.Recoveries = append([]RecoveryInfo(nil), c.report.Recoveries...)
	return r
}

// Span returns the run-scoped span ID (minted in New if the config left it
// empty) — the string that links the coordinator's trace, every worker's
// trace, and the attribution rows.
func (c *Coordinator) Span() string { return c.cfg.Span }

// Attribution returns the per-superstep straggler attribution collected so
// far, oldest first, bounded to the last attrRingCap supersteps.
func (c *Coordinator) Attribution() []StepAttribution {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]StepAttribution(nil), c.attr...)
}

// pushAttribution appends one closed superstep to the bounded history.
func (c *Coordinator) pushAttribution(a StepAttribution) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.attr = append(c.attr, a)
	if len(c.attr) > attrRingCap {
		c.attr = c.attr[len(c.attr)-attrRingCap:]
	}
}

// DebugHandler serves the cluster's observability state as JSON — the
// payload cmd/graphite-coordinator mounts at /debug/cluster and
// cmd/graphite-trace reconciles a merged cluster trace against.
func (c *Coordinator) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.mu.Lock()
		body := struct {
			Span        string            `json:"span"`
			Stats       Stats             `json:"stats"`
			Report      Report            `json:"report"`
			Attribution []StepAttribution `json:"attribution"`
		}{
			Span:        c.cfg.Span,
			Stats:       c.stats,
			Report:      c.report,
			Attribution: append([]StepAttribution(nil), c.attr...),
		}
		c.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(body)
	})
}

// Close aborts the run; Serve returns promptly with an error.
func (c *Coordinator) Close() { c.qonce.Do(func() { close(c.quit) }) }

// Serve accepts workers on ln and drives the run to completion, returning
// the assembled result. It blocks; ln is closed on return.
func (c *Coordinator) Serve(ln net.Listener) (*core.Result, error) {
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed by driver exit or Close
			}
			select {
			case c.events <- event{kind: evConn, conn: conn}:
			case <-c.quit:
				conn.Close()
				return
			}
		}
	}()
	d := &driver{c: c, byShard: make([]*wconn, c.cfg.Workers), conns: map[int]*wconn{}}
	res, err := d.run()
	// Unblock the accept loop if the run ended on its own.
	c.Close()
	return res, err
}

// deadWorker queues one detected worker loss for the drain loop; its
// connection is already closed and unregistered when queued.
type deadWorker struct {
	shard  int
	reason string
	silent time.Duration
}

// runTotals is the rewindable slice of the run's aggregate metrics: the
// counters a rollback must rewind to the committed checkpoint, so replayed
// supersteps are not double-counted. Snapshotted per committed generation
// and restored on recovery; the never-rewound counters (checkpoints,
// recoveries, supersteps-executed) live outside it.
type runTotals struct {
	supersteps   int
	computeCalls int64
	scatterCalls int64
	messages     int64
	messageBytes int64
	computeNS    int64
	messagingNS  int64
	barrierNS    int64
	// active is the frontier size at this boundary — what the next
	// superstep_start reports as its entering frontier.
	active int
}

// driver is the single goroutine owning all cluster protocol state.
type driver struct {
	c *Coordinator

	conns   map[int]*wconn
	byShard []*wconn
	nextID  int

	epoch        int
	committedGen int // -1 until generation 0 is on disk everywhere
	superstep    int // superstep currently in flight (0 = none yet)
	started      time.Time

	// Per-superstep barrier tally. Worker reports are held per shard and
	// folded into the run totals only when the superstep closes, so a
	// mid-superstep worker loss leaves the totals untouched. The relay
	// clocks accumulate the coordinator's own forwarding time and bytes per
	// destination shard.
	doneFrom     []bool
	doneCount    int
	sumDelivered int64
	sumActive    int
	ckptAcks     int
	reports      []stepDoneMsg
	relayNS      []int64
	relayBytes   []int64
	stepStarted  time.Time

	// Data plane. plane is the effective plane: it starts as the configured
	// one and degrades — permanently, for the rest of the run — to relay the
	// first time the mesh cannot be established. meshing gates the start (or
	// resume) of execution on every worker acknowledging its peer table;
	// meshed tallies those acknowledgements. graphBytes holds each shard's
	// reported resident graph size from its latest ready report.
	plane      string
	meshing    bool
	meshed     []bool
	graphBytes []int64

	// Worker losses detected mid-handling. Sends never recover inline:
	// failures queue here and drain between events, so a rollback broadcast
	// is never re-entered with a stale epoch.
	pendingDead []deadWorker

	// Recovery in progress.
	recovering    bool
	detectedAt    time.Time
	detectLag     time.Duration
	failedStep    int
	rejoinBy      time.Time
	restoredBytes int64
	recoveries    int

	// Result collection.
	blobs     [][]byte
	blobCount int

	// rt accumulates the rewindable totals; genTotals holds its snapshot at
	// each committed generation (the rollback targets). executed counts
	// every superstep driven, including replays — the Report's view.
	rt        runTotals
	genTotals map[int]runTotals
	executed  int
	halted    bool

	totals engine.Metrics
	state  string
	result *core.Result
}

func (d *driver) run() (*core.Result, error) {
	c := d.c
	d.committedGen = -1
	d.state = stWaiting
	d.plane = c.cfg.DataPlane
	d.doneFrom = make([]bool, c.cfg.Workers)
	d.reports = make([]stepDoneMsg, c.cfg.Workers)
	d.relayNS = make([]int64, c.cfg.Workers)
	d.relayBytes = make([]int64, c.cfg.Workers)
	d.meshed = make([]bool, c.cfg.Workers)
	d.graphBytes = make([]int64, c.cfg.Workers)
	d.genTotals = map[int]runTotals{}
	d.blobs = make([][]byte, c.cfg.Workers)
	ticker := time.NewTicker(c.cfg.Lease / 2)
	defer ticker.Stop()
	defer func() {
		for _, wc := range d.conns {
			wc.conn.Close()
		}
	}()
	for {
		var err error
		select {
		case <-c.quit:
			return nil, errors.New("cluster: coordinator closed")
		case now := <-ticker.C:
			err = d.tick(now)
		case ev := <-c.events:
			err = d.handle(ev)
		}
		if err == nil {
			err = d.drainDead()
		}
		if err != nil {
			return nil, err
		}
		if d.result != nil {
			return d.result, nil
		}
	}
}

// tick enforces leases and the rejoin deadline, and refreshes the fleet
// health gauges from the current silence profile.
func (d *driver) tick(now time.Time) error {
	lease := d.c.cfg.Lease
	for _, wc := range d.conns {
		if wc.shard < 0 {
			continue
		}
		if now.Sub(wc.lastSeen) > lease {
			d.markDead(wc, fmt.Sprintf("lease expired (silent %v)", now.Sub(wc.lastSeen).Round(time.Millisecond)))
		}
	}
	d.refreshLeaseGauges(now)
	if d.recovering && !d.rejoinBy.IsZero() && now.After(d.rejoinBy) {
		return fmt.Errorf("cluster: no replacement worker within %v; abandoning run", d.c.cfg.RejoinTimeout)
	}
	return nil
}

// refreshLeaseGauges re-evaluates the fleet health gauges from the current
// silence profile. Called on every lease tick and at every superstep close,
// so a scrape sees fresh values even on runs shorter than a tick interval.
func (d *driver) refreshLeaseGauges(now time.Time) {
	var silences []time.Duration
	for _, wc := range d.conns {
		if wc.shard < 0 {
			continue
		}
		silences = append(silences, now.Sub(wc.lastSeen))
	}
	remMS, missed := LeaseHealth(silences, d.c.cfg.Lease)
	reg := d.c.cfg.Registry
	reg.Gauge(obs.GClusterLeaseRemainingMS).Set(remMS)
	reg.Gauge(obs.GClusterMissedHeartbeats).Set(missed)
}

// LeaseHealth distills a fleet silence profile into the two health gauges:
// the tightest remaining lease across workers in milliseconds (how close
// the quietest worker is to being declared dead; clamped at zero) and the
// worst missed-heartbeat count (whole heartbeat intervals — lease/4 — the
// quietest worker has gone without renewing; 0 while everyone is on
// schedule). An empty profile (no assigned workers) reports a full lease
// and zero missed beats.
func LeaseHealth(silences []time.Duration, lease time.Duration) (remainingMS, missed int64) {
	minRem := lease
	hb := lease / 4
	for _, s := range silences {
		if rem := lease - s; rem < minRem {
			minRem = rem
		}
		if hb > 0 {
			if m := int64(s / hb); m > missed {
				missed = m
			}
		}
	}
	if minRem < 0 {
		minRem = 0
	}
	return minRem.Milliseconds(), missed
}

func (d *driver) handle(ev event) error {
	switch ev.kind {
	case evConn:
		wc := &wconn{id: d.nextID, conn: ev.conn, shard: -1, lastSeen: time.Now()}
		d.nextID++
		d.conns[wc.id] = wc
		go d.readLoop(wc)
		return nil
	case evDead:
		d.markDead(ev.wc, fmt.Sprintf("connection lost: %v", ev.err))
		return nil
	case evFrame:
		wc := ev.wc
		if d.conns[wc.id] != wc {
			return nil // frame from a connection already declared dead
		}
		wc.lastSeen = time.Now()
		return d.frame(wc, ev.ftype, ev.payload)
	}
	return nil
}

// readLoop turns one connection into events; it owns no protocol state.
func (d *driver) readLoop(wc *wconn) {
	for {
		ftype, payload, err := readConnFrame(wc.conn)
		var ev event
		if err != nil {
			ev = event{kind: evDead, wc: wc, err: err}
		} else {
			ev = event{kind: evFrame, wc: wc, ftype: ftype, payload: payload}
		}
		select {
		case d.c.events <- ev:
		case <-d.c.quit:
			return
		}
		if err != nil {
			return
		}
	}
}

func (d *driver) frame(wc *wconn, ftype byte, payload []byte) error {
	switch ftype {
	case fHello:
		var h helloMsg
		if err := parseJSON(payload, &h); err != nil {
			d.markDead(wc, err.Error())
			return nil
		}
		d.hello(wc, h)
		return nil
	case fHeartbeat:
		return nil // lastSeen already refreshed
	case fReady:
		var r readyMsg
		if err := parseJSON(payload, &r); err != nil {
			d.markDead(wc, err.Error())
			return nil
		}
		d.readyFrame(wc, r)
		return nil
	case fStepDone:
		var sd stepDoneMsg
		if err := parseJSON(payload, &sd); err != nil {
			d.markDead(wc, err.Error())
			return nil
		}
		d.stepDone(wc, sd)
		return nil
	case fMeshed:
		var mm meshedMsg
		if err := parseJSON(payload, &mm); err != nil {
			d.markDead(wc, err.Error())
			return nil
		}
		d.meshedFrame(wc, mm)
		return nil
	case fData:
		d.relay(payload)
		return nil
	case fResult:
		return d.resultFrame(wc, payload)
	case fError:
		var em errorMsg
		_ = parseJSON(payload, &em)
		return fmt.Errorf("cluster: worker (shard %d) failed: %s", em.Shard, em.Msg)
	}
	d.markDead(wc, fmt.Sprintf("unexpected frame type %d", ftype))
	return nil
}

// markDead closes and unregisters a connection; if it held a shard, the
// loss is queued for drainDead. Safe to call twice for the same conn.
func (d *driver) markDead(wc *wconn, reason string) {
	if d.conns[wc.id] != wc {
		return
	}
	silent := time.Since(wc.lastSeen)
	shard := wc.shard
	d.forget(wc)
	if shard >= 0 {
		d.pendingDead = append(d.pendingDead, deadWorker{shard: shard, reason: reason, silent: silent})
	}
}

// forget closes and unregisters a connection without recovery side effects.
func (d *driver) forget(wc *wconn) {
	wc.conn.Close()
	delete(d.conns, wc.id)
	if wc.shard >= 0 && d.byShard[wc.shard] == wc {
		d.byShard[wc.shard] = nil
	}
	d.publish()
}

// drainDead processes queued worker losses. Rollback broadcasts may queue
// further losses; the loop runs until the cluster is quiescent.
func (d *driver) drainDead() error {
	for len(d.pendingDead) > 0 {
		dw := d.pendingDead[0]
		d.pendingDead = d.pendingDead[1:]
		if err := d.workerLost(dw); err != nil {
			return err
		}
	}
	return nil
}

// hello assigns a shard. A rejoining worker that previously held a shard
// gets it back when free, so its checkpoint directory stays authoritative.
func (d *driver) hello(wc *wconn, h helloMsg) {
	if wc.shard >= 0 {
		d.markDead(wc, "duplicate hello")
		return
	}
	shard := -1
	if h.PrevShard >= 0 && h.PrevShard < len(d.byShard) && d.byShard[h.PrevShard] == nil {
		shard = h.PrevShard
	} else {
		for s, owner := range d.byShard {
			if owner == nil {
				shard = s
				break
			}
		}
	}
	if shard < 0 {
		// Cluster is full; a spare worker is not an error, just unused.
		d.c.cfg.Logger.Info("cluster: rejecting spare worker, all shards assigned")
		d.forget(wc)
		return
	}
	wc.shard = shard
	wc.meshAddr = h.MeshAddr
	wc.ready = false
	d.byShard[shard] = wc
	as := assignMsg{
		Shard:           shard,
		Shards:          d.c.cfg.Workers,
		Epoch:           d.epoch,
		RestoreGen:      d.committedGen,
		Graph:           d.c.cfg.Graph,
		Algo:            d.c.cfg.Algo,
		Params:          d.c.cfg.Params,
		CheckpointEvery: d.c.cfg.CheckpointEvery,
		HeartbeatNS:     int64(d.c.cfg.Lease / 4),
		Span:            d.c.cfg.Span,
	}
	d.emit(obs.WorkerJoin{Shard: shard, Addr: wc.conn.RemoteAddr().String(), Epoch: d.epoch, Rejoin: d.committedGen >= 0})
	d.c.cfg.Logger.Info("cluster: worker joined", "shard", shard, "epoch", d.epoch, "rejoin", d.committedGen >= 0)
	d.publish()
	d.send(wc, fAssign, as)
}

// readyFrame collects barrier-standing acknowledgements; when every shard
// is ready, the mesh is (re)built if the direct plane is in effect, and
// then the run starts or resumes.
func (d *driver) readyFrame(wc *wconn, r readyMsg) {
	if r.Epoch != d.epoch || wc.shard < 0 {
		return // stale
	}
	wc.ready = true
	d.restoredBytes += r.RestoredBytes
	d.graphBytes[wc.shard] = r.GraphBytes
	for _, owner := range d.byShard {
		if owner == nil || !owner.ready {
			return
		}
	}
	// Full quorum at the current epoch. Under the direct plane the fleet
	// first exchanges peer addresses and dials the mesh; execution starts
	// once every worker acknowledges (or the plane degrades to relay).
	if d.plane == PlaneDirect {
		addrs := make([]string, len(d.byShard))
		for s, owner := range d.byShard {
			if owner.meshAddr == "" {
				d.degrade(fmt.Sprintf("shard %d advertises no mesh listener", s))
				d.startOrResume()
				return
			}
			addrs[s] = owner.meshAddr
		}
		d.meshing = true
		clear(d.meshed)
		pm := peersMsg{Epoch: d.epoch, Addrs: addrs}
		for _, owner := range d.byShard {
			d.send(owner, fPeers, pm)
		}
		return
	}
	d.startOrResume()
}

// meshedFrame tallies one worker's mesh acknowledgement; the last OK starts
// (or resumes) execution, and any failure degrades the plane and proceeds
// on the relay instead of aborting.
func (d *driver) meshedFrame(wc *wconn, mm meshedMsg) {
	if mm.Epoch != d.epoch || wc.shard < 0 || !d.meshing {
		return // stale
	}
	if mm.Shard != wc.shard {
		d.markDead(wc, fmt.Sprintf("bad mesh report for shard %d", mm.Shard))
		return
	}
	if !mm.OK {
		d.degrade(fmt.Sprintf("shard %d: %s", mm.Shard, mm.Err))
		d.meshing = false
		d.startOrResume()
		return
	}
	if d.meshed[mm.Shard] {
		return
	}
	d.meshed[mm.Shard] = true
	for _, ok := range d.meshed {
		if !ok {
			return
		}
	}
	d.meshing = false
	d.startOrResume()
}

// degrade switches the effective plane to relay for the rest of the run.
// Mesh trouble is a performance problem, never a correctness one — the
// relay carries the same batches through the coordinator's ordered stream.
func (d *driver) degrade(reason string) {
	if d.plane == PlaneRelay {
		return
	}
	d.plane = PlaneRelay
	d.c.cfg.Logger.Warn("cluster: data plane degraded to relay", "reason", reason)
	d.publish()
}

// startOrResume begins execution at full quorum: the initial start out of
// stWaiting, or the resumption of a recovery.
func (d *driver) startOrResume() {
	if d.state == stWaiting {
		d.started = time.Now()
		d.committedGen = 0 // every worker has generation 0 on disk
		d.genTotals[0] = runTotals{}
		d.superstep = 1
		d.emit(obs.RunStart{
			Vertices: d.c.g.NumVertices(), Workers: d.c.cfg.Workers,
			Checkpoints: true, Span: d.c.cfg.Span,
		})
		d.setState(stRunning)
		d.broadcastStep()
		return
	}
	if d.recovering {
		d.resume()
	}
}

// workerLost handles one queued worker death: epoch bump, rollback
// broadcast to survivors, and a recovery window for a replacement to claim
// the shard. The connection is already gone.
func (d *driver) workerLost(dw deadWorker) error {
	d.emit(obs.WorkerLost{Shard: dw.shard, Superstep: d.superstep, Reason: dw.reason})
	d.c.cfg.Logger.Warn("cluster: worker lost", "shard", dw.shard, "superstep", d.superstep, "reason", dw.reason)
	if d.state == stDone || d.state == stWaiting {
		return nil // nothing committed yet (or all done); await a fresh hello
	}
	max := d.c.cfg.MaxRecoveries
	if max > 0 && d.recoveries >= max {
		return fmt.Errorf("cluster: shard %d lost (%s) after %d recoveries; giving up",
			dw.shard, dw.reason, d.recoveries)
	}
	d.recoveries++
	if !d.recovering {
		d.detectedAt = time.Now()
		d.detectLag = dw.silent
		d.failedStep = d.superstep
		d.restoredBytes = 0
	}
	d.recovering = true
	d.rejoinBy = time.Now().Add(d.c.cfg.RejoinTimeout)
	d.epoch++
	d.meshing = false // the next full quorum re-runs the mesh exchange
	d.resetBarrierTally()
	d.blobCount = 0
	clear(d.blobs)
	d.setState(stRecover)
	d.c.cfg.Registry.Gauge(obs.GClusterEpoch).Set(int64(d.epoch))
	// Survivors roll back to the committed generation and report ready.
	rb := rollbackMsg{Epoch: d.epoch, Gen: d.committedGen}
	for _, owner := range d.byShard {
		if owner == nil {
			continue
		}
		owner.ready = false
		d.send(owner, fRollback, rb)
	}
	return nil
}

// resume closes a recovery: every shard is back at the committed
// generation's boundary, so execution restarts from its superstep.
func (d *driver) resume() {
	resumeAt := d.committedGen*d.c.cfg.CheckpointEvery + 1
	replayed := d.failedStep - resumeAt
	if replayed < 0 {
		replayed = 0
	}
	mttr := time.Since(d.detectedAt)
	info := RecoveryInfo{
		Epoch:         d.epoch,
		Failed:        d.failedStep,
		ResumeAt:      resumeAt,
		Gen:           d.committedGen,
		Detect:        d.detectLag,
		MTTR:          mttr,
		Replayed:      replayed,
		RestoredBytes: d.restoredBytes,
	}
	d.c.mu.Lock()
	d.c.report.Recoveries = append(d.c.report.Recoveries, info)
	d.c.mu.Unlock()
	d.recovering = false
	d.rejoinBy = time.Time{}
	d.superstep = resumeAt
	d.totals.Recoveries++
	// Rewind the rewindable totals to the restored generation's snapshot, so
	// the replayed supersteps fold in exactly once — the trace reconciles
	// and the final metrics reflect the surviving executions, matching
	// single-process rollback semantics.
	d.rt = d.genTotals[d.committedGen]
	reg := d.c.cfg.Registry
	reg.Counter(obs.CClusterRecoveries).Inc()
	reg.Counter(obs.CClusterReplayedSupersteps).Add(int64(replayed))
	d.emit(obs.Recovery{
		Failed: d.failedStep, ResumeAt: resumeAt,
		Attempt: d.recoveries, Reason: "worker_lost",
	})
	d.emit(obs.ClusterRecovery{
		Epoch: d.epoch, Failed: d.failedStep, ResumeAt: resumeAt,
		Gen: d.committedGen, DetectNS: int64(d.detectLag), MTTRNS: int64(mttr),
		RestoredBytes: d.restoredBytes,
	})
	d.c.cfg.Logger.Info("cluster: recovered", "epoch", d.epoch, "resume_at", resumeAt,
		"gen", d.committedGen, "mttr", mttr.Round(time.Millisecond), "replayed", replayed)
	d.setState(stRunning)
	d.broadcastStep()
}

// broadcastStep starts the current superstep on every shard.
func (d *driver) broadcastStep() {
	d.resetBarrierTally()
	d.stepStarted = time.Now()
	// The entering frontier is the previous barrier's active count; for the
	// very first superstep the coordinator has no worker reports yet, so it
	// opens with zero (workers know their post-Init frontiers, not us).
	d.emit(obs.SuperstepStart{Superstep: d.superstep, Active: d.rt.active})
	k := d.c.cfg.CheckpointEvery
	st := stepMsg{Epoch: d.epoch, Superstep: d.superstep, Direct: d.plane == PlaneDirect}
	if d.superstep%k == 0 {
		st.Checkpoint = true
		st.Gen = d.superstep / k
	}
	for _, owner := range d.byShard {
		d.send(owner, fStep, st)
	}
	d.publish()
}

func (d *driver) resetBarrierTally() {
	clear(d.doneFrom)
	clear(d.reports)
	clear(d.relayNS)
	clear(d.relayBytes)
	d.doneCount = 0
	d.sumDelivered = 0
	d.sumActive = 0
	d.ckptAcks = 0
}

// stepDone tallies one barrier report; the last one closes the superstep.
func (d *driver) stepDone(wc *wconn, sd stepDoneMsg) {
	if sd.Epoch != d.epoch || d.state != stRunning || sd.Superstep != d.superstep {
		return // stale
	}
	if sd.Shard != wc.shard || d.doneFrom[sd.Shard] {
		d.markDead(wc, fmt.Sprintf("bad barrier report for shard %d", sd.Shard))
		return
	}
	d.doneFrom[sd.Shard] = true
	d.doneCount++
	d.sumDelivered += sd.Delivered
	d.sumActive += sd.Active
	d.reports[sd.Shard] = sd
	if sd.CkptGen >= 0 {
		d.ckptAcks++
	}
	if d.doneCount < d.c.cfg.Workers {
		return
	}
	// Superstep closed: fold the held per-shard reports into the rewindable
	// totals (deferring the fold to here is what keeps a rolled-back
	// superstep out of them), attribute the step, and emit its trace.
	d.closeSuperstep()
	k := d.c.cfg.CheckpointEvery
	if d.superstep%k == 0 && d.ckptAcks == d.c.cfg.Workers {
		d.committedGen = d.superstep / k
		d.totals.Checkpoints++
		d.c.mu.Lock()
		d.c.report.Checkpoints++
		d.c.mu.Unlock()
		// The snapshot taken here is exactly what a rollback to this
		// generation must restore.
		d.genTotals[d.committedGen] = d.rt
		d.emit(obs.Checkpoint{Superstep: d.superstep + 1, Index: d.totals.Checkpoints})
	}
	halted := d.sumDelivered == 0 && d.sumActive == 0 && !d.c.opts.ActivateAll
	bounded := d.c.opts.MaxSupersteps > 0 && d.superstep+1 > d.c.opts.MaxSupersteps
	if halted || bounded {
		d.halted = halted
		d.startCollect()
		return
	}
	d.superstep++
	d.broadcastStep()
}

// closeSuperstep folds the completed barrier tally into the run totals and
// produces the superstep's observability output: per-shard phase spans, the
// superstep_end metric deltas, the cluster_step straggler verdict, the
// /debug/cluster attribution row, and the fleet registry updates.
func (d *driver) closeSuperstep() {
	d.refreshLeaseGauges(time.Now())
	wallNS := time.Since(d.stepStarted).Nanoseconds()
	var sumCompute, sumWait, sumDeliver, sumRelayNS, sumRelayBytes int64
	var sumCalls, sumScatter, sumMsgs, sumBytes int64
	var sumPeerSend, sumPeerRecv, sumDirectBytes int64
	maxCompute, slowest := int64(-1), 0
	shards := make([]ShardTiming, d.c.cfg.Workers)
	for s := range d.reports {
		rep := &d.reports[s]
		// RelayBytes is the coordinator's own forwarding tally toward this
		// shard — it already includes any per-batch mesh fallbacks, which
		// arrive here as ordinary fData, so the worker-reported fallback
		// volume is not added again.
		shards[s] = ShardTiming{
			Shard: s, ComputeNS: rep.ComputeNS, WaitNS: rep.WaitNS,
			DeliverNS: rep.DeliverNS, RelayNS: d.relayNS[s],
			PeerSendNS: rep.PeerSendNS, PeerRecvNS: rep.PeerRecvNS,
			DirectBytes: rep.DirectBytes, RelayBytes: d.relayBytes[s],
		}
		sumCompute += rep.ComputeNS
		sumWait += rep.WaitNS
		sumDeliver += rep.DeliverNS
		sumRelayNS += d.relayNS[s]
		sumRelayBytes += d.relayBytes[s]
		sumPeerSend += rep.PeerSendNS
		sumPeerRecv += rep.PeerRecvNS
		sumDirectBytes += rep.DirectBytes
		sumCalls += rep.ComputeCalls
		sumScatter += rep.ScatterCalls
		sumMsgs += rep.SentMsgs
		sumBytes += rep.SentBytes
		if rep.ComputeNS > maxCompute {
			maxCompute, slowest = rep.ComputeNS, s
		}
	}
	skewMilli := int64(1000)
	if mean := sumCompute / int64(len(shards)); mean > 0 {
		skewMilli = maxCompute * 1000 / mean
	}
	d.executed++
	d.rt.supersteps++
	d.rt.computeCalls += sumCalls
	d.rt.scatterCalls += sumScatter
	d.rt.messages += sumMsgs
	d.rt.messageBytes += sumBytes
	d.rt.computeNS += sumCompute
	d.rt.messagingNS += sumWait + sumRelayNS + sumPeerSend
	d.rt.barrierNS += sumDeliver
	d.rt.active = d.sumActive

	span := d.c.cfg.Span
	direct := d.plane == PlaneDirect
	for _, st := range shards {
		d.emit(obs.PhaseSpan{Span: span, Superstep: d.superstep, Shard: st.Shard, Phase: "compute", NS: st.ComputeNS})
		d.emit(obs.PhaseSpan{Span: span, Superstep: d.superstep, Shard: st.Shard, Phase: "barrier_wait", NS: st.WaitNS})
		// The relay span is emitted on both planes (zero when everything
		// went peer-to-peer): consumers key on its presence per shard.
		d.emit(obs.PhaseSpan{Span: span, Superstep: d.superstep, Shard: st.Shard, Phase: "relay", NS: st.RelayNS})
		if direct {
			d.emit(obs.PhaseSpan{Span: span, Superstep: d.superstep, Shard: st.Shard, Phase: "peer_send", NS: st.PeerSendNS})
			d.emit(obs.PhaseSpan{Span: span, Superstep: d.superstep, Shard: st.Shard, Phase: "peer_recv", NS: st.PeerRecvNS})
		}
	}
	d.emit(obs.SuperstepEnd{
		Superstep: d.superstep,
		ComputeNS: sumCompute, MessagingNS: sumWait + sumRelayNS + sumPeerSend, BarrierNS: sumDeliver,
		ComputeCalls: sumCalls, ScatterCalls: sumScatter,
		Messages: sumMsgs, MessageBytes: sumBytes,
		Delivered: d.sumDelivered, Active: d.sumActive,
	})
	d.emit(obs.ClusterStep{
		Span: span, Superstep: d.superstep, Epoch: d.epoch, WallNS: wallNS,
		SlowestShard: slowest, SkewMilli: skewMilli,
		ComputeNS: sumCompute, WaitNS: sumWait, RelayNS: sumRelayNS,
	})
	d.c.pushAttribution(StepAttribution{
		Superstep: d.superstep, Epoch: d.epoch, WallNS: wallNS,
		SlowestShard: slowest, SkewMilli: skewMilli, Shards: shards,
	})
	reg := d.c.cfg.Registry
	reg.Histogram(obs.HClusterComputeNS).Observe(time.Duration(maxCompute))
	reg.Histogram(obs.HClusterWaitNS).Observe(time.Duration(sumWait / int64(len(shards))))
	reg.Gauge(obs.GClusterSkewMilli).Set(skewMilli)
	reg.Gauge(obs.GClusterSlowest).Set(int64(slowest))
	// Both planes' counters are touched every superstep — Add(0) still
	// registers the family, so scrapes see all four regardless of plane.
	reg.Counter(obs.CClusterRelayBytes).Add(sumRelayBytes)
	reg.Counter(obs.CClusterRelayNS).Add(sumRelayNS)
	reg.Counter(obs.CClusterDirectBytes).Add(sumDirectBytes)
	reg.Counter(obs.CClusterDirectNS).Add(sumPeerSend)
	for _, st := range shards {
		reg.Gauge(obs.WithLabels(obs.GClusterShardComputeNS, "shard", strconv.Itoa(st.Shard))).Set(st.ComputeNS)
	}
}

// relay forwards one data frame to its destination shard. Stale-epoch
// frames (in flight across a recovery) are dropped; a missing destination
// means that worker just died and a rollback is imminent, so the frame is
// moot either way.
func (d *driver) relay(payload []byte) {
	h, _, err := parseDataHeader(payload)
	if err != nil {
		return // corrupt header: originator will be caught elsewhere
	}
	if h.epoch != d.epoch || d.state != stRunning || h.superstep != d.superstep {
		return
	}
	if h.dst < 0 || h.dst >= len(d.byShard) {
		return
	}
	// The relay clock charges the forwarding time (and volume) to the
	// destination shard: it is the receiver whose barrier wait this relay
	// hop sits inside.
	t0 := time.Now()
	d.sendRaw(d.byShard[h.dst], fData, payload)
	d.relayNS[h.dst] += time.Since(t0).Nanoseconds()
	d.relayBytes[h.dst] += int64(len(payload))
}

// startCollect asks every shard for its final states.
func (d *driver) startCollect() {
	d.setState(stCollect)
	d.blobCount = 0
	clear(d.blobs)
	for _, owner := range d.byShard {
		d.send(owner, fCollect, collectMsg{Epoch: d.epoch})
	}
}

// resultFrame collects one shard's state blob; the last one assembles the
// Result and ends the run.
func (d *driver) resultFrame(wc *wconn, payload []byte) error {
	epoch, shard, blob, err := parseResultHeader(payload)
	if err != nil {
		d.markDead(wc, err.Error())
		return nil
	}
	if epoch != d.epoch || d.state != stCollect || shard != wc.shard {
		return nil // stale
	}
	if d.blobs[shard] != nil {
		d.markDead(wc, fmt.Sprintf("duplicate result for shard %d", shard))
		return nil
	}
	d.blobs[shard] = blob
	d.blobCount++
	if d.blobCount < d.c.cfg.Workers {
		return nil
	}
	// Fill the engine-metrics view from the rewindable totals: the surviving
	// executions only, matching single-process rollback semantics. The
	// Report separately counts every superstep driven, replays included.
	d.totals.Supersteps = d.rt.supersteps
	d.totals.ComputeCalls = d.rt.computeCalls
	d.totals.ScatterCalls = d.rt.scatterCalls
	d.totals.Messages = d.rt.messages
	d.totals.MessageBytes = d.rt.messageBytes
	d.totals.ComputePlusTime = time.Duration(d.rt.computeNS)
	d.totals.MessagingTime = time.Duration(d.rt.messagingNS)
	d.totals.BarrierTime = time.Duration(d.rt.barrierNS)
	d.totals.Runs = 1
	d.totals.Makespan = time.Since(d.started)
	d.totals.MaxMakespan = d.totals.Makespan
	m := d.totals
	res, err := core.AssembleResult(d.c.g, d.c.opts.PayloadCodec, d.blobs, &m)
	if err != nil {
		return err
	}
	for _, owner := range d.byShard {
		d.sendRaw(owner, fBye, nil)
	}
	d.emit(obs.RunEnd{
		Supersteps:   d.rt.supersteps,
		ComputeCalls: d.rt.computeCalls, ScatterCalls: d.rt.scatterCalls,
		Messages: d.rt.messages, MessageBytes: d.rt.messageBytes,
		Checkpoints: d.totals.Checkpoints, Recoveries: d.totals.Recoveries,
		ComputeNS: d.rt.computeNS, MessagingNS: d.rt.messagingNS, BarrierNS: d.rt.barrierNS,
		MakespanNS: int64(d.totals.Makespan), Halted: d.halted,
	})
	d.setState(stDone)
	d.c.mu.Lock()
	d.c.report.Supersteps = d.executed
	d.c.report.Makespan = d.totals.Makespan
	d.c.report.DataPlane = d.plane
	d.c.report.WorkerGraphBytes = append([]int64(nil), d.graphBytes...)
	d.c.report.Metrics = &m
	d.c.mu.Unlock()
	d.result = res
	return nil
}

// send writes one JSON frame to a worker; a write failure queues a worker
// loss. nil owner (shard momentarily unassigned mid-recovery) is a no-op.
func (d *driver) send(wc *wconn, ftype byte, v any) {
	if wc == nil {
		return
	}
	d.writeDeadline(wc)
	if err := sendJSON(wc.conn, ftype, v); err != nil {
		d.markDead(wc, fmt.Sprintf("write failed: %v", err))
	}
}

func (d *driver) sendRaw(wc *wconn, ftype byte, payload []byte) {
	if wc == nil {
		return
	}
	d.writeDeadline(wc)
	if err := writeConnFrame(wc.conn, ftype, payload); err != nil {
		d.markDead(wc, fmt.Sprintf("write failed: %v", err))
	}
}

// writeDeadline bounds how long a hung worker can stall the driver: a
// worker that stops reading hits the lease-sized deadline and is declared
// dead instead of wedging the whole cluster.
func (d *driver) writeDeadline(wc *wconn) {
	_ = wc.conn.SetWriteDeadline(time.Now().Add(d.c.cfg.Lease))
}

// publish refreshes the shared Stats snapshot and worker gauge.
func (d *driver) publish() {
	live := 0
	for _, owner := range d.byShard {
		if owner != nil {
			live++
		}
	}
	d.c.cfg.Registry.Gauge(obs.GClusterWorkers).Set(int64(live))
	d.c.mu.Lock()
	d.c.stats = Stats{
		State:      d.state,
		Live:       live,
		Workers:    d.c.cfg.Workers,
		Epoch:      d.epoch,
		Superstep:  d.superstep,
		Recoveries: len(d.c.report.Recoveries),
		DataPlane:  d.plane,
	}
	d.c.mu.Unlock()
}

func (d *driver) setState(s string) {
	d.state = s
	d.publish()
}

func (d *driver) emit(e obs.Event) {
	if d.c.cfg.Tracer != nil {
		d.c.cfg.Tracer.Emit(e)
	}
}
