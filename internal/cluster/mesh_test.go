package cluster

// White-box mesh tests: the peer data plane must deliver framed batches,
// survive a peer endpoint dying (send errors instead of wedging, so the
// caller can fall back to the relay), and resume in order after the
// epoch-style re-dial that recovery performs.

import (
	"bytes"
	"context"
	"log/slog"
	"net"
	"testing"
	"time"
)

func newTestMesh(t *testing.T, self int) *mesh {
	t.Helper()
	m, err := newMesh("127.0.0.1:0", slog.Default())
	if err != nil {
		t.Fatal(err)
	}
	m.self = self
	t.Cleanup(m.close)
	return m
}

func recvPayload(t *testing.T, m *mesh) []byte {
	t.Helper()
	select {
	case p := <-m.in:
		return p
	case <-time.After(5 * time.Second):
		t.Fatal("mesh delivery timed out")
		return nil
	}
}

func TestMeshSendAndReconnect(t *testing.T) {
	ctx := context.Background()
	a, b := newTestMesh(t, 0), newTestMesh(t, 1)
	addrs := []string{a.addr(), b.addr()}
	backoff := 5 * time.Millisecond
	if err := a.dialPeers(ctx, 0, addrs, 3, backoff); err != nil {
		t.Fatal(err)
	}
	if err := b.dialPeers(ctx, 0, addrs, 3, backoff); err != nil {
		t.Fatal(err)
	}

	// Both directions deliver, in send order.
	for i, payload := range [][]byte{[]byte("batch-1"), []byte("batch-2")} {
		if err := a.send(1, payload); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if got := recvPayload(t, b); !bytes.Equal(got, []byte("batch-1")) {
		t.Fatalf("first delivery = %q", got)
	}
	if got := recvPayload(t, b); !bytes.Equal(got, []byte("batch-2")) {
		t.Fatalf("second delivery = %q", got)
	}
	if err := b.send(0, []byte("reply")); err != nil {
		t.Fatal(err)
	}
	if got := recvPayload(t, a); !bytes.Equal(got, []byte("reply")) {
		t.Fatalf("reply delivery = %q", got)
	}

	// Self and out-of-range destinations are refused, not wedged.
	if err := a.send(0, []byte("self")); err == nil {
		t.Error("send to self accepted")
	}
	if err := a.send(9, []byte("beyond")); err == nil {
		t.Error("send beyond the fleet accepted")
	}

	// Peer death: b's endpoint closes (a kill -9 from the mesh's view).
	// a's sends must start failing — that error is what triggers the
	// caller's per-batch relay fallback — rather than block.
	b.close()
	var sendErr error
	for i := 0; i < 50 && sendErr == nil; i++ {
		sendErr = a.send(1, []byte("into the void"))
		time.Sleep(2 * time.Millisecond) // kernel may buffer the first writes
	}
	if sendErr == nil {
		t.Fatal("sends to a dead peer kept succeeding")
	}

	// Recovery: the replacement advertises a fresh listener and everyone
	// re-dials with the bumped epoch. Delivery resumes in order.
	b2 := newTestMesh(t, 1)
	addrs[1] = b2.addr()
	if err := a.dialPeers(ctx, 1, addrs, 3, backoff); err != nil {
		t.Fatal(err)
	}
	if err := b2.dialPeers(ctx, 1, addrs, 3, backoff); err != nil {
		t.Fatal(err)
	}
	for _, payload := range [][]byte{[]byte("epoch1-a"), []byte("epoch1-b")} {
		if err := a.send(1, payload); err != nil {
			t.Fatal(err)
		}
	}
	if got := recvPayload(t, b2); !bytes.Equal(got, []byte("epoch1-a")) {
		t.Fatalf("post-recovery first delivery = %q", got)
	}
	if got := recvPayload(t, b2); !bytes.Equal(got, []byte("epoch1-b")) {
		t.Fatalf("post-recovery second delivery = %q", got)
	}
}

// TestMeshDialFailure pins the degrade trigger: dialing an address nobody
// serves must exhaust its retries and return an error (which the worker
// reports as fMeshed !OK), not hang.
func TestMeshDialFailure(t *testing.T) {
	a := newTestMesh(t, 0)
	// A listener that is closed immediately: the port is valid but dead.
	dead := newTestMesh(t, 1)
	addr := dead.addr()
	dead.close()
	done := make(chan error, 1)
	go func() {
		done <- a.dialPeers(context.Background(), 0, []string{a.addr(), addr}, 2, time.Millisecond)
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("dialing a dead endpoint succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("dialPeers hung on a dead endpoint")
	}
}

// TestMeshRejectsGarbageConnection proves a connection that skips the
// fMeshHello handshake is dropped without poisoning the inbound channel.
func TestMeshRejectsGarbageConnection(t *testing.T) {
	m := newTestMesh(t, 0)
	peer := newTestMesh(t, 1)
	addrs := []string{m.addr(), peer.addr()}
	// A well-behaved peer first, so there is a live delivery to contrast.
	if err := peer.dialPeers(context.Background(), 0, addrs, 3, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Now a liar: raw bytes instead of a framed hello.
	c, err := net.Dial("tcp", m.addr())
	if err != nil {
		t.Fatal(err)
	}
	_, _ = c.Write([]byte("NOT A FRAME"))
	c.Close()
	// The honest peer's traffic still flows.
	if err := peer.send(0, []byte("still alive")); err != nil {
		t.Fatal(err)
	}
	if got := recvPayload(t, m); !bytes.Equal(got, []byte("still alive")) {
		t.Fatalf("delivery after garbage connection = %q", got)
	}
}
