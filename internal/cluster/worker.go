package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"sync"
	"syscall"
	"time"

	"graphite/internal/algorithms"
	"graphite/internal/core"
	"graphite/internal/engine"
	"graphite/internal/obs"
)

// Worker dial defaults: a replacement worker may start before the
// coordinator notices the loss, so the dial loop is patient. Mesh dials are
// far less so — every peer's listener is up before the coordinator ever
// broadcasts the address table, so a peer that won't answer after a few
// tries is genuinely unreachable and the run should degrade to the relay.
const (
	DefaultDialAttempts = 40
	DefaultDialBackoff  = 25 * time.Millisecond
	meshDialAttempts    = 5
)

// WorkerConfig parameterizes one worker process.
type WorkerConfig struct {
	// Addr is the coordinator's TCP address.
	Addr string
	// Dir is the durable checkpoint directory. A respawned worker pointed
	// at its old directory offers its previous shard back to the
	// coordinator and can restore that shard's committed generations; a
	// replacement for a lost worker MUST reuse the lost worker's directory
	// (shared or persistent storage), since checkpoints live with the shard.
	Dir string
	// DialAttempts / DialBackoff shape the jittered connect-retry loop.
	// Zero means the defaults above.
	DialAttempts int
	DialBackoff  time.Duration
	// Crash plants a kill point for the chaos driver (see CrashEnv); the
	// zero value never fires.
	Crash CrashPlan
	// HangAtSuperstep, when > 0, makes the worker go silent (no heartbeats,
	// no progress) upon receiving that superstep — the in-process stand-in
	// for a wedged process, driving the coordinator's lease-expiry path.
	HangAtSuperstep int
	// KeepCheckpoints bounds on-disk generations; zero means
	// engine.DefaultKeepGenerations.
	KeepCheckpoints int
	// DataPlane selects how this worker ships message batches: PlaneDirect
	// (or empty) serves a mesh endpoint and sends peer-to-peer when the
	// coordinator runs the direct plane; PlaneRelay disables the mesh
	// entirely — the worker advertises no address, which degrades the whole
	// run to the coordinator relay.
	DataPlane string
	// MeshListenAddr is the address the mesh endpoint listens on; empty
	// means an ephemeral loopback port. Multi-host deployments set this to
	// an externally reachable "<host>:0" (the advertised address is the
	// listener's).
	MeshListenAddr string
	// Registry, when set, receives the worker's engine.* metric families
	// (the shard is built with it) — the series a worker-side /metrics
	// endpoint exposes. Nil disables worker-local metrics.
	Registry *obs.Registry
	// Tracer, when set, receives the worker's run trace: a run_start carrying
	// the coordinator-minted span and one shard_step per completed superstep,
	// timed by the worker's own clock. Nil disables tracing.
	Tracer obs.Tracer
	// Logger nil means slog.Default.
	Logger *slog.Logger
}

// stepRun is the in-flight superstep: batches arrive interleaved with
// nothing else on the wire, but counting them explicitly keeps the worker a
// pure frame-at-a-time state machine.
type stepRun struct {
	step    int
	ckpt    bool
	gen     int
	batches [][]byte
	got     int
	need    int

	// Phase clock: computeNS covers compute + outbound + shipping the
	// batches; shipped marks the start of the barrier wait (idle until the
	// last peer batch lands).
	computeNS int64
	shipped   time.Time

	// Data-plane attribution for this superstep's outbound batches, plus
	// the arrival clock of inbound mesh batches (peer_recv ends when the
	// last direct batch lands).
	peerSendNS   int64
	directBytes  int64
	relayedBytes int64
	lastDirect   time.Time
}

// pendKey indexes an early mesh batch: the peer computed a superstep this
// worker has not opened yet (its fStep is still in flight on the
// coordinator stream, which has no ordering relative to the mesh).
type pendKey struct {
	step int
	src  int
}

// wrk is one worker process's run state.
type wrk struct {
	cfg   WorkerConfig
	ctx   context.Context
	conn  net.Conn
	wmu   sync.Mutex // serializes frame writes (main loop vs heartbeat)
	log   *slog.Logger
	sh    *core.Shard
	store *engine.CheckpointStore

	self       int
	shards     int
	epoch      int
	span       string
	graphBytes int64 // resident graph footprint, reported on every ready
	cur        *stepRun

	mesh    *mesh              // nil when the worker runs relay-only
	pending map[pendKey][]byte // early mesh batches for unopened supersteps

	hbStop chan struct{}
	hbOnce sync.Once
}

// RunWorker connects to the coordinator and executes the assigned shard
// until the run completes (nil), the context is canceled, or the
// connection fails. A worker process is stateless beyond its checkpoint
// directory: every decision is the coordinator's.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Addr == "" || cfg.Dir == "" {
		return errors.New("cluster: worker requires Addr and Dir")
	}
	if cfg.DialAttempts <= 0 {
		cfg.DialAttempts = DefaultDialAttempts
	}
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = DefaultDialBackoff
	}
	if cfg.KeepCheckpoints <= 0 {
		cfg.KeepCheckpoints = engine.DefaultKeepGenerations
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	switch cfg.DataPlane {
	case "", PlaneDirect, PlaneRelay:
	default:
		return fmt.Errorf("cluster: unknown data plane %q", cfg.DataPlane)
	}
	// The mesh listener comes up before the hello so the advertised address
	// is live the moment any peer learns it.
	var me *mesh
	if cfg.DataPlane != PlaneRelay {
		addr := cfg.MeshListenAddr
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		var err error
		if me, err = newMesh(addr, cfg.Logger); err != nil {
			return err
		}
		defer me.close()
	}
	conn, err := dialCoordinator(ctx, cfg)
	if err != nil {
		return err
	}
	defer conn.Close()
	w := &wrk{
		cfg: cfg, ctx: ctx, conn: conn, log: cfg.Logger, mesh: me,
		pending: map[pendKey][]byte{}, hbStop: make(chan struct{}),
	}
	defer w.stopHeartbeat()
	// A canceled context unblocks the frame read by closing the conn.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-watchDone:
		}
	}()
	hello := helloMsg{PrevShard: readShardMarker(cfg.Dir)}
	if me != nil {
		hello.MeshAddr = me.addr()
	}
	if err := w.sendJSON(fHello, hello); err != nil {
		return err
	}
	return w.loop()
}

// dialCoordinator retries with capped, jittered exponential backoff — the
// same discipline as the engine transport's dial path.
func dialCoordinator(ctx context.Context, cfg WorkerConfig) (net.Conn, error) {
	var d net.Dialer
	var lastErr error
	for i := 1; i <= cfg.DialAttempts; i++ {
		conn, err := d.DialContext(ctx, "tcp", cfg.Addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		select {
		case <-time.After(engine.RetryDelay(cfg.DialBackoff, i, 32*cfg.DialBackoff)):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("cluster: dial coordinator %s: %w", cfg.Addr, lastErr)
}

// loop is the worker's single-threaded state machine. Frames from the
// coordinator stream and the mesh are funneled through channels so one
// goroutine makes every state transition; the select order between the two
// sources is irrelevant because batch delivery is gated on completeness and
// replayed in a canonical order, never in arrival order.
func (w *wrk) loop() error {
	type inFrame struct {
		ftype   byte
		payload []byte
		err     error
	}
	coordIn := make(chan inFrame, 8)
	go func() {
		for {
			ftype, payload, err := readConnFrame(w.conn)
			select {
			case coordIn <- inFrame{ftype, payload, err}:
			case <-w.ctx.Done():
				return
			}
			if err != nil {
				return
			}
		}
	}()
	var meshIn chan []byte
	if w.mesh != nil {
		meshIn = w.mesh.in
	}
	for {
		select {
		case f := <-coordIn:
			if f.err != nil {
				if w.ctx.Err() != nil {
					return w.ctx.Err()
				}
				if errors.Is(f.err, io.EOF) {
					return errors.New("cluster: coordinator closed the connection")
				}
				return fmt.Errorf("cluster: read frame: %w", f.err)
			}
			var err error
			switch f.ftype {
			case fAssign:
				err = w.handleAssign(f.payload)
			case fStep:
				err = w.handleStep(f.payload)
			case fData:
				err = w.handleData(f.payload)
			case fPeers:
				err = w.handlePeers(f.payload)
			case fRollback:
				err = w.handleRollback(f.payload)
			case fCollect:
				err = w.handleCollect(f.payload)
			case fBye:
				return nil
			default:
				err = fmt.Errorf("cluster: unexpected frame type %d from coordinator", f.ftype)
			}
			if err != nil {
				return err
			}
		case p := <-meshIn:
			if err := w.handleMeshData(p); err != nil {
				return err
			}
		case <-w.ctx.Done():
			return w.ctx.Err()
		}
	}
}

// handlePeers (re)builds the outbound mesh for an epoch and acknowledges
// the outcome. Dialing happens inline — the worker has nothing else to do
// between ready and the first step, and the heartbeat goroutine keeps the
// lease alive — and a failure degrades the run to the relay plane on the
// coordinator rather than killing the worker.
func (w *wrk) handlePeers(payload []byte) error {
	var pm peersMsg
	if err := parseJSON(payload, &pm); err != nil {
		return err
	}
	if pm.Epoch != w.epoch {
		return nil // stale
	}
	if w.mesh == nil {
		return w.sendJSON(fMeshed, meshedMsg{Epoch: pm.Epoch, Shard: w.self, OK: false, Err: "mesh disabled"})
	}
	w.mesh.self = w.self
	if err := w.mesh.dialPeers(w.ctx, pm.Epoch, pm.Addrs, meshDialAttempts, w.cfg.DialBackoff); err != nil {
		if w.ctx.Err() != nil {
			return w.ctx.Err()
		}
		w.log.Warn("cluster: mesh dial failed, reporting for relay fallback", "shard", w.self, "err", err)
		return w.sendJSON(fMeshed, meshedMsg{Epoch: pm.Epoch, Shard: w.self, OK: false, Err: err.Error()})
	}
	w.log.Info("cluster: mesh established", "shard", w.self, "epoch", pm.Epoch, "peers", len(pm.Addrs)-1)
	return w.sendJSON(fMeshed, meshedMsg{Epoch: pm.Epoch, Shard: w.self, OK: true})
}

// fail reports a fatal worker-side error to the coordinator (best effort)
// and returns it. Deterministic failures must abort the run, not trigger
// recovery: a replay would hit them again.
func (w *wrk) fail(err error) error {
	_ = w.sendJSON(fError, errorMsg{Shard: w.self, Msg: err.Error()})
	return err
}

func (w *wrk) handleAssign(payload []byte) error {
	var as assignMsg
	if err := parseJSON(payload, &as); err != nil {
		return err
	}
	if w.sh != nil {
		return w.fail(errors.New("cluster: duplicate assignment"))
	}
	// Heartbeat from the moment the assignment is understood: graph load,
	// engine build and the generation-0 checkpoint below can take longer
	// than the lease on large graphs, and a silent worker mid-setup would be
	// declared dead before it ever got to ready.
	w.startHeartbeat(time.Duration(as.HeartbeatNS))
	gm, pmeta, err := LoadGraphShard(as.Graph, as.Shard)
	if err != nil {
		return w.fail(err)
	}
	g := gm.Graph // the mapping stays open for the worker's lifetime
	prog, opts, err := algorithms.New(g, as.Algo, as.Params)
	if err != nil {
		return w.fail(err)
	}
	opts.NumWorkers = as.Shards
	if pmeta != nil {
		// Partitioned graph: adopt the cut's stored vertex→shard map. The
		// local edge set is partial, so recomputing placement from work
		// weights here would diverge from every other process.
		if pmeta.Shards != as.Shards {
			return w.fail(fmt.Errorf("cluster: partition cut for %d shards, run has %d", pmeta.Shards, as.Shards))
		}
		opts.Partitioner = pmeta.Partitioner()
	}
	// The shard publishes its engine.* families into the worker's registry
	// and stamps the coordinator-minted span on everything it traces, so a
	// worker's /metrics and trace are first-class citizens of the fleet.
	opts.Registry = w.cfg.Registry
	opts.Span = as.Span
	sh, err := core.NewShard(g, prog, opts, as.Shard)
	if err != nil {
		return w.fail(err)
	}
	store, err := engine.OpenCheckpointStore(w.cfg.Dir)
	if err != nil {
		return w.fail(err)
	}
	if prev := readShardMarker(w.cfg.Dir); as.RestoreGen >= 0 && prev != as.Shard {
		return w.fail(fmt.Errorf(
			"cluster: directory %s holds checkpoints for shard %d, cannot restore shard %d",
			w.cfg.Dir, prev, as.Shard))
	}
	if err := writeShardMarker(w.cfg.Dir, as.Shard); err != nil {
		return w.fail(err)
	}
	if err := sh.Init(); err != nil {
		return w.fail(err)
	}
	w.sh, w.store = sh, store
	w.self, w.shards, w.epoch = as.Shard, as.Shards, as.Epoch
	w.span = as.Span
	w.graphBytes = gm.Size()
	w.emit(obs.RunStart{Vertices: g.NumVertices(), Workers: as.Shards, Checkpoints: true, Span: as.Span})
	var restored int64
	gen := 0
	if as.RestoreGen >= 0 {
		// Replacement path: reload the committed generation from disk.
		data, meta, err := store.Load(as.RestoreGen)
		if err != nil {
			return w.fail(fmt.Errorf("cluster: restore gen %d: %w", as.RestoreGen, err))
		}
		if err := sh.RestoreDurable(data); err != nil {
			return w.fail(err)
		}
		gen, restored = meta.Gen, meta.Bytes
		w.log.Info("cluster: shard restored from disk", "shard", w.self, "gen", gen,
			"superstep", sh.Superstep(), "bytes", restored)
	} else {
		// Fresh start: generation 0 (post-Init, superstep 1) goes to disk
		// before ready, so a rollback target always exists.
		data, err := sh.CaptureDurable()
		if err != nil {
			return w.fail(err)
		}
		if _, err := store.Save(0, sh.Superstep(), data); err != nil {
			return w.fail(err)
		}
	}
	return w.sendJSON(fReady, readyMsg{
		Epoch: w.epoch, Shard: w.self, Superstep: sh.Superstep(),
		Gen: gen, RestoredBytes: restored, GraphBytes: w.graphBytes,
	})
}

func (w *wrk) handleStep(payload []byte) error {
	var st stepMsg
	if err := parseJSON(payload, &st); err != nil {
		return err
	}
	if w.sh == nil {
		return w.fail(errors.New("cluster: step before assignment"))
	}
	if st.Epoch != w.epoch {
		return nil // stale
	}
	if w.cfg.HangAtSuperstep > 0 && st.Superstep == w.cfg.HangAtSuperstep {
		// Simulate a wedged process: stop heartbeating and go silent until
		// the context tears the test down. The coordinator must recover via
		// lease expiry.
		w.stopHeartbeat()
		w.log.Warn("cluster: hanging on purpose", "superstep", st.Superstep)
		<-w.ctx.Done()
		return w.ctx.Err()
	}
	if got := w.sh.Superstep(); got != st.Superstep {
		return w.fail(fmt.Errorf("cluster: shard %d at superstep %d, coordinator wants %d",
			w.self, got, st.Superstep))
	}
	computeStart := time.Now()
	if err := w.sh.Compute(); err != nil {
		return w.fail(err)
	}
	outs, err := w.sh.Outbound()
	if err != nil {
		return w.fail(err)
	}
	direct := st.Direct && w.mesh != nil
	var peerSendNS, directBytes, relayedBytes int64
	sent := 0
	for dst := 0; dst < w.shards; dst++ {
		if dst == w.self {
			continue
		}
		p := appendDataHeader(nil, dataHeader{epoch: w.epoch, superstep: st.Superstep, src: w.self, dst: dst})
		p = append(p, outs[dst]...)
		shippedDirect := false
		if direct {
			t0 := time.Now()
			err := w.mesh.send(dst, p)
			peerSendNS += time.Since(t0).Nanoseconds()
			if err == nil {
				directBytes += int64(len(p))
				shippedDirect = true
			} else {
				// Per-batch fallback: the receiver counts batches from either
				// plane, so one dead mesh connection costs an extra hop, not
				// the run. The lease machinery handles a genuinely dead peer.
				w.log.Warn("cluster: mesh send failed, relaying batch",
					"shard", w.self, "dst", dst, "superstep", st.Superstep, "err", err)
			}
		}
		if !shippedDirect {
			if err := w.sendFrame(fData, p); err != nil {
				return err
			}
			relayedBytes += int64(len(p))
		}
		sent++
		if sent == 1 {
			// Kill point "peersend": die mid-ship — the first peer (or the
			// relay) holds this superstep's batch, the rest never see it.
			w.maybeCrash("peersend", st.Superstep)
		}
	}
	shipped := time.Now()
	// Kill point "compute": batches are on the wire, delivery has not
	// happened — peers hold partial superstep state when the process dies.
	w.maybeCrash("compute", st.Superstep)
	w.cur = &stepRun{
		step: st.Superstep, ckpt: st.Checkpoint, gen: st.Gen,
		batches: make([][]byte, w.shards), need: w.shards - 1,
		computeNS: shipped.Sub(computeStart).Nanoseconds(), shipped: shipped,
		peerSendNS: peerSendNS, directBytes: directBytes, relayedBytes: relayedBytes,
	}
	// Batches that beat this fStep across the mesh are already parked;
	// adopt them before asking whether the barrier is complete.
	for key, batch := range w.pending {
		switch {
		case key.step < st.Superstep:
			delete(w.pending, key)
		case key.step == st.Superstep:
			delete(w.pending, key)
			// Already here before the ship finished: contributes nothing to
			// the mesh wait clock.
			if err := w.storeBatch(key.src, batch, false); err != nil {
				return err
			}
		}
	}
	return w.finishStepIfReady()
}

// handleData receives one relayed batch from the coordinator stream. The
// coordinator stream is ordered — fStep always precedes the relayed
// batches of its superstep — so anything not addressed to the open step is
// stale (in flight across a recovery) and dropped.
func (w *wrk) handleData(payload []byte) error {
	h, batch, err := parseDataHeader(payload)
	if err != nil {
		return err
	}
	if h.epoch != w.epoch || w.cur == nil || h.superstep != w.cur.step || h.dst != w.self {
		return nil // stale (in flight across a recovery)
	}
	if err := w.storeBatch(h.src, batch, false); err != nil {
		return err
	}
	return w.finishStepIfReady()
}

// handleMeshData receives one batch from a peer connection. Unlike the
// coordinator stream, the mesh has no ordering relative to fStep: a fast
// peer's batch for superstep S can land before this worker has read fStep
// S, so batches for future supersteps of the current epoch are parked in
// the pending buffer rather than dropped. Stale epochs are discarded
// exactly as the relay does.
func (w *wrk) handleMeshData(payload []byte) error {
	h, batch, err := parseDataHeader(payload)
	if err != nil {
		return err
	}
	if h.epoch != w.epoch || h.dst != w.self {
		return nil // stale epoch or misrouted leftover of a dead incarnation
	}
	if h.src < 0 || h.src >= w.shards || h.src == w.self {
		return w.fail(fmt.Errorf("cluster: shard %d: bad mesh frame source %d", w.self, h.src))
	}
	if w.cur != nil && h.superstep == w.cur.step {
		if err := w.storeBatch(h.src, batch, true); err != nil {
			return err
		}
		return w.finishStepIfReady()
	}
	if w.sh != nil && h.superstep >= w.sh.Superstep() {
		key := pendKey{step: h.superstep, src: h.src}
		if prev, dup := w.pending[key]; dup {
			if bytes.Equal(prev, batch) {
				return nil
			}
			return w.fail(fmt.Errorf("cluster: shard %d: conflicting early batches from %d at superstep %d",
				w.self, h.src, h.superstep))
		}
		w.pending[key] = batch
		return nil
	}
	return nil // late duplicate of a completed superstep
}

// storeBatch files one peer batch into the open superstep. A byte-identical
// duplicate is dropped, not fatal: a mesh write that times out after the
// kernel buffered the frame is retried over the relay, and the receiver may
// legitimately see both copies.
func (w *wrk) storeBatch(src int, batch []byte, viaMesh bool) error {
	if src < 0 || src >= w.shards || src == w.self {
		return w.fail(fmt.Errorf("cluster: shard %d: bad data frame source %d", w.self, src))
	}
	if prev := w.cur.batches[src]; prev != nil {
		if bytes.Equal(prev, batch) {
			return nil
		}
		return w.fail(fmt.Errorf("cluster: shard %d: conflicting batches from %d at superstep %d",
			w.self, src, w.cur.step))
	}
	w.cur.batches[src] = batch
	w.cur.got++
	if viaMesh {
		w.cur.lastDirect = time.Now()
	}
	return nil
}

// finishStepIfReady completes the superstep once every peer batch is in:
// deliver (own outbox first, peers ascending — the bit-identity order),
// barrier, optional durable checkpoint, report.
func (w *wrk) finishStepIfReady() error {
	cur := w.cur
	if cur == nil || cur.got < cur.need {
		return nil
	}
	w.cur = nil
	// The barrier wait ends when the last peer batch has landed; everything
	// from here to the report is delivery + barrier + checkpoint I/O.
	deliverStart := time.Now()
	waitNS := deliverStart.Sub(cur.shipped).Nanoseconds()
	ordered := make([][]byte, 0, cur.need)
	for src := 0; src < w.shards; src++ {
		if src != w.self {
			ordered = append(ordered, cur.batches[src])
		}
	}
	if _, err := w.sh.Deliver(ordered); err != nil {
		return w.fail(err)
	}
	rep := w.sh.Barrier()
	ckptGen, ckptBytes := -1, int64(0)
	if cur.ckpt {
		if w.cfg.Crash.at("checkpoint", cur.step) {
			// Kill point "checkpoint": die between the temp-file write and
			// the atomic rename — a torn write the manifest never admits.
			w.store.CommitHook = func(stage string) {
				if stage == "written" {
					w.crashNow("checkpoint", cur.step)
				}
			}
		}
		data, err := w.sh.CaptureDurable()
		if err != nil {
			return w.fail(err)
		}
		meta, err := w.store.Save(cur.gen, w.sh.Superstep(), data)
		if err != nil {
			return w.fail(err)
		}
		if err := w.store.Prune(w.cfg.KeepCheckpoints); err != nil {
			return w.fail(err)
		}
		ckptGen, ckptBytes = meta.Gen, meta.Bytes
	}
	deliverNS := time.Since(deliverStart).Nanoseconds()
	var peerRecvNS int64
	if !cur.lastDirect.IsZero() {
		if d := cur.lastDirect.Sub(cur.shipped).Nanoseconds(); d > 0 {
			peerRecvNS = d
		}
	}
	w.emit(obs.ShardStep{
		Span: w.span, Superstep: rep.Superstep, Shard: w.self, Epoch: w.epoch,
		ComputeNS: cur.computeNS, WaitNS: waitNS, DeliverNS: deliverNS,
		PeerSendNS: cur.peerSendNS, PeerRecvNS: peerRecvNS,
		ComputeCalls: rep.ComputeCalls, ScatterCalls: rep.ScatterCalls,
		SentMsgs: rep.SentMsgs, SentBytes: rep.SentBytes,
		Delivered: rep.Delivered, Active: int64(rep.Active),
	})
	err := w.sendJSON(fStepDone, stepDoneMsg{
		Epoch: w.epoch, Superstep: rep.Superstep, Shard: w.self,
		Delivered: rep.Delivered, Active: rep.Active,
		ComputeCalls: rep.ComputeCalls, ScatterCalls: rep.ScatterCalls,
		SentMsgs: rep.SentMsgs, SentBytes: rep.SentBytes,
		CkptGen: ckptGen, CkptBytes: ckptBytes,
		ComputeNS: cur.computeNS, WaitNS: waitNS, DeliverNS: deliverNS,
		PeerSendNS: cur.peerSendNS, PeerRecvNS: peerRecvNS,
		DirectBytes: cur.directBytes, RelayedBytes: cur.relayedBytes,
	})
	if err != nil {
		return err
	}
	// Kill point "barrier": the barrier report is sent — the coordinator
	// may close the superstep and even commit the checkpoint generation —
	// but this process dies before seeing the next step.
	w.maybeCrash("barrier", cur.step)
	return nil
}

func (w *wrk) handleRollback(payload []byte) error {
	var rb rollbackMsg
	if err := parseJSON(payload, &rb); err != nil {
		return err
	}
	if w.sh == nil {
		return w.fail(errors.New("cluster: rollback before assignment"))
	}
	w.epoch = rb.Epoch
	w.cur = nil
	clear(w.pending) // parked batches belong to the dead epoch
	data, meta, err := w.store.Load(rb.Gen)
	if err != nil {
		return w.fail(fmt.Errorf("cluster: rollback to gen %d: %w", rb.Gen, err))
	}
	if err := w.sh.RestoreDurable(data); err != nil {
		return w.fail(err)
	}
	w.log.Info("cluster: rolled back", "shard", w.self, "gen", rb.Gen,
		"superstep", w.sh.Superstep(), "epoch", w.epoch)
	return w.sendJSON(fReady, readyMsg{
		Epoch: w.epoch, Shard: w.self, Superstep: w.sh.Superstep(),
		Gen: meta.Gen, RestoredBytes: meta.Bytes, GraphBytes: w.graphBytes,
	})
}

func (w *wrk) handleCollect(payload []byte) error {
	var cl collectMsg
	if err := parseJSON(payload, &cl); err != nil {
		return err
	}
	if cl.Epoch != w.epoch {
		return nil // stale
	}
	blob, err := w.sh.EncodeOwnedStates()
	if err != nil {
		return w.fail(err)
	}
	p := appendResultHeader(nil, w.epoch, w.self)
	return w.sendFrame(fResult, append(p, blob...))
}

// sendFrame / sendJSON serialize writes across the main loop and the
// heartbeat goroutine.
func (w *wrk) sendFrame(ftype byte, payload []byte) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return writeConnFrame(w.conn, ftype, payload)
}

func (w *wrk) sendJSON(ftype byte, v any) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return sendJSON(w.conn, ftype, v)
}

func (w *wrk) startHeartbeat(every time.Duration) {
	if every <= 0 {
		every = DefaultLease / 4
	}
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-w.hbStop:
				return
			case <-w.ctx.Done():
				return
			case <-t.C:
				if err := w.sendFrame(fHeartbeat, nil); err != nil {
					return
				}
			}
		}
	}()
}

func (w *wrk) stopHeartbeat() { w.hbOnce.Do(func() { close(w.hbStop) }) }

func (w *wrk) emit(e obs.Event) {
	if w.cfg.Tracer != nil {
		w.cfg.Tracer.Emit(e)
	}
}

// maybeCrash fires a planted kill point: SIGKILL to self, the closest
// honest stand-in for machine loss — no deferred functions, no flushes.
func (w *wrk) maybeCrash(phase string, superstep int) {
	if w.cfg.Crash.at(phase, superstep) {
		w.crashNow(phase, superstep)
	}
}

func (w *wrk) crashNow(phase string, superstep int) {
	w.log.Warn("cluster: planted crash firing", "phase", phase, "superstep", superstep)
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	select {} // unreachable: the kill is not catchable
}
