package cluster

import (
	"fmt"
	"os"
	"path/filepath"

	"graphite/internal/engine"
	"graphite/internal/tgraph"
)

// PartitionInfo summarizes one file of a partition directory.
type PartitionInfo struct {
	Shard    int    `json:"shard"` // -1 for the full-graph copy
	Name     string `json:"name"`
	Owned    int    `json:"owned"` // vertices this shard computes
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Bytes    int64  `json:"bytes"`
}

// WritePartitions cuts g into shards induced-subgraph partition files under
// dir, resolvable by the "shard:<dir>" graph spec: a full-graph copy
// (full.gsn, the coordinator's view) plus one part-NNN.gsn per shard.
// Placement is the engine's balanced LPT partitioner over the graph's work
// weights — the same rule a whole-graph cluster run would compute — and the
// resulting assignment is embedded in every file so all processes share the
// exact vertex→shard map without recomputing weights from partial graphs.
func WritePartitions(g *tgraph.Graph, dir string, shards int) ([]PartitionInfo, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("cluster: partition count %d, want >= 1", shards)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	part := engine.PartitionBalanced(g.WorkWeights())
	assign := make([]int32, g.NumVertices())
	for v := range assign {
		assign[v] = int32(part(v, shards))
	}
	meta := &tgraph.PartitionMeta{
		Shard:    -1,
		Shards:   shards,
		Vertices: g.NumVertices(),
		Edges:    g.NumEdges(),
		Assign:   assign,
	}
	infos := make([]PartitionInfo, 0, shards+1)
	write := func(name string, pg *tgraph.Graph, m *tgraph.PartitionMeta) error {
		path := filepath.Join(dir, name)
		if err := tgraph.WritePartitionFile(path, pg, m); err != nil {
			return fmt.Errorf("cluster: write partition %s: %w", path, err)
		}
		st, err := os.Stat(path)
		if err != nil {
			return err
		}
		owned := g.NumVertices()
		if m.Shard >= 0 {
			owned = m.Owned(m.Shard)
		}
		infos = append(infos, PartitionInfo{
			Shard: m.Shard, Name: name, Owned: owned,
			Vertices: pg.NumVertices(), Edges: pg.NumEdges(), Bytes: st.Size(),
		})
		return nil
	}
	if err := write(tgraph.PartitionFullName, g, meta); err != nil {
		return nil, err
	}
	for s := 0; s < shards; s++ {
		pg, err := tgraph.ExtractPartition(g, assign, s)
		if err != nil {
			return nil, fmt.Errorf("cluster: extract shard %d: %w", s, err)
		}
		sm := *meta
		sm.Shard = s
		if err := write(tgraph.PartitionFileName(s), pg, &sm); err != nil {
			return nil, err
		}
	}
	return infos, nil
}
