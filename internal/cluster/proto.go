// Package cluster is the multi-process runtime: one coordinator process
// drives N worker processes through the distributed BSP loop over framed
// TCP, supervises them with heartbeat leases, and recovers from worker
// death by rolling every survivor back to the last globally-committed
// durable checkpoint and replaying.
//
// The execution model piggybacks on core.Shard: every worker builds the
// engine over the full vertex set from an identical configuration, so the
// deterministic partitioner gives each process the same vertex→shard map,
// and only the owned slice is ever computed locally. With a "shard:<dir>"
// graph spec each worker maps only its own induced-subgraph partition
// (full vertex set, edges trimmed to the shard's incident set), cutting
// resident memory to O(V + E/N). The coordinator owns all control flow —
// superstep broadcast, barrier aggregation, halt detection, checkpoint
// commit — which keeps the worker a single straight-line state machine and
// makes recovery a coordinator-local decision. Message batches travel on a
// configurable data plane: directly worker-to-worker over a full TCP mesh
// (the default), or relayed through the coordinator (the fallback).
//
// Delivery order (own outbox first, then peer batches ascending by source
// shard) matches the in-process transported exchange regardless of the
// plane or the mesh's arrival order, so a cluster run is bit-identical to
// a single-process run — the invariant the kill-recovery chaos tests
// assert.
package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"graphite/internal/algorithms"
	"graphite/internal/codec"
	"graphite/internal/tgraph"
)

// Frame types of the coordinator↔worker protocol. Control frames carry
// JSON; fData and fResult carry binary payloads with uvarint headers.
const (
	fHello     byte = iota + 1 // worker→coord: registration
	fAssign                    // coord→worker: shard assignment + run spec
	fReady                     // worker→coord: shard built/restored, at a barrier
	fStep                      // coord→worker: execute one superstep
	fStepDone                  // worker→coord: barrier report
	fData                      // both ways: one encoded message batch (relayed)
	fRollback                  // coord→worker: restore committed gen, new epoch
	fCollect                   // coord→worker: send final states
	fResult                    // worker→coord: encoded owned states
	fHeartbeat                 // worker→coord: lease renewal
	fError                     // worker→coord: fatal worker-side error
	fBye                       // coord→worker: run complete, exit cleanly
	fPeers                     // coord→worker: mesh addresses of every shard
	fMeshed                    // worker→coord: mesh dial outcome for an epoch
	fMeshHello                 // worker→worker: first frame on a mesh connection
)

// Data-plane modes. PlaneDirect ships fData batches worker-to-worker over
// the mesh; PlaneRelay routes every batch through the coordinator (the
// original star topology, kept as an explicit fallback).
const (
	PlaneDirect = "direct"
	PlaneRelay  = "relay"
)

// helloMsg registers a worker. PrevShard is the shard recorded in the
// worker's checkpoint directory by a previous incarnation (-1 if none); the
// coordinator prefers to re-assign it so the on-disk checkpoints match.
// MeshAddr is the worker's listening address for direct peer data; empty
// means the worker cannot (or was told not to) serve a mesh endpoint, which
// degrades the whole run to the relay plane.
type helloMsg struct {
	PrevShard int    `json:"prev_shard"`
	MeshAddr  string `json:"mesh_addr,omitempty"`
}

// assignMsg hands a worker its shard and everything needed to build it
// identically to every peer. RestoreGen >= 0 instructs the worker to load
// that generation from its local store after Init (the replacement-worker
// path); -1 means a fresh start (save generation 0 instead). Span is the
// run-scoped span ID every process stamps on its trace, so the coordinator
// trace and all N worker traces name the same distributed run.
type assignMsg struct {
	Shard           int               `json:"shard"`
	Shards          int               `json:"shards"`
	Epoch           int               `json:"epoch"`
	RestoreGen      int               `json:"restore_gen"`
	Graph           string            `json:"graph"`
	Algo            string            `json:"algo"`
	Params          algorithms.Params `json:"params"`
	CheckpointEvery int               `json:"checkpoint_every"`
	HeartbeatNS     int64             `json:"heartbeat_ns"`
	Span            string            `json:"span,omitempty"`
}

// readyMsg reports a worker standing at a superstep boundary, ready for
// fStep: after initial assignment, after a rollback restore, or after a
// replacement-worker restore.
type readyMsg struct {
	Epoch         int   `json:"epoch"`
	Shard         int   `json:"shard"`
	Superstep     int   `json:"superstep"`
	Gen           int   `json:"gen"`
	RestoredBytes int64 `json:"restored_bytes"`
	GraphBytes    int64 `json:"graph_bytes,omitempty"` // resident graph footprint (mapped partition size)
}

// stepMsg starts one superstep. Checkpoint tells the worker to capture a
// durable checkpoint as generation Gen at the closing barrier. Direct
// selects the data plane for this superstep's batches: peer mesh when true,
// coordinator relay when false.
type stepMsg struct {
	Epoch      int  `json:"epoch"`
	Superstep  int  `json:"superstep"`
	Checkpoint bool `json:"checkpoint,omitempty"`
	Gen        int  `json:"gen,omitempty"`
	Direct     bool `json:"direct,omitempty"`
}

// stepDoneMsg is one shard's barrier report. CkptGen is -1 unless this
// superstep captured a checkpoint; the coordinator commits a generation
// globally only after every shard acknowledges it. The three NS fields
// piggyback the worker's own phase clock onto the barrier message —
// compute (compute + outbound + ship), wait (idle until the last peer
// batch arrived), deliver (delivery + barrier + checkpoint I/O) — which is
// what the coordinator folds into fleet metrics and straggler attribution
// without any extra round trip.
type stepDoneMsg struct {
	Epoch        int   `json:"epoch"`
	Superstep    int   `json:"superstep"`
	Shard        int   `json:"shard"`
	Delivered    int64 `json:"delivered"`
	Active       int   `json:"active"`
	ComputeCalls int64 `json:"compute_calls"`
	ScatterCalls int64 `json:"scatter_calls"`
	SentMsgs     int64 `json:"sent_msgs"`
	SentBytes    int64 `json:"sent_bytes"`
	CkptGen      int   `json:"ckpt_gen"`
	CkptBytes    int64 `json:"ckpt_bytes"`
	ComputeNS    int64 `json:"compute_ns,omitempty"`
	WaitNS       int64 `json:"wait_ns,omitempty"`
	DeliverNS    int64 `json:"deliver_ns,omitempty"`
	PeerSendNS   int64 `json:"peer_send_ns,omitempty"`  // time writing batches to mesh peers
	PeerRecvNS   int64 `json:"peer_recv_ns,omitempty"`  // ship → last direct batch arrival
	DirectBytes  int64 `json:"direct_bytes,omitempty"`  // batch bytes shipped peer-to-peer
	RelayedBytes int64 `json:"relayed_bytes,omitempty"` // batch bytes shipped via the coordinator
}

// peersMsg hands every worker the mesh address of every shard for an epoch
// (indexed by shard; the receiver skips its own slot). Re-broadcast after
// every recovery so replacements advertise their fresh listeners.
type peersMsg struct {
	Epoch int      `json:"epoch"`
	Addrs []string `json:"addrs"`
}

// meshedMsg acknowledges a peersMsg: the worker dialed every peer (OK) or
// exhausted its retries (not OK, with the first error), in which case the
// coordinator degrades the run to the relay plane instead of aborting.
type meshedMsg struct {
	Epoch int    `json:"epoch"`
	Shard int    `json:"shard"`
	OK    bool   `json:"ok"`
	Err   string `json:"err,omitempty"`
}

// meshHelloMsg is the first frame on every mesh connection, identifying the
// dialing shard. Epoch is advisory (dataHeader carries the authoritative
// epoch per batch).
type meshHelloMsg struct {
	Shard int `json:"shard"`
	Epoch int `json:"epoch"`
}

// rollbackMsg orders survivors back to the last globally-committed
// generation and moves the cluster to a new epoch; frames from older
// epochs are discarded on both sides.
type rollbackMsg struct {
	Epoch int `json:"epoch"`
	Gen   int `json:"gen"`
}

// collectMsg asks for final states once the run has halted.
type collectMsg struct {
	Epoch int `json:"epoch"`
}

// errorMsg reports a fatal worker-side failure (a deterministic program
// panic, an unreadable checkpoint). The coordinator aborts the run: a
// deterministic failure would recur on every replay.
type errorMsg struct {
	Shard int    `json:"shard"`
	Msg   string `json:"msg"`
}

// readConnFrame / writeConnFrame are the wire primitives, named for intent
// at call sites.
func readConnFrame(r io.Reader) (byte, []byte, error) { return codec.ReadFrame(r) }

func writeConnFrame(w io.Writer, ftype byte, payload []byte) error {
	return codec.WriteFrame(w, ftype, payload)
}

// sendJSON writes one JSON control frame.
func sendJSON(w io.Writer, ftype byte, v any) error {
	p, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("cluster: encode frame %d: %w", ftype, err)
	}
	return codec.WriteFrame(w, ftype, p)
}

// parseJSON decodes one JSON control frame payload.
func parseJSON(payload []byte, v any) error {
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("cluster: malformed control frame: %w", err)
	}
	return nil
}

// dataHeader addresses one relayed message batch.
type dataHeader struct {
	epoch     int
	superstep int
	src       int
	dst       int
}

// appendDataHeader prepends the routing header to a data frame payload.
func appendDataHeader(buf []byte, h dataHeader) []byte {
	buf = binary.AppendUvarint(buf, uint64(h.epoch))
	buf = binary.AppendUvarint(buf, uint64(h.superstep))
	buf = binary.AppendUvarint(buf, uint64(h.src))
	buf = binary.AppendUvarint(buf, uint64(h.dst))
	return buf
}

// parseDataHeader splits a data frame payload into its header and the
// encoded batch bytes.
func parseDataHeader(p []byte) (dataHeader, []byte, error) {
	var h dataHeader
	for _, dst := range []*int{&h.epoch, &h.superstep, &h.src, &h.dst} {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return h, nil, fmt.Errorf("%w: data frame header", codec.ErrCorrupt)
		}
		*dst = int(v)
		p = p[n:]
	}
	return h, p, nil
}

// appendResultHeader / parseResultHeader frame a shard's state blob.
func appendResultHeader(buf []byte, epoch, shard int) []byte {
	buf = binary.AppendUvarint(buf, uint64(epoch))
	buf = binary.AppendUvarint(buf, uint64(shard))
	return buf
}

func parseResultHeader(p []byte) (epoch, shard int, blob []byte, err error) {
	for _, dst := range []*int{&epoch, &shard} {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, 0, nil, fmt.Errorf("%w: result frame header", codec.ErrCorrupt)
		}
		*dst = int(v)
		p = p[n:]
	}
	return epoch, shard, p, nil
}

// LoadGraph resolves a graph spec shared between coordinator and workers:
// "transit" is the built-in fixture, "file:<path>" loads any tgraph format
// — text, binary, or a .gsn snapshot, which rejoining workers open as an
// mmap so a respawn pays page faults instead of a parse — and
// "shard:<dir>" names a partition directory written by WritePartitions,
// from which each process maps only its own induced subgraph. Every process
// must resolve the spec to a graph with identical vertex indexing or the
// deterministic partition maps diverge. The returned Mapped stays open for
// the lifetime of the graph: the engine and results alias its memory.
func LoadGraph(spec string) (*tgraph.Mapped, error) {
	m, _, err := LoadGraphShard(spec, -1)
	return m, err
}

// LoadGraphShard resolves a graph spec for one shard. For "shard:<dir>"
// specs, shard >= 0 maps that shard's partition file (vertex set intact,
// edges trimmed to the shard's incident set) and shard == -1 maps the full
// graph copy (the coordinator's view); the returned PartitionMeta carries
// the cut's vertex→shard assignment, which every process must adopt as its
// partitioner. For whole-graph specs the meta is nil and the shard argument
// is irrelevant.
func LoadGraphShard(spec string, shard int) (*tgraph.Mapped, *tgraph.PartitionMeta, error) {
	switch {
	case spec == "transit":
		return tgraph.Unmapped(tgraph.TransitExample()), nil, nil
	case strings.HasPrefix(spec, "file:"):
		m, err := tgraph.OpenAnyFile(strings.TrimPrefix(spec, "file:"))
		return m, nil, err
	case strings.HasPrefix(spec, "shard:"):
		dir := strings.TrimPrefix(spec, "shard:")
		name := tgraph.PartitionFullName
		if shard >= 0 {
			name = tgraph.PartitionFileName(shard)
		}
		m, meta, err := tgraph.OpenPartition(filepath.Join(dir, name))
		if err != nil {
			return nil, nil, err
		}
		wantShard := shard
		if shard < 0 {
			wantShard = -1
		}
		if meta.Shard != wantShard {
			m.Close()
			return nil, nil, fmt.Errorf("%s: %w: file claims shard %d, requested %d",
				filepath.Join(dir, name), tgraph.ErrPartitionMismatch, meta.Shard, wantShard)
		}
		return m, meta, nil
	}
	return nil, nil, fmt.Errorf("cluster: unknown graph spec %q (want \"transit\", \"file:<path>\" or \"shard:<dir>\")", spec)
}

// shardMarkerName binds a checkpoint directory to the shard whose
// generations it holds, so a respawned worker can ask for its old shard
// back and its on-disk checkpoints stay meaningful.
const shardMarkerName = "SHARD"

func readShardMarker(dir string) int {
	b, err := os.ReadFile(filepath.Join(dir, shardMarkerName))
	if err != nil {
		return -1
	}
	n, err := strconv.Atoi(strings.TrimSpace(string(b)))
	if err != nil || n < 0 {
		return -1
	}
	return n
}

func writeShardMarker(dir string, shard int) error {
	return os.WriteFile(filepath.Join(dir, shardMarkerName), []byte(strconv.Itoa(shard)+"\n"), 0o644)
}

// CrashEnv names the environment variable the chaos driver sets to plant a
// kill point in a worker process: "<phase>:<superstep>" with phase one of
// "compute" (after the compute phase has shipped its batches, before
// delivery), "peersend" (mid-ship: after the first peer batch has left but
// before the rest, the worst case for the direct data plane), "checkpoint"
// (between the checkpoint temp-file write and its atomic rename), or
// "barrier" (after the barrier report is sent).
const CrashEnv = "GRAPHITE_CRASH"

// CrashPlan is a parsed kill point. The zero value never fires.
type CrashPlan struct {
	Phase     string
	Superstep int
}

// ParseCrashPlan parses a CrashEnv value; empty means no crash.
func ParseCrashPlan(s string) (CrashPlan, error) {
	if s == "" {
		return CrashPlan{}, nil
	}
	phase, stepStr, ok := strings.Cut(s, ":")
	if !ok {
		return CrashPlan{}, fmt.Errorf("cluster: bad crash plan %q (want phase:superstep)", s)
	}
	switch phase {
	case "compute", "peersend", "checkpoint", "barrier":
	default:
		return CrashPlan{}, fmt.Errorf("cluster: bad crash phase %q", phase)
	}
	step, err := strconv.Atoi(stepStr)
	if err != nil || step <= 0 {
		return CrashPlan{}, fmt.Errorf("cluster: bad crash superstep in %q", s)
	}
	return CrashPlan{Phase: phase, Superstep: step}, nil
}

// at reports whether the plan fires at this phase of this superstep.
func (p CrashPlan) at(phase string, superstep int) bool {
	return p.Phase == phase && p.Superstep == superstep
}
