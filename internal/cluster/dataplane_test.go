package cluster_test

// Data-plane and partition tests: both batch transports must produce the
// same bits as the single-process transported run, a mesh-less worker must
// degrade the fleet to the relay instead of killing it, and the
// "shard:<dir>" spec must resolve per-shard induced subgraphs that leave
// results untouched while shrinking each worker's resident graph.

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"graphite/internal/algorithms"
	"graphite/internal/cluster"
	"graphite/internal/obs"
	"graphite/internal/tgraph"
)

// runWorkersPlane is runWorkers with an explicit per-worker data plane.
func runWorkersPlane(ctx context.Context, t *testing.T, addr string, dirs []string, plane string) {
	t.Helper()
	for _, dir := range dirs {
		go func(dir string) {
			err := cluster.RunWorker(ctx, cluster.WorkerConfig{Addr: addr, Dir: dir, DataPlane: plane})
			if err != nil && ctx.Err() == nil {
				t.Errorf("worker %s: %v", filepath.Base(dir), err)
			}
		}(dir)
	}
}

// writeTransitPartitions cuts the transit fixture for testWorkers shards
// and returns the partition directory plus the written file infos.
func writeTransitPartitions(t *testing.T) (string, []cluster.PartitionInfo) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "parts")
	infos, err := cluster.WritePartitions(tgraph.TransitExample(), dir, testWorkers)
	if err != nil {
		t.Fatal(err)
	}
	return dir, infos
}

// TestClusterDataPlanes proves the tentpole invariant: for every algorithm,
// the direct (peer mesh) plane, the relay plane, and the direct plane over
// per-shard partition files all produce results bit-identical to the
// single-process transported run — and the byte counters prove which plane
// actually carried the traffic.
func TestClusterDataPlanes(t *testing.T) {
	g := tgraph.TransitExample()
	partDir, _ := writeTransitPartitions(t)
	for _, algo := range []struct {
		name string
		p    algorithms.Params
	}{
		{name: "sssp", p: algorithms.Params{Source: 0}},
		{name: "eat", p: algorithms.Params{Source: 0}},
		{name: "pr"},
	} {
		want := directRun(t, g, algo.name, algo.p)
		for _, tc := range []struct {
			name  string
			plane string
			graph string
		}{
			{name: "relay", plane: cluster.PlaneRelay, graph: "transit"},
			{name: "direct", plane: cluster.PlaneDirect, graph: "transit"},
			{name: "direct-partitioned", plane: cluster.PlaneDirect, graph: "shard:" + partDir},
		} {
			t.Run(algo.name+"/"+tc.name, func(t *testing.T) {
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				reg := obs.NewRegistry()
				coord, addr, out := startCluster(t, cluster.Config{
					Algo: algo.name, Params: algo.p,
					Graph: tc.graph, DataPlane: tc.plane, Registry: reg,
				})
				runWorkersPlane(ctx, t, addr, workerDirs(t, testWorkers), tc.plane)
				got := waitResult(t, out, 30*time.Second)
				compareResults(t, g, got, want)
				rep := coord.Report()
				if rep.DataPlane != tc.plane {
					t.Errorf("report plane = %q, want %q", rep.DataPlane, tc.plane)
				}
				relayB := reg.Counter(obs.CClusterRelayBytes).Load()
				directB := reg.Counter(obs.CClusterDirectBytes).Load()
				switch tc.plane {
				case cluster.PlaneDirect:
					if relayB != 0 {
						t.Errorf("direct run relayed %d bytes through the coordinator", relayB)
					}
					if directB == 0 {
						t.Error("direct run shipped no peer-to-peer bytes")
					}
				case cluster.PlaneRelay:
					if directB != 0 {
						t.Errorf("relay run shipped %d bytes peer-to-peer", directB)
					}
					if relayB == 0 {
						t.Error("relay run relayed no bytes")
					}
				}
				if tc.graph != "transit" {
					// Partitioned workers report their mapped partition size;
					// every shard must be resident-smaller than the full copy.
					full, err := os.Stat(filepath.Join(partDir, tgraph.PartitionFullName))
					if err != nil {
						t.Fatal(err)
					}
					if len(rep.WorkerGraphBytes) != testWorkers {
						t.Fatalf("worker graph bytes: %v", rep.WorkerGraphBytes)
					}
					for s, b := range rep.WorkerGraphBytes {
						if b <= 0 || b >= full.Size() {
							t.Errorf("shard %d resident graph = %d bytes, want (0, %d)", s, b, full.Size())
						}
					}
				}
			})
		}
	}
}

// TestClusterDegradesWithoutMesh runs a direct-plane coordinator against a
// fleet where one worker refuses the mesh: the run must degrade to the
// relay — never abort — and still match the single-process answer.
func TestClusterDegradesWithoutMesh(t *testing.T) {
	g := tgraph.TransitExample()
	p := algorithms.Params{Source: 0}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reg := obs.NewRegistry()
	coord, addr, out := startCluster(t, cluster.Config{
		Algo: "sssp", Params: p, DataPlane: cluster.PlaneDirect, Registry: reg,
	})
	dirs := workerDirs(t, testWorkers)
	runWorkersPlane(ctx, t, addr, dirs[:1], cluster.PlaneRelay)
	runWorkersPlane(ctx, t, addr, dirs[1:], cluster.PlaneDirect)
	got := waitResult(t, out, 30*time.Second)
	compareResults(t, g, got, directRun(t, g, "sssp", p))
	rep := coord.Report()
	if rep.DataPlane != cluster.PlaneRelay {
		t.Errorf("degraded run reports plane %q, want %q", rep.DataPlane, cluster.PlaneRelay)
	}
	if b := reg.Counter(obs.CClusterDirectBytes).Load(); b != 0 {
		t.Errorf("degraded run still shipped %d direct bytes", b)
	}
	if b := reg.Counter(obs.CClusterRelayBytes).Load(); b == 0 {
		t.Error("degraded run relayed no bytes")
	}
}

// TestClusterConfigDataPlane pins the plane and partition validation in
// cluster.New.
func TestClusterConfigDataPlane(t *testing.T) {
	if _, err := cluster.New(cluster.Config{Workers: 2, Graph: "transit", Algo: "sssp", DataPlane: "carrier-pigeon"}); err == nil {
		t.Error("bogus data plane accepted")
	}
	dir, _ := writeTransitPartitions(t)
	// Partition cut for testWorkers shards; any other width must be refused.
	if _, err := cluster.New(cluster.Config{Workers: testWorkers + 1, Graph: "shard:" + dir, Algo: "sssp"}); err == nil {
		t.Error("worker count differing from the partition cut accepted")
	}
	if _, err := cluster.New(cluster.Config{Workers: testWorkers, Graph: "shard:" + dir, Algo: "sssp"}); err != nil {
		t.Errorf("matching partitioned config rejected: %v", err)
	}
}

// TestLoadGraphShard pins the "shard:<dir>" spec contract: the full copy
// and every per-shard file resolve with their metadata, a missing file and
// a file claiming the wrong shard fail loudly, and the embedded assignment
// is one total map over the full vertex set.
func TestLoadGraphShard(t *testing.T) {
	want := tgraph.TransitExample()
	dir, infos := writeTransitPartitions(t)
	if len(infos) != testWorkers+1 {
		t.Fatalf("wrote %d files, want %d", len(infos), testWorkers+1)
	}

	m, meta, err := cluster.LoadGraphShard("shard:"+dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tgraph.Equal(m.Graph, want); err != nil {
		t.Errorf("full copy diverges: %v", err)
	}
	if meta == nil || meta.Shard != -1 || meta.Shards != testWorkers {
		t.Errorf("full meta: %+v", meta)
	}
	part := meta.Partitioner()
	m.Close()

	for s := 0; s < testWorkers; s++ {
		m, meta, err := cluster.LoadGraphShard("shard:"+dir, s)
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		if meta.Shard != s || meta.Owned(s) == 0 {
			t.Errorf("shard %d meta: %+v", s, meta)
		}
		// Full vertex set retained; edges trimmed to the incident set.
		if m.Graph.NumVertices() != want.NumVertices() {
			t.Errorf("shard %d dropped vertices: %d != %d", s, m.Graph.NumVertices(), want.NumVertices())
		}
		if m.Graph.NumEdges() >= want.NumEdges() {
			t.Errorf("shard %d kept all %d edges", s, m.Graph.NumEdges())
		}
		// The embedded assignment agrees with the full copy's partitioner.
		pp := meta.Partitioner()
		for v := 0; v < want.NumVertices(); v++ {
			if pp(v, testWorkers) != part(v, testWorkers) {
				t.Fatalf("shard %d assignment diverges at vertex %d", s, v)
			}
		}
		m.Close()
	}

	if _, _, err := cluster.LoadGraphShard("shard:"+dir, testWorkers+7); err == nil {
		t.Error("missing partition file accepted")
	}
	// A file claiming another shard: copy part-000 over part-001.
	b, err := os.ReadFile(filepath.Join(dir, tgraph.PartitionFileName(0)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, tgraph.PartitionFileName(1)), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cluster.LoadGraphShard("shard:"+dir, 1); err == nil {
		t.Error("partition file claiming the wrong shard accepted")
	}
}

// TestWritePartitionsInfos pins the WritePartitions summary: one full row
// plus one per shard, owned counts partitioning the vertex set, and every
// per-shard file smaller than the full copy.
func TestWritePartitionsInfos(t *testing.T) {
	g := tgraph.TransitExample()
	dir := filepath.Join(t.TempDir(), "parts")
	infos, err := cluster.WritePartitions(g, dir, testWorkers)
	if err != nil {
		t.Fatal(err)
	}
	if infos[0].Shard != -1 || infos[0].Name != tgraph.PartitionFullName || infos[0].Edges != g.NumEdges() {
		t.Errorf("full row: %+v", infos[0])
	}
	owned := 0
	for _, pi := range infos[1:] {
		owned += pi.Owned
		if pi.Vertices != g.NumVertices() {
			t.Errorf("shard %d vertex set trimmed: %+v", pi.Shard, pi)
		}
		if pi.Bytes <= 0 || pi.Bytes >= infos[0].Bytes {
			t.Errorf("shard %d file not smaller than full copy: %+v vs %d", pi.Shard, pi, infos[0].Bytes)
		}
		if pi.Name != tgraph.PartitionFileName(pi.Shard) {
			t.Errorf("shard %d name: %+v", pi.Shard, pi)
		}
	}
	if owned != g.NumVertices() {
		t.Errorf("owned counts sum to %d, want %d", owned, g.NumVertices())
	}
	if _, err := cluster.WritePartitions(g, dir, 0); err == nil {
		t.Error("zero shards accepted")
	}
	for _, pi := range infos[1:] {
		m, meta, err := cluster.LoadGraphShard("shard:"+dir, pi.Shard)
		if err != nil {
			t.Fatalf("reopen shard %d: %v", pi.Shard, err)
		}
		if meta.Owned(pi.Shard) != pi.Owned {
			t.Errorf("shard %d owned: file %d, info %d", pi.Shard, meta.Owned(pi.Shard), pi.Owned)
		}
		m.Close()
	}
}
