package cluster_test

// In-process cluster tests: coordinator and workers as goroutines over real
// loopback TCP. The process-kill matrix lives in internal/chaos; here the
// protocol itself is proven — full-run bit-identity against a transported
// single-process run, and the lease-expiry recovery path driven by a worker
// that goes silent on purpose.

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"graphite/internal/algorithms"
	"graphite/internal/cluster"
	"graphite/internal/core"
	"graphite/internal/engine"
	"graphite/internal/obs"
	"graphite/internal/tgraph"
)

const testWorkers = 3

// startCluster launches a coordinator on a loopback listener and returns
// it with its address and a channel carrying Serve's outcome.
func startCluster(t *testing.T, cfg cluster.Config) (*cluster.Coordinator, string, chan serveOutcome) {
	t.Helper()
	cfg.Workers = testWorkers
	if cfg.Graph == "" {
		cfg.Graph = "transit"
	}
	coord, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	out := make(chan serveOutcome, 1)
	go func() {
		res, err := coord.Serve(ln)
		out <- serveOutcome{res: res, err: err}
	}()
	t.Cleanup(coord.Close)
	return coord, ln.Addr().String(), out
}

type serveOutcome struct {
	res *core.Result
	err error
}

func runWorkers(ctx context.Context, t *testing.T, addr string, dirs []string) {
	t.Helper()
	for _, dir := range dirs {
		go func(dir string) {
			if err := cluster.RunWorker(ctx, cluster.WorkerConfig{Addr: addr, Dir: dir}); err != nil && ctx.Err() == nil {
				t.Errorf("worker %s: %v", filepath.Base(dir), err)
			}
		}(dir)
	}
}

func workerDirs(t *testing.T, n int) []string {
	t.Helper()
	base := t.TempDir()
	dirs := make([]string, n)
	for i := range dirs {
		dirs[i] = filepath.Join(base, fmt.Sprintf("w%d", i))
	}
	return dirs
}

func waitResult(t *testing.T, out chan serveOutcome, timeout time.Duration) *core.Result {
	t.Helper()
	select {
	case o := <-out:
		if o.err != nil {
			t.Fatalf("cluster run failed: %v", o.err)
		}
		return o.res
	case <-time.After(timeout):
		t.Fatal("cluster run timed out")
		return nil
	}
}

// directRun executes the same computation in one process over a loopback
// TCP transport with the same worker count — the configuration whose
// delivery order the cluster mirrors bit for bit.
func directRun(t *testing.T, g *tgraph.Graph, algo string, p algorithms.Params) *core.Result {
	t.Helper()
	prog, opts, err := algorithms.New(g, algo, p)
	if err != nil {
		t.Fatal(err)
	}
	opts.NumWorkers = testWorkers
	tp, err := engine.NewTCPTransport(testWorkers)
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	opts.Transport = tp
	res, err := core.Run(g, prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func compareResults(t *testing.T, g *tgraph.Graph, got, want *core.Result) {
	t.Helper()
	for i := 0; i < g.NumVertices(); i++ {
		gs, ws := got.State(i), want.State(i)
		if (gs == nil) != (ws == nil) {
			t.Fatalf("vertex %d: state presence mismatch", i)
		}
		if gs == nil {
			continue
		}
		if !reflect.DeepEqual(gs.Parts(), ws.Parts()) {
			t.Errorf("vertex %d (%v):\n  cluster: %v\n  direct:  %v",
				i, g.VertexAt(i).ID, gs.Parts(), ws.Parts())
		}
	}
}

func TestClusterMatchesTransportedRun(t *testing.T) {
	g := tgraph.TransitExample()
	for _, tc := range []struct {
		algo string
		p    algorithms.Params
	}{
		{algo: "sssp", p: algorithms.Params{Source: 0}},
		{algo: "eat", p: algorithms.Params{Source: 0}},
		{algo: "pr"},
	} {
		t.Run(tc.algo, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			coord, addr, out := startCluster(t, cluster.Config{Algo: tc.algo, Params: tc.p})
			runWorkers(ctx, t, addr, workerDirs(t, testWorkers))
			got := waitResult(t, out, 30*time.Second)
			compareResults(t, g, got, directRun(t, g, tc.algo, tc.p))
			rep := coord.Report()
			if rep.Supersteps == 0 || rep.Checkpoints == 0 {
				t.Errorf("report missing progress: %+v", rep)
			}
			if len(rep.Recoveries) != 0 {
				t.Errorf("fault-free run recorded recoveries: %+v", rep.Recoveries)
			}
			if got.Metrics == nil || got.Metrics.Supersteps != rep.Supersteps {
				t.Errorf("result metrics not aggregated: %+v", got.Metrics)
			}
		})
	}
}

// TestClusterLeaseRecovery wedges one worker mid-run (it stops heartbeating
// and processing), which must trip the coordinator's lease, roll survivors
// back to the committed generation, admit a replacement worker on the same
// checkpoint directory, and still produce the fault-free answer.
func TestClusterLeaseRecovery(t *testing.T) {
	g := tgraph.TransitExample()
	p := algorithms.Params{Source: 0}
	rec := &obs.Recorder{}
	reg := obs.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	coord, addr, out := startCluster(t, cluster.Config{
		Algo: "sssp", Params: p,
		Lease:         300 * time.Millisecond,
		RejoinTimeout: 20 * time.Second,
		Tracer:        rec,
		Registry:      reg,
		Span:          "lease-test-span",
	})
	dirs := workerDirs(t, testWorkers)
	runWorkers(ctx, t, addr, dirs[:2])
	// The third worker wedges when told to execute superstep 3.
	go func() {
		err := cluster.RunWorker(ctx, cluster.WorkerConfig{
			Addr: addr, Dir: dirs[2], HangAtSuperstep: 3,
		})
		if err == nil {
			t.Error("hung worker finished cleanly; hang hook did not fire")
		}
	}()
	// Start the replacement on the SAME directory once recovery begins.
	go func() {
		for ctx.Err() == nil {
			if coord.Stats().State == "recovering" {
				if err := cluster.RunWorker(ctx, cluster.WorkerConfig{Addr: addr, Dir: dirs[2]}); err != nil && ctx.Err() == nil {
					t.Errorf("replacement worker: %v", err)
				}
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()
	got := waitResult(t, out, 60*time.Second)
	compareResults(t, g, got, directRun(t, g, "sssp", p))
	rep := coord.Report()
	if len(rep.Recoveries) != 1 {
		t.Fatalf("want exactly one recovery, got %+v", rep.Recoveries)
	}
	r := rep.Recoveries[0]
	if r.Failed != 3 || r.Gen != 1 || r.ResumeAt != 3 {
		t.Errorf("recovery shape: %+v (want failed=3 gen=1 resume_at=3)", r)
	}
	if r.MTTR <= 0 || r.Detect <= 0 || r.RestoredBytes <= 0 {
		t.Errorf("recovery timings not recorded: %+v", r)
	}
	if rec.Count("worker_lost") != 1 || rec.Count("cluster_recovery") != 1 {
		t.Errorf("trace events: lost=%d recovery=%d", rec.Count("worker_lost"), rec.Count("cluster_recovery"))
	}
	// The replacement joined with rejoin=true.
	joins := 0
	for _, e := range rec.Events() {
		if j, ok := e.(obs.WorkerJoin); ok && j.Rejoin {
			joins++
		}
	}
	if joins != 1 {
		t.Errorf("want one rejoin join event, got %d", joins)
	}
	// Span propagation: the configured span survives into the coordinator
	// and onto every span-carrying trace event.
	if coord.Span() != "lease-test-span" {
		t.Errorf("coordinator span = %q, want the configured one", coord.Span())
	}
	for _, e := range rec.Events() {
		switch ev := e.(type) {
		case obs.RunStart:
			if ev.Span != "lease-test-span" {
				t.Errorf("run_start span = %q", ev.Span)
			}
		case obs.ClusterStep:
			if ev.Span != "lease-test-span" {
				t.Errorf("cluster_step %d span = %q", ev.Superstep, ev.Span)
			}
		}
	}
	// Straggler attribution: one row per executed superstep (replays
	// included), each with a timing per shard.
	attr := coord.Attribution()
	if len(attr) != rep.Supersteps {
		t.Errorf("attribution rows = %d, executed supersteps = %d", len(attr), rep.Supersteps)
	}
	for _, a := range attr {
		if len(a.Shards) != testWorkers {
			t.Errorf("superstep %d attribution has %d shard timings, want %d", a.Superstep, len(a.Shards), testWorkers)
		}
		if a.WallNS <= 0 || a.SkewMilli < 1000 {
			t.Errorf("superstep %d attribution not measured: %+v", a.Superstep, a)
		}
	}
	// Fleet health gauges settle healthy after the recovery: every worker
	// reported at the final barrier, so no heartbeats are missed and the
	// quietest lease is strictly positive.
	lease := 300 * time.Millisecond
	remaining := reg.Gauge(obs.GClusterLeaseRemainingMS).Load()
	if remaining <= 0 || remaining > lease.Milliseconds() {
		t.Errorf("lease_remaining_ms = %d, want (0, %d]", remaining, lease.Milliseconds())
	}
	if missed := reg.Gauge(obs.GClusterMissedHeartbeats).Load(); missed != 0 {
		t.Errorf("missed_heartbeats = %d after a healthy finish, want 0", missed)
	}
	if err := coord.Ready(); err != nil {
		t.Errorf("finished cluster not ready: %v", err)
	}
}

// TestClusterConfigGating pins coordinator-side validation.
func TestClusterConfigGating(t *testing.T) {
	if _, err := cluster.New(cluster.Config{Workers: 0, Graph: "transit", Algo: "sssp"}); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := cluster.New(cluster.Config{Workers: 2, Graph: "nope", Algo: "sssp"}); err == nil {
		t.Error("unknown graph spec accepted")
	}
	if _, err := cluster.New(cluster.Config{Workers: 2, Graph: "transit", Algo: "scc"}); err == nil {
		t.Error("aggregator algorithm accepted for cluster execution")
	}
	if _, err := cluster.ParseCrashPlan("explode:1"); err == nil {
		t.Error("bad crash phase accepted")
	}
	if pl, err := cluster.ParseCrashPlan("compute:3"); err != nil || pl.Phase != "compute" || pl.Superstep != 3 {
		t.Errorf("crash plan parse: %+v %v", pl, err)
	}
}

// TestLeaseHealthTransitions pins the fleet-health gauge function across
// the states a fleet moves through: everyone on schedule, one worker a
// heartbeat behind, a worker about to lose its lease, and one past it.
// Heartbeats renew every lease/4, so with a 400ms lease a beat is 100ms.
func TestLeaseHealthTransitions(t *testing.T) {
	lease := 400 * time.Millisecond
	for _, tc := range []struct {
		name     string
		silences []time.Duration
		wantRem  int64 // milliseconds
		wantMiss int64
	}{
		{"empty fleet", nil, 400, 0},
		{"all on schedule", []time.Duration{10 * time.Millisecond, 40 * time.Millisecond}, 360, 0},
		{"one beat behind", []time.Duration{120 * time.Millisecond, 10 * time.Millisecond}, 280, 1},
		{"nearly expired", []time.Duration{390 * time.Millisecond, 5 * time.Millisecond}, 10, 3},
		{"expired", []time.Duration{450 * time.Millisecond}, 0, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rem, miss := cluster.LeaseHealth(tc.silences, lease)
			if rem != tc.wantRem || miss != tc.wantMiss {
				t.Errorf("LeaseHealth(%v) = (%d, %d), want (%d, %d)",
					tc.silences, rem, miss, tc.wantRem, tc.wantMiss)
			}
		})
	}
}

// TestLoadGraphAllFormats pins the graph-spec contract: every on-disk
// format resolves to the identical graph (the partition maps depend on
// it), a snapshot-backed cluster run matches the fixture-backed run, and
// unknown specs fail loudly.
func TestLoadGraphAllFormats(t *testing.T) {
	want := tgraph.TransitExample()
	dir := t.TempDir()
	text := filepath.Join(dir, "g.tg")
	if err := tgraph.WriteFile(text, want); err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "g.tgb")
	if err := tgraph.WriteBinaryFile(bin, want); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(dir, "g.gsn")
	if err := tgraph.WriteSnapshotFile(snap, want); err != nil {
		t.Fatal(err)
	}
	for _, spec := range []string{"transit", "file:" + text, "file:" + bin, "file:" + snap} {
		m, err := cluster.LoadGraph(spec)
		if err != nil {
			t.Fatalf("LoadGraph(%q): %v", spec, err)
		}
		if err := tgraph.Equal(m.Graph, want); err != nil {
			t.Fatalf("LoadGraph(%q) diverges: %v", spec, err)
		}
		m.Close()
	}
	if _, err := cluster.LoadGraph("nope"); err == nil {
		t.Fatal("unknown spec accepted")
	}

	// A full cluster run over the mapped snapshot must match the
	// fixture-backed direct run bit for bit.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := algorithms.Params{Source: 0}
	_, addr, out := startCluster(t, cluster.Config{Graph: "file:" + snap, Algo: "eat", Params: p})
	runWorkers(ctx, t, addr, workerDirs(t, testWorkers))
	got := waitResult(t, out, 30*time.Second)
	compareResults(t, want, got, directRun(t, want, "eat", p))
}
