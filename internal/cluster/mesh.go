package cluster

// The worker-to-worker data mesh. Each worker listens on an ephemeral TCP
// port, advertises the address in its hello, and — once the coordinator
// broadcasts the full address table — dials every peer, forming a complete
// directed mesh of framed CRC'd connections. fData batches then travel one
// hop instead of two, and the coordinator's relay carries nothing.
//
// Determinism does not depend on mesh arrival order: every batch carries
// the (epoch, superstep, src) routing header, receivers collect all N-1
// batches before delivering, and delivery replays the engine's historical
// order (own outbox, then ascending source shard). The only mesh-specific
// hazard is a batch arriving before the coordinator's fStep for its
// superstep — two independent TCP streams have no mutual ordering — which
// the worker absorbs by parking early batches in a pending buffer keyed by
// (superstep, src) and draining it when the step opens.
//
// Inbound frames flow through per-connection reader goroutines into one
// buffered channel consumed by the worker's main loop, keeping the worker
// a single-threaded state machine. The channel is sized for the protocol's
// bound of one outstanding batch per peer per superstep (peers can run at
// most one superstep ahead of the slowest worker, because the coordinator
// gates each superstep on every barrier report), so readers never block
// and a send-side stall cannot deadlock the fleet.

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"graphite/internal/engine"
)

// mesh is one worker's endpoint in the peer data plane. The listener and
// inbound connections are owned by background goroutines; the outbound
// connection table is touched only by the worker's main loop.
type mesh struct {
	self  int // shard, set at assignment (listener starts before it is known)
	ln    net.Listener
	in    chan []byte // inbound fData payloads (header + batch)
	log   *slog.Logger
	outs  []net.Conn // shard -> outbound conn; nil for self or unconnected
	wmu   sync.Mutex // serializes closeConns against accept-side bookkeeping
	conns map[net.Conn]struct{}
	done  chan struct{}
}

// newMesh opens the listener and starts accepting. addr is the listen
// address ("127.0.0.1:0" for an ephemeral loopback port); the advertised
// address is ln.Addr().
func newMesh(addr string, log *slog.Logger) (*mesh, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: mesh listen %s: %w", addr, err)
	}
	m := &mesh{
		self:  -1,
		ln:    ln,
		in:    make(chan []byte, 64),
		log:   log,
		conns: map[net.Conn]struct{}{},
		done:  make(chan struct{}),
	}
	go m.accept()
	return m, nil
}

func (m *mesh) addr() string { return m.ln.Addr().String() }

// accept admits peer connections for the mesh's lifetime. Each connection
// must open with fMeshHello; everything after is fData payloads forwarded
// to the worker loop. A read error just ends that connection — peers
// re-dial on every epoch, and batch integrity is the CRC framing's job.
func (m *mesh) accept() {
	for {
		c, err := m.ln.Accept()
		if err != nil {
			return // listener closed
		}
		m.wmu.Lock()
		select {
		case <-m.done:
			m.wmu.Unlock()
			c.Close()
			return
		default:
		}
		m.conns[c] = struct{}{}
		m.wmu.Unlock()
		go m.serveConn(c)
	}
}

func (m *mesh) serveConn(c net.Conn) {
	defer func() {
		m.wmu.Lock()
		delete(m.conns, c)
		m.wmu.Unlock()
		c.Close()
	}()
	ftype, payload, err := readConnFrame(c)
	if err != nil || ftype != fMeshHello {
		return
	}
	var hello meshHelloMsg
	if err := parseJSON(payload, &hello); err != nil {
		return
	}
	for {
		ftype, payload, err := readConnFrame(c)
		if err != nil {
			return
		}
		if ftype != fData {
			m.log.Warn("mesh: unexpected frame from peer", "peer", hello.Shard, "type", ftype)
			return
		}
		select {
		case m.in <- payload:
		case <-m.done:
			return
		}
	}
}

// dialPeers (re)builds the outbound half of the mesh for an epoch: closes
// any previous connections and dials every other shard with jittered
// exponential backoff. Called synchronously from the worker's main loop on
// every fPeers — a recovery bumps the epoch and re-broadcasts the table
// with the replacement's fresh address, so redialing from scratch is both
// the simple and the correct behavior.
func (m *mesh) dialPeers(ctx context.Context, epoch int, addrs []string, attempts int, backoff time.Duration) error {
	m.closeOuts()
	m.outs = make([]net.Conn, len(addrs))
	hello, err := json.Marshal(meshHelloMsg{Shard: m.self, Epoch: epoch})
	if err != nil {
		return err
	}
	var d net.Dialer
	for shard, addr := range addrs {
		if shard == m.self {
			continue
		}
		var conn net.Conn
		var last error
		for a := 0; a < attempts; a++ {
			if a > 0 {
				select {
				case <-time.After(engine.RetryDelay(backoff, a-1, time.Second)):
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			conn, last = d.DialContext(ctx, "tcp", addr)
			if last == nil {
				break
			}
		}
		if last != nil {
			m.closeOuts()
			return fmt.Errorf("cluster: mesh dial shard %d at %s: %w", shard, addr, last)
		}
		if err := writeConnFrame(conn, fMeshHello, hello); err != nil {
			conn.Close()
			m.closeOuts()
			return fmt.Errorf("cluster: mesh hello to shard %d: %w", shard, err)
		}
		m.outs[shard] = conn
	}
	return nil
}

// send ships one fData payload directly to dst. On failure the connection
// is dropped (the peer is dead or the mesh is torn); the caller falls back
// to the coordinator relay for this batch and the next epoch re-dials.
func (m *mesh) send(dst int, payload []byte) error {
	if dst < 0 || dst >= len(m.outs) || m.outs[dst] == nil {
		return fmt.Errorf("cluster: no mesh connection to shard %d", dst)
	}
	c := m.outs[dst]
	c.SetWriteDeadline(time.Now().Add(meshWriteDeadline))
	if err := writeConnFrame(c, fData, payload); err != nil {
		c.Close()
		m.outs[dst] = nil
		return fmt.Errorf("cluster: mesh send to shard %d: %w", dst, err)
	}
	c.SetWriteDeadline(time.Time{})
	return nil
}

// meshWriteDeadline bounds one peer batch write. Receivers drain
// continuously, so a stall this long means the peer is gone; the batch
// falls back to the relay and the lease machinery handles the corpse.
const meshWriteDeadline = 10 * time.Second

func (m *mesh) closeOuts() {
	for i, c := range m.outs {
		if c != nil {
			c.Close()
			m.outs[i] = nil
		}
	}
}

// close tears the whole endpoint down: listener, inbound, outbound.
func (m *mesh) close() {
	if m == nil {
		return
	}
	m.wmu.Lock()
	select {
	case <-m.done:
	default:
		close(m.done)
	}
	for c := range m.conns {
		c.Close()
	}
	m.wmu.Unlock()
	m.ln.Close()
	m.closeOuts()
}
