// Package gen generates synthetic temporal property graphs shaped like the
// six real-world datasets of Table 1 in the ICM paper, plus the LDBC-like
// graphs used for weak scaling. Absolute sizes are scaled down to laptop
// scale; the knobs that drive ICM's relative performance are preserved:
// snapshot count, entity lifespan distributions (unit / mixed / long /
// full-lifetime), degree distribution (power-law vs. planar road grid),
// diameter, and property-change rate.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// Topology selects the structural generator.
type Topology int

// Topologies.
const (
	// Powerlaw wires edges with Zipf-distributed endpoints (social/web).
	Powerlaw Topology = iota
	// Grid wires a 2D lattice with bidirectional road segments (USRN).
	Grid
)

// LifespanDist selects the edge lifespan distribution.
type LifespanDist int

// Lifespan distributions.
const (
	// UnitLife gives every edge a one-snapshot lifespan (GPlus).
	UnitLife LifespanDist = iota
	// FullLife spans every edge over the whole graph lifetime (USRN).
	FullLife
	// LongLife draws lifespans around most of the graph lifetime
	// (Twitter, MAG).
	LongLife
	// MixedLife makes most edges unit-length with a long-lived minority
	// (Reddit, WebUK).
	MixedLife
)

// Profile parameterizes a synthetic temporal graph.
type Profile struct {
	Name      string
	Vertices  int
	AvgDegree int
	Snapshots int
	Topology  Topology
	EdgeLife  LifespanDist
	// LongFrac is the long-lived fraction for MixedLife.
	LongFrac float64
	// VertexChurn makes vertex lifespans start and end inside the window
	// instead of spanning it (Reddit, MAG grow over time).
	VertexChurn bool
	// WithTravelProps attaches travel-time and travel-cost properties to
	// every edge, re-drawn over PropSegments sub-intervals of its lifespan.
	WithTravelProps bool
	// PropSegments is the number of property values per edge lifespan
	// (>=1); more segments = shorter property lifespans (USRN traffic).
	PropSegments int
	// Zipf skew for Powerlaw endpoint selection; 1.2 is a mild power law.
	Skew float64
}

// Generate builds a temporal graph from the profile, deterministically for
// a given seed.
func Generate(p Profile, seed int64) (*tgraph.Graph, error) {
	if p.Vertices <= 1 || p.Snapshots < 1 || p.AvgDegree < 1 {
		return nil, fmt.Errorf("gen: profile %q has degenerate dimensions", p.Name)
	}
	if p.PropSegments < 1 {
		p.PropSegments = 1
	}
	if p.Skew <= 1.0 {
		p.Skew = 1.2
	}
	r := rand.New(rand.NewSource(seed))
	b := tgraph.NewBuilder(p.Vertices, p.Vertices*p.AvgDegree)

	window := ival.New(0, ival.Time(p.Snapshots))
	lifespans := make([]ival.Interval, p.Vertices)
	for v := 0; v < p.Vertices; v++ {
		life := window
		if p.VertexChurn && p.Snapshots >= 4 {
			s := ival.Time(r.Intn(p.Snapshots / 2))
			e := s + ival.Time(p.Snapshots/2+r.Intn(p.Snapshots/2)) + 1
			if e > window.End {
				e = window.End
			}
			life = ival.New(s, e)
		}
		lifespans[v] = life
		b.AddVertex(tgraph.VertexID(v), life)
	}

	var eid tgraph.EdgeID
	addEdge := func(u, v int) {
		if u == v {
			return
		}
		shared := lifespans[u].Intersect(lifespans[v])
		if shared.IsEmpty() {
			return
		}
		life := edgeLife(r, p, shared)
		if life.IsEmpty() {
			return
		}
		b.AddEdge(eid, tgraph.VertexID(u), tgraph.VertexID(v), life)
		if p.WithTravelProps {
			attachTravelProps(r, b, eid, life, p.PropSegments)
		}
		eid++
	}

	switch p.Topology {
	case Grid:
		side := int(math.Sqrt(float64(p.Vertices)))
		if side < 2 {
			side = 2
		}
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				v := y*side + x
				if x+1 < side {
					addEdge(v, v+1)
					addEdge(v+1, v)
				}
				if y+1 < side {
					addEdge(v, v+side)
					addEdge(v+side, v)
				}
			}
		}
	default: // Powerlaw
		z := rand.NewZipf(r, p.Skew, 1, uint64(p.Vertices-1))
		target := p.Vertices * p.AvgDegree
		for i := 0; i < target; i++ {
			u := int(z.Uint64())
			v := r.Intn(p.Vertices)
			addEdge(u, v)
		}
	}
	if err := b.Err(); err != nil {
		return nil, err
	}
	return b.Build()
}

// edgeLife draws an edge lifespan inside the shared window of its endpoints.
func edgeLife(r *rand.Rand, p Profile, shared ival.Interval) ival.Interval {
	span := int(shared.Length())
	if span <= 0 {
		return ival.Empty
	}
	unit := func() ival.Interval {
		return ival.Point(shared.Start + ival.Time(r.Intn(span)))
	}
	long := func() ival.Interval {
		// At least half the shared window, random slack on either side.
		minLen := (span + 1) / 2
		s := 0
		if span > minLen {
			s = r.Intn(span - minLen + 1)
		}
		maxLen := span - s
		l := minLen
		if maxLen > minLen {
			l += r.Intn(maxLen - minLen + 1)
		}
		return ival.New(shared.Start+ival.Time(s), shared.Start+ival.Time(s+l))
	}
	switch p.EdgeLife {
	case UnitLife:
		return unit()
	case FullLife:
		return shared
	case LongLife:
		return long()
	case MixedLife:
		if r.Float64() < p.LongFrac {
			return long()
		}
		return unit()
	}
	return shared
}

// attachTravelProps draws travel-time and travel-cost values over segments
// of the edge lifespan.
func attachTravelProps(r *rand.Rand, b *tgraph.Builder, id tgraph.EdgeID, life ival.Interval, segments int) {
	span := int(life.Length())
	if segments > span {
		segments = span
	}
	// Split the lifespan into `segments` contiguous pieces.
	cuts := []ival.Time{life.Start}
	for i := 1; i < segments; i++ {
		cuts = append(cuts, life.Start+ival.Time(i*span/segments))
	}
	cuts = append(cuts, life.End)
	for i := 0; i+1 < len(cuts); i++ {
		piece := ival.New(cuts[i], cuts[i+1])
		if piece.IsEmpty() {
			continue
		}
		b.SetEdgeProp(id, tgraph.PropTravelTime, piece, int64(1+r.Intn(3)))
		b.SetEdgeProp(id, tgraph.PropTravelCost, piece, int64(1+r.Intn(10)))
	}
}
