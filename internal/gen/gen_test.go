package gen

import (
	"testing"

	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

func TestAllProfilesGenerateValidGraphs(t *testing.T) {
	for _, p := range AllProfiles(0.1) {
		g, err := Generate(p, 1)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Errorf("%s: degenerate graph %v", p.Name, g)
		}
		if g.SnapshotCount() > p.Snapshots {
			t.Errorf("%s: %d snapshots exceed profile %d", p.Name, g.SnapshotCount(), p.Snapshots)
		}
		// Every TD profile must carry travel properties on every edge.
		if p.WithTravelProps {
			for i := 0; i < g.NumEdges(); i++ {
				e := g.Edge(i)
				if _, ok := e.Props.ValueAt(tgraph.PropTravelTime, e.Lifespan.Start); !ok {
					t.Fatalf("%s: edge %d lacks travel-time", p.Name, e.ID)
				}
				if _, ok := e.Props.ValueAt(tgraph.PropTravelCost, e.Lifespan.End-1); !ok {
					t.Fatalf("%s: edge %d lacks travel-cost at lifespan end", p.Name, e.ID)
				}
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := RedditLike(0.1)
	g1, err1 := Generate(p, 9)
	g2, err2 := Generate(p, 9)
	if err1 != nil || err2 != nil {
		t.Fatalf("generate: %v %v", err1, err2)
	}
	if g1.NumVertices() != g2.NumVertices() || g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("same seed must give same sizes")
	}
	for i := 0; i < g1.NumEdges(); i++ {
		e1, e2 := g1.Edge(i), g2.Edge(i)
		if e1.Src != e2.Src || e1.Dst != e2.Dst || e1.Lifespan != e2.Lifespan {
			t.Fatalf("edge %d differs across identical seeds", i)
		}
	}
	g3, err := Generate(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	same := g1.NumEdges() == g3.NumEdges()
	if same {
		diff := false
		for i := 0; i < g1.NumEdges(); i++ {
			if g1.Edge(i).Lifespan != g3.Edge(i).Lifespan || g1.Edge(i).Dst != g3.Edge(i).Dst {
				diff = true
				break
			}
		}
		if !diff {
			t.Errorf("different seeds produced identical graphs")
		}
	}
}

func TestLifespanDistributions(t *testing.T) {
	check := func(name string, p Profile, test func(c tgraph.Characteristics) bool) {
		g, err := Generate(p, 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c := g.ComputeCharacteristics(); !test(c) {
			t.Errorf("%s: characteristics off: %+v", name, c)
		}
	}
	check("unit", Tiny("u", 60, 4, 8, UnitLife), func(c tgraph.Characteristics) bool {
		return c.AvgEdgeLife == 1
	})
	check("full", Tiny("f", 60, 4, 8, FullLife), func(c tgraph.Characteristics) bool {
		return c.AvgEdgeLife == 8
	})
	check("long", Tiny("l", 60, 4, 8, LongLife), func(c tgraph.Characteristics) bool {
		return c.AvgEdgeLife >= 4
	})
	check("mixed", Tiny("m", 80, 5, 10, MixedLife), func(c tgraph.Characteristics) bool {
		return c.AvgEdgeLife > 1 && c.AvgEdgeLife < 8
	})
}

func TestVertexChurn(t *testing.T) {
	p := Tiny("churn", 60, 4, 16, LongLife)
	p.VertexChurn = true
	g, err := Generate(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	churned := 0
	for i := 0; i < g.NumVertices(); i++ {
		if g.VertexAt(i).Lifespan != ival.New(0, 16) {
			churned++
		}
	}
	if churned == 0 {
		t.Errorf("churn profile produced only perpetual vertices")
	}
}

func TestGridTopologyIsPlanarish(t *testing.T) {
	g, err := Generate(USRNLike(0.1), 3)
	if err != nil {
		t.Fatal(err)
	}
	// Grid: max out-degree 4 (two lattice neighbors each way).
	for v := 0; v < g.NumVertices(); v++ {
		if d := len(g.OutEdges(v)); d > 4 {
			t.Fatalf("grid vertex %d has out-degree %d", v, d)
		}
	}
}

func TestGenerateRejectsDegenerateProfiles(t *testing.T) {
	for _, p := range []Profile{
		{Name: "novertices", Vertices: 1, AvgDegree: 2, Snapshots: 4},
		{Name: "nosnaps", Vertices: 10, AvgDegree: 2, Snapshots: 0},
		{Name: "nodegree", Vertices: 10, AvgDegree: 0, Snapshots: 4},
	} {
		if _, err := Generate(p, 1); err == nil {
			t.Errorf("%s: want error", p.Name)
		}
	}
}

func TestLDBCScalesWithMachines(t *testing.T) {
	g1, err := Generate(LDBCLike(1, 0.1), 4)
	if err != nil {
		t.Fatal(err)
	}
	g4, err := Generate(LDBCLike(4, 0.1), 4)
	if err != nil {
		t.Fatal(err)
	}
	if g4.NumVertices() < 3*g1.NumVertices() {
		t.Errorf("ldbc-4m should be ~4x ldbc-1m: %d vs %d", g4.NumVertices(), g1.NumVertices())
	}
}
