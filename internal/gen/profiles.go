package gen

import "fmt"

// Scale multiplies the default profile sizes; 1.0 targets quick test runs,
// larger values approach benchmark scale. The paper's datasets are many
// orders of magnitude larger; DESIGN.md records the substitution.
type Scale float64

func scaled(n int, s Scale) int {
	v := int(float64(n) * float64(s))
	if v < 8 {
		v = 8
	}
	return v
}

// GPlusLike mirrors GPlus: few snapshots, unit-length edge lifespans, power
// law. The worst case for ICM: nothing to share across time.
func GPlusLike(s Scale) Profile {
	return Profile{
		Name: "gplus", Vertices: scaled(1700, s), AvgDegree: 13,
		Snapshots: 4, Topology: Powerlaw, EdgeLife: UnitLife,
		WithTravelProps: true, PropSegments: 1,
	}
}

// RedditLike mirrors Reddit: many snapshots, 96% unit-length edges with a
// long-lived minority, mild churn.
func RedditLike(s Scale) Profile {
	return Profile{
		Name: "reddit", Vertices: scaled(1200, s), AvgDegree: 18,
		Snapshots: 32, Topology: Powerlaw, EdgeLife: MixedLife, LongFrac: 0.04,
		VertexChurn: true, WithTravelProps: true, PropSegments: 2,
	}
}

// USRNLike mirrors the US road network: static planar topology spanning the
// whole lifetime, huge diameter, frequently changing edge properties.
func USRNLike(s Scale) Profile {
	return Profile{
		Name: "usrn", Vertices: scaled(1600, s), AvgDegree: 4,
		Snapshots: 48, Topology: Grid, EdgeLife: FullLife,
		WithTravelProps: true, PropSegments: 10,
	}
}

// MAGLike mirrors the Microsoft Academic Graph: long lifetime, long entity
// lifespans, churn as publications accumulate.
func MAGLike(s Scale) Profile {
	return Profile{
		Name: "mag", Vertices: scaled(2300, s), AvgDegree: 9,
		Snapshots: 64, Topology: Powerlaw, EdgeLife: LongLife,
		VertexChurn: true, WithTravelProps: true, PropSegments: 3,
	}
}

// TwitterLike mirrors Twitter: edge lifespans spanning almost the whole
// graph lifetime — the best case for ICM's compute and message sharing.
func TwitterLike(s Scale) Profile {
	return Profile{
		Name: "twitter", Vertices: scaled(2200, s), AvgDegree: 24,
		Snapshots: 30, Topology: Powerlaw, EdgeLife: LongLife,
		WithTravelProps: true, PropSegments: 2,
	}
}

// WebUKLike mirrors WebUK: few snapshots, mixed lifespans, high degree.
func WebUKLike(s Scale) Profile {
	return Profile{
		Name: "webuk", Vertices: scaled(2600, s), AvgDegree: 30,
		Snapshots: 12, Topology: Powerlaw, EdgeLife: MixedLife, LongFrac: 0.45,
		WithTravelProps: true, PropSegments: 2,
	}
}

// AllProfiles returns the six dataset profiles of Table 1 at the given
// scale, in the paper's order.
func AllProfiles(s Scale) []Profile {
	return []Profile{
		GPlusLike(s), RedditLike(s), USRNLike(s),
		TwitterLike(s), MAGLike(s), WebUKLike(s),
	}
}

// LDBCLike mirrors the weak-scaling generator: a power-law ("Facebook
// degree distribution") graph whose size grows with the machine count m,
// perturbed over 128 time-points.
func LDBCLike(machines int, s Scale) Profile {
	return Profile{
		Name:     fmt.Sprintf("ldbc-%dm", machines),
		Vertices: scaled(1000, s) * machines, AvgDegree: 10,
		Snapshots: 16, Topology: Powerlaw, EdgeLife: MixedLife, LongFrac: 0.5,
		WithTravelProps: true, PropSegments: 2,
	}
}

// SkewedLike is the scheduler-stress profile behind the skew bench: a
// heavy-tailed power law whose hub mass is spread over many low-index
// vertices (Zipf 1.15 ~ a degree exponent near 1.9). That makes the skew
// *fixable* — a partitioner or scheduler can split the hubs — unlike a
// steeper Zipf where one mega-vertex is an indivisible straggler no
// scheduler can balance below. Mixed lifespans keep the active frontier
// shifting over time, which is what distinguishes a dynamic scheduler from
// a static repartition.
func SkewedLike(s Scale) Profile {
	return Profile{
		Name: "skewed", Vertices: scaled(2000, s), AvgDegree: 16,
		Snapshots: 24, Topology: Powerlaw, EdgeLife: MixedLife, LongFrac: 0.35,
		WithTravelProps: true, PropSegments: 2, Skew: 1.15,
	}
}

// Tiny returns a small random profile for property tests and oracles.
func Tiny(name string, vertices, degree, snapshots int, life LifespanDist) Profile {
	return Profile{
		Name: name, Vertices: vertices, AvgDegree: degree,
		Snapshots: snapshots, Topology: Powerlaw, EdgeLife: life, LongFrac: 0.3,
		WithTravelProps: true, PropSegments: 2,
	}
}
