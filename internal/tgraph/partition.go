package tgraph

// Per-shard graph partitions: an induced subgraph per worker so a cluster
// worker maps O(V + E/N) bytes instead of the whole graph. A partition keeps
// the FULL vertex set in the original dense order — vertex indices are the
// cluster's global message addresses and the partitioner's domain, so they
// must agree bit-for-bit across every process — but only the edges incident
// to the shard's owned vertices. Owned vertices therefore see their complete
// out- and in-adjacency (scatter and gather are exact), and boundary
// vertices (owned elsewhere, an endpoint here) resolve as scatter targets.
//
// Partition identity travels in the snapshot's extra section as a
// PartitionMeta: which shard this file is, how many shards the cut has, and
// the full vertex→shard assignment so every process reconstructs the exact
// same partitioner without recomputing work weights from a partial graph.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
)

// Partition file layout inside a directory produced by WritePartitionFile
// callers (cluster.WritePartitions, graphite-partition): the untrimmed
// graph plus one induced subgraph per shard.
const PartitionFullName = "full.gsn"

// PartitionFileName returns the file name of one shard's partition.
func PartitionFileName(shard int) string { return fmt.Sprintf("part-%03d.gsn", shard) }

var (
	// ErrPartitionMeta reports a malformed or missing partition meta
	// section (truncated, bad magic, inconsistent counts).
	ErrPartitionMeta = errors.New("tgraph: malformed partition meta")
	// ErrPartitionMismatch reports a structurally valid partition that does
	// not match the request (wrong shard, wrong shard count, wrong graph).
	ErrPartitionMismatch = errors.New("tgraph: partition mismatch")
)

// partitionMagic guards the extra section: a plain .gsn snapshot (nil
// extra, or an extra written by another subsystem) is cleanly rejected.
const partitionMagic = "GPART1\n"

// PartitionMeta identifies one partition file of a sharded graph cut.
type PartitionMeta struct {
	Shard    int     // this file's shard, or -1 for the full-graph copy
	Shards   int     // number of shards in the cut
	Vertices int     // full-graph |V| (partitions keep every vertex)
	Edges    int     // full-graph |E| before trimming
	Assign   []int32 // vertex index -> owning shard, len == Vertices
}

// Owned returns how many vertices the cut assigns to shard.
func (m *PartitionMeta) Owned(shard int) int {
	n := 0
	for _, s := range m.Assign {
		if int(s) == shard {
			n++
		}
	}
	return n
}

// Partitioner adapts the stored assignment to the engine's partitioner
// signature. Out-of-range vertices fall back to the modulo rule, matching
// engine.PartitionBalanced.
func (m *PartitionMeta) Partitioner() func(vertex, numWorkers int) int {
	assign := m.Assign
	return func(v, n int) int {
		if v < 0 || v >= len(assign) {
			return ((v % n) + n) % n
		}
		return int(assign[v])
	}
}

// EncodePartitionMeta serializes meta for a snapshot's extra section.
func EncodePartitionMeta(m *PartitionMeta) []byte {
	buf := make([]byte, 0, len(partitionMagic)+5*binary.MaxVarintLen64+len(m.Assign))
	buf = append(buf, partitionMagic...)
	buf = binary.AppendVarint(buf, int64(m.Shard))
	buf = binary.AppendUvarint(buf, uint64(m.Shards))
	buf = binary.AppendUvarint(buf, uint64(m.Vertices))
	buf = binary.AppendUvarint(buf, uint64(m.Edges))
	for _, s := range m.Assign {
		buf = binary.AppendUvarint(buf, uint64(s))
	}
	return buf
}

// DecodePartitionMeta parses a partition meta blob (a Mapped.Extra). The
// snapshot layer has already CRC-checked the bytes; this validates the
// structure: magic, bounds, and a complete in-range assignment.
func DecodePartitionMeta(extra []byte) (*PartitionMeta, error) {
	if len(extra) < len(partitionMagic) || string(extra[:len(partitionMagic)]) != partitionMagic {
		return nil, fmt.Errorf("%w: missing %q header", ErrPartitionMeta, partitionMagic[:len(partitionMagic)-1])
	}
	b := extra[len(partitionMagic):]
	next := func() (uint64, error) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, fmt.Errorf("%w: truncated varint", ErrPartitionMeta)
		}
		b = b[n:]
		return v, nil
	}
	shard, n := binary.Varint(b)
	if n <= 0 {
		return nil, fmt.Errorf("%w: truncated shard", ErrPartitionMeta)
	}
	b = b[n:]
	shards, err := next()
	if err != nil {
		return nil, err
	}
	verts, err := next()
	if err != nil {
		return nil, err
	}
	edges, err := next()
	if err != nil {
		return nil, err
	}
	m := &PartitionMeta{Shard: int(shard), Shards: int(shards), Vertices: int(verts), Edges: int(edges)}
	if m.Shards <= 0 || m.Shard < -1 || m.Shard >= m.Shards {
		return nil, fmt.Errorf("%w: shard %d of %d", ErrPartitionMeta, m.Shard, m.Shards)
	}
	if m.Vertices < 0 || m.Vertices > maxSaneCount || m.Edges < 0 || m.Edges > maxSaneCount {
		return nil, fmt.Errorf("%w: counts |V|=%d |E|=%d", ErrPartitionMeta, m.Vertices, m.Edges)
	}
	m.Assign = make([]int32, m.Vertices)
	for i := range m.Assign {
		s, err := next()
		if err != nil {
			return nil, fmt.Errorf("%w: assignment ends at vertex %d of %d", ErrPartitionMeta, i, m.Vertices)
		}
		if s >= uint64(m.Shards) {
			return nil, fmt.Errorf("%w: vertex %d assigned to shard %d of %d", ErrPartitionMeta, i, s, m.Shards)
		}
		m.Assign[i] = int32(s)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrPartitionMeta, len(b))
	}
	return m, nil
}

// maxSaneCount bounds decoded entity counts; the snapshot decoder enforces
// the same order of magnitude, this just keeps hostile metas from
// allocating unbounded assignment slices.
const maxSaneCount = 1 << 31

// ExtractPartition builds shard's induced subgraph of g under assign: every
// vertex (same dense order, same lifespans and properties), but only the
// edges with an endpoint owned by shard, in the original edge order so
// adjacency lists — and therefore scatter order and message order — are a
// subsequence of the full graph's. The partition inherits g's lifespan hull
// (vertex-derived, identical by construction) and its time horizon, which
// would otherwise shrink with the dropped edges and desynchronize
// horizon-dependent algorithms across workers.
func ExtractPartition(g *Graph, assign []int32, shard int) (*Graph, error) {
	if len(assign) != g.NumVertices() {
		return nil, fmt.Errorf("%w: assignment covers %d vertices, graph has %d",
			ErrPartitionMismatch, len(assign), g.NumVertices())
	}
	kept := 0
	for i := range g.edges {
		if int(assign[g.srcIdx[i]]) == shard || int(assign[g.dstIdx[i]]) == shard {
			kept++
		}
	}
	b := NewBuilder(g.NumVertices(), kept)
	for i := range g.vertices {
		v := &g.vertices[i]
		b.AddVertex(v.ID, v.Lifespan)
		// Props are immutable once built; aliasing the slices is safe and
		// EncodeSnapshot copies them into the file anyway.
		b.vertices[i].Props = v.Props
	}
	for i := range g.edges {
		if int(assign[g.srcIdx[i]]) != shard && int(assign[g.dstIdx[i]]) != shard {
			continue
		}
		e := &g.edges[i]
		b.AddEdge(e.ID, e.Src, e.Dst, e.Lifespan)
		b.edges[len(b.edges)-1].Props = e.Props
	}
	pg, err := b.Build()
	if err != nil {
		return nil, err
	}
	pg.horizon = g.horizon
	return pg, nil
}

// WritePartitionFile writes graph g as a .gsn snapshot whose extra section
// carries meta, via a temp file + rename so readers never see a torn file.
func WritePartitionFile(path string, g *Graph, meta *PartitionMeta) error {
	data := EncodeSnapshot(g, EncodePartitionMeta(meta))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// OpenPartition maps a partition file and decodes its meta. The graph
// aliases the mapping; close the returned Mapped when done.
func OpenPartition(path string) (*Mapped, *PartitionMeta, error) {
	m, err := OpenMapped(path)
	if err != nil {
		return nil, nil, err
	}
	meta, err := DecodePartitionMeta(m.Extra)
	if err != nil {
		m.Close()
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	if meta.Vertices != m.NumVertices() {
		m.Close()
		return nil, nil, fmt.Errorf("%s: %w: meta says |V|=%d, snapshot has %d",
			path, ErrPartitionMismatch, meta.Vertices, m.NumVertices())
	}
	return m, meta, nil
}
