package tgraph

import (
	ival "graphite/internal/interval"
)

// Snapshot is a read-only view of the graph at a single time-point, i.e. the
// static graph S_t that the multi-snapshot baselines operate on.
type Snapshot struct {
	G *Graph
	T ival.Time
}

// SnapshotAt returns the snapshot view of the graph at time-point t.
func (g *Graph) SnapshotAt(t ival.Time) Snapshot { return Snapshot{G: g, T: t} }

// VertexActive reports whether vertex index v exists at the snapshot's time.
func (s Snapshot) VertexActive(v int) bool {
	return s.G.vertices[v].Lifespan.Contains(s.T)
}

// EdgeActive reports whether edge index e exists at the snapshot's time.
func (s Snapshot) EdgeActive(e int) bool {
	return s.G.edges[e].Lifespan.Contains(s.T)
}

// NumActive returns the number of active vertices and edges in the snapshot.
func (s Snapshot) NumActive() (nv, ne int) {
	for i := range s.G.vertices {
		if s.VertexActive(i) {
			nv++
		}
	}
	for i := range s.G.edges {
		if s.EdgeActive(i) {
			ne++
		}
	}
	return nv, ne
}

// OutEdges calls fn for each active out-edge of vertex index v.
func (s Snapshot) OutEdges(v int, fn func(e *Edge)) {
	for _, ei := range s.G.out[v] {
		if e := &s.G.edges[ei]; e.Lifespan.Contains(s.T) {
			fn(e)
		}
	}
}

// OutEdgesIdx calls fn(edge, dense destination index) for each active
// out-edge of vertex index v, avoiding id lookups on hot paths.
func (s Snapshot) OutEdgesIdx(v int, fn func(e *Edge, dst int)) {
	for _, ei := range s.G.out[v] {
		if e := &s.G.edges[ei]; e.Lifespan.Contains(s.T) {
			fn(e, int(s.G.dstIdx[ei]))
		}
	}
}

// InEdges calls fn for each active in-edge of vertex index v.
func (s Snapshot) InEdges(v int, fn func(e *Edge)) {
	for _, ei := range s.G.in[v] {
		if e := &s.G.edges[ei]; e.Lifespan.Contains(s.T) {
			fn(e)
		}
	}
}

// InEdgesIdx calls fn(edge, dense source index) for each active in-edge of
// vertex index v.
func (s Snapshot) InEdgesIdx(v int, fn func(e *Edge, src int)) {
	for _, ei := range s.G.in[v] {
		if e := &s.G.edges[ei]; e.Lifespan.Contains(s.T) {
			fn(e, int(s.G.srcIdx[ei]))
		}
	}
}

// SnapshotCount returns the number of distinct snapshots of the graph: the
// length of the graph lifespan, with unbounded lifespans measured up to the
// largest finite boundary (an interval graph whose entities all extend to ∞
// still has a finite number of *distinct* snapshots).
func (g *Graph) SnapshotCount() int {
	h := g.Horizon()
	if h <= g.lifespan.Start {
		return 0
	}
	return int(h - g.lifespan.Start)
}

// Horizon returns the exclusive upper bound of "interesting" time: the
// largest finite interval boundary over all vertices, edges and properties,
// or lifespan.End when everything is bounded. Snapshots at or beyond the
// horizon are identical to the one just before it. The value is computed
// once at build time.
func (g *Graph) Horizon() ival.Time { return g.horizon }

// computeHorizon scans all entity and property boundaries.
func (g *Graph) computeHorizon() ival.Time {
	var h ival.Time
	bump := func(iv ival.Interval) {
		if iv.Start > h {
			h = iv.Start
		}
		if iv.End != ival.Infinity && iv.End > h {
			h = iv.End
		}
	}
	for i := range g.vertices {
		bump(g.vertices[i].Lifespan)
		for _, es := range g.vertices[i].Props.All() {
			for _, e := range es {
				bump(e.Interval)
			}
		}
	}
	for i := range g.edges {
		bump(g.edges[i].Lifespan)
		for _, es := range g.edges[i].Props.All() {
			for _, e := range es {
				bump(e.Interval)
			}
		}
	}
	if h == g.lifespan.Start { // degenerate: everything unbounded from start
		h = g.lifespan.Start + 1
	}
	return h
}

// clip bounds an interval to the graph's observable window [start, horizon)
// for per-snapshot accounting.
func (g *Graph) clip(iv ival.Interval) ival.Interval {
	return iv.Intersect(ival.New(g.lifespan.Start, g.Horizon()))
}
