package tgraph

import (
	"testing"

	ival "graphite/internal/interval"
)

func TestSliceClipsAndDrops(t *testing.T) {
	g := TransitExample()
	s, err := Slice(g, ival.New(0, 5))
	if err != nil {
		t.Fatalf("Slice: %v", err)
	}
	if s.NumVertices() != 6 {
		t.Fatalf("vertices = %d, want 6 (perpetual lifespans clip, not drop)", s.NumVertices())
	}
	// Edges fully outside [0,5) vanish: B→E [8,9) and C→E [5,6).
	if s.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4: %v", s.NumEdges(), s)
	}
	// The A→B edge clips to [3,5) and loses its second cost value.
	var ab *Edge
	for i := 0; i < s.NumEdges(); i++ {
		if s.Edge(i).ID == 0 {
			ab = s.Edge(i)
		}
	}
	if ab == nil || ab.Lifespan != ival.New(3, 5) {
		t.Fatalf("A→B clip wrong: %+v", ab)
	}
	if entries := ab.Props.Entries(PropTravelCost); len(entries) != 1 || entries[0].Value != 4 {
		t.Fatalf("A→B cost entries = %v", entries)
	}
	// Every vertex lifespan is inside the window.
	for i := 0; i < s.NumVertices(); i++ {
		if !ival.New(0, 5).ContainsInterval(s.VertexAt(i).Lifespan) {
			t.Fatalf("vertex %d outside window: %v", s.VertexAt(i).ID, s.VertexAt(i).Lifespan)
		}
	}
}

func TestSliceDropsIsolatedWindow(t *testing.T) {
	b := NewBuilder(2, 1)
	b.AddVertex(1, ival.New(0, 3))
	b.AddVertex(2, ival.New(5, 9))
	b.AddEdge(1, 1, 1, ival.New(0, 3))
	g := b.MustBuild()
	s, err := Slice(g, ival.New(4, 10))
	if err != nil {
		t.Fatalf("Slice: %v", err)
	}
	if s.NumVertices() != 1 || s.NumEdges() != 0 {
		t.Fatalf("slice = %v, want vertex 2 only", s)
	}
	if s.Vertex(2) == nil || s.Vertex(2).Lifespan != ival.New(5, 9) {
		t.Fatalf("vertex 2 wrong: %+v", s.Vertex(2))
	}
}

func TestVertexHistory(t *testing.T) {
	g := TransitExample()
	h := g.VertexHistory(0) // A: out-edges to B [3,6), C [1,2), D [4,5)
	if h == nil || h.ID != 0 {
		t.Fatalf("history = %+v", h)
	}
	// Degree timeline: [0,1):0 [1,2):1 [2,3):0 [3,4):1 [4,5):2 [5,6):1 [6,∞):0.
	want := []DegreePoint{
		{ival.New(0, 1), 0},
		{ival.New(1, 2), 1},
		{ival.New(2, 3), 0},
		{ival.New(3, 4), 1},
		{ival.New(4, 5), 2},
		{ival.New(5, 6), 1},
		{ival.From(6), 0},
	}
	if len(h.OutDegree) != len(want) {
		t.Fatalf("out-degree profile = %v, want %v", h.OutDegree, want)
	}
	for i := range want {
		if h.OutDegree[i] != want[i] {
			t.Fatalf("out-degree profile[%d] = %v, want %v", i, h.OutDegree[i], want[i])
		}
	}
	if len(h.InDegree) != 1 || h.InDegree[0].Degree != 0 {
		t.Fatalf("A has no in-edges: %v", h.InDegree)
	}
	if g.VertexHistory(99) != nil {
		t.Fatalf("absent vertex should return nil")
	}
}
