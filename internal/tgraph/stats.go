package tgraph

import (
	ival "graphite/internal/interval"
)

// Characteristics summarizes a temporal graph the way Table 1 of the paper
// does: sizes under each of the four representations the evaluated platforms
// use, plus average entity lifespans.
type Characteristics struct {
	Snapshots int // number of distinct time-points

	// Interval representation (GRAPHITE/ICM).
	IntervalV int
	IntervalE int

	// Largest single snapshot (MSB, Chlonos batches, GoFFish).
	LargestSnapV int
	LargestSnapE int

	// Transformed graph (TGB): vertex replicas at distinct incident
	// time-points, plus replica-chain edges and per-time-point edge copies.
	TransformedV int
	TransformedE int

	// Multi-snapshot cumulative sizes (sum over all snapshots).
	MultiSnapV int64
	MultiSnapE int64

	// Average lifespans, in time-points, clipped to the observable window.
	AvgVertexLife float64
	AvgEdgeLife   float64
	AvgPropLife   float64
}

// ComputeCharacteristics scans the graph once per entity class and derives
// the Table 1 rows. Per-snapshot counts use an event sweep, not per-snapshot
// rescans, so it is O((V+E) log(V+E) + horizon).
func (g *Graph) ComputeCharacteristics() Characteristics {
	var c Characteristics
	start, horizon := g.lifespan.Start, g.Horizon()
	n := int(horizon - start)
	if n <= 0 {
		return c
	}
	c.Snapshots = n
	c.IntervalV = len(g.vertices)
	c.IntervalE = len(g.edges)

	vDiff := make([]int32, n+1)
	eDiff := make([]int32, n+1)
	var vLife, eLife, propLife, propCount int64

	for i := range g.vertices {
		iv := g.clip(g.vertices[i].Lifespan)
		if iv.IsEmpty() {
			continue
		}
		vLife += iv.Length()
		vDiff[iv.Start-start]++
		vDiff[iv.End-start]--
		for _, es := range g.vertices[i].Props.All() {
			for _, e := range es {
				p := g.clip(e.Interval)
				propLife += p.Length()
				propCount++
			}
		}
	}
	for i := range g.edges {
		iv := g.clip(g.edges[i].Lifespan)
		if iv.IsEmpty() {
			continue
		}
		eLife += iv.Length()
		eDiff[iv.Start-start]++
		eDiff[iv.End-start]--
		for _, es := range g.edges[i].Props.All() {
			for _, e := range es {
				p := g.clip(e.Interval)
				propLife += p.Length()
				propCount++
			}
		}
	}

	var av, ae int32
	for t := 0; t < n; t++ {
		av += vDiff[t]
		ae += eDiff[t]
		if int(av) > c.LargestSnapV {
			c.LargestSnapV = int(av)
		}
		if int(ae) > c.LargestSnapE {
			c.LargestSnapE = int(ae)
		}
		c.MultiSnapV += int64(av)
		c.MultiSnapE += int64(ae)
	}

	tv, te := g.TransformedSize()
	c.TransformedV = tv
	c.TransformedE = te

	if len(g.vertices) > 0 {
		c.AvgVertexLife = float64(vLife) / float64(len(g.vertices))
	}
	if len(g.edges) > 0 {
		c.AvgEdgeLife = float64(eLife) / float64(len(g.edges))
	}
	if propCount > 0 {
		c.AvgPropLife = float64(propLife) / float64(propCount)
	}
	return c
}

// TransformedSize estimates the size of the algorithm-agnostic transformed
// graph (Sec. I, Fig. 1(b); Wu et al. [6]): each vertex is unrolled into one
// replica per distinct time-point at which an in- or out-edge is incident,
// replicas of a vertex are chained by edges in time order, and every edge
// becomes one copy per time-point of its lifespan connecting the matching
// replicas.
func (g *Graph) TransformedSize() (nv, ne int) {
	horizon := g.Horizon()
	for vi := range g.vertices {
		points := map[ival.Time]struct{}{}
		for _, ei := range g.out[vi] {
			iv := g.clip(g.edges[ei].Lifespan)
			for t := iv.Start; t < iv.End && t < horizon; t++ {
				points[t] = struct{}{}
			}
		}
		for _, ei := range g.in[vi] {
			e := &g.edges[ei]
			iv := g.clip(e.Lifespan)
			for t := iv.Start; t < iv.End && t < horizon; t++ {
				// Arrival replica: one time unit after departure,
				// bounded by the horizon.
				at := ival.SatAdd(t, 1)
				if at >= horizon {
					at = horizon - 1
				}
				points[at] = struct{}{}
			}
		}
		k := len(points)
		nv += k
		if k > 1 {
			ne += k - 1 // replica chain
		}
	}
	for ei := range g.edges {
		iv := g.clip(g.edges[ei].Lifespan)
		ne += int(iv.Length())
	}
	return nv, ne
}

// WorkWeights returns a per-vertex compute-work estimate for skew-aware
// partitioning: Σ over the vertex's out-edges of the edge lifespan length
// (degree × lifespan), clipped to the observable window. A hub vertex whose
// edges live for the whole horizon scatters proportionally more interval
// messages per superstep than a leaf with short-lived edges, so these
// weights feed engine.PartitionBalanced as the static-balance baseline the
// work-stealing scheduler is benchmarked against.
func (g *Graph) WorkWeights() []int64 {
	ws := make([]int64, len(g.vertices))
	for vi := range g.vertices {
		var w int64
		for _, ei := range g.out[vi] {
			iv := g.clip(g.edges[ei].Lifespan)
			if !iv.IsEmpty() {
				w += int64(iv.Length())
			}
		}
		ws[vi] = w
	}
	return ws
}

// MemoryFootprint returns an estimate, in bytes, of the in-memory size of
// the interval graph representation: used for the Fig. 6(a) comparison.
// The accounting is representation-intrinsic (ids, interval endpoints,
// adjacency indices, property entries), not Go-runtime-specific.
func (g *Graph) MemoryFootprint() int64 {
	const (
		idBytes   = 8
		timeBytes = 8
		idxBytes  = 4
	)
	var b int64
	for i := range g.vertices {
		b += idBytes + 2*timeBytes
		for _, es := range g.vertices[i].Props.All() {
			b += int64(len(es)) * (2*timeBytes + 8)
		}
	}
	for i := range g.edges {
		b += idBytes + 2*idBytes + 2*timeBytes + 2*idxBytes // edge + out/in adjacency slots
		for _, es := range g.edges[i].Props.All() {
			b += int64(len(es)) * (2*timeBytes + 8)
		}
	}
	return b
}

// SnapshotFootprint returns the byte estimate of materializing the single
// snapshot at time t (vertex ids + active edges + scalar property values).
func (g *Graph) SnapshotFootprint(t ival.Time) int64 {
	const (
		idBytes  = 8
		idxBytes = 4
	)
	var b int64
	for i := range g.vertices {
		if g.vertices[i].Lifespan.Contains(t) {
			b += idBytes
			for range g.vertices[i].Props.All() {
				b += 8
			}
		}
	}
	for i := range g.edges {
		if g.edges[i].Lifespan.Contains(t) {
			b += idBytes + 2*idBytes + 2*idxBytes
			for range g.edges[i].Props.All() {
				b += 8
			}
		}
	}
	return b
}

// LargestSnapshotFootprint returns the maximum SnapshotFootprint over the
// observable window.
func (g *Graph) LargestSnapshotFootprint() int64 {
	var max int64
	for t := g.lifespan.Start; t < g.Horizon(); t++ {
		if f := g.SnapshotFootprint(t); f > max {
			max = f
		}
	}
	return max
}
