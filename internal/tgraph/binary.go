package tgraph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"graphite/internal/codec"
	ival "graphite/internal/interval"
)

// Binary format: a magic header, then uvarint-counted sections of vertices,
// edges and properties, every time-point in the var-byte interval encoding
// of internal/codec. It is 3-6x smaller than the text format and parses
// without allocation-heavy tokenizing — the on-disk layout a deployment
// would load from HDFS.
const binaryMagic = "GRTG1\n"

// WriteBinary serializes the graph in the binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var buf []byte
	flush := func() error {
		_, err := bw.Write(buf)
		buf = buf[:0]
		return err
	}

	buf = binary.AppendUvarint(buf, uint64(len(g.vertices)))
	if err := flush(); err != nil {
		return err
	}
	for i := range g.vertices {
		v := &g.vertices[i]
		buf = binary.AppendVarint(buf, int64(v.ID))
		buf = codec.AppendInterval(buf, v.Lifespan)
		buf = appendProps(buf, v.Props)
		if err := flush(); err != nil {
			return err
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(g.edges)))
	if err := flush(); err != nil {
		return err
	}
	for i := range g.edges {
		e := &g.edges[i]
		buf = binary.AppendVarint(buf, int64(e.ID))
		buf = binary.AppendVarint(buf, int64(e.Src))
		buf = binary.AppendVarint(buf, int64(e.Dst))
		buf = codec.AppendInterval(buf, e.Lifespan)
		buf = appendProps(buf, e.Props)
		if err := flush(); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func appendProps(buf []byte, p Props) []byte {
	buf = binary.AppendUvarint(buf, uint64(p.Len()))
	// Props iterates labels in sorted order, which keeps the encoding
	// deterministic (byte-identical files for equal graphs); golden tests
	// and crash-recovery byte comparisons rely on that.
	for label, entries := range p.All() {
		buf = binary.AppendUvarint(buf, uint64(len(label)))
		buf = append(buf, label...)
		buf = binary.AppendUvarint(buf, uint64(len(entries)))
		for _, e := range entries {
			buf = codec.AppendInterval(buf, e.Interval)
			buf = binary.AppendVarint(buf, e.Value)
		}
	}
	return buf
}

// ReadBinary parses the binary format and validates the graph constraints.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("tgraph: binary header: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("tgraph: not a binary temporal graph (magic %q)", magic)
	}
	d := &binDecoder{r: br}
	nv := d.uvarint()
	b := NewBuilder(int(nv), 0)
	for i := uint64(0); i < nv && d.err == nil; i++ {
		id := VertexID(d.varint())
		life := d.interval()
		b.AddVertex(id, life)
		d.props(func(label string, iv ival.Interval, val int64) {
			b.SetVertexProp(id, label, iv, val)
		})
		if err := b.Err(); err != nil {
			return nil, err
		}
	}
	ne := d.uvarint()
	for i := uint64(0); i < ne && d.err == nil; i++ {
		id := EdgeID(d.varint())
		src := VertexID(d.varint())
		dst := VertexID(d.varint())
		life := d.interval()
		b.AddEdge(id, src, dst, life)
		d.props(func(label string, iv ival.Interval, val int64) {
			b.SetEdgeProp(id, label, iv, val)
		})
		if err := b.Err(); err != nil {
			return nil, err
		}
	}
	if d.err != nil {
		return nil, fmt.Errorf("tgraph: binary decode: %w", d.err)
	}
	return b.Build()
}

// WriteBinaryFile serializes the graph to a binary file.
func WriteBinaryFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBinaryFile parses a binary graph file.
func ReadBinaryFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// binDecoder tracks the first error across sequential reads.
type binDecoder struct {
	r   *bufio.Reader
	err error
}

func (d *binDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = err
	}
	return v
}

func (d *binDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(d.r)
	if err != nil {
		d.err = err
	}
	return v
}

func (d *binDecoder) interval() ival.Interval {
	if d.err != nil {
		return ival.Empty
	}
	// Peek enough bytes for the interval; intervals are at most 1+10+10
	// bytes in the var-byte encoding.
	peek, err := d.r.Peek(21)
	if err != nil && len(peek) == 0 {
		d.err = err
		return ival.Empty
	}
	iv, n, err := codec.Interval(peek)
	if err != nil {
		d.err = err
		return ival.Empty
	}
	if _, err := d.r.Discard(n); err != nil {
		d.err = err
	}
	return iv
}

func (d *binDecoder) props(set func(label string, iv ival.Interval, val int64)) {
	n := d.uvarint()
	for i := uint64(0); i < n && d.err == nil; i++ {
		l := d.uvarint()
		if d.err != nil || l > 1<<16 {
			d.err = fmt.Errorf("corrupt label length %d", l)
			return
		}
		label := make([]byte, l)
		if _, err := io.ReadFull(d.r, label); err != nil {
			d.err = err
			return
		}
		entries := d.uvarint()
		for j := uint64(0); j < entries && d.err == nil; j++ {
			iv := d.interval()
			val := d.varint()
			if d.err == nil {
				set(string(label), iv, val)
			}
		}
	}
}

// ReadAnyFile loads a graph from the text, binary or snapshot format,
// sniffing the magic header. An unrecognized header yields an
// ErrUnknownFormat error naming the sniffed bytes and the known magics.
func ReadAnyFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	head := make([]byte, len(snapshotMagic))
	n, _ := io.ReadFull(f, head)
	head = head[:n]
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	switch SniffFormat(head) {
	case FormatSnapshot:
		return ReadSnapshot(f)
	case FormatBinary:
		return ReadBinary(f)
	case FormatText:
		return Read(f)
	}
	return nil, fmt.Errorf("%w: %s starts with %q, which matches neither the text format nor the binary (%q) or snapshot (%q) magic",
		ErrUnknownFormat, path, head, binaryMagic, snapshotMagic)
}
