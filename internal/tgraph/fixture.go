package tgraph

import (
	ival "graphite/internal/interval"
)

// Names of the edge properties used by the time-dependent algorithms and by
// the transit fixture.
const (
	PropTravelTime = "travel-time"
	PropTravelCost = "travel-cost"
)

// TransitExample reconstructs the transit network of Fig. 1(a) of the paper:
// six perpetual transit stops A–F (ids 0–5) and directed transit options
// whose edge lifespans are the periods during which the transit can be
// initiated, with a travel cost property. Travel time on every edge is 1.
//
// The fixture reproduces every fact the paper states about the example: the
// temporal SSSP from A at time 0 yields B reachable in two intervals with
// costs 4 ([4,6)) and 3 ([6,∞)), C in one interval at cost 3, D at cost 2,
// E in two intervals with costs 7 ([6,9)) and 5 ([9,∞)), and F unreachable.
func TransitExample() *Graph {
	b := NewBuilder(6, 6)
	for id := VertexID(0); id < 6; id++ {
		b.AddVertex(id, ival.Universe)
	}
	const (
		A = VertexID(0)
		B = VertexID(1)
		C = VertexID(2)
		D = VertexID(3)
		E = VertexID(4)
		F = VertexID(5)
	)
	type edge struct {
		id       EdgeID
		src, dst VertexID
		life     ival.Interval
		costs    []PropEntry
	}
	edges := []edge{
		{0, A, B, ival.New(3, 6), []PropEntry{{ival.New(3, 5), 4}, {ival.New(5, 6), 3}}},
		{1, A, C, ival.New(1, 2), []PropEntry{{ival.New(1, 2), 3}}},
		{2, A, D, ival.New(4, 5), []PropEntry{{ival.New(4, 5), 2}}},
		{3, B, E, ival.New(8, 9), []PropEntry{{ival.New(8, 9), 2}}},
		{4, C, E, ival.New(5, 6), []PropEntry{{ival.New(5, 6), 4}}},
		{5, D, F, ival.New(0, 1), []PropEntry{{ival.New(0, 1), 1}}},
	}
	for _, e := range edges {
		b.AddEdge(e.id, e.src, e.dst, e.life)
		b.SetEdgeProp(e.id, PropTravelTime, e.life, 1)
		for _, c := range e.costs {
			b.SetEdgeProp(e.id, PropTravelCost, c.Interval, c.Value)
		}
	}
	return b.MustBuild()
}

// TransitVertexName maps the fixture's vertex ids to the paper's labels.
func TransitVertexName(id VertexID) string {
	names := []string{"A", "B", "C", "D", "E", "F"}
	if int(id) < len(names) {
		return names[id]
	}
	return "?"
}
