//go:build !unix

package tgraph

import (
	"io"
	"os"
)

// mmapFile on platforms without syscall.Mmap reads the file into memory;
// callers see the same interface, just without lazy loading.
func mmapFile(f *os.File, size int64) (data []byte, mapped bool, err error) {
	b, err := io.ReadAll(f)
	if err != nil {
		return nil, false, err
	}
	return b, false, nil
}

func munmapFile(b []byte) error { return nil }
