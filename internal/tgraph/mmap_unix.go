//go:build unix

package tgraph

import (
	"os"
	"syscall"
)

// mmapFile maps the file read-only. Empty files map to an empty slice
// without a mapping (mmap of length 0 is an error on Linux).
func mmapFile(f *os.File, size int64) (data []byte, mapped bool, err error) {
	if size <= 0 {
		return nil, false, nil
	}
	if size != int64(int(size)) {
		return nil, false, syscall.EFBIG
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, false, err
	}
	return b, true, nil
}

func munmapFile(b []byte) error { return syscall.Munmap(b) }
