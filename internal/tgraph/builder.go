package tgraph

import (
	"errors"
	"fmt"
	"sort"

	ival "graphite/internal/interval"
)

// Validation errors returned by Builder.Build, wrapping the paper's
// soundness constraints.
var (
	ErrDuplicateVertex  = errors.New("tgraph: duplicate vertex id (Constraint 1)")
	ErrDuplicateEdge    = errors.New("tgraph: duplicate edge id (Constraint 1)")
	ErrDanglingEdge     = errors.New("tgraph: edge endpoint does not exist (Constraint 2)")
	ErrEdgeOutlives     = errors.New("tgraph: edge lifespan not contained in endpoint lifespans (Constraint 2)")
	ErrPropOutlives     = errors.New("tgraph: property interval not contained in owner lifespan (Constraint 3)")
	ErrPropConflict     = errors.New("tgraph: overlapping values for one property label (Definition 1)")
	ErrInvalidLifespan  = errors.New("tgraph: invalid lifespan")
	ErrUnknownPropOwner = errors.New("tgraph: property for unknown vertex or edge")
)

// Builder accumulates vertices, edges and properties and validates the
// temporal graph constraints in Build. The zero value is not usable; call
// NewBuilder.
type Builder struct {
	vertices []Vertex
	edges    []Edge
	vseen    map[VertexID]int32
	eseen    map[EdgeID]int32
	err      error
}

// NewBuilder returns an empty Builder with capacity hints.
func NewBuilder(vcap, ecap int) *Builder {
	return &Builder{
		vertices: make([]Vertex, 0, vcap),
		edges:    make([]Edge, 0, ecap),
		vseen:    make(map[VertexID]int32, vcap),
		eseen:    make(map[EdgeID]int32, ecap),
	}
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// AddVertex adds vertex 〈id, lifespan〉. The first error encountered is
// retained and returned by Build.
func (b *Builder) AddVertex(id VertexID, lifespan ival.Interval) *Builder {
	if !lifespan.Valid() {
		b.fail(fmt.Errorf("%w: vertex %d has %v", ErrInvalidLifespan, id, lifespan))
		return b
	}
	if _, dup := b.vseen[id]; dup {
		b.fail(fmt.Errorf("%w: vertex %d", ErrDuplicateVertex, id))
		return b
	}
	b.vseen[id] = int32(len(b.vertices))
	b.vertices = append(b.vertices, Vertex{ID: id, Lifespan: lifespan})
	return b
}

// AddEdge adds edge 〈id, src, dst, lifespan〉. Endpoints must already exist.
func (b *Builder) AddEdge(id EdgeID, src, dst VertexID, lifespan ival.Interval) *Builder {
	if !lifespan.Valid() {
		b.fail(fmt.Errorf("%w: edge %d has %v", ErrInvalidLifespan, id, lifespan))
		return b
	}
	if _, dup := b.eseen[id]; dup {
		b.fail(fmt.Errorf("%w: edge %d", ErrDuplicateEdge, id))
		return b
	}
	si, sok := b.vseen[src]
	di, dok := b.vseen[dst]
	if !sok || !dok {
		b.fail(fmt.Errorf("%w: edge %d (%d->%d)", ErrDanglingEdge, id, src, dst))
		return b
	}
	if !b.vertices[si].Lifespan.ContainsInterval(lifespan) || !b.vertices[di].Lifespan.ContainsInterval(lifespan) {
		b.fail(fmt.Errorf("%w: edge %d %v, src %v, dst %v",
			ErrEdgeOutlives, id, lifespan, b.vertices[si].Lifespan, b.vertices[di].Lifespan))
		return b
	}
	b.eseen[id] = int32(len(b.edges))
	b.edges = append(b.edges, Edge{ID: id, Src: src, Dst: dst, Lifespan: lifespan})
	return b
}

// SetVertexProp attaches 〈vid, label, value, interval〉 to a vertex.
func (b *Builder) SetVertexProp(id VertexID, label string, interval ival.Interval, value int64) *Builder {
	vi, ok := b.vseen[id]
	if !ok {
		b.fail(fmt.Errorf("%w: vertex %d", ErrUnknownPropOwner, id))
		return b
	}
	v := &b.vertices[vi]
	if !v.Lifespan.ContainsInterval(interval) || interval.IsEmpty() {
		b.fail(fmt.Errorf("%w: vertex %d prop %q %v outside %v", ErrPropOutlives, id, label, interval, v.Lifespan))
		return b
	}
	v.Props.Add(label, PropEntry{Interval: interval, Value: value})
	return b
}

// SetEdgeProp attaches 〈eid, label, value, interval〉 to an edge.
func (b *Builder) SetEdgeProp(id EdgeID, label string, interval ival.Interval, value int64) *Builder {
	ei, ok := b.eseen[id]
	if !ok {
		b.fail(fmt.Errorf("%w: edge %d", ErrUnknownPropOwner, id))
		return b
	}
	e := &b.edges[ei]
	if !e.Lifespan.ContainsInterval(interval) || interval.IsEmpty() {
		b.fail(fmt.Errorf("%w: edge %d prop %q %v outside %v", ErrPropOutlives, id, label, interval, e.Lifespan))
		return b
	}
	e.Props.Add(label, PropEntry{Interval: interval, Value: value})
	return b
}

// Err returns the first error recorded so far, without building.
func (b *Builder) Err() error { return b.err }

// Build validates all constraints and returns the immutable graph.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	g := &Graph{
		vertices: b.vertices,
		edges:    b.edges,
		vindex:   b.vseen,
		out:      make([][]int32, len(b.vertices)),
		in:       make([][]int32, len(b.vertices)),
		srcIdx:   make([]int32, len(b.edges)),
		dstIdx:   make([]int32, len(b.edges)),
	}
	for i := range g.vertices {
		v := &g.vertices[i]
		if err := normalizeProps(v.Props, fmt.Sprintf("vertex %d", v.ID)); err != nil {
			return nil, err
		}
		g.lifespan = g.lifespan.Union(v.Lifespan)
	}
	for i := range g.edges {
		e := &g.edges[i]
		if err := normalizeProps(e.Props, fmt.Sprintf("edge %d", e.ID)); err != nil {
			return nil, err
		}
		si := g.vindex[e.Src]
		di := g.vindex[e.Dst]
		g.srcIdx[i] = si
		g.dstIdx[i] = di
		g.out[si] = append(g.out[si], int32(i))
		g.in[di] = append(g.in[di], int32(i))
	}
	g.horizon = g.computeHorizon()
	return g, nil
}

// MustBuild is Build that panics on error; for tests and examples.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// normalizeProps sorts each label's entries by start and rejects entries with
// intersecting intervals and different values (Definition 1). Entries with
// intersecting intervals and the same value are rejected too: they indicate a
// malformed input.
func normalizeProps(p Props, owner string) error {
	for label, entries := range p.All() {
		sort.Slice(entries, func(i, j int) bool {
			return entries[i].Interval.Start < entries[j].Interval.Start
		})
		for i := 1; i < len(entries); i++ {
			if entries[i-1].Interval.Intersects(entries[i].Interval) {
				return fmt.Errorf("%w: %s label %q: %v and %v",
					ErrPropConflict, owner, label, entries[i-1].Interval, entries[i].Interval)
			}
		}
	}
	return nil
}
