package tgraph

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"unsafe"
)

// hostLittle reports whether the host is little-endian, the layout the
// snapshot format stores fixed-width integers in. On such hosts the
// decoder aliases integer arrays straight out of the mapping; elsewhere it
// falls back to copying.
var hostLittle = binary.NativeEndian.Uint16([]byte{0x01, 0x02}) == 0x0201

// asInt32s interprets b as n little-endian int32 values, zero-copy when
// the host layout permits.
func asInt32s(b []byte, n int) []int32 {
	if n == 0 {
		return []int32{}
	}
	if hostLittle && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// asUint32s is asInt32s for unsigned values (CSR offsets).
func asUint32s(b []byte, n int) []uint32 {
	if n == 0 {
		return []uint32{}
	}
	if hostLittle && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

// Mapped is a Graph backed by a read-only memory mapping of a snapshot
// file: the adjacency, endpoint and index arrays alias the mapped pages
// directly, so they are faulted in only when touched. Close releases the
// mapping; the graph and every slice its accessors return must not be
// used afterwards. A Mapped wrapping an ordinary heap graph (Unmapped, or
// OpenAnyFile over a text/binary file) has a no-op Close.
type Mapped struct {
	*Graph
	Extra  []byte // opaque application payload from the extra section, nil if absent
	data   []byte
	mapped bool
}

// Unmapped wraps an in-memory graph in a Mapped handle with a no-op
// Close, for callers that accept either source.
func Unmapped(g *Graph) *Mapped { return &Mapped{Graph: g} }

// Size returns the resident footprint of the graph: the byte length of the
// mapping for snapshot-backed graphs (what the process actually faults in,
// at most), or the heap estimate for in-memory graphs.
func (m *Mapped) Size() int64 {
	if len(m.data) > 0 {
		return int64(len(m.data))
	}
	return m.MemoryFootprint()
}

// Close releases the underlying mapping, if any.
func (m *Mapped) Close() error {
	if m == nil || !m.mapped {
		return nil
	}
	m.mapped = false
	data := m.data
	m.data = nil
	return munmapFile(data)
}

// OpenMapped memory-maps a snapshot (.gsn) file, verifying every section
// CRC before returning. Pages are still loaded lazily; the CRC pass
// touches each page once without decoding the bulk of it.
func OpenMapped(path string) (*Mapped, error) {
	return openMapped(path, true)
}

// OpenMappedTrusted memory-maps a snapshot file, skipping the per-section
// CRC verification (the header and directory CRC are always checked, and
// the decoder still bounds-checks every structure). Use for files this
// process just wrote, or when open latency matters more than detecting
// at-rest corruption.
func OpenMappedTrusted(path string) (*Mapped, error) {
	return openMapped(path, false)
}

func openMapped(path string, verifyCRC bool) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, mapped, err := mmapFile(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("tgraph: mmap %s: %w", path, err)
	}
	g, extra, err := decodeSnapshot(data, verifyCRC)
	if err != nil {
		if mapped {
			munmapFile(data)
		}
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &Mapped{Graph: g, Extra: extra, data: data, mapped: mapped}, nil
}

// OpenAnyFile opens a graph file in any of the three formats, memory-
// mapping snapshots and parsing text/binary files into the heap. The
// returned handle's Close is a no-op for non-snapshot files.
func OpenAnyFile(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	head := make([]byte, len(snapshotMagic))
	n, _ := io.ReadFull(f, head)
	f.Close()
	if SniffFormat(head[:n]) == FormatSnapshot {
		return OpenMapped(path)
	}
	g, err := ReadAnyFile(path)
	if err != nil {
		return nil, err
	}
	return Unmapped(g), nil
}
