package tgraph

import (
	"bytes"
	"testing"
)

// FuzzFormatRoundTrip builds arbitrary valid graphs from fuzzed PRNG
// parameters, encodes them to the snapshot format, decodes, and demands
// full structural equality — the decoded graph must be indistinguishable
// from the in-memory original.
func FuzzFormatRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(0))
	f.Add(uint64(7), uint8(40), uint8(120))
	f.Add(uint64(13), uint8(1), uint8(255))
	f.Add(uint64(99), uint8(200), uint8(50))
	f.Fuzz(func(t *testing.T, seed uint64, nv, ne uint8) {
		g := buildArbitrary(seed, int(nv), int(ne))
		enc := EncodeSnapshot(g, nil)
		g2, err := ReadSnapshot(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("decode of freshly encoded graph failed: %v", err)
		}
		if err := Equal(g, g2); err != nil {
			t.Fatalf("round trip not identical: %v", err)
		}
		if !bytes.Equal(enc, EncodeSnapshot(g2, nil)) {
			t.Fatal("encoding is not deterministic across a round trip")
		}
	})
}

// FuzzSnapshotMutation mutates a valid snapshot — XOR-flipping a byte
// and/or truncating — and demands the decoder either returns a typed
// error or an identical graph (padding flips are benign). Panics and
// silently wrong graphs are the failure modes this hunts.
func FuzzSnapshotMutation(f *testing.F) {
	base := EncodeSnapshot(TransitExample(), []byte("extra"))
	f.Add(uint32(0), byte(0xff), uint16(len(base)))
	f.Add(uint32(6), byte(0x01), uint16(len(base)))
	f.Add(uint32(20), byte(0x80), uint16(17))
	f.Add(uint32(100), byte(0x40), uint16(0))
	f.Fuzz(func(t *testing.T, pos uint32, xor byte, cut uint16) {
		mut := bytes.Clone(base)
		if n := int(cut); n < len(mut) {
			mut = mut[:n]
		}
		if len(mut) > 0 {
			mut[int(pos)%len(mut)] ^= xor
		}
		g, err := ReadSnapshot(bytes.NewReader(mut))
		if err != nil {
			if !isTypedSnapshotErr(err) {
				t.Fatalf("untyped error for mutated snapshot: %v", err)
			}
			return
		}
		orig, err2 := ReadSnapshot(bytes.NewReader(base))
		if err2 != nil {
			t.Fatalf("base snapshot stopped decoding: %v", err2)
		}
		if err := Equal(orig, g); err != nil {
			t.Fatalf("mutation (pos %d xor %#x cut %d) silently changed the graph: %v", pos, xor, cut, err)
		}
	})
}
