package tgraph

import (
	ival "graphite/internal/interval"
)

// Slice materializes the sub-graph restricted to a time window: vertex,
// edge and property lifespans are clipped to the window and entities that do
// not exist inside it are dropped. The result is a valid temporal graph in
// its own right (the constraints survive clipping because containment is
// preserved under intersection with a fixed window). Offering window queries
// over temporal property graphs is part of the paper's stated future work.
func Slice(g *Graph, window ival.Interval) (*Graph, error) {
	b := NewBuilder(g.NumVertices(), g.NumEdges())
	for i := range g.vertices {
		v := &g.vertices[i]
		life := v.Lifespan.Intersect(window)
		if life.IsEmpty() {
			continue
		}
		b.AddVertex(v.ID, life)
		for label, entries := range v.Props.All() {
			for _, p := range entries {
				if x := p.Interval.Intersect(window); !x.IsEmpty() {
					b.SetVertexProp(v.ID, label, x, p.Value)
				}
			}
		}
	}
	for i := range g.edges {
		e := &g.edges[i]
		life := e.Lifespan.Intersect(window)
		if life.IsEmpty() {
			continue
		}
		b.AddEdge(e.ID, e.Src, e.Dst, life)
		for label, entries := range e.Props.All() {
			for _, p := range entries {
				if x := p.Interval.Intersect(window); !x.IsEmpty() {
					b.SetEdgeProp(e.ID, label, x, p.Value)
				}
			}
		}
	}
	return b.Build()
}

// History reports the lifespan, per-label property timeline and temporal
// degree profile of one vertex — the "vertex history" query of a temporal
// property graph store.
type History struct {
	ID       VertexID
	Lifespan ival.Interval
	Props    Props
	// OutDegree and InDegree are partitioned by the intervals over which
	// the degree is constant.
	OutDegree []DegreePoint
	InDegree  []DegreePoint
}

// DegreePoint is one constant-degree interval.
type DegreePoint struct {
	Interval ival.Interval
	Degree   int
}

// VertexHistory extracts the history of the vertex with the given id, or
// nil if absent.
func (g *Graph) VertexHistory(id VertexID) *History {
	vi := g.IndexOf(id)
	if vi < 0 {
		return nil
	}
	v := g.VertexAt(vi)
	return &History{
		ID:        v.ID,
		Lifespan:  v.Lifespan,
		Props:     v.Props,
		OutDegree: degreeProfile(g, v.Lifespan, g.OutEdges(vi)),
		InDegree:  degreeProfile(g, v.Lifespan, g.InEdges(vi)),
	}
}

// degreeProfile partitions the lifespan at edge boundaries and annotates
// each piece with the number of alive edges.
func degreeProfile(g *Graph, life ival.Interval, edges []int32) []DegreePoint {
	bounds := []ival.Time{life.Start, life.End}
	for _, ei := range edges {
		x := g.edges[ei].Lifespan.Intersect(life)
		if !x.IsEmpty() {
			bounds = append(bounds, x.Start, x.End)
		}
	}
	// Insertion sort: boundary lists are short.
	for i := 1; i < len(bounds); i++ {
		for j := i; j > 0 && bounds[j] < bounds[j-1]; j-- {
			bounds[j], bounds[j-1] = bounds[j-1], bounds[j]
		}
	}
	var out []DegreePoint
	for i := 0; i+1 < len(bounds); i++ {
		if bounds[i] == bounds[i+1] {
			continue
		}
		piece := ival.New(bounds[i], bounds[i+1])
		deg := 0
		for _, ei := range edges {
			if g.edges[ei].Lifespan.Contains(piece.Start) {
				deg++
			}
		}
		if n := len(out); n > 0 && out[n-1].Degree == deg && out[n-1].Interval.Meets(piece) {
			out[n-1].Interval.End = piece.End
			continue
		}
		out = append(out, DegreePoint{Interval: piece, Degree: deg})
	}
	return out
}
