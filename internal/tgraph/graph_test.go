package tgraph

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	ival "graphite/internal/interval"
)

func diamond(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(4, 4)
	b.AddVertex(1, ival.New(0, 10))
	b.AddVertex(2, ival.New(0, 10))
	b.AddVertex(3, ival.New(2, 8))
	b.AddVertex(4, ival.New(0, 10))
	b.AddEdge(10, 1, 2, ival.New(0, 10))
	b.AddEdge(11, 1, 3, ival.New(2, 8))
	b.AddEdge(12, 2, 4, ival.New(5, 10))
	b.AddEdge(13, 3, 4, ival.New(2, 4))
	b.SetEdgeProp(10, "w", ival.New(0, 5), 7)
	b.SetEdgeProp(10, "w", ival.New(5, 10), 9)
	b.SetVertexProp(1, "kind", ival.New(0, 10), 1)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuildAndAccess(t *testing.T) {
	g := diamond(t)
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("sizes wrong: %v", g)
	}
	if g.Lifespan() != ival.New(0, 10) {
		t.Errorf("lifespan = %v", g.Lifespan())
	}
	v := g.Vertex(3)
	if v == nil || v.Lifespan != ival.New(2, 8) {
		t.Fatalf("Vertex(3) = %+v", v)
	}
	if g.Vertex(99) != nil {
		t.Errorf("absent vertex should be nil")
	}
	if g.IndexOf(99) != -1 {
		t.Errorf("absent index should be -1")
	}
	i1 := g.IndexOf(1)
	if got := len(g.OutEdges(i1)); got != 2 {
		t.Errorf("out-degree of 1 = %d, want 2", got)
	}
	i4 := g.IndexOf(4)
	if got := len(g.InEdges(i4)); got != 2 {
		t.Errorf("in-degree of 4 = %d, want 2", got)
	}
	if got := g.OutDegreeAt(i1, 1); got != 1 {
		t.Errorf("OutDegreeAt(1,t=1) = %d, want 1 (edge 11 starts at 2)", got)
	}
	if got := g.InDegreeAt(i4, 3); got != 1 {
		t.Errorf("InDegreeAt(4,t=3) = %d, want 1", got)
	}
}

func TestPropsValueAt(t *testing.T) {
	g := diamond(t)
	e := g.Edge(0) // edge 10
	if v, ok := e.Props.ValueAt("w", 4); !ok || v != 7 {
		t.Errorf("w@4 = %d,%v want 7", v, ok)
	}
	if v, ok := e.Props.ValueAt("w", 5); !ok || v != 9 {
		t.Errorf("w@5 = %d,%v want 9", v, ok)
	}
	if _, ok := e.Props.ValueAt("missing", 5); ok {
		t.Errorf("missing label should not resolve")
	}
	if _, ok := g.Vertex(1).Props.ValueAt("kind", 10); ok {
		t.Errorf("t=10 is outside [0,10)")
	}
}

func TestConstraint1DuplicateIDs(t *testing.T) {
	b := NewBuilder(0, 0)
	b.AddVertex(1, ival.New(0, 5))
	b.AddVertex(1, ival.New(5, 9))
	if _, err := b.Build(); !errors.Is(err, ErrDuplicateVertex) {
		t.Errorf("want ErrDuplicateVertex, got %v", err)
	}

	b = NewBuilder(0, 0)
	b.AddVertex(1, ival.New(0, 9)).AddVertex(2, ival.New(0, 9))
	b.AddEdge(7, 1, 2, ival.New(0, 4))
	b.AddEdge(7, 1, 2, ival.New(4, 9))
	if _, err := b.Build(); !errors.Is(err, ErrDuplicateEdge) {
		t.Errorf("want ErrDuplicateEdge, got %v", err)
	}
}

func TestConstraint2EdgeIntegrity(t *testing.T) {
	b := NewBuilder(0, 0)
	b.AddVertex(1, ival.New(0, 5))
	b.AddEdge(7, 1, 2, ival.New(0, 4))
	if _, err := b.Build(); !errors.Is(err, ErrDanglingEdge) {
		t.Errorf("want ErrDanglingEdge, got %v", err)
	}

	b = NewBuilder(0, 0)
	b.AddVertex(1, ival.New(0, 5)).AddVertex(2, ival.New(2, 5))
	b.AddEdge(7, 1, 2, ival.New(0, 4)) // starts before vertex 2 exists
	if _, err := b.Build(); !errors.Is(err, ErrEdgeOutlives) {
		t.Errorf("want ErrEdgeOutlives, got %v", err)
	}
}

func TestConstraint3PropertyIntegrity(t *testing.T) {
	b := NewBuilder(0, 0)
	b.AddVertex(1, ival.New(2, 5))
	b.SetVertexProp(1, "x", ival.New(0, 4), 1)
	if _, err := b.Build(); !errors.Is(err, ErrPropOutlives) {
		t.Errorf("want ErrPropOutlives, got %v", err)
	}

	b = NewBuilder(0, 0)
	b.AddVertex(1, ival.New(0, 10))
	b.SetVertexProp(1, "x", ival.New(0, 5), 1)
	b.SetVertexProp(1, "x", ival.New(4, 9), 2) // overlaps with different value
	if _, err := b.Build(); !errors.Is(err, ErrPropConflict) {
		t.Errorf("want ErrPropConflict, got %v", err)
	}

	b = NewBuilder(0, 0)
	b.SetVertexProp(1, "x", ival.New(0, 5), 1)
	if _, err := b.Build(); !errors.Is(err, ErrUnknownPropOwner) {
		t.Errorf("want ErrUnknownPropOwner, got %v", err)
	}
}

func TestInvalidLifespan(t *testing.T) {
	b := NewBuilder(0, 0)
	b.AddVertex(1, ival.New(5, 5))
	if _, err := b.Build(); !errors.Is(err, ErrInvalidLifespan) {
		t.Errorf("want ErrInvalidLifespan, got %v", err)
	}
}

func TestSnapshotViews(t *testing.T) {
	g := diamond(t)
	s := g.SnapshotAt(3)
	nv, ne := s.NumActive()
	if nv != 4 || ne != 3 {
		t.Errorf("snapshot@3 = %d vertices, %d edges; want 4, 3", nv, ne)
	}
	s = g.SnapshotAt(9)
	nv, ne = s.NumActive()
	if nv != 3 || ne != 2 {
		t.Errorf("snapshot@9 = %d vertices, %d edges; want 3, 2", nv, ne)
	}
	var names []EdgeID
	s.OutEdges(g.IndexOf(1), func(e *Edge) { names = append(names, e.ID) })
	if len(names) != 1 || names[0] != 10 {
		t.Errorf("out edges of 1 @9 = %v, want [10]", names)
	}
	var in []EdgeID
	g.SnapshotAt(3).InEdges(g.IndexOf(4), func(e *Edge) { in = append(in, e.ID) })
	if len(in) != 1 || in[0] != 13 {
		t.Errorf("in edges of 4 @3 = %v, want [13]", in)
	}
}

func TestHorizonAndSnapshotCount(t *testing.T) {
	g := diamond(t)
	if g.Horizon() != 10 {
		t.Errorf("horizon = %d, want 10", g.Horizon())
	}
	if g.SnapshotCount() != 10 {
		t.Errorf("snapshots = %d, want 10", g.SnapshotCount())
	}
	// Unbounded lifespans: horizon is the largest finite boundary.
	b := NewBuilder(0, 0)
	b.AddVertex(1, ival.Universe).AddVertex(2, ival.Universe)
	b.AddEdge(1, 1, 2, ival.New(3, 7))
	g2 := b.MustBuild()
	if g2.Horizon() != 7 {
		t.Errorf("horizon = %d, want 7", g2.Horizon())
	}
}

func TestCharacteristics(t *testing.T) {
	g := diamond(t)
	c := g.ComputeCharacteristics()
	if c.IntervalV != 4 || c.IntervalE != 4 {
		t.Errorf("interval sizes wrong: %+v", c)
	}
	if c.Snapshots != 10 {
		t.Errorf("snapshots = %d", c.Snapshots)
	}
	// Active vertices: v3 only in [2,8) so largest snapshot has all 4.
	if c.LargestSnapV != 4 {
		t.Errorf("largest snap V = %d", c.LargestSnapV)
	}
	// Edge activity: [0,2):1, [2,4):3, [4,5):2, [5,8):3, [8,10):2.
	if c.LargestSnapE != 3 {
		t.Errorf("largest snap E = %d", c.LargestSnapE)
	}
	if c.MultiSnapV != 4*10-4 { // v3 misses 4 of 10 snapshots
		t.Errorf("multi-snap V = %d, want 36", c.MultiSnapV)
	}
	wantE := int64(10 + 6 + 5 + 2) // lifespan lengths of the 4 edges
	if c.MultiSnapE != wantE {
		t.Errorf("multi-snap E = %d, want %d", c.MultiSnapE, wantE)
	}
	if c.AvgVertexLife != (10+10+6+10)/4.0 {
		t.Errorf("avg vertex life = %v", c.AvgVertexLife)
	}
	if c.AvgEdgeLife != (10+6+5+2)/4.0 {
		t.Errorf("avg edge life = %v", c.AvgEdgeLife)
	}
	if c.TransformedV <= c.IntervalV || c.TransformedE <= c.IntervalE {
		t.Errorf("transformed graph should be larger: %+v", c)
	}
}

func TestMemoryFootprints(t *testing.T) {
	g := diamond(t)
	if g.MemoryFootprint() <= 0 {
		t.Fatalf("interval footprint must be positive")
	}
	if g.LargestSnapshotFootprint() <= 0 {
		t.Fatalf("snapshot footprint must be positive")
	}
	if g.LargestSnapshotFootprint() >= g.MemoryFootprint() {
		t.Errorf("single snapshot should be smaller than the interval graph here")
	}
}

func TestRoundTripIO(t *testing.T) {
	g := TransitExample()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatalf("Write: %v", err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip size mismatch")
	}
	for i := range g.Vertices() {
		v1, v2 := g.Vertex(g.Vertices()[i].ID), g2.Vertex(g.Vertices()[i].ID)
		if v2 == nil || v1.Lifespan != v2.Lifespan {
			t.Fatalf("vertex %d mismatch", v1.ID)
		}
	}
	for i := range g.Edges() {
		e1 := g.Edge(i)
		var e2 *Edge
		for j := range g2.Edges() {
			if g2.Edge(j).ID == e1.ID {
				e2 = g2.Edge(j)
			}
		}
		if e2 == nil || e1.Lifespan != e2.Lifespan || e1.Src != e2.Src || e1.Dst != e2.Dst {
			t.Fatalf("edge %d mismatch", e1.ID)
		}
		if len(e1.Props.Entries(PropTravelCost)) != len(e2.Props.Entries(PropTravelCost)) {
			t.Fatalf("edge %d props mismatch", e1.ID)
		}
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []string{
		"V 1",                    // short record
		"V 1 0 x",                // bad time
		"Q 1 2 3",                // unknown type
		"E 5 1 2 0 9",            // dangling
		"V 1 0 9\nV 1 0 9",       // dup vertex
		"V 1 0 9\nVP 1 l 0 20 3", // prop outlives
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("input %q should fail to parse", c)
		}
	}
	// "inf" end accepted.
	g, err := Read(strings.NewReader("V 1 0 inf\nV 2 0 inf\nE 1 1 2 3 inf"))
	if err != nil {
		t.Fatalf("inf parse: %v", err)
	}
	if !g.Edge(0).Lifespan.IsUnbounded() {
		t.Errorf("edge should be unbounded")
	}
}

func TestTransitExampleShape(t *testing.T) {
	g := TransitExample()
	if g.NumVertices() != 6 || g.NumEdges() != 6 {
		t.Fatalf("fixture shape wrong: %v", g)
	}
	// Edge A->B has two cost values over its lifespan.
	e := g.Edge(0)
	if len(e.Props.Entries(PropTravelCost)) != 2 {
		t.Errorf("A->B should have 2 cost entries")
	}
	if v, _ := e.Props.ValueAt(PropTravelCost, 4); v != 4 {
		t.Errorf("cost@4 = %d, want 4", v)
	}
	if v, _ := e.Props.ValueAt(PropTravelCost, 5); v != 3 {
		t.Errorf("cost@5 = %d, want 3", v)
	}
	if TransitVertexName(0) != "A" || TransitVertexName(4) != "E" || TransitVertexName(9) != "?" {
		t.Errorf("vertex names wrong")
	}
}
