package tgraph

import (
	"bytes"
	"strings"
	"testing"

	ival "graphite/internal/interval"
)

func TestBinaryRoundTrip(t *testing.T) {
	g := TransitExample()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("size mismatch: %v vs %v", g2, g)
	}
	for i := range g.Vertices() {
		id := g.Vertices()[i].ID
		if g2.Vertex(id) == nil || g2.Vertex(id).Lifespan != g.Vertex(id).Lifespan {
			t.Fatalf("vertex %d mismatch", id)
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		e1 := g.Edge(i)
		var e2 *Edge
		for j := 0; j < g2.NumEdges(); j++ {
			if g2.Edge(j).ID == e1.ID {
				e2 = g2.Edge(j)
			}
		}
		if e2 == nil || e2.Lifespan != e1.Lifespan || e2.Src != e1.Src || e2.Dst != e1.Dst {
			t.Fatalf("edge %d mismatch", e1.ID)
		}
		for _, label := range []string{PropTravelTime, PropTravelCost} {
			w1 := e1.Props.Entries(label)
			w2 := e2.Props.Entries(label)
			if len(w1) != len(w2) {
				t.Fatalf("edge %d %s entries mismatch", e1.ID, label)
			}
			for k := range w1 {
				if w1[k] != w2[k] {
					t.Fatalf("edge %d %s entry %d: %v vs %v", e1.ID, label, k, w1[k], w2[k])
				}
			}
		}
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	g := TransitExample()
	var txt, bin bytes.Buffer
	if err := Write(&txt, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= txt.Len() {
		t.Errorf("binary %dB should beat text %dB", bin.Len(), txt.Len())
	}
}

func TestBinaryFiles(t *testing.T) {
	g := TransitExample()
	path := t.TempDir() + "/g.bin"
	if err := WriteBinaryFile(path, g); err != nil {
		t.Fatalf("WriteBinaryFile: %v", err)
	}
	g2, err := ReadBinaryFile(path)
	if err != nil {
		t.Fatalf("ReadBinaryFile: %v", err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("file round trip mismatch")
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	// Wrong magic.
	if _, err := ReadBinary(strings.NewReader("NOPE!\nxxxx")); err == nil {
		t.Errorf("bad magic must fail")
	}
	// Truncations at every prefix of a valid stream must error, not panic.
	g := TransitExample()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{7, 9, 15, len(full) / 2, len(full) - 3} {
		if cut >= len(full) {
			continue
		}
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d must fail", cut)
		}
	}
	// A graph violating constraints in the payload is rejected by Build.
	b := NewBuilder(1, 0)
	b.AddVertex(1, ival.New(0, 5))
	small := b.MustBuild()
	var sb bytes.Buffer
	if err := WriteBinary(&sb, small); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBinary(&sb); err != nil {
		t.Errorf("minimal graph should round trip: %v", err)
	}
}

func TestBinaryUnboundedIntervals(t *testing.T) {
	b := NewBuilder(2, 1)
	b.AddVertex(1, ival.Universe)
	b.AddVertex(2, ival.Universe)
	b.AddEdge(1, 1, 2, ival.From(7))
	b.SetEdgeProp(1, "w", ival.From(9), -42)
	g := b.MustBuild()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Edge(0).Lifespan.IsUnbounded() {
		t.Errorf("unbounded lifespan lost")
	}
	if v, ok := g2.Edge(0).Props.ValueAt("w", 100); !ok || v != -42 {
		t.Errorf("negative property value lost: %d %v", v, ok)
	}
}
