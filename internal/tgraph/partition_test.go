package tgraph

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// transitAssign is a deliberately uneven 3-way cut of the 6-vertex transit
// fixture so every shard has both owned and boundary vertices.
var transitAssign = []int32{0, 1, 2, 0, 1, 2}

func TestPartitionMetaRoundTrip(t *testing.T) {
	for _, m := range []*PartitionMeta{
		{Shard: 1, Shards: 3, Vertices: 6, Edges: 9, Assign: transitAssign},
		{Shard: -1, Shards: 3, Vertices: 6, Edges: 9, Assign: transitAssign},
		{Shard: 0, Shards: 1, Vertices: 0, Edges: 0, Assign: []int32{}},
	} {
		got, err := DecodePartitionMeta(EncodePartitionMeta(m))
		if err != nil {
			t.Fatalf("round trip %+v: %v", m, err)
		}
		if got.Shard != m.Shard || got.Shards != m.Shards || got.Vertices != m.Vertices || got.Edges != m.Edges {
			t.Errorf("round trip: got %+v, want %+v", got, m)
		}
		for i := range m.Assign {
			if got.Assign[i] != m.Assign[i] {
				t.Errorf("assign[%d] = %d, want %d", i, got.Assign[i], m.Assign[i])
			}
		}
	}
}

func TestPartitionMetaTorture(t *testing.T) {
	good := EncodePartitionMeta(&PartitionMeta{Shard: 1, Shards: 3, Vertices: 6, Edges: 9, Assign: transitAssign})
	cases := map[string][]byte{
		"nil":          nil,
		"bad magic":    append([]byte("NOPE99\n"), good[7:]...),
		"truncated":    good[:len(good)-3],
		"trailing":     append(append([]byte{}, good...), 0xff),
		"plain extra":  []byte("some other subsystem's payload"),
		"shard of 0":   EncodePartitionMeta(&PartitionMeta{Shard: 0, Shards: 0, Vertices: 0, Edges: 0}),
		"shard too hi": EncodePartitionMeta(&PartitionMeta{Shard: 5, Shards: 3, Vertices: 0, Edges: 0}),
		"assign range": EncodePartitionMeta(&PartitionMeta{Shard: 0, Shards: 2, Vertices: 1, Edges: 0, Assign: []int32{7}}),
	}
	for name, blob := range cases {
		if _, err := DecodePartitionMeta(blob); !errors.Is(err, ErrPartitionMeta) {
			t.Errorf("%s: err = %v, want ErrPartitionMeta", name, err)
		}
	}
}

// TestExtractPartitionStructure checks the partition invariants the cluster
// relies on: full vertex set in original order, owned vertices with exact
// adjacency, edge order a subsequence of the original, inherited horizon.
func TestExtractPartitionStructure(t *testing.T) {
	g := TransitExample()
	for shard := 0; shard < 3; shard++ {
		pg, err := ExtractPartition(g, transitAssign, shard)
		if err != nil {
			t.Fatalf("shard %d: %v", shard, err)
		}
		if pg.NumVertices() != g.NumVertices() {
			t.Fatalf("shard %d: |V| = %d, want %d (partitions keep every vertex)",
				shard, pg.NumVertices(), g.NumVertices())
		}
		for i := range g.Vertices() {
			a, b := g.VertexAt(i), pg.VertexAt(i)
			if a.ID != b.ID || a.Lifespan != b.Lifespan {
				t.Fatalf("shard %d vertex %d: %v != %v", shard, i, b, a)
			}
		}
		if pg.Horizon() != g.Horizon() {
			t.Errorf("shard %d: horizon %v, want inherited %v", shard, pg.Horizon(), g.Horizon())
		}
		if pg.Lifespan() != g.Lifespan() {
			t.Errorf("shard %d: lifespan %v, want %v", shard, pg.Lifespan(), g.Lifespan())
		}
		// Every kept edge touches the shard; edge IDs appear in original
		// relative order.
		lastID := EdgeID(-1 << 62)
		for i := range pg.Edges() {
			e := pg.Edge(i)
			if transitAssign[pg.SrcIndex(i)] != int32(shard) && transitAssign[pg.DstIndex(i)] != int32(shard) {
				t.Errorf("shard %d keeps foreign edge %d", shard, e.ID)
			}
			if e.ID <= lastID {
				t.Errorf("shard %d: edge order not preserved at %d", shard, e.ID)
			}
			lastID = e.ID
		}
		// Owned vertices keep their complete adjacency, in order.
		for v := 0; v < g.NumVertices(); v++ {
			if transitAssign[v] != int32(shard) {
				continue
			}
			for dir, lists := range [][2][]int32{{g.OutEdges(v), pg.OutEdges(v)}, {g.InEdges(v), pg.InEdges(v)}} {
				full, part := lists[0], lists[1]
				if len(full) != len(part) {
					t.Fatalf("shard %d vertex %d dir %d: %d edges, want %d", shard, v, dir, len(part), len(full))
				}
				for j := range full {
					if g.Edge(int(full[j])).ID != pg.Edge(int(part[j])).ID {
						t.Errorf("shard %d vertex %d dir %d: adjacency order differs at %d", shard, v, dir, j)
					}
				}
			}
		}
	}
	if _, err := ExtractPartition(g, transitAssign[:3], 0); !errors.Is(err, ErrPartitionMismatch) {
		t.Errorf("short assignment: err = %v, want ErrPartitionMismatch", err)
	}
}

func TestPartitionFileRoundTrip(t *testing.T) {
	g := TransitExample()
	dir := t.TempDir()
	pg, err := ExtractPartition(g, transitAssign, 1)
	if err != nil {
		t.Fatal(err)
	}
	meta := &PartitionMeta{Shard: 1, Shards: 3, Vertices: g.NumVertices(), Edges: g.NumEdges(), Assign: transitAssign}
	path := filepath.Join(dir, PartitionFileName(1))
	if err := WritePartitionFile(path, pg, meta); err != nil {
		t.Fatal(err)
	}
	m, got, err := OpenPartition(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := Equal(pg, m.Graph); err != nil {
		t.Fatalf("mapped partition differs: %v", err)
	}
	if got.Shard != 1 || got.Shards != 3 || got.Vertices != 6 {
		t.Fatalf("meta round trip: %+v", got)
	}
	if m.Horizon() != g.Horizon() {
		t.Errorf("mapped horizon %v, want %v (stored verbatim)", m.Horizon(), g.Horizon())
	}
	if m.Size() <= 0 {
		t.Errorf("mapped Size() = %d, want > 0", m.Size())
	}

	// Torture: a flipped byte inside the file fails the CRC pass.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte{}, data...)
	bad[len(bad)/2] ^= 0x40
	badPath := filepath.Join(dir, "flipped.gsn")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenPartition(badPath); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Errorf("bit flip: err = %v, want ErrSnapshotCorrupt", err)
	}

	// Torture: truncation fails structurally.
	truncPath := filepath.Join(dir, "trunc.gsn")
	if err := os.WriteFile(truncPath, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenPartition(truncPath); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Errorf("truncation: err = %v, want ErrSnapshotCorrupt", err)
	}

	// Torture: a plain snapshot with no partition meta is rejected.
	plainPath := filepath.Join(dir, "plain.gsn")
	if err := WriteSnapshotFile(plainPath, g); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenPartition(plainPath); !errors.Is(err, ErrPartitionMeta) {
		t.Errorf("plain snapshot: err = %v, want ErrPartitionMeta", err)
	}

	// Torture: meta |V| disagreeing with the snapshot is a mismatch.
	lying := &PartitionMeta{Shard: 1, Shards: 3, Vertices: 2, Edges: 1, Assign: []int32{1, 0}}
	liePath := filepath.Join(dir, "lie.gsn")
	if err := WritePartitionFile(liePath, pg, lying); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenPartition(liePath); !errors.Is(err, ErrPartitionMismatch) {
		t.Errorf("lying meta: err = %v, want ErrPartitionMismatch", err)
	}
}
