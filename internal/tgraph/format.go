package tgraph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	ival "graphite/internal/interval"
)

// Snapshot format ("GSNAP", extension .gsn): a sectioned, offset-indexed,
// mmap-friendly layout for immutable temporal graphs.
//
//	header   : magic "GSNAP\n" | u16 version | u32 section count | u32 dir CRC
//	directory: per section  u32 id | u32 CRC32(payload) | u64 offset | u64 length
//	sections : 8-byte aligned payloads, zero-padded between
//
// Fixed-width integers are little-endian. The entity and property sections
// are delta-compressed varint streams; the adjacency sections are an
// interval-CSR (offset array + edge-index array) and the endpoint/index
// sections are plain int32 arrays, all of which OpenMapped aliases directly
// out of the mapping on little-endian hosts so pages are only faulted in
// when an algorithm touches them. The directory CRC is always verified;
// section CRCs are verified by OpenMapped and skipped by OpenMappedTrusted.
//
// Versioning rule: readers accept exactly the versions they know; a larger
// version yields ErrSnapshotVersion, never a partial parse. Any structural
// inconsistency — truncation, CRC mismatch, out-of-range index, invalid
// lifespan — yields ErrSnapshotCorrupt.
const snapshotMagic = "GSNAP\n"

// SnapshotVersion is the current on-disk snapshot format version.
const SnapshotVersion = 1

const (
	snapHeaderLen   = 16
	snapDirEntryLen = 24
	snapMaxSections = 64
)

// Section identifiers, in file order.
const (
	secMeta   uint32 = 1  // counts, lifespan hull, horizon
	secVerts  uint32 = 2  // vertex ids + lifespans (delta varints)
	secEdges  uint32 = 3  // edge ids + lifespans (delta varints)
	secEnds   uint32 = 4  // srcIdx[ne] ++ dstIdx[ne], int32
	secOut    uint32 = 5  // out-CSR: offsets u32[nv+1] ++ edge indices int32[ne]
	secIn     uint32 = 6  // in-CSR: same shape
	secVIndex uint32 = 7  // vertex indices sorted by id, int32[nv]
	secVProps uint32 = 8  // vertex properties (label dict + delta varints)
	secEProps uint32 = 9  // edge properties
	secExtra  uint32 = 10 // opaque application payload (optional)
)

var (
	// ErrUnknownFormat reports a file whose leading bytes match none of the
	// text, binary or snapshot graph encodings.
	ErrUnknownFormat = errors.New("tgraph: unknown graph format")
	// ErrSnapshotCorrupt reports a snapshot file that is truncated,
	// fails a CRC, or is structurally inconsistent.
	ErrSnapshotCorrupt = errors.New("tgraph: corrupt snapshot")
	// ErrSnapshotVersion reports a snapshot written by a newer format
	// version than this reader understands.
	ErrSnapshotVersion = errors.New("tgraph: unsupported snapshot version")
)

// timeEnc encodes a time-point that may be Infinity as a uvarint: 0 is
// Infinity, any finite t is t+1.
func timeEnc(t ival.Time) uint64 {
	if t == ival.Infinity {
		return 0
	}
	return uint64(t) + 1
}

// appendLifespan appends an interval as (zigzag start delta, duration)
// where duration 0 means unbounded.
func appendLifespan(buf []byte, iv ival.Interval, prevStart ival.Time) []byte {
	buf = binary.AppendVarint(buf, iv.Start-prevStart)
	if iv.End == ival.Infinity {
		return binary.AppendUvarint(buf, 0)
	}
	return binary.AppendUvarint(buf, uint64(iv.End-iv.Start))
}

func align8(n int) int { return (n + 7) &^ 7 }

// EncodeSnapshot serializes the graph (plus an optional opaque extra
// payload) into the snapshot format. The encoding is deterministic: equal
// graphs produce byte-identical snapshots.
func EncodeSnapshot(g *Graph, extra []byte) []byte {
	type section struct {
		id   uint32
		data []byte
	}
	secs := []section{
		{secMeta, encodeSnapMeta(g)},
		{secVerts, encodeSnapVertices(g)},
		{secEdges, encodeSnapEdges(g)},
		{secEnds, encodeSnapEnds(g)},
		{secOut, encodeSnapCSR(g.out, g.NumEdges())},
		{secIn, encodeSnapCSR(g.in, g.NumEdges())},
		{secVIndex, encodeSnapVIndex(g)},
		{secVProps, encodeSnapProps(len(g.vertices), func(i int) Props { return g.vertices[i].Props })},
		{secEProps, encodeSnapProps(len(g.edges), func(i int) Props { return g.edges[i].Props })},
	}
	if extra != nil {
		secs = append(secs, section{secExtra, extra})
	}

	dirEnd := snapHeaderLen + snapDirEntryLen*len(secs)
	offset := align8(dirEnd)
	total := offset
	offsets := make([]int, len(secs))
	for i, s := range secs {
		offsets[i] = total
		total = align8(total + len(s.data))
	}
	// The final section needs no tail padding.
	total = offsets[len(secs)-1] + len(secs[len(secs)-1].data)

	out := make([]byte, total)
	copy(out, snapshotMagic)
	binary.LittleEndian.PutUint16(out[6:], SnapshotVersion)
	binary.LittleEndian.PutUint32(out[8:], uint32(len(secs)))
	for i, s := range secs {
		e := out[snapHeaderLen+snapDirEntryLen*i:]
		binary.LittleEndian.PutUint32(e, s.id)
		binary.LittleEndian.PutUint32(e[4:], crc32.ChecksumIEEE(s.data))
		binary.LittleEndian.PutUint64(e[8:], uint64(offsets[i]))
		binary.LittleEndian.PutUint64(e[16:], uint64(len(s.data)))
		copy(out[offsets[i]:], s.data)
	}
	crc := crc32.ChecksumIEEE(out[:12])
	crc = crc32.Update(crc, crc32.IEEETable, out[snapHeaderLen:dirEnd])
	binary.LittleEndian.PutUint32(out[12:], crc)
	return out
}

func encodeSnapMeta(g *Graph) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(g.vertices)))
	buf = binary.AppendUvarint(buf, uint64(len(g.edges)))
	buf = binary.AppendUvarint(buf, uint64(g.lifespan.Start))
	buf = binary.AppendUvarint(buf, timeEnc(g.lifespan.End))
	buf = binary.AppendUvarint(buf, uint64(g.Horizon()))
	return buf
}

func encodeSnapVertices(g *Graph) []byte {
	var buf []byte
	prevID, prevStart := int64(0), ival.Time(0)
	for i := range g.vertices {
		v := &g.vertices[i]
		buf = binary.AppendVarint(buf, int64(v.ID)-prevID)
		buf = appendLifespan(buf, v.Lifespan, prevStart)
		prevID, prevStart = int64(v.ID), v.Lifespan.Start
	}
	return buf
}

func encodeSnapEdges(g *Graph) []byte {
	var buf []byte
	prevID, prevStart := int64(0), ival.Time(0)
	for i := range g.edges {
		e := &g.edges[i]
		buf = binary.AppendVarint(buf, int64(e.ID)-prevID)
		buf = appendLifespan(buf, e.Lifespan, prevStart)
		prevID, prevStart = int64(e.ID), e.Lifespan.Start
	}
	return buf
}

func encodeSnapEnds(g *Graph) []byte {
	buf := make([]byte, 8*len(g.edges))
	for i, s := range g.srcIdx {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(s))
	}
	half := 4 * len(g.edges)
	for i, d := range g.dstIdx {
		binary.LittleEndian.PutUint32(buf[half+4*i:], uint32(d))
	}
	return buf
}

func encodeSnapCSR(rows [][]int32, ne int) []byte {
	nv := len(rows)
	buf := make([]byte, 4*(nv+1)+4*ne)
	off := uint32(0)
	for i, row := range rows {
		binary.LittleEndian.PutUint32(buf[4*i:], off)
		off += uint32(len(row))
	}
	binary.LittleEndian.PutUint32(buf[4*nv:], off)
	k := 4 * (nv + 1)
	for _, row := range rows {
		for _, ei := range row {
			binary.LittleEndian.PutUint32(buf[k:], uint32(ei))
			k += 4
		}
	}
	return buf
}

func encodeSnapVIndex(g *Graph) []byte {
	perm := make([]int32, len(g.vertices))
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(a, b int) bool {
		return g.vertices[perm[a]].ID < g.vertices[perm[b]].ID
	})
	buf := make([]byte, 4*len(perm))
	for i, p := range perm {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(p))
	}
	return buf
}

// snapPropChunkOwners is the number of property owners per chunk in the
// props sections. Chunks are independently decodable — each carries its own
// byte length, owner count and entry count in the chunk directory, and the
// owner-index delta base restarts at every chunk boundary — which is what
// lets the decoder rebuild property maps on all cores at once and presize
// each chunk's entry slab exactly.
const snapPropChunkOwners = 2048

func encodeSnapProps(n int, props func(i int) Props) []byte {
	// Global label dictionary, sorted for determinism.
	seen := map[string]struct{}{}
	for i := 0; i < n; i++ {
		for label := range props(i).All() {
			seen[label] = struct{}{}
		}
	}
	dict := make([]string, 0, len(seen))
	for label := range seen {
		dict = append(dict, label)
	}
	sort.Strings(dict)
	dictIdx := make(map[string]uint64, len(dict))
	buf := binary.AppendUvarint(nil, uint64(len(dict)))
	for i, label := range dict {
		dictIdx[label] = uint64(i)
		buf = binary.AppendUvarint(buf, uint64(len(label)))
		buf = append(buf, label...)
	}

	owners := 0
	for i := 0; i < n; i++ {
		if props(i).Len() > 0 {
			owners++
		}
	}
	buf = binary.AppendUvarint(buf, uint64(owners))

	// Owner records, split into chunks of snapPropChunkOwners: a directory
	// of (byte length, owner count, label-run count, entry count) rows
	// followed by the concatenated chunk payloads.
	type chunkMeta struct{ bytes, owners, runs, entries int }
	var (
		chunks     []chunkMeta
		payload    []byte
		cur        chunkMeta
		chunkStart int
	)
	flush := func() {
		if cur.owners == 0 {
			return
		}
		cur.bytes = len(payload) - chunkStart
		chunks = append(chunks, cur)
		cur = chunkMeta{}
		chunkStart = len(payload)
	}
	prev := -1
	for i := 0; i < n; i++ {
		p := props(i)
		if p.Len() == 0 {
			continue
		}
		payload = binary.AppendUvarint(payload, uint64(i-prev))
		prev = i
		payload = binary.AppendUvarint(payload, uint64(p.Len()))
		for label, entries := range p.All() {
			payload = binary.AppendUvarint(payload, dictIdx[label])
			payload = binary.AppendUvarint(payload, uint64(len(entries)))
			prevStart := ival.Time(0)
			for _, e := range entries {
				payload = appendLifespan(payload, e.Interval, prevStart)
				payload = binary.AppendVarint(payload, e.Value)
				prevStart = e.Interval.Start
			}
			cur.entries += len(entries)
		}
		cur.runs += p.Len()
		cur.owners++
		if cur.owners == snapPropChunkOwners {
			flush()
			prev = -1 // delta base restarts with the next chunk
		}
	}
	flush()

	buf = binary.AppendUvarint(buf, uint64(len(chunks)))
	for _, c := range chunks {
		buf = binary.AppendUvarint(buf, uint64(c.bytes))
		buf = binary.AppendUvarint(buf, uint64(c.owners))
		buf = binary.AppendUvarint(buf, uint64(c.runs))
		buf = binary.AppendUvarint(buf, uint64(c.entries))
	}
	return append(buf, payload...)
}

// WriteSnapshot serializes the graph in the snapshot format.
func WriteSnapshot(w io.Writer, g *Graph) error {
	_, err := w.Write(EncodeSnapshot(g, nil))
	return err
}

// WriteSnapshotFile serializes the graph to a snapshot (.gsn) file.
func WriteSnapshotFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteSnapshot(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSnapshot parses a snapshot from a reader, verifying all CRCs. The
// returned graph owns its memory (nothing stays aliased to the input).
func ReadSnapshot(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("tgraph: snapshot read: %w", err)
	}
	g, _, err := decodeSnapshot(data, true)
	return g, err
}

// snapDec is a bounds-checked varint reader over one section's payload.
type snapDec struct {
	b   []byte
	off int
	sec string
	err error
}

func (d *snapDec) corrupt(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: section %s at byte %d: %s", ErrSnapshotCorrupt, d.sec, d.off, fmt.Sprintf(format, args...))
	}
}

func (d *snapDec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.corrupt("truncated or oversized uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *snapDec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.corrupt("truncated or oversized varint")
		return 0
	}
	d.off += n
	return v
}

// count reads a uvarint element count and rejects counts that could not
// possibly fit in the remaining bytes (each element needs >= min bytes).
func (d *snapDec) count(min int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if rem := len(d.b) - d.off; v > uint64(rem/min)+1 || v > math.MaxInt32 {
		d.corrupt("element count %d exceeds section size", v)
		return 0
	}
	return int(v)
}

// lifespan reads (start delta, duration) and validates the result.
func (d *snapDec) lifespan(prevStart ival.Time) ival.Interval {
	start := prevStart + d.varint()
	dur := d.uvarint()
	if d.err != nil {
		return ival.Empty
	}
	iv := ival.Interval{Start: start, End: ival.Infinity}
	if dur != 0 {
		if start < 0 || dur >= uint64(ival.Infinity)-uint64(start) {
			d.corrupt("interval [%d, +%d) overflows the time domain", start, dur)
			return ival.Empty
		}
		iv.End = start + ival.Time(dur)
	}
	if !iv.Valid() {
		d.corrupt("invalid lifespan %v", iv)
		return ival.Empty
	}
	return iv
}

func (d *snapDec) timePoint() ival.Time {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v == 0 {
		return ival.Infinity
	}
	if v-1 > uint64(math.MaxInt64) {
		d.corrupt("time-point %d out of range", v)
		return 0
	}
	return ival.Time(v - 1)
}

func (d *snapDec) finish() {
	if d.err == nil && d.off != len(d.b) {
		d.corrupt("%d trailing bytes", len(d.b)-d.off)
	}
}

// decodeSnapshot parses a complete snapshot image. Integer arrays are
// aliased into data on little-endian hosts, so the caller must keep data
// alive (and unmodified) for the life of the returned graph. The returned
// extra slice aliases data as well.
func decodeSnapshot(data []byte, verifyCRC bool) (*Graph, []byte, error) {
	fail := func(format string, args ...any) (*Graph, []byte, error) {
		return nil, nil, fmt.Errorf("%w: %s", ErrSnapshotCorrupt, fmt.Sprintf(format, args...))
	}
	if len(data) < snapHeaderLen {
		return fail("file is %d bytes, want at least a %d-byte header", len(data), snapHeaderLen)
	}
	if string(data[:len(snapshotMagic)]) != snapshotMagic {
		return nil, nil, fmt.Errorf("%w: bad magic %q", ErrUnknownFormat, data[:len(snapshotMagic)])
	}
	version := binary.LittleEndian.Uint16(data[6:])
	if version == 0 || version > SnapshotVersion {
		return nil, nil, fmt.Errorf("%w: file version %d, reader supports <= %d", ErrSnapshotVersion, version, SnapshotVersion)
	}
	nsec := binary.LittleEndian.Uint32(data[8:])
	if nsec == 0 || nsec > snapMaxSections {
		return fail("section count %d out of range", nsec)
	}
	dirEnd := snapHeaderLen + snapDirEntryLen*int(nsec)
	if dirEnd > len(data) {
		return fail("directory truncated: need %d bytes, have %d", dirEnd, len(data))
	}
	crc := crc32.ChecksumIEEE(data[:12])
	crc = crc32.Update(crc, crc32.IEEETable, data[snapHeaderLen:dirEnd])
	if got := binary.LittleEndian.Uint32(data[12:]); got != crc {
		return fail("directory CRC mismatch: file says %#x, computed %#x", got, crc)
	}

	type span struct {
		payload []byte
		crc     uint32
	}
	sections := make(map[uint32]span, nsec)
	prevID := uint32(0)
	for i := 0; i < int(nsec); i++ {
		e := data[snapHeaderLen+snapDirEntryLen*i:]
		id := binary.LittleEndian.Uint32(e)
		secCRC := binary.LittleEndian.Uint32(e[4:])
		off := binary.LittleEndian.Uint64(e[8:])
		length := binary.LittleEndian.Uint64(e[16:])
		if id <= prevID {
			return fail("section ids not strictly ascending (%d after %d)", id, prevID)
		}
		prevID = id
		if off%8 != 0 || off < uint64(dirEnd) || off > uint64(len(data)) || length > uint64(len(data))-off {
			return fail("section %d spans [%d, %d+%d) outside the %d-byte file", id, off, off, length, len(data))
		}
		sections[id] = span{payload: data[off : off+length], crc: secCRC}
	}
	section := func(id uint32) ([]byte, error) {
		s, ok := sections[id]
		if !ok {
			return nil, fmt.Errorf("%w: required section %d missing", ErrSnapshotCorrupt, id)
		}
		if verifyCRC {
			if got := crc32.ChecksumIEEE(s.payload); got != s.crc {
				return nil, fmt.Errorf("%w: section %d CRC mismatch: directory says %#x, computed %#x", ErrSnapshotCorrupt, id, s.crc, got)
			}
		}
		return s.payload, nil
	}

	metaSec, err := section(secMeta)
	if err != nil {
		return nil, nil, err
	}
	md := &snapDec{b: metaSec, sec: "meta"}
	nv64, ne64 := md.uvarint(), md.uvarint()
	lsStart := md.uvarint()
	lsEnd := md.timePoint()
	horizon := md.uvarint()
	md.finish()
	if md.err != nil {
		return nil, nil, md.err
	}
	if nv64 > math.MaxInt32 || ne64 > math.MaxInt32 || lsStart > uint64(math.MaxInt64) || horizon > uint64(math.MaxInt64) {
		return fail("meta counts out of range (|V|=%d |E|=%d)", nv64, ne64)
	}
	nv, ne := int(nv64), int(ne64)
	lifespan := ival.Interval{Start: ival.Time(lsStart), End: lsEnd}
	if nv > 0 && !lifespan.Valid() {
		return fail("invalid lifespan hull %v", lifespan)
	}

	vertsSec, err := section(secVerts)
	if err != nil {
		return nil, nil, err
	}
	edgesSec, err := section(secEdges)
	if err != nil {
		return nil, nil, err
	}
	endsSec, err := section(secEnds)
	if err != nil {
		return nil, nil, err
	}
	outSec, err := section(secOut)
	if err != nil {
		return nil, nil, err
	}
	inSec, err := section(secIn)
	if err != nil {
		return nil, nil, err
	}
	vindexSec, err := section(secVIndex)
	if err != nil {
		return nil, nil, err
	}
	vpropsSec, err := section(secVProps)
	if err != nil {
		return nil, nil, err
	}
	epropsSec, err := section(secEProps)
	if err != nil {
		return nil, nil, err
	}
	var extra []byte
	if s, ok := sections[secExtra]; ok {
		if verifyCRC {
			if got := crc32.ChecksumIEEE(s.payload); got != s.crc {
				return fail("section %d CRC mismatch", secExtra)
			}
		}
		extra = s.payload
	}

	// Fixed-width sections must have exactly the size the meta demands;
	// this also bounds every allocation below by the file size.
	if len(endsSec) != 8*ne {
		return fail("endpoint section is %d bytes, want %d for |E|=%d", len(endsSec), 8*ne, ne)
	}
	csrLen := 4*(nv+1) + 4*ne
	if len(outSec) != csrLen || len(inSec) != csrLen {
		return fail("CSR sections are %d/%d bytes, want %d", len(outSec), len(inSec), csrLen)
	}
	if len(vindexSec) != 4*nv {
		return fail("vindex section is %d bytes, want %d for |V|=%d", len(vindexSec), 4*nv, nv)
	}
	if minRec := 2; nv > len(vertsSec)/minRec+1 || ne > len(edgesSec)/minRec+1 {
		return fail("entity counts exceed stream sizes")
	}

	corruptf := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrSnapshotCorrupt, fmt.Sprintf(format, args...))
	}

	// Entity streams: the two delta-varint scans are independent of each
	// other, so they run concurrently.
	vertices := make([]Vertex, nv)
	edges := make([]Edge, ne)
	var wg sync.WaitGroup
	var vErr, eErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		vd := &snapDec{b: vertsSec, sec: "vertices"}
		prevVID, prevStart := int64(0), ival.Time(0)
		for i := range vertices {
			id := prevVID + vd.varint()
			life := vd.lifespan(prevStart)
			if vd.err != nil {
				vErr = vd.err
				return
			}
			vertices[i] = Vertex{ID: VertexID(id), Lifespan: life}
			prevVID, prevStart = id, life.Start
		}
		vd.finish()
		vErr = vd.err
	}()
	go func() {
		defer wg.Done()
		ed := &snapDec{b: edgesSec, sec: "edges"}
		prevEID, prevStart := int64(0), ival.Time(0)
		for i := range edges {
			id := prevEID + ed.varint()
			life := ed.lifespan(prevStart)
			if ed.err != nil {
				eErr = ed.err
				return
			}
			edges[i] = Edge{ID: EdgeID(id), Lifespan: life}
			prevEID, prevStart = id, life.Start
		}
		ed.finish()
		eErr = ed.err
	}()
	wg.Wait()
	if vErr != nil {
		return nil, nil, vErr
	}
	if eErr != nil {
		return nil, nil, eErr
	}

	// Everything below depends only on the decoded entity streams, and each
	// task touches disjoint state (endpoints fill Src/Dst, the props tasks
	// fill Props), so the six tasks run concurrently; the props tasks fan
	// out further across their chunks.
	srcIdx := asInt32s(endsSec[:4*ne], ne)
	dstIdx := asInt32s(endsSec[4*ne:], ne)
	var (
		out, in [][]int32
		vsorted []int32
		errs    [6]error
	)
	run := func(slot int, f func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[slot] = f()
		}()
	}
	// Endpoints: referential integrity of edges (Constraint 2).
	run(0, func() error {
		for i := range edges {
			s, d := srcIdx[i], dstIdx[i]
			if s < 0 || int(s) >= nv || d < 0 || int(d) >= nv {
				return corruptf("edge %d endpoints (%d, %d) out of range for |V|=%d", i, s, d, nv)
			}
			if !vertices[s].Lifespan.ContainsInterval(edges[i].Lifespan) || !vertices[d].Lifespan.ContainsInterval(edges[i].Lifespan) {
				return corruptf("edge %d lifespan %v escapes its endpoints' lifespans", i, edges[i].Lifespan)
			}
			edges[i].Src = vertices[s].ID
			edges[i].Dst = vertices[d].ID
		}
		return nil
	})
	run(1, func() (err error) {
		out, err = decodeSnapCSR(outSec, nv, ne, "out")
		return err
	})
	run(2, func() (err error) {
		in, err = decodeSnapCSR(inSec, nv, ne, "in")
		return err
	})
	// Sorted-by-id index: nv strictly ascending ids over in-range indices
	// is necessarily a permutation, and proves id uniqueness.
	run(3, func() error {
		vsorted = asInt32s(vindexSec, nv)
		for k, vi := range vsorted {
			if vi < 0 || int(vi) >= nv {
				return corruptf("vindex entry %d out of range", vi)
			}
			if k > 0 && vertices[vsorted[k-1]].ID >= vertices[vi].ID {
				return corruptf("vindex not strictly ascending by vertex id at position %d", k)
			}
		}
		return nil
	})
	run(4, func() error {
		return decodeSnapProps(vpropsSec, "vprops", nv, func(i int, p Props) error {
			v := &vertices[i]
			for _, entries := range p.All() {
				for _, e := range entries {
					if !v.Lifespan.ContainsInterval(e.Interval) {
						return fmt.Errorf("%w: vertex %d property interval %v escapes lifespan %v", ErrSnapshotCorrupt, v.ID, e.Interval, v.Lifespan)
					}
				}
			}
			v.Props = p
			return nil
		})
	})
	run(5, func() error {
		return decodeSnapProps(epropsSec, "eprops", ne, func(i int, p Props) error {
			e := &edges[i]
			for _, entries := range p.All() {
				for _, pe := range entries {
					if !e.Lifespan.ContainsInterval(pe.Interval) {
						return fmt.Errorf("%w: edge %d property interval %v escapes lifespan %v", ErrSnapshotCorrupt, e.ID, pe.Interval, e.Lifespan)
					}
				}
			}
			e.Props = p
			return nil
		})
	})
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}

	g := &Graph{
		vertices: vertices,
		edges:    edges,
		vsorted:  vsorted,
		out:      out,
		in:       in,
		srcIdx:   srcIdx,
		dstIdx:   dstIdx,
		lifespan: lifespan,
		horizon:  ival.Time(horizon),
	}
	return g, extra, nil
}

// decodeSnapCSR reconstructs adjacency rows as subslices of the shared
// edge-index array — no per-row allocation.
func decodeSnapCSR(sec []byte, nv, ne int, name string) ([][]int32, error) {
	offsets := asUint32s(sec[:4*(nv+1)], nv+1)
	targets := asInt32s(sec[4*(nv+1):], ne)
	if offsets[0] != 0 || offsets[nv] != uint32(ne) {
		return nil, fmt.Errorf("%w: %s-CSR offsets span [%d, %d], want [0, %d]", ErrSnapshotCorrupt, name, offsets[0], offsets[nv], ne)
	}
	for i := 0; i < nv; i++ {
		if offsets[i] > offsets[i+1] {
			return nil, fmt.Errorf("%w: %s-CSR offsets decrease at vertex %d", ErrSnapshotCorrupt, name, i)
		}
	}
	for _, ei := range targets {
		if ei < 0 || int(ei) >= ne {
			return nil, fmt.Errorf("%w: %s-CSR edge index %d out of range for |E|=%d", ErrSnapshotCorrupt, name, ei, ne)
		}
	}
	rows := make([][]int32, nv)
	for i := 0; i < nv; i++ {
		rows[i] = targets[offsets[i]:offsets[i+1]:offsets[i+1]]
	}
	return rows, nil
}

func decodeSnapProps(sec []byte, name string, n int, assign func(i int, p Props) error) error {
	d := &snapDec{b: sec, sec: name}
	ndict := d.count(1)
	dict := make([]string, 0, ndict)
	for i := 0; i < ndict && d.err == nil; i++ {
		l := d.uvarint()
		if d.err != nil {
			break
		}
		if l > uint64(len(d.b)-d.off) {
			d.corrupt("label length %d exceeds section", l)
			break
		}
		dict = append(dict, string(d.b[d.off:d.off+int(l)]))
		d.off += int(l)
		// A strictly ascending dictionary is what makes ascending label
		// indices per owner yield lexicographically sorted Props.
		if k := len(dict); k > 1 && dict[k-2] >= dict[k-1] {
			d.corrupt("label dictionary not strictly ascending at entry %d", k-1)
			break
		}
	}
	owners := d.count(2)
	if d.err == nil && owners > n {
		d.corrupt("%d property owners for %d entities", owners, n)
	}

	// Chunk directory: (byte length, owner count, label-run count, entry
	// count) per chunk. The shape checks here bound every allocation below
	// by the section size before any chunk payload is touched.
	nchunks := d.count(4)
	type chunkMeta struct {
		payload                      []byte
		bytes, owners, runs, entries int
	}
	chunks := make([]chunkMeta, 0, nchunks)
	var sumBytes, sumOwners uint64
	for i := 0; i < nchunks && d.err == nil; i++ {
		nb, no, nr, nent := d.uvarint(), d.uvarint(), d.uvarint(), d.uvarint()
		if d.err != nil {
			break
		}
		avail := uint64(len(d.b) - d.off)
		if sumBytes > avail || nb > avail-sumBytes {
			d.corrupt("chunk %d claims %d bytes beyond the section", i, nb)
			break
		}
		if no == 0 || no > nb/2+1 || nr > nb/2+1 || nent > nb/3+1 {
			d.corrupt("chunk %d shape (%d owners, %d runs, %d entries) impossible in %d bytes", i, no, nr, nent, nb)
			break
		}
		sumBytes += nb
		sumOwners += no
		if sumOwners > uint64(owners) {
			d.corrupt("chunk owner counts exceed the declared %d owners", owners)
			break
		}
		chunks = append(chunks, chunkMeta{bytes: int(nb), owners: int(no), runs: int(nr), entries: int(nent)})
	}
	if d.err == nil && sumOwners != uint64(owners) {
		d.corrupt("chunk owner counts sum to %d, want %d", sumOwners, owners)
	}
	if d.err == nil && sumBytes != uint64(len(d.b)-d.off) {
		d.corrupt("chunk byte lengths sum to %d, want %d", sumBytes, len(d.b)-d.off)
	}
	if d.err != nil {
		return d.err
	}
	off := d.off
	for i := range chunks {
		chunks[i].payload = d.b[off : off+chunks[i].bytes]
		off += chunks[i].bytes
	}

	// Decode chunks on all cores. Within a chunk, every entry, label and
	// per-label run header lands in one of three exactly-presized slabs,
	// and each owner's Props is a pair of subslices of those slabs — zero
	// per-owner allocations, which is what keeps a mapped open in the
	// milliseconds on prop-heavy graphs. Owner indices are validated
	// against [0, n) per chunk; cross-chunk ordering is checked after the
	// join.
	chunkFirst := make([]int, len(chunks))
	chunkLast := make([]int, len(chunks))
	decodeChunk := func(ci int) error {
		c := chunks[ci]
		cd := &snapDec{b: c.payload, sec: name}
		slab := make([]PropEntry, 0, c.entries)
		labelSlab := make([]string, 0, c.runs)
		runSlab := make([][]PropEntry, 0, c.runs)
		first, prev := -1, -1
		for o := 0; o < c.owners && cd.err == nil; o++ {
			delta := cd.uvarint()
			if cd.err != nil {
				break
			}
			if delta == 0 || delta > uint64(n) || prev+int(delta) >= n {
				cd.corrupt("owner index delta %d escapes [0, %d)", delta, n)
				break
			}
			idx := prev + int(delta)
			prev = idx
			if first < 0 {
				first = idx
			}
			nlabels := cd.count(2)
			if cd.err != nil {
				break
			}
			if nlabels == 0 {
				// The writer only emits owners that have properties.
				cd.corrupt("property owner %d with no labels", idx)
				break
			}
			lo := len(runSlab)
			prevLabel := -1
			for li := 0; li < nlabels && cd.err == nil; li++ {
				labelIdx := cd.uvarint()
				if cd.err != nil {
					break
				}
				if labelIdx >= uint64(len(dict)) || int(labelIdx) <= prevLabel {
					cd.corrupt("label index %d invalid (dict size %d, ascending required)", labelIdx, len(dict))
					break
				}
				prevLabel = int(labelIdx)
				nentries := cd.count(3)
				off := len(slab)
				prevStart := ival.Time(0)
				for k := 0; k < nentries && cd.err == nil; k++ {
					iv := cd.lifespan(prevStart)
					val := cd.varint()
					if cd.err != nil {
						break
					}
					if iv.Start < prevStart {
						cd.corrupt("property entries not sorted by start")
						break
					}
					slab = append(slab, PropEntry{Interval: iv, Value: val})
					prevStart = iv.Start
				}
				if cd.err == nil {
					end := len(slab)
					labelSlab = append(labelSlab, dict[labelIdx])
					runSlab = append(runSlab, slab[off:end:end])
				}
			}
			if cd.err == nil {
				hi := len(runSlab)
				p := Props{labels: labelSlab[lo:hi:hi], entries: runSlab[lo:hi:hi]}
				if err := assign(idx, p); err != nil {
					return err
				}
			}
		}
		cd.finish()
		if cd.err == nil && (len(slab) != c.entries || len(runSlab) != c.runs) {
			cd.corrupt("chunk decoded %d entries over %d runs, directory says %d over %d", len(slab), len(runSlab), c.entries, c.runs)
		}
		if cd.err != nil {
			return cd.err
		}
		chunkFirst[ci], chunkLast[ci] = first, prev
		return nil
	}

	errs := make([]error, len(chunks))
	if len(chunks) <= 1 {
		for ci := range chunks {
			errs[ci] = decodeChunk(ci)
		}
	} else {
		workers := runtime.GOMAXPROCS(0)
		if workers > len(chunks) {
			workers = len(chunks)
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					ci := int(next.Add(1)) - 1
					if ci >= len(chunks) {
						return
					}
					errs[ci] = decodeChunk(ci)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for ci := 1; ci < len(chunks); ci++ {
		if chunkFirst[ci] <= chunkLast[ci-1] {
			return fmt.Errorf("%w: section %s: chunk %d owner indices overlap chunk %d", ErrSnapshotCorrupt, name, ci, ci-1)
		}
	}
	return nil
}

// Format identifies an on-disk graph encoding.
type Format int

// The encodings ReadAnyFile understands.
const (
	FormatUnknown Format = iota
	FormatText
	FormatBinary
	FormatSnapshot
)

func (f Format) String() string {
	switch f {
	case FormatText:
		return "text"
	case FormatBinary:
		return "binary"
	case FormatSnapshot:
		return "snapshot"
	}
	return "unknown"
}

// SniffFormat identifies a graph file's encoding from its leading bytes
// (six suffice). Text files are recognized by starting with a comment,
// whitespace, or a V/E record; anything else is FormatUnknown.
func SniffFormat(head []byte) Format {
	switch {
	case bytes.HasPrefix(head, []byte(snapshotMagic)):
		return FormatSnapshot
	case bytes.HasPrefix(head, []byte(binaryMagic)):
		return FormatBinary
	}
	trimmed := bytes.TrimLeft(head, " \t\r\n")
	if len(trimmed) == 0 || trimmed[0] == '#' || trimmed[0] == 'V' || trimmed[0] == 'E' {
		return FormatText
	}
	return FormatUnknown
}
