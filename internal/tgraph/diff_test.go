package tgraph_test

// Differential identity: the same algorithm over the same logical graph
// loaded through different formats (parsed text vs memory-mapped
// snapshot) must produce bit-identical results. This is the contract that
// lets deployments switch a serving fleet to mapped snapshots without a
// re-validation campaign.

import (
	"path/filepath"
	"reflect"
	"testing"

	"graphite/internal/algorithms"
	"graphite/internal/core"
	"graphite/internal/tgraph"
)

func TestMappedAlgorithmIdentity(t *testing.T) {
	orig := tgraph.TransitExample()
	dir := t.TempDir()
	textPath := filepath.Join(dir, "g.tg")
	snapPath := filepath.Join(dir, "g.gsn")
	if err := tgraph.WriteFile(textPath, orig); err != nil {
		t.Fatal(err)
	}
	if err := tgraph.WriteSnapshotFile(snapPath, orig); err != nil {
		t.Fatal(err)
	}
	parsed, err := tgraph.ReadFile(textPath)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := tgraph.OpenMapped(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()

	runs := map[string]func(g *tgraph.Graph) (*core.Result, error){
		"EAT": func(g *tgraph.Graph) (*core.Result, error) {
			return algorithms.RunEAT(g, 0, 0, 4)
		},
		"SSSP": func(g *tgraph.Graph) (*core.Result, error) {
			return algorithms.RunSSSP(g, 0, 0, 4)
		},
		"PR": func(g *tgraph.Graph) (*core.Result, error) {
			return algorithms.RunPageRank(g, 10, 4)
		},
	}
	for name, run := range runs {
		t.Run(name, func(t *testing.T) {
			rText, err := run(parsed)
			if err != nil {
				t.Fatalf("over parsed text graph: %v", err)
			}
			rMapped, err := run(mapped.Graph)
			if err != nil {
				t.Fatalf("over mapped graph: %v", err)
			}
			for v := 0; v < parsed.NumVertices(); v++ {
				a, b := rText.State(v).Parts(), rMapped.State(v).Parts()
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("vertex %d state diverges between text and mapped runs:\n%v\nvs\n%v", v, a, b)
				}
			}
		})
	}
}
