package tgraph

import "fmt"

// Equal reports whether two graphs are structurally identical: the same
// vertex and edge tables (ids, lifespans, properties) in the same dense
// index order, the same adjacency, lifespan hull and horizon. It returns
// nil when equal, or a description of the first difference — which makes
// it the oracle for round-trip and differential tests. Index structures
// (hash map vs sorted permutation) are representation details and are not
// compared; nil and empty adjacency rows are considered equal.
func Equal(a, b *Graph) error {
	if a.NumVertices() != b.NumVertices() {
		return fmt.Errorf("|V| %d != %d", a.NumVertices(), b.NumVertices())
	}
	if a.NumEdges() != b.NumEdges() {
		return fmt.Errorf("|E| %d != %d", a.NumEdges(), b.NumEdges())
	}
	if a.lifespan != b.lifespan {
		return fmt.Errorf("lifespan %v != %v", a.lifespan, b.lifespan)
	}
	if a.horizon != b.horizon {
		return fmt.Errorf("horizon %d != %d", a.horizon, b.horizon)
	}
	for i := range a.vertices {
		av, bv := &a.vertices[i], &b.vertices[i]
		if av.ID != bv.ID || av.Lifespan != bv.Lifespan {
			return fmt.Errorf("vertex %d: (%d, %v) != (%d, %v)", i, av.ID, av.Lifespan, bv.ID, bv.Lifespan)
		}
		if err := propsEqual(av.Props, bv.Props); err != nil {
			return fmt.Errorf("vertex %d (id %d): %w", i, av.ID, err)
		}
	}
	for i := range a.edges {
		ae, be := &a.edges[i], &b.edges[i]
		if ae.ID != be.ID || ae.Src != be.Src || ae.Dst != be.Dst || ae.Lifespan != be.Lifespan {
			return fmt.Errorf("edge %d: (%d, %d->%d, %v) != (%d, %d->%d, %v)",
				i, ae.ID, ae.Src, ae.Dst, ae.Lifespan, be.ID, be.Src, be.Dst, be.Lifespan)
		}
		if a.srcIdx[i] != b.srcIdx[i] || a.dstIdx[i] != b.dstIdx[i] {
			return fmt.Errorf("edge %d endpoint indices (%d, %d) != (%d, %d)",
				i, a.srcIdx[i], a.dstIdx[i], b.srcIdx[i], b.dstIdx[i])
		}
		if err := propsEqual(ae.Props, be.Props); err != nil {
			return fmt.Errorf("edge %d (id %d): %w", i, ae.ID, err)
		}
	}
	for v := range a.out {
		if err := rowsEqual(a.out[v], b.out[v]); err != nil {
			return fmt.Errorf("out-edges of vertex %d: %w", v, err)
		}
		if err := rowsEqual(a.in[v], b.in[v]); err != nil {
			return fmt.Errorf("in-edges of vertex %d: %w", v, err)
		}
	}
	return nil
}

func propsEqual(a, b Props) error {
	if a.Len() != b.Len() {
		return fmt.Errorf("property count %d != %d", a.Len(), b.Len())
	}
	for li, label := range a.labels {
		if b.labels[li] != label {
			return fmt.Errorf("property %q != %q at position %d", label, b.labels[li], li)
		}
		ae, be := a.entries[li], b.entries[li]
		if len(ae) != len(be) {
			return fmt.Errorf("property %q entry count %d != %d", label, len(ae), len(be))
		}
		for i := range ae {
			if ae[i] != be[i] {
				return fmt.Errorf("property %q entry %d: %v != %v", label, i, ae[i], be[i])
			}
		}
	}
	return nil
}

func rowsEqual(a, b []int32) error {
	if len(a) != len(b) {
		return fmt.Errorf("degree %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("edge index %d != %d at position %d", a[i], b[i], i)
		}
	}
	return nil
}
