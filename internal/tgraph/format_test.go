package tgraph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	ival "graphite/internal/interval"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// buildArbitrary derives a valid graph from a PRNG seed: sparse vertex
// ids, a mix of bounded and unbounded lifespans, multi-label properties.
// Used by both the table tests and the round-trip fuzz target.
func buildArbitrary(seed uint64, nv, ne int) *Graph {
	rng := seed
	next := func() uint64 { // splitmix64
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	b := NewBuilder(nv, ne)
	ids := make([]VertexID, 0, nv)
	nextID := int64(0)
	for i := 0; i < nv; i++ {
		nextID += int64(next()%1000) + 1 // sparse, strictly ascending ids
		id := VertexID(nextID)
		start := ival.Time(next() % 50)
		life := ival.From(start)
		if next()%3 == 0 {
			life = ival.New(start, start+1+ival.Time(next()%100))
		}
		b.AddVertex(id, life)
		ids = append(ids, id)
		for _, label := range []string{"alpha", "beta", "gamma"} {
			if next()%2 == 0 {
				continue
			}
			at := life.Start + ival.Time(next()%10)
			iv := ival.New(at, at+1+ival.Time(next()%5)).Intersect(life)
			if iv.Valid() {
				b.SetVertexProp(id, label, iv, int64(next()%1000)-500)
			}
		}
	}
	for i := 0; i < ne && nv > 0; i++ {
		src := ids[next()%uint64(nv)]
		dst := ids[next()%uint64(nv)]
		hull := b.vertices[b.vseen[src]].Lifespan.Intersect(b.vertices[b.vseen[dst]].Lifespan)
		if !hull.Valid() {
			continue
		}
		life := hull
		if hull.End != ival.Infinity && next()%2 == 0 {
			life = ival.New(hull.Start, hull.Start+1+ival.Time(uint64(hull.End-hull.Start-1)%(next()%7+1)))
		}
		id := EdgeID(i)
		b.AddEdge(id, src, dst, life)
		if next()%2 == 0 {
			b.SetEdgeProp(id, "weight", life, int64(next()%100))
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("buildArbitrary(%d, %d, %d): %v", seed, nv, ne, err))
	}
	return g
}

func snapshotCases(t *testing.T) map[string]*Graph {
	t.Helper()
	empty := NewBuilder(0, 0).MustBuild()
	single := NewBuilder(1, 0)
	single.AddVertex(42, ival.New(3, 9))
	return map[string]*Graph{
		"transit":   TransitExample(),
		"empty":     empty,
		"single":    single.MustBuild(),
		"arbitrary": buildArbitrary(7, 40, 120),
		"dense":     buildArbitrary(99, 5, 30),
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	for name, g := range snapshotCases(t) {
		t.Run(name, func(t *testing.T) {
			enc := EncodeSnapshot(g, nil)
			g2, err := ReadSnapshot(bytes.NewReader(enc))
			if err != nil {
				t.Fatalf("ReadSnapshot: %v", err)
			}
			if err := Equal(g, g2); err != nil {
				t.Fatalf("round trip not identical: %v", err)
			}
			// Deterministic encoding: re-encoding the decoded graph
			// reproduces the bytes exactly.
			if !bytes.Equal(enc, EncodeSnapshot(g2, nil)) {
				t.Fatal("re-encoding the decoded graph changed the bytes")
			}

			path := filepath.Join(t.TempDir(), "g.gsn")
			if err := WriteSnapshotFile(path, g); err != nil {
				t.Fatalf("WriteSnapshotFile: %v", err)
			}
			for _, open := range []struct {
				name string
				fn   func(string) (*Mapped, error)
			}{{"verified", OpenMapped}, {"trusted", OpenMappedTrusted}, {"any", OpenAnyFile}} {
				m, err := open.fn(path)
				if err != nil {
					t.Fatalf("%s open: %v", open.name, err)
				}
				if err := Equal(g, m.Graph); err != nil {
					t.Errorf("%s mapped graph differs: %v", open.name, err)
				}
				// Id lookups go through the sorted index on mapped graphs.
				for i := 0; i < g.NumVertices(); i++ {
					id := g.VertexAt(i).ID
					if got := m.IndexOf(id); got != i {
						t.Fatalf("%s IndexOf(%d) = %d, want %d", open.name, id, got, i)
					}
					if v := m.Vertex(id); v == nil || v.ID != id {
						t.Fatalf("%s Vertex(%d) lookup failed", open.name, id)
					}
				}
				if m.IndexOf(VertexID(-12345)) != -1 || m.Vertex(VertexID(-12345)) != nil {
					t.Errorf("%s lookup of absent id should miss", open.name)
				}
				if err := m.Close(); err != nil {
					t.Errorf("%s close: %v", open.name, err)
				}
			}
		})
	}
}

func TestSnapshotExtraPayload(t *testing.T) {
	g := TransitExample()
	extra := []byte("application payload \x00\x01\x02")
	enc := EncodeSnapshot(g, extra)
	path := filepath.Join(t.TempDir(), "g.gsn")
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if !bytes.Equal(m.Extra, extra) {
		t.Fatalf("extra payload %q != %q", m.Extra, extra)
	}
	if err := Equal(g, m.Graph); err != nil {
		t.Fatalf("graph with extra differs: %v", err)
	}
}

// TestSnapshotGolden pins the on-disk encoding: accidental format drift
// (reordered sections, changed varint scheme, new header fields) fails
// here before it ships. Regenerate deliberately with -update-golden.
func TestSnapshotGolden(t *testing.T) {
	g := TransitExample()
	enc := EncodeSnapshot(g, nil)
	golden := filepath.Join("testdata", "transit.gsn")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, enc, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run with -update-golden): %v", err)
	}
	if !bytes.Equal(enc, want) {
		t.Fatalf("encoding drifted from golden file: %d bytes vs %d", len(enc), len(want))
	}

	// Field-level pin of the header and directory.
	if string(want[:6]) != snapshotMagic {
		t.Fatalf("magic %q", want[:6])
	}
	if v := binary.LittleEndian.Uint16(want[6:]); v != SnapshotVersion {
		t.Fatalf("version %d, want %d", v, SnapshotVersion)
	}
	nsec := binary.LittleEndian.Uint32(want[8:])
	if nsec != 9 {
		t.Fatalf("section count %d, want 9 (no extra section)", nsec)
	}
	crc := crc32.ChecksumIEEE(want[:12])
	crc = crc32.Update(crc, crc32.IEEETable, want[snapHeaderLen:snapHeaderLen+snapDirEntryLen*int(nsec)])
	if got := binary.LittleEndian.Uint32(want[12:]); got != crc {
		t.Fatalf("directory CRC %#x, want %#x", got, crc)
	}
	wantIDs := []uint32{secMeta, secVerts, secEdges, secEnds, secOut, secIn, secVIndex, secVProps, secEProps}
	for i, id := range wantIDs {
		e := want[snapHeaderLen+snapDirEntryLen*i:]
		if got := binary.LittleEndian.Uint32(e); got != id {
			t.Fatalf("directory entry %d id %d, want %d", i, got, id)
		}
		off := binary.LittleEndian.Uint64(e[8:])
		length := binary.LittleEndian.Uint64(e[16:])
		if off%8 != 0 {
			t.Errorf("section %d offset %d not 8-byte aligned", id, off)
		}
		if off+length > uint64(len(want)) {
			t.Errorf("section %d out of bounds", id)
		}
		payload := want[off : off+length]
		if got := binary.LittleEndian.Uint32(e[4:]); got != crc32.ChecksumIEEE(payload) {
			t.Errorf("section %d CRC mismatch", id)
		}
		// Fixed-width section sizes for |V|=6, |E|=6.
		switch id {
		case secEnds:
			if length != 48 {
				t.Errorf("ends section %d bytes, want 48", length)
			}
		case secOut, secIn:
			if length != 4*7+4*6 {
				t.Errorf("CSR section %d bytes, want %d", length, 4*7+4*6)
			}
		case secVIndex:
			if length != 24 {
				t.Errorf("vindex section %d bytes, want 24", length)
			}
		}
	}
	// Meta decodes to the fixture's shape.
	g2, err := ReadSnapshot(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("golden decode: %v", err)
	}
	if g2.NumVertices() != 6 || g2.NumEdges() != 6 || g2.Lifespan() != ival.Universe || g2.Horizon() != g.Horizon() {
		t.Fatalf("golden meta decoded to %v horizon %d", g2, g2.Horizon())
	}
}

func isTypedSnapshotErr(err error) bool {
	return errors.Is(err, ErrSnapshotCorrupt) || errors.Is(err, ErrSnapshotVersion) || errors.Is(err, ErrUnknownFormat)
}

func TestSnapshotCorruption(t *testing.T) {
	g := buildArbitrary(13, 30, 80)
	enc := EncodeSnapshot(g, nil)

	t.Run("truncation", func(t *testing.T) {
		for cut := 0; cut < len(enc); cut += 7 {
			_, err := ReadSnapshot(bytes.NewReader(enc[:cut]))
			if err == nil {
				t.Fatalf("truncation to %d bytes accepted", cut)
			}
			if !isTypedSnapshotErr(err) {
				t.Fatalf("truncation to %d bytes: untyped error %v", cut, err)
			}
		}
	})

	t.Run("bad-magic", func(t *testing.T) {
		mut := bytes.Clone(enc)
		mut[0] = 'X'
		_, err := ReadSnapshot(bytes.NewReader(mut))
		if !errors.Is(err, ErrUnknownFormat) {
			t.Fatalf("bad magic: %v, want ErrUnknownFormat", err)
		}
	})

	t.Run("future-version", func(t *testing.T) {
		mut := bytes.Clone(enc)
		binary.LittleEndian.PutUint16(mut[6:], SnapshotVersion+1)
		_, err := ReadSnapshot(bytes.NewReader(mut))
		if !errors.Is(err, ErrSnapshotVersion) {
			t.Fatalf("future version: %v, want ErrSnapshotVersion", err)
		}
	})

	t.Run("bad-section-crc", func(t *testing.T) {
		// Flip a byte inside the first section payload.
		mut := bytes.Clone(enc)
		off := binary.LittleEndian.Uint64(mut[snapHeaderLen+8:])
		mut[off] ^= 0xff
		_, err := ReadSnapshot(bytes.NewReader(mut))
		if !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("payload flip: %v, want ErrSnapshotCorrupt", err)
		}
	})

	t.Run("every-byte-flip", func(t *testing.T) {
		// Any single corrupted byte must yield a typed error or leave the
		// decoded graph identical (flips in alignment padding are benign).
		for pos := range enc {
			mut := bytes.Clone(enc)
			mut[pos] ^= 0xff
			g2, err := ReadSnapshot(bytes.NewReader(mut))
			if err == nil {
				if eq := Equal(g, g2); eq != nil {
					t.Fatalf("flip at byte %d silently changed the graph: %v", pos, eq)
				}
				continue
			}
			if !isTypedSnapshotErr(err) {
				t.Fatalf("flip at byte %d: untyped error %v", pos, err)
			}
		}
	})
}

func TestSniffFormat(t *testing.T) {
	cases := []struct {
		head string
		want Format
	}{
		{snapshotMagic, FormatSnapshot},
		{binaryMagic, FormatBinary},
		{"# comment\n", FormatText},
		{"V 1 0 5\n", FormatText},
		{"E 1 1 2 0 5\n", FormatText},
		{"  \n\tV 1 0 5", FormatText},
		{"", FormatText},
		{"\x7fELF", FormatUnknown},
		{"GSNAX\n", FormatUnknown},
		{"PK\x03\x04", FormatUnknown},
	}
	for _, c := range cases {
		if got := SniffFormat([]byte(c.head)); got != c.want {
			t.Errorf("SniffFormat(%q) = %v, want %v", c.head, got, c.want)
		}
	}
}

func TestReadAnyFileAllFormats(t *testing.T) {
	g := TransitExample()
	dir := t.TempDir()

	write := map[string]func(string, *Graph) error{
		"text":     WriteFile,
		"binary":   WriteBinaryFile,
		"snapshot": WriteSnapshotFile,
	}
	for name, fn := range write {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name+".graph")
			if err := fn(path, g); err != nil {
				t.Fatal(err)
			}
			g2, err := ReadAnyFile(path)
			if err != nil {
				t.Fatalf("ReadAnyFile: %v", err)
			}
			if err := Equal(g, g2); err != nil {
				t.Fatalf("loaded graph differs: %v", err)
			}
		})
	}

	t.Run("garbage", func(t *testing.T) {
		path := filepath.Join(dir, "garbage.bin")
		if err := os.WriteFile(path, []byte("\x7fELF\x02\x01junk"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := ReadAnyFile(path)
		if !errors.Is(err, ErrUnknownFormat) {
			t.Fatalf("garbage: %v, want ErrUnknownFormat", err)
		}
		// The error names the sniffed bytes and both known magics, so a
		// mis-shipped file is diagnosable from the message alone.
		msg := err.Error()
		for _, want := range []string{`"\x7fELF\x02\x01"`, "GRTG1", "GSNAP"} {
			if !bytes.Contains([]byte(msg), []byte(want)) {
				t.Errorf("error %q does not mention %q", msg, want)
			}
		}
	})
}
