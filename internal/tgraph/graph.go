// Package tgraph implements the temporal property graph data model of
// Sec. III of the ICM paper: a directed multigraph whose vertices, edges and
// property values each carry a half-open lifespan, subject to the paper's
// three soundness constraints (unique entities, referential integrity of
// edges, referential integrity of properties).
//
// Graphs are immutable once built via Builder; the representation is a
// CSR-style adjacency layout suitable for the BSP engine.
package tgraph

import (
	"fmt"
	"iter"
	"slices"
	"sort"

	ival "graphite/internal/interval"
)

// VertexID uniquely identifies a vertex for its whole existence
// (Constraint 1: an id never re-occurs with a different lifespan).
type VertexID int64

// EdgeID uniquely identifies an edge.
type EdgeID int64

// PropEntry is one temporally scoped value of a property label. Within a
// label, entries with different values never overlap in time (Definition 1).
type PropEntry struct {
	Interval ival.Interval
	Value    int64
}

// Props holds an entity's temporally scoped properties: labels sorted
// lexicographically, each carrying its temporally partitioned values sorted
// by interval start. The zero value is an empty property set.
//
// The sorted slice-pair layout (rather than a map) keeps iteration
// deterministic and lets the snapshot decoder rebuild every property set
// from a few per-chunk slabs: opening a mapped graph allocates a handful of
// slices instead of one map per propertied vertex and edge.
type Props struct {
	labels  []string
	entries [][]PropEntry
}

// Len returns the number of labels present.
func (p Props) Len() int { return len(p.labels) }

// find returns the position of label, or -1 if absent. Linear scan:
// property sets carry at most a handful of labels.
func (p Props) find(label string) int {
	for i, l := range p.labels {
		if l == label {
			return i
		}
	}
	return -1
}

// ValueAt returns the value of label at time-point t and whether it exists.
func (p Props) ValueAt(label string, t ival.Time) (int64, bool) {
	for _, e := range p.Entries(label) {
		if e.Interval.Contains(t) {
			return e.Value, true
		}
	}
	return 0, false
}

// Entries returns the temporal values for label; nil if absent.
func (p Props) Entries(label string) []PropEntry {
	if i := p.find(label); i >= 0 {
		return p.entries[i]
	}
	return nil
}

// All iterates over (label, entries) pairs in ascending label order.
func (p Props) All() iter.Seq2[string, []PropEntry] {
	return func(yield func(string, []PropEntry) bool) {
		for i, l := range p.labels {
			if !yield(l, p.entries[i]) {
				return
			}
		}
	}
}

// Add appends one value to label, inserting the label at its sorted
// position if new. Entries within a label are kept in insertion order;
// Builder.Build sorts and validates them.
func (p *Props) Add(label string, e PropEntry) {
	i := sort.SearchStrings(p.labels, label)
	if i < len(p.labels) && p.labels[i] == label {
		p.entries[i] = append(p.entries[i], e)
		return
	}
	p.labels = slices.Insert(p.labels, i, label)
	p.entries = slices.Insert(p.entries, i, []PropEntry{e})
}

// Vertex is a temporal vertex 〈vid, τ〉 with optional temporal properties.
type Vertex struct {
	ID       VertexID
	Lifespan ival.Interval
	Props    Props
}

// Edge is a temporal directed edge 〈eid, src, dst, τ〉 with optional temporal
// properties. Src and Dst lifespans contain Lifespan (Constraint 2).
type Edge struct {
	ID       EdgeID
	Src      VertexID
	Dst      VertexID
	Lifespan ival.Interval
	Props    Props
}

// Graph is an immutable temporal property graph.
//
// Exactly one of vindex/vsorted is populated: graphs built in memory carry
// the hash index, graphs decoded from a mapped snapshot carry the sorted
// permutation (no per-open map construction) and look ids up by binary
// search.
type Graph struct {
	vertices []Vertex
	edges    []Edge
	vindex   map[VertexID]int32 // VertexID -> index into vertices
	vsorted  []int32            // vertex indices sorted by id (mapped graphs)
	out      [][]int32          // vertex index -> indices into edges (out-edges)
	in       [][]int32          // vertex index -> indices into edges (in-edges)
	srcIdx   []int32            // edge index -> dense source vertex index
	dstIdx   []int32            // edge index -> dense destination vertex index
	lifespan ival.Interval      // hull of all vertex lifespans
	horizon  ival.Time          // cached largest finite boundary (see Horizon)
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.vertices) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Lifespan returns the hull of all vertex lifespans: the graph's lifetime.
func (g *Graph) Lifespan() ival.Interval { return g.lifespan }

// Vertices returns the vertex slice in index order. Must not be modified.
func (g *Graph) Vertices() []Vertex { return g.vertices }

// Edges returns the edge slice in index order. Must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// Vertex returns the vertex with the given id, or nil if absent.
func (g *Graph) Vertex(id VertexID) *Vertex {
	i := g.IndexOf(id)
	if i < 0 {
		return nil
	}
	return &g.vertices[i]
}

// VertexAt returns the vertex at the given dense index.
func (g *Graph) VertexAt(i int) *Vertex { return &g.vertices[i] }

// IndexOf returns the dense index of a vertex id, or -1 if absent.
func (g *Graph) IndexOf(id VertexID) int {
	if g.vindex != nil {
		i, ok := g.vindex[id]
		if !ok {
			return -1
		}
		return int(i)
	}
	lo, hi := 0, len(g.vsorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if g.vertices[g.vsorted[mid]].ID < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(g.vsorted) && g.vertices[g.vsorted[lo]].ID == id {
		return int(g.vsorted[lo])
	}
	return -1
}

// Edge returns the edge at the given dense index.
func (g *Graph) Edge(i int) *Edge { return &g.edges[i] }

// SrcIndex returns the dense vertex index of edge i's source.
func (g *Graph) SrcIndex(i int) int { return int(g.srcIdx[i]) }

// DstIndex returns the dense vertex index of edge i's destination.
func (g *Graph) DstIndex(i int) int { return int(g.dstIdx[i]) }

// OutEdges returns the dense edge indices of the out-edges of vertex index v.
func (g *Graph) OutEdges(v int) []int32 { return g.out[v] }

// InEdges returns the dense edge indices of the in-edges of vertex index v.
func (g *Graph) InEdges(v int) []int32 { return g.in[v] }

// OutDegreeAt returns the number of out-edges of vertex index v alive at t.
func (g *Graph) OutDegreeAt(v int, t ival.Time) int {
	n := 0
	for _, ei := range g.out[v] {
		if g.edges[ei].Lifespan.Contains(t) {
			n++
		}
	}
	return n
}

// InDegreeAt returns the number of in-edges of vertex index v alive at t.
func (g *Graph) InDegreeAt(v int, t ival.Time) int {
	n := 0
	for _, ei := range g.in[v] {
		if g.edges[ei].Lifespan.Contains(t) {
			n++
		}
	}
	return n
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("tgraph{|V|=%d |E|=%d lifespan=%v}", len(g.vertices), len(g.edges), g.lifespan)
}
