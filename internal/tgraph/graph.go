// Package tgraph implements the temporal property graph data model of
// Sec. III of the ICM paper: a directed multigraph whose vertices, edges and
// property values each carry a half-open lifespan, subject to the paper's
// three soundness constraints (unique entities, referential integrity of
// edges, referential integrity of properties).
//
// Graphs are immutable once built via Builder; the representation is a
// CSR-style adjacency layout suitable for the BSP engine.
package tgraph

import (
	"fmt"

	ival "graphite/internal/interval"
)

// VertexID uniquely identifies a vertex for its whole existence
// (Constraint 1: an id never re-occurs with a different lifespan).
type VertexID int64

// EdgeID uniquely identifies an edge.
type EdgeID int64

// PropEntry is one temporally scoped value of a property label. Within a
// label, entries with different values never overlap in time (Definition 1).
type PropEntry struct {
	Interval ival.Interval
	Value    int64
}

// Props maps a property label to its temporally partitioned values, sorted by
// interval start.
type Props map[string][]PropEntry

// ValueAt returns the value of label at time-point t and whether it exists.
func (p Props) ValueAt(label string, t ival.Time) (int64, bool) {
	for _, e := range p[label] {
		if e.Interval.Contains(t) {
			return e.Value, true
		}
	}
	return 0, false
}

// Entries returns the temporal values for label; nil if absent.
func (p Props) Entries(label string) []PropEntry { return p[label] }

// Vertex is a temporal vertex 〈vid, τ〉 with optional temporal properties.
type Vertex struct {
	ID       VertexID
	Lifespan ival.Interval
	Props    Props
}

// Edge is a temporal directed edge 〈eid, src, dst, τ〉 with optional temporal
// properties. Src and Dst lifespans contain Lifespan (Constraint 2).
type Edge struct {
	ID       EdgeID
	Src      VertexID
	Dst      VertexID
	Lifespan ival.Interval
	Props    Props
}

// Graph is an immutable temporal property graph.
type Graph struct {
	vertices []Vertex
	edges    []Edge
	vindex   map[VertexID]int32 // VertexID -> index into vertices
	out      [][]int32          // vertex index -> indices into edges (out-edges)
	in       [][]int32          // vertex index -> indices into edges (in-edges)
	srcIdx   []int32            // edge index -> dense source vertex index
	dstIdx   []int32            // edge index -> dense destination vertex index
	lifespan ival.Interval      // hull of all vertex lifespans
	horizon  ival.Time          // cached largest finite boundary (see Horizon)
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.vertices) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Lifespan returns the hull of all vertex lifespans: the graph's lifetime.
func (g *Graph) Lifespan() ival.Interval { return g.lifespan }

// Vertices returns the vertex slice in index order. Must not be modified.
func (g *Graph) Vertices() []Vertex { return g.vertices }

// Edges returns the edge slice in index order. Must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// Vertex returns the vertex with the given id, or nil if absent.
func (g *Graph) Vertex(id VertexID) *Vertex {
	i, ok := g.vindex[id]
	if !ok {
		return nil
	}
	return &g.vertices[i]
}

// VertexAt returns the vertex at the given dense index.
func (g *Graph) VertexAt(i int) *Vertex { return &g.vertices[i] }

// IndexOf returns the dense index of a vertex id, or -1 if absent.
func (g *Graph) IndexOf(id VertexID) int {
	i, ok := g.vindex[id]
	if !ok {
		return -1
	}
	return int(i)
}

// Edge returns the edge at the given dense index.
func (g *Graph) Edge(i int) *Edge { return &g.edges[i] }

// SrcIndex returns the dense vertex index of edge i's source.
func (g *Graph) SrcIndex(i int) int { return int(g.srcIdx[i]) }

// DstIndex returns the dense vertex index of edge i's destination.
func (g *Graph) DstIndex(i int) int { return int(g.dstIdx[i]) }

// OutEdges returns the dense edge indices of the out-edges of vertex index v.
func (g *Graph) OutEdges(v int) []int32 { return g.out[v] }

// InEdges returns the dense edge indices of the in-edges of vertex index v.
func (g *Graph) InEdges(v int) []int32 { return g.in[v] }

// OutDegreeAt returns the number of out-edges of vertex index v alive at t.
func (g *Graph) OutDegreeAt(v int, t ival.Time) int {
	n := 0
	for _, ei := range g.out[v] {
		if g.edges[ei].Lifespan.Contains(t) {
			n++
		}
	}
	return n
}

// InDegreeAt returns the number of in-edges of vertex index v alive at t.
func (g *Graph) InDegreeAt(v int, t ival.Time) int {
	n := 0
	for _, ei := range g.in[v] {
		if g.edges[ei].Lifespan.Contains(t) {
			n++
		}
	}
	return n
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("tgraph{|V|=%d |E|=%d lifespan=%v}", len(g.vertices), len(g.edges), g.lifespan)
}
