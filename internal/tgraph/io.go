package tgraph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	ival "graphite/internal/interval"
)

// Text format, one record per line ("inf" is accepted for an unbounded end):
//
//	# comment
//	V  <vid> <start> <end>
//	VP <vid> <label> <start> <end> <value>
//	E  <eid> <src> <dst> <start> <end>
//	EP <eid> <label> <start> <end> <value>
//
// Records may appear in any order as long as owners precede their edges and
// properties; Write emits them in that order.

// Write serializes the graph in the text format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# graphite temporal graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	for i := range g.vertices {
		v := &g.vertices[i]
		fmt.Fprintf(bw, "V %d %s %s\n", v.ID, ftime(v.Lifespan.Start), ftime(v.Lifespan.End))
		for label, es := range v.Props.All() {
			for _, e := range es {
				fmt.Fprintf(bw, "VP %d %s %s %s %d\n", v.ID, label, ftime(e.Interval.Start), ftime(e.Interval.End), e.Value)
			}
		}
	}
	for i := range g.edges {
		e := &g.edges[i]
		fmt.Fprintf(bw, "E %d %d %d %s %s\n", e.ID, e.Src, e.Dst, ftime(e.Lifespan.Start), ftime(e.Lifespan.End))
		for label, es := range e.Props.All() {
			for _, p := range es {
				fmt.Fprintf(bw, "EP %d %s %s %s %d\n", e.ID, label, ftime(p.Interval.Start), ftime(p.Interval.End), p.Value)
			}
		}
	}
	return bw.Flush()
}

// WriteFile serializes the graph to a file.
func WriteFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses the text format and validates the graph constraints.
func Read(r io.Reader) (*Graph, error) {
	b := NewBuilder(0, 0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		var err error
		switch f[0] {
		case "V":
			err = parseV(b, f)
		case "VP":
			err = parseVP(b, f)
		case "E":
			err = parseE(b, f)
		case "EP":
			err = parseEP(b, f)
		default:
			err = fmt.Errorf("unknown record type %q", f[0])
		}
		if err != nil {
			return nil, fmt.Errorf("tgraph: line %d: %w", lineNo, err)
		}
		if err := b.Err(); err != nil {
			return nil, fmt.Errorf("tgraph: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build()
}

// ReadFile parses a graph file.
func ReadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

func parseV(b *Builder, f []string) error {
	if len(f) != 4 {
		return fmt.Errorf("V record needs 3 fields, got %d", len(f)-1)
	}
	id, err1 := strconv.ParseInt(f[1], 10, 64)
	iv, err2 := ptimes(f[2], f[3])
	if err := first(err1, err2); err != nil {
		return err
	}
	b.AddVertex(VertexID(id), iv)
	return nil
}

func parseE(b *Builder, f []string) error {
	if len(f) != 6 {
		return fmt.Errorf("E record needs 5 fields, got %d", len(f)-1)
	}
	id, err1 := strconv.ParseInt(f[1], 10, 64)
	src, err2 := strconv.ParseInt(f[2], 10, 64)
	dst, err3 := strconv.ParseInt(f[3], 10, 64)
	iv, err4 := ptimes(f[4], f[5])
	if err := first(err1, err2, err3, err4); err != nil {
		return err
	}
	b.AddEdge(EdgeID(id), VertexID(src), VertexID(dst), iv)
	return nil
}

func parseVP(b *Builder, f []string) error {
	if len(f) != 6 {
		return fmt.Errorf("VP record needs 5 fields, got %d", len(f)-1)
	}
	id, err1 := strconv.ParseInt(f[1], 10, 64)
	iv, err2 := ptimes(f[3], f[4])
	val, err3 := strconv.ParseInt(f[5], 10, 64)
	if err := first(err1, err2, err3); err != nil {
		return err
	}
	b.SetVertexProp(VertexID(id), f[2], iv, val)
	return nil
}

func parseEP(b *Builder, f []string) error {
	if len(f) != 6 {
		return fmt.Errorf("EP record needs 5 fields, got %d", len(f)-1)
	}
	id, err1 := strconv.ParseInt(f[1], 10, 64)
	iv, err2 := ptimes(f[3], f[4])
	val, err3 := strconv.ParseInt(f[5], 10, 64)
	if err := first(err1, err2, err3); err != nil {
		return err
	}
	b.SetEdgeProp(EdgeID(id), f[2], iv, val)
	return nil
}

func ftime(t ival.Time) string {
	if t == ival.Infinity {
		return "inf"
	}
	return strconv.FormatInt(t, 10)
}

func ptime(s string) (ival.Time, error) {
	if s == "inf" {
		return ival.Infinity, nil
	}
	return strconv.ParseInt(s, 10, 64)
}

func ptimes(s, e string) (ival.Interval, error) {
	st, err1 := ptime(s)
	en, err2 := ptime(e)
	if err := first(err1, err2); err != nil {
		return ival.Empty, err
	}
	return ival.New(st, en), nil
}

func first(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
