package warp

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	ival "graphite/internal/interval"
)

// This file pins every warp entry point against the per-time-point oracle of
// warp_test.go on fuzzer-chosen inputs: the four Sec. IV-B guarantees for
// Warp, WarpCombined ≡ Warp + fold, PointGroups ≡ Warp point-wise (and
// exactly, on unit-length inputs), and the Scratch methods ≡ the free
// functions — including scratch reuse across calls and append-into-dst, the
// two behaviours the allocation-free runtime workspaces depend on.

// decodeWarpCase turns a fuzzer byte string into a valid warp instance: a
// temporally partitioned outer set (possibly with gaps, possibly unbounded)
// and an arbitrary inner set (unit, empty, and unbounded intervals included).
// All finite boundaries stay below 48 so samplePoints covers them.
func decodeWarpCase(data []byte) (outer, inner []IntervalValue) {
	i := 0
	next := func() byte {
		if i >= len(data) {
			return 0
		}
		b := data[i]
		i++
		return b
	}
	cur := ival.Time(next() % 4)
	for p, n := 0, 1+int(next()%4); p < n; p++ {
		cur += ival.Time(next() % 3) // occasional gap between partitions
		end := cur + ival.Time(1+next()%5)
		if p == n-1 && next()%4 == 0 {
			end = ival.Infinity
		}
		outer = append(outer, IntervalValue{ival.New(cur, end), int(next() % 3)})
		cur = end
	}
	for m, n := 0, int(next()%8); m < n; m++ {
		s := ival.Time(next() % 16)
		e := s + ival.Time(next()%5) // width 0 makes an empty interval
		if next()%8 == 0 {
			e = ival.Infinity
		}
		inner = append(inner, IntervalValue{ival.New(s, e), int(next() % 4)})
	}
	return outer, inner
}

// intSum is the differential combiner: commutative and associative, and —
// unlike min — not idempotent, so a duplicated or dropped group member
// changes the fold and gets caught.
func intSum(a, b Value) Value { return a.(int) + b.(int) }

// tupleAt returns the tuple covering tp, if any, and how many do.
func tupleAt(out []Tuple, tp ival.Time) (Tuple, int) {
	var hit Tuple
	hits := 0
	for _, tu := range out {
		if tu.Interval.Contains(tp) {
			hit = tu
			hits++
		}
	}
	return hit, hits
}

// checkCombinedMatchesFold checks comb ≡ plain with each group folded, point
// by point. Tuple lists are not compared directly: folding can make adjacent
// groups equal and merge tuples that plain warp keeps apart.
func checkCombinedMatchesFold(t *testing.T, label string, plain, comb []Tuple, fold CombineFunc) {
	t.Helper()
	for _, tp := range samplePoints {
		p, pn := tupleAt(plain, tp)
		c, cn := tupleAt(comb, tp)
		if pn != cn || pn > 1 {
			t.Fatalf("%s: t=%d covered by %d plain and %d combined tuples", label, tp, pn, cn)
		}
		if pn == 0 {
			continue
		}
		if len(c.Msgs) != 1 {
			t.Fatalf("%s: t=%d: combined group holds %d values, want 1", label, tp, len(c.Msgs))
		}
		want := p.Msgs[0]
		for _, m := range p.Msgs[1:] {
			want = fold(want, m)
		}
		if !reflect.DeepEqual(c.State, p.State) || !reflect.DeepEqual(c.Msgs[0], want) {
			t.Fatalf("%s: t=%d: got (%v, %v), want (%v, %v)", label, tp, c.State, c.Msgs[0], p.State, want)
		}
	}
}

// checkPointwiseEqual checks that two warp outputs agree at every sample
// point: same coverage, same state, same message multiset.
func checkPointwiseEqual(t *testing.T, label string, a, b []Tuple) {
	t.Helper()
	for _, tp := range samplePoints {
		ta, na := tupleAt(a, tp)
		tb, nb := tupleAt(b, tp)
		if na > 1 || nb > 1 {
			t.Fatalf("%s: t=%d covered by %d/%d tuples, want at most 1", label, tp, na, nb)
		}
		if na != nb {
			t.Fatalf("%s: t=%d covered by %d tuples on one side, %d on the other", label, tp, na, nb)
		}
		if na == 1 && (!reflect.DeepEqual(ta.State, tb.State) || !multisetEqual(ta.Msgs, tb.Msgs)) {
			t.Fatalf("%s: t=%d: (%v, %v) vs (%v, %v)", label, tp, ta.State, ta.Msgs, tb.State, tb.Msgs)
		}
	}
}

// checkSameTuples requires structural equality: the scratch methods run the
// same sweep as the free functions, so intervals, states, and group order
// must all match.
func checkSameTuples(t *testing.T, label string, got, want []Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d tuples, want %d\n got: %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i].Interval != want[i].Interval || !reflect.DeepEqual(got[i].State, want[i].State) ||
			!reflect.DeepEqual(got[i].Msgs, want[i].Msgs) {
			t.Fatalf("%s: tuple %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// expandToPoints flattens bounded warp tuples into unit tuples, one per
// time-point. Callers must ensure the tuples are bounded.
func expandToPoints(out []Tuple) []Tuple {
	var pts []Tuple
	for _, tu := range out {
		for tp := tu.Interval.Start; tp < tu.Interval.End; tp++ {
			pts = append(pts, Tuple{Interval: ival.Point(tp), State: tu.State, Msgs: tu.Msgs})
		}
	}
	return pts
}

// checkWarpBattery runs every cross-check on one instance.
func checkWarpBattery(t *testing.T, outer, inner []IntervalValue) {
	t.Helper()

	plain := Warp(outer, inner)
	checkWarpProperties(t, outer, inner, plain)

	comb := WarpCombined(outer, inner, intSum)
	checkCombinedMatchesFold(t, "WarpCombined", plain, comb, intSum)

	pg := PointGroups(outer, inner)
	checkPointwiseEqual(t, "PointGroups", plain, pg)

	pgc := PointGroupsCombined(outer, inner, intSum)
	checkCombinedMatchesFold(t, "PointGroupsCombined", plain, pgc, intSum)

	// Scratch methods must match the free functions even on a dirty scratch:
	// the per-worker workspaces reuse one scratch for every vertex.
	var s Scratch
	s.Warp(nil, outer, inner) // dirty the buffers with a first pass
	checkSameTuples(t, "Scratch.Warp", s.Warp(nil, outer, inner), plain)
	checkSameTuples(t, "Scratch.WarpCombined", s.WarpCombined(nil, outer, inner, intSum), comb)
	checkSameTuples(t, "Scratch.PointGroups", s.PointGroups(nil, outer, inner), pg)
	checkSameTuples(t, "Scratch.PointGroupsCombined", s.PointGroupsCombined(nil, outer, inner, intSum), pgc)

	// Appending into a caller-supplied dst must leave the prefix untouched —
	// maximality may never merge into tuples the caller passed in.
	sentinel := Tuple{Interval: ival.Point(9999), State: "sentinel", Msgs: []Value{"keep"}}
	withDst := s.Warp([]Tuple{sentinel}, outer, inner)
	if !reflect.DeepEqual(withDst[0], sentinel) {
		t.Fatalf("Scratch.Warp rewrote the caller's dst prefix: %+v", withDst[0])
	}
	checkSameTuples(t, "Scratch.Warp(dst)", withDst[1:], plain)

	// On unit-length inner tuples, point-groups is warp without sharing:
	// flattening warp's output to unit tuples reproduces it tuple for tuple
	// (group order may differ where warp merged equal multisets).
	unit := make([]IntervalValue, 0, len(inner))
	for _, m := range inner {
		if m.Interval.IsEmpty() {
			continue
		}
		unit = append(unit, IntervalValue{ival.Point(m.Interval.Start), m.Value})
	}
	wu := expandToPoints(Warp(outer, unit))
	pu := PointGroups(outer, unit)
	if len(wu) != len(pu) {
		t.Fatalf("unit input: %d expanded warp points, %d point-group tuples", len(wu), len(pu))
	}
	for i := range wu {
		if wu[i].Interval != pu[i].Interval || !reflect.DeepEqual(wu[i].State, pu[i].State) ||
			!multisetEqual(wu[i].Msgs, pu[i].Msgs) {
			t.Fatalf("unit input: point %d: warp %+v, point-groups %+v", i, wu[i], pu[i])
		}
	}
}

// FuzzWarp is the coverage-guided entry: the byte string decodes into a warp
// instance and the full battery must hold. Run with `make fuzz` or
// `go test -run=^$ -fuzz=FuzzWarp ./internal/warp`.
func FuzzWarp(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 0, 3, 1, 1, 2, 0, 5, 1, 3, 2, 4, 0, 1, 9, 8, 0, 3, 2, 1})
	f.Add([]byte{0, 3, 1, 4, 2, 0, 2, 1, 0, 1, 0, 6, 2, 4, 3, 7, 0, 0, 1, 12, 1, 7, 2, 5, 4, 0, 3})
	f.Add([]byte{3, 1, 0, 2, 0, 7, 15, 4, 8, 2, 0, 0, 1, 1, 8, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		outer, inner := decodeWarpCase(data)
		checkWarpBattery(t, outer, inner)
	})
}

// TestWarpBatterySeeded runs the same battery over deterministic random
// instances, so the cross-checks run on every plain `go test` too.
func TestWarpBatterySeeded(t *testing.T) {
	r := rand.New(rand.NewSource(20260805))
	for i := 0; i < 250; i++ {
		outer, inner := randInstance(r)
		t.Run(fmt.Sprintf("case%03d", i), func(t *testing.T) {
			t.Logf("outer=%v inner=%v", outer, inner)
			checkWarpBattery(t, outer, inner)
		})
	}
}
