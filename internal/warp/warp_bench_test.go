package warp

import (
	"math/rand"
	"testing"

	ival "graphite/internal/interval"
)

// benchInstance builds a realistic per-vertex warp workload: nParts state
// partitions over [0, span) and nMsgs overlapping messages.
func benchInstance(nParts, nMsgs int, span ival.Time) (outer, inner []IntervalValue) {
	r := rand.New(rand.NewSource(1))
	step := span / ival.Time(nParts)
	for i := 0; i < nParts; i++ {
		end := ival.Time(i+1) * step
		if i == nParts-1 {
			end = span
		}
		outer = append(outer, IntervalValue{ival.New(ival.Time(i)*step, end), int64(i)})
	}
	for i := 0; i < nMsgs; i++ {
		s := ival.Time(r.Intn(int(span)))
		e := s + ival.Time(r.Intn(int(span-s))) + 1
		inner = append(inner, IntervalValue{ival.New(s, e), int64(r.Intn(8))})
	}
	return
}

func BenchmarkWarpSmall(b *testing.B) {
	outer, inner := benchInstance(2, 8, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Warp(outer, inner)
	}
}

func BenchmarkWarpLarge(b *testing.B) {
	outer, inner := benchInstance(8, 64, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Warp(outer, inner)
	}
}

func BenchmarkWarpCombinedLarge(b *testing.B) {
	outer, inner := benchInstance(8, 64, 256)
	min := func(a, c Value) Value {
		if a.(int64) < c.(int64) {
			return a
		}
		return c
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		WarpCombined(outer, inner, min)
	}
}

func BenchmarkPointGroupsUnit(b *testing.B) {
	// The suppression path: unit messages over a short lifespan.
	outer := []IntervalValue{{ival.New(0, 8), int64(0)}}
	var inner []IntervalValue
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 24; i++ {
		inner = append(inner, IntervalValue{ival.Point(ival.Time(r.Intn(8))), int64(i)})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PointGroups(outer, inner)
	}
}

func BenchmarkTimeJoin(b *testing.B) {
	outer, inner := benchInstance(8, 64, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TimeJoin(outer, inner)
	}
}
