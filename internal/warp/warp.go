// Package warp implements the time-join and time-warp operators of Sec. IV-B
// of the ICM paper.
//
// Time-warp takes an outer set of temporally partitioned interval/value pairs
// (a vertex's partitioned states) and an inner set of interval/value pairs
// (its incoming messages, or its out-edge sub-intervals), and returns the
// fewest temporally partitioned triples 〈interval, outer value, inner group〉
// such that:
//
//  1. Valid inclusion — every overlapping outer/inner value pair appears in
//     an output triple for every shared time-point.
//  2. No invalid inclusion — values appear only for time-points at which both
//     exist.
//  3. No duplication — an outer value appears in at most one triple per
//     time-point.
//  4. Maximal — adjacent or overlapping triples with the same outer value and
//     the same inner group are merged.
//
// The implementation is a boundary sweep over the sorted inner intervals
// clipped to each outer partition, O(m log m + p) for m inner tuples and
// p overlap pairs, in the spirit of the merge-sort temporal aggregation the
// paper cites.
package warp

import (
	"cmp"
	"reflect"
	"slices"
	"sort"

	ival "graphite/internal/interval"
)

// Value is an opaque user value carried by states and messages.
type Value = any

// IntervalValue pairs a time-interval with a value.
type IntervalValue struct {
	Interval ival.Interval
	Value    Value
}

// Tuple is one output triple of the warp operator: for every time-point in
// Interval, State is the (single) outer value and Msgs are all inner values
// alive at that time-point. Msgs preserves multiset semantics: one entry per
// inner tuple, in inner-set order.
type Tuple struct {
	Interval ival.Interval
	State    Value
	Msgs     []Value
}

// JoinTriple is one output of the time-join operator: a maximal common
// sub-interval of one outer and one inner tuple.
type JoinTriple struct {
	Interval ival.Interval
	Outer    Value
	Inner    Value
}

// TimeJoin computes the time-join ⋈̃ of the two sets: one triple per
// intersecting pair, carrying the intersection interval. Output is ordered by
// outer tuple, then inner tuple.
func TimeJoin(outer, inner []IntervalValue) []JoinTriple {
	var out []JoinTriple
	for _, o := range outer {
		for _, i := range inner {
			if x := o.Interval.Intersect(i.Interval); !x.IsEmpty() {
				out = append(out, JoinTriple{Interval: x, Outer: o.Value, Inner: i.Value})
			}
		}
	}
	return out
}

// CombineFunc folds two inner values into one; used by warp combiners
// (Sec. VI "Inline Warp Combiner"). It must be commutative and associative.
type CombineFunc func(a, b Value) Value

// Warp computes the time-warp of outer with inner. The outer set must be
// temporally partitioned (sorted, non-overlapping); inner may be arbitrary.
// The output is temporally partitioned and satisfies the four warp
// properties. Triples with empty inner groups are not produced.
func Warp(outer, inner []IntervalValue) []Tuple {
	var s Scratch
	return s.warp(nil, outer, inner, nil)
}

// WarpCombined is Warp with an inline combiner: each output triple's Msgs
// holds exactly one value, the fold of the group under combine. Folding
// happens during the sweep, saving the per-group pass that a subsequent
// compute would otherwise need.
func WarpCombined(outer, inner []IntervalValue, combine CombineFunc) []Tuple {
	var s Scratch
	return s.warp(nil, outer, inner, combine)
}

// innerRef is an inner tuple with its original index, used for identity-based
// group comparison.
type innerRef struct {
	idx int
	iv  ival.Interval
	val Value
}

// Scratch is a reusable workspace for the warp sweep: the ref, active-set
// and boundary buffers, plus the arena backing the output tuples' Msgs
// groups. A zero Scratch is ready. Buffers are grow-only, so a scratch
// reused across calls stops allocating once it has seen the largest input —
// the property the per-worker ICM workspaces rely on for allocation-free
// steady-state supersteps.
//
// A Scratch is not safe for concurrent use, and the tuples returned by its
// methods share its arena: they are valid only until the next call on the
// same Scratch.
type Scratch struct {
	refs       []innerRef
	active     []innerRef
	boundaries []ival.Time
	vals       []Value // arena carved into the output tuples' Msgs groups
	used       []bool  // sameGroup multiset-match scratch
}

// Warp is Warp appending into dst (usually a recycled buffer, sliced to
// length zero) and reusing the scratch's buffers. The appended tuples' Msgs
// point into the scratch arena; see the Scratch validity rule.
func (s *Scratch) Warp(dst []Tuple, outer, inner []IntervalValue) []Tuple {
	return s.warp(dst, outer, inner, nil)
}

// WarpCombined is WarpCombined appending into dst with the scratch's
// buffers; the same validity rule applies.
func (s *Scratch) WarpCombined(dst []Tuple, outer, inner []IntervalValue, combine CombineFunc) []Tuple {
	return s.warp(dst, outer, inner, combine)
}

func (s *Scratch) warp(out []Tuple, outer, inner []IntervalValue, combine CombineFunc) []Tuple {
	if len(outer) == 0 || len(inner) == 0 {
		return out
	}
	s.refs = s.refs[:0]
	s.vals = s.vals[:0]
	for i, m := range inner {
		if !m.Interval.IsEmpty() {
			s.refs = append(s.refs, innerRef{idx: i, iv: m.Interval, val: m.Value})
		}
	}
	if len(s.refs) == 0 {
		return out
	}
	slices.SortFunc(s.refs, func(a, b innerRef) int { return cmp.Compare(a.iv.Start, b.iv.Start) })

	base := len(out) // maximality never merges into tuples the caller passed in
	for _, st := range outer {
		if st.Interval.IsEmpty() {
			continue
		}
		// Inner tuples overlapping this outer partition: starts strictly
		// before the partition end; ends after the partition start.
		hi := sort.Search(len(s.refs), func(k int) bool { return s.refs[k].iv.Start >= st.Interval.End })
		s.boundaries = s.boundaries[:0]
		s.active = s.active[:0]
		for _, r := range s.refs[:hi] {
			x := r.iv.Intersect(st.Interval)
			if x.IsEmpty() {
				continue
			}
			s.active = append(s.active, innerRef{idx: r.idx, iv: x, val: r.val})
			s.boundaries = append(s.boundaries, x.Start, x.End)
		}
		if len(s.active) == 0 {
			continue
		}
		if combine == nil {
			// Restore inner-set order so groups preserve message order;
			// irrelevant under a commutative combiner.
			slices.SortFunc(s.active, func(a, b innerRef) int { return cmp.Compare(a.idx, b.idx) })
		}
		slices.Sort(s.boundaries)
		s.boundaries = dedupTimes(s.boundaries)

		// Sweep elementary segments between adjacent boundaries. Each
		// segment's group is carved from the arena; a merged segment rewinds
		// its carving (every earlier group ends at or before start, so the
		// rewound region is unreferenced).
		for bi := 0; bi+1 < len(s.boundaries); bi++ {
			seg := ival.New(s.boundaries[bi], s.boundaries[bi+1])
			start := len(s.vals)
			if combine != nil {
				folded, n := fold(s.active, seg, combine)
				if n == 0 {
					continue
				}
				s.vals = append(s.vals, folded)
			} else {
				for _, r := range s.active {
					if r.iv.ContainsInterval(seg) {
						s.vals = append(s.vals, r.val)
					}
				}
				if len(s.vals) == start {
					continue
				}
			}
			msgs := s.vals[start:len(s.vals):len(s.vals)]
			// Maximality: merge with the previous triple when it meets
			// this segment, has an equal outer value, and an identical
			// inner group.
			if n := len(out); n > base && out[n-1].Interval.Meets(seg) &&
				s.sameGroup(out[n-1], st.Value, msgs) {
				out[n-1].Interval.End = seg.End
				s.vals = s.vals[:start]
				continue
			}
			out = append(out, Tuple{Interval: seg, State: st.Value, Msgs: msgs})
		}
	}
	return out
}

// fold combines the values of active refs covering seg without building the
// group (the inline warp combiner's single pass).
func fold(active []innerRef, seg ival.Interval, combine CombineFunc) (Value, int) {
	var folded Value
	n := 0
	for _, r := range active {
		if r.iv.ContainsInterval(seg) {
			if n == 0 {
				folded = r.val
			} else {
				folded = combine(folded, r.val)
			}
			n++
		}
	}
	return folded, n
}

// sameGroup reports whether the previous output triple has the same state
// value and inner group as the candidate. Groups are compared as multisets
// of values — the formal Maximal property ranges over value sets, not
// positions. Values are compared with reflect.DeepEqual so that slice- and
// struct-valued messages work.
func (s *Scratch) sameGroup(prev Tuple, state Value, msgs []Value) bool {
	if len(prev.Msgs) != len(msgs) {
		return false
	}
	if !valueEqual(prev.State, state) {
		return false
	}
	if len(msgs) == 1 {
		// The combined path and single-message groups never need the
		// multiset matcher.
		return valueEqual(prev.Msgs[0], msgs[0])
	}
	if cap(s.used) < len(msgs) {
		s.used = make([]bool, len(msgs))
	} else {
		s.used = s.used[:len(msgs)]
		clear(s.used)
	}
	used := s.used
outer:
	for _, p := range prev.Msgs {
		for j, m := range msgs {
			if !used[j] && valueEqual(p, m) {
				used[j] = true
				continue outer
			}
		}
		return false
	}
	return true
}

// valueEqual compares two values, with fast paths for the common scalar
// payloads; reflect.DeepEqual is the fallback for composite values.
func valueEqual(a, b Value) bool {
	switch x := a.(type) {
	case int64:
		y, ok := b.(int64)
		return ok && x == y
	case float64:
		y, ok := b.(float64)
		return ok && x == y
	case int:
		y, ok := b.(int)
		return ok && x == y
	case bool:
		y, ok := b.(bool)
		return ok && x == y
	case string:
		y, ok := b.(string)
		return ok && x == y
	case nil:
		return b == nil
	}
	ta := reflect.TypeOf(a)
	if tb := reflect.TypeOf(b); ta != tb {
		return false
	}
	if ta.Comparable() {
		return a == b
	}
	return reflect.DeepEqual(a, b)
}

// ValueEqual exposes the payload comparison for sibling packages that fuse
// adjacent equal-valued entries (partitioned states, Chlonos message runs).
func ValueEqual(a, b Value) bool { return valueEqual(a, b) }

func dedupTimes(ts []ival.Time) []ival.Time {
	out := ts[:0]
	for i, t := range ts {
		if i == 0 || t != ts[i-1] {
			out = append(out, t)
		}
	}
	return out
}

// UnitFraction returns the fraction of inner tuples whose interval is
// unit-length; the warp-suppression heuristic of Sec. VI compares this
// against a threshold to bypass warp entirely.
func UnitFraction(inner []IntervalValue) float64 {
	if len(inner) == 0 {
		return 0
	}
	n := 0
	for _, m := range inner {
		if m.Interval.IsUnit() {
			n++
		}
	}
	return float64(n) / float64(len(inner))
}

// PointGroups degenerates warp to per-time-point grouping: for every
// time-point covered by at least one inner tuple and an outer partition, one
// unit-interval tuple is produced. This is the execution mode used when warp
// is suppressed (Sec. VI "Warp Suppression"); correctness is identical to
// Warp, only sharing is lost. Unbounded intervals are enumerated point-wise
// up to the largest finite boundary among the clipped inner intervals, after
// which a single [B, ∞) tail tuple groups the unbounded survivors, so the
// result stays finite and exact.
func PointGroups(outer, inner []IntervalValue) []Tuple {
	var s Scratch
	return s.pointGroups(nil, outer, inner, nil)
}

// PointGroupsCombined is PointGroups with an inline combiner: each tuple's
// Msgs holds the single folded value, as in WarpCombined.
func PointGroupsCombined(outer, inner []IntervalValue, combine CombineFunc) []Tuple {
	var s Scratch
	return s.pointGroups(nil, outer, inner, combine)
}

// PointGroups is PointGroups appending into dst with the scratch's buffers;
// the returned tuples' Msgs point into the scratch arena and follow the
// Scratch validity rule.
func (s *Scratch) PointGroups(dst []Tuple, outer, inner []IntervalValue) []Tuple {
	return s.pointGroups(dst, outer, inner, nil)
}

// PointGroupsCombined is PointGroupsCombined appending into dst with the
// scratch's buffers; the same validity rule applies.
func (s *Scratch) PointGroupsCombined(dst []Tuple, outer, inner []IntervalValue, combine CombineFunc) []Tuple {
	return s.pointGroups(dst, outer, inner, combine)
}

// pointGroups sweeps the clipped messages' boundaries per outer partition:
// each elementary segment has a constant group, shared (and, under a
// combiner, folded exactly once) by every point tuple it expands into. Total
// work stays O(points covered + m log m) — the same as the former per-point
// bucket map — without allocating buckets.
func (s *Scratch) pointGroups(out []Tuple, outer, inner []IntervalValue, combine CombineFunc) []Tuple {
	if len(outer) == 0 || len(inner) == 0 {
		return out
	}
	s.vals = s.vals[:0]
	for _, st := range outer {
		if st.Interval.IsEmpty() {
			continue
		}
		// Clip the messages (preserving inner-set order, so groups do too)
		// and find the largest finite boundary; points at or beyond it behave
		// identically, so unbounded tails fold into one trailing tuple.
		s.active = s.active[:0]
		maxFinite := st.Interval.Start
		unbounded := false
		for i, m := range inner {
			x := m.Interval.Intersect(st.Interval)
			if x.IsEmpty() {
				continue
			}
			s.active = append(s.active, innerRef{idx: i, iv: x, val: m.Value})
			if x.Start > maxFinite {
				maxFinite = x.Start
			}
			if x.End == ival.Infinity {
				unbounded = true
			} else if x.End > maxFinite {
				maxFinite = x.End
			}
		}
		if len(s.active) == 0 {
			continue
		}
		s.boundaries = s.boundaries[:0]
		for _, r := range s.active {
			s.boundaries = append(s.boundaries, r.iv.Start)
			if e := r.iv.End; e < maxFinite {
				s.boundaries = append(s.boundaries, e)
			} else {
				s.boundaries = append(s.boundaries, maxFinite)
			}
		}
		slices.Sort(s.boundaries)
		s.boundaries = dedupTimes(s.boundaries)
		for bi := 0; bi+1 < len(s.boundaries); bi++ {
			segStart, segEnd := s.boundaries[bi], s.boundaries[bi+1]
			start := len(s.vals)
			if combine != nil {
				folded, n := fold(s.active, ival.New(segStart, segEnd), combine)
				if n == 0 {
					continue
				}
				s.vals = append(s.vals, folded)
			} else {
				for _, r := range s.active {
					if r.iv.Contains(segStart) {
						s.vals = append(s.vals, r.val)
					}
				}
				if len(s.vals) == start {
					continue
				}
			}
			msgs := s.vals[start:len(s.vals):len(s.vals)]
			for t := segStart; t < segEnd; t++ {
				out = append(out, Tuple{Interval: ival.Point(t), State: st.Value, Msgs: msgs})
			}
		}
		if unbounded {
			start := len(s.vals)
			for _, r := range s.active {
				if r.iv.End != ival.Infinity {
					continue
				}
				if combine == nil || len(s.vals) == start {
					s.vals = append(s.vals, r.val)
				} else {
					s.vals[start] = combine(s.vals[start], r.val)
				}
			}
			out = append(out, Tuple{Interval: ival.From(maxFinite), State: st.Value, Msgs: s.vals[start:len(s.vals):len(s.vals)]})
		}
	}
	return out
}
