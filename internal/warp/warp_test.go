package warp

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	ival "graphite/internal/interval"
)

func iv(s, e ival.Time) ival.Interval { return ival.New(s, e) }

// fig3 builds an instance shaped like Fig. 3 of the paper: three partitioned
// states and five messages with intersection boundaries {0,2,4,5,7,9,10}.
func fig3() (outer, inner []IntervalValue) {
	outer = []IntervalValue{
		{iv(0, 5), "s1"},
		{iv(5, 9), "s2"},
		{iv(9, 12), "s3"},
	}
	inner = []IntervalValue{
		{iv(0, 4), "m1"},
		{iv(2, 7), "m2"},
		{iv(7, 10), "m3"},
		{iv(9, 10), "m4"},
		{iv(4, 9), "m5"},
	}
	return
}

func TestWarpFig3(t *testing.T) {
	outer, inner := fig3()
	got := Warp(outer, inner)
	want := []Tuple{
		{iv(0, 2), "s1", []Value{"m1"}},
		{iv(2, 4), "s1", []Value{"m1", "m2"}},
		{iv(4, 5), "s1", []Value{"m2", "m5"}},
		{iv(5, 7), "s2", []Value{"m2", "m5"}},
		{iv(7, 9), "s2", []Value{"m3", "m5"}},
		{iv(9, 10), "s3", []Value{"m3", "m4"}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("warp =\n%v\nwant\n%v", got, want)
	}
}

func TestWarpMergesAcrossMessageBoundaries(t *testing.T) {
	// A message duplicated over two adjacent intervals with the same value:
	// maximality must fuse the output (Mj = Mk as value groups).
	outer := []IntervalValue{{iv(0, 10), "s"}}
	inner := []IntervalValue{
		{iv(0, 5), int64(7)},
		{iv(5, 10), int64(7)},
	}
	got := Warp(outer, inner)
	want := []Tuple{{iv(0, 10), "s", []Value{int64(7)}}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("warp = %v, want fused %v", got, want)
	}
}

func TestWarpMergesAcrossStatePartitions(t *testing.T) {
	// Adjacent state partitions with equal values and the same message
	// group must merge (the formal Maximal property ranges over values).
	outer := []IntervalValue{
		{iv(0, 5), int64(1)},
		{iv(5, 10), int64(1)},
	}
	inner := []IntervalValue{{iv(0, 10), "m"}}
	got := Warp(outer, inner)
	want := []Tuple{{iv(0, 10), int64(1), []Value{"m"}}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("warp = %v, want %v", got, want)
	}
}

func TestWarpSSSPExample(t *testing.T) {
	// Superstep 3 of the paper's SSSP walkthrough: vertex E with prior
	// state 〈[0,∞), ∞〉 and messages 〈[9,∞), 5〉 from B, 〈[6,∞), 7〉 from C
	// warps to 〈[6,9), ∞, {7}〉 and 〈[9,∞), ∞, {5,7}〉.
	inf := int64(1 << 40)
	outer := []IntervalValue{{ival.Universe, inf}}
	inner := []IntervalValue{
		{ival.From(9), int64(5)},
		{ival.From(6), int64(7)},
	}
	got := Warp(outer, inner)
	want := []Tuple{
		{iv(6, 9), inf, []Value{int64(7)}},
		{ival.From(9), inf, []Value{int64(5), int64(7)}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("warp = %v, want %v", got, want)
	}
}

func TestWarpEmptyInputs(t *testing.T) {
	if got := Warp(nil, []IntervalValue{{iv(0, 5), 1}}); got != nil {
		t.Errorf("empty outer should give nil, got %v", got)
	}
	if got := Warp([]IntervalValue{{iv(0, 5), 1}}, nil); got != nil {
		t.Errorf("empty inner should give nil, got %v", got)
	}
	if got := Warp([]IntervalValue{{iv(0, 5), 1}}, []IntervalValue{{ival.Empty, 2}}); got != nil {
		t.Errorf("all-empty inner intervals should give nil, got %v", got)
	}
	// Disjoint in time: nothing to group.
	if got := Warp([]IntervalValue{{iv(0, 5), 1}}, []IntervalValue{{iv(7, 9), 2}}); got != nil {
		t.Errorf("disjoint sets should give nil, got %v", got)
	}
}

func TestWarpCombined(t *testing.T) {
	outer, inner := fig3()
	// Replace message values with ints to fold.
	for i := range inner {
		inner[i].Value = int64(i + 1)
	}
	sum := func(a, b Value) Value { return a.(int64) + b.(int64) }
	got := WarpCombined(outer, inner, sum)
	plain := Warp(outer, inner)
	if len(got) != len(plain) {
		t.Fatalf("combined output length %d != plain %d", len(got), len(plain))
	}
	for i, tu := range got {
		var want int64
		for _, m := range plain[i].Msgs {
			want += m.(int64)
		}
		if len(tu.Msgs) != 1 || tu.Msgs[0].(int64) != want {
			t.Errorf("tuple %d: combined = %v, want [%d]", i, tu.Msgs, want)
		}
		if tu.Interval != plain[i].Interval {
			t.Errorf("tuple %d: interval mismatch %v vs %v", i, tu.Interval, plain[i].Interval)
		}
	}
}

func TestTimeJoin(t *testing.T) {
	outer := []IntervalValue{{iv(0, 5), "a"}, {iv(5, 10), "b"}}
	inner := []IntervalValue{{iv(3, 7), "x"}, {iv(8, 9), "y"}, {iv(20, 30), "z"}}
	got := TimeJoin(outer, inner)
	want := []JoinTriple{
		{iv(3, 5), "a", "x"},
		{iv(5, 7), "b", "x"},
		{iv(8, 9), "b", "y"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("timejoin = %v, want %v", got, want)
	}
}

func TestUnitFraction(t *testing.T) {
	inner := []IntervalValue{
		{ival.Point(3), 1},
		{ival.Point(9), 1},
		{iv(0, 5), 1},
		{ival.From(2), 1},
	}
	if got := UnitFraction(inner); got != 0.5 {
		t.Errorf("unit fraction = %v, want 0.5", got)
	}
	if UnitFraction(nil) != 0 {
		t.Errorf("empty fraction should be 0")
	}
}

// --- Property-based validation against a per-time-point oracle ---

// samplePoints are the time-points at which the oracle checks agreement;
// the generator keeps all finite boundaries below 48, and the large points
// probe unbounded tails.
var samplePoints = func() []ival.Time {
	var ps []ival.Time
	for t := ival.Time(0); t < 48; t++ {
		ps = append(ps, t)
	}
	return append(ps, 1000, 1_000_000, ival.Infinity-1)
}()

// randInstance generates a random temporally partitioned outer set and a
// random inner set. State values are unique ints; message values are small
// ints (so duplicate values occur and exercise maximal merging).
func randInstance(r *rand.Rand) (outer, inner []IntervalValue) {
	// Partitioned states covering [start, end-or-∞).
	cur := ival.Time(r.Intn(6))
	n := 1 + r.Intn(4)
	for i := 0; i < n; i++ {
		next := cur + ival.Time(1+r.Intn(10))
		intv := ival.New(cur, next)
		if i == n-1 && r.Intn(2) == 0 {
			intv = ival.From(cur)
		}
		outer = append(outer, IntervalValue{intv, 100 + i})
		cur = next
	}
	m := r.Intn(7)
	for i := 0; i < m; i++ {
		s := ival.Time(r.Intn(40))
		var intv ival.Interval
		switch r.Intn(4) {
		case 0:
			intv = ival.From(s)
		case 1:
			intv = ival.Point(s)
		default:
			intv = ival.New(s, s+ival.Time(1+r.Intn(12)))
		}
		inner = append(inner, IntervalValue{intv, r.Intn(3)})
	}
	return
}

func checkWarpProperties(t *testing.T, outer, inner []IntervalValue, out []Tuple) {
	t.Helper()
	// Output must be temporally partitioned (sorted, pairwise disjoint).
	for i := 1; i < len(out); i++ {
		if out[i-1].Interval.End > out[i].Interval.Start {
			t.Fatalf("output not temporally partitioned: %v then %v", out[i-1], out[i])
		}
	}
	for _, tu := range out {
		if tu.Interval.IsEmpty() {
			t.Fatalf("empty output interval: %v", tu)
		}
		if len(tu.Msgs) == 0 {
			t.Fatalf("empty message group: %v", tu)
		}
	}
	for _, tp := range samplePoints {
		// Oracle state and message multiset at tp.
		var stVal Value
		stFound := false
		for _, o := range outer {
			if o.Interval.Contains(tp) {
				stVal, stFound = o.Value, true
			}
		}
		var oracleMsgs []Value
		for _, m := range inner {
			if m.Interval.Contains(tp) {
				oracleMsgs = append(oracleMsgs, m.Value)
			}
		}
		// Warp tuples containing tp.
		var hits []Tuple
		for _, tu := range out {
			if tu.Interval.Contains(tp) {
				hits = append(hits, tu)
			}
		}
		if !stFound || len(oracleMsgs) == 0 {
			// Properties 2: nothing may be emitted here.
			if len(hits) != 0 {
				t.Fatalf("t=%d: invalid inclusion: %v (state found=%v, msgs=%v)", tp, hits, stFound, oracleMsgs)
			}
			continue
		}
		// Property 3: exactly one tuple covers tp.
		if len(hits) != 1 {
			t.Fatalf("t=%d: %d tuples cover the point, want 1", tp, len(hits))
		}
		h := hits[0]
		if !reflect.DeepEqual(h.State, stVal) {
			t.Fatalf("t=%d: state %v, oracle %v", tp, h.State, stVal)
		}
		// Property 1 + 2 on the group: multiset equality with the oracle.
		if !multisetEqual(h.Msgs, oracleMsgs) {
			t.Fatalf("t=%d: msgs %v, oracle %v", tp, h.Msgs, oracleMsgs)
		}
	}
	// Property 4: no adjacent/overlapping tuples with equal state and group.
	for i := 1; i < len(out); i++ {
		a, b := out[i-1], out[i]
		if a.Interval.Meets(b.Interval) && reflect.DeepEqual(a.State, b.State) &&
			multisetEqual(a.Msgs, b.Msgs) {
			t.Fatalf("maximality violated: %v and %v", a, b)
		}
	}
}

func multisetEqual(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	counts := map[Value]int{}
	for _, v := range a {
		counts[v]++
	}
	for _, v := range b {
		counts[v]--
		if counts[v] < 0 {
			return false
		}
	}
	return true
}

func TestWarpPropertiesRandomized(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		outer, inner := randInstance(r)
		out := Warp(outer, inner)
		checkWarpProperties(t, outer, inner, out)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPointGroupsMatchesWarp validates the suppression path: flattening the
// warp output to time-points must equal the point-group output, including
// the unbounded tail.
func TestPointGroupsMatchesWarp(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		outer, inner := randInstance(r)
		w := Warp(outer, inner)
		p := PointGroups(outer, inner)
		for _, tp := range samplePoints {
			var wg, pg []Value
			for _, tu := range w {
				if tu.Interval.Contains(tp) {
					wg = tu.Msgs
				}
			}
			for _, tu := range p {
				if tu.Interval.Contains(tp) {
					pg = tu.Msgs
				}
			}
			if !multisetEqual(wg, pg) {
				t.Logf("t=%d: warp %v point %v", tp, wg, pg)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWarpCombinedMatchesFold(t *testing.T) {
	min := func(a, b Value) Value {
		if a.(int) < b.(int) {
			return a
		}
		return b
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		outer, inner := randInstance(r)
		plain := Warp(outer, inner)
		comb := WarpCombined(outer, inner, min)
		// Every plain tuple interval must be covered by combined tuples
		// with the folded value; combined may be coarser (folding can make
		// adjacent groups equal), so compare point-wise.
		for _, tp := range samplePoints {
			var want Value
			for _, tu := range plain {
				if tu.Interval.Contains(tp) {
					w := tu.Msgs[0]
					for _, m := range tu.Msgs[1:] {
						w = min(w, m)
					}
					want = w
				}
			}
			var got Value
			for _, tu := range comb {
				if tu.Interval.Contains(tp) {
					got = tu.Msgs[0]
				}
			}
			if !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
