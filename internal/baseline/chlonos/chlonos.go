// Package chlonos implements the Chlonos baseline of Sec. VII-A3, a clone
// of Chronos [4]: a batch of snapshots is loaded into one vectorized
// in-memory layout and executed together. The user compute logic still runs
// once per (vertex, snapshot) — computation is NOT shared — but when a
// vertex pushes identical messages to the same sink for adjacent snapshots
// of the batch, they are replaced by a single interval message, saving
// network time and memory. The batch size models the paper's memory limits
// (e.g. Twitter fit only 6 snapshots per batch).
package chlonos

import (
	"graphite/internal/baseline/valgo"
	"graphite/internal/engine"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
	"graphite/internal/vcm"
	"graphite/internal/warp"
)

// Result holds per-snapshot vertex states and accumulated metrics.
type Result struct {
	Graph   *tgraph.Graph
	Metrics engine.Metrics
	Batches int
	states  map[ival.Time][]any
}

// State returns the final state of vertex index v in the snapshot at t.
func (r *Result) State(v int, t ival.Time) any {
	s, ok := r.states[t]
	if !ok {
		return nil
	}
	return s[v]
}

// Run executes the spec over the graph in batches of batchSize snapshots.
func Run(g *tgraph.Graph, spec valgo.Spec, batchSize, workers int) (*Result, error) {
	if batchSize < 1 {
		batchSize = 1
	}
	out := &Result{Graph: g, states: map[ival.Time][]any{}}
	for b := g.Lifespan().Start; b < g.Horizon(); b += ival.Time(batchSize) {
		end := b + ival.Time(batchSize)
		if end > g.Horizon() {
			end = g.Horizon()
		}
		batchSpec := valgo.Fresh(spec)
		rt := &batchRuntime{
			g:     g,
			prog:  batchSpec.Program,
			batch: ival.New(b, end),
			aa:    batchSpec.Options.ActivateAll,
		}
		rt.states = make([][]any, g.NumVertices())
		for v := range rt.states {
			rt.states[v] = make([]any, end-b)
		}
		cfg := engine.Config{
			NumWorkers:    workers,
			MaxSupersteps: batchSpec.Options.MaxSupersteps,
			ActivateAll:   batchSpec.Options.ActivateAll,
			PayloadCodec:  batchSpec.Options.PayloadCodec,
			Master:        batchSpec.Options.Master,
		}
		if batchSpec.Options.Combine != nil {
			cfg.Combiner = engine.CombinerFunc(batchSpec.Options.Combine)
		}
		eng, err := engine.New(g.NumVertices(), rt, cfg)
		if err != nil {
			return nil, err
		}
		for name, agg := range batchSpec.Options.Aggregators {
			eng.RegisterAggregator(name, agg)
		}
		m, err := eng.Run()
		if err != nil {
			return nil, err
		}
		out.Metrics.Add(m)
		out.Batches++
		for t := b; t < end; t++ {
			col := make([]any, g.NumVertices())
			for v := range col {
				col[v] = rt.states[v][t-b]
			}
			out.states[t] = col
		}
	}
	return out, nil
}

// send is one buffered per-snapshot message emission.
type send struct {
	dst int
	t   ival.Time
	val any
}

// batchRuntime vectorizes one batch of snapshots into a single engine run.
type batchRuntime struct {
	g      *tgraph.Graph
	prog   vcm.Program
	batch  ival.Interval
	aa     bool    // ActivateAll: message-less snapshots still compute
	states [][]any // [vertex][t - batch.Start]
}

// Init implements engine.Program.
func (rt *batchRuntime) Init(ctx *engine.Context) {}

// Run implements engine.Program: expand interval messages per snapshot,
// invoke the user logic per (vertex, snapshot), then fuse adjacent-snapshot
// duplicate sends into interval messages.
func (rt *batchRuntime) Run(ctx *engine.Context, msgs []engine.Message) {
	v := ctx.Vertex()
	life := rt.g.VertexAt(v).Lifespan
	c := batchCtx{rt: rt, eng: ctx, idx: v}
	// Expand interval messages into per-snapshot buckets in one pass.
	var buckets [][]any
	if len(msgs) > 0 {
		buckets = make([][]any, rt.batch.End-rt.batch.Start)
		for _, m := range msgs {
			x := m.When.Intersect(rt.batch)
			for t := x.Start; t < x.End; t++ {
				buckets[t-rt.batch.Start] = append(buckets[t-rt.batch.Start], m.Value)
			}
		}
	}
	for t := rt.batch.Start; t < rt.batch.End; t++ {
		if !life.Contains(t) {
			continue
		}
		c.t = t
		if ctx.Superstep() == 1 {
			ctx.AddComputeCalls(1)
			rt.prog.Init(&c)
			continue
		}
		var vals []any
		if buckets != nil {
			vals = buckets[t-rt.batch.Start]
		}
		if len(vals) == 0 && !rt.activateAll() {
			continue
		}
		ctx.AddComputeCalls(1)
		rt.prog.Compute(&c, vals)
	}
	rt.flush(ctx, c.buf)
}

// activateAll reports whether message-less snapshots still compute; the
// engine only invokes Run for inactive vertices under ActivateAll, so the
// per-snapshot decision mirrors it.
func (rt *batchRuntime) activateAll() bool { return rt.aa }

// flush groups buffered sends by sink and value, fusing runs of adjacent
// snapshots into single interval messages (the Chronos message-sharing
// optimization).
func (rt *batchRuntime) flush(ctx *engine.Context, buf []send) {
	if len(buf) == 0 {
		return
	}
	// Bucket by sink in first-seen order, preserving the ascending-t
	// emission order within each bucket (the outer compute loop visits
	// snapshots in time order).
	counts := map[int]int{}
	for _, sd := range buf {
		counts[sd.dst]++
	}
	offs := make(map[int]int, len(counts))
	var order []int
	pos := 0
	for _, sd := range buf {
		if _, ok := offs[sd.dst]; !ok {
			offs[sd.dst] = pos
			pos += counts[sd.dst]
			order = append(order, sd.dst)
		}
	}
	ordered := make([]send, len(buf))
	fill := make(map[int]int, len(counts))
	for _, sd := range buf {
		ordered[offs[sd.dst]+fill[sd.dst]] = sd
		fill[sd.dst]++
	}
	for _, d := range order {
		rt.flushDst(ctx, ordered[offs[d]:offs[d]+counts[d]])
	}
}

// flushDst fuses one sink's sends: for each distinct value, maximal runs of
// consecutive snapshots become one message; duplicate emissions at the same
// snapshot (multi-edges) are preserved as separate layers.
func (rt *batchRuntime) flushDst(ctx *engine.Context, sends []send) {
	used := make([]bool, len(sends))
	for i := range sends {
		if used[i] {
			continue
		}
		// Collect all unused sends with this value, in time order.
		var idxs []int
		for j := i; j < len(sends); j++ {
			if !used[j] && warp.ValueEqual(sends[j].val, sends[i].val) {
				idxs = append(idxs, j)
			}
		}
		// Peel consecutive-run layers until all occurrences are sent.
		for len(idxs) > 0 {
			var rest []int
			runStart := sends[idxs[0]].t
			prev := runStart
			used[idxs[0]] = true
			for _, j := range idxs[1:] {
				t := sends[j].t
				switch {
				case t == prev:
					rest = append(rest, j) // duplicate at same t: next layer
				case t == prev+1:
					prev = t
					used[j] = true
				default:
					ctx.Send(sends[idxs[0]].dst, ival.New(runStart, prev+1), sends[i].val)
					runStart, prev = t, t
					used[j] = true
				}
			}
			ctx.Send(sends[idxs[0]].dst, ival.New(runStart, prev+1), sends[i].val)
			idxs = rest
		}
	}
}

// batchCtx is the per-(vertex, snapshot) Ctx for a batch run.
type batchCtx struct {
	rt  *batchRuntime
	eng *engine.Context
	idx int
	t   ival.Time
	buf []send
}

func (c *batchCtx) Vertex() int         { return c.idx }
func (c *batchCtx) ID() tgraph.VertexID { return c.rt.g.VertexAt(c.idx).ID }
func (c *batchCtx) Superstep() int      { return c.eng.Superstep() }
func (c *batchCtx) Phase() int          { return c.eng.Phase() }
func (c *batchCtx) Time() ival.Time     { return c.t }
func (c *batchCtx) NumVertices() int    { return c.rt.g.NumVertices() }

func (c *batchCtx) State() any {
	return c.rt.states[c.idx][c.t-c.rt.batch.Start]
}

func (c *batchCtx) SetState(v any) {
	c.rt.states[c.idx][c.t-c.rt.batch.Start] = v
}

func (c *batchCtx) OutEdges(fn func(e *tgraph.Edge, dst int)) {
	c.rt.g.SnapshotAt(c.t).OutEdgesIdx(c.idx, fn)
}

func (c *batchCtx) InEdges(fn func(e *tgraph.Edge, src int)) {
	c.rt.g.SnapshotAt(c.t).InEdgesIdx(c.idx, fn)
}

func (c *batchCtx) OutEdgesSimple(fn func(dst int)) {
	c.OutEdges(func(_ *tgraph.Edge, dst int) { fn(dst) })
}

func (c *batchCtx) InEdgesSimple(fn func(src int)) {
	c.InEdges(func(_ *tgraph.Edge, src int) { fn(src) })
}

func (c *batchCtx) OutDegree() int { return c.rt.g.OutDegreeAt(c.idx, c.t) }

func (c *batchCtx) Send(dst int, value any) {
	c.buf = append(c.buf, send{dst: dst, t: c.t, val: value})
}

func (c *batchCtx) Aggregate(name string, v any) { c.eng.Aggregate(name, v) }
func (c *batchCtx) AggValue(name string) any     { return c.eng.AggValue(name) }
