package chlonos

import (
	"testing"

	"graphite/internal/baseline/valgo"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// stableLine builds 0→1→2 alive over the whole window so every snapshot
// sends identical messages — the best case for Chronos-style sharing.
func stableLine(t *testing.T, snapshots int) *tgraph.Graph {
	t.Helper()
	b := tgraph.NewBuilder(3, 2)
	life := ival.New(0, ival.Time(snapshots))
	for v := tgraph.VertexID(0); v < 3; v++ {
		b.AddVertex(v, life)
	}
	b.AddEdge(0, 0, 1, life)
	b.AddEdge(1, 1, 2, life)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMessageSharingAcrossBatch(t *testing.T) {
	g := stableLine(t, 8)
	// One batch holding all 8 snapshots: every BFS message is identical
	// across snapshots, so Chlonos should send exactly one interval message
	// where MSB would send 8.
	r, err := Run(g, valgo.BFSSpec(0), 8, 2)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.Batches != 1 {
		t.Fatalf("batches = %d, want 1", r.Batches)
	}
	// BFS: superstep1 sends 0→1 once (fused over 8 snapshots); superstep2
	// sends 1→2 once.
	if r.Metrics.Messages != 2 {
		t.Errorf("messages = %d, want 2 (fully fused)", r.Metrics.Messages)
	}
	// Compute calls stay per (vertex, snapshot): 3×8 init + activations.
	if r.Metrics.ComputeCalls < 24 {
		t.Errorf("compute calls = %d, want >= 24", r.Metrics.ComputeCalls)
	}
	for ts := ival.Time(0); ts < 8; ts++ {
		for v, want := range []int64{0, 1, 2} {
			if got := r.State(v, ts).(int64); got != want {
				t.Fatalf("state[%d]@%d = %d, want %d", v, ts, got, want)
			}
		}
	}
}

func TestBatchSizeSplitsSharing(t *testing.T) {
	g := stableLine(t, 8)
	r, err := Run(g, valgo.BFSSpec(0), 2, 2)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.Batches != 4 {
		t.Fatalf("batches = %d, want 4", r.Batches)
	}
	// Sharing is limited to each 2-snapshot batch: 2 messages per batch.
	if r.Metrics.Messages != 8 {
		t.Errorf("messages = %d, want 8", r.Metrics.Messages)
	}
}

func TestFlushPeelsDuplicateLayers(t *testing.T) {
	// Two parallel edges 0→1 produce duplicate same-value sends per
	// snapshot; the run-fusion must preserve both layers.
	b := tgraph.NewBuilder(2, 2)
	life := ival.New(0, 4)
	b.AddVertex(0, life).AddVertex(1, life)
	b.AddEdge(0, 0, 1, life)
	b.AddEdge(1, 0, 1, life)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(g, valgo.BFSSpec(0), 4, 1)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Superstep 1 emits over both edge instances: 2 fused messages.
	if r.Metrics.Messages != 2 {
		t.Errorf("messages = %d, want 2 (one per multi-edge layer)", r.Metrics.Messages)
	}
	for ts := ival.Time(0); ts < 4; ts++ {
		if got := r.State(1, ts).(int64); got != 1 {
			t.Fatalf("state[1]@%d = %d", ts, got)
		}
	}
}
