// Package valgo implements the time-independent algorithms (BFS, WCC, SCC,
// PageRank) as plain vertex-centric programs over internal/vcm. The MSB and
// Chlonos baselines execute these programs — per snapshot and per snapshot
// batch respectively — so the primitives, not the algorithm logic, are the
// difference under measurement, exactly as in the paper's setup.
package valgo

import (
	"math"

	"graphite/internal/codec"
	"graphite/internal/engine"
	"graphite/internal/vcm"
)

// Unreachable is the sentinel for unvisited/absent values.
const Unreachable = int64(math.MaxInt64)

// MinCombine folds int64 messages to their minimum (BFS/WCC combiner).
func MinCombine(a, b any) any {
	if a.(int64) < b.(int64) {
		return a
	}
	return b
}

// Spec bundles a VCM program with the run options it needs; the baseline
// drivers apply them per snapshot or per batch.
type Spec struct {
	Program vcm.Program
	Options vcm.Options
}

// BFS is vertex-centric breadth-first search from a source vertex id.
type BFS struct {
	Source int64
}

// Init seeds the source at level 0 and broadcasts level 1.
func (p *BFS) Init(ctx vcm.Ctx) {
	if int64(ctx.ID()) != p.Source {
		ctx.SetState(Unreachable)
		return
	}
	ctx.SetState(int64(0))
	ctx.OutEdgesSimple(func(dst int) { ctx.Send(dst, int64(1)) })
}

// Compute adopts the smallest level and rebroadcasts on improvement.
func (p *BFS) Compute(ctx vcm.Ctx, msgs []any) {
	best := ctx.State().(int64)
	for _, m := range msgs {
		if x := m.(int64); x < best {
			best = x
		}
	}
	if best < ctx.State().(int64) {
		ctx.SetState(best)
		ctx.OutEdgesSimple(func(dst int) { ctx.Send(dst, best+1) })
	}
}

// BFSSpec returns the BFS program and options.
func BFSSpec(source int64) Spec {
	return Spec{
		Program: &BFS{Source: source},
		Options: vcm.Options{Combine: MinCombine, PayloadCodec: codec.Int64{}},
	}
}

// WCC is vertex-centric weakly-connected components: minimum id label
// propagation over edges treated as undirected.
type WCC struct{}

// Init claims the own id and broadcasts it both ways.
func (p *WCC) Init(ctx vcm.Ctx) {
	id := int64(ctx.ID())
	ctx.SetState(id)
	p.broadcast(ctx, id)
}

// Compute adopts the smallest label and rebroadcasts on improvement.
func (p *WCC) Compute(ctx vcm.Ctx, msgs []any) {
	best := ctx.State().(int64)
	for _, m := range msgs {
		if x := m.(int64); x < best {
			best = x
		}
	}
	if best < ctx.State().(int64) {
		ctx.SetState(best)
		p.broadcast(ctx, best)
	}
}

func (p *WCC) broadcast(ctx vcm.Ctx, label int64) {
	ctx.OutEdgesSimple(func(dst int) { ctx.Send(dst, label) })
	ctx.InEdgesSimple(func(src int) { ctx.Send(src, label) })
}

// WCCSpec returns the WCC program and options.
func WCCSpec() Spec {
	return Spec{
		Program: &WCC{},
		Options: vcm.Options{Combine: MinCombine, PayloadCodec: codec.Int64{}},
	}
}

// PageRank is vertex-centric PR with a fixed iteration budget, matching the
// ICM implementation's conventions (N = total vertices, dangling mass
// leaks).
type PageRank struct {
	Iterations int
	Damping    float64
}

// Init seeds the uniform rank and scatters the first contributions.
func (p *PageRank) Init(ctx vcm.Ctx) {
	rank := 1 / float64(ctx.NumVertices())
	ctx.SetState(rank)
	p.scatter(ctx, rank)
}

// Compute sums contributions into the damped rank.
func (p *PageRank) Compute(ctx vcm.Ctx, msgs []any) {
	var sum float64
	for _, m := range msgs {
		sum += m.(float64)
	}
	rank := (1-p.Damping)/float64(ctx.NumVertices()) + p.Damping*sum
	ctx.SetState(rank)
	if ctx.Superstep() <= p.Iterations {
		p.scatter(ctx, rank)
	}
}

func (p *PageRank) scatter(ctx vcm.Ctx, rank float64) {
	deg := ctx.OutDegree()
	if deg == 0 {
		return
	}
	share := rank / float64(deg)
	ctx.OutEdgesSimple(func(dst int) { ctx.Send(dst, share) })
}

// PageRankSpec returns the PR program and options.
func PageRankSpec(iterations int) Spec {
	if iterations <= 0 {
		iterations = 10
	}
	return Spec{
		Program: &PageRank{Iterations: iterations, Damping: 0.85},
		Options: vcm.Options{
			ActivateAll:   true,
			MaxSupersteps: iterations + 1,
			Combine:       func(a, b any) any { return a.(float64) + b.(float64) },
			PayloadCodec:  codec.Float64{},
		},
	}
}

// SCC is the vertex-centric forward-backward coloring algorithm, the same
// machine the ICM version uses (even phases propagate the maximum id along
// out-edges; odd phases propagate component claims along in-edges).
type SCC struct{}

// sccVal is the per-vertex state.
type sccVal struct {
	Fwd   int64
	Scc   int64
	Phase int64
}

// Aggregator names shared with the SCC master.
const (
	SCCChanged    = "vscc.changed"
	SCCUnassigned = "vscc.unassigned"
)

// Init enters the first FW round.
func (p *SCC) Init(ctx vcm.Ctx) {
	id := int64(ctx.ID())
	ctx.SetState(sccVal{Fwd: id, Scc: -1, Phase: 0})
	ctx.Aggregate(SCCChanged, true)
	ctx.Aggregate(SCCUnassigned, true)
	ctx.OutEdgesSimple(func(dst int) { ctx.Send(dst, id) })
}

// Compute implements both phases under master control.
func (p *SCC) Compute(ctx vcm.Ctx, msgs []any) {
	st := ctx.State().(sccVal)
	if st.Scc >= 0 {
		return
	}
	ctx.Aggregate(SCCUnassigned, true)
	id := int64(ctx.ID())
	phase := int64(ctx.Phase())

	if st.Phase != phase {
		if phase%2 == 0 {
			ctx.Aggregate(SCCChanged, true)
			ctx.SetState(sccVal{Fwd: id, Scc: -1, Phase: phase})
			ctx.OutEdgesSimple(func(dst int) { ctx.Send(dst, id) })
			return
		}
		if st.Fwd == id {
			ctx.Aggregate(SCCChanged, true)
			ctx.SetState(sccVal{Fwd: st.Fwd, Scc: id, Phase: phase})
			ctx.InEdgesSimple(func(src int) { ctx.Send(src, id) })
			return
		}
		ctx.SetState(sccVal{Fwd: st.Fwd, Scc: -1, Phase: phase})
		return
	}

	if phase%2 == 0 {
		best := st.Fwd
		for _, m := range msgs {
			if x := m.(int64); x > best {
				best = x
			}
		}
		if best > st.Fwd {
			ctx.Aggregate(SCCChanged, true)
			ctx.SetState(sccVal{Fwd: best, Scc: -1, Phase: phase})
			ctx.OutEdgesSimple(func(dst int) { ctx.Send(dst, best) })
		}
		return
	}
	for _, m := range msgs {
		if c := m.(int64); c == st.Fwd {
			ctx.Aggregate(SCCChanged, true)
			ctx.SetState(sccVal{Fwd: st.Fwd, Scc: c, Phase: phase})
			ctx.InEdgesSimple(func(src int) { ctx.Send(src, c) })
			return
		}
	}
}

// SCCLabel extracts the component label from a final state (-1 when
// unassigned or inactive).
func SCCLabel(state any) int64 {
	if s, ok := state.(sccVal); ok {
		return s.Scc
	}
	return -1
}

// sccMaster drives the phase machine.
type sccMaster struct{}

// BeforeSuperstep advances phases on global stability and halts when every
// vertex is assigned.
func (m *sccMaster) BeforeSuperstep(mc *engine.MasterControl) {
	if mc.Superstep() <= 2 {
		return
	}
	if changed, _ := mc.AggValue(SCCChanged).(bool); changed {
		return
	}
	if unassigned, _ := mc.AggValue(SCCUnassigned).(bool); !unassigned {
		mc.Halt()
		return
	}
	mc.SetPhase(mc.Phase() + 1)
}

// SCCSpec returns the SCC program and options.
func SCCSpec() Spec {
	return Spec{
		Program: &SCC{},
		Options: vcm.Options{
			ActivateAll:  true,
			Master:       &sccMaster{},
			PayloadCodec: codec.Int64{},
			Aggregators: map[string]*engine.Aggregator{
				SCCChanged:    engine.BoolOr(),
				SCCUnassigned: engine.BoolOr(),
			},
		},
	}
}

// Fresh returns a new Spec of the same kind as spec, so that per-run
// mutable pieces (aggregators, master state) are not shared across the
// independent runs a baseline driver performs.
func Fresh(spec Spec) Spec {
	switch p := spec.Program.(type) {
	case *BFS:
		return BFSSpec(p.Source)
	case *WCC:
		return WCCSpec()
	case *PageRank:
		return PageRankSpec(p.Iterations)
	case *SCC:
		return SCCSpec()
	default:
		return spec
	}
}
