package valgo

import (
	"testing"

	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
	"graphite/internal/vcm"
)

// diamondAt builds a static-at-t diamond 0→{1,2}→3 alive over [0,4).
func diamondAt(t *testing.T) *tgraph.Graph {
	t.Helper()
	b := tgraph.NewBuilder(4, 4)
	life := ival.New(0, 4)
	for v := tgraph.VertexID(0); v < 4; v++ {
		b.AddVertex(v, life)
	}
	b.AddEdge(0, 0, 1, life)
	b.AddEdge(1, 0, 2, life)
	b.AddEdge(2, 1, 3, life)
	b.AddEdge(3, 2, 3, life)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBFSSpecOnSnapshot(t *testing.T) {
	g := diamondAt(t)
	spec := BFSSpec(0)
	r, err := vcm.RunSnapshot(g, 1, spec.Program, spec.Options)
	if err != nil {
		t.Fatalf("RunSnapshot: %v", err)
	}
	for v, want := range []int64{0, 1, 1, 2} {
		if got := r.State(v).(int64); got != want {
			t.Errorf("level[%d] = %d, want %d", v, got, want)
		}
	}
}

func TestWCCSpecOnSnapshot(t *testing.T) {
	g := diamondAt(t)
	spec := WCCSpec()
	r, err := vcm.RunSnapshot(g, 0, spec.Program, spec.Options)
	if err != nil {
		t.Fatalf("RunSnapshot: %v", err)
	}
	for v := 0; v < 4; v++ {
		if got := r.State(v).(int64); got != 0 {
			t.Errorf("label[%d] = %d, want 0", v, got)
		}
	}
}

func TestPageRankSpecSumsContributions(t *testing.T) {
	g := diamondAt(t)
	spec := PageRankSpec(5)
	r, err := vcm.RunSnapshot(g, 2, spec.Program, spec.Options)
	if err != nil {
		t.Fatalf("RunSnapshot: %v", err)
	}
	// Vertex 3 collects both branch contributions; it must outrank 1 and 2.
	r3 := r.State(3).(float64)
	r1 := r.State(1).(float64)
	if r3 <= r1 {
		t.Errorf("rank(3)=%f should exceed rank(1)=%f", r3, r1)
	}
}

func TestSCCSpecSingletons(t *testing.T) {
	g := diamondAt(t) // acyclic: all singletons
	spec := SCCSpec()
	r, err := vcm.RunSnapshot(g, 0, spec.Program, spec.Options)
	if err != nil {
		t.Fatalf("RunSnapshot: %v", err)
	}
	for v := int64(0); v < 4; v++ {
		if got := SCCLabel(r.State(int(v))); got != v {
			t.Errorf("scc[%d] = %d, want %d", v, got, v)
		}
	}
	if SCCLabel(nil) != -1 {
		t.Errorf("nil state should decode to -1")
	}
}

func TestFreshRebuildsEachKind(t *testing.T) {
	// Stateful pieces (aggregators, masters) must be new instances; zero-
	// sized programs may legitimately share an address.
	orig := SCCSpec()
	fresh := Fresh(orig)
	for name, agg := range orig.Options.Aggregators {
		if fresh.Options.Aggregators[name] == agg {
			t.Errorf("aggregator %q shared between Fresh specs", name)
		}
	}
	// The SCC master is stateless, so instance sharing is immaterial.
	bfs := BFSSpec(3)
	if Fresh(bfs).Program.(*BFS).Source != 3 {
		t.Errorf("Fresh must preserve the BFS source")
	}
	if Fresh(PageRankSpec(7)).Program.(*PageRank).Iterations != 7 {
		t.Errorf("Fresh must preserve PR iterations")
	}
	// Unknown kinds pass through.
	odd := Spec{}
	if Fresh(odd).Program != nil {
		t.Errorf("unknown spec should pass through")
	}
}

func TestMinCombine(t *testing.T) {
	if got := MinCombine(int64(3), int64(5)).(int64); got != 3 {
		t.Errorf("MinCombine = %d", got)
	}
	if got := MinCombine(int64(9), int64(5)).(int64); got != 5 {
		t.Errorf("MinCombine = %d", got)
	}
}
