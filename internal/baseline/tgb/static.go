// Package tgb implements the Transformed Graph Baseline of Sec. VII-A3
// (Wu et al. [6]): the interval graph is unrolled into an algorithm-specific
// static graph whose vertices are (vertex, time-point) replicas, and a plain
// vertex-centric algorithm runs over it. Replica chains carry shared state
// between the replicas of one temporal vertex — the "special messages" whose
// overhead the paper calls out — and the representation's size blow-up is
// what Fig. 6(a) measures.
package tgb

import (
	"fmt"

	"graphite/internal/engine"
	ival "graphite/internal/interval"
)

// Replica identifies one transformed-graph node: a temporal vertex at a
// time-point.
type Replica struct {
	V int       // dense index of the temporal vertex
	T ival.Time // time-point of the replica
}

// sedge is a weighted static edge.
type sedge struct {
	dst   int32
	w     int64
	chain bool // replica-chain edge (state transfer), not a graph edge
}

// Static is the transformed graph: a weighted static digraph over replicas.
type Static struct {
	replicas []Replica
	index    map[Replica]int32
	vrange   [][2]int32 // per temporal vertex: [lo, hi) replica index range
	adj      [][]sedge
	radj     [][]sedge
	chainE   int
	travelE  int
}

// NumReplicas returns the transformed vertex count.
func (s *Static) NumReplicas() int { return len(s.replicas) }

// NumEdges returns total static edge count (travel + chain).
func (s *Static) NumEdges() int { return s.chainE + s.travelE }

// Replica returns the replica at dense index i.
func (s *Static) Replica(i int) Replica { return s.replicas[i] }

// Lookup returns the dense index of a replica, or -1.
func (s *Static) Lookup(r Replica) int {
	i, ok := s.index[r]
	if !ok {
		return -1
	}
	return int(i)
}

// MemoryFootprint estimates the in-memory bytes of the transformed graph
// (replica nodes + static edges), for the Fig. 6(a) comparison.
func (s *Static) MemoryFootprint() int64 {
	const nodeBytes = 8 + 8 // vertex ref + time-point
	const edgeBytes = 4 + 8 // dst index + weight
	return int64(len(s.replicas))*nodeBytes + int64(s.NumEdges())*edgeBytes
}

// String summarizes the transformed graph.
func (s *Static) String() string {
	return fmt.Sprintf("tgb{replicas=%d travel=%d chain=%d}", len(s.replicas), s.travelE, s.chainE)
}

// minDistProgram is the plain VCM shortest-path program the TGB algorithms
// reduce to: relax out-edges from seeds, carrying (dist, origin) pairs.
type minDistProgram struct {
	s     *Static
	seeds map[int]int64 // replica index -> initial distance
	dist  []int64
	via   []int64 // graph vertex id of the hop that first set the distance
}

const unreachable = int64(1) << 62

func (p *minDistProgram) Init(ctx *engine.Context) {}

func (p *minDistProgram) Run(ctx *engine.Context, msgs []engine.Message) {
	i := ctx.Vertex()
	ctx.AddComputeCalls(1)
	best := p.dist[i]
	bestVia := p.via[i]
	if ctx.Superstep() == 1 {
		if d, ok := p.seeds[i]; ok && d < best {
			best, bestVia = d, -1
		}
	}
	for _, m := range msgs {
		pair := m.Value.([2]int64)
		if pair[0] < best {
			best, bestVia = pair[0], pair[1]
		}
	}
	if best < p.dist[i] {
		p.dist[i] = best
		p.via[i] = bestVia
		for _, e := range p.s.adj[i] {
			via := bestVia
			if !e.chain {
				// Crossing a travel edge: the hop's origin becomes this
				// replica's temporal vertex.
				via = int64(p.s.replicas[i].V)
			}
			ctx.Send(int(e.dst), ival.Universe, [2]int64{best + e.w, via})
		}
	}
}

// minDist runs the shortest-path program over the static graph (reversed
// when reverse is set) and returns per-replica distances and via-vertices.
func (s *Static) minDist(seeds map[int]int64, reverse bool, workers int) ([]int64, []int64, *engine.Metrics, error) {
	if s.NumReplicas() == 0 {
		return nil, nil, &engine.Metrics{}, nil
	}
	p := &minDistProgram{s: s, seeds: seeds}
	if reverse {
		rs := &Static{replicas: s.replicas, index: s.index, vrange: s.vrange,
			adj: s.radj, radj: s.adj, chainE: s.chainE, travelE: s.travelE}
		p.s = rs
	}
	p.dist = make([]int64, s.NumReplicas())
	p.via = make([]int64, s.NumReplicas())
	for i := range p.dist {
		p.dist[i] = unreachable
		p.via[i] = -1
	}
	eng, err := engine.New(s.NumReplicas(), p, engine.Config{
		NumWorkers: workers,
		Combiner: engine.CombinerFunc(func(a, b any) any {
			x, y := a.([2]int64), b.([2]int64)
			if x[0] <= y[0] {
				return x
			}
			return y
		}),
	})
	if err != nil {
		return nil, nil, nil, err
	}
	m, err := eng.Run()
	if err != nil {
		return nil, nil, nil, err
	}
	return p.dist, p.via, m, nil
}
