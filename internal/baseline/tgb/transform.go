package tgb

import (
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// ChainWeight selects the algorithm-specific weight of replica-chain edges.
type ChainWeight int

// Chain weightings.
const (
	// ChainFree makes waiting free (SSSP by cost, EAT, RH, TMST, LD).
	ChainFree ChainWeight = iota
	// ChainElapsed charges waiting its elapsed time (FAST duration).
	ChainElapsed
)

// EdgeWeight computes the weight of the travel edge instance departing at d.
type EdgeWeight func(e *tgraph.Edge, d ival.Time) (int64, bool)

// CostWeight weights a travel edge by its travel-cost property.
func CostWeight(e *tgraph.Edge, d ival.Time) (int64, bool) {
	return e.Props.ValueAt(tgraph.PropTravelCost, d)
}

// TimeWeight weights a travel edge by its travel-time property.
func TimeWeight(e *tgraph.Edge, d ival.Time) (int64, bool) {
	return e.Props.ValueAt(tgraph.PropTravelTime, d)
}

// ZeroWeight weights every travel edge zero (reachability-style runs).
func ZeroWeight(e *tgraph.Edge, d ival.Time) (int64, bool) {
	_, ok := e.Props.ValueAt(tgraph.PropTravelTime, d)
	return 0, ok
}

// TransformPath unrolls the interval graph into the path-algorithm
// transformed graph: one replica per (vertex, event time-point) where an
// event is an out-edge departure or an in-edge arrival; chain edges connect
// consecutive replicas of a vertex; each temporal edge becomes one travel
// edge per departure time-point of its lifespan.
func TransformPath(g *tgraph.Graph, chain ChainWeight, w EdgeWeight, extraEvents map[int][]ival.Time) *Static {
	horizon := g.Horizon()
	events := make([]map[ival.Time]bool, g.NumVertices())
	for v := range events {
		events[v] = map[ival.Time]bool{}
	}
	addEvent := func(v int, t ival.Time) {
		if g.VertexAt(v).Lifespan.Contains(t) {
			events[v][t] = true
		}
	}
	clip := func(iv ival.Interval) ival.Interval {
		return iv.Intersect(ival.New(0, horizon))
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		u, v := g.IndexOf(e.Src), g.IndexOf(e.Dst)
		life := clip(e.Lifespan)
		for d := life.Start; d < life.End; d++ {
			tt, ok := e.Props.ValueAt(tgraph.PropTravelTime, d)
			if !ok {
				continue
			}
			addEvent(u, d)
			addEvent(v, d+tt)
		}
	}
	for v, ts := range extraEvents {
		for _, t := range ts {
			addEvent(v, t)
		}
	}

	s := &Static{index: map[Replica]int32{}, vrange: make([][2]int32, g.NumVertices())}
	for v := range events {
		// Sorted event times become this vertex's replicas.
		var ts []ival.Time
		for t := range events[v] {
			ts = append(ts, t)
		}
		sortTimes(ts)
		s.vrange[v][0] = int32(len(s.replicas))
		for _, t := range ts {
			r := Replica{V: v, T: t}
			s.index[r] = int32(len(s.replicas))
			s.replicas = append(s.replicas, r)
		}
		s.vrange[v][1] = int32(len(s.replicas))
	}
	s.adj = make([][]sedge, len(s.replicas))
	s.radj = make([][]sedge, len(s.replicas))
	addEdge := func(from, to int32, weight int64, isChain bool) {
		s.adj[from] = append(s.adj[from], sedge{dst: to, w: weight, chain: isChain})
		s.radj[to] = append(s.radj[to], sedge{dst: from, w: weight, chain: isChain})
		if isChain {
			s.chainE++
		} else {
			s.travelE++
		}
	}

	// Chain edges between consecutive replicas of a vertex.
	for i := 1; i < len(s.replicas); i++ {
		prev, cur := s.replicas[i-1], s.replicas[i]
		if prev.V != cur.V {
			continue
		}
		var weight int64
		if chain == ChainElapsed {
			weight = cur.T - prev.T
		}
		addEdge(int32(i-1), int32(i), weight, true)
	}
	// Travel edges per departure time-point.
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		u, v := g.IndexOf(e.Src), g.IndexOf(e.Dst)
		life := clip(e.Lifespan)
		for d := life.Start; d < life.End; d++ {
			tt, ok := e.Props.ValueAt(tgraph.PropTravelTime, d)
			if !ok {
				continue
			}
			weight, ok := w(e, d)
			if !ok {
				continue
			}
			from, okF := s.index[Replica{V: u, T: d}]
			to, okT := s.index[Replica{V: v, T: d + tt}]
			if okF && okT {
				addEdge(from, to, weight, false)
			}
		}
	}
	return s
}

// TransformSnapshots unrolls the interval graph into the per-snapshot
// transformed graph used by the concurrency algorithms (TC, LCC): one
// replica per (vertex, alive time-point), with an edge (u,t)→(v,t) for every
// temporal edge alive at t. No chains are needed — the algorithms are
// snapshot-local.
func TransformSnapshots(g *tgraph.Graph) *Static {
	horizon := g.Horizon()
	s := &Static{index: map[Replica]int32{}, vrange: make([][2]int32, g.NumVertices())}
	for v := 0; v < g.NumVertices(); v++ {
		life := g.VertexAt(v).Lifespan.Intersect(ival.New(0, horizon))
		s.vrange[v][0] = int32(len(s.replicas))
		for t := life.Start; t < life.End; t++ {
			r := Replica{V: v, T: t}
			s.index[r] = int32(len(s.replicas))
			s.replicas = append(s.replicas, r)
		}
		s.vrange[v][1] = int32(len(s.replicas))
	}
	s.adj = make([][]sedge, len(s.replicas))
	s.radj = make([][]sedge, len(s.replicas))
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		u, v := g.IndexOf(e.Src), g.IndexOf(e.Dst)
		life := e.Lifespan.Intersect(ival.New(0, horizon))
		for t := life.Start; t < life.End; t++ {
			from, okF := s.index[Replica{V: u, T: t}]
			to, okT := s.index[Replica{V: v, T: t}]
			if okF && okT {
				s.adj[from] = append(s.adj[from], sedge{dst: to})
				s.radj[to] = append(s.radj[to], sedge{dst: from})
				s.travelE++
			}
		}
	}
	return s
}

// sortTimes sorts a small time slice ascending (insertion sort: event lists
// per vertex are short).
func sortTimes(ts []ival.Time) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
