package tgb

import (
	"math"
	"sort"

	"graphite/internal/engine"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// Unreachable mirrors the algorithms package sentinel in results.
const Unreachable = int64(math.MaxInt64)

// PathResult is the outcome of a TGB path-algorithm run.
type PathResult struct {
	Graph   *tgraph.Graph
	Static  *Static
	Metrics *engine.Metrics
	dist    []int64
	via     []int64
}

// replicasOf returns the replica index range of a temporal vertex.
func (r *PathResult) replicasOf(v int) (int, int) {
	lo, hi := r.Static.vrange[v][0], r.Static.vrange[v][1]
	return int(lo), int(hi)
}

// CostAt returns the best distance of vertex v by time t (the latest replica
// at or before t; chain edges have already propagated values forward).
func (r *PathResult) CostAt(v int, t ival.Time) int64 {
	lo, hi := r.replicasOf(v)
	best := Unreachable
	// Replicas are time-sorted: binary search the last one with T <= t.
	i := sort.Search(hi-lo, func(k int) bool { return r.Static.replicas[lo+k].T > t }) - 1
	if i >= 0 && r.dist[lo+i] != unreachable {
		best = r.dist[lo+i]
	}
	return best
}

// MinCost returns the minimum distance over all replicas of v.
func (r *PathResult) MinCost(v int) int64 {
	lo, hi := r.replicasOf(v)
	best := Unreachable
	for i := lo; i < hi; i++ {
		if r.dist[i] != unreachable && r.dist[i] < best {
			best = r.dist[i]
		}
	}
	return best
}

// EarliestReached returns the earliest replica time of v that was reached,
// or Unreachable.
func (r *PathResult) EarliestReached(v int) int64 {
	lo, hi := r.replicasOf(v)
	for i := lo; i < hi; i++ {
		if r.dist[i] != unreachable {
			return int64(r.Static.replicas[i].T)
		}
	}
	return Unreachable
}

// LatestReached returns the latest replica time of v that was reached, or
// -1.
func (r *PathResult) LatestReached(v int) int64 {
	lo, hi := r.replicasOf(v)
	for i := hi - 1; i >= lo; i-- {
		if r.dist[i] != unreachable {
			return int64(r.Static.replicas[i].T)
		}
	}
	return -1
}

// Parent returns the via-vertex at v's earliest reached replica (TMST).
func (r *PathResult) Parent(v int) int64 {
	lo, hi := r.replicasOf(v)
	for i := lo; i < hi; i++ {
		if r.dist[i] != unreachable {
			return r.via[i]
		}
	}
	return -1
}

// sourceSeeds seeds every replica of the source at or after startTime.
func sourceSeeds(g *tgraph.Graph, s *Static, source tgraph.VertexID, startTime ival.Time) map[int]int64 {
	seeds := map[int]int64{}
	si := g.IndexOf(source)
	if si < 0 {
		return seeds
	}
	lo, hi := s.vrange[si][0], s.vrange[si][1]
	for i := lo; i < hi; i++ {
		if s.replicas[i].T >= startTime {
			seeds[int(i)] = 0
		}
	}
	return seeds
}

// runPath builds the transformed graph and runs the VCM shortest-path over
// it.
func runPath(g *tgraph.Graph, source tgraph.VertexID, startTime ival.Time,
	chain ChainWeight, w EdgeWeight, workers int) (*PathResult, error) {
	si := g.IndexOf(source)
	extra := map[int][]ival.Time{}
	if si >= 0 {
		st := startTime
		if ls := g.VertexAt(si).Lifespan; st < ls.Start {
			st = ls.Start
		}
		extra[si] = []ival.Time{st}
	}
	s := TransformPath(g, chain, w, extra)
	seeds := sourceSeeds(g, s, source, startTime)
	dist, via, m, err := s.minDist(seeds, false, workers)
	if err != nil {
		return nil, err
	}
	return &PathResult{Graph: g, Static: s, Metrics: m, dist: dist, via: via}, nil
}

// RunSSSP runs temporal SSSP by travel cost on the transformed graph.
func RunSSSP(g *tgraph.Graph, source tgraph.VertexID, startTime ival.Time, workers int) (*PathResult, error) {
	return runPath(g, source, startTime, ChainFree, CostWeight, workers)
}

// RunEAT runs earliest arrival time: zero weights, earliest reached replica.
func RunEAT(g *tgraph.Graph, source tgraph.VertexID, startTime ival.Time, workers int) (*PathResult, error) {
	return runPath(g, source, startTime, ChainFree, ZeroWeight, workers)
}

// RunRH runs reachability (same transform as EAT; reached = any replica).
func RunRH(g *tgraph.Graph, source tgraph.VertexID, startTime ival.Time, workers int) (*PathResult, error) {
	return runPath(g, source, startTime, ChainFree, ZeroWeight, workers)
}

// RunTMST runs the time-minimum spanning tree: the EAT transform with
// via-vertex tracking; Parent(v) at the earliest reached replica is the
// tree edge.
func RunTMST(g *tgraph.Graph, source tgraph.VertexID, startTime ival.Time, workers int) (*PathResult, error) {
	return runPath(g, source, startTime, ChainFree, ZeroWeight, workers)
}

// RunFAST runs the fastest-journey transform: chains charge elapsed time,
// travel edges their travel time, so a replica's distance is the duration
// of a journey arriving by its time-point.
func RunFAST(g *tgraph.Graph, source tgraph.VertexID, startTime ival.Time, workers int) (*PathResult, error) {
	return runPath(g, source, startTime, ChainElapsed, TimeWeight, workers)
}

// RunLD runs latest departure towards target: the reverse traversal of the
// zero-weight transform seeded at the target's replicas before the deadline;
// LatestReached(v) is the latest valid departure.
func RunLD(g *tgraph.Graph, target tgraph.VertexID, deadline ival.Time, workers int) (*PathResult, error) {
	ti := g.IndexOf(target)
	if deadline <= 0 || deadline > g.Horizon() {
		deadline = g.Horizon()
	}
	extra := map[int][]ival.Time{}
	if ti >= 0 {
		life := g.VertexAt(ti).Lifespan
		last := deadline - 1
		if life.End-1 < last {
			last = life.End - 1
		}
		if last >= life.Start {
			extra[ti] = []ival.Time{last}
		}
	}
	s := TransformPath(g, ChainFree, ZeroWeight, extra)
	seeds := map[int]int64{}
	if ti >= 0 {
		lo, hi := s.vrange[ti][0], s.vrange[ti][1]
		for i := lo; i < hi; i++ {
			if s.replicas[i].T < deadline {
				seeds[int(i)] = 0
			}
		}
	}
	dist, via, m, err := s.minDist(seeds, true, workers)
	if err != nil {
		return nil, err
	}
	return &PathResult{Graph: g, Static: s, Metrics: m, dist: dist, via: via}, nil
}
