package tgb

import (
	"testing"

	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// twoHop builds 0→1 alive [0,3) tt=1 tc=2, 1→2 alive [2,5) tt=2 tc=3.
func twoHop(t *testing.T) *tgraph.Graph {
	t.Helper()
	b := tgraph.NewBuilder(3, 2)
	for v := tgraph.VertexID(0); v < 3; v++ {
		b.AddVertex(v, ival.New(0, 8))
	}
	b.AddEdge(0, 0, 1, ival.New(0, 3))
	b.SetEdgeProp(0, tgraph.PropTravelTime, ival.New(0, 3), 1)
	b.SetEdgeProp(0, tgraph.PropTravelCost, ival.New(0, 3), 2)
	b.AddEdge(1, 1, 2, ival.New(2, 5))
	b.SetEdgeProp(1, tgraph.PropTravelTime, ival.New(2, 5), 2)
	b.SetEdgeProp(1, tgraph.PropTravelCost, ival.New(2, 5), 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTransformPathStructure(t *testing.T) {
	g := twoHop(t)
	s := TransformPath(g, ChainFree, CostWeight, nil)
	// Vertex 0 departs at 0,1,2: 3 replicas. Vertex 1 arrives at 1,2,3 and
	// departs at 2,3,4: replicas {1,2,3,4}. Vertex 2 arrives at 4,5,6.
	wantReplicas := 3 + 4 + 3
	if s.NumReplicas() != wantReplicas {
		t.Fatalf("replicas = %d, want %d (%v)", s.NumReplicas(), wantReplicas, s)
	}
	// Travel edges: one per departure point = 3 + 3; chains: per vertex
	// (#replicas - 1) = 2 + 3 + 2.
	if s.travelE != 6 || s.chainE != 7 {
		t.Fatalf("edges = travel %d chain %d, want 6/7", s.travelE, s.chainE)
	}
	if s.MemoryFootprint() <= 0 {
		t.Fatalf("footprint must be positive")
	}
	// Lookup round trip.
	if i := s.Lookup(Replica{V: 1, T: 3}); i < 0 || s.Replica(i) != (Replica{V: 1, T: 3}) {
		t.Fatalf("lookup failed")
	}
	if s.Lookup(Replica{V: 1, T: 99}) != -1 {
		t.Fatalf("absent replica should be -1")
	}
}

func TestTransformSnapshotsStructure(t *testing.T) {
	g := twoHop(t)
	s := TransformSnapshots(g)
	// 3 vertices × 8 alive time-points each.
	if s.NumReplicas() != 24 {
		t.Fatalf("replicas = %d, want 24", s.NumReplicas())
	}
	// Edge instances: lifespans 3 + 3.
	if s.travelE != 6 || s.chainE != 0 {
		t.Fatalf("edges = %d/%d, want 6/0", s.travelE, s.chainE)
	}
}

func TestSSSPOverTransform(t *testing.T) {
	g := twoHop(t)
	r, err := RunSSSP(g, 0, 0, 2)
	if err != nil {
		t.Fatalf("RunSSSP: %v", err)
	}
	// Reach 2: depart 0 at d<=2, arrive 1 at d+1, depart 1 at >=2, arrive
	// at depart+2; earliest arrival 4, cost 2+3=5.
	if got := r.MinCost(2); got != 5 {
		t.Errorf("cost to 2 = %d, want 5", got)
	}
	if got := r.CostAt(2, 3); got != Unreachable {
		t.Errorf("cost to 2 before arrival = %d, want unreachable", got)
	}
	if got := r.CostAt(2, 6); got != 5 {
		t.Errorf("cost to 2 at 6 = %d, want 5", got)
	}
	// Chain-edge state transfer must be visible in the metrics: messages
	// include replica chain traffic.
	if r.Metrics.Messages == 0 {
		t.Errorf("no messages recorded")
	}
}

func TestEATAndLDOverTransform(t *testing.T) {
	g := twoHop(t)
	eat, err := RunEAT(g, 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := eat.EarliestReached(2); got != 4 {
		t.Errorf("EAT(2) = %d, want 4", got)
	}
	if got := eat.EarliestReached(0); got != 0 {
		t.Errorf("EAT(0) = %d, want 0", got)
	}
	ld, err := RunLD(g, 2, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Latest departure from 0: depart at 2 (arrive 3, depart 1→2 at 4 ...
	// wait, edge 1→2 dies at 5: depart ≤4). d0=2 → arrive 3 → depart ≤4 ✓.
	if got := ld.LatestReached(0); got != 2 {
		t.Errorf("LD(0) = %d, want 2", got)
	}
	if got := ld.LatestReached(1); got != 4 {
		t.Errorf("LD(1) = %d, want 4", got)
	}
}

func TestTMSTParents(t *testing.T) {
	g := twoHop(t)
	r, err := RunTMST(g, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p := r.Parent(1); p != 0 {
		t.Errorf("parent(1) = %d, want 0", p)
	}
	if p := r.Parent(2); p != 1 {
		t.Errorf("parent(2) = %d, want 1", p)
	}
}

func TestFASTOverTransform(t *testing.T) {
	g := twoHop(t)
	r, err := RunFAST(g, 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Best: depart 0 at 2 → arrive 3 → depart 3 → arrive 5: duration 3.
	// (Departing earlier waits at vertex 1.)
	if got := r.MinCost(2); got != 3 {
		t.Errorf("fastest(2) = %d, want 3", got)
	}
}
