package tgb

import (
	"sync"

	"graphite/internal/engine"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// ClusteringResult is the outcome of a TGB triangle-count or LCC run over
// the snapshot-expanded transformed graph.
type ClusteringResult struct {
	Graph   *tgraph.Graph
	Static  *Static
	Metrics *engine.Metrics
	closure []int64 // per replica
}

// ClosuresAt returns vertex v's closure count at time t.
func (r *ClusteringResult) ClosuresAt(v int, t ival.Time) int64 {
	i := r.Static.Lookup(Replica{V: v, T: t})
	if i < 0 {
		return 0
	}
	return r.closure[i]
}

// DegAt returns vertex v's out-degree at time t in the transformed graph.
func (r *ClusteringResult) DegAt(v int, t ival.Time) int64 {
	i := r.Static.Lookup(Replica{V: v, T: t})
	if i < 0 {
		return 0
	}
	return int64(len(r.Static.adj[i]))
}

// clusterProgram runs the announce/forward/close protocol over the
// snapshot-expanded static graph: 3 supersteps for TC (close at the cycle's
// last vertex), 4 for LCC (reply to the wedge origin).
type clusterProgram struct {
	s       *Static
	lcc     bool
	mu      sync.Mutex
	closure []int64
}

func (p *clusterProgram) Init(ctx *engine.Context) {}

func (p *clusterProgram) Run(ctx *engine.Context, msgs []engine.Message) {
	i := ctx.Vertex()
	ctx.AddComputeCalls(1)
	switch ctx.Superstep() {
	case 1: // announce the temporal vertex id along all edges
		if len(p.s.adj[i]) == 0 {
			return
		}
		payload := []int64{int64(p.s.replicas[i].V)}
		for _, e := range p.s.adj[i] {
			ctx.Send(int(e.dst), ival.Universe, payload)
		}
	case 2: // forward collected origins
		var collect []int64
		for _, m := range msgs {
			collect = append(collect, m.Value.([]int64)...)
		}
		if len(collect) == 0 || len(p.s.adj[i]) == 0 {
			return
		}
		for _, e := range p.s.adj[i] {
			ctx.Send(int(e.dst), ival.Universe, collect)
		}
	case 3:
		p.close(ctx, i, msgs)
	case 4: // LCC: accumulate replies
		var sum int64
		for _, m := range msgs {
			for _, x := range m.Value.([]int64) {
				sum += x
			}
		}
		p.mu.Lock()
		p.closure[i] += sum
		p.mu.Unlock()
	}
}

func (p *clusterProgram) close(ctx *engine.Context, i int, msgs []engine.Message) {
	self := int64(p.s.replicas[i].V)
	myT := p.s.replicas[i].T
	// Index neighbors (with multi-edge multiplicity) once per replica.
	neigh := map[int64]int64{}
	edges := p.s.adj[i]
	if p.lcc {
		edges = p.s.radj[i]
	}
	for _, e := range edges {
		neigh[int64(p.s.replicas[e.dst].V)]++
	}
	var count int64
	for _, m := range msgs {
		for _, origin := range m.Value.([]int64) {
			if origin == self {
				continue
			}
			k := neigh[origin]
			if k == 0 {
				continue
			}
			if p.lcc {
				// Closed wedge: this replica is a direct successor of the
				// origin; reply one count per in-edge instance.
				if oi := p.s.Lookup(Replica{V: int(origin), T: myT}); oi >= 0 {
					ctx.Send(oi, ival.Universe, []int64{k})
				}
				continue
			}
			// Directed cycle: an edge back to the origin closes it here.
			count += k
		}
	}
	if count > 0 {
		p.mu.Lock()
		p.closure[i] += count
		p.mu.Unlock()
	}
}

// runClustering executes the protocol over the snapshot-expanded transform.
func runClustering(g *tgraph.Graph, workers int, lcc bool) (*ClusteringResult, error) {
	s := TransformSnapshots(g)
	p := &clusterProgram{s: s, lcc: lcc, closure: make([]int64, s.NumReplicas())}
	max := 3
	if lcc {
		max = 4
	}
	eng, err := engine.New(s.NumReplicas(), p, engine.Config{NumWorkers: workers, MaxSupersteps: max})
	if err != nil {
		return nil, err
	}
	m, err := eng.Run()
	if err != nil {
		return nil, err
	}
	return &ClusteringResult{Graph: g, Static: s, Metrics: m, closure: p.closure}, nil
}

// RunTC counts directed 3-cycles per replica on the transformed graph.
func RunTC(g *tgraph.Graph, workers int) (*ClusteringResult, error) {
	return runClustering(g, workers, false)
}

// RunLCC counts closed wedges per origin replica on the transformed graph.
func RunLCC(g *tgraph.Graph, workers int) (*ClusteringResult, error) {
	return runClustering(g, workers, true)
}
