// Package baseline_test cross-validates the four baseline platforms against
// the reference oracles and the ICM implementation — the paper's Sec.
// VII-B1 claim ("all platforms produce identical results for all the
// algorithms and graphs") as a test suite.
package baseline_test

import (
	"testing"

	"graphite/internal/baseline/chlonos"
	"graphite/internal/baseline/goffish"
	"graphite/internal/baseline/msb"
	"graphite/internal/baseline/tgb"
	"graphite/internal/baseline/valgo"
	"graphite/internal/gen"
	ival "graphite/internal/interval"
	"graphite/internal/ref"
	"graphite/internal/tgraph"
)

func testGraphs(t *testing.T) []*tgraph.Graph {
	t.Helper()
	var gs []*tgraph.Graph
	profiles := []gen.Profile{
		gen.Tiny("b-unit", 36, 4, 6, gen.UnitLife),
		gen.Tiny("b-long", 36, 4, 8, gen.LongLife),
		gen.Tiny("b-mixed", 44, 5, 10, gen.MixedLife),
	}
	churn := gen.Tiny("b-churn", 36, 4, 10, gen.LongLife)
	churn.VertexChurn = true
	profiles = append(profiles, churn)
	for _, p := range profiles {
		for seed := int64(1); seed <= 2; seed++ {
			g, err := gen.Generate(p, seed)
			if err != nil {
				t.Fatalf("generate %s/%d: %v", p.Name, seed, err)
			}
			gs = append(gs, g)
		}
	}
	return gs
}

// --- MSB and Chlonos: TI algorithms vs per-snapshot oracles ---

func TestMSBAndChlonosBFS(t *testing.T) {
	for gi, g := range testGraphs(t) {
		source := g.VertexAt(0).ID
		mr, err := msb.Run(g, valgo.BFSSpec(int64(source)), 4)
		if err != nil {
			t.Fatalf("graph %d: msb: %v", gi, err)
		}
		cr, err := chlonos.Run(g, valgo.BFSSpec(int64(source)), 4, 4)
		if err != nil {
			t.Fatalf("graph %d: chlonos: %v", gi, err)
		}
		for ts := g.Lifespan().Start; ts < g.Horizon(); ts++ {
			want := ref.BFSLevels(g, ts, source)
			for v := 0; v < g.NumVertices(); v++ {
				if !g.VertexAt(v).Lifespan.Contains(ts) {
					continue
				}
				mGot, _ := mr.State(v, ts).(int64)
				cGot, _ := cr.State(v, ts).(int64)
				if mGot != want[v] {
					t.Fatalf("graph %d t=%d v=%d: MSB level %d, oracle %d", gi, ts, v, mGot, want[v])
				}
				if cGot != want[v] {
					t.Fatalf("graph %d t=%d v=%d: CHL level %d, oracle %d", gi, ts, v, cGot, want[v])
				}
			}
		}
		// Chlonos must not send more messages than MSB, and with multiple
		// snapshots per batch it should share at least some.
		if cr.Metrics.Messages > mr.Metrics.Messages {
			t.Errorf("graph %d: CHL sent %d messages, MSB %d", gi, cr.Metrics.Messages, mr.Metrics.Messages)
		}
		if cr.Metrics.ComputeCalls != mr.Metrics.ComputeCalls {
			t.Errorf("graph %d: CHL compute calls %d != MSB %d (the paper: identical)",
				gi, cr.Metrics.ComputeCalls, mr.Metrics.ComputeCalls)
		}
	}
}

func TestMSBAndChlonosWCC(t *testing.T) {
	for gi, g := range testGraphs(t) {
		mr, err := msb.Run(g, valgo.WCCSpec(), 4)
		if err != nil {
			t.Fatalf("graph %d: msb: %v", gi, err)
		}
		cr, err := chlonos.Run(g, valgo.WCCSpec(), 5, 4)
		if err != nil {
			t.Fatalf("graph %d: chlonos: %v", gi, err)
		}
		for ts := g.Lifespan().Start; ts < g.Horizon(); ts++ {
			want := ref.WCCLabels(g, ts)
			for v := 0; v < g.NumVertices(); v++ {
				if !g.VertexAt(v).Lifespan.Contains(ts) {
					continue
				}
				mGot, _ := mr.State(v, ts).(int64)
				cGot, _ := cr.State(v, ts).(int64)
				if mGot != want[v] || cGot != want[v] {
					t.Fatalf("graph %d t=%d v=%d: MSB %d CHL %d, oracle %d", gi, ts, v, mGot, cGot, want[v])
				}
			}
		}
	}
}

func TestMSBAndChlonosPageRank(t *testing.T) {
	const iters = 5
	for gi, g := range testGraphs(t) {
		mr, err := msb.Run(g, valgo.PageRankSpec(iters), 4)
		if err != nil {
			t.Fatalf("graph %d: msb: %v", gi, err)
		}
		cr, err := chlonos.Run(g, valgo.PageRankSpec(iters), 4, 4)
		if err != nil {
			t.Fatalf("graph %d: chlonos: %v", gi, err)
		}
		for ts := g.Lifespan().Start; ts < g.Horizon(); ts++ {
			want := ref.PageRank(g, ts, iters, 0.85)
			for v := 0; v < g.NumVertices(); v++ {
				if !g.VertexAt(v).Lifespan.Contains(ts) {
					continue
				}
				mGot, _ := mr.State(v, ts).(float64)
				cGot, _ := cr.State(v, ts).(float64)
				if d := mGot - want[v]; d > 1e-9 || d < -1e-9 {
					t.Fatalf("graph %d t=%d v=%d: MSB rank %g, oracle %g", gi, ts, v, mGot, want[v])
				}
				if d := cGot - want[v]; d > 1e-9 || d < -1e-9 {
					t.Fatalf("graph %d t=%d v=%d: CHL rank %g, oracle %g", gi, ts, v, cGot, want[v])
				}
			}
		}
	}
}

func TestMSBAndChlonosSCC(t *testing.T) {
	for gi, g := range testGraphs(t) {
		mr, err := msb.Run(g, valgo.SCCSpec(), 4)
		if err != nil {
			t.Fatalf("graph %d: msb: %v", gi, err)
		}
		cr, err := chlonos.Run(g, valgo.SCCSpec(), 3, 4)
		if err != nil {
			t.Fatalf("graph %d: chlonos: %v", gi, err)
		}
		for ts := g.Lifespan().Start; ts < g.Horizon(); ts++ {
			want := ref.SCCLabels(g, ts)
			for v := 0; v < g.NumVertices(); v++ {
				if !g.VertexAt(v).Lifespan.Contains(ts) {
					continue
				}
				if got := valgo.SCCLabel(mr.State(v, ts)); got != want[v] {
					t.Fatalf("graph %d t=%d v=%d: MSB scc %d, oracle %d", gi, ts, v, got, want[v])
				}
				if got := valgo.SCCLabel(cr.State(v, ts)); got != want[v] {
					t.Fatalf("graph %d t=%d v=%d: CHL scc %d, oracle %d", gi, ts, v, got, want[v])
				}
			}
		}
	}
}

// --- TGB and GoFFish: TD algorithms vs temporal oracles ---

func TestTGBAndGoFFishSSSP(t *testing.T) {
	for gi, g := range testGraphs(t) {
		source := g.VertexAt(0).ID
		tr, err := tgb.RunSSSP(g, source, 0, 4)
		if err != nil {
			t.Fatalf("graph %d: tgb: %v", gi, err)
		}
		gr, err := goffish.RunForward(g, goffish.NewSSSP(source, 0), 4)
		if err != nil {
			t.Fatalf("graph %d: goffish: %v", gi, err)
		}
		d := ref.SSSP(g, source, 0)
		for v := 0; v < g.NumVertices(); v++ {
			// Final best cost must agree everywhere.
			want := int64(ref.Unreachable)
			for ts := ival.Time(0); ts < d.Tmax; ts++ {
				if d.Cost[v][ts] < want {
					want = d.Cost[v][ts]
				}
			}
			if got := tr.MinCost(v); got != want {
				t.Fatalf("graph %d v=%d: TGB cost %d, oracle %d", gi, v, got, want)
			}
			if got := goffish.BestCost(gr, v); got != want {
				t.Fatalf("graph %d v=%d: GOF cost %d, oracle %d", gi, v, got, want)
			}
			// TGB carries the full temporal answer: check cost-by-t.
			for ts := ival.Time(0); ts < d.Tmax; ts++ {
				if !g.VertexAt(v).Lifespan.Contains(ts) {
					continue
				}
				if got := tr.CostAt(v, ts); got != d.Cost[v][ts] {
					t.Fatalf("graph %d v=%d t=%d: TGB cost %d, oracle %d", gi, v, ts, got, d.Cost[v][ts])
				}
			}
		}
	}
}

func TestTGBAndGoFFishEAT(t *testing.T) {
	for gi, g := range testGraphs(t) {
		source := g.VertexAt(0).ID
		tr, err := tgb.RunEAT(g, source, 0, 4)
		if err != nil {
			t.Fatalf("graph %d: tgb: %v", gi, err)
		}
		gr, err := goffish.RunForward(g, goffish.NewEAT(source, 0), 4)
		if err != nil {
			t.Fatalf("graph %d: goffish: %v", gi, err)
		}
		want := ref.EAT(g, source, 0)
		for v := 0; v < g.NumVertices(); v++ {
			if got := tr.EarliestReached(v); got != want[v] {
				t.Fatalf("graph %d v=%d: TGB EAT %d, oracle %d", gi, v, got, want[v])
			}
			if got := goffish.BestCost(gr, v); got != want[v] {
				t.Fatalf("graph %d v=%d: GOF EAT %d, oracle %d", gi, v, got, want[v])
			}
		}
	}
}

func TestTGBAndGoFFishRH(t *testing.T) {
	for gi, g := range testGraphs(t) {
		source := g.VertexAt(0).ID
		tr, err := tgb.RunRH(g, source, 0, 4)
		if err != nil {
			t.Fatalf("graph %d: tgb: %v", gi, err)
		}
		gr, err := goffish.RunForward(g, goffish.NewRH(source, 0), 4)
		if err != nil {
			t.Fatalf("graph %d: goffish: %v", gi, err)
		}
		want := ref.Reachable(g, source, 0)
		for v := 0; v < g.NumVertices(); v++ {
			if got := tr.EarliestReached(v) != tgb.Unreachable; got != want[v] {
				t.Fatalf("graph %d v=%d: TGB reach %v, oracle %v", gi, v, got, want[v])
			}
			if got := goffish.BestCost(gr, v) == 1; got != want[v] {
				t.Fatalf("graph %d v=%d: GOF reach %v, oracle %v", gi, v, got, want[v])
			}
		}
	}
}

func TestTGBAndGoFFishFAST(t *testing.T) {
	for gi, g := range testGraphs(t) {
		source := g.VertexAt(0).ID
		tr, err := tgb.RunFAST(g, source, 0, 4)
		if err != nil {
			t.Fatalf("graph %d: tgb: %v", gi, err)
		}
		gr, err := goffish.RunForward(g, goffish.NewFAST(source, 0), 4)
		if err != nil {
			t.Fatalf("graph %d: goffish: %v", gi, err)
		}
		want := ref.Fastest(g, source, 0)
		si := g.IndexOf(source)
		for v := 0; v < g.NumVertices(); v++ {
			wantV := want[v]
			if got := tr.MinCost(v); v != si && got != wantV {
				t.Fatalf("graph %d v=%d: TGB duration %d, oracle %d", gi, v, got, wantV)
			}
			if got := goffish.Duration(gr, v); v != si && got != wantV {
				t.Fatalf("graph %d v=%d: GOF duration %d, oracle %d", gi, v, got, wantV)
			}
		}
	}
}

func TestTGBAndGoFFishLD(t *testing.T) {
	for gi, g := range testGraphs(t) {
		target := g.VertexAt(g.NumVertices() - 1).ID
		deadline := g.Horizon()
		tr, err := tgb.RunLD(g, target, deadline, 4)
		if err != nil {
			t.Fatalf("graph %d: tgb: %v", gi, err)
		}
		gr, err := goffish.RunLD(g, target, deadline, 4)
		if err != nil {
			t.Fatalf("graph %d: goffish: %v", gi, err)
		}
		want := ref.LatestDeparture(g, target, deadline)
		for v := 0; v < g.NumVertices(); v++ {
			if got := tr.LatestReached(v); got != want[v] {
				t.Fatalf("graph %d v=%d: TGB LD %d, oracle %d", gi, v, got, want[v])
			}
			if got := gr.States[v].(int64); got != want[v] {
				t.Fatalf("graph %d v=%d: GOF LD %d, oracle %d", gi, v, got, want[v])
			}
		}
	}
}

func TestTGBAndGoFFishTMST(t *testing.T) {
	for gi, g := range testGraphs(t) {
		source := g.VertexAt(0).ID
		tr, err := tgb.RunTMST(g, source, 0, 4)
		if err != nil {
			t.Fatalf("graph %d: tgb: %v", gi, err)
		}
		gr, err := goffish.RunForward(g, goffish.NewTMST(source, 0), 4)
		if err != nil {
			t.Fatalf("graph %d: goffish: %v", gi, err)
		}
		eat := ref.EAT(g, source, 0)
		for v := 0; v < g.NumVertices(); v++ {
			if g.VertexAt(v).ID == source {
				continue
			}
			if eat[v] == ref.Unreachable {
				continue
			}
			// Arrival must equal the earliest arrival time on both platforms.
			if got := tr.EarliestReached(v); got != eat[v] {
				t.Fatalf("graph %d v=%d: TGB arrival %d, oracle %d", gi, v, got, eat[v])
			}
			gv := gr.States[v].(goffish.TMSTVal)
			if gv.Arrival != eat[v] {
				t.Fatalf("graph %d v=%d: GOF arrival %d, oracle %d", gi, v, gv.Arrival, eat[v])
			}
			// Parents must themselves be reached.
			if p := tr.Parent(v); p >= 0 {
				pi := g.IndexOf(tgraph.VertexID(p))
				if pi >= 0 && eat[pi] == ref.Unreachable {
					t.Fatalf("graph %d v=%d: TGB parent %d unreachable", gi, v, p)
				}
			}
			if pi := g.IndexOf(tgraph.VertexID(gv.Parent)); pi < 0 || eat[pi] == ref.Unreachable {
				t.Fatalf("graph %d v=%d: GOF parent %d unreachable", gi, v, gv.Parent)
			}
		}
	}
}

func TestTGBAndGoFFishClustering(t *testing.T) {
	for gi, g := range testGraphs(t) {
		ttc, err := tgb.RunTC(g, 4)
		if err != nil {
			t.Fatalf("graph %d: tgb tc: %v", gi, err)
		}
		gtc, err := goffish.RunTC(g, 4)
		if err != nil {
			t.Fatalf("graph %d: gof tc: %v", gi, err)
		}
		tlcc, err := tgb.RunLCC(g, 4)
		if err != nil {
			t.Fatalf("graph %d: tgb lcc: %v", gi, err)
		}
		glcc, err := goffish.RunLCC(g, 4)
		if err != nil {
			t.Fatalf("graph %d: gof lcc: %v", gi, err)
		}
		for ts := g.Lifespan().Start; ts < g.Horizon(); ts++ {
			wantTC := ref.Closures(g, ts)
			wantLCC, wantDeg := ref.LCCCounts(g, ts)
			for v := 0; v < g.NumVertices(); v++ {
				if got := ttc.ClosuresAt(v, ts); got != wantTC[v] {
					t.Fatalf("graph %d t=%d v=%d: TGB closures %d, oracle %d", gi, ts, v, got, wantTC[v])
				}
				if got := gtc.Closures[ts][v]; got != wantTC[v] {
					t.Fatalf("graph %d t=%d v=%d: GOF closures %d, oracle %d", gi, ts, v, got, wantTC[v])
				}
				if got := tlcc.ClosuresAt(v, ts); got != wantLCC[v] {
					t.Fatalf("graph %d t=%d v=%d: TGB wedges %d, oracle %d", gi, ts, v, got, wantLCC[v])
				}
				if got := glcc.Closures[ts][v]; got != wantLCC[v] {
					t.Fatalf("graph %d t=%d v=%d: GOF wedges %d, oracle %d", gi, ts, v, got, wantLCC[v])
				}
				if g.VertexAt(v).Lifespan.Contains(ts) {
					if got := glcc.Degs[ts][v]; got != wantDeg[v] {
						t.Fatalf("graph %d t=%d v=%d: GOF deg %d, oracle %d", gi, ts, v, got, wantDeg[v])
					}
				}
			}
		}
	}
}
