// Package goffish implements the GoFFish-TS baseline of Sec. VII-A3 [12]:
// a temporal graph is processed as a sequence of snapshots with an outer
// loop over time; vertex states persist across snapshots and temporal
// messages are passed to the snapshot at which they take effect. Within a
// snapshot nothing is shared across time — each (vertex, snapshot)
// evaluation is a separate compute call and each edge emission a separate
// message, which is exactly the redundancy ICM's warp removes.
package goffish

import (
	"sync"
	"time"

	"graphite/internal/engine"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// Result holds the per-vertex final states and the accumulated metrics.
type Result struct {
	Graph   *tgraph.Graph
	Metrics engine.Metrics
	States  []any
}

// tmsg is a temporal message scheduled for a future snapshot.
type tmsg struct {
	dst int
	val any
}

// PathLogic abstracts the forward time-marching path algorithms (SSSP, EAT,
// RH, TMST, FAST): per-vertex states merged from arrivals, emissions over
// alive edge pieces.
type PathLogic interface {
	// InitState is the state of an untouched vertex.
	InitState() any
	// IsSource reports whether the vertex seeds journeys.
	IsSource(id tgraph.VertexID) bool
	// SourceActivates reports whether the source re-activates at every
	// snapshot (FAST starts a fresh journey per departure time).
	SourceActivates() bool
	// SeedState returns the source's state when it activates at t; ok is
	// false before the journey start time.
	SeedState(t ival.Time) (any, bool)
	// Merge folds the arrivals landing at snapshot t into the state,
	// reporting change.
	Merge(state any, msgs []any, t ival.Time) (any, bool)
	// Emit produces the message for departing over edge e at time t with
	// the given state; ok=false emits nothing.
	Emit(state any, e *tgraph.Edge, t ival.Time) (val any, arrive ival.Time, ok bool)
	// Reached reports whether the state represents a reached vertex.
	Reached(state any) bool
}

// pieceStartTimes returns, per vertex, the set of time-points at which one
// of its out-edge property pieces begins (the re-evaluation triggers).
func pieceStartTimes(g *tgraph.Graph) []map[ival.Time][]int32 {
	out := make([]map[ival.Time][]int32, g.NumVertices())
	for v := range out {
		out[v] = map[ival.Time][]int32{}
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		v := g.IndexOf(e.Src)
		starts := map[ival.Time]bool{e.Lifespan.Start: true}
		for _, entries := range e.Props.All() {
			for _, p := range entries {
				if x := p.Interval.Intersect(e.Lifespan); !x.IsEmpty() {
					starts[x.Start] = true
				}
			}
		}
		for t := range starts {
			out[v][t] = append(out[v][t], int32(i))
		}
	}
	return out
}

// RunForward marches snapshots in time order with the given path logic.
func RunForward(g *tgraph.Graph, logic PathLogic, workers int) (*Result, error) {
	start := time.Now()
	if workers <= 0 {
		workers = 4
	}
	n := g.NumVertices()
	res := &Result{Graph: g, States: make([]any, n)}
	for v := 0; v < n; v++ {
		res.States[v] = logic.InitState()
	}
	triggers := pieceStartTimes(g)
	future := map[ival.Time][]tmsg{}
	// March past the horizon far enough for every in-flight arrival to land.
	endT := g.Horizon() + maxTravelTime(g) + 1

	type emission struct {
		at  ival.Time
		msg tmsg
	}
	for t := g.Lifespan().Start; t < endT; t++ {
		res.Metrics.Supersteps++
		// Group pending arrivals per vertex.
		inbox := map[int][]any{}
		for _, m := range future[t] {
			inbox[m.dst] = append(inbox[m.dst], m.val)
		}
		delete(future, t)

		t0 := time.Now()
		var mu sync.Mutex
		var emits []emission
		var computeCalls, messages, bytes int64
		parallelFor(n, workers, func(v int) {
			vert := g.VertexAt(v)
			if !vert.Lifespan.Contains(t) {
				return
			}
			msgs := inbox[v]
			st := res.States[v]
			isSource := logic.IsSource(vert.ID)
			sourceActive := isSource && (logic.SourceActivates() || !logic.Reached(st))
			pieceEdges := triggers[v][t]
			reEval := logic.Reached(st) && len(pieceEdges) > 0
			if len(msgs) == 0 && !sourceActive && !reEval {
				return
			}
			var localEmits []emission
			var localMsgs, localBytes int64
			calls := int64(1)

			changed := false
			if sourceActive {
				if seeded, ok := logic.SeedState(t); ok {
					st, changed = seeded, true
				}
			}
			if len(msgs) > 0 {
				var ch bool
				st, ch = logic.Merge(st, msgs, t)
				changed = changed || ch
			}
			emit := func(e *tgraph.Edge) {
				val, arrive, ok := logic.Emit(st, e, t)
				if !ok {
					return
				}
				dst := g.IndexOf(e.Dst)
				localEmits = append(localEmits, emission{at: arrive, msg: tmsg{dst: dst, val: val}})
				localMsgs++
				localBytes += 16
			}
			if changed && logic.Reached(st) {
				// Depart over every edge piece alive now.
				for _, ei := range g.OutEdges(v) {
					e := g.Edge(int(ei))
					if e.Lifespan.Contains(t) {
						emit(e)
					}
				}
			} else if reEval {
				// Only the pieces that open at this snapshot.
				for _, ei := range pieceEdges {
					emit(g.Edge(int(ei)))
				}
			}
			mu.Lock()
			res.States[v] = st
			emits = append(emits, localEmits...)
			computeCalls += calls
			messages += localMsgs
			bytes += localBytes
			mu.Unlock()
		})
		res.Metrics.ComputeCalls += computeCalls
		res.Metrics.ComputePlusTime += time.Since(t0)

		t1 := time.Now()
		for _, em := range emits {
			if em.at < endT {
				future[em.at] = append(future[em.at], em.msg)
			}
		}
		res.Metrics.Messages += messages
		res.Metrics.MessageBytes += bytes
		res.Metrics.MessagingTime += time.Since(t1)
	}
	res.Metrics.Makespan = time.Since(start)
	return res, nil
}

// maxTravelTime scans the travel-time property for its largest value.
func maxTravelTime(g *tgraph.Graph) ival.Time {
	max := ival.Time(1)
	for i := 0; i < g.NumEdges(); i++ {
		for _, p := range g.Edge(i).Props.Entries(tgraph.PropTravelTime) {
			if p.Value > max {
				max = p.Value
			}
		}
	}
	return max
}

// parallelFor runs fn over [0, n) with the given number of workers.
func parallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		go func(lo int) {
			defer wg.Done()
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(w * chunk)
	}
	wg.Wait()
}
