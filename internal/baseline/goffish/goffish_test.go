package goffish

import (
	"testing"

	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// twoHop mirrors the tgb package fixture: 0→1 alive [0,3) tt=1 tc=2,
// 1→2 alive [2,5) tt=2 tc=3.
func twoHop(t *testing.T) *tgraph.Graph {
	t.Helper()
	b := tgraph.NewBuilder(3, 2)
	for v := tgraph.VertexID(0); v < 3; v++ {
		b.AddVertex(v, ival.New(0, 8))
	}
	b.AddEdge(0, 0, 1, ival.New(0, 3))
	b.SetEdgeProp(0, tgraph.PropTravelTime, ival.New(0, 3), 1)
	b.SetEdgeProp(0, tgraph.PropTravelCost, ival.New(0, 3), 2)
	b.AddEdge(1, 1, 2, ival.New(2, 5))
	b.SetEdgeProp(1, tgraph.PropTravelTime, ival.New(2, 5), 2)
	b.SetEdgeProp(1, tgraph.PropTravelCost, ival.New(2, 5), 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestForwardSSSPHandChecked(t *testing.T) {
	g := twoHop(t)
	r, err := RunForward(g, NewSSSP(0, 0), 2)
	if err != nil {
		t.Fatalf("RunForward: %v", err)
	}
	if got := BestCost(r, 2); got != 5 {
		t.Errorf("cost(2) = %d, want 5", got)
	}
	if got := BestCost(r, 0); got != 0 {
		t.Errorf("cost(0) = %d, want 0", got)
	}
	if r.Metrics.Supersteps == 0 || r.Metrics.ComputeCalls == 0 || r.Metrics.Messages == 0 {
		t.Errorf("metrics not recorded: %v", r.Metrics)
	}
}

func TestForwardRespectsStartTime(t *testing.T) {
	g := twoHop(t)
	// Starting at t=3: the 0→1 edge is already dead.
	r, err := RunForward(g, NewSSSP(0, 3), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := BestCost(r, 1); got != Unreachable {
		t.Errorf("cost(1) with late start = %d, want unreachable", got)
	}
}

func TestForwardFASTDuration(t *testing.T) {
	g := twoHop(t)
	r, err := RunForward(g, NewFAST(0, 0), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := Duration(r, 2); got != 3 {
		t.Errorf("duration(2) = %d, want 3 (depart at 2)", got)
	}
}

func TestBackwardLDHandChecked(t *testing.T) {
	g := twoHop(t)
	r, err := RunLD(g, 2, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.States[0].(int64); got != 2 {
		t.Errorf("LD(0) = %d, want 2", got)
	}
	if got := r.States[1].(int64); got != 4 {
		t.Errorf("LD(1) = %d, want 4", got)
	}
	if got := r.States[2].(int64); got != 7 {
		t.Errorf("LD(2) = %d, want 7 (deadline-1 within lifespan)", got)
	}
}

func TestPieceStartTriggers(t *testing.T) {
	g := twoHop(t)
	triggers := pieceStartTimes(g)
	// Vertex 1's edge to 2 opens at t=2.
	if es := triggers[1][2]; len(es) != 1 {
		t.Errorf("vertex 1 trigger at t=2: %v", es)
	}
	if es := triggers[0][0]; len(es) != 1 {
		t.Errorf("vertex 0 trigger at t=0: %v", es)
	}
	if es := triggers[2]; len(es) != 0 {
		t.Errorf("vertex 2 has no out-edges: %v", es)
	}
}

func TestParallelForCoversRange(t *testing.T) {
	seen := make([]bool, 37)
	parallelFor(len(seen), 5, func(i int) { seen[i] = true })
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d not visited", i)
		}
	}
	// Degenerate worker counts.
	count := 0
	parallelFor(3, 0, func(i int) { count++ })
	if count != 3 {
		t.Fatalf("0 workers visited %d", count)
	}
}
