package goffish

import (
	"math"

	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// Unreachable mirrors the algorithms package sentinel.
const Unreachable = int64(math.MaxInt64)

// travelProps reads the travel properties at t.
func travelProps(e *tgraph.Edge, t ival.Time) (tt, tc int64, ok bool) {
	tt, ok1 := e.Props.ValueAt(tgraph.PropTravelTime, t)
	tc, ok2 := e.Props.ValueAt(tgraph.PropTravelCost, t)
	return tt, tc, ok1 && ok2
}

// ssspLogic is GoFFish temporal SSSP: state = best cost so far.
type ssspLogic struct {
	source    tgraph.VertexID
	startTime ival.Time
}

// NewSSSP returns the SSSP path logic.
func NewSSSP(source tgraph.VertexID, startTime ival.Time) PathLogic {
	return &ssspLogic{source: source, startTime: startTime}
}

func (l *ssspLogic) InitState() any                   { return Unreachable }
func (l *ssspLogic) IsSource(id tgraph.VertexID) bool { return id == l.source }
func (l *ssspLogic) SourceActivates() bool            { return false }
func (l *ssspLogic) Reached(state any) bool           { return state.(int64) != Unreachable }

func (l *ssspLogic) SeedState(t ival.Time) (any, bool) {
	if t < l.startTime {
		return nil, false
	}
	return int64(0), true
}

func (l *ssspLogic) Merge(state any, msgs []any, _ ival.Time) (any, bool) {
	best := state.(int64)
	for _, m := range msgs {
		if x := m.(int64); x < best {
			best = x
		}
	}
	return best, best < state.(int64)
}

func (l *ssspLogic) Emit(state any, e *tgraph.Edge, t ival.Time) (any, ival.Time, bool) {
	tt, tc, ok := travelProps(e, t)
	if !ok {
		return nil, 0, false
	}
	return state.(int64) + tc, t + tt, true
}

// eatLogic is GoFFish earliest arrival time: state = earliest arrival.
type eatLogic struct {
	source    tgraph.VertexID
	startTime ival.Time
}

// NewEAT returns the EAT path logic.
func NewEAT(source tgraph.VertexID, startTime ival.Time) PathLogic {
	return &eatLogic{source: source, startTime: startTime}
}

func (l *eatLogic) InitState() any                   { return Unreachable }
func (l *eatLogic) IsSource(id tgraph.VertexID) bool { return id == l.source }
func (l *eatLogic) SourceActivates() bool            { return false }
func (l *eatLogic) Reached(state any) bool           { return state.(int64) != Unreachable }

func (l *eatLogic) SeedState(t ival.Time) (any, bool) {
	if t < l.startTime {
		return nil, false
	}
	return int64(t), true
}

func (l *eatLogic) Merge(state any, msgs []any, _ ival.Time) (any, bool) {
	best := state.(int64)
	for _, m := range msgs {
		if x := m.(int64); x < best {
			best = x
		}
	}
	return best, best < state.(int64)
}

func (l *eatLogic) Emit(state any, e *tgraph.Edge, t ival.Time) (any, ival.Time, bool) {
	tt, _, ok := travelProps(e, t)
	if !ok {
		return nil, 0, false
	}
	return int64(t + tt), t + tt, true
}

// rhLogic is GoFFish reachability: state = flag.
type rhLogic struct {
	source    tgraph.VertexID
	startTime ival.Time
}

// NewRH returns the reachability path logic.
func NewRH(source tgraph.VertexID, startTime ival.Time) PathLogic {
	return &rhLogic{source: source, startTime: startTime}
}

func (l *rhLogic) InitState() any                   { return int64(0) }
func (l *rhLogic) IsSource(id tgraph.VertexID) bool { return id == l.source }
func (l *rhLogic) SourceActivates() bool            { return false }
func (l *rhLogic) Reached(state any) bool           { return state.(int64) == 1 }

func (l *rhLogic) SeedState(t ival.Time) (any, bool) {
	if t < l.startTime {
		return nil, false
	}
	return int64(1), true
}

func (l *rhLogic) Merge(state any, msgs []any, _ ival.Time) (any, bool) {
	if state.(int64) == 1 || len(msgs) == 0 {
		return state, false
	}
	return int64(1), true
}

func (l *rhLogic) Emit(state any, e *tgraph.Edge, t ival.Time) (any, ival.Time, bool) {
	tt, _, ok := travelProps(e, t)
	if !ok {
		return nil, 0, false
	}
	return int64(1), t + tt, true
}

// TMSTVal is the (arrival, parent) pair GoFFish TMST tracks.
type TMSTVal struct {
	Arrival int64
	Parent  int64
}

func tmstLess(a, b TMSTVal) bool {
	if a.Arrival != b.Arrival {
		return a.Arrival < b.Arrival
	}
	return a.Parent < b.Parent
}

// tmstLogic is GoFFish time-minimum spanning tree.
type tmstLogic struct {
	source    tgraph.VertexID
	startTime ival.Time
}

// NewTMST returns the TMST path logic.
func NewTMST(source tgraph.VertexID, startTime ival.Time) PathLogic {
	return &tmstLogic{source: source, startTime: startTime}
}

func (l *tmstLogic) InitState() any                   { return TMSTVal{Arrival: Unreachable, Parent: -1} }
func (l *tmstLogic) IsSource(id tgraph.VertexID) bool { return id == l.source }
func (l *tmstLogic) SourceActivates() bool            { return false }
func (l *tmstLogic) Reached(state any) bool           { return state.(TMSTVal).Arrival != Unreachable }

func (l *tmstLogic) SeedState(t ival.Time) (any, bool) {
	if t < l.startTime {
		return nil, false
	}
	return TMSTVal{Arrival: t, Parent: int64(l.source)}, true
}

func (l *tmstLogic) Merge(state any, msgs []any, _ ival.Time) (any, bool) {
	best := state.(TMSTVal)
	for _, m := range msgs {
		if x := m.(TMSTVal); tmstLess(x, best) {
			best = x
		}
	}
	return best, best != state.(TMSTVal)
}

func (l *tmstLogic) Emit(state any, e *tgraph.Edge, t ival.Time) (any, ival.Time, bool) {
	tt, _, ok := travelProps(e, t)
	if !ok {
		return nil, 0, false
	}
	return TMSTVal{Arrival: t + tt, Parent: int64(e.Src)}, t + tt, true
}

// FASTState is the GoFFish FAST state: the latest journey start known and
// the best (smallest) duration witnessed so far.
type FASTState struct {
	MaxS0   int64
	BestDur int64
}

// fastLogic is GoFFish fastest journey.
type fastLogic struct {
	source    tgraph.VertexID
	startTime ival.Time
}

// NewFAST returns the FAST path logic.
func NewFAST(source tgraph.VertexID, startTime ival.Time) PathLogic {
	return &fastLogic{source: source, startTime: startTime}
}

// fastAtSource mirrors the ICM marker for "any start available here".
const fastAtSource = int64(math.MaxInt64)

func (l *fastLogic) InitState() any { return FASTState{MaxS0: -1, BestDur: Unreachable} }

func (l *fastLogic) IsSource(id tgraph.VertexID) bool { return id == l.source }
func (l *fastLogic) SourceActivates() bool            { return true }
func (l *fastLogic) Reached(state any) bool           { return state.(FASTState).MaxS0 != -1 }

func (l *fastLogic) SeedState(t ival.Time) (any, bool) {
	if t < l.startTime {
		return nil, false
	}
	return FASTState{MaxS0: fastAtSource, BestDur: 0}, true
}

func (l *fastLogic) Merge(state any, msgs []any, t ival.Time) (any, bool) {
	st := state.(FASTState)
	if st.MaxS0 == fastAtSource {
		return st, false // being at the source dominates everything
	}
	changed := false
	for _, m := range msgs {
		s0 := m.(int64)
		if dur := int64(t) - s0; dur < st.BestDur {
			st.BestDur = dur
		}
		if s0 > st.MaxS0 {
			st.MaxS0 = s0
			changed = true
		}
	}
	return st, changed
}

func (l *fastLogic) Emit(state any, e *tgraph.Edge, t ival.Time) (any, ival.Time, bool) {
	tt, _, ok := travelProps(e, t)
	if !ok {
		return nil, 0, false
	}
	s0 := state.(FASTState).MaxS0
	if s0 == fastAtSource {
		s0 = int64(t) // a fresh journey departing the source now
	}
	return s0, t + tt, true
}

// BestCost extracts the final int64 state per vertex.
func BestCost(r *Result, v int) int64 { return r.States[v].(int64) }

// Duration extracts the final FAST duration per vertex.
func Duration(r *Result, v int) int64 { return r.States[v].(FASTState).BestDur }
