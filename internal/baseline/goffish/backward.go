package goffish

import (
	"sync"
	"time"

	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// RunLD computes the latest departure towards target with a descending
// time-march: the outer loop visits snapshots newest-first and vertex states
// (the latest valid presence time) persist across snapshots, with messages
// flowing to earlier snapshots — GoFFish's reverse-traversal mode.
func RunLD(g *tgraph.Graph, target tgraph.VertexID, deadline ival.Time, workers int) (*Result, error) {
	start := time.Now()
	if workers <= 0 {
		workers = 4
	}
	n := g.NumVertices()
	res := &Result{Graph: g, States: make([]any, n)}
	latest := make([]ival.Time, n) // latest valid presence, -1 = none
	for v := range latest {
		latest[v] = -1
	}
	horizon := g.Horizon()
	if deadline <= 0 || deadline > horizon {
		deadline = horizon
	}
	tgt := g.IndexOf(target)
	if tgt >= 0 {
		life := g.VertexAt(tgt).Lifespan
		if life.Start < deadline {
			end := deadline
			if life.End < end {
				end = life.End
			}
			latest[tgt] = end - 1
		}
	}

	// March descending: at snapshot t, every alive edge instance u→v is a
	// candidate departure; its validity depends only on v's presence at
	// t + travel-time, which later iterations have already finalized.
	for t := horizon - 1; t >= g.Lifespan().Start; t-- {
		res.Metrics.Supersteps++
		t0 := time.Now()
		// Phase 1 (parallel, read-only on latest): find vertices whose
		// presence extends to t. A relax at t can only depend on presence at
		// t+travel-time, which later snapshots already finalized, so the
		// within-snapshot ordering is immaterial.
		var mu sync.Mutex
		var updates []int
		var calls, messages, bytes int64
		parallelFor(n, workers, func(v int) {
			vert := g.VertexAt(v)
			if !vert.Lifespan.Contains(t) || latest[v] >= t {
				return
			}
			evaluated := false
			hit := false
			for _, ei := range g.OutEdges(v) {
				e := g.Edge(int(ei))
				if !e.Lifespan.Contains(t) {
					continue
				}
				tt, _, ok := travelProps(e, t)
				if !ok {
					continue
				}
				evaluated = true
				w := g.IndexOf(e.Dst)
				if latest[w] >= t+tt {
					hit = true
				}
			}
			if !evaluated {
				return
			}
			mu.Lock()
			calls++
			if hit {
				updates = append(updates, v)
				// One reverse notification message per successful relax.
				messages++
				bytes += 16
			}
			mu.Unlock()
		})
		// Phase 2: apply.
		for _, v := range updates {
			latest[v] = t
		}
		res.Metrics.ComputeCalls += calls
		res.Metrics.Messages += messages
		res.Metrics.MessageBytes += bytes
		res.Metrics.ComputePlusTime += time.Since(t0)
	}
	for v := 0; v < n; v++ {
		res.States[v] = int64(latest[v])
	}
	res.Metrics.Makespan = time.Since(start)
	return res, nil
}
