package goffish

import (
	"sync"
	"time"

	"graphite/internal/engine"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// ClusteringResult holds the per-snapshot clustering outputs of the GoFFish
// TC and LCC runs (no temporal sharing exists for them, so the platform
// degenerates to per-snapshot processing, as the paper notes for MSB-like
// behaviour).
type ClusteringResult struct {
	Graph   *tgraph.Graph
	Metrics engine.Metrics
	// Closures[t][v] is vertex v's closure count in snapshot t.
	Closures map[ival.Time][]int64
	// Degs[t][v] is vertex v's out-degree in snapshot t (LCC only).
	Degs map[ival.Time][]int64
}

// RunTC counts directed 3-cycle closures per vertex per snapshot with the
// same announce/forward/close message protocol the ICM version uses, run
// independently for every snapshot.
func RunTC(g *tgraph.Graph, workers int) (*ClusteringResult, error) {
	return runClustering(g, workers, false)
}

// RunLCC counts closed wedges and degrees per vertex per snapshot.
func RunLCC(g *tgraph.Graph, workers int) (*ClusteringResult, error) {
	return runClustering(g, workers, true)
}

func runClustering(g *tgraph.Graph, workers int, lcc bool) (*ClusteringResult, error) {
	start := time.Now()
	if workers <= 0 {
		workers = 4
	}
	n := g.NumVertices()
	res := &ClusteringResult{
		Graph:    g,
		Closures: map[ival.Time][]int64{},
		Degs:     map[ival.Time][]int64{},
	}
	for t := g.Lifespan().Start; t < g.Horizon(); t++ {
		res.Metrics.Supersteps += 3
		t0 := time.Now()
		snap := g.SnapshotAt(t)
		// Materialize the snapshot adjacency and per-vertex neighbor
		// multiplicities once.
		adj := make([][]int32, n)
		outCount := make([]map[int32]int64, n)
		for u := 0; u < n; u++ {
			if !snap.VertexActive(u) {
				continue
			}
			snap.OutEdgesIdx(u, func(_ *tgraph.Edge, dst int) {
				adj[u] = append(adj[u], int32(dst))
				if outCount[u] == nil {
					outCount[u] = map[int32]int64{}
				}
				outCount[u][int32(dst)]++
			})
		}
		closures := make([]int64, n)
		degs := make([]int64, n)
		var mu sync.Mutex
		var calls, messages, bytes int64
		parallelFor(n, workers, func(u int) {
			if !snap.VertexActive(u) {
				return
			}
			var localMsgs, localBytes int64
			var localClosures []struct {
				v int
				k int64
			}
			// Walk the two-hop protocol for this origin: u → a (announce),
			// a → b (forward), close at b.
			for _, a := range adj[u] {
				if int(a) == u {
					continue
				}
				localMsgs++ // announce message u→a
				localBytes += 16
				for _, b := range adj[a] {
					if int(b) == u {
						continue
					}
					localMsgs++ // forward message a→b
					localBytes += 16
					if lcc {
						// Closed wedge: u→b must exist; one reply per
						// u→b instance.
						if k := outCount[u][b]; k > 0 {
							localMsgs += k // replies b→u
							localBytes += 16 * k
							localClosures = append(localClosures, struct {
								v int
								k int64
							}{u, k})
						}
						continue
					}
					// Directed cycle closure: b→u must exist; count at b.
					if k := outCount[b][int32(u)]; k > 0 {
						localClosures = append(localClosures, struct {
							v int
							k int64
						}{int(b), k})
					}
				}
			}
			mu.Lock()
			calls += 3 // announce, forward and close steps
			messages += localMsgs
			bytes += localBytes
			for _, c := range localClosures {
				closures[c.v] += c.k
			}
			if lcc {
				degs[u] = int64(len(adj[u]))
			}
			mu.Unlock()
		})
		res.Closures[t] = closures
		res.Degs[t] = degs
		res.Metrics.ComputeCalls += calls
		res.Metrics.Messages += messages
		res.Metrics.MessageBytes += bytes
		res.Metrics.ComputePlusTime += time.Since(t0)
	}
	res.Metrics.Makespan = time.Since(start)
	return res, nil
}
