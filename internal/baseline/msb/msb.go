// Package msb implements the Multi-Snapshot Baseline of Sec. VII-A3: a
// time-independent algorithm is executed independently on every snapshot of
// the temporal graph with plain vertex-centric logic. Nothing is shared
// across snapshots — the paper's strawman that ICM's warp sharing is
// measured against.
package msb

import (
	"graphite/internal/baseline/valgo"
	"graphite/internal/engine"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
	"graphite/internal/vcm"
)

// Result holds per-snapshot vertex states and the accumulated metrics.
type Result struct {
	Graph   *tgraph.Graph
	Metrics engine.Metrics
	// Snapshots maps a snapshot time-point to its final vertex states.
	Snapshots map[ival.Time]*vcm.Result
}

// State returns the final state of vertex index v in the snapshot at t.
func (r *Result) State(v int, t ival.Time) any {
	s, ok := r.Snapshots[t]
	if !ok {
		return nil
	}
	return s.State(v)
}

// Run executes the spec once per snapshot over the graph's observable
// window with the given worker count.
func Run(g *tgraph.Graph, spec valgo.Spec, workers int) (*Result, error) {
	out := &Result{Graph: g, Snapshots: map[ival.Time]*vcm.Result{}}
	opts := spec.Options
	opts.NumWorkers = workers
	for t := g.Lifespan().Start; t < g.Horizon(); t++ {
		// Aggregators and master state are per-run; rebuild the spec so
		// snapshots stay independent.
		snapSpec := valgo.Fresh(spec)
		snapOpts := opts
		snapOpts.Aggregators = snapSpec.Options.Aggregators
		snapOpts.Master = snapSpec.Options.Master
		r, err := vcm.RunSnapshot(g, t, snapSpec.Program, snapOpts)
		if err != nil {
			return nil, err
		}
		out.Snapshots[t] = r
		out.Metrics.Add(r.Metrics)
	}
	return out, nil
}
