package msb

import (
	"testing"

	"graphite/internal/baseline/valgo"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// switching builds 0→1 alive [0,2) and 0→2 alive [2,4): the component
// structure changes mid-way, which independent per-snapshot runs must track.
func switching(t *testing.T) *tgraph.Graph {
	t.Helper()
	b := tgraph.NewBuilder(3, 2)
	life := ival.New(0, 4)
	for v := tgraph.VertexID(0); v < 3; v++ {
		b.AddVertex(v, life)
	}
	b.AddEdge(0, 0, 1, ival.New(0, 2))
	b.AddEdge(1, 0, 2, ival.New(2, 4))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMSBRunsEverySnapshotIndependently(t *testing.T) {
	g := switching(t)
	r, err := Run(g, valgo.BFSSpec(0), 2)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(r.Snapshots) != 4 {
		t.Fatalf("snapshot runs = %d, want 4", len(r.Snapshots))
	}
	// t=1: 1 reachable, 2 not. t=3: swapped.
	if got := r.State(1, 1).(int64); got != 1 {
		t.Errorf("level(1)@1 = %d, want 1", got)
	}
	if got := r.State(2, 1).(int64); got != valgo.Unreachable {
		t.Errorf("level(2)@1 = %d, want unreachable", got)
	}
	if got := r.State(2, 3).(int64); got != 1 {
		t.Errorf("level(2)@3 = %d, want 1", got)
	}
	if got := r.State(1, 3).(int64); got != valgo.Unreachable {
		t.Errorf("level(1)@3 = %d, want unreachable", got)
	}
	// Out-of-range snapshot.
	if r.State(0, 99) != nil {
		t.Errorf("absent snapshot should return nil")
	}
	// Metrics accumulate across runs: 4 snapshots × ≥3 init calls.
	if r.Metrics.ComputeCalls < 12 {
		t.Errorf("compute calls = %d", r.Metrics.ComputeCalls)
	}
	if r.Metrics.Messages != 4 {
		t.Errorf("messages = %d, want 4 (one hop per snapshot)", r.Metrics.Messages)
	}
}

func TestMSBSCCFreshAggregatorsPerSnapshot(t *testing.T) {
	// A 2-cycle that dies halfway: SCC masters and aggregators must not
	// leak across the per-snapshot runs.
	b := tgraph.NewBuilder(2, 2)
	life := ival.New(0, 4)
	b.AddVertex(0, life).AddVertex(1, life)
	b.AddEdge(0, 0, 1, ival.New(0, 2))
	b.AddEdge(1, 1, 0, ival.New(0, 2))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(g, valgo.SCCSpec(), 2)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := valgo.SCCLabel(r.State(0, 1)); got != 1 {
		t.Errorf("scc(0)@1 = %d, want 1 (cycle named by max id)", got)
	}
	if got := valgo.SCCLabel(r.State(0, 3)); got != 0 {
		t.Errorf("scc(0)@3 = %d, want 0 (singleton)", got)
	}
}
