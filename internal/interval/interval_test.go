package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSatAdd(t *testing.T) {
	cases := []struct{ a, b, want Time }{
		{0, 0, 0},
		{5, 3, 8},
		{Infinity, 1, Infinity},
		{1, Infinity, Infinity},
		{Infinity, Infinity, Infinity},
		{Infinity - 1, 1, Infinity},
		{Infinity - 1, 5, Infinity},
		{10, -3, 7},
	}
	for _, c := range cases {
		if got := SatAdd(c.a, c.b); got != c.want {
			t.Errorf("SatAdd(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSatSub(t *testing.T) {
	cases := []struct{ a, b, want Time }{
		{5, 3, 2},
		{3, 5, 0},
		{3, 3, 0},
		{Infinity, 100, Infinity},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := SatSub(c.a, c.b); got != c.want {
			t.Errorf("SatSub(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := New(2, 7)
	if iv.IsEmpty() || iv.IsUnit() || iv.IsUnbounded() {
		t.Fatalf("classification of %v wrong", iv)
	}
	if iv.Length() != 5 {
		t.Errorf("Length = %d, want 5", iv.Length())
	}
	if !iv.Contains(2) || !iv.Contains(6) || iv.Contains(7) || iv.Contains(1) {
		t.Errorf("Contains half-open semantics broken for %v", iv)
	}
	if !Point(4).IsUnit() {
		t.Errorf("Point(4) should be unit")
	}
	if !From(3).IsUnbounded() {
		t.Errorf("From(3) should be unbounded")
	}
	if From(3).Length() != Infinity {
		t.Errorf("unbounded length should be Infinity")
	}
	if New(5, 5).IsEmpty() != true || New(6, 5).IsEmpty() != true {
		t.Errorf("degenerate intervals should be empty")
	}
	if Empty.Valid() || !iv.Valid() || New(-1, 4).Valid() {
		t.Errorf("Valid misclassifies")
	}
}

func TestIntervalRelations(t *testing.T) {
	a := New(0, 5)
	b := New(5, 9)
	c := New(3, 7)
	if a.Intersects(b) {
		t.Errorf("half-open [0,5) and [5,9) must not intersect")
	}
	if !a.Meets(b) {
		t.Errorf("[0,5) meets [5,9)")
	}
	if !a.Intersects(c) || !c.Intersects(b) {
		t.Errorf("overlapping intervals must intersect")
	}
	if got := a.Intersect(c); got != New(3, 5) {
		t.Errorf("intersect = %v, want [3,5)", got)
	}
	if got := a.Union(b); got != New(0, 9) {
		t.Errorf("union = %v, want [0,9)", got)
	}
	if !New(1, 3).During(a) {
		t.Errorf("[1,3) during [0,5)")
	}
	if a.During(a) {
		t.Errorf("during is strict")
	}
	if !a.ContainsInterval(a) {
		t.Errorf("ContainsInterval reflexive")
	}
	if !a.Precedes(b) || b.Precedes(a) {
		t.Errorf("precedes wrong")
	}
}

func TestTranslateSaturates(t *testing.T) {
	iv := From(5)
	got := iv.Translate(10)
	if got != From(15) {
		t.Errorf("Translate unbounded = %v, want [15,∞)", got)
	}
	if New(1, Infinity-1).Translate(100) != From(101) {
		t.Errorf("Translate should saturate end at Infinity")
	}
}

func TestString(t *testing.T) {
	if s := New(2, 7).String(); s != "[2, 7)" {
		t.Errorf("String = %q", s)
	}
	if s := From(2).String(); s != "[2, ∞)" {
		t.Errorf("String = %q", s)
	}
	if s := Empty.String(); s != "[)" {
		t.Errorf("String = %q", s)
	}
}

// randomInterval generates a small random interval (possibly unbounded).
func randomInterval(r *rand.Rand) Interval {
	s := Time(r.Intn(20))
	if r.Intn(8) == 0 {
		return From(s)
	}
	return New(s, s+Time(r.Intn(10))+1)
}

func TestIntersectionCommutesAndContains(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomInterval(r), randomInterval(r)
		x, y := a.Intersect(b), b.Intersect(a)
		if x != y && !(x.IsEmpty() && y.IsEmpty()) {
			return false
		}
		// Pointwise agreement over a sample of time-points.
		for tp := Time(0); tp < 40; tp++ {
			if x.Contains(tp) != (a.Contains(tp) && b.Contains(tp)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetAddCoalesces(t *testing.T) {
	s := NewSet(New(0, 3), New(5, 8))
	if s.Len() != 2 {
		t.Fatalf("want 2 intervals, got %v", s)
	}
	s.Add(New(3, 5)) // adjacent to both: should fuse everything
	if s.Len() != 1 || s.Intervals()[0] != New(0, 8) {
		t.Fatalf("coalesce failed: %v", s)
	}
	s.Add(New(20, 25))
	s.Add(New(10, 12))
	if s.Len() != 3 {
		t.Fatalf("disjoint add failed: %v", s)
	}
	if !s.Contains(11) || s.Contains(12) || !s.Contains(24) {
		t.Errorf("membership wrong: %v", s)
	}
}

func TestSetSubtract(t *testing.T) {
	s := NewSet(New(0, 10))
	s = s.Subtract(New(3, 6))
	want := NewSet(New(0, 3), New(6, 10))
	if !s.Equal(want) {
		t.Fatalf("subtract = %v, want %v", s, want)
	}
	s = s.Subtract(New(0, 100))
	if !s.IsEmpty() {
		t.Fatalf("full subtract should empty the set: %v", s)
	}
}

func TestSetIntersect(t *testing.T) {
	s := NewSet(New(0, 4), New(6, 10), From(20))
	got := s.Intersect(New(2, 22))
	want := NewSet(New(2, 4), New(6, 10), New(20, 22))
	if !got.Equal(want) {
		t.Fatalf("intersect = %v, want %v", got, want)
	}
	if s.Duration() != Infinity {
		t.Errorf("unbounded set duration should be Infinity")
	}
	if NewSet(New(0, 4), New(6, 10)).Duration() != 8 {
		t.Errorf("duration wrong")
	}
}

// TestSetPointwiseOracle validates Set operations against a bitmap oracle
// over a bounded time domain, with randomized operations.
func TestSetPointwiseOracle(t *testing.T) {
	const horizon = 64
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var s Set
		oracle := make([]bool, horizon)
		for op := 0; op < 30; op++ {
			st := Time(r.Intn(horizon - 1))
			en := st + Time(r.Intn(horizon-int(st))) + 1
			iv := New(st, en)
			if r.Intn(3) == 0 {
				s = s.Subtract(iv)
				for tp := st; tp < en; tp++ {
					oracle[tp] = false
				}
			} else {
				s.Add(iv)
				for tp := st; tp < en; tp++ {
					oracle[tp] = true
				}
			}
		}
		// Canonical form: sorted, disjoint, non-adjacent.
		ivs := s.Intervals()
		for i := 0; i < len(ivs); i++ {
			if ivs[i].IsEmpty() {
				return false
			}
			if i > 0 && ivs[i-1].End >= ivs[i].Start {
				return false
			}
		}
		for tp := Time(0); tp < horizon; tp++ {
			if s.Contains(tp) != oracle[tp] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSetContainsInterval(t *testing.T) {
	s := NewSet(New(0, 5), New(7, 12))
	if !s.ContainsInterval(New(1, 4)) {
		t.Errorf("should contain [1,4)")
	}
	if s.ContainsInterval(New(4, 8)) {
		t.Errorf("should not contain [4,8): hole at [5,7)")
	}
	if !s.ContainsInterval(Empty) {
		t.Errorf("every set contains the empty interval")
	}
	if !s.Intersects(New(4, 8)) {
		t.Errorf("should intersect [4,8)")
	}
	if s.Intersects(New(5, 7)) {
		t.Errorf("must not intersect the hole")
	}
}

// TestAllenRelationsExhaustive checks that, for non-equal intervals, exactly
// one of Allen's basic relations (or its inverse) holds — the relations
// partition the configuration space.
func TestAllenRelationsExhaustive(t *testing.T) {
	rel := func(a, b Interval) []string {
		var rs []string
		if a.Precedes(b) && !a.Meets(b) {
			rs = append(rs, "before")
		}
		if a.Meets(b) {
			rs = append(rs, "meets")
		}
		if a.Overlaps(b) {
			rs = append(rs, "overlaps")
		}
		if a.Starts(b) {
			rs = append(rs, "starts")
		}
		if a.During(b) && a.Start > b.Start && a.End < b.End {
			rs = append(rs, "during")
		}
		if a.Finishes(b) {
			rs = append(rs, "finishes")
		}
		return rs
	}
	for as := Time(0); as < 6; as++ {
		for ae := as + 1; ae <= 6; ae++ {
			for bs := Time(0); bs < 6; bs++ {
				for be := bs + 1; be <= 6; be++ {
					a, b := New(as, ae), New(bs, be)
					if a == b {
						continue
					}
					n := len(rel(a, b)) + len(rel(b, a))
					if n != 1 {
						t.Fatalf("%v vs %v: %d relations (%v / %v)", a, b, n, rel(a, b), rel(b, a))
					}
				}
			}
		}
	}
}

func TestAllenRelationExamples(t *testing.T) {
	if !New(0, 3).Overlaps(New(2, 6)) || New(2, 6).Overlaps(New(0, 3)) {
		t.Errorf("overlaps wrong")
	}
	if !New(0, 3).Starts(New(0, 6)) || New(0, 6).Starts(New(0, 3)) {
		t.Errorf("starts wrong")
	}
	if !New(4, 6).Finishes(New(0, 6)) || New(0, 6).Finishes(New(4, 6)) {
		t.Errorf("finishes wrong")
	}
}
