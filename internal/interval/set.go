package interval

import (
	"sort"
	"strings"
)

// Set is a canonical set of time-points represented as sorted, disjoint,
// non-adjacent intervals. The zero value is the empty set.
type Set struct {
	ivs []Interval
}

// NewSet builds a canonical set from arbitrary (possibly overlapping,
// unsorted, or empty) intervals.
func NewSet(ivs ...Interval) Set {
	var s Set
	for _, iv := range ivs {
		s.Add(iv)
	}
	return s
}

// Add inserts all time-points of iv into the set, coalescing adjacent and
// overlapping intervals.
func (s *Set) Add(iv Interval) {
	if iv.IsEmpty() {
		return
	}
	// Find insertion window: all stored intervals that overlap or are
	// adjacent to iv get merged into it.
	i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].End >= iv.Start })
	j := i
	merged := iv
	for j < len(s.ivs) && s.ivs[j].Start <= iv.End {
		merged = merged.Union(s.ivs[j])
		j++
	}
	out := make([]Interval, 0, len(s.ivs)-(j-i)+1)
	out = append(out, s.ivs[:i]...)
	out = append(out, merged)
	out = append(out, s.ivs[j:]...)
	s.ivs = out
}

// AddSet inserts every interval of other.
func (s *Set) AddSet(other Set) {
	for _, iv := range other.ivs {
		s.Add(iv)
	}
}

// Contains reports whether time-point t is in the set.
func (s Set) Contains(t Time) bool {
	i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].End > t })
	return i < len(s.ivs) && s.ivs[i].Contains(t)
}

// ContainsInterval reports whether every time-point of iv is in the set.
func (s Set) ContainsInterval(iv Interval) bool {
	if iv.IsEmpty() {
		return true
	}
	i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].End > iv.Start })
	return i < len(s.ivs) && s.ivs[i].ContainsInterval(iv)
}

// Intersects reports whether the set shares any time-point with iv.
func (s Set) Intersects(iv Interval) bool {
	if iv.IsEmpty() {
		return false
	}
	i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].End > iv.Start })
	return i < len(s.ivs) && s.ivs[i].Intersects(iv)
}

// IsEmpty reports whether the set contains no time-points.
func (s Set) IsEmpty() bool { return len(s.ivs) == 0 }

// Intervals returns the canonical intervals of the set in ascending order.
// The returned slice must not be modified.
func (s Set) Intervals() []Interval { return s.ivs }

// Len returns the number of canonical intervals.
func (s Set) Len() int { return len(s.ivs) }

// Duration returns the total number of time-points, or Infinity if unbounded.
func (s Set) Duration() Time {
	var d Time
	for _, iv := range s.ivs {
		if iv.End == Infinity {
			return Infinity
		}
		d += iv.Length()
	}
	return d
}

// Intersect returns the set of time-points present in both s and iv.
func (s Set) Intersect(iv Interval) Set {
	var out Set
	for _, v := range s.ivs {
		if x := v.Intersect(iv); !x.IsEmpty() {
			out.ivs = append(out.ivs, x)
		}
	}
	return out
}

// Subtract returns a copy of s with all time-points of iv removed.
func (s Set) Subtract(iv Interval) Set {
	var out Set
	for _, v := range s.ivs {
		x := v.Intersect(iv)
		if x.IsEmpty() {
			out.ivs = append(out.ivs, v)
			continue
		}
		if v.Start < x.Start {
			out.ivs = append(out.ivs, Interval{Start: v.Start, End: x.Start})
		}
		if x.End < v.End {
			out.ivs = append(out.ivs, Interval{Start: x.End, End: v.End})
		}
	}
	return out
}

// Equal reports whether two sets contain exactly the same time-points.
func (s Set) Equal(other Set) bool {
	if len(s.ivs) != len(other.ivs) {
		return false
	}
	for i := range s.ivs {
		if s.ivs[i] != other.ivs[i] {
			return false
		}
	}
	return true
}

// String renders the set as a list of intervals.
func (s Set) String() string {
	if len(s.ivs) == 0 {
		return "{}"
	}
	parts := make([]string, len(s.ivs))
	for i, iv := range s.ivs {
		parts[i] = iv.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
