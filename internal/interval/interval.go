// Package interval implements the discrete, linearly ordered time domain of
// the temporal graph model (Sec. III of the ICM paper): time-points, half-open
// time-intervals [start, end), Allen's interval relations, and interval sets.
//
// Time-points are non-negative int64 values; Infinity is represented by
// math.MaxInt64 and all arithmetic saturates at Infinity, so intervals such as
// [t, ∞) behave correctly under translation.
package interval

import (
	"fmt"
	"math"
)

// Time is a discrete time-point in the time domain Ω.
type Time = int64

// Infinity is the time-point used to represent an unbounded future. An
// interval [t, Infinity) contains every time-point >= t.
const Infinity Time = math.MaxInt64

// Interval is a half-open time-interval [Start, End). It contains the
// time-points {t | Start <= t < End}. An interval with Start >= End is empty.
type Interval struct {
	Start Time
	End   Time
}

// New returns the interval [start, end).
func New(start, end Time) Interval { return Interval{Start: start, End: end} }

// Point returns the unit-length interval [t, t+1) containing exactly t.
func Point(t Time) Interval { return Interval{Start: t, End: SatAdd(t, 1)} }

// From returns the unbounded interval [start, ∞).
func From(start Time) Interval { return Interval{Start: start, End: Infinity} }

// Empty is the canonical empty interval.
var Empty = Interval{Start: 0, End: 0}

// Universe is the interval covering the whole time domain, [0, ∞).
var Universe = Interval{Start: 0, End: Infinity}

// SatAdd returns a+b, saturating at Infinity. Either operand being Infinity
// yields Infinity. Operands must be non-negative except that a finite
// negative b is permitted when a is finite (plain addition applies).
func SatAdd(a, b Time) Time {
	if a == Infinity || b == Infinity {
		return Infinity
	}
	if b > 0 && a > Infinity-b {
		return Infinity
	}
	return a + b
}

// SatSub returns a-b, saturating: Infinity minus any finite value is
// Infinity, and results below 0 are clamped to 0.
func SatSub(a, b Time) Time {
	if a == Infinity {
		return Infinity
	}
	if b >= a {
		return 0
	}
	return a - b
}

// IsEmpty reports whether the interval contains no time-points.
func (iv Interval) IsEmpty() bool { return iv.Start >= iv.End }

// IsUnit reports whether the interval contains exactly one time-point.
func (iv Interval) IsUnit() bool { return !iv.IsEmpty() && iv.End != Infinity && iv.End-iv.Start == 1 }

// IsUnbounded reports whether the interval extends to Infinity.
func (iv Interval) IsUnbounded() bool { return !iv.IsEmpty() && iv.End == Infinity }

// Length returns the number of time-points in the interval, or Infinity for
// unbounded intervals.
func (iv Interval) Length() Time {
	if iv.IsEmpty() {
		return 0
	}
	if iv.End == Infinity {
		return Infinity
	}
	return iv.End - iv.Start
}

// Contains reports whether time-point t lies inside the interval.
func (iv Interval) Contains(t Time) bool { return t >= iv.Start && t < iv.End }

// ContainsInterval reports whether other is fully contained in iv
// (Allen's "during or equals", written ⊑ in the paper).
func (iv Interval) ContainsInterval(other Interval) bool {
	if other.IsEmpty() {
		return true
	}
	return other.Start >= iv.Start && other.End <= iv.End
}

// During reports Allen's strict "during" relation: iv is contained in other
// and does not equal it.
func (iv Interval) During(other Interval) bool {
	return other.ContainsInterval(iv) && iv != other && !iv.IsEmpty()
}

// Intersects reports whether the two intervals share at least one time-point
// (the ≬ relation in the paper).
func (iv Interval) Intersects(other Interval) bool {
	return !iv.Intersect(other).IsEmpty()
}

// Intersect returns the intersection iv ∩ other; the result may be empty.
func (iv Interval) Intersect(other Interval) Interval {
	s := iv.Start
	if other.Start > s {
		s = other.Start
	}
	e := iv.End
	if other.End < e {
		e = other.End
	}
	if s >= e {
		return Empty
	}
	return Interval{Start: s, End: e}
}

// Meets reports Allen's "meets" relation: iv ends exactly where other begins.
func (iv Interval) Meets(other Interval) bool {
	return !iv.IsEmpty() && !other.IsEmpty() && iv.End == other.Start
}

// Precedes reports whether iv ends at or before other starts (no overlap,
// iv first).
func (iv Interval) Precedes(other Interval) bool {
	return !iv.IsEmpty() && !other.IsEmpty() && iv.End <= other.Start
}

// Union returns the smallest interval covering both operands. It is only a
// set-union when the operands intersect or meet; Hull is the honest name, and
// callers needing exact unions should use Set.
func (iv Interval) Union(other Interval) Interval {
	if iv.IsEmpty() {
		return other
	}
	if other.IsEmpty() {
		return iv
	}
	s := iv.Start
	if other.Start < s {
		s = other.Start
	}
	e := iv.End
	if other.End > e {
		e = other.End
	}
	return Interval{Start: s, End: e}
}

// Translate shifts both endpoints by delta, saturating at Infinity.
func (iv Interval) Translate(delta Time) Interval {
	if iv.IsEmpty() {
		return Empty
	}
	return Interval{Start: SatAdd(iv.Start, delta), End: SatAdd(iv.End, delta)}
}

// Clamp returns iv clipped to bounds.
func (iv Interval) Clamp(bounds Interval) Interval { return iv.Intersect(bounds) }

// String renders the interval in the paper's [s, e) notation, using ∞ for
// unbounded ends.
func (iv Interval) String() string {
	if iv.IsEmpty() {
		return "[)"
	}
	if iv.End == Infinity {
		return fmt.Sprintf("[%d, ∞)", iv.Start)
	}
	return fmt.Sprintf("[%d, %d)", iv.Start, iv.End)
}

// Valid reports whether the interval is non-empty and has a non-negative
// start, i.e. lies within the time domain.
func (iv Interval) Valid() bool { return iv.Start >= 0 && iv.Start < iv.End }

// Overlaps reports Allen's "overlaps" relation: iv starts before other,
// they intersect, and iv ends inside other.
func (iv Interval) Overlaps(other Interval) bool {
	return !iv.IsEmpty() && !other.IsEmpty() &&
		iv.Start < other.Start && iv.End > other.Start && iv.End < other.End
}

// Starts reports Allen's "starts" relation: both begin together and iv ends
// first.
func (iv Interval) Starts(other Interval) bool {
	return !iv.IsEmpty() && !other.IsEmpty() &&
		iv.Start == other.Start && iv.End < other.End
}

// Finishes reports Allen's "finishes" relation: both end together and iv
// starts later.
func (iv Interval) Finishes(other Interval) bool {
	return !iv.IsEmpty() && !other.IsEmpty() &&
		iv.End == other.End && iv.Start > other.Start
}
