package core

import (
	"graphite/internal/engine"
	ival "graphite/internal/interval"
	"graphite/internal/warp"
)

// workspace is one worker's reusable compute scratch, keyed by the
// *executing* worker (engine.Context.Worker) — under work stealing that is
// the thief, not the vertex's owner. A worker goroutine executes one vertex
// at a time, so each workspace is touched by exactly one goroutine and needs
// no locking regardless of whose partition the vertex came from.
// All buffers are grow-only: after the first few supersteps the align →
// compute → scatter path of runtime.Run stops allocating. Everything in a
// workspace is valid only until the worker's next vertex — nothing here may
// escape a Run call.
type workspace struct {
	scratch warp.Scratch         // time-warp merge buffers and group arena
	inner   []warp.IntervalValue // lifespan-clipped incoming messages
	tuples  []warp.Tuple         // warp output consumed by the compute loop
	vc      VertexCtx            // persistent so &vc never escapes to the heap
}

// workspace returns the executing worker's scratch, sizing the per-worker
// array on first use — the effective worker count is not known until the
// engine is running (it clamps to the vertex count).
func (rt *runtime) workspace(ctx *engine.Context) *workspace {
	rt.wsOnce.Do(func() { rt.wss = make([]workspace, ctx.NumWorkers()) })
	return &rt.wss[ctx.Worker()]
}

// fillGaps appends empty-group tuples for the sub-intervals of the state
// partitions no existing tuple covers, so forced-active vertices compute over
// their whole lifespan. Both inputs are temporally partitioned in ascending
// order (the warp contract and the state invariant), so a single merge sweep
// finds the gaps without materializing interval sets.
func fillGaps(tuples []warp.Tuple, parts []warp.IntervalValue) []warp.Tuple {
	n := len(tuples) // gaps append past the sorted prefix; only [0,n) is swept
	ti := 0
	for _, p := range parts {
		cur := p.Interval.Start
		for cur < p.Interval.End {
			for ti < n && tuples[ti].Interval.End <= cur {
				ti++
			}
			if ti < n && tuples[ti].Interval.Start <= cur {
				// Covered through this tuple's end; tuples never span state
				// partitions, so the jump stays inside p.
				cur = tuples[ti].Interval.End
				continue
			}
			gap := p.Interval.End
			if ti < n && tuples[ti].Interval.Start < gap {
				gap = tuples[ti].Interval.Start
			}
			tuples = append(tuples, warp.Tuple{Interval: ival.New(cur, gap), State: p.Value})
			cur = gap
		}
	}
	return tuples
}
