package core

import (
	"fmt"

	"graphite/internal/engine"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// VertexCtx is the interval vertex handle passed to the user's Init, Compute
// and Scatter logic. It is only valid for the duration of the call.
type VertexCtx struct {
	rt  *runtime
	eng *engine.Context
	idx int
	v   *tgraph.Vertex

	inInit    bool
	inCompute bool
	inScatter bool
	allowed   ival.Interval   // interval the current compute tuple covers
	piece     ival.Interval   // edge property piece of the current scatter call
	scatterX  ival.Interval   // scatter overlap: default message interval
	scatterTo int             // destination of the current scatter call
	updated   []ival.Interval // state intervals written during this superstep
}

// ID returns the vertex's identifier.
func (c *VertexCtx) ID() tgraph.VertexID { return c.v.ID }

// Index returns the vertex's dense index.
func (c *VertexCtx) Index() int { return c.idx }

// Vertex returns the static temporal vertex (lifespan and properties).
func (c *VertexCtx) Vertex() *tgraph.Vertex { return c.v }

// Graph returns the temporal graph under computation.
func (c *VertexCtx) Graph() *tgraph.Graph { return c.rt.g }

// Lifespan returns the vertex lifespan.
func (c *VertexCtx) Lifespan() ival.Interval { return c.v.Lifespan }

// Superstep returns the 1-based superstep number.
func (c *VertexCtx) Superstep() int { return c.eng.Superstep() }

// Phase returns the master-set phase.
func (c *VertexCtx) Phase() int { return c.eng.Phase() }

// NumVertices returns |V| of the graph.
func (c *VertexCtx) NumVertices() int { return c.rt.g.NumVertices() }

// State returns the vertex's partitioned state for reading.
func (c *VertexCtx) State() *PartitionedState { return c.rt.states[c.idx] }

// StateAt returns the state value at time-point t.
func (c *VertexCtx) StateAt(t ival.Time) (any, bool) { return c.State().Get(t) }

// SetState updates the vertex state for iv. During Init any sub-interval of
// the lifespan may be written; during Compute writes are restricted to the
// active interval the call was made for — the contract S(τi) = {〈τj , sj〉 |
// τj ⊑ τi} of Sec. IV-A3. Out-of-range writes return an error and abort the
// run.
func (c *VertexCtx) SetState(iv ival.Interval, value any) error {
	if c.inScatter {
		// Scatter aligns the partitions being iterated; a Set would recycle
		// the backing array mid-iteration (see PartitionedState.Parts).
		err := fmt.Errorf("core: vertex %d called SetState during Scatter", c.v.ID)
		c.rt.fail(err)
		return err
	}
	bound := c.v.Lifespan
	if c.inCompute {
		bound = c.allowed
	}
	if !bound.ContainsInterval(iv) || iv.IsEmpty() {
		err := fmt.Errorf("%w: vertex %d wrote %v, active interval %v",
			ErrStateOutOfRange, c.v.ID, iv, bound)
		c.rt.fail(err)
		return err
	}
	if err := c.rt.states[c.idx].Set(iv, value); err != nil {
		c.rt.fail(err)
		return err
	}
	c.rt.stateUpdates.Add(1)
	if !c.inInit {
		c.updated = append(c.updated, iv)
	}
	return nil
}

// Emit sends a message to the current scatter call's destination without
// allocating an OutMsg slice; a zero interval inherits the scatter overlap
// (τm = τ'k). It may only be called during Scatter; algorithms use it in
// place of returning a non-nil slice on hot paths.
func (c *VertexCtx) Emit(when ival.Interval, value any) {
	if !c.inScatter {
		c.rt.fail(fmt.Errorf("core: Emit called outside Scatter by vertex %d", c.v.ID))
		return
	}
	if when == (ival.Interval{}) {
		when = c.scatterX
	}
	if when.IsEmpty() {
		return
	}
	c.eng.Send(c.scatterTo, when, value)
}

// ScatterPiece returns, during a Scatter call, the full edge property piece
// being scattered over (the scatter interval t is its intersection with the
// updated state; reverse-traversal algorithms need the piece itself to
// compute departure windows).
func (c *VertexCtx) ScatterPiece() ival.Interval { return c.piece }

// SendTo sends a message directly to the vertex at dense index dst, valid
// for the given interval, bypassing scatter. Pregel-style algorithms that
// message non-adjacent vertices (triangle closure replies, SCC backward
// sweeps) use this; messages still flow through the engine and are counted.
func (c *VertexCtx) SendTo(dst int, when ival.Interval, value any) {
	c.eng.Send(dst, when, value)
}

// Aggregate contributes to a named aggregator.
func (c *VertexCtx) Aggregate(name string, v any) { c.eng.Aggregate(name, v) }

// AggValue reads a named aggregator's value from the previous superstep.
func (c *VertexCtx) AggValue(name string) any { return c.eng.AggValue(name) }
