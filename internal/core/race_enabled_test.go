//go:build race

package core

// raceEnabled mirrors internal/engine's: allocation gates are skipped under
// the race detector, whose instrumentation perturbs pooling and allocation.
const raceEnabled = true
