package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	ival "graphite/internal/interval"
)

func TestPartitionedStateBasics(t *testing.T) {
	s := NewPartitionedState(ival.New(0, 10), int64(0))
	if s.NumParts() != 1 || s.Lifespan() != ival.New(0, 10) {
		t.Fatalf("initial state wrong: %+v", s.Parts())
	}
	if v, ok := s.Get(5); !ok || v.(int64) != 0 {
		t.Fatalf("Get(5) = %v,%v", v, ok)
	}
	if _, ok := s.Get(10); ok {
		t.Fatalf("Get outside lifespan must fail")
	}
	if err := s.Set(ival.New(3, 6), int64(7)); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if s.NumParts() != 3 {
		t.Fatalf("want 3 partitions after split, got %v", s.Parts())
	}
	if err := s.Invariant(); err != nil {
		t.Fatalf("invariant: %v", err)
	}
	// Re-setting the same value everywhere must fuse back to one partition.
	if err := s.Set(ival.New(0, 10), int64(7)); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if s.NumParts() != 1 {
		t.Fatalf("fuse failed: %v", s.Parts())
	}
}

func TestPartitionedStateFusesEqualNeighbors(t *testing.T) {
	s := NewPartitionedState(ival.New(0, 10), int64(1))
	s.Set(ival.New(0, 5), int64(2))
	s.Set(ival.New(5, 10), int64(2))
	if s.NumParts() != 1 {
		t.Fatalf("adjacent equal values must fuse: %v", s.Parts())
	}
}

func TestPartitionedStateRejectsOutOfRange(t *testing.T) {
	s := NewPartitionedState(ival.New(2, 8), int64(0))
	for _, iv := range []ival.Interval{ival.New(0, 3), ival.New(7, 9), ival.Empty, ival.From(2)} {
		if err := s.Set(iv, int64(1)); !errors.Is(err, ErrStateOutOfRange) {
			t.Errorf("Set(%v) should fail with ErrStateOutOfRange, got %v", iv, err)
		}
	}
	if err := s.Invariant(); err != nil {
		t.Fatalf("failed sets must not corrupt the state: %v", err)
	}
}

// TestPartitionedStateOracle fuzzes Set/Get against a per-point array.
func TestPartitionedStateOracle(t *testing.T) {
	const span = 32
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewPartitionedState(ival.New(0, span), int64(-1))
		oracle := make([]int64, span)
		for i := range oracle {
			oracle[i] = -1
		}
		for op := 0; op < 25; op++ {
			a := ival.Time(r.Intn(span))
			b := a + ival.Time(r.Intn(span-int(a))) + 1
			v := int64(r.Intn(4))
			if err := s.Set(ival.New(a, b), v); err != nil {
				return false
			}
			for i := a; i < b; i++ {
				oracle[i] = v
			}
			if err := s.Invariant(); err != nil {
				t.Logf("invariant: %v", err)
				return false
			}
		}
		for i := ival.Time(0); i < span; i++ {
			got, ok := s.Get(i)
			if !ok || got.(int64) != oracle[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPartitionedStateUnbounded exercises ∞-ended lifespans.
func TestPartitionedStateUnbounded(t *testing.T) {
	s := NewPartitionedState(ival.Universe, int64(0))
	if err := s.Set(ival.From(100), int64(9)); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if v, _ := s.Get(ival.Infinity - 1); v.(int64) != 9 {
		t.Fatalf("tail value wrong: %v", v)
	}
	if v, _ := s.Get(99); v.(int64) != 0 {
		t.Fatalf("head value wrong: %v", v)
	}
	if err := s.Invariant(); err != nil {
		t.Fatalf("invariant: %v", err)
	}
}
