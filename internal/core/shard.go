package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"graphite/internal/codec"
	"graphite/internal/engine"
	"graphite/internal/tgraph"
	"graphite/internal/warp"
)

// This file is the ICM face of the multi-process cluster runtime: a
// core.Shard wraps one engine.Shard plus its runtime, and the snapshot
// codec that lets a shard's vertex states travel — to disk as a durable
// checkpoint, and to the coordinator as a partial result. Every process in
// a cluster builds its shard from the same graph, program and options, so
// the deterministic partitioner gives every process the identical
// vertex→shard map; only the owned slice of the state array is ever
// populated locally.

// ErrClusterUnsupported marks Options features that have no distributed
// equivalent yet: master compute and aggregators need a coordinator-side
// merge protocol, and a run with ActivateAll but no superstep bound would
// never halt without a master.
var ErrClusterUnsupported = errors.New("core: option unsupported in cluster execution")

// Shard is one worker process's slice of an ICM computation, stepped
// externally by the cluster runtime.
type Shard struct {
	rt *runtime
	sh *engine.Shard
	g  *tgraph.Graph
}

// NewShard prepares shard `shard` of `opts.NumWorkers` for a cluster run.
// The options must be identical in every process. Beyond the engine-level
// restrictions (explicit NumWorkers; no Transport, Steal, Master,
// CheckpointEvery or Context), aggregators are rejected (no distributed
// merge) and ActivateAll requires MaxSupersteps. State values must be
// encodable by opts.PayloadCodec — checkpoints and result collection
// serialize them with it.
func NewShard(g *tgraph.Graph, prog Program, opts Options, shard int) (*Shard, error) {
	if g.NumVertices() == 0 {
		return nil, errors.New("core: empty graph")
	}
	if opts.Master != nil {
		return nil, fmt.Errorf("%w: Master", ErrClusterUnsupported)
	}
	if len(opts.Aggregators) > 0 {
		return nil, fmt.Errorf("%w: Aggregators", ErrClusterUnsupported)
	}
	if opts.WrapProgram != nil {
		return nil, fmt.Errorf("%w: WrapProgram", ErrClusterUnsupported)
	}
	if opts.ActivateAll && opts.MaxSupersteps <= 0 {
		return nil, fmt.Errorf("%w: ActivateAll without MaxSupersteps never halts", ErrClusterUnsupported)
	}
	rt := newRuntime(g, prog, opts)
	cfg := engine.Config{
		NumWorkers:   opts.NumWorkers,
		ActivateAll:  opts.ActivateAll,
		Partitioner:  opts.Partitioner,
		PayloadCodec: opts.PayloadCodec,
		SendRetries:  opts.SendRetries,
		Registry:     opts.Registry,
		Span:         opts.Span,
	}
	if opts.ReceiverCombine && rt.combine != nil {
		cfg.Combiner = engine.CombinerFunc(rt.combine)
	}
	sh, err := engine.NewShard(g.NumVertices(), rt, cfg, shard)
	if err != nil {
		return nil, err
	}
	return &Shard{rt: rt, sh: sh, g: g}, nil
}

// ID returns the shard index; NumShards the cluster width.
func (s *Shard) ID() int        { return s.sh.ID() }
func (s *Shard) NumShards() int { return s.sh.NumShards() }

// Superstep returns the 1-based superstep about to execute.
func (s *Shard) Superstep() int { return s.sh.Superstep() }

// Init runs Program.Init over the owned vertices.
func (s *Shard) Init() error {
	if err := s.sh.Init(); err != nil {
		return err
	}
	return s.rt.err
}

// Compute runs one compute phase over the shard's active frontier.
func (s *Shard) Compute() error {
	if err := s.sh.Compute(); err != nil {
		return err
	}
	return s.rt.err
}

// Outbound drains the encoded cross-shard batches (nil at own index).
func (s *Shard) Outbound() ([][]byte, error) { return s.sh.Outbound() }

// Deliver runs the receive phase; peer batches must arrive in ascending
// source-shard order (see engine.Shard.Deliver).
func (s *Shard) Deliver(batches [][]byte) (int64, error) { return s.sh.Deliver(batches) }

// Barrier closes the superstep and returns this shard's report.
func (s *Shard) Barrier() engine.StepReport { return s.sh.Barrier() }

// CaptureDurable serializes the shard for a durable checkpoint; call at a
// barrier. RestoreDurable rewinds to such a capture (on a freshly Init()ed
// shard in a replacement process, or in place on a survivor).
func (s *Shard) CaptureDurable() ([]byte, error)  { return s.sh.CaptureDurable() }
func (s *Shard) RestoreDurable(data []byte) error { return s.sh.RestoreDurable(data) }

// EncodeOwnedStates serializes the shard's final vertex states and ICM
// stats for result collection — the same wire format the durable snapshot
// uses, so AssembleResult can merge either.
func (s *Shard) EncodeOwnedStates() ([]byte, error) {
	return s.rt.AppendSnapshot(nil, s.rt.Snapshot())
}

// AssembleResult merges per-shard state blobs (EncodeOwnedStates output)
// into a Result over g. Shards own disjoint vertex sets, so the state
// arrays interleave without conflict; ICM stats sum. The metrics are the
// caller's (the coordinator aggregates its own engine.Metrics from the
// superstep reports); nil is replaced by an empty Metrics.
func AssembleResult(g *tgraph.Graph, pc codec.Payload, blobs [][]byte, m *engine.Metrics) (*Result, error) {
	if m == nil {
		m = &engine.Metrics{}
	}
	states := make([]*PartitionedState, g.NumVertices())
	var stats Stats
	for i, blob := range blobs {
		snap, err := decodeRuntimeSnapshot(blob, g.NumVertices(), pc)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d result: %w", i, err)
		}
		for v, st := range snap.states {
			if st == nil {
				continue
			}
			if states[v] != nil {
				return nil, fmt.Errorf("core: vertex %d reported by two shards", v)
			}
			states[v] = st
		}
		stats.WarpCalls += snap.warpCalls
		stats.WarpSuppressed += snap.warpSuppressed
		stats.StateUpdates += snap.stateUpdates
		stats.ActiveIntervals += snap.activeIntervals
	}
	for _, st := range states {
		if st != nil && st.NumParts() > stats.MaxPartitions {
			stats.MaxPartitions = st.NumParts()
		}
	}
	return &Result{Graph: g, Metrics: m, Stats: stats, states: states}, nil
}

// ---- snapshot wire format ----
//
//	u8 version
//	uvarint nStates | per state: uvarint vertexIndex, interval lifespan,
//	    uvarint nParts | per part: interval, u8 present, [payload]
//	7 × uvarint counters
//
// Values are encoded with the run's PayloadCodec; a nil value (legal in a
// freshly initialized partition) is the absent byte.

const snapVersion = 1

// AppendSnapshot implements engine.SnapshotCodec for the ICM runtime.
func (rt *runtime) AppendSnapshot(buf []byte, snapshot any) (out []byte, err error) {
	s, ok := snapshot.(*runtimeSnapshot)
	if !ok {
		return nil, fmt.Errorf("core: unexpected snapshot type %T", snapshot)
	}
	pc := rt.opts.PayloadCodec
	if pc == nil {
		return nil, errors.New("core: snapshot serialization requires PayloadCodec")
	}
	// Codec implementations may panic on a value type they do not handle;
	// surface that as an error so a worker reports instead of dying.
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("core: state value not encodable by payload codec: %v", r)
		}
	}()
	buf = append(buf, snapVersion)
	n := 0
	for _, st := range s.states {
		if st != nil {
			n++
		}
	}
	buf = binary.AppendUvarint(buf, uint64(n))
	for v, st := range s.states {
		if st == nil {
			continue
		}
		buf = binary.AppendUvarint(buf, uint64(v))
		buf = codec.AppendInterval(buf, st.lifespan)
		buf = binary.AppendUvarint(buf, uint64(len(st.parts)))
		for _, p := range st.parts {
			buf = codec.AppendInterval(buf, p.Interval)
			if p.Value == nil {
				buf = append(buf, 0)
				continue
			}
			buf = append(buf, 1)
			buf = pc.Append(buf, p.Value)
		}
	}
	for _, c := range []int64{s.warpCalls, s.warpSuppressed, s.stateUpdates,
		s.activeIntervals, s.mergedGroups, s.msgsIn, s.unitMsgsIn} {
		buf = binary.AppendUvarint(buf, uint64(c))
	}
	return buf, nil
}

// DecodeSnapshot implements engine.SnapshotCodec.
func (rt *runtime) DecodeSnapshot(data []byte) (any, error) {
	snap, err := decodeRuntimeSnapshot(data, len(rt.states), rt.opts.PayloadCodec)
	if err != nil {
		return nil, err
	}
	return snap, nil
}

func snapCorrupt(what string) error {
	return fmt.Errorf("%w: snapshot: bad %s", codec.ErrCorrupt, what)
}

func decodeRuntimeSnapshot(data []byte, numV int, pc codec.Payload) (*runtimeSnapshot, error) {
	if pc == nil {
		return nil, errors.New("core: snapshot decoding requires PayloadCodec")
	}
	if len(data) < 1 || data[0] != snapVersion {
		return nil, snapCorrupt("version")
	}
	buf := data[1:]
	next := func(what string) (uint64, error) {
		v, k := binary.Uvarint(buf)
		if k <= 0 {
			return 0, snapCorrupt(what)
		}
		buf = buf[k:]
		return v, nil
	}
	n, err := next("state count")
	if err != nil {
		return nil, err
	}
	if n > uint64(numV) {
		return nil, snapCorrupt("state count")
	}
	snap := &runtimeSnapshot{states: make([]*PartitionedState, numV)}
	for i := uint64(0); i < n; i++ {
		v, err := next("vertex index")
		if err != nil {
			return nil, err
		}
		if v >= uint64(numV) || snap.states[v] != nil {
			return nil, snapCorrupt("vertex index")
		}
		life, k, err := codec.Interval(buf)
		if err != nil {
			return nil, err
		}
		buf = buf[k:]
		nParts, err := next("partition count")
		if err != nil {
			return nil, err
		}
		st := &PartitionedState{lifespan: life}
		for p := uint64(0); p < nParts; p++ {
			iv, k, err := codec.Interval(buf)
			if err != nil {
				return nil, err
			}
			buf = buf[k:]
			if len(buf) < 1 {
				return nil, snapCorrupt("value presence")
			}
			present := buf[0]
			buf = buf[1:]
			var val any
			if present == 1 {
				var k int
				val, k, err = pc.Decode(buf)
				if err != nil {
					return nil, err
				}
				buf = buf[k:]
			} else if present != 0 {
				return nil, snapCorrupt("value presence")
			}
			st.parts = append(st.parts, warp.IntervalValue{Interval: iv, Value: val})
		}
		snap.states[v] = st
	}
	counters := [7]*int64{&snap.warpCalls, &snap.warpSuppressed, &snap.stateUpdates,
		&snap.activeIntervals, &snap.mergedGroups, &snap.msgsIn, &snap.unitMsgsIn}
	for i, dst := range counters {
		c, err := next(fmt.Sprintf("counter %d", i))
		if err != nil {
			return nil, err
		}
		*dst = int64(c)
	}
	return snap, nil
}
