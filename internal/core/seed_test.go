package core

import (
	"testing"

	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

func seedParts(t *testing.T, life ival.Interval, sets ...[3]int64) *PartitionedState {
	t.Helper()
	st := NewPartitionedState(life, int64(-1))
	for _, s := range sets {
		if err := st.Set(ival.New(ival.Time(s[0]), ival.Time(s[1])), s[2]); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	return st
}

func requireParts(t *testing.T, st *PartitionedState, want ...[3]int64) {
	t.Helper()
	parts := st.Parts()
	if len(parts) != len(want) {
		t.Fatalf("parts = %v, want %d entries", parts, len(want))
	}
	for i, w := range want {
		if parts[i].Interval != ival.New(ival.Time(w[0]), ival.Time(w[1])) || parts[i].Value != w[2] {
			t.Fatalf("part %d = %v=%v, want [%d,%d)=%d", i, parts[i].Interval, parts[i].Value, w[0], w[1], w[2])
		}
	}
}

func TestOverlaySeedExtendsFinalPartition(t *testing.T) {
	// A vertex whose lifespan grew from [0,10) to [0,20): the seed's final
	// value carries across the extension.
	st := NewPartitionedState(ival.New(0, 20), int64(-1))
	seed := seedParts(t, ival.New(0, 10), [3]int64{0, 4, 7}, [3]int64{4, 10, 3})
	if err := overlaySeed(st, seed); err != nil {
		t.Fatalf("overlaySeed: %v", err)
	}
	requireParts(t, st, [3]int64{0, 4, 7}, [3]int64{4, 20, 3})
}

func TestOverlaySeedClipsToNewLifespan(t *testing.T) {
	// A lifespan that shrank (entity absent from part of the new window):
	// seed partitions clip, no extension beyond the new end when the seed
	// already covers it.
	st := NewPartitionedState(ival.New(2, 8), int64(-1))
	seed := seedParts(t, ival.New(0, 10), [3]int64{0, 4, 7}, [3]int64{4, 10, 3})
	if err := overlaySeed(st, seed); err != nil {
		t.Fatalf("overlaySeed: %v", err)
	}
	requireParts(t, st, [3]int64{2, 4, 7}, [3]int64{4, 8, 3})
}

func TestOverlaySeedUniformValueFuses(t *testing.T) {
	// Overlaying a seed equal to the init value must leave one canonical
	// partition, not a split one — bit-identity depends on fusion.
	st := NewPartitionedState(ival.New(0, 20), int64(-1))
	seed := seedParts(t, ival.New(0, 10))
	if err := overlaySeed(st, seed); err != nil {
		t.Fatalf("overlaySeed: %v", err)
	}
	requireParts(t, st, [3]int64{0, 20, -1})
}

func TestSeedFromResultAlignsByVertexID(t *testing.T) {
	build := func(ids ...int64) *tgraph.Graph {
		b := tgraph.NewBuilder(len(ids), 0)
		for _, id := range ids {
			b.AddVertex(tgraph.VertexID(id), ival.New(0, 10))
		}
		g, err := b.Build()
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		return g
	}
	prior := build(1, 3)
	next := build(1, 2, 3)
	r := &Result{Graph: prior, states: []*PartitionedState{
		seedParts(t, ival.New(0, 10), [3]int64{0, 10, 5}),
		seedParts(t, ival.New(0, 10), [3]int64{0, 10, 9}),
	}}
	seeds := SeedFromResult(next, r)
	if len(seeds) != 3 {
		t.Fatalf("len(seeds) = %d", len(seeds))
	}
	if seeds[0] == nil || seeds[0].Parts()[0].Value != int64(5) {
		t.Errorf("vertex 1 seed = %v", seeds[0])
	}
	if seeds[1] != nil {
		t.Errorf("vertex 2 (absent from prior) should be unseeded")
	}
	if seeds[2] == nil || seeds[2].Parts()[0].Value != int64(9) {
		t.Errorf("vertex 3 seed = %v", seeds[2])
	}
}
