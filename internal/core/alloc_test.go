package core

import (
	"math"
	"sort"
	"sync"
	"testing"

	"graphite/internal/codec"
	"graphite/internal/engine"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// The warp-phase half of the zero-allocation gate: real SSSP and PageRank
// runs on the transit fixture, with every steady-state inbox captured through
// the WrapProgram seam, then replayed through runtime.align against a warmed
// workspace. internal/algorithms depends on core, so the two programs are
// mirrored here; the algorithm-level results themselves are pinned by the
// tests in internal/algorithms.

const allocUnreachable = int64(math.MaxInt64)

// ssspGateProg mirrors algorithms.SSSP: unbounded [t, ∞) message intervals,
// int64 costs, min warp combiner.
type ssspGateProg struct {
	source tgraph.VertexID
	start  ival.Time
}

func (a *ssspGateProg) Init(v *VertexCtx) { v.SetState(v.Lifespan(), allocUnreachable) }

func (a *ssspGateProg) Compute(v *VertexCtx, t ival.Interval, state any, msgs []any) {
	if v.Superstep() == 1 {
		if v.ID() == a.source {
			if at := t.Intersect(ival.From(a.start)); !at.IsEmpty() {
				v.SetState(at, int64(0))
			}
		}
		return
	}
	best := state.(int64)
	for _, m := range msgs {
		if c := m.(int64); c < best {
			best = c
		}
	}
	if best < state.(int64) {
		v.SetState(t, best)
	}
}

func (a *ssspGateProg) Scatter(v *VertexCtx, e *tgraph.Edge, t ival.Interval, state any) []OutMsg {
	cost := state.(int64)
	if cost == allocUnreachable {
		return nil
	}
	tt, ok1 := e.Props.ValueAt(tgraph.PropTravelTime, t.Start)
	tc, ok2 := e.Props.ValueAt(tgraph.PropTravelCost, t.Start)
	if !ok1 || !ok2 {
		return nil
	}
	v.Emit(ival.From(ival.SatAdd(t.Start, tt)), cost+tc)
	return nil
}

func (a *ssspGateProg) CombineWarp(x, y any) any {
	if x.(int64) < y.(int64) {
		return x
	}
	return y
}

// prGateProg mirrors algorithms.PageRank: all vertices forced active, bounded
// message intervals carrying float64 rank mass, a fixed superstep budget. On
// the transit fixture most edges live for a single time-point, so the unit
// fraction trips warp suppression and this program gates the scratch-backed
// point-groups path plus the lifespan gap filling. The gate disables the warp
// combiner because a sum fold's one allocation is Go boxing the freshly
// summed float64 — a language-level cost of `any` payloads rather than a warp
// buffer; the combined fold machinery itself is gated by SSSP, whose min-fold
// returns an already boxed input.
type prGateProg struct {
	iters    int
	damping  float64
	degParts [][]prDegPart
}

type prDegPart struct {
	iv  ival.Interval
	deg int64
}

func newPRGateProg(g *tgraph.Graph, iters int) *prGateProg {
	a := &prGateProg{iters: iters, damping: 0.85, degParts: make([][]prDegPart, g.NumVertices())}
	for v := 0; v < g.NumVertices(); v++ {
		life := g.VertexAt(v).Lifespan
		bounds := []ival.Time{life.Start, life.End}
		for _, ei := range g.OutEdges(v) {
			if x := g.Edge(int(ei)).Lifespan.Intersect(life); !x.IsEmpty() {
				bounds = append(bounds, x.Start, x.End)
			}
		}
		sort.Slice(bounds, func(a, b int) bool { return bounds[a] < bounds[b] })
		for i := 0; i+1 < len(bounds); i++ {
			if bounds[i] == bounds[i+1] {
				continue
			}
			piece := ival.New(bounds[i], bounds[i+1])
			a.degParts[v] = append(a.degParts[v], prDegPart{iv: piece, deg: int64(g.OutDegreeAt(v, piece.Start))})
		}
	}
	return a
}

func (a *prGateProg) Init(v *VertexCtx) {
	v.SetState(v.Lifespan(), 1.0/float64(v.NumVertices()))
}

func (a *prGateProg) Compute(v *VertexCtx, t ival.Interval, state any, msgs []any) {
	n := float64(v.NumVertices())
	if v.Superstep() == 1 {
		v.SetState(t, 1.0/n)
		return
	}
	var sum float64
	for _, m := range msgs {
		sum += m.(float64)
	}
	v.SetState(t, (1-a.damping)/n+a.damping*sum)
}

func (a *prGateProg) Scatter(v *VertexCtx, e *tgraph.Edge, t ival.Interval, state any) []OutMsg {
	if v.Superstep() > a.iters {
		return nil
	}
	rank := state.(float64)
	for _, dp := range a.degParts[v.Index()] {
		x := dp.iv.Intersect(t)
		if x.IsEmpty() || dp.deg == 0 {
			continue
		}
		v.Emit(x, rank/float64(dp.deg))
	}
	return nil
}

func (a *prGateProg) CombineWarp(x, y any) any { return x.(float64) + y.(float64) }

// alignRec is one captured steady-state inbox.
type alignRec struct {
	vertex    int
	superstep int
	msgs      []engine.Message
}

// inboxRecorder wraps the ICM runtime and copies every non-empty inbox from
// superstep 2 on, so the align path can be replayed outside the engine.
type inboxRecorder struct {
	inner engine.Program
	mu    sync.Mutex
	recs  []alignRec
}

func (r *inboxRecorder) Init(ctx *engine.Context) { r.inner.Init(ctx) }

func (r *inboxRecorder) Run(ctx *engine.Context, msgs []engine.Message) {
	if ctx.Superstep() >= 2 && len(msgs) > 0 {
		r.mu.Lock()
		r.recs = append(r.recs, alignRec{
			vertex:    ctx.Vertex(),
			superstep: ctx.Superstep(),
			msgs:      append([]engine.Message(nil), msgs...),
		})
		r.mu.Unlock()
	}
	r.inner.Run(ctx, msgs)
}

// runAlignGate runs prog on the transit fixture, then replays every captured
// steady-state inbox through runtime.align with a warmed workspace and
// requires zero allocations.
func runAlignGate(t *testing.T, prog Program, opts Options) {
	t.Helper()
	if raceEnabled {
		t.Skip("alloc gate skipped under -race: detector instrumentation and pool perturbation inflate alloc counts")
	}
	g := tgraph.TransitExample()
	rec := &inboxRecorder{}
	var rt *runtime
	opts.WrapProgram = func(p engine.Program) engine.Program {
		rt = p.(*runtime)
		rec.inner = p
		return rec
	}
	if _, err := Run(g, prog, opts); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(rec.recs) == 0 {
		t.Fatal("no steady-state inboxes captured; the gate measured nothing")
	}
	ws := &workspace{}
	replay := func() {
		for _, r := range rec.recs {
			rt.align(ws, rt.states[r.vertex], r.msgs, r.superstep)
		}
	}
	replay() // grow the workspace to its working size
	if allocs := testing.AllocsPerRun(50, replay); allocs != 0 {
		t.Errorf("steady-state align over %d captured inboxes allocates %.2f per replay, want 0",
			len(rec.recs), allocs)
	}
}

// TestAlignNoAllocsSSSPTransit gates the warp phase of SSSP on the transit
// fixture: warp-combined alignment of unbounded message intervals.
func TestAlignNoAllocsSSSPTransit(t *testing.T) {
	runAlignGate(t, &ssspGateProg{source: 0, start: 1},
		Options{
			NumWorkers:      2,
			PropLabels:      []string{tgraph.PropTravelTime, tgraph.PropTravelCost},
			PayloadCodec:    codec.Int64{},
			ReceiverCombine: true,
		})
}

// TestAlignNoAllocsPageRankTransit gates the warp phase of PageRank on the
// transit fixture: all-active alignment of bounded, mostly unit message
// intervals (the suppressed point-groups path) with lifespan gap filling.
func TestAlignNoAllocsPageRankTransit(t *testing.T) {
	prog := newPRGateProg(tgraph.TransitExample(), 5)
	runAlignGate(t, prog,
		Options{
			NumWorkers:          2,
			ActivateAll:         true,
			MaxSupersteps:       prog.iters + 1,
			PayloadCodec:        codec.Float64{},
			DisableWarpCombiner: true,
		})
}
