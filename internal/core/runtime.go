package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"graphite/internal/engine"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
	"graphite/internal/warp"
)

// runtime adapts an ICM Program to the BSP engine: it owns the partitioned
// vertex states, runs the pre-compute time-warp over incoming messages, and
// the pre-scatter alignment of updated states with out-edge property
// partitions.
type runtime struct {
	g         *tgraph.Graph
	prog      Program
	opts      Options
	combine   warp.CombineFunc // nil when absent or disabled
	states    []*PartitionedState
	edgeParts [][]ival.Interval // per edge: lifespan partitioned at property boundaries
	edgeMatch [][]ival.Interval // per edge piece: the interval that triggers scatter
	targets   [][]target        // per vertex: edges scatter traverses and their far endpoints
	threshold float64

	// Per-worker reusable scratch; sized lazily at the first Run call, when
	// the engine's effective worker count is known.
	wss    []workspace
	wsOnce sync.Once

	warpCalls       atomic.Int64
	warpSuppressed  atomic.Int64
	stateUpdates    atomic.Int64
	activeIntervals atomic.Int64

	// Trace-only counters (maintained when traced is set): warp group fan-in
	// and the unit-message share the suppression heuristic keys off.
	traced       bool
	mergedGroups atomic.Int64
	msgsIn       atomic.Int64
	unitMsgsIn   atomic.Int64

	errMu sync.Mutex
	err   error
}

// target is one edge a vertex's scatter traverses, with the dense index of
// the endpoint messages go to.
type target struct {
	edge int32
	dst  int32
}

func newRuntime(g *tgraph.Graph, prog Program, opts Options) *runtime {
	rt := &runtime{
		g:         g,
		prog:      prog,
		opts:      opts,
		states:    make([]*PartitionedState, g.NumVertices()),
		edgeParts: make([][]ival.Interval, g.NumEdges()),
		edgeMatch: make([][]ival.Interval, g.NumEdges()),
		targets:   make([][]target, g.NumVertices()),
		threshold: opts.SuppressionThreshold,
	}
	if rt.threshold <= 0 {
		rt.threshold = DefaultSuppressionThreshold
	}
	if wc, ok := prog.(WarpCombiner); ok && !opts.DisableWarpCombiner {
		rt.combine = wc.CombineWarp
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		rt.edgeParts[i] = edgePartition(e, opts.PropLabels)
		rt.edgeMatch[i] = rt.edgeParts[i]
		if opts.ScatterSlackLabel != "" {
			match := make([]ival.Interval, len(rt.edgeParts[i]))
			for k, piece := range rt.edgeParts[i] {
				slack, _ := e.Props.ValueAt(opts.ScatterSlackLabel, piece.Start)
				match[k] = piece.Translate(slack)
			}
			rt.edgeMatch[i] = match
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		if !opts.Reverse || opts.Undirected {
			for _, ei := range g.OutEdges(v) {
				rt.targets[v] = append(rt.targets[v], target{edge: ei, dst: int32(g.IndexOf(g.Edge(int(ei)).Dst))})
			}
		}
		if opts.Reverse || opts.Undirected {
			for _, ei := range g.InEdges(v) {
				rt.targets[v] = append(rt.targets[v], target{edge: ei, dst: int32(g.IndexOf(g.Edge(int(ei)).Src))})
			}
		}
	}
	return rt
}

// edgePartition splits an edge's lifespan at the boundaries of its property
// values so that each scatter call sees time-invariant properties.
func edgePartition(e *tgraph.Edge, labels []string) []ival.Interval {
	bounds := []ival.Time{e.Lifespan.Start, e.Lifespan.End}
	add := func(entries []tgraph.PropEntry) {
		for _, p := range entries {
			x := p.Interval.Intersect(e.Lifespan)
			if !x.IsEmpty() {
				bounds = append(bounds, x.Start, x.End)
			}
		}
	}
	if len(labels) == 0 {
		for _, entries := range e.Props.All() {
			add(entries)
		}
	} else {
		for _, l := range labels {
			add(e.Props.Entries(l))
		}
	}
	sort.Slice(bounds, func(a, b int) bool { return bounds[a] < bounds[b] })
	var parts []ival.Interval
	for i := 0; i+1 < len(bounds); i++ {
		if bounds[i] == bounds[i+1] {
			continue
		}
		parts = append(parts, ival.New(bounds[i], bounds[i+1]))
	}
	return parts
}

// runtimeSnapshot is the ICM-level state a rollback must restore: cloned
// partitioned vertex states plus the Stats counters, so a replayed superstep
// neither loses nor double-counts events.
type runtimeSnapshot struct {
	states          []*PartitionedState
	warpCalls       int64
	warpSuppressed  int64
	stateUpdates    int64
	activeIntervals int64
	mergedGroups    int64
	msgsIn          int64
	unitMsgsIn      int64
}

// Snapshot implements engine.Snapshotter.
func (rt *runtime) Snapshot() any {
	s := &runtimeSnapshot{
		states:          make([]*PartitionedState, len(rt.states)),
		warpCalls:       rt.warpCalls.Load(),
		warpSuppressed:  rt.warpSuppressed.Load(),
		stateUpdates:    rt.stateUpdates.Load(),
		activeIntervals: rt.activeIntervals.Load(),
		mergedGroups:    rt.mergedGroups.Load(),
		msgsIn:          rt.msgsIn.Load(),
		unitMsgsIn:      rt.unitMsgsIn.Load(),
	}
	for i, st := range rt.states {
		if st != nil {
			s.states[i] = st.Clone()
		}
	}
	return s
}

// Restore implements engine.Snapshotter. It clones again so the same
// snapshot survives being restored more than once.
func (rt *runtime) Restore(snapshot any) {
	s := snapshot.(*runtimeSnapshot)
	for i, st := range s.states {
		if st != nil {
			rt.states[i] = st.Clone()
		} else {
			rt.states[i] = nil
		}
	}
	rt.warpCalls.Store(s.warpCalls)
	rt.warpSuppressed.Store(s.warpSuppressed)
	rt.stateUpdates.Store(s.stateUpdates)
	rt.activeIntervals.Store(s.activeIntervals)
	rt.mergedGroups.Store(s.mergedGroups)
	rt.msgsIn.Store(s.msgsIn)
	rt.unitMsgsIn.Store(s.unitMsgsIn)
}

func (rt *runtime) fail(err error) {
	rt.errMu.Lock()
	if rt.err == nil {
		rt.err = err
	}
	rt.errMu.Unlock()
}

func (rt *runtime) statsSnapshot() Stats {
	s := Stats{
		WarpCalls:       rt.warpCalls.Load(),
		WarpSuppressed:  rt.warpSuppressed.Load(),
		StateUpdates:    rt.stateUpdates.Load(),
		ActiveIntervals: rt.activeIntervals.Load(),
	}
	for _, st := range rt.states {
		if st != nil && st.NumParts() > s.MaxPartitions {
			s.MaxPartitions = st.NumParts()
		}
	}
	return s
}

// Init implements engine.Program: allocate the state and run the user init,
// then overlay the incremental seed when one exists for this vertex.
func (rt *runtime) Init(ctx *engine.Context) {
	i := ctx.Vertex()
	v := rt.g.VertexAt(i)
	rt.states[i] = NewPartitionedState(v.Lifespan, nil)
	vc := VertexCtx{rt: rt, eng: ctx, idx: i, v: v, inInit: true}
	rt.prog.Init(&vc)
	if seed := rt.seedFor(i); seed != nil {
		if err := overlaySeed(rt.states[i], seed); err != nil {
			rt.fail(err)
		}
	}
}

func (rt *runtime) seedFor(i int) *PartitionedState {
	if i < len(rt.opts.SeedStates) {
		return rt.opts.SeedStates[i]
	}
	return nil
}

// overlaySeed writes a captured terminal state over a freshly initialized
// one. Partitions are clipped to the (possibly different) lifespan, and the
// final partition's value is extended across any lifespan growth: seedable
// programs fold messages of the form [t, lifespan end), so the value in
// force at the old cut is exactly what a full run over the longer lifespan
// would have carried forward until a later message improved it.
func overlaySeed(st *PartitionedState, seed *PartitionedState) error {
	life := st.Lifespan()
	var last warp.IntervalValue
	have := false
	for _, p := range seed.Parts() {
		x := p.Interval.Intersect(life)
		if x.IsEmpty() {
			continue
		}
		if err := st.Set(x, p.Value); err != nil {
			return err
		}
		last, have = warp.IntervalValue{Interval: x, Value: p.Value}, true
	}
	if have && last.Interval.End < life.End {
		if err := st.Set(ival.New(last.Interval.End, life.End), last.Value); err != nil {
			return err
		}
	}
	return nil
}

// Run implements engine.Program: one superstep for one active vertex. The
// worker's workspace supplies every buffer the superstep needs, so the
// steady-state align → compute → scatter path performs no allocation.
func (rt *runtime) Run(ctx *engine.Context, msgs []engine.Message) {
	i := ctx.Vertex()
	st := rt.states[i]
	ws := rt.workspace(ctx)
	vc := &ws.vc
	*vc = VertexCtx{rt: rt, eng: ctx, idx: i, v: rt.g.VertexAt(i), updated: vc.updated[:0]}

	if ctx.Superstep() == 1 && rt.seedFor(i) != nil {
		// Seeded vertices replace the cold superstep-1 compute with a full
		// re-scatter of their captured state: every terminal partition of a
		// seedable program started life as a state update, so scattering
		// each partition over its own interval regenerates exactly the
		// frontier messages the prior run sent — messages into already-
		// converged regions fold to no-ops, messages past the old cut
		// propagate the extension.
		if len(rt.targets[i]) == 0 {
			return
		}
		rt.activeIntervals.Add(int64(st.NumParts()))
		for _, p := range st.Parts() {
			rt.scatterPart(vc, ctx, rt.targets[i], p.Interval, p.Value)
		}
		return
	}

	tuples := rt.align(ws, st, msgs, ctx.Superstep())
	if len(tuples) == 0 {
		return
	}
	rt.activeIntervals.Add(int64(len(tuples)))
	if rt.traced {
		var merged int64
		for _, tu := range tuples {
			if len(tu.Msgs) >= 2 {
				merged++
			}
		}
		if merged != 0 {
			rt.mergedGroups.Add(merged)
		}
	}

	// Compute step: one user call per warp tuple.
	for _, tu := range tuples {
		vc.allowed = tu.Interval
		vc.inCompute = true
		rt.prog.Compute(vc, tu.Interval, tu.State, tu.Msgs)
		vc.inCompute = false
		ctx.AddComputeCalls(1)
		if rt.opts.CheckInvariants {
			if err := st.Invariant(); err != nil {
				rt.fail(err)
			}
		}
	}
	if len(vc.updated) == 0 {
		return
	}

	// Scatter step: align updated state partitions with the traversed
	// edges' property partitions; one scatter call per non-empty
	// intersection.
	if len(rt.targets[i]) == 0 {
		return
	}
	upds := coalesceIntervals(vc.updated)
	for _, p := range st.Parts() {
		for _, u := range upds {
			if x := u.Intersect(p.Interval); !x.IsEmpty() {
				rt.scatterPart(vc, ctx, rt.targets[i], x, p.Value)
			}
		}
	}
}

// align produces the compute tuples for one vertex and superstep: the
// pre-compute time-warp of Sec. IV-B, its suppressed and disabled fallbacks,
// and the whole-lifespan activation paths. The result lives in the worker's
// workspace and is valid only until the worker's next vertex.
func (rt *runtime) align(ws *workspace, st *PartitionedState, msgs []engine.Message, superstep int) []warp.Tuple {
	tuples := ws.tuples[:0]
	if superstep == 1 || (rt.opts.ActivateAll && len(msgs) == 0) {
		// Superstep 1 runs compute on every vertex for its entire lifespan
		// with no messages (Sec. IV-A); forced-active vertices without
		// messages behave the same way in later supersteps.
		for _, p := range st.Parts() {
			tuples = append(tuples, warp.Tuple{Interval: p.Interval, State: p.Value})
		}
		ws.tuples = tuples
		return tuples
	}
	// Clip message intervals to the vertex lifespan up front: warp would do
	// it anyway, and the suppression heuristic must see the effective
	// intervals — a [t, ∞) path message hitting a vertex that lives for one
	// time-point is a unit message in every sense.
	life := st.Lifespan()
	inner := ws.inner[:0]
	for _, m := range msgs {
		if x := m.When.Intersect(life); !x.IsEmpty() {
			inner = append(inner, warp.IntervalValue{Interval: x, Value: m.Value})
		}
	}
	ws.inner = inner
	if rt.traced && len(inner) > 0 {
		var unit int64
		for _, iv := range inner {
			if iv.Interval.IsUnit() {
				unit++
			}
		}
		rt.msgsIn.Add(int64(len(inner)))
		rt.unitMsgsIn.Add(unit)
	}
	switch {
	case rt.opts.DisableWarp:
		tuples = rt.pointGroups(ws, tuples, st, inner)
	case !rt.opts.DisableSuppression && warp.UnitFraction(inner) > rt.threshold:
		rt.warpSuppressed.Add(1)
		tuples = rt.pointGroups(ws, tuples, st, inner)
	case rt.combine != nil:
		rt.warpCalls.Add(1)
		tuples = ws.scratch.WarpCombined(tuples, st.Parts(), inner, rt.combine)
	default:
		rt.warpCalls.Add(1)
		tuples = ws.scratch.Warp(tuples, st.Parts(), inner)
	}
	if rt.opts.ActivateAll {
		// Forced-active vertices compute over their whole lifespan: append
		// empty-group tuples for the sub-intervals no message covered.
		// (Superstep 1 and the no-message case returned above.)
		tuples = fillGaps(tuples, st.Parts())
	}
	ws.tuples = tuples
	return tuples
}

// pointGroups is the suppressed execution path, with the inline combiner
// applied when available; it appends into dst with the workspace scratch.
func (rt *runtime) pointGroups(ws *workspace, dst []warp.Tuple, st *PartitionedState, inner []warp.IntervalValue) []warp.Tuple {
	if rt.combine != nil {
		return ws.scratch.PointGroupsCombined(dst, st.Parts(), inner, rt.combine)
	}
	return ws.scratch.PointGroups(dst, st.Parts(), inner)
}

// coalesceIntervals sorts and merges overlapping or adjacent intervals in
// place; update lists are tiny, so an insertion sort suffices.
func coalesceIntervals(ivs []ival.Interval) []ival.Interval {
	for i := 1; i < len(ivs); i++ {
		for j := i; j > 0 && ivs[j].Start < ivs[j-1].Start; j-- {
			ivs[j], ivs[j-1] = ivs[j-1], ivs[j]
		}
	}
	out := ivs[:0]
	for _, iv := range ivs {
		if n := len(out); n > 0 && out[n-1].End >= iv.Start {
			if iv.End > out[n-1].End {
				out[n-1].End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// scatterPart invokes Scatter for one updated 〈interval, state〉 against
// every overlapping edge property piece.
func (rt *runtime) scatterPart(vc *VertexCtx, ctx *engine.Context, targets []target, upd ival.Interval, state any) {
	for _, tg := range targets {
		e := rt.g.Edge(int(tg.edge))
		for pi, piece := range rt.edgeParts[tg.edge] {
			x := rt.edgeMatch[tg.edge][pi].Intersect(upd)
			if x.IsEmpty() {
				continue
			}
			vc.piece = piece
			vc.scatterX = x
			vc.scatterTo = int(tg.dst)
			vc.inScatter = true
			ctx.AddScatterCalls(1)
			for _, om := range rt.prog.Scatter(vc, e, x, state) {
				when := om.When
				if when == (ival.Interval{}) {
					when = x
				}
				if when.IsEmpty() {
					continue
				}
				ctx.Send(int(tg.dst), when, om.Value)
			}
			vc.inScatter = false
		}
	}
}
