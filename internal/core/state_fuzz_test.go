package core

import (
	"reflect"
	"testing"

	ival "graphite/internal/interval"
	"graphite/internal/warp"
)

// FuzzStateSet drives PartitionedState.Set with a fuzzer-chosen lifespan and
// op sequence against a point-wise model, checking after every op that the
// partition invariant holds, fusion is maximal, out-of-range updates fail
// without mutating the state, and the swap-buffer repartitioning (parts and
// spare ping-pong since the zero-allocation rework) never corrupts values.
func FuzzStateSet(f *testing.F) {
	f.Add([]byte{4, 10, 0, 0, 2, 1, 3, 4, 2, 1, 15, 3})
	f.Add([]byte{0, 200, 2, 3, 1, 9, 15, 4})
	f.Add([]byte{7, 1, 7, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		i := 0
		next := func() byte {
			if i >= len(data) {
				return 0
			}
			b := data[i]
			i++
			return b
		}

		base := ival.Time(next() % 8)
		span := ival.Time(1 + next()%24)
		life := ival.New(base, base+span)
		if next()%8 == 0 {
			life = ival.From(base)
		}
		s := NewPartitionedState(life, int64(-1))

		// The point-wise model: sample points cover every finite boundary the
		// ops can produce, plus a far point for unbounded lifespans.
		var samples []ival.Time
		for p := ival.Time(0); p < base+span+8; p++ {
			samples = append(samples, p)
		}
		samples = append(samples, ival.Infinity-1)
		model := map[ival.Time]int64{}
		for _, p := range samples {
			if life.Contains(p) {
				model[p] = -1
			}
		}

		for op := 0; op < 12; op++ {
			start := ival.Time(next() % 40)
			var iv ival.Interval
			if b := next(); b%16 == 15 {
				iv = ival.From(start)
			} else {
				iv = ival.New(start, start+ival.Time(b%6)) // width 0 = empty
			}
			val := int64(next() % 5)

			before := append([]warp.IntervalValue(nil), s.Parts()...)
			err := s.Set(iv, val)
			if iv.IsEmpty() || !life.ContainsInterval(iv) {
				if err == nil {
					t.Fatalf("op %d: Set(%v) inside lifespan %v must fail", op, iv, life)
				}
				if !reflect.DeepEqual(before, s.Parts()) {
					t.Fatalf("op %d: failed Set(%v) mutated the state: %v -> %v", op, iv, before, s.Parts())
				}
				continue
			}
			if err != nil {
				t.Fatalf("op %d: Set(%v, %d) in lifespan %v: %v", op, iv, val, life, err)
			}
			for _, p := range samples {
				if iv.Contains(p) && life.Contains(p) {
					model[p] = val
				}
			}

			if err := s.Invariant(); err != nil {
				t.Fatalf("op %d: after Set(%v, %d): %v", op, iv, val, err)
			}
			parts := s.Parts()
			for k := 1; k < len(parts); k++ {
				if parts[k-1].Interval.Meets(parts[k].Interval) &&
					warp.ValueEqual(parts[k-1].Value, parts[k].Value) {
					t.Fatalf("op %d: unfused equal partitions %v and %v", op, parts[k-1], parts[k])
				}
			}
			for _, p := range samples {
				got, ok := s.Get(p)
				want, inLife := model[p]
				if ok != inLife {
					t.Fatalf("op %d: Get(%d) ok=%v, want %v (lifespan %v)", op, p, ok, inLife, life)
				}
				if ok && got.(int64) != want {
					t.Fatalf("op %d: Get(%d) = %v, model %d\nparts: %v", op, p, got, want, parts)
				}
			}
		}
	})
}
