package core

import (
	"context"
	"errors"

	"graphite/internal/codec"
	"graphite/internal/engine"
	ival "graphite/internal/interval"
	"graphite/internal/obs"
	"graphite/internal/tgraph"
)

// Program is the user-facing interval-centric contract (Sec. IV-A3).
//
// Init runs once per vertex before superstep 1 and must set the initial
// state for the vertex's entire lifespan. Compute runs once per time-warp
// tuple — an active sub-interval of the vertex, the prior state value for
// exactly that sub-interval, and the messages grouped onto it — and may
// update state for sub-intervals of t via VertexCtx.SetState. Scatter runs
// once per overlapping sub-interval of an updated state and an out-edge
// property partition, and returns the messages to send to the edge's
// destination (nil payloads are allowed; a nil slice sends nothing).
type Program interface {
	Init(v *VertexCtx)
	Compute(v *VertexCtx, t ival.Interval, state any, msgs []any)
	Scatter(v *VertexCtx, e *tgraph.Edge, t ival.Interval, state any) []OutMsg
}

// WarpCombiner is an optional Program extension (Sec. VI "Inline Warp
// Combiner"): when implemented, message groups are folded during the warp
// sweep and Compute receives a single combined message per tuple. The fold
// must be commutative and associative.
type WarpCombiner interface {
	CombineWarp(a, b any) any
}

// OutMsg is a message produced by Scatter. A zero When inherits the scatter
// sub-interval, matching the paper's default τm = τ'k.
type OutMsg struct {
	When  ival.Interval
	Value any
}

// DefaultSuppressionThreshold is the unit-length message fraction above
// which warp is bypassed (Sec. VI "Warp Suppression").
const DefaultSuppressionThreshold = 0.70

// Options configures an ICM run.
type Options struct {
	// NumWorkers is the BSP worker ("machine") count; 0 means GOMAXPROCS.
	NumWorkers int
	// MaxSupersteps bounds the run (e.g. PageRank's fixed iteration count).
	MaxSupersteps int
	// ActivateAll keeps all vertices active every superstep; Compute is
	// then also invoked on message-less vertices once per partition with an
	// empty group.
	ActivateAll bool
	// Steal enables the engine's chunked work-stealing compute scheduler:
	// idle workers execute frontier chunks for overloaded peers. Results are
	// byte-identical with stealing on or off (engine.Config.Steal).
	Steal bool
	// StealChunk is the frontier slots per stealable chunk; zero means
	// engine.DefaultStealChunk.
	StealChunk int
	// Partitioner overrides the engine's vertex→worker assignment; nil means
	// index-modulo hashing. See engine.PartitionBalanced for a skew-aware
	// static assignment built from tgraph.Graph.WorkWeights.
	Partitioner func(vertex, numWorkers int) int
	// Reverse scatters along in-edges instead of out-edges (Latest
	// Departure traverses sink-to-source in space and time).
	Reverse bool
	// Undirected scatters along both out- and in-edges, sending to the far
	// endpoint (connectivity algorithms treat edges as undirected).
	Undirected bool
	// ScatterSlackLabel names an edge property whose value widens the
	// scatter trigger: a state update matches an edge piece when it
	// intersects the piece translated forward by the property's value.
	// Reverse-traversal algorithms set this to the travel-time label — an
	// update over *arrival* times must trigger scatter on the *departure*
	// windows that can produce those arrivals.
	ScatterSlackLabel string
	// PropLabels are the edge property labels whose value boundaries
	// partition scatter intervals. Empty means all labels on each edge.
	PropLabels []string
	// DisableWarp bypasses the warp operator unconditionally, degenerating
	// to time-point-centric execution (used by the Fig. 6(c) ablation).
	DisableWarp bool
	// DisableSuppression turns automatic warp suppression off.
	DisableSuppression bool
	// SuppressionThreshold overrides DefaultSuppressionThreshold when > 0.
	SuppressionThreshold float64
	// DisableWarpCombiner ignores the program's WarpCombiner (Fig. 6(b)).
	DisableWarpCombiner bool
	// ReceiverCombine additionally applies the warp combiner at message
	// delivery for identical intervals (the paper couples both).
	ReceiverCombine bool
	// PayloadCodec and VerifyCodec are passed to the engine for byte
	// accounting and wire round-trips.
	PayloadCodec codec.Payload
	VerifyCodec  bool
	// Transport routes every cross-worker batch through a real transport
	// (e.g. engine.NewTCPTransport's loopback mesh); requires PayloadCodec.
	Transport engine.Transport
	// Aggregators are registered with the engine before the run.
	Aggregators map[string]*engine.Aggregator
	// Master is the optional master-compute hook (phased algorithms).
	Master engine.Master
	// CheckInvariants re-verifies the partitioned-state invariant after
	// every compute call (tests and debugging).
	CheckInvariants bool
	// CheckpointEvery enables superstep checkpointing in the engine: every
	// k-th superstep the vertex states, inboxes, active flags and merged
	// aggregates are snapshotted, and a failed superstep (user-program
	// panic, codec failure, transport error) rolls back and replays instead
	// of aborting (engine.Config.CheckpointEvery).
	CheckpointEvery int
	// MaxRecoveries bounds rollback-and-replay attempts; zero means the
	// engine default.
	MaxRecoveries int
	// SendRetries bounds per-batch transport send retries; zero means the
	// engine default, negative disables retries.
	SendRetries int
	// WrapProgram, when set, wraps the engine-level program before the run.
	// This is the fault-injection seam internal/chaos uses to schedule
	// panics inside an otherwise unmodified ICM run.
	WrapProgram func(engine.Program) engine.Program
	// Context, when set, makes the run cancellable: cancellation is observed
	// at superstep barriers and surfaces as an error wrapping
	// engine.ErrCanceled (engine.Config.Context). The serving layer uses this
	// to abort timed-out or disconnected requests mid-run.
	Context context.Context
	// Tracer, when set, receives the engine's per-superstep event stream
	// augmented with the ICM layer's warp statistics (a WarpStats event per
	// superstep, emitted just before superstep_end).
	Tracer obs.Tracer
	// Registry, when set, is handed to the engine for its counters and also
	// receives the run's ICM stats (warp calls, suppression, state updates).
	Registry *obs.Registry
	// Span, when set, is the run-scoped span ID stamped on the trace's
	// run_start (engine.Config.Span): the serve layer and the cluster
	// protocol propagate it so one query correlates across processes.
	Span string
	// SeedStates starts the run from captured terminal state instead of a
	// cold start — the incremental-recomputation hook. Entry i aligns with
	// dense vertex index i of the run's graph; a non-nil entry is overlaid
	// onto that vertex's state after Init (clipped to the vertex lifespan,
	// with the final partition's value extended over any lifespan growth),
	// and at superstep 1 the vertex skips Compute and re-scatters its
	// entire seeded state, regenerating the messages a full run would have
	// produced from those partitions. Nil entries (and nil slices) run the
	// normal cold path.
	//
	// Only programs whose state is a confluent monotone fold of
	// forward-in-time messages — each update covering [t, lifespan end) so
	// terminal partition starts coincide with update starts — replay
	// bit-identically from a seed; see algorithms.SupportsIncremental.
	SeedStates []*PartitionedState
}

// Stats counts ICM-specific runtime events.
type Stats struct {
	WarpCalls       int64 // warp invocations over message groups
	WarpSuppressed  int64 // vertices×supersteps that took the point path
	StateUpdates    int64 // SetState calls
	MaxPartitions   int   // largest partition count seen on any vertex
	ActiveIntervals int64 // total warp tuples (active vertex intervals)
}

// Result is the outcome of an ICM run.
type Result struct {
	Graph   *tgraph.Graph
	Metrics *engine.Metrics
	Stats   Stats
	states  []*PartitionedState
}

// State returns the final partitioned state of the vertex at dense index i.
func (r *Result) State(i int) *PartitionedState { return r.states[i] }

// StateByID returns the final state of a vertex by id, or nil if absent.
func (r *Result) StateByID(id tgraph.VertexID) *PartitionedState {
	i := r.Graph.IndexOf(id)
	if i < 0 {
		return nil
	}
	return r.states[i]
}

// SeedFromResult builds the Options.SeedStates slice for running over g by
// carrying each vertex's terminal state out of a prior run, matched by
// vertex ID; vertices g has that the prior run lacked stay unseeded (nil).
// The prior run's graph must agree with g below its own time cut — the
// serve layer guarantees this by only seeding window extensions of the
// same epoch-stable graph.
func SeedFromResult(g *tgraph.Graph, prior *Result) []*PartitionedState {
	seeds := make([]*PartitionedState, g.NumVertices())
	for i := 0; i < g.NumVertices(); i++ {
		seeds[i] = prior.StateByID(g.VertexAt(i).ID)
	}
	return seeds
}

// Run executes an ICM program over a temporal graph.
func Run(g *tgraph.Graph, prog Program, opts Options) (*Result, error) {
	if g.NumVertices() == 0 {
		return nil, errors.New("core: empty graph")
	}
	rt := newRuntime(g, prog, opts)
	cfg := engine.Config{
		NumWorkers:      opts.NumWorkers,
		MaxSupersteps:   opts.MaxSupersteps,
		ActivateAll:     opts.ActivateAll,
		Steal:           opts.Steal,
		StealChunk:      opts.StealChunk,
		Partitioner:     opts.Partitioner,
		PayloadCodec:    opts.PayloadCodec,
		VerifyCodec:     opts.VerifyCodec,
		Transport:       opts.Transport,
		Master:          opts.Master,
		CheckpointEvery: opts.CheckpointEvery,
		MaxRecoveries:   opts.MaxRecoveries,
		SendRetries:     opts.SendRetries,
		Registry:        opts.Registry,
		Context:         opts.Context,
		Span:            opts.Span,
	}
	if opts.Tracer != nil {
		rt.traced = true
		cfg.Tracer = &icmTracer{rt: rt, next: opts.Tracer}
	}
	if opts.ReceiverCombine && rt.combine != nil {
		cfg.Combiner = engine.CombinerFunc(rt.combine)
	}
	var eprog engine.Program = rt
	if opts.WrapProgram != nil {
		eprog = opts.WrapProgram(rt)
	}
	eng, err := engine.New(g.NumVertices(), eprog, cfg)
	if err != nil {
		return nil, err
	}
	for name, agg := range opts.Aggregators {
		eng.RegisterAggregator(name, agg)
	}
	m, err := eng.Run()
	if err != nil {
		return nil, err
	}
	if rt.err != nil {
		return nil, rt.err
	}
	s := rt.statsSnapshot()
	if opts.Registry != nil {
		publishStats(opts.Registry, s)
	}
	return &Result{Graph: g, Metrics: m, Stats: s, states: rt.states}, nil
}
