package core

import "graphite/internal/obs"

// warpTotals are the runtime's cumulative warp counters; the tracer diffs
// consecutive barrier snapshots to get per-superstep deltas.
type warpTotals struct {
	warpCalls  int64
	suppressed int64
	tuples     int64
	merged     int64
	msgsIn     int64
	unitMsgsIn int64
}

func (rt *runtime) warpTotals() warpTotals {
	return warpTotals{
		warpCalls:  rt.warpCalls.Load(),
		suppressed: rt.warpSuppressed.Load(),
		tuples:     rt.activeIntervals.Load(),
		merged:     rt.mergedGroups.Load(),
		msgsIn:     rt.msgsIn.Load(),
		unitMsgsIn: rt.unitMsgsIn.Load(),
	}
}

func (a warpTotals) sub(b warpTotals) warpTotals {
	return warpTotals{
		warpCalls:  a.warpCalls - b.warpCalls,
		suppressed: a.suppressed - b.suppressed,
		tuples:     a.tuples - b.tuples,
		merged:     a.merged - b.merged,
		msgsIn:     a.msgsIn - b.msgsIn,
		unitMsgsIn: a.unitMsgsIn - b.unitMsgsIn,
	}
}

// icmTracer interposes on the engine's event stream to add the ICM layer's
// per-superstep warp statistics: at each superstep_end it diffs the runtime
// counters against the previous barrier and emits a WarpStats event before
// forwarding. The `last` snapshot is only touched on barrier-serial events
// (superstep_end, recovery), so no locking is needed even though concurrent
// send_retry events pass through.
type icmTracer struct {
	rt   *runtime
	next obs.Tracer
	last warpTotals
}

// Emit implements obs.Tracer.
func (t *icmTracer) Emit(e obs.Event) {
	switch ev := e.(type) {
	case obs.SuperstepEnd:
		cur := t.rt.warpTotals()
		d := cur.sub(t.last)
		t.last = cur
		uf := 0.0
		if d.msgsIn > 0 {
			uf = float64(d.unitMsgsIn) / float64(d.msgsIn)
		}
		t.next.Emit(obs.WarpStats{
			Superstep:    ev.Superstep,
			WarpCalls:    d.warpCalls,
			Suppressed:   d.suppressed,
			Tuples:       d.tuples,
			MergedGroups: d.merged,
			MsgsIn:       d.msgsIn,
			UnitMsgsIn:   d.unitMsgsIn,
			UnitFraction: uf,
		})
		t.next.Emit(e)
	case obs.Recovery:
		t.next.Emit(e)
		// The rollback restored the runtime counters to the checkpoint;
		// re-baseline so the replayed supersteps diff correctly.
		t.last = t.rt.warpTotals()
	default:
		t.next.Emit(e)
	}
}

// publishStats folds a finished run's ICM stats into a shared registry, the
// same way the engine accumulates its counters across runs.
func publishStats(reg *obs.Registry, s Stats) {
	reg.Counter(obs.CWarpCalls).Add(s.WarpCalls)
	reg.Counter(obs.CWarpSuppressed).Add(s.WarpSuppressed)
	reg.Counter(obs.CStateUpdates).Add(s.StateUpdates)
	reg.Counter(obs.CActiveIntervals).Add(s.ActiveIntervals)
	reg.Gauge(obs.GMaxPartitions).Set(int64(s.MaxPartitions))
}
