package core

import (
	"errors"
	"testing"

	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// chain builds a 3-vertex path graph a->b->c alive over [0,10).
func chain(t *testing.T) *tgraph.Graph {
	t.Helper()
	b := tgraph.NewBuilder(3, 2)
	b.AddVertex(0, ival.New(0, 10))
	b.AddVertex(1, ival.New(0, 10))
	b.AddVertex(2, ival.New(0, 10))
	b.AddEdge(0, 0, 1, ival.New(0, 10))
	b.AddEdge(1, 1, 2, ival.New(2, 8))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// floodProgram propagates a token over the overlap intervals.
type floodProgram struct {
	badWrite  bool // write outside the compute interval (failure injection)
	emitEarly bool // call Emit outside scatter (failure injection)
}

func (p *floodProgram) Init(v *VertexCtx) {
	v.SetState(v.Lifespan(), int64(0))
}

func (p *floodProgram) Compute(v *VertexCtx, t ival.Interval, state any, msgs []any) {
	if p.emitEarly {
		v.Emit(t, int64(1))
		return
	}
	if v.Superstep() == 1 {
		if v.ID() == 0 {
			v.SetState(t, int64(1))
		}
		return
	}
	if p.badWrite {
		// Deliberately write outside the active interval.
		v.SetState(v.Lifespan(), int64(1))
		return
	}
	if state.(int64) == 0 && len(msgs) > 0 {
		v.SetState(t, int64(1))
	}
}

func (p *floodProgram) Scatter(v *VertexCtx, e *tgraph.Edge, t ival.Interval, state any) []OutMsg {
	return []OutMsg{{Value: state}}
}

func TestRuntimeFloodInheritsIntervals(t *testing.T) {
	g := chain(t)
	r, err := Run(g, &floodProgram{}, Options{NumWorkers: 2, CheckInvariants: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Vertex 1 receives token over edge 0's lifespan [0,10).
	if v, _ := r.State(1).Get(5); v.(int64) != 1 {
		t.Errorf("vertex 1 not flooded: %v", r.State(1).Parts())
	}
	// Vertex 2 only over edge 1's lifespan [2,8).
	st := r.State(2)
	if v, _ := st.Get(5); v.(int64) != 1 {
		t.Errorf("vertex 2 not flooded at 5: %v", st.Parts())
	}
	if v, _ := st.Get(1); v.(int64) != 0 {
		t.Errorf("vertex 2 flooded outside edge lifespan at 1: %v", st.Parts())
	}
	if v, _ := st.Get(9); v.(int64) != 0 {
		t.Errorf("vertex 2 flooded outside edge lifespan at 9: %v", st.Parts())
	}
}

func TestRuntimeRejectsOutOfIntervalWrites(t *testing.T) {
	g := chain(t)
	_, err := Run(g, &floodProgram{badWrite: true}, Options{NumWorkers: 1})
	if !errors.Is(err, ErrStateOutOfRange) {
		t.Fatalf("want ErrStateOutOfRange, got %v", err)
	}
}

func TestRuntimeRejectsEmitOutsideScatter(t *testing.T) {
	g := chain(t)
	_, err := Run(g, &floodProgram{emitEarly: true}, Options{NumWorkers: 1})
	if err == nil {
		t.Fatalf("Emit outside Scatter must fail the run")
	}
}

func TestRunRejectsEmptyGraph(t *testing.T) {
	b := tgraph.NewBuilder(0, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, &floodProgram{}, Options{}); err == nil {
		t.Fatalf("empty graph must be rejected")
	}
}

// countingProgram records compute tuples per superstep under ActivateAll.
type countingProgram struct {
	tuples map[int]int
}

func (p *countingProgram) Init(v *VertexCtx) { v.SetState(v.Lifespan(), int64(0)) }

func (p *countingProgram) Compute(v *VertexCtx, t ival.Interval, state any, msgs []any) {
	if p.tuples != nil && v.ID() == 2 {
		p.tuples[v.Superstep()]++
	}
	if v.Superstep() == 1 && v.ID() == 0 {
		v.SetState(t, int64(1))
	}
}

func (p *countingProgram) Scatter(v *VertexCtx, e *tgraph.Edge, t ival.Interval, state any) []OutMsg {
	// Send only over a sub-interval, leaving gaps.
	x := t.Intersect(ival.New(3, 5))
	if x.IsEmpty() {
		return nil
	}
	return []OutMsg{{When: x, Value: int64(1)}}
}

func TestActivateAllCoversGaps(t *testing.T) {
	g := chain(t)
	p := &countingProgram{tuples: map[int]int{}}
	_, err := Run(g, p, Options{NumWorkers: 1, ActivateAll: true, MaxSupersteps: 3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Superstep 1: 1 tuple (whole lifespan). Later supersteps: vertex 2 has
	// no messages (vertex 1 never updates) so forced-active coverage gives
	// one tuple per partition per superstep.
	if p.tuples[1] != 1 {
		t.Errorf("superstep 1 tuples = %d, want 1", p.tuples[1])
	}
	if p.tuples[2] == 0 || p.tuples[3] == 0 {
		t.Errorf("forced-active vertex must compute every superstep: %v", p.tuples)
	}
}

func TestEdgePartitionSplitsAtPropertyBounds(t *testing.T) {
	b := tgraph.NewBuilder(2, 1)
	b.AddVertex(0, ival.New(0, 10)).AddVertex(1, ival.New(0, 10))
	b.AddEdge(0, 0, 1, ival.New(0, 10))
	b.SetEdgeProp(0, "w", ival.New(2, 5), 1)
	b.SetEdgeProp(0, "w", ival.New(5, 9), 2)
	g := b.MustBuild()
	parts := edgePartition(g.Edge(0), nil)
	want := []ival.Interval{ival.New(0, 2), ival.New(2, 5), ival.New(5, 9), ival.New(9, 10)}
	if len(parts) != len(want) {
		t.Fatalf("parts = %v, want %v", parts, want)
	}
	for i := range want {
		if parts[i] != want[i] {
			t.Fatalf("parts = %v, want %v", parts, want)
		}
	}
	// Restricting to an absent label keeps the lifespan whole.
	parts = edgePartition(g.Edge(0), []string{"other"})
	if len(parts) != 1 || parts[0] != ival.New(0, 10) {
		t.Fatalf("filtered parts = %v", parts)
	}
}
