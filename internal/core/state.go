// Package core implements the interval-centric computing model (ICM) of
// Sec. IV of the paper: the data-parallel unit is an interval vertex whose
// dynamic state is a temporal partition of its lifespan. User logic is a
// compute function, invoked once per time-warp tuple (an aligned interval,
// the prior state, and the grouped messages), and a scatter function,
// invoked once per overlapping (updated state × out-edge property)
// sub-interval. The time-warp operator (internal/warp) performs the temporal
// alignment and grouping, minimizing user-logic calls and messages.
package core

import (
	"errors"
	"fmt"

	ival "graphite/internal/interval"
	"graphite/internal/warp"
)

// ErrStateOutOfRange is returned when compute updates state outside the
// interval it was invoked for.
var ErrStateOutOfRange = errors.New("core: state update outside the active interval")

// PartitionedState is the dynamic state of an interval vertex: a list of
// 〈interval, value〉 pairs that are sorted, non-overlapping, mutually
// adjacent, and exactly cover the vertex lifespan (Sec. IV-A1). Updating a
// sub-interval dynamically repartitions the state; adjacent partitions with
// equal values are re-fused, which is the valid replication-inverse the
// paper notes ({〈[ts,te),s〉} ≡ {〈[ts,t'),s〉,〈[t',te),s〉}).
type PartitionedState struct {
	lifespan ival.Interval
	parts    []warp.IntervalValue
	// spare is the partition array the last Set retired; the next Set builds
	// into it, so repartitioning ping-pongs between two arrays and stops
	// allocating once both have grown to the working size. Invariant: parts
	// and spare never share backing (Clone resets spare, so checkpointed
	// copies are independent).
	spare []warp.IntervalValue
}

// NewPartitionedState returns a state covering lifespan with a single
// initial partition.
func NewPartitionedState(lifespan ival.Interval, init any) *PartitionedState {
	return &PartitionedState{
		lifespan: lifespan,
		parts:    []warp.IntervalValue{{Interval: lifespan, Value: init}},
	}
}

// Lifespan returns the covered interval.
func (s *PartitionedState) Lifespan() ival.Interval { return s.lifespan }

// Parts returns the current partitions in time order. The slice is owned by
// the state and must not be modified; it is valid only until the next Set,
// which recycles the backing array.
func (s *PartitionedState) Parts() []warp.IntervalValue { return s.parts }

// NumParts returns the number of partitions.
func (s *PartitionedState) NumParts() int { return len(s.parts) }

// Get returns the value at time-point t; ok is false outside the lifespan.
func (s *PartitionedState) Get(t ival.Time) (any, bool) {
	for _, p := range s.parts {
		if p.Interval.Contains(t) {
			return p.Value, true
		}
	}
	return nil, false
}

// Set updates the state for iv to value, splitting and re-fusing partitions
// as needed. iv must lie within the lifespan.
func (s *PartitionedState) Set(iv ival.Interval, value any) error {
	if iv.IsEmpty() {
		return fmt.Errorf("%w: empty interval", ErrStateOutOfRange)
	}
	if !s.lifespan.ContainsInterval(iv) {
		return fmt.Errorf("%w: %v outside lifespan %v", ErrStateOutOfRange, iv, s.lifespan)
	}
	out := s.spare[:0]
	inserted := false
	for _, p := range s.parts {
		x := p.Interval.Intersect(iv)
		if x.IsEmpty() {
			out = append(out, p)
			continue
		}
		if p.Interval.Start < x.Start {
			out = append(out, warp.IntervalValue{Interval: ival.New(p.Interval.Start, x.Start), Value: p.Value})
		}
		if !inserted {
			out = append(out, warp.IntervalValue{Interval: iv, Value: value})
			inserted = true
		}
		if x.End < p.Interval.End {
			out = append(out, warp.IntervalValue{Interval: ival.New(x.End, p.Interval.End), Value: p.Value})
		}
	}
	s.spare = s.parts[:0]
	s.parts = fuse(out)
	return nil
}

// Clone returns a copy of the partition structure for checkpointing. The
// partition values themselves are shared: the ICM contract replaces state
// values via Set and never mutates them in place, so sharing is safe and
// keeps snapshots cheap.
func (s *PartitionedState) Clone() *PartitionedState {
	return &PartitionedState{
		lifespan: s.lifespan,
		parts:    append([]warp.IntervalValue(nil), s.parts...),
	}
}

// fuse merges adjacent partitions holding equal values.
func fuse(parts []warp.IntervalValue) []warp.IntervalValue {
	out := parts[:0]
	for _, p := range parts {
		if n := len(out); n > 0 && out[n-1].Interval.Meets(p.Interval) &&
			warp.ValueEqual(out[n-1].Value, p.Value) {
			out[n-1].Interval.End = p.Interval.End
			continue
		}
		out = append(out, p)
	}
	return out
}

// Invariant verifies the partitioned-state contract: sorted, adjacent,
// non-overlapping partitions exactly covering the lifespan. It is used by
// tests and by the runtime's paranoid mode.
func (s *PartitionedState) Invariant() error {
	if len(s.parts) == 0 {
		return errors.New("core: state has no partitions")
	}
	if s.parts[0].Interval.Start != s.lifespan.Start {
		return fmt.Errorf("core: first partition starts at %d, lifespan at %d",
			s.parts[0].Interval.Start, s.lifespan.Start)
	}
	if s.parts[len(s.parts)-1].Interval.End != s.lifespan.End {
		return fmt.Errorf("core: last partition ends at %d, lifespan at %d",
			s.parts[len(s.parts)-1].Interval.End, s.lifespan.End)
	}
	for i, p := range s.parts {
		if p.Interval.IsEmpty() {
			return fmt.Errorf("core: empty partition %d", i)
		}
		if i > 0 && !s.parts[i-1].Interval.Meets(p.Interval) {
			return fmt.Errorf("core: partitions %d and %d not adjacent: %v, %v",
				i-1, i, s.parts[i-1].Interval, p.Interval)
		}
	}
	return nil
}
