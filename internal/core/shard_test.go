package core_test

// In-process proof of the cluster execution model: driving core.Shards by
// hand through the Compute → Outbound → Deliver → Barrier protocol must
// reproduce a single-process transported run bit for bit (same delivery
// order: own outbox first, then peers ascending), and a durable capture +
// restore into FRESH shards must replay to the identical final state —
// the property the process-kill chaos tests rely on.

import (
	"reflect"
	"testing"

	"graphite/internal/algorithms"
	"graphite/internal/core"
	"graphite/internal/engine"
	"graphite/internal/tgraph"
)

const testShards = 3

func newTestShards(t *testing.T, g *tgraph.Graph, algo string, p algorithms.Params) ([]*core.Shard, core.Options) {
	t.Helper()
	shards := make([]*core.Shard, testShards)
	var opts core.Options
	for i := range shards {
		prog, o, err := algorithms.New(g, algo, p)
		if err != nil {
			t.Fatal(err)
		}
		o.NumWorkers = testShards
		sh, err := core.NewShard(g, prog, o, i)
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = sh
		opts = o
	}
	return shards, opts
}

// driveShards runs the cluster protocol to completion. When captureAt > 0, a
// durable checkpoint of every shard is taken at the barrier after which the
// next superstep would be captureAt (the cluster's "about to execute s" gen
// semantics) and returned.
func driveShards(t *testing.T, shards []*core.Shard, opts core.Options, captureAt int) [][]byte {
	t.Helper()
	n := len(shards)
	if shards[0].Superstep() == 0 {
		for i, s := range shards {
			if err := s.Init(); err != nil {
				t.Fatalf("init shard %d: %v", i, err)
			}
		}
	}
	var ckpts [][]byte
	capture := func() {
		ckpts = make([][]byte, n)
		for i, s := range shards {
			data, err := s.CaptureDurable()
			if err != nil {
				t.Fatalf("capture shard %d: %v", i, err)
			}
			ckpts[i] = data
		}
	}
	for step := shards[0].Superstep(); ; step++ {
		if opts.MaxSupersteps > 0 && step > opts.MaxSupersteps {
			break
		}
		outs := make([][][]byte, n)
		for i, s := range shards {
			if err := s.Compute(); err != nil {
				t.Fatalf("superstep %d shard %d compute: %v", step, i, err)
			}
			var err error
			if outs[i], err = s.Outbound(); err != nil {
				t.Fatalf("superstep %d shard %d outbound: %v", step, i, err)
			}
		}
		for d, s := range shards {
			var batches [][]byte
			for src := 0; src < n; src++ {
				if src != d {
					batches = append(batches, outs[src][d])
				}
			}
			if _, err := s.Deliver(batches); err != nil {
				t.Fatalf("superstep %d shard %d deliver: %v", step, d, err)
			}
		}
		var delivered int64
		active := 0
		for _, s := range shards {
			rep := s.Barrier()
			delivered += rep.Delivered
			active += rep.Active
		}
		if step+1 == captureAt {
			capture()
		}
		if delivered == 0 && active == 0 && !opts.ActivateAll {
			break
		}
	}
	return ckpts
}

func collectResult(t *testing.T, g *tgraph.Graph, shards []*core.Shard, opts core.Options) *core.Result {
	t.Helper()
	blobs := make([][]byte, len(shards))
	for i, s := range shards {
		b, err := s.EncodeOwnedStates()
		if err != nil {
			t.Fatalf("encode shard %d: %v", i, err)
		}
		blobs[i] = b
	}
	r, err := core.AssembleResult(g, opts.PayloadCodec, blobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func compareStates(t *testing.T, g *tgraph.Graph, got, want *core.Result) {
	t.Helper()
	for i := 0; i < g.NumVertices(); i++ {
		gs, ws := got.State(i), want.State(i)
		if (gs == nil) != (ws == nil) {
			t.Fatalf("vertex %d: state presence mismatch", i)
		}
		if gs == nil {
			continue
		}
		if !reflect.DeepEqual(gs.Parts(), ws.Parts()) {
			t.Errorf("vertex %d (%v):\n  cluster: %v\n  direct:  %v",
				i, g.VertexAt(i).ID, gs.Parts(), ws.Parts())
		}
	}
}

// TestShardMatchesTransportedRun drives the cluster protocol over the
// transit graph and compares against core.Run over a loopback TCP mesh with
// the same worker count — the configuration whose delivery order the shard
// protocol mirrors. PageRank makes the comparison float-order-sensitive, so
// passing means the orders genuinely match.
func TestShardMatchesTransportedRun(t *testing.T) {
	g := tgraph.TransitExample()
	for _, tc := range []struct {
		algo string
		p    algorithms.Params
	}{
		{algo: "sssp", p: algorithms.Params{Source: 0}},
		{algo: "eat", p: algorithms.Params{Source: 0}},
		{algo: "pr"},
	} {
		t.Run(tc.algo, func(t *testing.T) {
			shards, opts := newTestShards(t, g, tc.algo, tc.p)
			driveShards(t, shards, opts, 0)
			got := collectResult(t, g, shards, opts)

			prog, ropts, err := algorithms.New(g, tc.algo, tc.p)
			if err != nil {
				t.Fatal(err)
			}
			ropts.NumWorkers = testShards
			tp, err := engine.NewTCPTransport(testShards)
			if err != nil {
				t.Fatal(err)
			}
			defer tp.Close()
			ropts.Transport = tp
			want, err := core.Run(g, prog, ropts)
			if err != nil {
				t.Fatal(err)
			}
			compareStates(t, g, got, want)
		})
	}
}

// TestShardDurableReplay checkpoints mid-run, finishes the run, then builds
// FRESH shards (a replacement process per shard), restores them from the
// checkpoint bytes and replays — final states must be identical.
func TestShardDurableReplay(t *testing.T) {
	g := tgraph.TransitExample()
	for _, tc := range []struct {
		algo string
		p    algorithms.Params
	}{
		{algo: "sssp", p: algorithms.Params{Source: 0}},
		{algo: "pr"},
	} {
		t.Run(tc.algo, func(t *testing.T) {
			shards, opts := newTestShards(t, g, tc.algo, tc.p)
			ckpts := driveShards(t, shards, opts, 3)
			if ckpts == nil {
				t.Fatal("run ended before the capture point; checkpoint superstep too late")
			}
			want := collectResult(t, g, shards, opts)

			replay, _ := newTestShards(t, g, tc.algo, tc.p)
			for i, s := range replay {
				if err := s.Init(); err != nil {
					t.Fatal(err)
				}
				if err := s.RestoreDurable(ckpts[i]); err != nil {
					t.Fatalf("restore shard %d: %v", i, err)
				}
				if got := s.Superstep(); got != 3 {
					t.Fatalf("restored shard %d at superstep %d, want 3", i, got)
				}
			}
			driveShards(t, replay, opts, 0)
			got := collectResult(t, g, replay, opts)
			compareStates(t, g, got, want)
		})
	}
}

// TestShardGating pins the unsupported-option errors.
func TestShardGating(t *testing.T) {
	g := tgraph.TransitExample()
	prog, opts, err := algorithms.New(g, "sssp", algorithms.Params{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewShard(g, prog, opts, 0); err == nil {
		t.Error("implicit NumWorkers accepted")
	}
	bad := opts
	bad.NumWorkers = 2
	bad.ActivateAll = true
	if _, err := core.NewShard(g, prog, bad, 0); err == nil {
		t.Error("ActivateAll without MaxSupersteps accepted")
	}
	bad = opts
	bad.NumWorkers = 2
	if _, err := core.NewShard(g, prog, bad, 2); err == nil {
		t.Error("out-of-range shard accepted")
	}
}
