// Package verify cross-checks every platform's results on a given temporal
// graph against the reference oracles — the paper's Sec. VII-B1 claim ("all
// platforms produce identical results for all the algorithms and graphs")
// packaged as a reusable check. cmd/graphite-verify exposes it on graph
// files; the test suites use it on generated graphs.
package verify

import (
	"fmt"

	"graphite/internal/algorithms"
	"graphite/internal/baseline/chlonos"
	"graphite/internal/baseline/goffish"
	"graphite/internal/baseline/msb"
	"graphite/internal/baseline/tgb"
	"graphite/internal/baseline/valgo"
	ival "graphite/internal/interval"
	"graphite/internal/ref"
	"graphite/internal/tgraph"
)

// Report is the outcome of one cross-platform verification.
type Report struct {
	Checks    int // individual (algorithm, platform, vertex, time) comparisons
	Mismatch  []string
	Algorithm string
}

// ok records a passed comparison; fail records a discrepancy.
func (r *Report) ok() { r.Checks++ }

func (r *Report) fail(format string, args ...any) {
	r.Checks++
	if len(r.Mismatch) < 20 { // keep reports readable
		r.Mismatch = append(r.Mismatch, fmt.Sprintf(format, args...))
	}
}

// Passed reports whether every comparison agreed.
func (r *Report) Passed() bool { return len(r.Mismatch) == 0 }

// Config selects the verification scope.
type Config struct {
	Workers   int
	BatchSize int
	Source    tgraph.VertexID // path algorithms' source (default: first vertex)
	Target    tgraph.VertexID // LD's target (default: last vertex)
	HasTarget bool
	HasSource bool
}

// All verifies every algorithm on every platform that can run it.
func All(g *tgraph.Graph, cfg Config) ([]*Report, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 4
	}
	if !cfg.HasSource {
		cfg.Source = g.VertexAt(0).ID
	}
	if !cfg.HasTarget {
		cfg.Target = g.VertexAt(g.NumVertices() - 1).ID
	}
	var out []*Report
	for _, fn := range []func(*tgraph.Graph, Config) (*Report, error){
		BFS, WCC, SCC, SSSP, EAT, RH, LD,
	} {
		r, err := fn(g, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// BFS verifies ICM, MSB and Chlonos BFS against the per-snapshot oracle.
func BFS(g *tgraph.Graph, cfg Config) (*Report, error) {
	rep := &Report{Algorithm: "BFS"}
	icm, err := algorithms.RunBFS(g, cfg.Source, cfg.Workers)
	if err != nil {
		return nil, err
	}
	mr, err := msb.Run(g, valgo.BFSSpec(int64(cfg.Source)), cfg.Workers)
	if err != nil {
		return nil, err
	}
	cr, err := chlonos.Run(g, valgo.BFSSpec(int64(cfg.Source)), cfg.BatchSize, cfg.Workers)
	if err != nil {
		return nil, err
	}
	for ts := g.Lifespan().Start; ts < g.Horizon(); ts++ {
		want := ref.BFSLevels(g, ts, cfg.Source)
		for v := 0; v < g.NumVertices(); v++ {
			if !g.VertexAt(v).Lifespan.Contains(ts) {
				continue
			}
			iGot := int64(algorithms.Unreachable)
			if x, okv := icm.State(v).Get(ts); okv {
				iGot = x.(int64)
			}
			mGot, _ := mr.State(v, ts).(int64)
			cGot, _ := cr.State(v, ts).(int64)
			if iGot != want[v] || mGot != want[v] || cGot != want[v] {
				rep.fail("BFS v=%d t=%d: icm=%d msb=%d chl=%d oracle=%d", v, ts, iGot, mGot, cGot, want[v])
				continue
			}
			rep.ok()
		}
	}
	return rep, nil
}

// WCC verifies the three TI platforms' component labels.
func WCC(g *tgraph.Graph, cfg Config) (*Report, error) {
	rep := &Report{Algorithm: "WCC"}
	icm, err := algorithms.RunWCC(g, cfg.Workers)
	if err != nil {
		return nil, err
	}
	mr, err := msb.Run(g, valgo.WCCSpec(), cfg.Workers)
	if err != nil {
		return nil, err
	}
	cr, err := chlonos.Run(g, valgo.WCCSpec(), cfg.BatchSize, cfg.Workers)
	if err != nil {
		return nil, err
	}
	for ts := g.Lifespan().Start; ts < g.Horizon(); ts++ {
		want := ref.WCCLabels(g, ts)
		for v := 0; v < g.NumVertices(); v++ {
			if !g.VertexAt(v).Lifespan.Contains(ts) {
				continue
			}
			var iGot int64
			if x, okv := icm.State(v).Get(ts); okv {
				iGot = x.(int64)
			}
			mGot, _ := mr.State(v, ts).(int64)
			cGot, _ := cr.State(v, ts).(int64)
			if iGot != want[v] || mGot != want[v] || cGot != want[v] {
				rep.fail("WCC v=%d t=%d: icm=%d msb=%d chl=%d oracle=%d", v, ts, iGot, mGot, cGot, want[v])
				continue
			}
			rep.ok()
		}
	}
	return rep, nil
}

// SCC verifies the three TI platforms' strongly-connected components.
func SCC(g *tgraph.Graph, cfg Config) (*Report, error) {
	rep := &Report{Algorithm: "SCC"}
	icm, err := algorithms.RunSCC(g, cfg.Workers)
	if err != nil {
		return nil, err
	}
	mr, err := msb.Run(g, valgo.SCCSpec(), cfg.Workers)
	if err != nil {
		return nil, err
	}
	cr, err := chlonos.Run(g, valgo.SCCSpec(), cfg.BatchSize, cfg.Workers)
	if err != nil {
		return nil, err
	}
	for ts := g.Lifespan().Start; ts < g.Horizon(); ts++ {
		want := ref.SCCLabels(g, ts)
		for v := 0; v < g.NumVertices(); v++ {
			if !g.VertexAt(v).Lifespan.Contains(ts) {
				continue
			}
			iGot := int64(-1)
			for _, l := range algorithms.SCCLabels(icm, g.VertexAt(v).ID) {
				if l.Interval.Contains(ts) {
					iGot = l.Value
				}
			}
			mGot := valgo.SCCLabel(mr.State(v, ts))
			cGot := valgo.SCCLabel(cr.State(v, ts))
			if iGot != want[v] || mGot != want[v] || cGot != want[v] {
				rep.fail("SCC v=%d t=%d: icm=%d msb=%d chl=%d oracle=%d", v, ts, iGot, mGot, cGot, want[v])
				continue
			}
			rep.ok()
		}
	}
	return rep, nil
}

// SSSP verifies ICM, TGB and GoFFish against the time-expanded oracle.
func SSSP(g *tgraph.Graph, cfg Config) (*Report, error) {
	rep := &Report{Algorithm: "SSSP"}
	icm, err := algorithms.RunSSSP(g, cfg.Source, 0, cfg.Workers)
	if err != nil {
		return nil, err
	}
	tr, err := tgb.RunSSSP(g, cfg.Source, 0, cfg.Workers)
	if err != nil {
		return nil, err
	}
	gr, err := goffish.RunForward(g, goffish.NewSSSP(cfg.Source, 0), cfg.Workers)
	if err != nil {
		return nil, err
	}
	d := ref.SSSP(g, cfg.Source, 0)
	for v := 0; v < g.NumVertices(); v++ {
		want := int64(ref.Unreachable)
		for ts := ival.Time(0); ts < d.Tmax; ts++ {
			if d.Cost[v][ts] < want {
				want = d.Cost[v][ts]
			}
		}
		iGot := algorithms.MinInt64State(icm.State(v), algorithms.Unreachable)
		tGot := tr.MinCost(v)
		gGot := goffish.BestCost(gr, v)
		if iGot != want || tGot != want || gGot != want {
			rep.fail("SSSP v=%d: icm=%d tgb=%d gof=%d oracle=%d", v, iGot, tGot, gGot, want)
			continue
		}
		rep.ok()
	}
	return rep, nil
}

// EAT verifies earliest arrival times across the TD platforms.
func EAT(g *tgraph.Graph, cfg Config) (*Report, error) {
	rep := &Report{Algorithm: "EAT"}
	icm, err := algorithms.RunEAT(g, cfg.Source, 0, cfg.Workers)
	if err != nil {
		return nil, err
	}
	tr, err := tgb.RunEAT(g, cfg.Source, 0, cfg.Workers)
	if err != nil {
		return nil, err
	}
	gr, err := goffish.RunForward(g, goffish.NewEAT(cfg.Source, 0), cfg.Workers)
	if err != nil {
		return nil, err
	}
	want := ref.EAT(g, cfg.Source, 0)
	for v := 0; v < g.NumVertices(); v++ {
		id := g.VertexAt(v).ID
		iGot := algorithms.EarliestArrival(icm, id)
		tGot := tr.EarliestReached(v)
		gGot := goffish.BestCost(gr, v)
		if iGot != want[v] || tGot != want[v] || gGot != want[v] {
			rep.fail("EAT v=%d: icm=%d tgb=%d gof=%d oracle=%d", v, iGot, tGot, gGot, want[v])
			continue
		}
		rep.ok()
	}
	return rep, nil
}

// RH verifies reachability across the TD platforms.
func RH(g *tgraph.Graph, cfg Config) (*Report, error) {
	rep := &Report{Algorithm: "RH"}
	icm, err := algorithms.RunRH(g, cfg.Source, 0, cfg.Workers)
	if err != nil {
		return nil, err
	}
	tr, err := tgb.RunRH(g, cfg.Source, 0, cfg.Workers)
	if err != nil {
		return nil, err
	}
	gr, err := goffish.RunForward(g, goffish.NewRH(cfg.Source, 0), cfg.Workers)
	if err != nil {
		return nil, err
	}
	want := ref.Reachable(g, cfg.Source, 0)
	for v := 0; v < g.NumVertices(); v++ {
		iGot := algorithms.Reachable(icm, g.VertexAt(v).ID)
		tGot := tr.EarliestReached(v) != tgb.Unreachable
		gGot := goffish.BestCost(gr, v) == 1
		if iGot != want[v] || tGot != want[v] || gGot != want[v] {
			rep.fail("RH v=%d: icm=%v tgb=%v gof=%v oracle=%v", v, iGot, tGot, gGot, want[v])
			continue
		}
		rep.ok()
	}
	return rep, nil
}

// LD verifies latest departures across the TD platforms.
func LD(g *tgraph.Graph, cfg Config) (*Report, error) {
	rep := &Report{Algorithm: "LD"}
	deadline := g.Horizon()
	icm, err := algorithms.RunLD(g, cfg.Target, deadline, cfg.Workers)
	if err != nil {
		return nil, err
	}
	tr, err := tgb.RunLD(g, cfg.Target, deadline, cfg.Workers)
	if err != nil {
		return nil, err
	}
	gr, err := goffish.RunLD(g, cfg.Target, deadline, cfg.Workers)
	if err != nil {
		return nil, err
	}
	want := ref.LatestDeparture(g, cfg.Target, deadline)
	for v := 0; v < g.NumVertices(); v++ {
		iGot := algorithms.LatestDeparture(icm, g.VertexAt(v).ID)
		tGot := tr.LatestReached(v)
		gGot := gr.States[v].(int64)
		if iGot != want[v] || tGot != want[v] || gGot != want[v] {
			rep.fail("LD v=%d: icm=%d tgb=%d gof=%d oracle=%d", v, iGot, tGot, gGot, want[v])
			continue
		}
		rep.ok()
	}
	return rep, nil
}
