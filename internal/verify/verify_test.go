package verify

import (
	"testing"

	"graphite/internal/gen"
	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

func TestAllPlatformsAgree(t *testing.T) {
	for _, life := range []gen.LifespanDist{gen.UnitLife, gen.LongLife, gen.MixedLife} {
		g, err := gen.Generate(gen.Tiny("verify", 36, 4, 8, life), 9)
		if err != nil {
			t.Fatal(err)
		}
		reports, err := All(g, Config{Workers: 3})
		if err != nil {
			t.Fatalf("All: %v", err)
		}
		if len(reports) != 7 {
			t.Fatalf("want 7 reports, got %d", len(reports))
		}
		for _, r := range reports {
			if !r.Passed() {
				t.Errorf("life=%v %s: %v", life, r.Algorithm, r.Mismatch)
			}
			if r.Checks == 0 {
				t.Errorf("life=%v %s: no comparisons ran", life, r.Algorithm)
			}
		}
	}
}

func TestReportCapsMismatches(t *testing.T) {
	r := &Report{Algorithm: "X"}
	for i := 0; i < 50; i++ {
		r.fail("boom %d", i)
	}
	if len(r.Mismatch) != 20 {
		t.Errorf("mismatch list should cap at 20, got %d", len(r.Mismatch))
	}
	if r.Passed() {
		t.Errorf("failed report must not pass")
	}
	if r.Checks != 50 {
		t.Errorf("checks = %d, want 50", r.Checks)
	}
}

func TestExplicitEndpoints(t *testing.T) {
	b := tgraph.NewBuilder(3, 2)
	life := ival.New(0, 6)
	for v := tgraph.VertexID(10); v < 13; v++ {
		b.AddVertex(v, life)
	}
	b.AddEdge(0, 10, 11, life)
	b.SetEdgeProp(0, tgraph.PropTravelTime, life, 1)
	b.SetEdgeProp(0, tgraph.PropTravelCost, life, 2)
	b.AddEdge(1, 11, 12, life)
	b.SetEdgeProp(1, tgraph.PropTravelTime, life, 1)
	b.SetEdgeProp(1, tgraph.PropTravelCost, life, 2)
	g := b.MustBuild()
	reports, err := All(g, Config{Workers: 2, Source: 10, HasSource: true, Target: 12, HasTarget: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if !r.Passed() {
			t.Errorf("%s: %v", r.Algorithm, r.Mismatch)
		}
	}
}
