package live

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"syscall"

	ival "graphite/internal/interval"
	"graphite/internal/stream"
	"graphite/internal/tgraph"
)

// The write-ahead log is an append-only file:
//
//	"GWAL" 0x01 | record | record | ...
//	record = u32 length | payload | u32 crc32(payload)
//
// (lengths and CRCs little-endian, matching engine.CheckpointStore's frame
// discipline). One record holds one ingest batch — uvarint event count
// followed by op-tagged varint-encoded events — so batch atomicity falls
// out of the framing: a crash mid-append leaves a torn tail that replay
// truncates, never a half-applied batch. Each append is a single write
// followed by fsync, so an acknowledged batch is on disk before the epoch
// that contains it becomes visible.

// walMagic identifies a live-graph WAL, version 1: records start right
// after the magic and the log describes the graph's entire history.
var walMagic = [5]byte{'G', 'W', 'A', 'L', 1}

// walMagicV2 identifies a compacted WAL, version 2: the magic is followed
// by a u64 base epoch and u64 base event count (little-endian) naming the
// point in history the log starts from; everything earlier lives in the
// companion snapshot. Version-2 files are only ever created whole (write
// to a temp file, fsync, rename), so a header shorter than walV2HeaderLen
// is corruption, not a torn creation.
var walMagicV2 = [5]byte{'G', 'W', 'A', 'L', 2}

const walV2HeaderLen = len("GWAL") + 1 + 8 + 8

// walBase is the compaction point a version-2 WAL starts from.
type walBase struct {
	epoch  uint64
	events int
}

// maxWALRecord bounds a record's declared length so a corrupted length
// prefix cannot make replay allocate unbounded memory.
const maxWALRecord = 1 << 30

// Errors surfaced by the WAL.
var (
	// ErrWALCorrupt reports structural damage before the final record — a
	// bad magic, length or CRC that fsync ordering cannot explain. Unlike a
	// torn tail this is not silently recoverable: acknowledged batches may
	// be missing.
	ErrWALCorrupt = errors.New("live: WAL corrupt")
)

// wal is the durable append half; replay is a package function so recovery
// never needs a live handle.
type wal struct {
	f      *os.File
	path   string
	size   int64
	noSync bool
	base   walBase
}

// openWAL opens (creating if absent) the log at path, replays every intact
// batch, truncates a torn tail, and leaves the file positioned for
// appending. The returned batches are in log order; w.base names the
// compaction point they continue from (zero for a version-1 log).
func openWAL(path string, noSync bool) (w *wal, batches [][]stream.Event, truncated bool, err error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, false, fmt.Errorf("live: open WAL: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, false, fmt.Errorf("live: stat WAL: %w", err)
	}
	w = &wal{f: f, path: path, noSync: noSync}
	if st.Size() == 0 {
		if _, err := f.Write(walMagic[:]); err != nil {
			f.Close()
			return nil, nil, false, fmt.Errorf("live: init WAL: %w", err)
		}
		if err := w.sync(); err != nil {
			f.Close()
			return nil, nil, false, err
		}
		w.size = int64(len(walMagic))
		return w, nil, false, nil
	}
	batches, base, good, truncated, err := replayWAL(f, st.Size())
	if err != nil {
		f.Close()
		return nil, nil, false, err
	}
	w.base = base
	if truncated {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, false, fmt.Errorf("live: truncate torn WAL tail: %w", err)
		}
		if err := w.sync(); err != nil {
			f.Close()
			return nil, nil, false, err
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, false, fmt.Errorf("live: seek WAL: %w", err)
	}
	w.size = good
	return w, batches, truncated, nil
}

// replayWAL scans the log, returning every intact batch and the offset of
// the first byte past the last intact record. A partial record at EOF is a
// torn tail (crash mid-append) and reports truncated; damage anywhere else
// is ErrWALCorrupt.
func replayWAL(f *os.File, size int64) (batches [][]stream.Event, base walBase, good int64, truncated bool, err error) {
	fail := func(err error) ([][]stream.Event, walBase, int64, bool, error) {
		return nil, walBase{}, 0, false, err
	}
	var magic [len(walMagic)]byte
	if size < int64(len(magic)) {
		// Shorter than the magic: a crash during file creation. Nothing was
		// ever acknowledged, so treat the whole file as a torn tail.
		return nil, walBase{}, 0, true, nil
	}
	if _, err := f.ReadAt(magic[:], 0); err != nil {
		return fail(fmt.Errorf("live: read WAL magic: %w", err))
	}
	off := int64(len(magic))
	switch magic {
	case walMagic:
	case walMagicV2:
		var hdr [16]byte
		if size < int64(walV2HeaderLen) {
			// Rotation writes version-2 headers whole before renaming, so a
			// short one cannot be a torn creation.
			return fail(fmt.Errorf("%w: version-2 header truncated at %d bytes", ErrWALCorrupt, size))
		}
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			return fail(fmt.Errorf("live: read WAL base: %w", err))
		}
		base.epoch = binary.LittleEndian.Uint64(hdr[:8])
		events := binary.LittleEndian.Uint64(hdr[8:])
		if events > uint64(1)<<62 {
			return fail(fmt.Errorf("%w: implausible base event count %d", ErrWALCorrupt, events))
		}
		base.events = int(events)
		off = int64(walV2HeaderLen)
	default:
		if string(magic[:4]) == "GWAL" {
			return fail(fmt.Errorf("%w: unsupported WAL version %d", ErrWALCorrupt, magic[4]))
		}
		return fail(fmt.Errorf("%w: bad magic %q", ErrWALCorrupt, magic[:]))
	}
	for off < size {
		var hdr [4]byte
		if size-off < 4 {
			return batches, base, off, true, nil
		}
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			return fail(fmt.Errorf("live: read WAL record: %w", err))
		}
		n := int64(binary.LittleEndian.Uint32(hdr[:]))
		if size-off < 4+n+4 {
			// The declared record runs past EOF — whether the length bytes
			// are a truncated frame or scribble, this is indistinguishable
			// from an append cut short, so treat it as the torn tail.
			return batches, base, off, true, nil
		}
		if n > maxWALRecord {
			return fail(fmt.Errorf("%w: record length %d at offset %d", ErrWALCorrupt, n, off))
		}
		body := make([]byte, n+4)
		if _, err := f.ReadAt(body, off+4); err != nil {
			return fail(fmt.Errorf("live: read WAL record: %w", err))
		}
		want := binary.LittleEndian.Uint32(body[n:])
		if got := crc32.ChecksumIEEE(body[:n]); got != want {
			return fail(fmt.Errorf("%w: CRC mismatch at offset %d", ErrWALCorrupt, off))
		}
		batch, err := decodeBatch(body[:n])
		if err != nil {
			return fail(fmt.Errorf("%w: offset %d: %v", ErrWALCorrupt, off, err))
		}
		batches = append(batches, batch)
		off += 4 + n + 4
	}
	return batches, base, off, false, nil
}

// rotate atomically replaces the log with an empty version-2 file based
// at (epoch, events): the new header is written whole to a temp file,
// fsynced, and renamed over the old log. The caller must have durably
// written the snapshot covering everything up to the base first — after
// the rename the compacted history exists only there.
func (w *wal) rotate(epoch uint64, events int) error {
	hdr := make([]byte, 0, walV2HeaderLen)
	hdr = append(hdr, walMagicV2[:]...)
	hdr = binary.LittleEndian.AppendUint64(hdr, epoch)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(events))
	tmp := w.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("live: rotate WAL: %w", err)
	}
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("live: rotate WAL: %w", err)
	}
	if !w.noSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("live: rotate WAL: %w", err)
		}
	}
	if err := os.Rename(tmp, w.path); err != nil {
		f.Close()
		return fmt.Errorf("live: rotate WAL: %w", err)
	}
	if err := syncDir(w.path); err != nil {
		f.Close()
		return err
	}
	old := w.f
	w.f = f
	w.size = int64(walV2HeaderLen)
	w.base = walBase{epoch: epoch, events: events}
	old.Close()
	return nil
}

// syncDir fsyncs the directory containing path so a rename survives a
// crash of the whole machine, matching engine.CheckpointStore's
// discipline. Filesystems that refuse directory fsync are tolerated.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("live: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) {
		return fmt.Errorf("live: sync dir: %w", err)
	}
	return nil
}

// append frames, writes and (by default) fsyncs one batch. The frame goes
// out in a single Write so a crash leaves at worst a torn prefix of it.
func (w *wal) append(batch []stream.Event) error {
	payload := encodeBatch(batch)
	buf := make([]byte, 0, 4+len(payload)+4)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("live: append WAL: %w", err)
	}
	if err := w.sync(); err != nil {
		return err
	}
	w.size += int64(len(buf))
	return nil
}

func (w *wal) sync() error {
	if w.noSync {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("live: fsync WAL: %w", err)
	}
	return nil
}

func (w *wal) close() error {
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("live: close WAL: %w", err)
	}
	return nil
}

// encodeBatch renders a batch as the record payload: uvarint count, then
// per event an op byte and the op's varint fields (labels length-prefixed).
func encodeBatch(batch []stream.Event) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(batch)))
	for _, ev := range batch {
		buf = append(buf, byte(ev.Op))
		buf = binary.AppendVarint(buf, int64(ev.T))
		switch ev.Op {
		case stream.AddVertex, stream.RemoveVertex:
			buf = binary.AppendVarint(buf, int64(ev.V))
		case stream.AddEdge:
			buf = binary.AppendVarint(buf, int64(ev.E))
			buf = binary.AppendVarint(buf, int64(ev.Src))
			buf = binary.AppendVarint(buf, int64(ev.Dst))
		case stream.RemoveEdge:
			buf = binary.AppendVarint(buf, int64(ev.E))
		case stream.SetVertexProp:
			buf = binary.AppendVarint(buf, int64(ev.V))
			buf = appendString(buf, ev.Label)
			buf = binary.AppendVarint(buf, ev.Value)
		case stream.SetEdgeProp:
			buf = binary.AppendVarint(buf, int64(ev.E))
			buf = appendString(buf, ev.Label)
			buf = binary.AppendVarint(buf, ev.Value)
		}
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// decodeBatch is the inverse of encodeBatch.
func decodeBatch(payload []byte) ([]stream.Event, error) {
	d := walDecoder{buf: payload}
	n := d.uvarint()
	if n > uint64(len(payload)) {
		return nil, fmt.Errorf("implausible batch count %d", n)
	}
	batch := make([]stream.Event, 0, n)
	for i := uint64(0); i < n; i++ {
		if len(d.buf) == 0 {
			return nil, fmt.Errorf("batch truncated at event %d", i)
		}
		op := stream.Op(d.buf[0])
		d.buf = d.buf[1:]
		ev := stream.Event{Op: op, T: ival.Time(d.varint())}
		switch op {
		case stream.AddVertex, stream.RemoveVertex:
			ev.V = tgraph.VertexID(d.varint())
		case stream.AddEdge:
			ev.E = tgraph.EdgeID(d.varint())
			ev.Src = tgraph.VertexID(d.varint())
			ev.Dst = tgraph.VertexID(d.varint())
		case stream.RemoveEdge:
			ev.E = tgraph.EdgeID(d.varint())
		case stream.SetVertexProp:
			ev.V = tgraph.VertexID(d.varint())
			ev.Label = d.string()
			ev.Value = d.varint()
		case stream.SetEdgeProp:
			ev.E = tgraph.EdgeID(d.varint())
			ev.Label = d.string()
			ev.Value = d.varint()
		default:
			return nil, fmt.Errorf("unknown op %d", op)
		}
		if d.err != nil {
			return nil, d.err
		}
		batch = append(batch, ev)
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("%d trailing bytes after batch", len(d.buf))
	}
	return batch, nil
}

type walDecoder struct {
	buf []byte
	err error
}

func (d *walDecoder) uvarint() uint64 {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *walDecoder) varint() int64 {
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *walDecoder) string() string {
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.buf)) {
		d.fail()
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *walDecoder) fail() {
	if d.err == nil {
		d.err = errors.New("truncated varint field")
	}
}
