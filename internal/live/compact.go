package live

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"time"

	ival "graphite/internal/interval"
	"graphite/internal/obs"
	"graphite/internal/stream"
	"graphite/internal/tgraph"
)

// WAL compaction bounds replay cost: the log otherwise grows — and replay
// slows — without limit as history accumulates. Compact writes the
// current epoch as a mapped tgraph snapshot whose extra section carries
// the live-graph recovery header and the marshaled ingest accumulator,
// then rotates the WAL to an empty version-2 file based at that snapshot.
// Recovery becomes a millisecond mmap open plus replay of only the
// post-snapshot tail.
//
// Crash safety is two atomic renames, snapshot first:
//
//	crash before the snapshot rename  -> old snapshot (if any) + full log
//	crash between rename and rotation -> new snapshot + full log; Open
//	                                     skips the already-covered prefix
//	crash after the rotation          -> new snapshot + empty log
//
// Either way exactly one consistent (snapshot, log) pair survives.

// liveExtraVersion versions the snapshot's extra-section payload:
// uvarint version | uvarint epoch | varint horizon | accumulator state.
const liveExtraVersion = 1

// ErrSnapshotLost reports a compacted WAL (non-zero base: the prefix of
// history lives only in the snapshot) whose companion snapshot is missing
// or unusable. Recovery is impossible without restoring the snapshot file.
var ErrSnapshotLost = errors.New("live: compacted WAL without a usable snapshot")

// SnapshotPath returns the companion snapshot path for a WAL path.
func SnapshotPath(walPath string) string { return walPath + ".gsn" }

// CompactStats describes one completed compaction.
type CompactStats struct {
	Epoch         uint64 // epoch the snapshot captured
	Events        int    // cumulative events the snapshot covers
	SnapshotBytes int64
	WALBefore     int64 // log size before rotation
	WALAfter      int64 // log size after (just the version-2 header)
}

// Recovery describes how the last Open reconstructed the graph's state:
// from a snapshot plus a replayed tail, or from a full log replay.
type Recovery struct {
	FromSnapshot   bool
	SnapshotEpoch  uint64
	SnapshotEvents int  // events the snapshot covered
	TailBatches    int  // WAL batches replayed after the snapshot
	TailEvents     int  // events replayed after the snapshot
	Truncated      bool // a torn WAL tail was truncated
}

// LastRecovery reports how Open reconstructed this graph.
func (g *Graph) LastRecovery() Recovery {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.recovery
}

func encodeLiveExtra(epoch uint64, horizon ival.Time, acc *stream.Accumulator) []byte {
	buf := binary.AppendUvarint(nil, liveExtraVersion)
	buf = binary.AppendUvarint(buf, epoch)
	buf = binary.AppendVarint(buf, horizon)
	state, _ := acc.MarshalBinary() // never fails
	return append(buf, state...)
}

func decodeLiveExtra(extra []byte) (epoch uint64, horizon ival.Time, acc *stream.Accumulator, err error) {
	fail := func(format string, args ...any) (uint64, ival.Time, *stream.Accumulator, error) {
		return 0, 0, nil, fmt.Errorf("live: snapshot header: %s", fmt.Sprintf(format, args...))
	}
	v, n := binary.Uvarint(extra)
	if n <= 0 {
		return fail("truncated version")
	}
	if v != liveExtraVersion {
		return fail("version %d, want %d", v, liveExtraVersion)
	}
	extra = extra[n:]
	if epoch, n = binary.Uvarint(extra); n <= 0 {
		return fail("truncated epoch")
	}
	extra = extra[n:]
	h, n := binary.Varint(extra)
	if n <= 0 {
		return fail("truncated horizon")
	}
	acc, err = stream.UnmarshalAccumulator(extra[n:])
	if err != nil {
		return 0, 0, nil, err
	}
	return epoch, ival.Time(h), acc, nil
}

// liveSnapshot is a decoded companion snapshot: the mapped graph plus the
// recovery header and accumulator from its extra section.
type liveSnapshot struct {
	m       *tgraph.Mapped
	epoch   uint64
	horizon ival.Time
	acc     *stream.Accumulator
}

func openLiveSnapshot(path string) (*liveSnapshot, error) {
	m, err := tgraph.OpenMapped(path)
	if err != nil {
		return nil, err
	}
	if m.Extra == nil {
		m.Close()
		return nil, fmt.Errorf("live: %s is a graph snapshot but carries no live-graph state", path)
	}
	epoch, horizon, acc, err := decodeLiveExtra(m.Extra)
	if err != nil {
		m.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &liveSnapshot{m: m, epoch: epoch, horizon: horizon, acc: acc}, nil
}

// Compact checkpoints the current epoch into the companion snapshot and
// rotates the WAL, so the next Open replays only batches applied after
// this call. Readers are unaffected: published epochs stay valid, and the
// files are replaced atomically. On error the graph remains fully usable;
// at worst the snapshot is newer than the log base, which Open handles.
func (g *Graph) Compact() (CompactStats, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return CompactStats{}, ErrClosed
	}
	return g.compactLocked()
}

func (g *Graph) compactLocked() (CompactStats, error) {
	start := time.Now()
	img := tgraph.EncodeSnapshot(g.cur.g, encodeLiveExtra(g.cur.id, g.opts.Horizon, g.acc))
	tmp := g.snapPath + ".tmp"
	if err := writeSnapFile(tmp, img, g.opts.NoSync); err != nil {
		return CompactStats{}, err
	}
	if err := os.Rename(tmp, g.snapPath); err != nil {
		return CompactStats{}, fmt.Errorf("live: commit snapshot: %w", err)
	}
	if !g.opts.NoSync {
		if err := syncDir(g.snapPath); err != nil {
			return CompactStats{}, err
		}
	}
	walBefore := g.w.size
	if err := g.w.rotate(g.cur.id, g.acc.Events()); err != nil {
		return CompactStats{}, err
	}
	g.lastCompact = g.acc.Events()
	stats := CompactStats{
		Epoch:         g.cur.id,
		Events:        g.acc.Events(),
		SnapshotBytes: int64(len(img)),
		WALBefore:     walBefore,
		WALAfter:      g.w.size,
	}
	g.publishGauges()
	if g.mCompacts != nil {
		g.mCompacts.Inc()
	}
	if g.opts.Tracer != nil {
		g.opts.Tracer.Emit(obs.WALCompact{Graph: g.name, Epoch: stats.Epoch, Events: stats.Events,
			SnapshotBytes: stats.SnapshotBytes, WALBefore: stats.WALBefore, WALAfter: stats.WALAfter,
			WallNS: time.Since(start).Nanoseconds()})
	}
	return stats, nil
}

// writeSnapFile writes data and (unless noSync) fsyncs before closing, so
// the subsequent rename publishes fully durable bytes.
func writeSnapFile(path string, data []byte, noSync bool) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("live: write snapshot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("live: write snapshot: %w", err)
	}
	if !noSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("live: sync snapshot: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("live: close snapshot: %w", err)
	}
	return nil
}
