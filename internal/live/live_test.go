package live

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	ival "graphite/internal/interval"
	"graphite/internal/obs"
	"graphite/internal/stream"
	"graphite/internal/tgraph"
)

func walPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "graph.wal")
}

// chainBatch returns events appending vertices n..m-1 and edges chaining
// them, each step one time unit later, starting at time t0.
func chainBatch(n, m int, t0 ival.Time) []stream.Event {
	var evs []stream.Event
	tt := t0
	for i := n; i < m; i++ {
		evs = append(evs, stream.Event{Op: stream.AddVertex, T: tt, V: tgraph.VertexID(i)})
		if i > 0 {
			e := tgraph.EdgeID(i)
			evs = append(evs,
				stream.Event{Op: stream.AddEdge, T: tt, E: e, Src: tgraph.VertexID(i - 1), Dst: tgraph.VertexID(i)},
				stream.Event{Op: stream.SetEdgeProp, T: tt, E: e, Label: "travel-time", Value: 1})
		}
		tt++
	}
	return evs
}

// graphBytes renders a canonical byte encoding for exact-equality checks.
func graphBytes(t *testing.T, g *tgraph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tgraph.WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	return buf.Bytes()
}

func TestOpenEmptyAndApply(t *testing.T) {
	g, err := Open(walPath(t), Options{Name: "t"})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer g.Close()
	if info := g.Info(); info.Epoch != 0 || info.Events != 0 || info.Vertices != 0 {
		t.Fatalf("fresh graph info = %+v", info)
	}
	info, err := g.Apply(chainBatch(0, 4, 0))
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if info.Epoch != 1 || info.Vertices != 4 || info.Edges != 3 {
		t.Fatalf("info after first batch = %+v", info)
	}
	if _, err := g.Apply(nil); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("empty batch: got %v", err)
	}
}

func TestApplyIsBatchAtomic(t *testing.T) {
	g, err := Open(walPath(t), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer g.Close()
	if _, err := g.Apply(chainBatch(0, 3, 0)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	before := g.Info()
	// Batch whose second event is invalid (edge to an unknown vertex): the
	// whole batch must be rejected without publishing an epoch or touching
	// the WAL.
	bad := []stream.Event{
		{Op: stream.AddVertex, T: 9, V: 50},
		{Op: stream.AddEdge, T: 9, E: 99, Src: 50, Dst: 777},
	}
	if _, err := g.Apply(bad); !errors.Is(err, stream.ErrUnknownOwner) {
		t.Fatalf("bad batch: got %v", err)
	}
	if after := g.Info(); after != before {
		t.Fatalf("rejected batch changed graph: %+v -> %+v", before, after)
	}
	// And the WAL holds no trace of it: a reopen sees only the good batch.
	path := g.w.path
	g.Close()
	g2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer g2.Close()
	if info := g2.Info(); info.Events != before.Events {
		t.Fatalf("reopened events = %d, want %d", info.Events, before.Events)
	}
}

func TestReopenReplaysToIdenticalGraph(t *testing.T) {
	path := walPath(t)
	g, err := Open(path, Options{Horizon: 100})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := g.Apply(chainBatch(0, 5, 0)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if _, err := g.Apply(chainBatch(5, 9, 10)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if _, err := g.Apply([]stream.Event{{Op: stream.RemoveEdge, T: 20, E: 3}}); err != nil {
		t.Fatalf("Apply remove: %v", err)
	}
	ep := g.Acquire()
	want := graphBytes(t, ep.Graph())
	wantInfo := ep.Info()
	ep.Release()
	g.Close()

	g2, err := Open(path, Options{Horizon: 100})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer g2.Close()
	ep2 := g2.Acquire()
	defer ep2.Release()
	if got := graphBytes(t, ep2.Graph()); !bytes.Equal(got, want) {
		t.Fatalf("replayed graph differs from pre-close graph")
	}
	if gotInfo := ep2.Info(); gotInfo != wantInfo {
		t.Fatalf("replayed info = %+v, want %+v", gotInfo, wantInfo)
	}
}

func TestTornTailTruncatedOnReplay(t *testing.T) {
	path := walPath(t)
	g, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := g.Apply(chainBatch(0, 4, 0)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if _, err := g.Apply(chainBatch(4, 6, 5)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	events := g.Info().Events
	g.Close()

	// Simulate a crash mid-append: a partial frame at the tail.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read WAL: %v", err)
	}
	for cut := 1; cut < 12; cut += 3 {
		torn := append(append([]byte{}, raw...), make([]byte, cut)...)
		torn[len(torn)-1] = 0x7f // garbage tail
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatalf("write torn WAL: %v", err)
		}
		g2, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("open torn WAL (cut %d): %v", cut, err)
		}
		if got := g2.Info().Events; got != events {
			t.Fatalf("cut %d: events = %d, want %d", cut, got, events)
		}
		// The truncation is durable: the next append goes to a clean tail.
		if _, err := g2.Apply([]stream.Event{
			{Op: stream.AddVertex, T: ival.Time(10 + cut), V: tgraph.VertexID(100 + cut)},
		}); err != nil {
			t.Fatalf("append after truncation: %v", err)
		}
		g2.Close()
		raw2, _ := os.ReadFile(path)
		g3, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("reopen after truncated append: %v", err)
		}
		if got := g3.Info().Events; got != events+1 {
			t.Fatalf("cut %d: after append events = %d, want %d", cut, got, events+1)
		}
		g3.Close()
		raw = raw[:0]
		raw = append(raw, raw2...)
		events++
	}
}

func TestMidFileCorruptionIsTyped(t *testing.T) {
	path := walPath(t)
	g, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := g.Apply(chainBatch(0, 4, 0)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if _, err := g.Apply(chainBatch(4, 8, 5)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	g.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read WAL: %v", err)
	}
	raw[len(walMagic)+8] ^= 0xff // flip a byte inside the first record
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("write corrupt WAL: %v", err)
	}
	if _, err := Open(path, Options{}); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("want ErrWALCorrupt, got %v", err)
	}
}

// TestConcurrentReadersSeeStableEpochs is the MVCC acceptance test: readers
// pin epochs and hash their graphs repeatedly while a writer keeps
// appending; every reader must see a byte-identical graph for as long as it
// holds the epoch, and reclamation must account for every release. Run
// under -race.
func TestConcurrentReadersSeeStableEpochs(t *testing.T) {
	g, err := Open(walPath(t), Options{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer g.Close()
	if _, err := g.Apply(chainBatch(0, 10, 0)); err != nil {
		t.Fatalf("seed batch: %v", err)
	}

	const (
		readers      = 4
		batches      = 30
		readsPerSpan = 8
	)
	var wg sync.WaitGroup
	errc := make(chan error, readers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		lo := 10
		for i := 0; i < batches; i++ {
			if _, err := g.Apply(chainBatch(lo, lo+3, ival.Time(10+i*2))); err != nil {
				errc <- err
				return
			}
			lo += 3
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				ep := g.Acquire()
				want := graphBytes(t, ep.Graph())
				id := ep.ID()
				for j := 0; j < readsPerSpan; j++ {
					if got := graphBytes(t, ep.Graph()); !bytes.Equal(got, want) {
						errc <- errors.New("pinned epoch changed under reader")
						ep.Release()
						return
					}
					if ep.ID() != id {
						errc <- errors.New("epoch id changed")
						ep.Release()
						return
					}
				}
				ep.Release()
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	// All readers done: only the current epoch should remain live.
	if n := g.EpochsLive(); n != 1 {
		t.Fatalf("epochs live after quiesce = %d, want 1", n)
	}
	if got := g.Info().Epoch; got != 1+batches {
		t.Fatalf("current epoch = %d, want %d", got, 1+batches)
	}
}

func TestEffectiveEpochTracksWindowSensitivity(t *testing.T) {
	g, err := Open(walPath(t), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer g.Close()
	if _, err := g.Apply(chainBatch(0, 4, 0)); err != nil { // epoch 1, times 0..3
		t.Fatalf("Apply: %v", err)
	}
	w := ival.New(0, 10)
	e1 := g.EffectiveEpoch(w)
	if e1 != 1 {
		t.Fatalf("effective epoch = %d, want 1", e1)
	}
	// A batch entirely at t >= 10 must not disturb windows ending at 10.
	if _, err := g.Apply(chainBatch(4, 6, 15)); err != nil { // epoch 2
		t.Fatalf("Apply: %v", err)
	}
	if got := g.EffectiveEpoch(w); got != e1 {
		t.Fatalf("future batch moved effective epoch: %d -> %d", e1, got)
	}
	// But it does disturb wider and unbounded windows.
	if got := g.EffectiveEpoch(ival.New(0, 20)); got != 2 {
		t.Fatalf("effective epoch for [0,20) = %d, want 2", got)
	}
	if got := g.EffectiveEpoch(ival.New(0, ival.Infinity)); got != 2 {
		t.Fatalf("effective epoch for unbounded = %d, want 2", got)
	}
	// Later mutations of existing entities still spare the old window but
	// keep moving windows that reach past them.
	if _, err := g.Apply([]stream.Event{
		{Op: stream.SetEdgeProp, T: 17, E: 1, Label: "travel-time", Value: 9},
	}); err != nil { // epoch 3
		t.Fatalf("prop batch rejected: %v", err)
	}
	if _, err := g.Apply([]stream.Event{{Op: stream.RemoveEdge, T: 18, E: 2}}); err != nil { // epoch 4
		t.Fatalf("remove batch: %v", err)
	}
	if got := g.EffectiveEpoch(w); got != e1 {
		t.Fatalf("mutations at t>=17 moved effective epoch for [0,10)")
	}
	if got := g.EffectiveEpoch(ival.New(0, 18)); got != 3 {
		t.Fatalf("effective epoch for [0,18) = %d, want 3", got)
	}
	if got := g.EffectiveEpoch(ival.New(0, 20)); got != 4 {
		t.Fatalf("effective epoch for [0,20) = %d, want 4", got)
	}
}

func TestWALEncodingRoundTrips(t *testing.T) {
	batch := []stream.Event{
		{Op: stream.AddVertex, T: 0, V: 1},
		{Op: stream.AddVertex, T: 0, V: 2},
		{Op: stream.AddEdge, T: 1, E: 7, Src: 1, Dst: 2},
		{Op: stream.SetEdgeProp, T: 2, E: 7, Label: "travel-time", Value: -3},
		{Op: stream.SetVertexProp, T: 3, V: 2, Label: "π", Value: 1 << 40},
		{Op: stream.RemoveEdge, T: 4, E: 7},
		{Op: stream.RemoveVertex, T: 5, V: 2},
	}
	got, err := decodeBatch(encodeBatch(batch))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(batch) {
		t.Fatalf("round trip length %d, want %d", len(got), len(batch))
	}
	for i := range batch {
		if got[i] != batch[i] {
			t.Errorf("event %d: %+v != %+v", i, got[i], batch[i])
		}
	}
	// Truncated payloads fail loudly rather than misparse.
	enc := encodeBatch(batch)
	for cut := 1; cut < len(enc); cut += 7 {
		if _, err := decodeBatch(enc[:cut]); err == nil {
			t.Errorf("truncation at %d decoded silently", cut)
		}
	}
}
