package live

import (
	"bytes"
	"errors"
	"os"
	"testing"

	ival "graphite/internal/interval"
	"graphite/internal/stream"
)

// copyFile snapshots a file's bytes so tests can restore pre-compaction
// states, simulating crashes at specific points of the protocol.
func copyFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return data
}

func TestCompactAndReopenMatchesUncompactedReplay(t *testing.T) {
	pathA := walPath(t) // compacted
	pathB := walPath(t) // control: plain replay
	ga, err := Open(pathA, Options{Horizon: 1000})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	gb, err := Open(pathB, Options{Horizon: 1000})
	if err != nil {
		t.Fatalf("Open control: %v", err)
	}
	batches := [][]stream.Event{
		chainBatch(0, 5, 0),
		chainBatch(5, 9, 10),
		{{Op: stream.RemoveEdge, T: 20, E: 3}},
		chainBatch(9, 12, 30),
		{{Op: stream.SetVertexProp, T: 40, V: 2, Label: "color", Value: 5}},
	}
	for i, b := range batches {
		if _, err := ga.Apply(b); err != nil {
			t.Fatalf("Apply %d: %v", i, err)
		}
		if _, err := gb.Apply(b); err != nil {
			t.Fatalf("Apply control %d: %v", i, err)
		}
		if i == 2 {
			stats, err := ga.Compact()
			if err != nil {
				t.Fatalf("Compact: %v", err)
			}
			if stats.Epoch != 3 || stats.WALAfter >= stats.WALBefore {
				t.Fatalf("compact stats = %+v", stats)
			}
			if _, err := os.Stat(SnapshotPath(pathA)); err != nil {
				t.Fatalf("snapshot missing after compact: %v", err)
			}
		}
	}
	infoA, infoB := ga.Info(), gb.Info()
	if infoA != infoB {
		t.Fatalf("live infos diverge: %+v vs %+v", infoA, infoB)
	}
	ga.Close()
	gb.Close()

	// The compacted WAL holds only the two post-compaction batches.
	ga2, err := Open(pathA, Options{Horizon: 1000})
	if err != nil {
		t.Fatalf("reopen compacted: %v", err)
	}
	defer ga2.Close()
	gb2, err := Open(pathB, Options{Horizon: 1000})
	if err != nil {
		t.Fatalf("reopen control: %v", err)
	}
	defer gb2.Close()

	recA, recB := ga2.LastRecovery(), gb2.LastRecovery()
	if !recA.FromSnapshot || recA.SnapshotEpoch != 3 || recA.TailBatches != 2 {
		t.Fatalf("compacted recovery = %+v", recA)
	}
	if recA.TailEvents >= recB.TailEvents || recB.FromSnapshot {
		t.Fatalf("compacted tail (%d events) not shorter than full replay (%d)",
			recA.TailEvents, recB.TailEvents)
	}

	// Bit-identical state: same info, same canonical graph bytes.
	if ia, ib := ga2.Info(), gb2.Info(); ia != ib || ia != infoA {
		t.Fatalf("reopened infos diverge: %+v vs %+v (want %+v)", ia, ib, infoA)
	}
	epA, epB := ga2.Acquire(), gb2.Acquire()
	defer epA.Release()
	defer epB.Release()
	if !bytes.Equal(graphBytes(t, epA.Graph()), graphBytes(t, epB.Graph())) {
		t.Fatal("compacted recovery and full replay produced different graphs")
	}
}

func TestCompactNoTailServesMappedEpoch(t *testing.T) {
	path := walPath(t)
	g, err := Open(path, Options{Horizon: 500})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := g.Apply(chainBatch(0, 6, 0)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if _, err := g.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	ep := g.Acquire()
	want := graphBytes(t, ep.Graph())
	ep.Release()
	g.Close()

	g2, err := Open(path, Options{Horizon: 500})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	rec := g2.LastRecovery()
	if !rec.FromSnapshot || rec.TailBatches != 0 || rec.TailEvents != 0 {
		t.Fatalf("recovery = %+v, want snapshot-only", rec)
	}
	ep2 := g2.Acquire()
	if ep2.drop == nil {
		t.Fatal("tail-free reopen should serve the mapped snapshot directly")
	}
	if got := graphBytes(t, ep2.Graph()); !bytes.Equal(got, want) {
		t.Fatal("mapped epoch differs from pre-close graph")
	}
	if ep2.ID() != 1 {
		t.Fatalf("epoch id = %d, want 1", ep2.ID())
	}
	// Ingest continues on top of the mapped epoch; the mapping is dropped
	// once the old epoch's readers (us) let go.
	if _, err := g2.Apply(chainBatch(6, 8, 50)); err != nil {
		t.Fatalf("Apply on mapped epoch: %v", err)
	}
	ep2.Release()
	cur := g2.Acquire()
	if cur.ID() != 2 || cur.Graph().NumVertices() != 8 {
		t.Fatalf("post-ingest epoch = %d with %d vertices", cur.ID(), cur.Graph().NumVertices())
	}
	cur.Release()
	g2.Close()

	// A different horizon at reopen forces materialization from the
	// accumulator instead of the mapped fast path — same graph contents.
	g3, err := Open(path, Options{Horizon: 999})
	if err != nil {
		t.Fatalf("reopen with new horizon: %v", err)
	}
	defer g3.Close()
	ep3 := g3.Acquire()
	defer ep3.Release()
	if ep3.drop != nil {
		t.Fatal("horizon change must not reuse the mapped snapshot graph")
	}
}

func TestCompactEveryAutoCompacts(t *testing.T) {
	path := walPath(t)
	g, err := Open(path, Options{CompactEvery: 10})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 6; i++ {
		if _, err := g.Apply(chainBatch(i*3, i*3+3, ival.Time(i*10))); err != nil {
			t.Fatalf("Apply %d: %v", i, err)
		}
	}
	total := g.Info().Events
	g.Close()
	if _, err := os.Stat(SnapshotPath(path)); err != nil {
		t.Fatalf("auto-compaction produced no snapshot: %v", err)
	}
	g2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer g2.Close()
	rec := g2.LastRecovery()
	if !rec.FromSnapshot || rec.TailEvents >= total {
		t.Fatalf("recovery after auto-compaction = %+v (total %d events)", rec, total)
	}
}

func TestCompactedWALWithoutSnapshotIsLost(t *testing.T) {
	path := walPath(t)
	g, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := g.Apply(chainBatch(0, 4, 0)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if _, err := g.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	g.Close()
	if err := os.Remove(SnapshotPath(path)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); !errors.Is(err, ErrSnapshotLost) {
		t.Fatalf("open without snapshot: %v, want ErrSnapshotLost", err)
	}
	// A corrupt snapshot is equally lost.
	if err := os.WriteFile(SnapshotPath(path), []byte("GSNAP\nnot really"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); !errors.Is(err, ErrSnapshotLost) {
		t.Fatalf("open with corrupt snapshot: %v, want ErrSnapshotLost", err)
	}
}

func TestSnapshotAheadOfWALBaseSkipsCoveredPrefix(t *testing.T) {
	// Simulate a crash between the snapshot rename and the log rotation:
	// the surviving pair is a fresh snapshot plus the FULL pre-compaction
	// log. Open must skip the covered prefix and replay only the rest.
	path := walPath(t)
	g, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := g.Apply(chainBatch(0, 4, 0)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if _, err := g.Apply(chainBatch(4, 6, 10)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	preCompactWAL := copyFile(t, path)
	if _, err := g.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	want := g.Info()
	g.Close()
	// Roll the log back to its pre-rotation state; the snapshot now covers
	// every batch the log holds.
	if err := os.WriteFile(path, preCompactWAL, 0o644); err != nil {
		t.Fatal(err)
	}
	g2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen with stale log: %v", err)
	}
	defer g2.Close()
	rec := g2.LastRecovery()
	if !rec.FromSnapshot || rec.TailBatches != 0 {
		t.Fatalf("recovery = %+v, want fully-covered log skipped", rec)
	}
	if got := g2.Info(); got.Events != want.Events || got.Vertices != want.Vertices {
		t.Fatalf("recovered info = %+v, want %+v", got, want)
	}

	// A log that ends mid-coverage (shorter than the snapshot claims) is
	// corruption: coverage must align with batch boundaries.
	g2.Close()
	if err := os.WriteFile(path, preCompactWAL[:len(preCompactWAL)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("open with under-covered log: %v, want ErrWALCorrupt", err)
	}
}
