// Package live is the mutable half of the temporal graph store: a graph
// that consumes stream.Event mutations through a durable write-ahead log
// and publishes immutable epoch snapshots.
//
// Because events only ever extend the time axis (the accumulator enforces
// globally non-decreasing event times), two monotonicity dividends fall
// out:
//
//   - MVCC for free: every ingest batch publishes a fresh immutable
//     tgraph.Graph as a new epoch; in-flight queries keep reading the epoch
//     they acquired while appends continue. Epochs are refcounted and
//     reclaimed when the last reader releases them.
//   - Cheap cache validity: a batch whose first event is at time t cannot
//     change any window ending at or before t, so a cached result for
//     window w stays valid until a batch with first-event time < w.End
//     lands. EffectiveEpoch is that rule as a binary search.
//
// Durability follows engine.CheckpointStore's discipline: CRC-framed
// records, single-write appends, fsync before acknowledgment. A SIGKILL at
// any point loses at most the unacknowledged tail batch; Open replays the
// log back to the exact acknowledged graph.
package live

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	ival "graphite/internal/interval"
	"graphite/internal/obs"
	"graphite/internal/stream"
	"graphite/internal/tgraph"
)

// Errors surfaced by the live graph.
var (
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("live: graph closed")
	// ErrEmptyBatch rejects Apply with no events (an epoch must be
	// distinguishable from its predecessor by at least one event).
	ErrEmptyBatch = errors.New("live: empty batch")
)

// Options configures a live graph.
type Options struct {
	// Name labels traces and log lines; it does not affect storage.
	Name string
	// Horizon closes still-open entities at this time when materializing
	// snapshots; zero or negative leaves them unbounded.
	Horizon ival.Time
	// NoSync skips the per-append fsync. Only for benchmarks measuring the
	// fsync tax; a SIGKILL under NoSync can lose acknowledged batches.
	NoSync bool
	// CompactEvery auto-compacts after this many events have accumulated
	// since the last compaction (or since the snapshot recovery was based
	// on). Zero disables auto-compaction; Compact can still be called
	// explicitly.
	CompactEvery int
	// Registry receives ingest counters and epoch gauges (nil: none).
	Registry *obs.Registry
	// Tracer receives EpochPublish and WALReplay events (nil: none).
	Tracer obs.Tracer
}

// Info describes the published state of a live graph at some epoch.
type Info struct {
	Epoch    uint64    `json:"epoch"`
	Events   int       `json:"events"` // cumulative since the log began
	LastTime ival.Time `json:"last_time"`
	Vertices int       `json:"vertices"`
	Edges    int       `json:"edges"`
}

// Epoch is one immutable published snapshot. Readers acquire the current
// epoch, run against its graph, and release it; the snapshot stays valid —
// and its memory accounted as live — until the last reader is done.
type Epoch struct {
	id     uint64
	g      *tgraph.Graph
	events int
	lastT  ival.Time
	refs   atomic.Int64
	owner  *Graph
	drop   func() // releases backing storage (an mmap) when refs hit zero
}

// ID returns the epoch number (0 for an empty just-created log; replay and
// every Apply each advance it by one).
func (e *Epoch) ID() uint64 { return e.id }

// Graph returns the immutable snapshot. It may have zero vertices if no
// events have arrived yet.
func (e *Epoch) Graph() *tgraph.Graph { return e.g }

// Events returns the cumulative event count materialized into the epoch.
func (e *Epoch) Events() int { return e.events }

// LastTime returns the time of the epoch's latest event.
func (e *Epoch) LastTime() ival.Time { return e.lastT }

// Info summarizes the epoch.
func (e *Epoch) Info() Info {
	return Info{Epoch: e.id, Events: e.events, LastTime: e.lastT,
		Vertices: e.g.NumVertices(), Edges: e.g.NumEdges()}
}

// Release drops the reader's reference. The epoch is reclaimed when the
// current pointer and every reader have let go.
func (e *Epoch) Release() {
	if e.refs.Add(-1) == 0 {
		if e.drop != nil {
			e.drop()
		}
		e.owner.reclaim()
	}
}

// mark records one ingest batch for EffectiveEpoch: the epoch it published
// and the batch's first (minimum) event time. Because event time is
// globally non-decreasing, minT is non-decreasing across marks.
type mark struct {
	epoch uint64
	minT  ival.Time
}

// Graph is a WAL-backed mutable temporal graph publishing epoch snapshots.
// Apply is serialized; Acquire/EffectiveEpoch are safe for concurrent use
// with Apply and with each other.
type Graph struct {
	opts Options
	name string

	mu       sync.Mutex
	acc      *stream.Accumulator
	w        *wal
	cur      *Epoch
	marks    []mark
	closed   bool
	snapPath string
	recovery Recovery
	// lastCompact is the cumulative event count at the last compaction (or
	// at the snapshot the last Open recovered from); CompactEvery measures
	// from here.
	lastCompact int

	epochsLive atomic.Int64

	mEvents, mBatches    *obs.Counter
	mCompacts, mCompErrs *obs.Counter
	gEpoch, gLive        *obs.Gauge
	gWALBytes, gLastT    *obs.Gauge
	hIngest              *obs.Histogram
}

// Open opens (creating if absent) the WAL at path and rebuilds the initial
// epoch. If a companion snapshot (path + ".gsn", written by Compact) exists
// it is mapped and only the WAL batches past its coverage replay; otherwise
// the whole log replays. A torn tail — an append cut short by a crash — is
// truncated silently; it was never acknowledged. Corruption before the tail
// is ErrWALCorrupt, and a compacted log whose snapshot is missing or
// unreadable is ErrSnapshotLost.
func Open(path string, opts Options) (*Graph, error) {
	start := time.Now()
	snapPath := SnapshotPath(path)
	var snap *liveSnapshot
	snapErr := error(nil)
	if _, err := os.Stat(snapPath); err == nil {
		snap, snapErr = openLiveSnapshot(snapPath)
	} else if !errors.Is(err, os.ErrNotExist) {
		snapErr = err
	}
	w, batches, truncated, err := openWAL(path, opts.NoSync)
	if err != nil {
		if snap != nil {
			snap.m.Close()
		}
		return nil, err
	}
	abort := func() {
		w.close()
		if snap != nil {
			snap.m.Close()
		}
	}
	if snap == nil && (w.base.epoch != 0 || w.base.events != 0) {
		// The log was rotated by a compaction, so its prefix lives only in
		// the snapshot — which we cannot use.
		w.close()
		if snapErr != nil {
			return nil, fmt.Errorf("%w: %v", ErrSnapshotLost, snapErr)
		}
		return nil, fmt.Errorf("%w: %s missing", ErrSnapshotLost, snapPath)
	}
	if snap != nil && snap.acc.Events() < w.base.events {
		// Compaction renames the snapshot before rotating the log, so the
		// snapshot may cover MORE events than the log base — never fewer.
		abort()
		return nil, fmt.Errorf("%w: snapshot covers %d events but the log starts after %d",
			ErrWALCorrupt, snap.acc.Events(), w.base.events)
	}
	name := opts.Name
	if name == "" {
		name = path
	}
	g := &Graph{opts: opts, name: name, acc: stream.NewAccumulator(), w: w, snapPath: snapPath}
	if r := opts.Registry; r != nil {
		g.mEvents = r.Counter("live.events_total")
		g.mBatches = r.Counter("live.batches_total")
		g.mCompacts = r.Counter("live.compactions_total")
		g.mCompErrs = r.Counter("live.compaction_errors_total")
		g.gEpoch = r.Gauge("live.epoch")
		g.gLive = r.Gauge("live.epochs_live")
		g.gWALBytes = r.Gauge("live.wal_bytes")
		g.gLastT = r.Gauge("live.last_event_time")
		g.hIngest = r.Histogram("live.ingest_latency_ns")
	}
	rec := Recovery{Truncated: truncated}
	tail := batches
	var baseEpoch uint64
	if snap != nil {
		g.acc = snap.acc
		baseEpoch = snap.epoch
		rec.FromSnapshot = true
		rec.SnapshotEpoch = snap.epoch
		rec.SnapshotEvents = snap.acc.Events()
		// Skip the log prefix the snapshot already covers. Batches are
		// atomic, so the covered count must align on a batch boundary.
		skip := rec.SnapshotEvents - w.base.events
		for skip > 0 {
			if len(tail) == 0 || len(tail[0]) > skip {
				abort()
				return nil, fmt.Errorf("%w: snapshot coverage (%d events past the log base) does not align with batch boundaries",
					ErrWALCorrupt, rec.SnapshotEvents-w.base.events)
			}
			skip -= len(tail[0])
			tail = tail[1:]
		}
	}
	for i, batch := range tail {
		for _, ev := range batch {
			if err := g.acc.Apply(ev); err != nil {
				abort()
				return nil, fmt.Errorf("%w: replayed batch %d rejected: %v", ErrWALCorrupt, i, err)
			}
		}
	}
	rec.TailBatches = len(tail)
	rec.TailEvents = g.acc.Events() - rec.SnapshotEvents
	curID := baseEpoch + uint64(len(tail))
	var cur *tgraph.Graph
	var drop func()
	if snap != nil && len(tail) == 0 && snap.horizon == opts.Horizon {
		// Nothing landed since the snapshot and the horizon matches: serve
		// queries straight off the mapping, no materialization at all. The
		// pages unmap when the epoch's last reader lets go.
		cur = snap.m.Graph
		m := snap.m
		drop = func() { m.Close() }
	} else {
		cur, err = g.acc.Graph(opts.Horizon)
		if err != nil {
			abort()
			return nil, fmt.Errorf("live: materialize replayed graph: %w", err)
		}
		if snap != nil {
			snap.m.Close()
		}
	}
	g.cur = &Epoch{id: curID, g: cur, events: g.acc.Events(), lastT: g.acc.Now(), owner: g, drop: drop}
	g.cur.refs.Store(1) // the current pointer's reference
	g.epochsLive.Store(1)
	g.recovery = rec
	g.lastCompact = rec.SnapshotEvents
	// One conservative mark covers the whole recovered history: in-process
	// caches are empty at open, so nothing older needs distinguishing.
	g.marks = []mark{{epoch: g.cur.id, minT: 0}}
	g.publishGauges()
	if g.mEvents != nil {
		g.mEvents.Store(int64(g.acc.Events()))
		g.mBatches.Store(int64(len(tail)))
	}
	if opts.Tracer != nil {
		opts.Tracer.Emit(obs.WALReplay{Graph: name, Batches: len(tail), Events: rec.TailEvents,
			Bytes: w.size, Truncated: truncated, FromSnapshot: rec.FromSnapshot,
			SnapshotEvents: rec.SnapshotEvents, WallNS: time.Since(start).Nanoseconds()})
	}
	return g, nil
}

// Name returns the graph's label.
func (g *Graph) Name() string { return g.name }

// Apply validates, logs and applies one batch of events, then publishes the
// resulting snapshot as a new epoch. The batch is atomic: either every
// event is accepted (and durably logged before the epoch becomes visible),
// or the batch is rejected and the graph is unchanged.
func (g *Graph) Apply(batch []stream.Event) (Info, error) {
	start := time.Now()
	if len(batch) == 0 {
		return Info{}, ErrEmptyBatch
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return Info{}, ErrClosed
	}
	if err := g.acc.Preflight(batch); err != nil {
		return Info{}, err
	}
	if err := g.w.append(batch); err != nil {
		return Info{}, err
	}
	for _, ev := range batch {
		// Preflight mirrors Apply's checks exactly, so this cannot fail; if
		// it ever does the accumulator may be half-mutated and the only
		// safe report is corruption.
		if err := g.acc.Apply(ev); err != nil {
			g.closed = true
			return Info{}, fmt.Errorf("live: preflighted event rejected (graph wedged): %w", err)
		}
	}
	snap, err := g.acc.Graph(g.opts.Horizon)
	if err != nil {
		g.closed = true
		return Info{}, fmt.Errorf("live: materialize snapshot (graph wedged): %w", err)
	}
	ep := &Epoch{id: g.cur.id + 1, g: snap, events: g.acc.Events(), lastT: g.acc.Now(), owner: g}
	ep.refs.Store(1)
	g.epochsLive.Add(1)
	old := g.cur
	g.cur = ep
	g.marks = append(g.marks, mark{epoch: ep.id, minT: batch[0].T})
	old.Release() // drop the current pointer's reference to the predecessor
	g.publishGauges()
	elapsed := time.Since(start)
	if g.mEvents != nil {
		g.mEvents.Add(int64(len(batch)))
		g.mBatches.Inc()
		g.hIngest.Observe(elapsed)
	}
	if g.opts.Tracer != nil {
		g.opts.Tracer.Emit(obs.EpochPublish{Graph: g.name, Epoch: ep.id, Batch: len(batch),
			Events: ep.events, LastTime: int64(ep.lastT), Vertices: snap.NumVertices(),
			Edges: snap.NumEdges(), WallNS: elapsed.Nanoseconds()})
	}
	if n := g.opts.CompactEvery; n > 0 && g.acc.Events()-g.lastCompact >= n {
		// The batch is already durable; a failed compaction costs nothing
		// but a longer replay, and the next Apply retries.
		if _, err := g.compactLocked(); err != nil && g.mCompErrs != nil {
			g.mCompErrs.Inc()
		}
	}
	return ep.Info(), nil
}

// Acquire returns the current epoch with a reader reference; callers must
// Release it when their query finishes.
func (g *Graph) Acquire() *Epoch {
	g.mu.Lock()
	defer g.mu.Unlock()
	ep := g.cur
	ep.refs.Add(1)
	return ep
}

// Info summarizes the current epoch without taking a reference.
func (g *Graph) Info() Info {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cur.Info()
}

// EffectiveEpoch returns the oldest epoch whose graph, restricted to the
// window, equals the current epoch's: the epoch published by the last
// batch whose first event falls before the window's end. Fingerprinting
// cached results under this epoch keeps windows untouched by later events
// valid while affected windows invalidate.
func (g *Graph) EffectiveEpoch(w ival.Interval) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.effectiveLocked(w)
}

func (g *Graph) effectiveLocked(w ival.Interval) uint64 {
	// First mark with minT >= w.End; everything before it affects w.
	i := sort.Search(len(g.marks), func(i int) bool { return g.marks[i].minT >= w.End })
	if i == 0 {
		// Even the base mark starts at or past the window's end. The base
		// epoch itself is still the floor.
		return g.marks[0].epoch
	}
	return g.marks[i-1].epoch
}

// AcquireEffective atomically acquires the current epoch and computes the
// window's effective epoch against it. One lock for both is what makes
// epoch-fingerprinted caching sound: a batch landing between separate
// EffectiveEpoch and Acquire calls could pair a fresh cache key with a stale
// snapshot (or the reverse).
func (g *Graph) AcquireEffective(w ival.Interval) (*Epoch, uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	ep := g.cur
	ep.refs.Add(1)
	return ep, g.effectiveLocked(w)
}

// EpochsLive returns how many epochs are unreclaimed (current plus those
// pinned by readers).
func (g *Graph) EpochsLive() int64 { return g.epochsLive.Load() }

// Close closes the WAL. Outstanding epochs stay readable; further Applies
// fail with ErrClosed.
func (g *Graph) Close() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil
	}
	g.closed = true
	return g.w.close()
}

func (g *Graph) reclaim() {
	g.epochsLive.Add(-1)
	if g.gLive != nil {
		g.gLive.Set(g.epochsLive.Load())
	}
}

// publishGauges refreshes the epoch gauges; callers hold g.mu.
func (g *Graph) publishGauges() {
	if g.gEpoch == nil {
		return
	}
	g.gEpoch.Set(int64(g.cur.id))
	g.gLive.Set(g.epochsLive.Load())
	g.gWALBytes.Set(g.w.size)
	g.gLastT.Set(int64(g.cur.lastT))
}
