// Package ref provides brute-force reference implementations ("oracles")
// used to validate the ICM algorithms and the baseline platforms: classic
// sequential graph algorithms per snapshot for the time-independent family,
// and time-expanded searches for the time-dependent family. They are written
// for obviousness, not speed.
package ref

import (
	"math"

	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// Unreachable mirrors algorithms.Unreachable for oracle outputs.
const Unreachable = int64(math.MaxInt64)

// adjacencyAt materializes the snapshot's out-adjacency as dense indices;
// inactive vertices get nil rows.
func adjacencyAt(g *tgraph.Graph, t ival.Time) [][]int {
	adj := make([][]int, g.NumVertices())
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		if !e.Lifespan.Contains(t) {
			continue
		}
		u, v := g.IndexOf(e.Src), g.IndexOf(e.Dst)
		adj[u] = append(adj[u], v)
	}
	return adj
}

// BFSLevels returns per-vertex BFS levels in snapshot t from source
// (Unreachable when not reached or inactive).
func BFSLevels(g *tgraph.Graph, t ival.Time, source tgraph.VertexID) []int64 {
	n := g.NumVertices()
	out := make([]int64, n)
	for i := range out {
		out[i] = Unreachable
	}
	s := g.IndexOf(source)
	if s < 0 || !g.VertexAt(s).Lifespan.Contains(t) {
		return out
	}
	adj := adjacencyAt(g, t)
	out[s] = 0
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if out[v] == Unreachable {
				out[v] = out[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return out
}

// WCCLabels returns per-vertex weakly-connected-component labels in
// snapshot t; the label is the minimum vertex id in the component.
// Inactive vertices get Unreachable.
func WCCLabels(g *tgraph.Graph, t ival.Time) []int64 {
	n := g.NumVertices()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		if e.Lifespan.Contains(t) {
			union(g.IndexOf(e.Src), g.IndexOf(e.Dst))
		}
	}
	// Minimum active id per root.
	minID := map[int]int64{}
	for v := 0; v < n; v++ {
		if !g.VertexAt(v).Lifespan.Contains(t) {
			continue
		}
		r := find(v)
		id := int64(g.VertexAt(v).ID)
		if cur, ok := minID[r]; !ok || id < cur {
			minID[r] = id
		}
	}
	out := make([]int64, n)
	for v := 0; v < n; v++ {
		if !g.VertexAt(v).Lifespan.Contains(t) {
			out[v] = Unreachable
			continue
		}
		out[v] = minID[find(v)]
	}
	return out
}

// SCCLabels returns per-vertex strongly-connected-component labels in
// snapshot t via Tarjan's algorithm; the label is the maximum vertex id in
// the component (matching the coloring algorithm's naming). Inactive
// vertices get -1.
func SCCLabels(g *tgraph.Graph, t ival.Time) []int64 {
	n := g.NumVertices()
	adj := adjacencyAt(g, t)
	active := make([]bool, n)
	for v := 0; v < n; v++ {
		active[v] = g.VertexAt(v).Lifespan.Contains(t)
	}

	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = -1
	}
	var stack []int
	counter := 0
	ncomp := 0

	// Iterative Tarjan to survive deep road-network recursions.
	type frame struct{ v, ei int }
	for root := 0; root < n; root++ {
		if !active[root] || index[root] != unvisited {
			continue
		}
		frames := []frame{{root, 0}}
		index[root], low[root] = counter, counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if !active[w] {
					continue
				}
				if index[w] == unvisited {
					index[w], low[w] = counter, counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	// Name each component by its maximum vertex id.
	maxID := make([]int64, ncomp)
	for i := range maxID {
		maxID[i] = -1
	}
	for v := 0; v < n; v++ {
		if comp[v] >= 0 {
			if id := int64(g.VertexAt(v).ID); id > maxID[comp[v]] {
				maxID[comp[v]] = id
			}
		}
	}
	out := make([]int64, n)
	for v := 0; v < n; v++ {
		if comp[v] < 0 {
			out[v] = -1
			continue
		}
		out[v] = maxID[comp[v]]
	}
	return out
}

// PageRank runs the plain power iteration on snapshot t with the same
// conventions as the ICM implementation: N is the total vertex count,
// inactive vertices hold no rank, dangling mass is not redistributed.
func PageRank(g *tgraph.Graph, t ival.Time, iterations int, damping float64) []float64 {
	n := g.NumVertices()
	adj := adjacencyAt(g, t)
	active := make([]bool, n)
	for v := 0; v < n; v++ {
		active[v] = g.VertexAt(v).Lifespan.Contains(t)
	}
	rank := make([]float64, n)
	for v := range rank {
		if active[v] {
			rank[v] = 1 / float64(n)
		}
	}
	for it := 0; it < iterations; it++ {
		next := make([]float64, n)
		for v := 0; v < n; v++ {
			if active[v] {
				next[v] = (1 - damping) / float64(n)
			}
		}
		for u := 0; u < n; u++ {
			if !active[u] || len(adj[u]) == 0 {
				continue
			}
			share := damping * rank[u] / float64(len(adj[u]))
			for _, v := range adj[u] {
				next[v] += share
			}
		}
		rank = next
	}
	return rank
}

// Closures returns, per vertex w, the number of (u→v, v→w, w→u) instance
// triples alive in snapshot t that w closes; the graph-wide directed
// 3-cycle count is the sum divided by 3.
func Closures(g *tgraph.Graph, t ival.Time) []int64 {
	n := g.NumVertices()
	adj := adjacencyAt(g, t)
	out := make([]int64, n)
	for u := 0; u < n; u++ {
		for _, v := range adj[u] {
			if v == u {
				continue
			}
			for _, w := range adj[v] {
				if w == u || w == v {
					continue
				}
				for _, x := range adj[w] {
					if x == u {
						out[w]++
					}
				}
			}
		}
	}
	return out
}

// LCCCounts returns, per vertex u, the number of closed wedge instance
// pairs (u→a, a→b alive, with any u→b alive counted per instance) and u's
// out-degree (edge instances) in snapshot t.
func LCCCounts(g *tgraph.Graph, t ival.Time) (counts []int64, degs []int64) {
	n := g.NumVertices()
	adj := adjacencyAt(g, t)
	counts = make([]int64, n)
	degs = make([]int64, n)
	for u := 0; u < n; u++ {
		degs[u] = int64(len(adj[u]))
		for _, a := range adj[u] {
			if a == u {
				continue
			}
			for _, b := range adj[a] {
				if b == u {
					continue
				}
				// One closure per u→b edge instance.
				for _, x := range adj[u] {
					if x == b {
						counts[u]++
					}
				}
			}
		}
	}
	return counts, degs
}

// FeedForwardMotifs counts temporal feed-forward triangles: ordered edge
// instance triples (u→v, v→w, u→w) usable at strictly increasing times
// t1 < t2 < t3 inside the respective lifespans. Greedy earliest choices
// decide feasibility exactly because the constraints are monotone.
func FeedForwardMotifs(g *tgraph.Graph) int64 {
	var count int64
	for e1i := 0; e1i < g.NumEdges(); e1i++ {
		e1 := g.Edge(e1i)
		u, v := g.SrcIndex(e1i), g.DstIndex(e1i)
		if u == v {
			continue
		}
		t1 := e1.Lifespan.Start
		for _, e2ix := range g.OutEdges(v) {
			e2 := g.Edge(int(e2ix))
			w := g.DstIndex(int(e2ix))
			if w == u || w == v {
				continue
			}
			t2 := e2.Lifespan.Start
			if t1+1 > t2 {
				t2 = t1 + 1
			}
			if t2 >= e2.Lifespan.End {
				continue
			}
			for _, e3ix := range g.OutEdges(u) {
				if g.DstIndex(int(e3ix)) != w {
					continue
				}
				e3 := g.Edge(int(e3ix))
				t3 := e3.Lifespan.Start
				if t2+1 > t3 {
					t3 = t2 + 1
				}
				if t3 < e3.Lifespan.End {
					count++
				}
			}
		}
	}
	return count
}
