package ref

import (
	"testing"

	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// loopGraph builds a small graph with a directed cycle and a pendant, with
// hand-checkable answers: 0→1→2→0 plus 2→3, all alive [0,4), travel time 1,
// cost 2.
func loopGraph(t *testing.T) *tgraph.Graph {
	t.Helper()
	b := tgraph.NewBuilder(4, 4)
	for v := tgraph.VertexID(0); v < 4; v++ {
		b.AddVertex(v, ival.New(0, 8))
	}
	add := func(id tgraph.EdgeID, s, d tgraph.VertexID) {
		b.AddEdge(id, s, d, ival.New(0, 4))
		b.SetEdgeProp(id, tgraph.PropTravelTime, ival.New(0, 4), 1)
		b.SetEdgeProp(id, tgraph.PropTravelCost, ival.New(0, 4), 2)
	}
	add(0, 0, 1)
	add(1, 1, 2)
	add(2, 2, 0)
	add(3, 2, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBFSLevelsHandChecked(t *testing.T) {
	g := loopGraph(t)
	got := BFSLevels(g, 1, 0)
	want := []int64{0, 1, 2, 3}
	for v := range want {
		if got[v] != want[v] {
			t.Errorf("level[%d] = %d, want %d", v, got[v], want[v])
		}
	}
	// After the edges die, only the source is reachable.
	got = BFSLevels(g, 5, 0)
	if got[0] != 0 || got[1] != Unreachable {
		t.Errorf("post-death levels wrong: %v", got)
	}
}

func TestWCCAndSCCHandChecked(t *testing.T) {
	g := loopGraph(t)
	wcc := WCCLabels(g, 0)
	for v := 0; v < 4; v++ {
		if wcc[v] != 0 {
			t.Errorf("wcc[%d] = %d, want 0", v, wcc[v])
		}
	}
	scc := SCCLabels(g, 0)
	// 0,1,2 form a cycle named by max id 2; 3 is its own component.
	if scc[0] != 2 || scc[1] != 2 || scc[2] != 2 || scc[3] != 3 {
		t.Errorf("scc = %v, want [2 2 2 3]", scc)
	}
	// At t=6 there are no edges: everyone is a singleton.
	scc = SCCLabels(g, 6)
	for v := int64(0); v < 4; v++ {
		if scc[v] != v {
			t.Errorf("singleton scc[%d] = %d", v, scc[v])
		}
	}
}

func TestPageRankMassConservation(t *testing.T) {
	g := loopGraph(t)
	ranks := PageRank(g, 1, 10, 0.85)
	// Vertex 3 is a sink (out-degree 0): mass leaks, so the total is < 1
	// but every rank is positive and 3 beats nothing upstream of it.
	var sum float64
	for _, r := range ranks {
		if r <= 0 {
			t.Fatalf("non-positive rank: %v", ranks)
		}
		sum += r
	}
	if sum > 1.0001 {
		t.Errorf("rank mass exceeds 1: %f", sum)
	}
}

func TestClosuresHandChecked(t *testing.T) {
	g := loopGraph(t)
	c := Closures(g, 0)
	// The directed 3-cycle 0→1→2→0 is closed once at each rotation end.
	if c[0] != 1 || c[1] != 1 || c[2] != 1 || c[3] != 0 {
		t.Errorf("closures = %v, want [1 1 1 0]", c)
	}
	counts, degs := LCCCounts(g, 0)
	// Vertex 2 has out-neighbors {0, 3}: wedge 2→0→1 is not closed (2→1
	// absent); no ordered pair of 2's neighbors is connected.
	if counts[2] != 0 || degs[2] != 2 {
		t.Errorf("lcc[2] = %d/%d", counts[2], degs[2])
	}
	// Vertex 1 has a single out-neighbor: no wedges.
	if counts[1] != 0 || degs[1] != 1 {
		t.Errorf("lcc[1] = %d/%d", counts[1], degs[1])
	}
}

func TestTemporalSSSPHandChecked(t *testing.T) {
	g := loopGraph(t)
	d := SSSP(g, 0, 0)
	// 0→1 departs at 0, arrives 1 at cost 2; by t=1 cost at vertex 1 is 2.
	if d.Cost[1][1] != 2 {
		t.Errorf("cost[1][1] = %d, want 2", d.Cost[1][1])
	}
	if d.Cost[1][0] != Unreachable {
		t.Errorf("cost[1][0] should be unreachable, got %d", d.Cost[1][0])
	}
	// 3 via 0→1→2→3: arrive 3, cost 6.
	if d.Cost[3][3] != 6 {
		t.Errorf("cost[3][3] = %d, want 6", d.Cost[3][3])
	}
	eat := EAT(g, 0, 0)
	if eat[3] != 3 || eat[0] != 0 {
		t.Errorf("eat = %v", eat)
	}
	reach := Reachable(g, 0, 0)
	for v, r := range reach {
		if !r {
			t.Errorf("vertex %d should be reachable", v)
		}
	}
	// Starting at t=3: only the 0→1 hop fits before edges die.
	eat = EAT(g, 0, 3)
	if eat[1] != 4 || eat[2] != Unreachable {
		t.Errorf("late-start eat = %v", eat)
	}
}

func TestFastestHandChecked(t *testing.T) {
	g := loopGraph(t)
	f := Fastest(g, 0, 0)
	// No waiting needed: durations equal hop counts.
	want := []int64{0, 1, 2, 3}
	for v := range want {
		if f[v] != want[v] {
			t.Errorf("fastest[%d] = %d, want %d", v, f[v], want[v])
		}
	}
}

func TestLatestDepartureHandChecked(t *testing.T) {
	g := loopGraph(t)
	ld := LatestDeparture(g, 3, 8)
	// Vertex 2 can depart directly up to t=3 (edge alive [0,4)).
	if ld[2] != 3 {
		t.Errorf("ld[2] = %d, want 3", ld[2])
	}
	// Vertex 0 needs 3 hops of tt 1: depart <= 1.
	if ld[0] != 1 {
		t.Errorf("ld[0] = %d, want 1", ld[0])
	}
	// The target itself is valid until just before the deadline (clipped
	// to its lifespan).
	if ld[3] != 7 {
		t.Errorf("ld[3] = %d, want 7", ld[3])
	}
	// With deadline 2, nothing can arrive in time except trivially.
	ld = LatestDeparture(g, 3, 2)
	if ld[0] != -1 || ld[3] != 1 {
		t.Errorf("tight-deadline ld = %v", ld)
	}
}

func TestExpandedHorizon(t *testing.T) {
	g := loopGraph(t)
	if h := ExpandedHorizon(g); h <= g.Horizon() {
		t.Errorf("expanded horizon %d should exceed %d", h, g.Horizon())
	}
}
