package ref

import (
	"container/heap"

	ival "graphite/internal/interval"
	"graphite/internal/tgraph"
)

// TemporalDistances holds a time-expanded search result: Cost[v][t] is the
// minimum travel cost of a time-respecting journey from the source that has
// arrived at v by time t (waiting is free), for t in [0, Tmax).
type TemporalDistances struct {
	Tmax ival.Time
	Cost [][]int64
}

// maxTravelTime scans the travel-time property for its largest value.
func maxTravelTime(g *tgraph.Graph) int64 {
	max := int64(1)
	for i := 0; i < g.NumEdges(); i++ {
		for _, p := range g.Edge(i).Props.Entries(tgraph.PropTravelTime) {
			if p.Value > max {
				max = p.Value
			}
		}
	}
	return max
}

// ExpandedHorizon returns the time bound used by the time-expanded oracles:
// beyond it, nothing in the graph changes and no new arrival can occur.
func ExpandedHorizon(g *tgraph.Graph) ival.Time {
	return g.Horizon() + maxTravelTime(g) + 1
}

// item is a (cost, vertex, time) entry in the Dijkstra frontier.
type item struct {
	cost int64
	v    int
	t    ival.Time
}

type pq []item

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].cost < q[j].cost }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(item)) }
func (q *pq) Pop() any          { old := *q; n := len(old); x := old[n-1]; *q = old[:n-1]; return x }

// SSSP runs Dijkstra over the time-expanded graph: nodes are (vertex,
// time-point) pairs clipped to vertex lifespans; waiting edges cost 0 and
// travel edges cost the travel-cost property at the departure time.
func SSSP(g *tgraph.Graph, source tgraph.VertexID, startTime ival.Time) *TemporalDistances {
	n := g.NumVertices()
	tmax := ExpandedHorizon(g)
	d := &TemporalDistances{Tmax: tmax, Cost: make([][]int64, n)}
	for v := range d.Cost {
		d.Cost[v] = make([]int64, tmax)
		for t := range d.Cost[v] {
			d.Cost[v][t] = Unreachable
		}
	}
	s := g.IndexOf(source)
	if s < 0 {
		return d
	}
	var q pq
	relax := func(v int, t ival.Time, c int64) {
		if t >= tmax || !g.VertexAt(v).Lifespan.Contains(t) {
			return
		}
		if c < d.Cost[v][t] {
			d.Cost[v][t] = c
			heap.Push(&q, item{cost: c, v: v, t: t})
		}
	}
	// A journey begins when the source exists, at or after startTime.
	if ls := g.VertexAt(s).Lifespan; startTime < ls.Start {
		startTime = ls.Start
	}
	relax(s, startTime, 0)
	for q.Len() > 0 {
		it := heap.Pop(&q).(item)
		if it.cost > d.Cost[it.v][it.t] {
			continue
		}
		// Wait one unit.
		relax(it.v, it.t+1, it.cost)
		// Depart now over every alive out-edge.
		for _, ei := range g.OutEdges(it.v) {
			e := g.Edge(int(ei))
			if !e.Lifespan.Contains(it.t) {
				continue
			}
			tt, ok1 := e.Props.ValueAt(tgraph.PropTravelTime, it.t)
			tc, ok2 := e.Props.ValueAt(tgraph.PropTravelCost, it.t)
			if !ok1 || !ok2 {
				continue
			}
			relax(g.IndexOf(e.Dst), it.t+tt, it.cost+tc)
		}
	}
	return d
}

// EAT returns the earliest arrival time per vertex, or Unreachable.
func EAT(g *tgraph.Graph, source tgraph.VertexID, startTime ival.Time) []int64 {
	d := SSSP(g, source, startTime)
	out := make([]int64, g.NumVertices())
	for v := range out {
		out[v] = Unreachable
		for t := ival.Time(0); t < d.Tmax; t++ {
			if d.Cost[v][t] != Unreachable {
				out[v] = t
				break
			}
		}
	}
	return out
}

// Reachable returns per-vertex time-respecting reachability from the source.
func Reachable(g *tgraph.Graph, source tgraph.VertexID, startTime ival.Time) []bool {
	eat := EAT(g, source, startTime)
	out := make([]bool, len(eat))
	for v := range out {
		out[v] = eat[v] != Unreachable
	}
	return out
}

// Fastest returns the minimum journey duration (arrival − source departure)
// per vertex, trying every possible start time; the source itself gets 0.
func Fastest(g *tgraph.Graph, source tgraph.VertexID, startTime ival.Time) []int64 {
	n := g.NumVertices()
	out := make([]int64, n)
	for v := range out {
		out[v] = Unreachable
	}
	s := g.IndexOf(source)
	if s < 0 {
		return out
	}
	out[s] = 0
	horizon := g.Horizon()
	for s0 := startTime; s0 <= horizon; s0++ {
		if !g.VertexAt(s).Lifespan.Contains(s0) {
			continue
		}
		eat := EAT(g, source, s0)
		for v := range out {
			if v == s || eat[v] == Unreachable {
				continue
			}
			if dur := eat[v] - s0; dur < out[v] {
				out[v] = dur
			}
		}
	}
	return out
}

// LatestDeparture returns, per vertex, the latest time-point at which one
// can be present and still reach target before deadline (exclusive), or -1.
// Backward induction over the time-expanded graph.
func LatestDeparture(g *tgraph.Graph, target tgraph.VertexID, deadline ival.Time) []int64 {
	n := g.NumVertices()
	tmax := ExpandedHorizon(g)
	if deadline <= 0 || deadline > tmax {
		deadline = tmax
	}
	tgt := g.IndexOf(target)
	valid := make([][]bool, n)
	for v := range valid {
		valid[v] = make([]bool, tmax+1)
	}
	for t := tmax - 1; t >= 0; t-- {
		for v := 0; v < n; v++ {
			if !g.VertexAt(v).Lifespan.Contains(t) {
				continue
			}
			if v == tgt && t < deadline {
				valid[v][t] = true
				continue
			}
			// Wait (stay alive at t+1) or depart along an alive edge.
			if g.VertexAt(v).Lifespan.Contains(t+1) && valid[v][t+1] {
				valid[v][t] = true
				continue
			}
			for _, ei := range g.OutEdges(v) {
				e := g.Edge(int(ei))
				if !e.Lifespan.Contains(t) {
					continue
				}
				tt, ok := e.Props.ValueAt(tgraph.PropTravelTime, t)
				if !ok {
					continue
				}
				at := t + tt
				w := g.IndexOf(e.Dst)
				if at < tmax && valid[w][at] {
					valid[v][t] = true
					break
				}
			}
		}
	}
	out := make([]int64, n)
	for v := range out {
		out[v] = -1
		for t := tmax - 1; t >= 0; t-- {
			if valid[v][t] {
				out[v] = t
				break
			}
		}
	}
	return out
}
