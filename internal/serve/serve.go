// Package serve is the temporal graph query service: a resident server that
// loads temporal graphs once and answers concurrent algorithm requests
// against them over a JSON HTTP API, the layer graphite adds over an
// interval-centric runtime.
//
// Every request flows through the same pipeline:
//
//	prepare   — resolve the graph, canonicalize algorithm + params + window,
//	            compute the request fingerprint;
//	cache     — an LRU over finished results keyed by fingerprint, so
//	            repeated or overlapping requests skip BSP entirely;
//	flight    — singleflight dedup: concurrent identical requests share one
//	            run, the stragglers wait on the leader's result;
//	admission — a bounded executor: at most MaxConcurrent runs execute while
//	            up to QueueDepth more wait; beyond that the request is
//	            rejected immediately with ErrBusy (HTTP 429);
//	run       — the BSP run itself, under a context that merges the request
//	            deadline with the server's lifetime so timeouts, disconnects
//	            and shutdown all abort at the next superstep barrier as
//	            engine.ErrCanceled.
//
// The server is instrumented end to end through internal/obs: per-endpoint
// request counters and latency histograms, cache hit/miss counters, queue and
// in-flight gauges, and an optional per-run tracer attachment. Everything is
// visible on /debug/vars next to /debug/pprof.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"time"

	"graphite/internal/algorithms"
	"graphite/internal/core"
	"graphite/internal/engine"
	ival "graphite/internal/interval"
	"graphite/internal/live"
	"graphite/internal/obs"
	"graphite/internal/tgraph"
	"sync"
)

// Typed service errors; the HTTP layer maps them to status codes.
var (
	// ErrBadRequest marks malformed or semantically invalid requests (400).
	ErrBadRequest = errors.New("serve: bad request")
	// ErrUnknownGraph is returned for a graph name the server did not load (404).
	ErrUnknownGraph = errors.New("serve: unknown graph")
	// ErrUnknownJob is returned for an absent job id (404).
	ErrUnknownJob = errors.New("serve: unknown job")
	// ErrBusy is the admission-control rejection: the executor queue is full (429).
	ErrBusy = errors.New("serve: executor queue full")
	// ErrDraining rejects new work while the server drains for shutdown (503).
	ErrDraining = errors.New("serve: server draining")
)

// Registry names the serving layer publishes; everything else the server
// records is per-endpoint ("serve.http.<name>.requests" / ".errors" /
// ".latency_ns").
const (
	CCacheHits        = "serve.cache.hits"
	CCacheMisses      = "serve.cache.misses"
	GCacheSize        = "serve.cache.size"
	CFlightDedup      = "serve.flight.dedup"
	CRunsExecuted     = "serve.runs.executed"
	CRunsCanceled     = "serve.runs.canceled"
	CRunsFailed       = "serve.runs.failed"
	CRejectedBusy     = "serve.rejected.busy"
	CRejectedDraining = "serve.rejected.draining"
	GRunsInflight     = "serve.runs.inflight"
	GQueueDepth       = "serve.queue.depth"
	GJobsActive       = "serve.jobs.active"
	CJobsSubmitted    = "serve.jobs.submitted"
	HRunLatencyNS     = "serve.run.latency_ns"
	CSeedHits         = "serve.seed.hits"
	CSeedStores       = "serve.seed.stores"
	GSeedSize         = "serve.seed.size"
)

// Defaults for zero Config fields.
const (
	DefaultQueueDepth = 64
	DefaultCacheSize  = 128
	DefaultTimeout    = 30 * time.Second
	DefaultMaxJobs    = 256
)

// Config parameterizes a Server.
type Config struct {
	// Graphs are the pre-loaded temporal graphs the server answers queries
	// against, by name. At least one graph — static or live — is required.
	Graphs map[string]*tgraph.Graph
	// Live are WAL-backed mutable graphs, by name (disjoint from Graphs).
	// Queries run against immutable epoch snapshots acquired per request;
	// POST /v1/graphs/{id}/events appends mutation batches. A live graph may
	// start empty and grow entirely through the API.
	Live map[string]*live.Graph
	// MaxConcurrent bounds simultaneously executing BSP runs; zero means
	// GOMAXPROCS.
	MaxConcurrent int
	// QueueDepth bounds runs waiting for an executor slot beyond
	// MaxConcurrent; a request arriving past that is rejected with ErrBusy.
	// Zero means DefaultQueueDepth.
	QueueDepth int
	// CacheSize is the result-cache capacity in entries; zero means
	// DefaultCacheSize, negative disables caching.
	CacheSize int
	// RequestTimeout is the per-request deadline applied when a request
	// carries none; zero means DefaultTimeout.
	RequestTimeout time.Duration
	// MaxJobs caps retained async jobs (finished jobs are evicted oldest
	// first past the cap); zero means DefaultMaxJobs.
	MaxJobs int
	// Workers is the BSP worker count per run when a request does not choose
	// one; zero means GOMAXPROCS. Worker count never affects results, only
	// execution, so it is not part of the cache fingerprint.
	Workers int
	// Registry receives the serving-layer metrics; nil creates a private one.
	Registry *obs.Registry
	// RunTracer, when set, is invoked once per executed (non-cached,
	// non-deduped) run and may return a tracer to attach to it — the seam for
	// per-run JSONL traces or sampling. span is the run-scoped span ID the
	// run will carry (minted at admission unless the client sent one), so
	// trace sinks can be named by it. Returning nil leaves the run untraced.
	RunTracer func(graph, algo, fingerprint, span string) obs.Tracer
	// Ready, when set, gates readiness beyond draining: a non-nil error
	// marks the server not ready (503 on /readyz, with the error as the
	// reason) without affecting liveness — the seam for fronting a cluster
	// coordinator that is below worker quorum or mid-recovery.
	Ready func() error
}

// Server is a resident temporal graph query service. Create with New, expose
// with Handler, stop with Drain (graceful) and/or Close.
type Server struct {
	cfg        Config
	reg        *obs.Registry
	graphs     map[string]*tgraph.Graph
	liveGraphs map[string]*live.Graph
	names      []string // sorted graph names, static and live

	cache *resultCache
	seeds *seedCache
	jobs  *jobStore

	flightMu sync.Mutex
	flight   map[string]*call

	// Admission state: reserved counts leaders holding an executor ticket
	// (running or queued); draining rejects new reservations and drainCh
	// waiters are closed when the last ticket is released.
	admMu       sync.Mutex
	reserved    int
	maxAdmitted int
	draining    bool
	drainCh     []chan struct{}

	sem chan struct{} // executor slots, cap MaxConcurrent

	root      context.Context // canceled by Close: aborts every running job
	stop      context.CancelFunc
	closeOnce sync.Once

	m serveMetrics
}

type serveMetrics struct {
	cacheHits, cacheMisses         *obs.Counter
	dedup                          *obs.Counter
	executed, canceled, failed     *obs.Counter
	rejectedBusy, rejectedDraining *obs.Counter
	jobsSubmitted                  *obs.Counter
	seedHits, seedStores           *obs.Counter
	cacheSize, inflight, queued    *obs.Gauge
	jobsActive, seedSize           *obs.Gauge
	runLatency                     *obs.Histogram
}

// call is one in-flight singleflight run: the leader executes, completes the
// call and closes done; joiners wait on done.
type call struct {
	owns bool // registered in the flight map (cacheable request)
	done chan struct{}
	res  *RunResult
	err  error
}

// New builds a Server over the given pre-loaded graphs.
func New(cfg Config) (*Server, error) {
	if len(cfg.Graphs) == 0 && len(cfg.Live) == 0 {
		return nil, fmt.Errorf("%w: no graphs configured", ErrBadRequest)
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	switch {
	case cfg.CacheSize == 0:
		cfg.CacheSize = DefaultCacheSize
	case cfg.CacheSize < 0:
		cfg.CacheSize = 0
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultTimeout
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = DefaultMaxJobs
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	root, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:         cfg,
		reg:         reg,
		graphs:      make(map[string]*tgraph.Graph, len(cfg.Graphs)),
		liveGraphs:  make(map[string]*live.Graph, len(cfg.Live)),
		cache:       newResultCache(cfg.CacheSize),
		seeds:       newSeedCache(cfg.CacheSize),
		flight:      map[string]*call{},
		maxAdmitted: cfg.MaxConcurrent + cfg.QueueDepth,
		sem:         make(chan struct{}, cfg.MaxConcurrent),
		root:        root,
		stop:        stop,
	}
	for name, g := range cfg.Graphs {
		if g == nil || g.NumVertices() == 0 {
			return nil, fmt.Errorf("%w: graph %q is empty", ErrBadRequest, name)
		}
		s.graphs[name] = g
		s.names = append(s.names, name)
	}
	// Live graphs, unlike static ones, may legitimately be empty at startup:
	// they grow through the events endpoint. Queries against a still-empty
	// epoch are rejected per request instead.
	for name, lg := range cfg.Live {
		if lg == nil {
			return nil, fmt.Errorf("%w: live graph %q is nil", ErrBadRequest, name)
		}
		if _, dup := s.graphs[name]; dup {
			return nil, fmt.Errorf("%w: graph %q configured both static and live", ErrBadRequest, name)
		}
		s.liveGraphs[name] = lg
		s.names = append(s.names, name)
	}
	sort.Strings(s.names)
	s.m = serveMetrics{
		cacheHits:        reg.Counter(CCacheHits),
		cacheMisses:      reg.Counter(CCacheMisses),
		dedup:            reg.Counter(CFlightDedup),
		executed:         reg.Counter(CRunsExecuted),
		canceled:         reg.Counter(CRunsCanceled),
		failed:           reg.Counter(CRunsFailed),
		rejectedBusy:     reg.Counter(CRejectedBusy),
		rejectedDraining: reg.Counter(CRejectedDraining),
		jobsSubmitted:    reg.Counter(CJobsSubmitted),
		seedHits:         reg.Counter(CSeedHits),
		seedStores:       reg.Counter(CSeedStores),
		seedSize:         reg.Gauge(GSeedSize),
		cacheSize:        reg.Gauge(GCacheSize),
		inflight:         reg.Gauge(GRunsInflight),
		queued:           reg.Gauge(GQueueDepth),
		jobsActive:       reg.Gauge(GJobsActive),
		runLatency:       reg.Histogram(HRunLatencyNS),
	}
	s.jobs = newJobStore(cfg.MaxJobs, s.m.jobsActive, s.m.jobsSubmitted)
	return s, nil
}

// Registry returns the registry the server publishes its metrics into.
func (s *Server) Registry() *obs.Registry { return s.reg }

// GraphNames lists the loaded graphs, sorted.
func (s *Server) GraphNames() []string { return append([]string(nil), s.names...) }

// prepared is a request resolved to canonical form: the semantic identity of
// the run, plus everything the executor needs to start it.
type prepared struct {
	graphName string
	algo      string
	g         *tgraph.Graph
	params    map[string]int64
	explicit  map[string]bool // params the caller actually sent, for validation
	window    ival.Interval
	workers   int
	fp        string
	span      string
	noCache   bool

	// Live-graph resolution. gver is the graph identity the fingerprint is
	// computed over: "name@effectiveEpoch" for a live graph, so mutation
	// batches that can affect the window retire its cache entries while
	// untouched windows keep hitting. epoch pins the immutable snapshot g
	// reads from until close(); lg backs the at-use seed validity check.
	gver  string
	eff   uint64
	epoch *live.Epoch
	lg    *live.Graph

	releaseOnce sync.Once
}

// close releases the prepared request's epoch reference, if any; every path
// out of Execute/Submit must reach it exactly once (it is idempotent).
func (p *prepared) close() {
	if p.epoch != nil {
		p.releaseOnce.Do(p.epoch.Release)
	}
}

// prepare canonicalizes a request and computes its fingerprint. It performs
// no graph work beyond name resolution (for a live graph: acquiring the
// current epoch snapshot), so rejects are cheap.
func (s *Server) prepare(req *RunRequest) (*prepared, error) {
	g, ok := s.graphs[req.Graph]
	lg := s.liveGraphs[req.Graph]
	if !ok && lg == nil {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownGraph, req.Graph, s.names)
	}
	algo, err := CanonicalAlgo(req.Algorithm)
	if err != nil {
		return nil, err
	}
	params, err := normalizeParams(req.Params)
	if err != nil {
		return nil, err
	}
	window, err := normalizeWindow(req.Window)
	if err != nil {
		return nil, err
	}
	explicit := make(map[string]bool, len(req.Params))
	for k := range req.Params {
		explicit[k] = true
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.Workers
	}
	// Every admitted request carries a run-scoped span ID: the client's, or
	// one minted here. The span is observability identity, not semantic
	// identity — it is deliberately NOT part of the fingerprint, and a
	// cached or deduplicated response reports the span of the run that
	// actually produced the result.
	span := req.Span
	if span == "" {
		span = obs.NewSpanID()
	}
	p := &prepared{
		graphName: req.Graph,
		algo:      algo,
		g:         g,
		params:    params,
		explicit:  explicit,
		window:    window,
		workers:   workers,
		span:      span,
		noCache:   req.NoCache,
		gver:      req.Graph,
	}
	if lg != nil {
		// Acquire last, after every rejectable check: no error path below
		// this point may leak the epoch reference.
		ep, eff := lg.AcquireEffective(window)
		p.g, p.epoch, p.lg, p.eff = ep.Graph(), ep, lg, eff
		p.gver = fmt.Sprintf("%s@%d", req.Graph, eff)
	}
	p.fp = Fingerprint(p.gver, algo, params, window)
	return p, nil
}

// admission is begin's verdict: exactly one field is set.
type admission struct {
	cached *RunResult // result already in the cache
	joined *call      // identical run in flight: wait on it
	lead   *call      // this caller runs; it holds an executor ticket
}

// begin resolves a prepared request against the cache, the flight map and
// admission control, in that order. Cache hits and singleflight joins are
// free: only leaders consume executor tickets, so duplicate traffic cannot
// exhaust the queue. A returned lead call obligates the caller to finish()
// it (which also releases the ticket).
func (s *Server) begin(p *prepared, noCache bool) (admission, error) {
	if !noCache {
		if res, ok := s.cache.get(p.fp); ok {
			s.m.cacheHits.Inc()
			return admission{cached: res}, nil
		}
	}
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	if !noCache {
		if c, ok := s.flight[p.fp]; ok {
			s.m.dedup.Inc()
			return admission{joined: c}, nil
		}
	}
	if err := s.reserve(); err != nil {
		return admission{}, err
	}
	c := &call{owns: !noCache, done: make(chan struct{})}
	if c.owns {
		s.flight[p.fp] = c
		s.m.cacheMisses.Inc()
	}
	return admission{lead: c}, nil
}

// finish completes a leader's call: publish the result to the cache, wake the
// joiners, release the executor ticket.
func (s *Server) finish(p *prepared, c *call, res *RunResult, err error) {
	if err == nil && c.owns {
		s.cache.put(p.fp, res)
		s.m.cacheSize.Set(int64(s.cache.len()))
	}
	s.flightMu.Lock()
	c.res, c.err = res, err
	if c.owns {
		delete(s.flight, p.fp)
	}
	s.flightMu.Unlock()
	close(c.done)
	s.release()
}

// reserve claims one executor ticket (run or queue slot) or rejects.
func (s *Server) reserve() error {
	s.admMu.Lock()
	defer s.admMu.Unlock()
	if s.draining {
		s.m.rejectedDraining.Inc()
		return ErrDraining
	}
	if s.reserved >= s.maxAdmitted {
		s.m.rejectedBusy.Inc()
		return ErrBusy
	}
	s.reserved++
	return nil
}

// release returns a ticket and wakes drain waiters on the last one.
func (s *Server) release() {
	s.admMu.Lock()
	s.reserved--
	var wake []chan struct{}
	if s.reserved == 0 && s.draining {
		wake, s.drainCh = s.drainCh, nil
	}
	s.admMu.Unlock()
	for _, ch := range wake {
		close(ch)
	}
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool {
	s.admMu.Lock()
	defer s.admMu.Unlock()
	return s.draining
}

// Drain begins a graceful shutdown: new runs are rejected with ErrDraining
// while in-flight and queued runs execute to completion. It returns once the
// last executor ticket is released, or with ctx's error if the grace period
// expires first (the caller then typically Closes to hard-abort).
func (s *Server) Drain(ctx context.Context) error {
	s.admMu.Lock()
	s.draining = true
	if s.reserved == 0 {
		s.admMu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	s.drainCh = append(s.drainCh, ch)
	s.admMu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close hard-stops the server: new work is rejected and the lifetime context
// is canceled, which aborts every running job at its next superstep barrier.
// It waits for the executor to empty before returning.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.admMu.Lock()
		s.draining = true
		s.admMu.Unlock()
		s.stop()
		_ = s.Drain(context.Background())
	})
	return nil
}

// Execute answers one request synchronously: through the cache, deduplicated
// against identical in-flight runs, or by running BSP under ctx. The typed
// errors (ErrBusy, ErrDraining, ErrBadRequest, ErrUnknownGraph,
// engine.ErrCanceled) describe every non-success outcome.
func (s *Server) Execute(ctx context.Context, req *RunRequest) (*RunResult, error) {
	p, err := s.prepare(req)
	if err != nil {
		return nil, err
	}
	defer p.close()
	adm, err := s.begin(p, req.NoCache)
	if err != nil {
		return nil, err
	}
	switch {
	case adm.cached != nil:
		return cachedCopy(adm.cached), nil
	case adm.joined != nil:
		select {
		case <-adm.joined.done:
			if adm.joined.err != nil {
				return nil, adm.joined.err
			}
			return cachedCopy(adm.joined.res), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	default:
		res, err := s.runBSP(ctx, p)
		s.finish(p, adm.lead, res, err)
		return res, err
	}
}

// runBSP waits for an executor slot, then executes the prepared run under a
// context that additionally aborts when the server closes. Slicing to the
// request window, parameter validation against the (possibly sliced) graph,
// and result shaping all happen here, on the executor's time.
func (s *Server) runBSP(ctx context.Context, p *prepared) (*RunResult, error) {
	s.m.queued.Add(1)
	select {
	case s.sem <- struct{}{}:
		s.m.queued.Add(-1)
	case <-ctx.Done():
		s.m.queued.Add(-1)
		return nil, ctx.Err()
	case <-s.root.Done():
		s.m.queued.Add(-1)
		return nil, ErrDraining
	}
	defer func() { <-s.sem }()
	s.m.inflight.Add(1)
	defer s.m.inflight.Add(-1)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := context.AfterFunc(s.root, cancel)
	defer stop()

	g := p.g
	if g.NumVertices() == 0 {
		// Only a live graph can be empty (New rejects empty static graphs):
		// no events have been ingested yet.
		return nil, fmt.Errorf("%w: graph %q is empty at epoch %d (no events ingested)",
			ErrBadRequest, p.graphName, p.eff)
	}
	if p.window != ival.Universe {
		var err error
		g, err = tgraph.Slice(p.g, p.window)
		if err != nil {
			return nil, fmt.Errorf("%w: window %s: %v", ErrBadRequest, windowLabel(p.window), err)
		}
		if g.NumVertices() == 0 {
			return nil, fmt.Errorf("%w: window %s contains no vertices", ErrBadRequest, windowLabel(p.window))
		}
	}
	for _, k := range []string{"source", "target"} {
		if p.explicit[k] && g.IndexOf(tgraph.VertexID(p.params[k])) < 0 {
			return nil, fmt.Errorf("%w: %s vertex %d not in graph %q window %s",
				ErrBadRequest, k, p.params[k], p.graphName, windowLabel(p.window))
		}
	}
	prog, opts, err := algorithms.New(g, p.algo, algorithms.Params{
		Source:     tgraph.VertexID(p.params["source"]),
		Target:     tgraph.VertexID(p.params["target"]),
		StartTime:  ival.Time(p.params["start"]),
		Deadline:   ival.Time(p.params["deadline"]),
		Iterations: int(p.params["iterations"]),
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	opts.NumWorkers = p.workers
	// Incremental recomputation: when the request strictly extends a window a
	// prior seedable run answered — same graph, algorithm, params and window
	// start, graph unchanged below the prior end — start from that run's
	// terminal states instead of superstep zero. Results are bit-identical
	// either way (the differential tests in algorithms pin this), so seeding
	// is invisible to the cache; NoCache opts out for clean cold timings.
	skey := seedKey{graph: p.graphName, algo: p.algo, params: paramsKey(p.params), start: p.window.Start}
	seedable := algorithms.SupportsIncremental(p.algo)
	if seedable && !p.noCache {
		if e, ok := s.seeds.lookup(skey, p.window.End); ok && s.seedValid(p, e) {
			opts.SeedStates = core.SeedFromResult(g, e.res)
			s.m.seedHits.Inc()
		}
	}
	// Each run gets a private registry: engine.Metrics is a baseline-diff
	// view, which concurrent runs sharing a registry would corrupt. The
	// serving layer's own aggregates live in s.reg.
	opts.Registry = obs.NewRegistry()
	opts.Context = runCtx
	opts.Span = p.span
	if s.cfg.RunTracer != nil {
		if tr := s.cfg.RunTracer(p.graphName, p.algo, p.fp, p.span); tr != nil {
			opts.Tracer = tr
		}
	}

	start := time.Now()
	r, err := core.Run(g, prog, opts)
	s.m.runLatency.Observe(time.Since(start))
	if err != nil {
		if errors.Is(err, engine.ErrCanceled) {
			s.m.canceled.Inc()
			// Attribute the abort: a canceled runCtx with a live request
			// context means the server was shutting down.
			if ctx.Err() == nil && s.root.Err() != nil {
				return nil, fmt.Errorf("%w: %v", ErrDraining, err)
			}
		} else {
			s.m.failed.Inc()
		}
		return nil, err
	}
	s.m.executed.Inc()
	// Retain the terminal states for future window extensions. Unbounded
	// windows are never retained: nothing can extend past infinity.
	if seedable && !p.noCache && p.window.End != ival.Infinity {
		s.seeds.put(&seedEntry{key: skey, end: p.window.End, eff: p.eff, res: r})
		s.m.seedStores.Inc()
		s.m.seedSize.Set(int64(s.seeds.len()))
	}
	res := buildResult(p, r)
	res.Seeded = opts.SeedStates != nil
	return res, nil
}

// seedValid reports whether a retained run's graph still agrees with the
// request's snapshot below the retained window's end. Static graphs never
// change; for a live graph the retained effective epoch must still be the
// effective epoch of the retained window — evaluated against the latest
// marks, which can only over-reject (a batch landing after our snapshot was
// acquired bumps the effective epoch and skips a seed that was still valid),
// never under-reject.
func (s *Server) seedValid(p *prepared, e *seedEntry) bool {
	if p.lg == nil {
		return true
	}
	return p.lg.EffectiveEpoch(ival.New(p.window.Start, e.end)) == e.eff
}

// cachedCopy returns a response-ready shallow copy of an immutable cached
// result with the Cached flag set; the shared slices are never mutated.
func cachedCopy(res *RunResult) *RunResult {
	cp := *res
	cp.Cached = true
	return &cp
}
