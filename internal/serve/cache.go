package serve

import (
	"container/list"
	"sync"
)

// resultCache is a fingerprint-keyed LRU over finished run results. Entries
// are immutable once inserted (responses hand out shallow copies), so a hit
// is a pointer read under a short lock — overlapping and repeated requests
// are answered without re-running BSP.
type resultCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *RunResult
}

// newResultCache returns an LRU holding at most max entries; max <= 0
// disables caching (every get misses, every put is dropped).
func newResultCache(max int) *resultCache {
	return &resultCache{max: max, ll: list.New(), items: map[string]*list.Element{}}
}

func (c *resultCache) get(key string) (*RunResult, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

func (c *resultCache) put(key string, res *RunResult) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
