package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"graphite/internal/live"
	"graphite/internal/tgraph"
)

// newLiveServer boots a Server over one WAL-backed live graph named "g"
// (initially empty) plus an httptest frontend.
func newLiveServer(t *testing.T, opts live.Options) (*Server, *live.Graph, *httptest.Server) {
	t.Helper()
	lg, err := live.Open(filepath.Join(t.TempDir(), "g.wal"), opts)
	if err != nil {
		t.Fatalf("live.Open: %v", err)
	}
	s, err := New(Config{Live: map[string]*live.Graph{"g": lg}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = s.Close()
		_ = lg.Close()
	})
	return s, lg, ts
}

// postEvents POSTs a mutation batch and decodes the response into out (which
// may be nil), returning the HTTP status.
func postEvents(t *testing.T, ts *httptest.Server, graph string, evs []EventWire, out any) int {
	t.Helper()
	body, err := json.Marshal(EventsRequest{Events: evs})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(ts.URL+"/v1/graphs/"+graph+"/events", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST events: %v", err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode events response: %v", err)
		}
	}
	return resp.StatusCode
}

// chainEvents appends vertices [lo,hi) to a growing chain starting at time
// t0: vertex i is born at t0+(i-lo), with an edge (i-1 -> i, travel-time and
// travel-cost 1 — the TD algorithms need both props to traverse) once a
// predecessor exists.
func chainEvents(lo, hi int, t0 int64) []EventWire {
	var evs []EventWire
	for i := lo; i < hi; i++ {
		tt := t0 + int64(i-lo)
		evs = append(evs, EventWire{Op: "av", T: tt, V: int64(i)})
		if i > 0 {
			evs = append(evs, EventWire{Op: "ae", T: tt, E: int64(i - 1), Src: int64(i - 1), Dst: int64(i)})
			evs = append(evs, EventWire{Op: "ep", T: tt, E: int64(i - 1), Label: tgraph.PropTravelTime, Value: 1})
			evs = append(evs, EventWire{Op: "ep", T: tt, E: int64(i - 1), Label: tgraph.PropTravelCost, Value: 1})
		}
	}
	return evs
}

// TestLiveMutationEpochsAndCacheValidity drives the full loop: ingest over
// HTTP, query, ingest more, and check that cached results for windows the
// new batch cannot affect stay valid while affected windows recompute under
// a new effective epoch.
func TestLiveMutationEpochsAndCacheValidity(t *testing.T) {
	_, lg, ts := newLiveServer(t, live.Options{Name: "g"})

	// Querying the still-empty graph is a 400, not a crash.
	if code := postRun(t, ts, RunRequest{Graph: "g", Algorithm: "eat", Params: map[string]int64{"source": 0}}, nil); code != http.StatusBadRequest {
		t.Fatalf("run on empty live graph: HTTP %d, want 400", code)
	}

	var ack EventsResult
	if code := postEvents(t, ts, "g", chainEvents(0, 8, 1), &ack); code != http.StatusOK {
		t.Fatalf("ingest: HTTP %d", code)
	}
	if ack.Epoch != 1 || ack.Vertices != 8 || ack.Edges != 7 {
		t.Fatalf("ack = %+v, want epoch 1, 8 vertices, 7 edges", ack)
	}

	// GET /v1/graphs reports the live epoch.
	resp, err := http.Get(ts.URL + "/v1/graphs")
	if err != nil {
		t.Fatalf("GET graphs: %v", err)
	}
	var graphs struct{ Graphs []GraphInfo }
	if err := json.NewDecoder(resp.Body).Decode(&graphs); err != nil {
		t.Fatalf("decode graphs: %v", err)
	}
	resp.Body.Close()
	if len(graphs.Graphs) != 1 || !graphs.Graphs[0].Live || graphs.Graphs[0].Epoch != 1 {
		t.Fatalf("graphs = %+v, want one live graph at epoch 1", graphs.Graphs)
	}

	eat := func(end int64) RunRequest {
		return RunRequest{Graph: "g", Algorithm: "eat",
			Params: map[string]int64{"source": 0}, Window: &Window{Start: 0, End: end}}
	}
	var narrow1, wide1 RunResult
	if code := postRun(t, ts, eat(6), &narrow1); code != http.StatusOK {
		t.Fatalf("narrow run: HTTP %d", code)
	}
	if code := postRun(t, ts, eat(100), &wide1); code != http.StatusOK {
		t.Fatalf("wide run: HTTP %d", code)
	}
	if narrow1.Cached || wide1.Cached {
		t.Fatalf("first runs must execute (narrow cached=%v wide cached=%v)", narrow1.Cached, wide1.Cached)
	}
	if narrow1.Epoch != 1 || wide1.Epoch != 1 {
		t.Fatalf("effective epochs = %d/%d, want 1/1", narrow1.Epoch, wide1.Epoch)
	}

	// A batch at t>=20 cannot change the window [0,6): its cache entry must
	// survive. The window [0,100) is affected and must recompute.
	if code := postEvents(t, ts, "g", chainEvents(8, 12, 20), &ack); code != http.StatusOK {
		t.Fatalf("second ingest: HTTP %d", code)
	}
	if ack.Epoch != 2 {
		t.Fatalf("ack epoch = %d, want 2", ack.Epoch)
	}
	var narrow2, wide2 RunResult
	postRun(t, ts, eat(6), &narrow2)
	postRun(t, ts, eat(100), &wide2)
	if !narrow2.Cached || narrow2.Fingerprint != narrow1.Fingerprint {
		t.Errorf("untouched window lost its cache entry (cached=%v)", narrow2.Cached)
	}
	if wide2.Cached {
		t.Errorf("affected window served a stale cached result")
	}
	if wide2.Fingerprint == wide1.Fingerprint {
		t.Errorf("affected window's fingerprint did not move with the epoch")
	}
	if wide2.Epoch != 2 || len(wide2.Vertices) != 12 {
		t.Errorf("recomputed wide run: epoch %d, %d vertices; want epoch 2, 12 vertices",
			wide2.Epoch, len(wide2.Vertices))
	}
	if lg.EpochsLive() != 1 {
		t.Errorf("epochs live = %d after all queries returned, want 1", lg.EpochsLive())
	}
}

// TestEventsEndpointValidation pins the mutation endpoint's error contract:
// every rejection is typed, atomic, and leaves the epoch untouched.
func TestEventsEndpointValidation(t *testing.T) {
	_, _, ts := newLiveServer(t, live.Options{Name: "g"})
	// A second server with a static graph, for the static-mutation rejection.
	_, ts2 := newTestServer(t, Config{})

	if code := postEvents(t, ts, "g", chainEvents(0, 4, 1), nil); code != http.StatusOK {
		t.Fatalf("seed ingest: HTTP %d", code)
	}
	epoch := func() uint64 {
		resp, err := http.Get(ts.URL + "/v1/graphs")
		if err != nil {
			t.Fatalf("GET graphs: %v", err)
		}
		var out struct{ Graphs []GraphInfo }
		_ = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		return out.Graphs[0].Epoch
	}
	if got := epoch(); got != 1 {
		t.Fatalf("epoch after seed ingest = %d, want 1", got)
	}

	for name, tc := range map[string]struct {
		graph string
		ts    *httptest.Server
		evs   []EventWire
		want  int
	}{
		"unknown graph": {graph: "nope", ts: ts, evs: chainEvents(20, 21, 50), want: http.StatusNotFound},
		"static graph":  {graph: "transit", ts: ts2, evs: chainEvents(20, 21, 50), want: http.StatusBadRequest},
		"empty batch":   {graph: "g", ts: ts, evs: nil, want: http.StatusBadRequest},
		"unknown op":    {graph: "g", ts: ts, evs: []EventWire{{Op: "zz", T: 50}}, want: http.StatusBadRequest},
		"out of order":  {graph: "g", ts: ts, evs: []EventWire{{Op: "av", T: 1, V: 99}}, want: http.StatusBadRequest},
		"unknown owner": {graph: "g", ts: ts, evs: []EventWire{{Op: "re", T: 50, E: 99}}, want: http.StatusBadRequest},
		"atomic rejection": {graph: "g", ts: ts,
			evs:  []EventWire{{Op: "av", T: 50, V: 90}, {Op: "av", T: 50, V: 0}}, // second reopens vertex 0
			want: http.StatusBadRequest},
	} {
		if code := postEvents(t, tc.ts, tc.graph, tc.evs, nil); code != tc.want {
			t.Errorf("%s: HTTP %d, want %d", name, code, tc.want)
		}
	}
	if got := epoch(); got != 1 {
		t.Errorf("epoch moved to %d on rejected batches, want 1", got)
	}
	// The vertex from the atomically rejected batch must not exist: re-adding
	// it now succeeds.
	if code := postEvents(t, ts, "g", []EventWire{{Op: "av", T: 60, V: 90}}, nil); code != http.StatusOK {
		t.Errorf("vertex 90 leaked from the rejected batch")
	}
}

// TestIncrementalServing pins the serving half of incremental recomputation:
// a window-extension request on a seedable algorithm reports Seeded and its
// result is bit-identical to a cold run; mutations below the prior window
// end invalidate the seed; non-seedable algorithms never seed.
func TestIncrementalServing(t *testing.T) {
	srv, _, ts := newLiveServer(t, live.Options{Name: "g"})
	if code := postEvents(t, ts, "g", chainEvents(0, 10, 1), nil); code != http.StatusOK {
		t.Fatalf("ingest: HTTP %d", code)
	}
	eat := func(end int64, noCache bool) RunRequest {
		return RunRequest{Graph: "g", Algorithm: "eat", NoCache: noCache,
			Params: map[string]int64{"source": 0}, Window: &Window{Start: 0, End: end}}
	}

	var prior, incr, cold RunResult
	postRun(t, ts, eat(6, false), &prior)
	if prior.Seeded {
		t.Fatalf("first run cannot be seeded")
	}
	postRun(t, ts, eat(50, false), &incr)
	if !incr.Seeded {
		t.Fatalf("window extension [0,6)->[0,50) did not seed")
	}
	postRun(t, ts, eat(50, true), &cold) // NoCache: forced cold recompute
	if cold.Seeded {
		t.Fatalf("NoCache run must stay cold")
	}
	if !reflect.DeepEqual(incr.Vertices, cold.Vertices) {
		t.Fatalf("seeded run diverged from cold recompute:\nseeded: %+v\ncold:   %+v", incr.Vertices, cold.Vertices)
	}
	if got := srv.Registry().Counter(CSeedHits).Load(); got < 1 {
		t.Errorf("seed hits = %d, want >= 1", got)
	}

	// A mutation below the retained window end ([0,50) retained, batch at
	// t=20 < 50) must invalidate the seed: the next extension runs cold.
	if code := postEvents(t, ts, "g", chainEvents(10, 13, 20), nil); code != http.StatusOK {
		t.Fatalf("mutating ingest: HTTP %d", code)
	}
	var after RunResult
	postRun(t, ts, eat(80, false), &after)
	if after.Seeded {
		t.Errorf("stale seed used across a mutation below the prior window end")
	}

	// Non-seedable algorithms always run cold.
	var pr1, pr2 RunResult
	postRun(t, ts, RunRequest{Graph: "g", Algorithm: "pr", Window: &Window{Start: 0, End: 10}}, &pr1)
	postRun(t, ts, RunRequest{Graph: "g", Algorithm: "pr", Window: &Window{Start: 0, End: 80}}, &pr2)
	if pr1.Seeded || pr2.Seeded {
		t.Errorf("pagerank must never seed (got %v/%v)", pr1.Seeded, pr2.Seeded)
	}
}

// TestIncrementalServingStaticGraph checks seeding also works for static
// graphs (version never changes, so every retained window stays valid).
func TestIncrementalServingStaticGraph(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := func(end int64, noCache bool) RunRequest {
		return RunRequest{Graph: "transit", Algorithm: "eat", NoCache: noCache,
			Params: map[string]int64{"source": 0}, Window: &Window{Start: 0, End: end}}
	}
	var prior, incr, cold RunResult
	postRun(t, ts, req(4, false), &prior)
	postRun(t, ts, req(9, false), &incr)
	if !incr.Seeded {
		t.Fatalf("static window extension did not seed")
	}
	postRun(t, ts, req(9, true), &cold)
	if !reflect.DeepEqual(incr.Vertices, cold.Vertices) {
		t.Fatalf("static seeded run diverged from cold recompute")
	}
}

// TestConcurrentIngestAndQueries is the serve-level MVCC race test: readers
// keep executing against epoch snapshots while a writer appends batches.
// Under -race this doubles as the data-race proof for the epoch lifecycle.
func TestConcurrentIngestAndQueries(t *testing.T) {
	_, lg, ts := newLiveServer(t, live.Options{Name: "g"})
	if code := postEvents(t, ts, "g", chainEvents(0, 6, 1), nil); code != http.StatusOK {
		t.Fatalf("seed ingest: HTTP %d", code)
	}

	const batches, readers, queries = 20, 3, 8
	var wg sync.WaitGroup
	errs := make(chan error, readers*queries+batches)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < batches; i++ {
			lo := 6 + i*3
			if code := postEvents(t, ts, "g", chainEvents(lo, lo+3, int64(10+i*5)), nil); code != http.StatusOK {
				errs <- fmt.Errorf("ingest %d: HTTP %d", i, code)
			}
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := 0; q < queries; q++ {
				var res RunResult
				code := postRun(t, ts, RunRequest{Graph: "g", Algorithm: "eat", NoCache: true,
					Params: map[string]int64{"source": 0}, Window: &Window{Start: 0, End: 5}}, &res)
				if code != http.StatusOK {
					errs <- fmt.Errorf("query: HTTP %d", code)
					continue
				}
				// The window [0,5) predates every concurrent batch: its result
				// is invariant no matter which epoch served it.
				if len(res.Vertices) != 4 {
					errs <- fmt.Errorf("query saw %d vertices in [0,5), want 4", len(res.Vertices))
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if lg.EpochsLive() != 1 {
		t.Errorf("epochs live = %d after quiescence, want 1", lg.EpochsLive())
	}
}
