package serve

import (
	"container/list"
	"sync"

	"graphite/internal/core"
	ival "graphite/internal/interval"
)

// seedCache retains the terminal vertex states of executed seedable runs
// (algorithms.SupportsIncremental) so a later request that extends the same
// window starts from them instead of from superstep zero
// (core.Options.SeedStates). The key is everything that must match verbatim
// for a seed to be usable — graph name, algorithm, canonical parameters,
// window start; the window end and the graph's effective epoch ride in the
// entry and are checked at use time, because an extension needs end < newEnd
// and an unchanged graph below end.
type seedCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[seedKey]*list.Element
}

type seedKey struct {
	graph  string
	algo   string
	params string // canonical "k=v,..." form (paramsKey)
	start  ival.Time
}

// seedEntry is one retained run: terminal states over the window
// [key.start, end), computed under effective epoch eff (0 for static
// graphs, whose version never changes).
type seedEntry struct {
	key seedKey
	end ival.Time
	eff uint64
	res *core.Result
}

func newSeedCache(max int) *seedCache {
	return &seedCache{max: max, ll: list.New(), items: map[seedKey]*list.Element{}}
}

// lookup returns the retained run for the key if it is a strict prefix of a
// window ending at end — the extension relation seeding requires.
func (c *seedCache) lookup(key seedKey, end ival.Time) (*seedEntry, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*seedEntry)
	if e.end >= end {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return e, true
}

// put retains a run's terminal states. An existing entry for the key is
// replaced when the new window reaches at least as far (a longer prefix
// seeds more future extensions) or when the graph version moved (the old
// entry would fail its validity check anyway).
func (c *seedCache) put(e *seedEntry) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[e.key]; ok {
		old := el.Value.(*seedEntry)
		if e.end >= old.end || e.eff != old.eff {
			el.Value = e
		}
		c.ll.MoveToFront(el)
		return
	}
	c.items[e.key] = c.ll.PushFront(e)
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*seedEntry).key)
	}
}

func (c *seedCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
