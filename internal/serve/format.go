package serve

import (
	"fmt"
	"sort"
	"strings"

	"graphite/internal/core"
	"graphite/internal/tgraph"
)

// This file is the single definition of the canonical per-vertex result
// rendering. cmd/graphite-run prints through FormatResult and the server
// ships the same strings inside RunResult, so a served result reconstructs
// the CLI's output bit for bit — the property the serving tests pin down.

// sortedIDs returns a graph's vertex ids ascending, truncated to top when
// top > 0 — the CLI's print order.
func sortedIDs(g *tgraph.Graph, top int) []tgraph.VertexID {
	ids := make([]tgraph.VertexID, 0, g.NumVertices())
	for i := 0; i < g.NumVertices(); i++ {
		ids = append(ids, g.VertexAt(i).ID)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	if top > 0 && len(ids) > top {
		ids = ids[:top]
	}
	return ids
}

// FormatResult renders a run's final per-vertex states exactly as
// cmd/graphite-run prints them: one "vertex <id>: <interval>=<value> ..."
// line per vertex, ids ascending, at most top lines when top > 0.
func FormatResult(r *core.Result, top int) []string {
	lines := make([]string, 0, r.Graph.NumVertices())
	for _, id := range sortedIDs(r.Graph, top) {
		st := r.StateByID(id)
		var parts []string
		for _, p := range st.Parts() {
			parts = append(parts, fmt.Sprintf("%v=%v", p.Interval, p.Value))
		}
		lines = append(lines, fmt.Sprintf("vertex %d: %s", id, strings.Join(parts, " ")))
	}
	return lines
}

// buildResult shapes a finished core run into the wire result. Interval and
// value strings use the same verbs as FormatResult so FormatLines round-trips
// exactly.
func buildResult(p *prepared, r *core.Result) *RunResult {
	res := &RunResult{
		Graph:       p.graphName,
		Algorithm:   p.algo,
		Fingerprint: p.fp,
		Window:      windowLabel(p.window),
		Span:        p.span,
		Epoch:       p.eff,
		Metrics: RunMetrics{
			Supersteps:      r.Metrics.Supersteps,
			ComputeCalls:    r.Metrics.ComputeCalls,
			ScatterCalls:    r.Metrics.ScatterCalls,
			Messages:        r.Metrics.Messages,
			MessageBytes:    r.Metrics.MessageBytes,
			MakespanNS:      int64(r.Metrics.Makespan),
			WarpCalls:       r.Stats.WarpCalls,
			WarpSuppressed:  r.Stats.WarpSuppressed,
			ActiveIntervals: r.Stats.ActiveIntervals,
		},
	}
	for _, id := range sortedIDs(r.Graph, 0) {
		st := r.StateByID(id)
		v := VertexResult{ID: int64(id)}
		for _, part := range st.Parts() {
			v.Parts = append(v.Parts, StatePart{
				Interval: fmt.Sprintf("%v", part.Interval),
				Value:    fmt.Sprintf("%v", part.Value),
			})
		}
		res.Vertices = append(res.Vertices, v)
	}
	return res
}

// FormatLines reconstructs the cmd/graphite-run rendering from a served
// result: identical to FormatResult over the same run.
func (r *RunResult) FormatLines(top int) []string {
	vs := r.Vertices
	if top > 0 && len(vs) > top {
		vs = vs[:top]
	}
	lines := make([]string, 0, len(vs))
	for _, v := range vs {
		parts := make([]string, 0, len(v.Parts))
		for _, p := range v.Parts {
			parts = append(parts, p.Interval+"="+p.Value)
		}
		lines = append(lines, fmt.Sprintf("vertex %d: %s", v.ID, strings.Join(parts, " ")))
	}
	return lines
}
