package serve

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"graphite/internal/obs"
)

// TestMetricsServiceableMidRun pins that /metrics answers while the executor
// is busy: a scrape must never block behind a long run (the handler reads a
// registry snapshot, it does not take the executor's locks). We park a long
// async PR run on the only executor slot, scrape mid-flight, then cancel the
// run and confirm the inflight gauge drains.
func TestMetricsServiceableMidRun(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 1})

	var jv JobView
	if code := postRun(t, ts, RunRequest{
		Graph:     "transit",
		Algorithm: "pr",
		Params:    map[string]int64{"iterations": 2_000_000},
		Async:     true,
		NoCache:   true,
	}, &jv); code != http.StatusAccepted {
		t.Fatalf("submit long run: HTTP %d", code)
	}
	waitJob(t, ts, jv.ID, 10*time.Second, func(j JobView) bool { return j.Status == JobRunning })

	scrape := func() (int, string, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read /metrics: %v", err)
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
	}

	code, ct, body := scrape()
	if code != http.StatusOK {
		t.Fatalf("mid-run scrape: HTTP %d", code)
	}
	if ct != obs.ContentTypeMetrics {
		t.Errorf("mid-run scrape Content-Type = %q, want %q", ct, obs.ContentTypeMetrics)
	}
	for _, line := range []string{
		"graphite_serve_runs_inflight 1",
		"# TYPE graphite_serve_runs_inflight gauge",
	} {
		if !strings.Contains(body, line+"\n") {
			t.Errorf("mid-run scrape missing %q:\n%s", line, body)
		}
	}

	// Tear the run down and confirm the gauge drains: the scrape surface must
	// reflect the executor emptying out, not a stale snapshot.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+jv.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE job: %v", err)
	}
	resp.Body.Close()
	waitJob(t, ts, jv.ID, 10*time.Second, func(j JobView) bool { return terminal(j.Status) })

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, body := scrape(); strings.Contains(body, "graphite_serve_runs_inflight 0\n") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("inflight gauge never drained to 0 after cancel")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
