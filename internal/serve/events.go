package serve

import (
	"errors"
	"fmt"

	ival "graphite/internal/interval"
	"graphite/internal/live"
	"graphite/internal/stream"
	"graphite/internal/tgraph"
)

// opNames maps the wire op mnemonics — the same ones the text event-log
// format uses (stream.ReadLog) — onto stream ops.
var opNames = map[string]stream.Op{
	"av": stream.AddVertex,
	"rv": stream.RemoveVertex,
	"ae": stream.AddEdge,
	"re": stream.RemoveEdge,
	"vp": stream.SetVertexProp,
	"ep": stream.SetEdgeProp,
}

// DecodeEvents converts wire events into stream events. Only op names are
// validated here; batch semantics (ordering, referential integrity,
// atomicity) are the live graph's preflight.
func DecodeEvents(evs []EventWire) ([]stream.Event, error) {
	batch := make([]stream.Event, len(evs))
	for i, w := range evs {
		op, ok := opNames[w.Op]
		if !ok {
			return nil, fmt.Errorf("%w: event %d: unknown op %q (have av rv ae re vp ep)",
				ErrBadRequest, i, w.Op)
		}
		batch[i] = stream.Event{
			Op:    op,
			T:     ival.Time(w.T),
			V:     tgraph.VertexID(w.V),
			E:     tgraph.EdgeID(w.E),
			Src:   tgraph.VertexID(w.Src),
			Dst:   tgraph.VertexID(w.Dst),
			Label: w.Label,
			Value: w.Value,
		}
	}
	return batch, nil
}

// EncodeEvents is DecodeEvents' inverse; cmd/graphite-feed ships parsed
// event-log lines through it.
func EncodeEvents(batch []stream.Event) []EventWire {
	out := make([]EventWire, len(batch))
	for i, ev := range batch {
		w := EventWire{T: int64(ev.T)}
		switch ev.Op {
		case stream.AddVertex:
			w.Op, w.V = "av", int64(ev.V)
		case stream.RemoveVertex:
			w.Op, w.V = "rv", int64(ev.V)
		case stream.AddEdge:
			w.Op, w.E, w.Src, w.Dst = "ae", int64(ev.E), int64(ev.Src), int64(ev.Dst)
		case stream.RemoveEdge:
			w.Op, w.E = "re", int64(ev.E)
		case stream.SetVertexProp:
			w.Op, w.V, w.Label, w.Value = "vp", int64(ev.V), ev.Label, ev.Value
		case stream.SetEdgeProp:
			w.Op, w.E, w.Label, w.Value = "ep", int64(ev.E), ev.Label, ev.Value
		}
		out[i] = w
	}
	return out
}

// ApplyEvents ingests one atomic mutation batch into the named live graph
// and returns the newly published epoch's summary. Bad batches — unknown
// ops, time-order violations, referential breaks — reject as ErrBadRequest
// with the graph unchanged; mutating a static graph is also a bad request.
func (s *Server) ApplyEvents(name string, evs []EventWire) (*EventsResult, error) {
	lg := s.liveGraphs[name]
	if lg == nil {
		if _, ok := s.graphs[name]; ok {
			return nil, fmt.Errorf("%w: graph %q is static — it has no event log", ErrBadRequest, name)
		}
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownGraph, name, s.names)
	}
	if s.Draining() {
		s.m.rejectedDraining.Inc()
		return nil, ErrDraining
	}
	batch, err := DecodeEvents(evs)
	if err != nil {
		return nil, err
	}
	info, err := lg.Apply(batch)
	if err != nil {
		switch {
		case errors.Is(err, live.ErrEmptyBatch),
			errors.Is(err, stream.ErrOutOfOrder),
			errors.Is(err, stream.ErrNegativeTime),
			errors.Is(err, stream.ErrReopened),
			errors.Is(err, stream.ErrStillOpen),
			errors.Is(err, stream.ErrUnknownOwner):
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		case errors.Is(err, live.ErrClosed):
			return nil, fmt.Errorf("%w: %v", ErrDraining, err)
		}
		return nil, err
	}
	return &EventsResult{
		Graph:    name,
		Epoch:    info.Epoch,
		Events:   info.Events,
		LastTime: int64(info.LastTime),
		Vertices: info.Vertices,
		Edges:    info.Edges,
	}, nil
}
