package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"graphite/internal/engine"
	"graphite/internal/obs"
)

// Job statuses.
const (
	JobPending  = "pending"  // submitted, waiting for an executor slot
	JobRunning  = "running"  // executing (or waiting on an identical run)
	JobDone     = "done"     // finished with a result
	JobCanceled = "canceled" // aborted: deadline, DELETE, or server shutdown
	JobFailed   = "failed"   // run error
)

// job is one async run. All mutable fields are guarded by the store's mutex;
// done closes when the job reaches a terminal status.
type job struct {
	id          string
	graphName   string
	algo        string
	fingerprint string
	status      string
	res         *RunResult
	errMsg      string
	cancel      context.CancelFunc
	done        chan struct{}
}

// jobStore tracks async jobs. Active jobs are bounded by admission control
// (every leader holds an executor ticket); finished jobs are retained for
// polling and evicted oldest-first past max.
type jobStore struct {
	mu        sync.Mutex
	seq       int64
	max       int
	jobs      map[string]*job
	order     []string // insertion order, for eviction
	active    *obs.Gauge
	submitted *obs.Counter
}

func newJobStore(max int, active *obs.Gauge, submitted *obs.Counter) *jobStore {
	return &jobStore{max: max, jobs: map[string]*job{}, active: active, submitted: submitted}
}

// add registers a new pending job and evicts the oldest finished jobs past
// the retention cap (unfinished jobs are never evicted; admission bounds
// them).
func (st *jobStore) add(p *prepared, cancel context.CancelFunc) *job {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++
	j := &job{
		id:          fmt.Sprintf("j%d", st.seq),
		graphName:   p.graphName,
		algo:        p.algo,
		fingerprint: p.fp,
		status:      JobPending,
		cancel:      cancel,
		done:        make(chan struct{}),
	}
	st.jobs[j.id] = j
	st.order = append(st.order, j.id)
	st.submitted.Inc()
	st.active.Add(1)
	for len(st.jobs) > st.max {
		evicted := false
		for i, id := range st.order {
			if old := st.jobs[id]; old != nil && terminal(old.status) {
				delete(st.jobs, id)
				st.order = append(st.order[:i], st.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break
		}
	}
	return j
}

func terminal(status string) bool {
	return status == JobDone || status == JobCanceled || status == JobFailed
}

func (st *jobStore) get(id string) (*job, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if j := st.jobs[id]; j != nil {
		return j, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
}

// setRunning moves a pending job to running.
func (st *jobStore) setRunning(j *job) {
	st.mu.Lock()
	if j.status == JobPending {
		j.status = JobRunning
	}
	st.mu.Unlock()
}

// finishJob records a job's outcome, classifying cancellation-shaped errors
// (engine aborts, context deadline/cancel) apart from genuine failures.
func (st *jobStore) finishJob(j *job, res *RunResult, err error) {
	st.mu.Lock()
	switch {
	case err == nil:
		j.status = JobDone
		j.res = res
	case errors.Is(err, engine.ErrCanceled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		j.status = JobCanceled
		j.errMsg = err.Error()
	default:
		j.status = JobFailed
		j.errMsg = err.Error()
	}
	st.mu.Unlock()
	st.active.Add(-1)
	close(j.done)
}

// view snapshots a job for the API.
func (st *jobStore) view(j *job) JobView {
	st.mu.Lock()
	defer st.mu.Unlock()
	return JobView{
		ID:          j.id,
		Status:      j.status,
		Graph:       j.graphName,
		Algorithm:   j.algo,
		Fingerprint: j.fingerprint,
		Error:       j.errMsg,
		Result:      j.res,
	}
}

// views snapshots every retained job, newest first.
func (st *jobStore) views() []JobView {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]JobView, 0, len(st.jobs))
	for i := len(st.order) - 1; i >= 0; i-- {
		if j := st.jobs[st.order[i]]; j != nil {
			out = append(out, JobView{
				ID:          j.id,
				Status:      j.status,
				Graph:       j.graphName,
				Algorithm:   j.algo,
				Fingerprint: j.fingerprint,
				Error:       j.errMsg,
			})
		}
	}
	return out
}

// Submit starts an asynchronous run and returns its job immediately.
// Admission control applies at submit time: a full queue rejects the job
// with ErrBusy before a goroutine is spawned. The run executes under the
// server's lifetime context with the request's deadline, not the submitting
// HTTP request's context — disconnecting after submit does not abort the job;
// DELETE /v1/jobs/{id} does.
func (s *Server) Submit(req *RunRequest) (JobView, error) {
	p, err := s.prepare(req)
	if err != nil {
		return JobView{}, err
	}
	adm, err := s.begin(p, req.NoCache)
	if err != nil {
		p.close()
		return JobView{}, err
	}
	timeout := s.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		timeout = msToDuration(req.TimeoutMS)
	}
	jobCtx, cancel := context.WithTimeout(s.root, timeout)
	j := s.jobs.add(p, cancel)
	switch {
	case adm.cached != nil:
		p.close()
		s.jobs.finishJob(j, cachedCopy(adm.cached), nil)
		cancel()
	case adm.joined != nil:
		p.close() // joiners wait on the leader's run; ours is not needed
		go func() {
			defer cancel()
			s.jobs.setRunning(j)
			select {
			case <-adm.joined.done:
				if adm.joined.err != nil {
					s.jobs.finishJob(j, nil, adm.joined.err)
					return
				}
				s.jobs.finishJob(j, cachedCopy(adm.joined.res), nil)
			case <-jobCtx.Done():
				s.jobs.finishJob(j, nil, jobCtx.Err())
			}
		}()
	default:
		go func() {
			defer cancel()
			defer p.close()
			s.jobs.setRunning(j)
			res, err := s.runBSP(jobCtx, p)
			s.finish(p, adm.lead, res, err)
			s.jobs.finishJob(j, res, err)
		}()
	}
	return s.jobs.view(j), nil
}

// Job returns the current state of an async job.
func (s *Server) Job(id string) (JobView, error) {
	j, err := s.jobs.get(id)
	if err != nil {
		return JobView{}, err
	}
	return s.jobs.view(j), nil
}

// CancelJob requests cancellation of an async job; a running job aborts at
// its next superstep barrier. Canceling a finished job is a no-op.
func (s *Server) CancelJob(id string) (JobView, error) {
	j, err := s.jobs.get(id)
	if err != nil {
		return JobView{}, err
	}
	j.cancel()
	return s.jobs.view(j), nil
}

// Jobs lists every retained job, newest first, without results.
func (s *Server) Jobs() []JobView {
	return s.jobs.views()
}
