package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"graphite/internal/algorithms"
	ival "graphite/internal/interval"
)

// The request fingerprint is the cache-correctness linchpin: two requests
// share a fingerprint exactly when they are guaranteed to produce the same
// result. Everything semantic (graph, algorithm, effective parameters,
// normalized time window) is folded in; everything operational (worker
// count, timeout, tracing) is deliberately excluded — BSP runs are
// deterministic across worker counts, so execution knobs must not split the
// cache.

// paramKeys are the algorithm parameters a run request may carry, matching
// algorithms.Params field for field.
var paramKeys = []string{"deadline", "iterations", "source", "start", "target"}

// CanonicalAlgo lowercases an algorithm name and resolves catalog aliases
// ("pagerank" → "pr") so spelling variants share a fingerprint. Unknown names
// are rejected here, before any admission or cache work happens.
func CanonicalAlgo(name string) (string, error) {
	a := strings.ToLower(strings.TrimSpace(name))
	if a == "pagerank" {
		a = "pr"
	}
	for _, n := range algorithms.Names() {
		if a == n {
			return a, nil
		}
	}
	return "", fmt.Errorf("%w: unknown algorithm %q (have %s)",
		ErrBadRequest, name, strings.Join(algorithms.Names(), " "))
}

// normalizeParams validates the request's parameter map and resolves it to
// its effective values: every key present, catalog defaults applied. The
// canonical form makes {"source": 0} and {} fingerprint-identical, and an
// explicit target equal to the source identical to an omitted one (the
// catalog defaults target to source).
func normalizeParams(in map[string]int64) (map[string]int64, error) {
	out := make(map[string]int64, len(paramKeys))
	for k, v := range in {
		ok := false
		for _, allowed := range paramKeys {
			if k == allowed {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("%w: unknown parameter %q (have %s)",
				ErrBadRequest, k, strings.Join(paramKeys, " "))
		}
		if v < 0 {
			return nil, fmt.Errorf("%w: parameter %q is negative", ErrBadRequest, k)
		}
		out[k] = v
	}
	if _, ok := out["target"]; !ok {
		out["target"] = out["source"]
	}
	if out["iterations"] == 0 {
		out["iterations"] = algorithms.DefaultPRIterations
	}
	for _, k := range paramKeys {
		if _, ok := out[k]; !ok {
			out[k] = 0
		}
	}
	return out, nil
}

// normalizeWindow resolves a request window to a canonical interval: nil
// means the graph's full lifetime, End <= 0 means unbounded. Semantically
// identical windows ({start: 0} with no end, nil, {0, -1}) all normalize to
// [0, ∞).
func normalizeWindow(w *Window) (ival.Interval, error) {
	if w == nil {
		return ival.Universe, nil
	}
	if w.Start < 0 {
		return ival.Interval{}, fmt.Errorf("%w: window start %d is negative", ErrBadRequest, w.Start)
	}
	end := ival.Infinity
	if w.End > 0 {
		end = ival.Time(w.End)
	}
	iv := ival.New(ival.Time(w.Start), end)
	if iv.IsEmpty() {
		return ival.Interval{}, fmt.Errorf("%w: empty window [%d, %d)", ErrBadRequest, w.Start, w.End)
	}
	return iv, nil
}

// windowLabel renders a normalized window for fingerprints and responses;
// the unbounded end prints as "inf" rather than the Infinity sentinel.
func windowLabel(w ival.Interval) string {
	if w.End == ival.Infinity {
		return fmt.Sprintf("[%d,inf)", w.Start)
	}
	return fmt.Sprintf("[%d,%d)", w.Start, w.End)
}

// paramsKey renders canonical parameters as "k=v,..." in sorted key order —
// the parameter component of both the fingerprint preimage and the
// incremental seed-cache key.
func paramsKey(params map[string]int64) string {
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%d", k, params[k])
	}
	return b.String()
}

// Fingerprint returns the canonical cache key for a run over the named graph:
// algorithm aliases resolved, parameters at their effective values in sorted
// order, window normalized. The inputs must already be canonical (the server
// fingerprints only prepared requests); for live graphs the graph identity
// carries the window's effective epoch ("name@7"), which is what invalidates
// cached results for windows a mutation batch touched while leaving untouched
// windows cached. The digest is hex SHA-256.
func Fingerprint(graph, algo string, params map[string]int64, window ival.Interval) string {
	var b strings.Builder
	fmt.Fprintf(&b, "g=%s|a=%s|%s|w=%s", graph, algo, paramsKey(params), windowLabel(window))
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}
