package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"graphite/internal/engine"
	"graphite/internal/obs"
)

// Handler returns the server's HTTP API:
//
//	GET    /healthz        liveness: 200 while the process serves at all
//	GET    /readyz         readiness: 503 while draining or while the
//	                       Config.Ready hook reports not-ready
//	GET    /v1/graphs      the loaded graphs
//	POST   /v1/run         run an algorithm (sync, or async with a job id)
//	GET    /v1/jobs        list async jobs
//	GET    /v1/jobs/{id}   poll an async job
//	DELETE /v1/jobs/{id}   cancel an async job
//	GET    /metrics        Prometheus text exposition of the server registry
//	/debug/vars, /debug/pprof/...  the obs debug surface over the server's
//	                               registry
//
// Every API endpoint is instrumented with a request counter, an error
// counter and a latency histogram under "serve.http.<name>.*"; /metrics
// itself is left uninstrumented so scrapes do not pollute the series they
// collect.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.instrument("readyz", s.handleReadyz))
	mux.HandleFunc("GET /v1/graphs", s.instrument("graphs", s.handleGraphs))
	mux.HandleFunc("POST /v1/graphs/{id}/events", s.instrument("events", s.handleEvents))
	mux.HandleFunc("POST /v1/run", s.instrument("run", s.handleRun))
	mux.HandleFunc("GET /v1/jobs", s.instrument("jobs", s.handleJobs))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("job_get", s.handleJobGet))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument("job_cancel", s.handleJobCancel))
	mux.Handle("GET /metrics", obs.MetricsHandler(s.reg))
	mux.Handle("/debug/", obs.DebugMux(s.reg))
	return mux
}

// statusWriter captures the response code for the error counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the per-endpoint counters and latency
// histogram.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	reqs := s.reg.Counter("serve.http." + name + ".requests")
	errs := s.reg.Counter("serve.http." + name + ".errors")
	lat := s.reg.Histogram("serve.http." + name + ".latency_ns")
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqs.Inc()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		if sw.code >= 400 {
			errs.Inc()
		}
		lat.Observe(time.Since(start))
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// statusFor maps the service's typed errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownGraph), errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrBusy):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, engine.ErrCanceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func writeError(w http.ResponseWriter, err error) {
	code := statusFor(err)
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, map[string]any{"error": err.Error(), "status": code})
}

func msToDuration(ms int64) time.Duration { return time.Duration(ms) * time.Millisecond }

// handleHealthz is pure liveness: as long as the process can answer, it is
// alive — even mid-drain, so orchestrators don't kill a server that is
// finishing in-flight work. Readiness (take traffic or not) is /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"graphs": len(s.names),
	})
}

// handleReadyz is readiness: 503 once draining (stop routing new work
// here) and 503 while the configured Ready hook objects — the seam a
// cluster coordinator uses to gate traffic on worker quorum.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	status, code, reason := "ready", http.StatusOK, ""
	switch {
	case s.Draining():
		status, code, reason = "draining", http.StatusServiceUnavailable, "server draining"
	case s.cfg.Ready != nil:
		if err := s.cfg.Ready(); err != nil {
			status, code, reason = "not_ready", http.StatusServiceUnavailable, err.Error()
		}
	}
	body := map[string]any{"status": status}
	if reason != "" {
		body["reason"] = reason
	}
	writeJSON(w, code, body)
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	infos := make([]GraphInfo, 0, len(s.names))
	for _, name := range s.names {
		if lg := s.liveGraphs[name]; lg != nil {
			ep := lg.Acquire()
			g := ep.Graph()
			info := GraphInfo{
				Name:     name,
				Vertices: g.NumVertices(),
				Edges:    g.NumEdges(),
				Horizon:  int64(g.Horizon()),
				Live:     true,
				Epoch:    ep.ID(),
				Events:   ep.Events(),
			}
			if g.NumVertices() > 0 {
				info.Lifespan = windowLabel(g.Lifespan())
			}
			ep.Release()
			infos = append(infos, info)
			continue
		}
		g := s.graphs[name]
		infos = append(infos, GraphInfo{
			Name:     name,
			Vertices: g.NumVertices(),
			Edges:    g.NumEdges(),
			Lifespan: windowLabel(g.Lifespan()),
			Horizon:  int64(g.Horizon()),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"graphs": infos})
}

// handleEvents is the mutation endpoint: one atomic, durably logged batch of
// stream events per call, publishing one new epoch.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	var req EventsRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	res, err := s.ApplyEvents(r.PathValue("id"), req.Events)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	if req.Async {
		jv, err := s.Submit(&req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, jv)
		return
	}
	timeout := s.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		timeout = msToDuration(req.TimeoutMS)
	}
	// The run context joins the client connection (a disconnect cancels the
	// run) with the request deadline; the executor additionally aborts it if
	// the server closes.
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	res, err := s.Execute(ctx, &req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	jv, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, jv)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	jv, err := s.CancelJob(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, jv)
}
