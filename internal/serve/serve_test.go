package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphite/internal/algorithms"
	"graphite/internal/core"
	"graphite/internal/tgraph"
)

// newTestServer boots a Server over the transit example plus an httptest
// frontend, torn down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Graphs == nil {
		cfg.Graphs = map[string]*tgraph.Graph{"transit": tgraph.TransitExample()}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = s.Close()
	})
	return s, ts
}

// postRun POSTs a run request and decodes the response into out (which may be
// nil to discard), returning the HTTP status.
func postRun(t *testing.T, ts *httptest.Server, req RunRequest, out any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/run: %v", err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode
}

func getJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: HTTP %d", id, resp.StatusCode)
	}
	var jv JobView
	if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
		t.Fatalf("decode job: %v", err)
	}
	return jv
}

// waitJob polls a job until pred holds or the timeout expires.
func waitJob(t *testing.T, ts *httptest.Server, id string, timeout time.Duration, pred func(JobView) bool) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		jv := getJob(t, ts, id)
		if pred(jv) {
			return jv
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not reach expected state in %v (status %q)", id, timeout, jv.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestConcurrentIdenticalRequestsExecuteOnce is the singleflight pin: many
// concurrent identical requests must trigger exactly one BSP execution; the
// rest join the in-flight run or hit the result cache.
func TestConcurrentIdenticalRequestsExecuteOnce(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	const n = 32
	req := RunRequest{
		Graph:     "transit",
		Algorithm: "pr",
		Params:    map[string]int64{"iterations": 500},
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	codes := make([]int, n)
	cached := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			var res RunResult
			codes[i] = postRun(t, ts, req, &res)
			cached[i] = res.Cached
		}(i)
	}
	close(start)
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d: HTTP %d", i, code)
		}
	}
	reg := s.Registry()
	if got := reg.Counter(CRunsExecuted).Load(); got != 1 {
		t.Fatalf("runs executed: got %d, want exactly 1", got)
	}
	hits := reg.Counter(CCacheHits).Load()
	dedup := reg.Counter(CFlightDedup).Load()
	if hits+dedup != n-1 {
		t.Fatalf("hits(%d)+dedup(%d) = %d, want %d", hits, dedup, hits+dedup, n-1)
	}
	if got := reg.Counter(CCacheMisses).Load(); got != 1 {
		t.Fatalf("cache misses: got %d, want 1", got)
	}
}

// TestQueueFullRejects pins admission control: with one executor slot and one
// queue slot occupied by distinct long runs, the next request is rejected with
// 429 immediately, and the rejection is counted.
func TestQueueFullRejects(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 1})
	long := func(iters int64) RunRequest {
		return RunRequest{
			Graph:     "transit",
			Algorithm: "pr",
			Params:    map[string]int64{"iterations": iters},
			Async:     true,
		}
	}
	// Distinct iteration counts → distinct fingerprints → both are leaders
	// holding tickets (one running, one queued).
	j1, err := s.Submit(&RunRequest{Graph: "transit", Algorithm: "pr",
		Params: map[string]int64{"iterations": 2_000_000}, Async: true})
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	j2, err := s.Submit(&RunRequest{Graph: "transit", Algorithm: "pr",
		Params: map[string]int64{"iterations": 2_000_001}, Async: true})
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	var errBody map[string]any
	if code := postRun(t, ts, long(2_000_002).withSync(), &errBody); code != http.StatusTooManyRequests {
		t.Fatalf("third request: HTTP %d (%v), want 429", code, errBody)
	}
	if got := s.Registry().Counter(CRejectedBusy).Load(); got < 1 {
		t.Fatalf("rejected.busy: got %d, want >= 1", got)
	}
	// An identical duplicate of a queued run still joins in-flight instead of
	// being rejected: dedup must not consume tickets.
	dup, err := s.Submit(&RunRequest{Graph: "transit", Algorithm: "pr",
		Params: map[string]int64{"iterations": 2_000_001}, Async: true})
	if err != nil {
		t.Fatalf("duplicate submit should join in flight, got %v", err)
	}
	// Hard stop; the long runs abort at their next barrier and every job
	// reaches a terminal state.
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for _, id := range []string{j1.ID, j2.ID, dup.ID} {
		waitJob(t, ts, id, 10*time.Second, func(jv JobView) bool {
			return jv.Status == JobCanceled || jv.Status == JobFailed
		})
	}
}

// withSync strips the Async flag for reuse in sync posts.
func (r RunRequest) withSync() RunRequest { r.Async = false; return r }

// getCode issues a GET and returns only the HTTP status.
func getCode(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestGracefulDrain pins shutdown semantics: Drain lets the in-flight run
// finish (the job completes with a result), while new work is rejected with
// 503, readiness flips to draining, and liveness stays green so the process
// isn't killed out from under its in-flight work.
func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 2})
	jv, err := s.Submit(&RunRequest{Graph: "transit", Algorithm: "pr",
		Params: map[string]int64{"iterations": 5000}, Async: true})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitJob(t, ts, jv.ID, 5*time.Second, func(j JobView) bool { return j.Status != JobPending })

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	// Draining flips synchronously under the admission lock; wait for it.
	deadline := time.Now().Add(2 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}

	if code := postRun(t, ts, RunRequest{Graph: "transit", Algorithm: "sssp",
		Params: map[string]int64{"source": 1}}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: HTTP %d, want 503", code)
	}
	if code := getCode(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz during drain: HTTP %d, want 200 (liveness must survive a drain)", code)
	}
	if code := getCode(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: HTTP %d, want 503", code)
	}

	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain did not complete")
	}
	// The in-flight job was allowed to finish, not canceled.
	final := waitJob(t, ts, jv.ID, 5*time.Second, func(j JobView) bool { return j.Status == JobDone })
	if final.Result == nil {
		t.Fatal("drained job has no result")
	}
	if got := s.Registry().Counter(CRunsCanceled).Load(); got != 0 {
		t.Fatalf("runs canceled during graceful drain: %d, want 0", got)
	}
}

// TestReadinessHook pins the Ready seam: while the hook reports an error the
// server is alive (/healthz 200) but not ready (/readyz 503 with the hook's
// reason); when the hook clears, readiness flips to 200 without a restart —
// the behaviour a coordinator below worker quorum relies on.
func TestReadinessHook(t *testing.T) {
	var notReady atomic.Pointer[string]
	reason := "cluster: 1/3 workers connected"
	notReady.Store(&reason)
	_, ts := newTestServer(t, Config{
		Ready: func() error {
			if p := notReady.Load(); p != nil {
				return errors.New(*p)
			}
			return nil
		},
	})

	if code := getCode(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz while below quorum: HTTP %d, want 200", code)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("readyz body: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while below quorum: HTTP %d, want 503", resp.StatusCode)
	}
	if body["status"] != "not_ready" || body["reason"] != reason {
		t.Fatalf("readyz body: %+v, want status=not_ready reason=%q", body, reason)
	}

	notReady.Store(nil)
	if code := getCode(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after quorum restored: HTTP %d, want 200", code)
	}
	if code := getCode(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after quorum restored: HTTP %d, want 200", code)
	}
}

// TestServedResultMatchesCLI pins bit-identical rendering: the served result,
// reconstructed through FormatLines, must equal FormatResult over a direct
// core.Run with the same parameters — the exact lines cmd/graphite-run prints.
func TestServedResultMatchesCLI(t *testing.T) {
	g := tgraph.TransitExample()
	_, ts := newTestServer(t, Config{Graphs: map[string]*tgraph.Graph{"transit": g}})

	for _, algo := range []string{"sssp", "eat", "bfs"} {
		var res RunResult
		if code := postRun(t, ts, RunRequest{Graph: "transit", Algorithm: algo,
			Params: map[string]int64{"source": 1}}, &res); code != http.StatusOK {
			t.Fatalf("%s: HTTP %d", algo, code)
		}
		prog, opts, err := algorithms.New(g, algo, algorithms.Params{Source: 1, Target: 1})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		r, err := core.Run(g, prog, opts)
		if err != nil {
			t.Fatalf("%s: direct run: %v", algo, err)
		}
		want := FormatResult(r, 10)
		got := res.FormatLines(10)
		if len(got) != len(want) {
			t.Fatalf("%s: %d lines served vs %d direct", algo, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s line %d:\nserved %q\ndirect %q", algo, i, got[i], want[i])
			}
		}
	}
}

// TestRequestDeadlineCancels pins cooperative cancellation end to end: a run
// that cannot finish inside its deadline comes back 504 and is counted as
// canceled, not failed.
func TestRequestDeadlineCancels(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var errBody map[string]any
	code := postRun(t, ts, RunRequest{
		Graph:     "transit",
		Algorithm: "pr",
		Params:    map[string]int64{"iterations": 5_000_000},
		TimeoutMS: 50,
	}, &errBody)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("deadline run: HTTP %d (%v), want 504", code, errBody)
	}
	reg := s.Registry()
	if got := reg.Counter(CRunsCanceled).Load(); got != 1 {
		t.Fatalf("runs canceled: got %d, want 1", got)
	}
	if got := reg.Counter(CRunsFailed).Load(); got != 0 {
		t.Fatalf("runs failed: got %d, want 0", got)
	}
}

// TestJobLifecycle pins the async path: submit returns 202 with a pending or
// running job, polling converges to done with a result identical to the sync
// answer, and DELETE cancels a running job at its next barrier.
func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var sync RunResult
	if code := postRun(t, ts, RunRequest{Graph: "transit", Algorithm: "sssp",
		Params: map[string]int64{"source": 1}}, &sync); code != http.StatusOK {
		t.Fatalf("sync run: HTTP %d", code)
	}

	var jv JobView
	if code := postRun(t, ts, RunRequest{Graph: "transit", Algorithm: "sssp",
		Params: map[string]int64{"source": 1}, Async: true, NoCache: true}, &jv); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	done := waitJob(t, ts, jv.ID, 10*time.Second, func(j JobView) bool { return terminal(j.Status) })
	if done.Status != JobDone || done.Result == nil {
		t.Fatalf("job finished %q (err %q), want done with result", done.Status, done.Error)
	}
	if got, want := fmt.Sprint(done.Result.FormatLines(0)), fmt.Sprint(sync.FormatLines(0)); got != want {
		t.Fatalf("async result diverged from sync:\nasync %s\nsync  %s", got, want)
	}

	// Cancel a long-running job via DELETE.
	if code := postRun(t, ts, RunRequest{Graph: "transit", Algorithm: "pr",
		Params: map[string]int64{"iterations": 5_000_000}, Async: true}, &jv); code != http.StatusAccepted {
		t.Fatalf("submit long: HTTP %d", code)
	}
	waitJob(t, ts, jv.ID, 5*time.Second, func(j JobView) bool { return j.Status == JobRunning })
	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+jv.ID, nil)
	resp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: HTTP %d", resp.StatusCode)
	}
	canceled := waitJob(t, ts, jv.ID, 10*time.Second, func(j JobView) bool { return terminal(j.Status) })
	if canceled.Status != JobCanceled {
		t.Fatalf("deleted job finished %q (err %q), want canceled", canceled.Status, canceled.Error)
	}

	// Unknown job id is a 404.
	resp, err = http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestRequestValidation pins the 4xx surface.
func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"unknown graph", `{"graph":"nope","algorithm":"sssp"}`, http.StatusNotFound},
		{"unknown algorithm", `{"graph":"transit","algorithm":"dijkstra"}`, http.StatusBadRequest},
		{"unknown field", `{"graph":"transit","algorithm":"sssp","frobnicate":1}`, http.StatusBadRequest},
		{"unknown param", `{"graph":"transit","algorithm":"sssp","params":{"sources":1}}`, http.StatusBadRequest},
		{"negative window", `{"graph":"transit","algorithm":"sssp","window":{"start":-2}}`, http.StatusBadRequest},
		{"missing source vertex", `{"graph":"transit","algorithm":"sssp","params":{"source":99}}`, http.StatusBadRequest},
		{"malformed json", `{"graph":`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewBufferString(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: HTTP %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

// TestWindowedRun pins window slicing through the API: a bounded window runs
// over the sliced graph and is fingerprinted apart from the unbounded run.
func TestWindowedRun(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var full, windowed RunResult
	if code := postRun(t, ts, RunRequest{Graph: "transit", Algorithm: "sssp",
		Params: map[string]int64{"source": 1}}, &full); code != http.StatusOK {
		t.Fatalf("full run: HTTP %d", code)
	}
	if code := postRun(t, ts, RunRequest{Graph: "transit", Algorithm: "sssp",
		Params: map[string]int64{"source": 1},
		Window: &Window{Start: 0, End: 4}}, &windowed); code != http.StatusOK {
		t.Fatalf("windowed run: HTTP %d", code)
	}
	if full.Fingerprint == windowed.Fingerprint {
		t.Fatal("windowed run shares a fingerprint with the full run")
	}
	if windowed.Window != "[0,4)" {
		t.Fatalf("window label: %q", windowed.Window)
	}
}

// TestExecuteTypedErrors exercises the Go-level surface without HTTP.
func TestExecuteTypedErrors(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := s.Execute(ctx, &RunRequest{Graph: "nope", Algorithm: "sssp"}); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("unknown graph: %v", err)
	}
	if _, err := s.Execute(ctx, &RunRequest{Graph: "transit", Algorithm: "nope"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown algorithm: %v", err)
	}
	if _, err := s.Execute(ctx, &RunRequest{Graph: "transit", Algorithm: "sssp",
		Params: map[string]int64{"source": 99}}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("missing source vertex: %v", err)
	}
}
