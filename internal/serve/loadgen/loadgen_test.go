package loadgen

import (
	"net/http/httptest"
	"testing"

	"graphite/internal/serve"
	"graphite/internal/tgraph"
)

// TestFireAgainstInProcessServer is the smoke path cmd/graphite-loadgen
// automates: a mixed burst against a booted server must succeed end to end
// with live cache hits visible through /debug/vars.
func TestFireAgainstInProcessServer(t *testing.T) {
	s, err := serve.New(serve.Config{
		Graphs: map[string]*tgraph.Graph{"transit": tgraph.TransitExample()},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	reqs := []Request{
		{Graph: "transit", Algorithm: "sssp", Params: map[string]int64{"source": 1}},
		{Graph: "transit", Algorithm: "bfs", Params: map[string]int64{"source": 1}},
	}
	res, err := Fire(ts.URL, reqs, 6, 4)
	if err != nil {
		t.Fatalf("Fire: %v", err)
	}
	if len(res.Errors) > 0 {
		t.Fatalf("transport errors: %v", res.Errors)
	}
	if res.ByStatus[200] != res.Requests {
		t.Fatalf("statuses: %v, want all %d OK", res.ByStatus, res.Requests)
	}

	// A sequential confirm pass: everything is cached now, so these must all
	// be hits.
	res2, err := Fire(ts.URL, reqs, 1, 1)
	if err != nil {
		t.Fatalf("confirm pass: %v", err)
	}
	if res2.ByStatus[200] != res2.Requests {
		t.Fatalf("confirm statuses: %v", res2.ByStatus)
	}

	snap, err := DebugVars(ts.URL)
	if err != nil {
		t.Fatalf("DebugVars: %v", err)
	}
	hits := Metric(snap, serve.CCacheHits)
	dedup := Metric(snap, serve.CFlightDedup)
	executed := Metric(snap, serve.CRunsExecuted)
	total := res.Requests + res2.Requests
	if executed != float64(len(reqs)) {
		t.Fatalf("runs executed: %v, want %d (one per distinct request)", executed, len(reqs))
	}
	if hits+dedup != float64(total)-executed {
		t.Fatalf("hits(%v)+dedup(%v) != requests(%d)-executed(%v)",
			hits, dedup, total, executed)
	}
	if hits < float64(len(reqs)) {
		t.Fatalf("cache hits: %v, want >= %d (the confirm pass)", hits, len(reqs))
	}
	if res2.CacheHits != int64(len(reqs)) {
		t.Fatalf("confirm pass cached responses: %d, want %d", res2.CacheHits, len(reqs))
	}
}
