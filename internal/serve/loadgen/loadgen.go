// Package loadgen is a small load driver for the graphite query service.
// It fires a mixed burst of run requests at a server — repeated identical
// requests that should collapse onto the result cache or singleflight, plus
// distinct ones that must execute — and reads the server's /debug/vars
// metrics back so callers can assert on cache behaviour. It backs the
// `make serve-smoke` target via cmd/graphite-loadgen.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Request is one run request POSTed to /v1/run. It mirrors serve.RunRequest's
// wire shape; loadgen keeps its own copy so it exercises the server strictly
// through the public HTTP surface.
type Request struct {
	Graph     string           `json:"graph"`
	Algorithm string           `json:"algorithm"`
	Params    map[string]int64 `json:"params,omitempty"`
	TimeoutMS int64            `json:"timeout_ms,omitempty"`
}

// Result summarises a burst: per-status counts and basic latency stats.
type Result struct {
	Requests  int
	ByStatus  map[int]int
	Errors    []string
	Elapsed   time.Duration
	CacheHits int64 // fraction of 200s that the server marked "cached": true
}

// Fire sends each request repeat times with conc concurrent clients and
// collects the outcome. Every response body is fully drained so connections
// are reused.
func Fire(baseURL string, reqs []Request, repeat, conc int) (*Result, error) {
	if repeat < 1 {
		repeat = 1
	}
	if conc < 1 {
		conc = 1
	}
	type item struct{ body []byte }
	var work []item
	for _, r := range reqs {
		b, err := json.Marshal(r)
		if err != nil {
			return nil, fmt.Errorf("loadgen: marshal request: %w", err)
		}
		for i := 0; i < repeat; i++ {
			work = append(work, item{body: b})
		}
	}

	res := &Result{Requests: len(work), ByStatus: map[int]int{}}
	var mu sync.Mutex
	var wg sync.WaitGroup
	ch := make(chan item)
	client := &http.Client{Timeout: 60 * time.Second}
	start := time.Now()
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range ch {
				status, cached, err := post(client, baseURL+"/v1/run", it.body)
				mu.Lock()
				if err != nil {
					res.Errors = append(res.Errors, err.Error())
				} else {
					res.ByStatus[status]++
					if cached {
						res.CacheHits++
					}
				}
				mu.Unlock()
			}
		}()
	}
	for _, it := range work {
		ch <- it
	}
	close(ch)
	wg.Wait()
	res.Elapsed = time.Since(start)
	return res, nil
}

func post(client *http.Client, url string, body []byte) (status int, cached bool, err error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	var out struct {
		Cached bool `json:"cached"`
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, false, err
	}
	if resp.StatusCode == http.StatusOK {
		_ = json.Unmarshal(data, &out)
	}
	return resp.StatusCode, out.Cached, nil
}

// DebugVars fetches /debug/vars and returns the "graphite" registry snapshot:
// metric name → value. Counters and gauges are float64s; histograms are
// nested maps.
func DebugVars(baseURL string) (map[string]any, error) {
	resp, err := http.Get(baseURL + "/debug/vars")
	if err != nil {
		return nil, fmt.Errorf("loadgen: fetch /debug/vars: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: /debug/vars: HTTP %d", resp.StatusCode)
	}
	var all map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		return nil, fmt.Errorf("loadgen: decode /debug/vars: %w", err)
	}
	raw, ok := all["graphite"]
	if !ok {
		return nil, fmt.Errorf(`loadgen: /debug/vars has no "graphite" key`)
	}
	var snap map[string]any
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("loadgen: decode graphite snapshot: %w", err)
	}
	return snap, nil
}

// Metric reads a numeric metric from a DebugVars snapshot, returning 0 if
// absent or non-numeric.
func Metric(snap map[string]any, name string) float64 {
	v, ok := snap[name].(float64)
	if !ok {
		return 0
	}
	return v
}
