package serve

import (
	"errors"
	"strings"
	"testing"

	ival "graphite/internal/interval"
)

// fp canonicalizes like the server does (prepare does the same dance) and
// fingerprints the result; t.Fatal on anything a valid request wouldn't hit.
func fp(t *testing.T, graph, algo string, params map[string]int64, w *Window) string {
	t.Helper()
	a, err := CanonicalAlgo(algo)
	if err != nil {
		t.Fatalf("CanonicalAlgo(%q): %v", algo, err)
	}
	ps, err := normalizeParams(params)
	if err != nil {
		t.Fatalf("normalizeParams(%v): %v", params, err)
	}
	win, err := normalizeWindow(w)
	if err != nil {
		t.Fatalf("normalizeWindow(%v): %v", w, err)
	}
	return Fingerprint(graph, a, ps, win)
}

func TestFingerprintEquivalentRequests(t *testing.T) {
	base := fp(t, "g", "sssp", map[string]int64{"source": 1}, nil)
	equivalent := []struct {
		name   string
		algo   string
		params map[string]int64
		w      *Window
	}{
		{"explicit target equal to source", "sssp", map[string]int64{"source": 1, "target": 1}, nil},
		{"explicit zero defaults", "sssp", map[string]int64{"source": 1, "start": 0, "deadline": 0}, nil},
		{"uppercase algorithm", "SSSP", map[string]int64{"source": 1}, nil},
		{"nil window vs zero window", "sssp", map[string]int64{"source": 1}, &Window{Start: 0, End: 0}},
		{"unbounded end spelled -0 vs omitted", "sssp", map[string]int64{"source": 1}, &Window{}},
	}
	for _, tc := range equivalent {
		if got := fp(t, "g", tc.algo, tc.params, tc.w); got != base {
			t.Errorf("%s: fingerprint diverged\n got %s\nwant %s", tc.name, got, base)
		}
	}
}

func TestFingerprintAlgorithmAlias(t *testing.T) {
	pr := fp(t, "g", "pr", nil, nil)
	if got := fp(t, "g", "pagerank", nil, nil); got != pr {
		t.Errorf("pagerank alias split the cache: %s vs %s", got, pr)
	}
	// And the default iteration count is folded in, so an explicit default is
	// identical to an omitted one.
	if got := fp(t, "g", "pr", map[string]int64{"iterations": 10}, nil); got != pr {
		t.Errorf("explicit default iterations split the cache: %s vs %s", got, pr)
	}
}

func TestFingerprintDistinctRequests(t *testing.T) {
	base := fp(t, "g", "sssp", map[string]int64{"source": 1}, nil)
	distinct := map[string]string{
		"different graph":     fp(t, "g2", "sssp", map[string]int64{"source": 1}, nil),
		"different algorithm": fp(t, "g", "eat", map[string]int64{"source": 1}, nil),
		"different source":    fp(t, "g", "sssp", map[string]int64{"source": 2}, nil),
		"different target":    fp(t, "g", "sssp", map[string]int64{"source": 1, "target": 3}, nil),
		"different start":     fp(t, "g", "sssp", map[string]int64{"source": 1, "start": 4}, nil),
		"bounded window":      fp(t, "g", "sssp", map[string]int64{"source": 1}, &Window{Start: 0, End: 5}),
		"shifted window":      fp(t, "g", "sssp", map[string]int64{"source": 1}, &Window{Start: 2}),
	}
	seen := map[string]string{base: "base"}
	for name, got := range distinct {
		if prev, dup := seen[got]; dup {
			t.Errorf("%s collides with %s: %s", name, prev, got)
		}
		seen[got] = name
	}
}

func TestCanonicalAlgoRejectsUnknown(t *testing.T) {
	if _, err := CanonicalAlgo("dijkstra"); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown algorithm: got %v, want ErrBadRequest", err)
	}
}

func TestNormalizeParamsRejects(t *testing.T) {
	if _, err := normalizeParams(map[string]int64{"sources": 1}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown key: got %v, want ErrBadRequest", err)
	}
	if _, err := normalizeParams(map[string]int64{"source": -1}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("negative value: got %v, want ErrBadRequest", err)
	}
}

func TestNormalizeWindow(t *testing.T) {
	if _, err := normalizeWindow(&Window{Start: -1}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("negative start: got %v, want ErrBadRequest", err)
	}
	if _, err := normalizeWindow(&Window{Start: 5, End: 5}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("empty window: got %v, want ErrBadRequest", err)
	}
	w, err := normalizeWindow(nil)
	if err != nil || w != ival.Universe {
		t.Fatalf("nil window: got %v, %v; want Universe", w, err)
	}
	if lbl := windowLabel(w); lbl != "[0,inf)" {
		t.Fatalf("universe label: got %q", lbl)
	}
	w, err = normalizeWindow(&Window{Start: 2, End: 7})
	if err != nil {
		t.Fatal(err)
	}
	if lbl := windowLabel(w); lbl != "[2,7)" {
		t.Fatalf("bounded label: got %q", lbl)
	}
}

func TestFingerprintShape(t *testing.T) {
	got := fp(t, "g", "sssp", nil, nil)
	if len(got) != 64 || strings.ToLower(got) != got {
		t.Fatalf("fingerprint is not lowercase hex sha256: %q", got)
	}
}
