package serve

// The wire types of the JSON API. Numbers that are semantically times or
// vertex ids are int64 end to end; state values and intervals are rendered
// as strings with the same fmt verbs cmd/graphite-run prints, which is what
// makes a served result reconstructible bit-for-bit into the CLI's output
// (see FormatResult / RunResult.FormatLines).

// Window restricts a run to a time sub-window of the graph; the server
// slices the graph to it before running. End <= 0 means unbounded.
type Window struct {
	Start int64 `json:"start"`
	End   int64 `json:"end"`
}

// RunRequest asks the server to run one catalog algorithm over a loaded
// graph. Params carries the algorithm inputs by name (source, target, start,
// deadline, iterations); unknown keys are rejected.
type RunRequest struct {
	// Graph names one of the server's loaded graphs.
	Graph string `json:"graph"`
	// Algorithm is a catalog name ("sssp", "eat", "pr", ...).
	Algorithm string `json:"algorithm"`
	// Params are the algorithm parameters; omitted keys take the catalog
	// defaults, so semantically identical requests share a cache entry.
	Params map[string]int64 `json:"params,omitempty"`
	// Window restricts the run to a time sub-window; nil means the graph's
	// full lifetime.
	Window *Window `json:"window,omitempty"`
	// Workers overrides the BSP worker count for this run; it affects
	// execution only, never results, so it is not part of the cache key.
	Workers int `json:"workers,omitempty"`
	// TimeoutMS bounds the run; zero means the server's default deadline. A
	// run past its deadline is aborted at the next superstep barrier.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Async makes the call return a job id immediately; poll /v1/jobs/{id}.
	Async bool `json:"async,omitempty"`
	// NoCache bypasses the result cache and singleflight dedup for this
	// request (the fresh result still does not overwrite the cache).
	NoCache bool `json:"no_cache,omitempty"`
	// Span, when set, is the client-minted run-scoped span ID to thread
	// through the run's traces (16 hex chars, obs.NewSpanID form); empty
	// makes the server mint one at admission. Spans are observability
	// identity only — they never affect caching or results.
	Span string `json:"span,omitempty"`
}

// StatePart is one partition of a vertex's final interval state, rendered
// exactly as the CLI prints it.
type StatePart struct {
	Interval string `json:"interval"`
	Value    string `json:"value"`
}

// VertexResult is one vertex's final state.
type VertexResult struct {
	ID    int64       `json:"id"`
	Parts []StatePart `json:"parts,omitempty"`
}

// RunMetrics summarizes a run for the response; the full breakdown is
// available by attaching a tracer via Config.RunTracer.
type RunMetrics struct {
	Supersteps      int   `json:"supersteps"`
	ComputeCalls    int64 `json:"compute_calls"`
	ScatterCalls    int64 `json:"scatter_calls"`
	Messages        int64 `json:"messages"`
	MessageBytes    int64 `json:"message_bytes"`
	MakespanNS      int64 `json:"makespan_ns"`
	WarpCalls       int64 `json:"warp_calls"`
	WarpSuppressed  int64 `json:"warp_suppressed"`
	ActiveIntervals int64 `json:"active_intervals"`
}

// RunResult is a finished run: the canonical identity of the request, the
// per-vertex interval states, and the run metrics. Cached is per-response:
// true when the result was served from the cache or deduplicated onto
// another request's run rather than executed for this caller.
type RunResult struct {
	Graph       string `json:"graph"`
	Algorithm   string `json:"algorithm"`
	Fingerprint string `json:"fingerprint"`
	Window      string `json:"window"`
	// Span is the run-scoped span ID of the run that produced this result;
	// for cached or deduplicated responses it names the producing run, not
	// this request.
	Span   string `json:"span,omitempty"`
	Cached bool   `json:"cached"`
	// Epoch, for runs over a live graph, is the effective epoch the result
	// was computed under: the oldest epoch whose graph equals the snapshot's
	// within the window. Static graphs omit it.
	Epoch uint64 `json:"epoch,omitempty"`
	// Seeded marks a run that started from a prior window's retained
	// terminal states instead of superstep zero (incremental recomputation);
	// the result is bit-identical to a cold run either way.
	Seeded   bool           `json:"seeded,omitempty"`
	Metrics  RunMetrics     `json:"metrics"`
	Vertices []VertexResult `json:"vertices"`
}

// GraphInfo describes one loaded graph for /v1/graphs. Live graphs carry
// their current epoch and cumulative event count; a still-empty live graph
// reports zero vertices and an empty lifespan.
type GraphInfo struct {
	Name     string `json:"name"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Lifespan string `json:"lifespan,omitempty"`
	Horizon  int64  `json:"horizon"`
	Live     bool   `json:"live,omitempty"`
	Epoch    uint64 `json:"epoch,omitempty"`
	Events   int    `json:"events,omitempty"`
}

// EventWire is one mutation in a POST /v1/graphs/{id}/events batch. Op uses
// the event-log mnemonics of stream.ReadLog — av/rv (add/remove vertex),
// ae/re (add/remove edge), vp/ep (set vertex/edge property) — and the
// remaining fields apply per op exactly as in stream.Event: v for vertex
// events and vertex properties, e for edge events and edge properties,
// src/dst for ae, label/value for properties.
type EventWire struct {
	Op    string `json:"op"`
	T     int64  `json:"t"`
	V     int64  `json:"v,omitempty"`
	E     int64  `json:"e,omitempty"`
	Src   int64  `json:"src,omitempty"`
	Dst   int64  `json:"dst,omitempty"`
	Label string `json:"label,omitempty"`
	Value int64  `json:"value,omitempty"`
}

// EventsRequest is the body of POST /v1/graphs/{id}/events: one atomic batch
// of time-ordered mutations. Either every event is accepted — durably logged
// before the new epoch becomes visible — or the whole batch is rejected and
// the graph is unchanged.
type EventsRequest struct {
	Events []EventWire `json:"events"`
}

// EventsResult acknowledges an ingested batch with the newly published
// epoch's summary.
type EventsResult struct {
	Graph    string `json:"graph"`
	Epoch    uint64 `json:"epoch"`
	Events   int    `json:"events"` // cumulative since the log began
	LastTime int64  `json:"last_time"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
}

// JobView is the external state of an async job.
type JobView struct {
	ID          string     `json:"id"`
	Status      string     `json:"status"`
	Graph       string     `json:"graph"`
	Algorithm   string     `json:"algorithm"`
	Fingerprint string     `json:"fingerprint"`
	Error       string     `json:"error,omitempty"`
	Result      *RunResult `json:"result,omitempty"`
}
