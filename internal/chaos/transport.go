// Package chaos injects deterministic faults into the BSP substrate so the
// fault-tolerance layer (superstep checkpointing, panic isolation, transport
// retry and rollback-and-replay) can be proven under failure, not just
// asserted. GRAPHITE inherits this kind of testing from Giraph's Pregel
// substrate; our from-scratch engine has to earn it with an injection
// harness instead.
//
// Two injectors are provided: Transport, an in-memory worker mesh that
// drops, corrupts, duplicates and delays frames on a deterministic schedule,
// and FaultyProgram, a Program wrapper that panics on schedule. Both count
// what they injected so tests can assert the faults actually happened.
package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// FaultKind enumerates the transport fault types.
type FaultKind int

// The injectable transport faults.
const (
	// FaultDrop makes Send return an error without shipping the frame,
	// modelling a reset connection. The engine's bounded send retry absorbs
	// isolated drops.
	FaultDrop FaultKind = iota
	// FaultCorrupt replaces the frame with a poisoned header the receiver
	// is guaranteed to reject at decode time (as a checksum mismatch
	// would), forcing a superstep rollback.
	FaultCorrupt
	// FaultDuplicate ships the frame twice. The receiver detects the
	// straggler via the one-frame-per-peer BSP invariant and fails the
	// superstep.
	FaultDuplicate
	// FaultDelay sleeps before shipping; it perturbs timing only.
	FaultDelay
)

// TransportOptions parameterizes the fault schedule. Faults are injected on
// every Every-th Send call until the per-kind budgets are spent, in an order
// shuffled deterministically by Seed; the fault *count* is therefore exactly
// reproducible, while the victim (src, dst) pair depends on goroutine
// scheduling — which the rollback protocol must (and does) tolerate.
type TransportOptions struct {
	// Seed shuffles the fault order and draws delay durations.
	Seed int64
	// Drops, Corruptions, Duplicates and Delays are per-kind fault budgets.
	Drops       int
	Corruptions int
	Duplicates  int
	Delays      int
	// Every injects one fault per k-th Send call; zero means 5.
	Every int
	// DelayMax bounds each injected delay; zero means 2ms.
	DelayMax time.Duration
}

// FaultStats counts what a Transport actually injected.
type FaultStats struct {
	Drops       int
	Corruptions int
	Duplicates  int
	Delays      int
	Resets      int
}

// Faults returns the number of injected failures (delays excluded: they
// perturb timing without failing anything).
func (s FaultStats) Faults() int { return s.Drops + s.Corruptions + s.Duplicates }

// Transport is an in-memory engine.Transport mesh with scheduled fault
// injection. It implements engine.Resettable, so the engine can roll a
// failed exchange back and replay it: Reset discards every in-flight frame.
//
// The engine's exchange runs ship and receive as separate barriers, so at
// Recv time exactly one frame per peer must be queued; Recv enforces that
// invariant and reports missing or straggler frames as errors.
type Transport struct {
	n    int
	opts TransportOptions

	mu     sync.Mutex
	queues [][][][]byte // [src][dst] FIFO of frames
	plan   []FaultKind  // remaining faults, consumed front to back
	sends  int          // total Send calls, fault-schedule clock
	rng    *rand.Rand
	stats  FaultStats
	closed bool
}

// NewTransport builds an n-worker chaos mesh.
func NewTransport(n int, opts TransportOptions) (*Transport, error) {
	if n < 1 {
		return nil, fmt.Errorf("chaos: transport needs at least one worker")
	}
	if opts.Every <= 0 {
		opts.Every = 5
	}
	if opts.DelayMax <= 0 {
		opts.DelayMax = 2 * time.Millisecond
	}
	t := &Transport{
		n:      n,
		opts:   opts,
		queues: make([][][][]byte, n),
		rng:    rand.New(rand.NewSource(opts.Seed)),
	}
	for src := range t.queues {
		t.queues[src] = make([][][]byte, n)
	}
	for i := 0; i < opts.Drops; i++ {
		t.plan = append(t.plan, FaultDrop)
	}
	for i := 0; i < opts.Corruptions; i++ {
		t.plan = append(t.plan, FaultCorrupt)
	}
	for i := 0; i < opts.Duplicates; i++ {
		t.plan = append(t.plan, FaultDuplicate)
	}
	for i := 0; i < opts.Delays; i++ {
		t.plan = append(t.plan, FaultDelay)
	}
	t.rng.Shuffle(len(t.plan), func(i, j int) { t.plan[i], t.plan[j] = t.plan[j], t.plan[i] })
	return t, nil
}

// poisonFrame is an intentionally undecodable batch: a uvarint continuation
// byte with nothing following, so decodeBatch always rejects it.
var poisonFrame = []byte{0xFF}

// Send implements engine.Transport with scheduled fault injection.
func (t *Transport) Send(src, dst int, batch []byte) error {
	if src < 0 || src >= t.n || dst < 0 || dst >= t.n || src == dst {
		return fmt.Errorf("chaos: invalid send pair %d->%d", src, dst)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("chaos: transport closed")
	}
	t.sends++
	fault := FaultKind(-1)
	if len(t.plan) > 0 && t.sends%t.opts.Every == 0 {
		fault = t.plan[0]
		t.plan = t.plan[1:]
	}
	frame := append([]byte(nil), batch...)
	switch fault {
	case FaultDrop:
		t.stats.Drops++
		t.mu.Unlock()
		return fmt.Errorf("chaos: dropped frame %d->%d (injected)", src, dst)
	case FaultCorrupt:
		t.stats.Corruptions++
		frame = append([]byte(nil), poisonFrame...)
	case FaultDuplicate:
		t.stats.Duplicates++
		t.queues[src][dst] = append(t.queues[src][dst], frame)
	case FaultDelay:
		t.stats.Delays++
		d := time.Duration(t.rng.Int63n(int64(t.opts.DelayMax)))
		t.mu.Unlock()
		time.Sleep(d)
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return fmt.Errorf("chaos: transport closed")
		}
	}
	t.queues[src][dst] = append(t.queues[src][dst], frame)
	t.mu.Unlock()
	return nil
}

// Recv implements engine.Transport: exactly one frame per peer, ascending
// source order. A missing frame (dropped upstream) or a straggler frame
// (duplicate, or stale after an aborted exchange) fails the superstep.
func (t *Transport) Recv(dst int) ([][]byte, error) {
	if dst < 0 || dst >= t.n {
		return nil, fmt.Errorf("chaos: invalid recv worker %d", dst)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, fmt.Errorf("chaos: transport closed")
	}
	var out [][]byte
	for src := 0; src < t.n; src++ {
		if src == dst {
			continue
		}
		q := t.queues[src][dst]
		if len(q) == 0 {
			return nil, fmt.Errorf("chaos: missing frame %d->%d (dropped?)", src, dst)
		}
		out = append(out, q[0])
		t.queues[src][dst] = q[1:]
		if len(t.queues[src][dst]) > 0 {
			return nil, fmt.Errorf("chaos: straggler frame %d->%d (duplicate or stale)", src, dst)
		}
	}
	return out, nil
}

// Reset implements engine.Resettable: it discards every in-flight frame so
// a rolled-back exchange replays from a clean slate.
func (t *Transport) Reset() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for src := range t.queues {
		for dst := range t.queues[src] {
			t.queues[src][dst] = nil
		}
	}
	t.stats.Resets++
	return nil
}

// Close implements engine.Transport.
func (t *Transport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	for src := range t.queues {
		for dst := range t.queues[src] {
			t.queues[src][dst] = nil
		}
	}
	return nil
}

// Stats returns what has been injected so far.
func (t *Transport) Stats() FaultStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// PendingFaults returns how many scheduled faults have not fired yet.
func (t *Transport) PendingFaults() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.plan)
}
