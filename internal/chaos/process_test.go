package chaos

// The kill-9 recovery proof: real worker processes are SIGKILLed at planted
// points — mid-superstep, mid-checkpoint-write (between temp file and
// rename), and mid-barrier (after the report is sent) — and the respawned
// replacement must restore from disk such that the final result is
// bit-identical to a fault-free cluster run of the same computation.

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"graphite/internal/algorithms"
	"graphite/internal/cluster"
	"graphite/internal/core"
	"graphite/internal/tgraph"
)

// TestMain routes re-executions of this binary into worker or WAL-writer
// mode before any test runs; parent runs proceed normally.
func TestMain(m *testing.M) {
	RunChildWorker()
	runWALChild()
	runCompactChild()
	os.Exit(m.Run())
}

const procWorkers = 3

// clusterProcessRun executes one full cluster run with real worker
// processes, optionally planting a crash in one of them.
func clusterProcessRun(t *testing.T, algo string, p algorithms.Params, crash map[int]string) (*core.Result, cluster.Report, int) {
	t.Helper()
	coord, err := cluster.New(cluster.Config{
		Workers:       procWorkers,
		Graph:         "transit",
		Algo:          algo,
		Params:        p,
		Lease:         500 * time.Millisecond,
		RejoinTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		res *core.Result
		err error
	}
	out := make(chan outcome, 1)
	go func() {
		res, err := coord.Serve(ln)
		out <- outcome{res, err}
	}()
	base := t.TempDir()
	dirs := make([]string, procWorkers)
	for i := range dirs {
		dirs[i] = filepath.Join(base, fmt.Sprintf("w%d", i))
	}
	fleet, err := StartFleet(FleetConfig{
		Addr:   ln.Addr().String(),
		Dirs:   dirs,
		Crash:  crash,
		Stderr: testing.Verbose(),
	})
	if err != nil {
		coord.Close()
		t.Fatal(err)
	}
	var o outcome
	select {
	case o = <-out:
	case <-time.After(90 * time.Second):
		coord.Close()
		fleet.Stop()
		t.Fatal("cluster run timed out")
	}
	if o.err != nil {
		fleet.Stop()
		t.Fatalf("cluster run failed: %v", o.err)
	}
	if err := fleet.Wait(); err != nil {
		t.Fatalf("fleet: %v", err)
	}
	return o.res, coord.Report(), fleet.Respawns()
}

func assertIdentical(t *testing.T, g *tgraph.Graph, got, want *core.Result) {
	t.Helper()
	for i := 0; i < g.NumVertices(); i++ {
		gs, ws := got.State(i), want.State(i)
		if (gs == nil) != (ws == nil) {
			t.Fatalf("vertex %d: state presence mismatch", i)
		}
		if gs == nil {
			continue
		}
		if !reflect.DeepEqual(gs.Parts(), ws.Parts()) {
			t.Errorf("vertex %d (%v):\n  recovered:  %v\n  fault-free: %v",
				i, g.VertexAt(i).ID, gs.Parts(), ws.Parts())
		}
	}
}

// TestProcessKillRecovery is the acceptance matrix: every kill phase on
// SSSP, plus a mid-superstep kill on PageRank (float-order-sensitive: any
// divergence in replay order shows) and on EAT.
func TestProcessKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real worker processes; skipped in -short")
	}
	g := tgraph.TransitExample()
	src := algorithms.Params{Source: 0}
	for _, tc := range []struct {
		name  string
		algo  string
		p     algorithms.Params
		crash string
	}{
		// compute:3 — killed after shipping superstep-3 batches, before
		// delivering; peers hold a half-finished superstep.
		{name: "sssp-kill-compute", algo: "sssp", p: src, crash: "compute:3"},
		// checkpoint:2 — killed between the generation-1 temp-file write
		// and its atomic rename; the torn write must never be loaded and
		// the cluster must fall back to generation 0 and replay.
		{name: "sssp-kill-checkpoint", algo: "sssp", p: src, crash: "checkpoint:2"},
		// barrier:3 — killed after the superstep-3 barrier report; the
		// coordinator may have closed the superstep already.
		{name: "sssp-kill-barrier", algo: "sssp", p: src, crash: "barrier:3"},
		{name: "pr-kill-compute", algo: "pr", crash: "compute:3"},
		{name: "eat-kill-compute", algo: "eat", p: src, crash: "compute:3"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, cleanRep, cleanRespawns := clusterProcessRun(t, tc.algo, tc.p, nil)
			if cleanRespawns != 0 || len(cleanRep.Recoveries) != 0 {
				t.Fatalf("fault-free run was not fault-free: respawns=%d recoveries=%+v",
					cleanRespawns, cleanRep.Recoveries)
			}
			got, rep, respawns := clusterProcessRun(t, tc.algo, tc.p, map[int]string{1: tc.crash})
			if respawns < 1 {
				t.Fatalf("planted crash did not kill the worker (respawns=%d)", respawns)
			}
			if len(rep.Recoveries) < 1 {
				t.Fatalf("no recovery recorded: %+v", rep)
			}
			r := rep.Recoveries[0]
			if r.MTTR <= 0 || r.RestoredBytes <= 0 {
				t.Errorf("recovery accounting incomplete: %+v", r)
			}
			t.Logf("recovery: failed=%d resume=%d gen=%d replayed=%d mttr=%v restored=%dB",
				r.Failed, r.ResumeAt, r.Gen, r.Replayed, r.MTTR.Round(time.Millisecond), r.RestoredBytes)
			assertIdentical(t, g, got, want)
		})
	}
}
