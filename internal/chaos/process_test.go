package chaos

// The kill-9 recovery proof: real worker processes are SIGKILLed at planted
// points — mid-superstep, mid-checkpoint-write (between temp file and
// rename), and mid-barrier (after the report is sent) — and the respawned
// replacement must restore from disk such that the final result is
// bit-identical to a fault-free cluster run of the same computation.

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"graphite/internal/algorithms"
	"graphite/internal/cluster"
	"graphite/internal/core"
	"graphite/internal/tgraph"
)

// TestMain routes re-executions of this binary into worker or WAL-writer
// mode before any test runs; parent runs proceed normally.
func TestMain(m *testing.M) {
	RunChildWorker()
	runWALChild()
	runCompactChild()
	os.Exit(m.Run())
}

const procWorkers = 3

// clusterProcessRun executes one full cluster run with real worker
// processes over the given graph spec, optionally planting a crash in one
// of them. Workers run with the default (direct) data plane, so every kill
// in the matrix also exercises mesh teardown and re-dial.
func clusterProcessRun(t *testing.T, graph, algo string, p algorithms.Params, crash map[int]string) (*core.Result, cluster.Report, int) {
	t.Helper()
	coord, err := cluster.New(cluster.Config{
		Workers:       procWorkers,
		Graph:         graph,
		Algo:          algo,
		Params:        p,
		Lease:         500 * time.Millisecond,
		RejoinTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		res *core.Result
		err error
	}
	out := make(chan outcome, 1)
	go func() {
		res, err := coord.Serve(ln)
		out <- outcome{res, err}
	}()
	base := t.TempDir()
	dirs := make([]string, procWorkers)
	for i := range dirs {
		dirs[i] = filepath.Join(base, fmt.Sprintf("w%d", i))
	}
	fleet, err := StartFleet(FleetConfig{
		Addr:   ln.Addr().String(),
		Dirs:   dirs,
		Crash:  crash,
		Stderr: testing.Verbose(),
	})
	if err != nil {
		coord.Close()
		t.Fatal(err)
	}
	var o outcome
	select {
	case o = <-out:
	case <-time.After(90 * time.Second):
		coord.Close()
		fleet.Stop()
		t.Fatal("cluster run timed out")
	}
	if o.err != nil {
		fleet.Stop()
		t.Fatalf("cluster run failed: %v", o.err)
	}
	if err := fleet.Wait(); err != nil {
		t.Fatalf("fleet: %v", err)
	}
	return o.res, coord.Report(), fleet.Respawns()
}

func assertIdentical(t *testing.T, g *tgraph.Graph, got, want *core.Result) {
	t.Helper()
	for i := 0; i < g.NumVertices(); i++ {
		gs, ws := got.State(i), want.State(i)
		if (gs == nil) != (ws == nil) {
			t.Fatalf("vertex %d: state presence mismatch", i)
		}
		if gs == nil {
			continue
		}
		if !reflect.DeepEqual(gs.Parts(), ws.Parts()) {
			t.Errorf("vertex %d (%v):\n  recovered:  %v\n  fault-free: %v",
				i, g.VertexAt(i).ID, gs.Parts(), ws.Parts())
		}
	}
}

// TestProcessKillRecovery is the acceptance matrix: every kill phase on
// SSSP, plus a mid-superstep kill on PageRank (float-order-sensitive: any
// divergence in replay order shows) and on EAT.
func TestProcessKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real worker processes; skipped in -short")
	}
	g := tgraph.TransitExample()
	src := algorithms.Params{Source: 0}
	for _, tc := range []struct {
		name  string
		algo  string
		p     algorithms.Params
		crash string
	}{
		// compute:3 — killed after shipping superstep-3 batches, before
		// delivering; peers hold a half-finished superstep.
		{name: "sssp-kill-compute", algo: "sssp", p: src, crash: "compute:3"},
		// checkpoint:2 — killed between the generation-1 temp-file write
		// and its atomic rename; the torn write must never be loaded and
		// the cluster must fall back to generation 0 and replay.
		{name: "sssp-kill-checkpoint", algo: "sssp", p: src, crash: "checkpoint:2"},
		// barrier:3 — killed after the superstep-3 barrier report; the
		// coordinator may have closed the superstep already.
		{name: "sssp-kill-barrier", algo: "sssp", p: src, crash: "barrier:3"},
		// peersend:3 — killed mid-ship on the direct data plane: the first
		// peer batch has left over the mesh, the rest never will. Peers hold
		// a torn exchange and half-open mesh connections; the replacement
		// must re-dial and the replay must erase the partial delivery.
		{name: "sssp-kill-peersend", algo: "sssp", p: src, crash: "peersend:3"},
		{name: "pr-kill-compute", algo: "pr", crash: "compute:3"},
		{name: "pr-kill-peersend", algo: "pr", crash: "peersend:2"},
		{name: "eat-kill-compute", algo: "eat", p: src, crash: "compute:3"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, cleanRep, cleanRespawns := clusterProcessRun(t, "transit", tc.algo, tc.p, nil)
			if cleanRespawns != 0 || len(cleanRep.Recoveries) != 0 {
				t.Fatalf("fault-free run was not fault-free: respawns=%d recoveries=%+v",
					cleanRespawns, cleanRep.Recoveries)
			}
			got, rep, respawns := clusterProcessRun(t, "transit", tc.algo, tc.p, map[int]string{1: tc.crash})
			if respawns < 1 {
				t.Fatalf("planted crash did not kill the worker (respawns=%d)", respawns)
			}
			if len(rep.Recoveries) < 1 {
				t.Fatalf("no recovery recorded: %+v", rep)
			}
			r := rep.Recoveries[0]
			if r.MTTR <= 0 || r.RestoredBytes <= 0 {
				t.Errorf("recovery accounting incomplete: %+v", r)
			}
			t.Logf("recovery: failed=%d resume=%d gen=%d replayed=%d mttr=%v restored=%dB",
				r.Failed, r.ResumeAt, r.Gen, r.Replayed, r.MTTR.Round(time.Millisecond), r.RestoredBytes)
			assertIdentical(t, g, got, want)
		})
	}
}

// TestProcessKillRecoveryPartitioned repeats the worst kill (mid-peer-send
// on the direct plane) with every process on per-shard partition files:
// the replacement worker must map its own induced subgraph, adopt the
// embedded assignment, rebuild the mesh, and still converge bit-identically
// to the fault-free whole-graph run.
func TestProcessKillRecoveryPartitioned(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real worker processes; skipped in -short")
	}
	g := tgraph.TransitExample()
	dir := filepath.Join(t.TempDir(), "parts")
	if _, err := cluster.WritePartitions(g, dir, procWorkers); err != nil {
		t.Fatal(err)
	}
	p := algorithms.Params{Source: 0}
	want, cleanRep, cleanRespawns := clusterProcessRun(t, "transit", "sssp", p, nil)
	if cleanRespawns != 0 || len(cleanRep.Recoveries) != 0 {
		t.Fatalf("fault-free run was not fault-free: respawns=%d recoveries=%+v",
			cleanRespawns, cleanRep.Recoveries)
	}
	got, rep, respawns := clusterProcessRun(t, "shard:"+dir, "sssp", p, map[int]string{1: "peersend:3"})
	if respawns < 1 {
		t.Fatalf("planted crash did not kill the worker (respawns=%d)", respawns)
	}
	if len(rep.Recoveries) < 1 {
		t.Fatalf("no recovery recorded: %+v", rep)
	}
	if len(rep.WorkerGraphBytes) != procWorkers {
		t.Fatalf("worker graph bytes: %v", rep.WorkerGraphBytes)
	}
	full, err := os.Stat(filepath.Join(dir, tgraph.PartitionFullName))
	if err != nil {
		t.Fatal(err)
	}
	for s, b := range rep.WorkerGraphBytes {
		if b <= 0 || b >= full.Size() {
			t.Errorf("shard %d resident graph = %dB, want (0, %d)", s, b, full.Size())
		}
	}
	assertIdentical(t, g, got, want)
}
