package chaos

// Process-level chaos: spawn real worker processes, SIGKILL them at planted
// points (mid-superstep, mid-checkpoint-write, mid-barrier), and respawn
// replacements on the same checkpoint directory — the harness behind the
// kill-9 recovery proof. The parent process plays coordinator; workers are
// re-executions of the parent binary detected via an environment variable,
// the standard trick for subprocess tests without a second binary.
//
// chaos imports cluster; cluster must never import chaos.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"

	"graphite/internal/cluster"
	"graphite/internal/obs"
)

// ChildEnv marks a process as a cluster worker child: its value is a JSON
// ChildSpec. Binaries that use Fleet MUST call RunChildWorker first thing
// in main (or TestMain) so re-executions become workers instead of running
// the parent's code path.
const ChildEnv = "GRAPHITE_CLUSTER_CHILD"

// ChildSpec is the worker bootstrap carried in ChildEnv. HTTP makes the
// child serve its metric registry at a loopback /metrics (+ /debug/)
// endpoint, writing the bound address to Dir/WorkerHTTPAddrFile so the
// parent can scrape it. Trace makes the child append its JSONL run trace to
// Dir/WorkerTraceFile — append, so a respawned incarnation extends the same
// file and the directory accumulates one trace for the whole slot.
type ChildSpec struct {
	Addr  string `json:"addr"`
	Dir   string `json:"dir"`
	HTTP  bool   `json:"http,omitempty"`
	Trace bool   `json:"trace,omitempty"`
}

// Per-slot observability artifacts, relative to the worker directory.
const (
	WorkerHTTPAddrFile = "http.addr"
	WorkerTraceFile    = "trace.jsonl"
)

// RunChildWorker checks ChildEnv and, when set, runs this process as a
// cluster worker until completion, then exits — it never returns in that
// case. A planted crash is read from cluster.CrashEnv. When ChildEnv is
// unset it returns immediately.
func RunChildWorker() {
	raw := os.Getenv(ChildEnv)
	if raw == "" {
		return
	}
	var spec ChildSpec
	if err := json.Unmarshal([]byte(raw), &spec); err != nil {
		fmt.Fprintf(os.Stderr, "chaos child: bad %s: %v\n", ChildEnv, err)
		os.Exit(2)
	}
	plan, err := cluster.ParseCrashPlan(os.Getenv(cluster.CrashEnv))
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos child: %v\n", err)
		os.Exit(2)
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	cfg := cluster.WorkerConfig{
		Addr:   spec.Addr,
		Dir:    spec.Dir,
		Crash:  plan,
		Logger: log,
	}
	if spec.HTTP || spec.Trace {
		if err := os.MkdirAll(spec.Dir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "chaos child: %v\n", err)
			os.Exit(2)
		}
	}
	var trace *obs.LineTracer
	if spec.Trace {
		trace, err = obs.AppendJSONLTrace(filepath.Join(spec.Dir, WorkerTraceFile))
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos child: %v\n", err)
			os.Exit(2)
		}
		cfg.Tracer = trace
	}
	if spec.HTTP {
		reg := obs.NewRegistry()
		cfg.Registry = reg
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos child: metrics listener: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(filepath.Join(spec.Dir, WorkerHTTPAddrFile),
			[]byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "chaos child: %v\n", err)
			os.Exit(2)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.MetricsHandler(reg))
		mux.Handle("/debug/", obs.DebugMux(reg))
		go func() { _ = http.Serve(ln, mux) }()
	}
	err = cluster.RunWorker(context.Background(), cfg)
	if trace != nil {
		_ = trace.Close()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos child (%s): %v\n", spec.Dir, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// FleetConfig parameterizes a worker fleet.
type FleetConfig struct {
	// Addr is the coordinator address the workers dial.
	Addr string
	// Dirs are the per-worker checkpoint directories; one worker process is
	// spawned per entry. A respawned worker reuses its slot's directory —
	// that is what makes it a valid replacement for the process it follows.
	Dirs []string
	// Crash plants cluster.CrashEnv in the FIRST incarnation of the given
	// worker slots. Respawns never inherit a crash: a replacement is an
	// honest worker.
	Crash map[int]string
	// MaxRespawns bounds respawns per slot; zero means 2.
	MaxRespawns int
	// Stderr, when true, wires the children's stderr to the parent's.
	Stderr bool
	// HTTP and Trace enable the per-worker observability artifacts for every
	// slot (see ChildSpec).
	HTTP  bool
	Trace bool
}

// Fleet supervises a set of worker child processes: it respawns any worker
// that dies without a clean exit (SIGKILL from a planted crash, primarily)
// and reports how it all ended.
type Fleet struct {
	cfg  FleetConfig
	exe  string
	wg   sync.WaitGroup
	mu   sync.Mutex
	errs []error
	// procs holds the currently-running command per slot for Stop.
	procs    []*exec.Cmd
	respawns int
	stopped  bool
}

// StartFleet spawns one worker process per configured directory.
func StartFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Addr == "" || len(cfg.Dirs) == 0 {
		return nil, errors.New("chaos: fleet requires Addr and Dirs")
	}
	if cfg.MaxRespawns <= 0 {
		cfg.MaxRespawns = 2
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("chaos: cannot locate own binary for re-exec: %w", err)
	}
	f := &Fleet{cfg: cfg, exe: exe, procs: make([]*exec.Cmd, len(cfg.Dirs))}
	for slot := range cfg.Dirs {
		f.wg.Add(1)
		go f.supervise(slot)
	}
	return f, nil
}

// spawn launches one incarnation of slot's worker. Only the first
// incarnation carries a planted crash.
func (f *Fleet) spawn(slot int, withCrash bool) (*exec.Cmd, error) {
	spec, err := json.Marshal(ChildSpec{
		Addr: f.cfg.Addr, Dir: f.cfg.Dirs[slot],
		HTTP: f.cfg.HTTP, Trace: f.cfg.Trace,
	})
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(f.exe)
	cmd.Env = append(os.Environ(), ChildEnv+"="+string(spec))
	if withCrash {
		if plan, ok := f.cfg.Crash[slot]; ok {
			cmd.Env = append(cmd.Env, cluster.CrashEnv+"="+plan)
		}
	}
	if f.cfg.Stderr {
		cmd.Stderr = os.Stderr
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stopped {
		return nil, errors.New("chaos: fleet stopped")
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	f.procs[slot] = cmd
	return cmd, nil
}

// supervise runs one slot: spawn, wait, respawn on unclean death.
func (f *Fleet) supervise(slot int) {
	defer f.wg.Done()
	for attempt := 0; ; attempt++ {
		cmd, err := f.spawn(slot, attempt == 0)
		if err != nil {
			f.record(fmt.Errorf("chaos: slot %d spawn: %w", slot, err))
			return
		}
		err = cmd.Wait()
		if err == nil {
			return // clean exit: the run completed
		}
		f.mu.Lock()
		stopped := f.stopped
		f.respawns++
		over := attempt+1 > f.cfg.MaxRespawns
		f.mu.Unlock()
		if stopped {
			return
		}
		if over {
			f.record(fmt.Errorf("chaos: slot %d kept dying (%d respawns): %w", slot, attempt+1, err))
			return
		}
		// The death is the experiment; the respawn is the recovery.
	}
}

func (f *Fleet) record(err error) {
	f.mu.Lock()
	f.errs = append(f.errs, err)
	f.mu.Unlock()
}

// Respawns reports how many worker deaths the fleet replaced so far.
func (f *Fleet) Respawns() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.respawns
}

// Wait blocks until every slot's supervision ends (clean worker exits, or
// giving up) and returns the collected errors.
func (f *Fleet) Wait() error {
	f.wg.Wait()
	f.mu.Lock()
	defer f.mu.Unlock()
	return errors.Join(f.errs...)
}

// Stop kills all running workers and stops respawning; for teardown after
// a failed run. A fleet whose run completed needs no Stop.
func (f *Fleet) Stop() {
	f.mu.Lock()
	f.stopped = true
	procs := append([]*exec.Cmd(nil), f.procs...)
	f.mu.Unlock()
	for _, cmd := range procs {
		if cmd != nil && cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
	}
	f.wg.Wait()
}
