package chaos

import (
	"reflect"
	"testing"

	"graphite/internal/algorithms"
	"graphite/internal/core"
	"graphite/internal/tgraph"
)

// chaosSSSPSteal mirrors chaosSSSP with the work-stealing scheduler enabled
// at the most adversarial granularity (one-slot chunks: maximal steal
// traffic and lane merging).
func chaosSSSPSteal(t *testing.T, checkpointEvery int, tr *Transport, fp *FaultyProgram) (*core.Result, error) {
	t.Helper()
	g := tgraph.TransitExample()
	a := &algorithms.SSSP{Source: 0, StartTime: 0}
	opts := a.Options()
	opts.NumWorkers = 3
	opts.Steal = true
	opts.StealChunk = 1
	opts.CheckpointEvery = checkpointEvery
	opts.MaxRecoveries = 10
	if tr != nil {
		opts.Transport = tr
	}
	if fp != nil {
		opts.WrapProgram = fp.Wrap
	}
	return core.Run(g, a, opts)
}

// TestChaosRollbackRestoresFrontiers proves rollback-and-replay restores the
// dense frontiers exactly under the work-stealing scheduler: an SSSP run with
// stealing, seeded transport faults and an injected panic must replay to the
// bit-identical states and deterministic metrics of a fault-free run on the
// *static* scheduler. If a checkpoint restore ever resurrected a stale
// frontier — a slot missing, duplicated, or out of sync with its active flag
// — the replayed supersteps would compute a different vertex set and the
// message totals below would diverge.
func TestChaosRollbackRestoresFrontiers(t *testing.T) {
	base, err := chaosSSSP(t, 0, nil, nil) // fault-free, stealing off
	if err != nil {
		t.Fatalf("fault-free run: %v", err)
	}

	tr, err := NewTransport(3, TransportOptions{
		Seed: 11, Drops: 1, Corruptions: 1, Duplicates: 1, Delays: 1, Every: 4,
	})
	if err != nil {
		t.Fatalf("NewTransport: %v", err)
	}
	defer tr.Close()
	fp := NewFaultyProgram(PanicPlan{Superstep: 3, Vertex: AnyVertex})
	got, err := chaosSSSPSteal(t, 1, tr, fp)
	if err != nil {
		t.Fatalf("chaos steal run: %v", err)
	}

	if fp.Panics() < 1 {
		t.Fatalf("scheduled panic never fired")
	}
	if got.Metrics.Recoveries < 1 {
		t.Errorf("chaos run recovered %d times, want >= 1", got.Metrics.Recoveries)
	}
	for i := 0; i < base.Graph.NumVertices(); i++ {
		if !reflect.DeepEqual(base.State(i).Parts(), got.State(i).Parts()) {
			t.Errorf("vertex %d partitions diverged:\nstatic fault-free: %v\nsteal chaos:       %v",
				i, base.State(i).Parts(), got.State(i).Parts())
		}
	}
	bm, gm := base.Metrics, got.Metrics
	if bm.Supersteps != gm.Supersteps || bm.ComputeCalls != gm.ComputeCalls ||
		bm.ScatterCalls != gm.ScatterCalls || bm.Messages != gm.Messages ||
		bm.MessageBytes != gm.MessageBytes {
		t.Errorf("metrics diverged:\nstatic fault-free: %v\nsteal chaos:       %v", bm, gm)
	}
	if base.Stats != got.Stats {
		t.Errorf("ICM stats diverged:\nstatic fault-free: %+v\nsteal chaos: %+v", base.Stats, got.Stats)
	}
}
