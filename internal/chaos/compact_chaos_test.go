package chaos

// The compaction durability proof: a child process applies deterministic
// batches to a live graph that auto-compacts every ~20 events, so the kill
// can land anywhere in the compaction protocol — mid-snapshot-write,
// between the snapshot rename and the log rotation, or mid-rotation. The
// recovery invariant is the same as the plain WAL test (acked batches are
// durable, graph regenerates bit-identically), with one addition: after
// enough batches a snapshot must exist, recovery must start from it, and
// must replay strictly fewer events than the full history.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"graphite/internal/live"
)

// compactChildEnv marks a re-execution as a compacting WAL writer child;
// its value is a JSON walChildSpec (same shape as the plain WAL child).
const compactChildEnv = "GRAPHITE_COMPACT_CHILD"

// compactEvery keeps compactions frequent relative to batch size (~9
// events each), so a random kill has a real chance of landing inside the
// snapshot-write / rename / rotate window.
const compactEvery = 20

// runCompactChild checks compactChildEnv and, when set, applies the
// deterministic walBatch stream with auto-compaction enabled, fsyncing an
// ack line after each accepted batch. Never returns when the env is set.
func runCompactChild() {
	raw := os.Getenv(compactChildEnv)
	if raw == "" {
		return
	}
	var spec walChildSpec
	if err := json.Unmarshal([]byte(raw), &spec); err != nil {
		fmt.Fprintf(os.Stderr, "compact child: bad %s: %v\n", compactChildEnv, err)
		os.Exit(2)
	}
	g, err := live.Open(spec.WAL, live.Options{Name: "chaos-compact", CompactEvery: compactEvery})
	if err != nil {
		fmt.Fprintf(os.Stderr, "compact child: open: %v\n", err)
		os.Exit(1)
	}
	ack, err := os.OpenFile(spec.Ack, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compact child: ack file: %v\n", err)
		os.Exit(1)
	}
	for i := int(g.Info().Epoch); i < spec.Max; i++ {
		if _, err := g.Apply(walBatch(i)); err != nil {
			fmt.Fprintf(os.Stderr, "compact child: apply %d: %v\n", i, err)
			os.Exit(1)
		}
		if _, err := fmt.Fprintf(ack, "%d\n", i); err != nil {
			fmt.Fprintf(os.Stderr, "compact child: ack %d: %v\n", i, err)
			os.Exit(1)
		}
		if err := ack.Sync(); err != nil {
			fmt.Fprintf(os.Stderr, "compact child: ack sync: %v\n", err)
			os.Exit(1)
		}
	}
	os.Exit(0)
}

func TestCompactionSurvivesSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	walP := filepath.Join(dir, "g.wal")
	ackP := filepath.Join(dir, "acks")
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := json.Marshal(walChildSpec{WAL: walP, Ack: ackP, Max: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	var childErr bytes.Buffer
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), compactChildEnv+"="+string(spec))
	cmd.Stderr = &childErr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// With ~9 events per batch and a compaction every 20 events, 40 acked
	// batches guarantee many completed compactions before the kill, which
	// lands at an arbitrary point of the protocol.
	const minAcks = 40
	deadline := time.Now().Add(60 * time.Second)
	for countAcks(t, ackP) < minAcks {
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			t.Fatalf("child never reached %d acks; stderr:\n%s", minAcks, childErr.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no handlers, no flushes
		t.Fatal(err)
	}
	_ = cmd.Wait()
	acked := countAcks(t, ackP)

	g, err := live.Open(walP, live.Options{Name: "chaos-compact"})
	if err != nil {
		t.Fatalf("reopen after SIGKILL: %v", err)
	}
	defer g.Close()
	replayed := int(g.Info().Epoch)
	if replayed < acked || replayed > acked+1 {
		t.Fatalf("recovered %d batches, %d were acknowledged: want acked or acked+1", replayed, acked)
	}

	// Whatever point the kill hit, a usable snapshot survives (renames are
	// atomic and the first compaction long predates the kill), and recovery
	// from it replays only the post-snapshot tail — never the full history.
	rec := g.LastRecovery()
	total := g.Info().Events
	if !rec.FromSnapshot {
		t.Fatalf("recovery ignored the snapshot: %+v", rec)
	}
	if rec.SnapshotEvents <= 0 || rec.TailEvents >= total {
		t.Fatalf("recovery replayed %d of %d events (snapshot covered %d): want a strict tail",
			rec.TailEvents, total, rec.SnapshotEvents)
	}

	// Bit-identical to regeneration, exactly as without compaction.
	ref, err := live.Open(filepath.Join(dir, "ref.wal"), live.Options{Name: "ref", NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for i := 0; i < replayed; i++ {
		if _, err := ref.Apply(walBatch(i)); err != nil {
			t.Fatalf("regenerate batch %d: %v", i, err)
		}
	}
	got, want := g.Acquire(), ref.Acquire()
	defer got.Release()
	defer want.Release()
	if gb, wb := walGraphBytes(t, got.Graph()), walGraphBytes(t, want.Graph()); !bytes.Equal(gb, wb) {
		t.Fatalf("recovered graph differs from regeneration: %d vs %d bytes (%d vertices/%d edges vs %d/%d)",
			len(gb), len(wb), got.Graph().NumVertices(), got.Graph().NumEdges(),
			want.Graph().NumVertices(), want.Graph().NumEdges())
	}
	t.Logf("SIGKILL after %d acked batches; snapshot covered %d events, tail replayed %d of %d (graph %d vertices, %d edges)",
		acked, rec.SnapshotEvents, rec.TailEvents, total, got.Graph().NumVertices(), got.Graph().NumEdges())
}
