package chaos

// The cluster observability smoke test: one coordinator plus a worker fleet
// with planted SIGKILLs, per-worker /metrics endpoints and appended JSONL
// traces. It proves the acceptance criteria of the observability plane:
// every process serves valid Prometheus families while the run is live, the
// N+1 traces merge into one reconciled cluster timeline stamped with the
// coordinator-minted span ID, and the straggler attribution served by
// /debug/cluster matches the merged trace superstep by superstep.

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"graphite/internal/algorithms"
	"graphite/internal/cluster"
	"graphite/internal/core"
	"graphite/internal/obs"
)

const smokeWorkers = 2

// scrapeLoop polls url until the body contains every want substring (one
// success is kept) or stop closes. Worker endpoints die with their process,
// so scraping must happen while the run is live; the planted crash plus
// rejoin guarantees a generous window.
func scrapeLoop(url func() (string, error), want []string, stop <-chan struct{}) (body string, ok bool) {
	for {
		select {
		case <-stop:
			return body, false
		default:
		}
		u, err := url()
		if err == nil {
			if b, err := httpGet(u); err == nil {
				body = b
				ok = true
				for _, w := range want {
					if !strings.Contains(b, w) {
						ok = false
						break
					}
				}
				if ok {
					return body, true
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func httpGet(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return string(b), nil
}

// workerURL resolves a worker slot's current /metrics URL from the addr
// file its live incarnation wrote (a replacement overwrites it).
func workerURL(dir string) func() (string, error) {
	return func() (string, error) {
		b, err := os.ReadFile(filepath.Join(dir, WorkerHTTPAddrFile))
		if err != nil {
			return "", err
		}
		return "http://" + strings.TrimSpace(string(b)) + "/metrics", nil
	}
}

// trimToRun extracts the first run of a coordinator trace for validation:
// worker_join events precede run_start (SplitRuns drops those) and a
// worker's death during the final fBye broadcast can trail a WorkerLost
// after run_end, which trimming removes.
func trimToRun(events []obs.Event) []obs.Event {
	runs := obs.SplitRuns(events)
	if len(runs) == 0 {
		return nil
	}
	run := runs[0]
	for i := len(run) - 1; i >= 0; i-- {
		if _, ok := run[i].(obs.RunEnd); ok {
			return run[:i+1]
		}
	}
	return run
}

func parseTraceFile(t *testing.T, path string) []obs.Event {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open worker trace: %v", err)
	}
	defer f.Close()
	events, err := obs.ParseTrace(f)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	return events
}

// TestClusterObservabilityPlane is the metrics-smoke acceptance test (the
// Makefile metrics-smoke target): SSSP over a 1-coordinator/2-worker fleet
// with a kill-and-respawn mid-run, scraping /metrics on all three processes
// and reconciling the merged cluster trace against /debug/cluster.
func TestClusterObservabilityPlane(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real worker processes; skipped in -short")
	}
	rec := &obs.Recorder{}
	reg := obs.NewRegistry()
	coord, err := cluster.New(cluster.Config{
		Workers:       smokeWorkers,
		Graph:         "transit",
		Algo:          "sssp",
		Params:        algorithms.Params{Source: 0},
		Lease:         500 * time.Millisecond,
		RejoinTimeout: 30 * time.Second,
		Registry:      reg,
		Tracer:        rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if coord.Span() == "" {
		t.Fatal("coordinator did not mint a span ID")
	}

	// The coordinator HTTP surface, mounted exactly as graphite-coordinator
	// mounts it.
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.MetricsHandler(reg))
	mux.Handle("/debug/cluster", coord.DebugHandler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		res *core.Result
		err error
	}
	out := make(chan outcome, 1)
	go func() {
		res, err := coord.Serve(ln)
		out <- outcome{res, err}
	}()
	base := t.TempDir()
	dirs := make([]string, smokeWorkers)
	for i := range dirs {
		dirs[i] = filepath.Join(base, fmt.Sprintf("w%d", i))
	}
	fleet, err := StartFleet(FleetConfig{
		Addr:   ln.Addr().String(),
		Dirs:   dirs,
		Crash:  map[int]string{1: "compute:3"},
		HTTP:   true,
		Trace:  true,
		Stderr: testing.Verbose(),
	})
	if err != nil {
		coord.Close()
		t.Fatal(err)
	}

	// Scrape every process while the run is live. The coordinator endpoint
	// outlives the run; the workers' die with their processes, so their
	// scrapers race the computation (the planted kill and rejoin stretch it).
	stopScrape := make(chan struct{})
	var wg sync.WaitGroup
	type scrape struct {
		body string
		ok   bool
	}
	workerScrapes := make([]scrape, smokeWorkers)
	for i := range dirs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, ok := scrapeLoop(workerURL(dirs[i]),
				[]string{"graphite_engine_supersteps_total", "# TYPE"}, stopScrape)
			workerScrapes[i] = scrape{body, ok}
		}(i)
	}
	var coordMidRun scrape
	wg.Add(1)
	go func() {
		defer wg.Done()
		body, ok := scrapeLoop(func() (string, error) { return srv.URL + "/metrics", nil },
			[]string{"graphite_cluster_lease_remaining_ms"}, stopScrape)
		coordMidRun = scrape{body, ok}
	}()

	var o outcome
	select {
	case o = <-out:
	case <-time.After(90 * time.Second):
		coord.Close()
		fleet.Stop()
		t.Fatal("cluster run timed out")
	}
	if o.err != nil {
		fleet.Stop()
		t.Fatalf("cluster run failed: %v", o.err)
	}
	if err := fleet.Wait(); err != nil {
		t.Fatalf("fleet: %v", err)
	}
	if fleet.Respawns() < 1 {
		t.Fatalf("planted crash did not kill the worker")
	}
	// Successful scrapers exit on their own; give stragglers a grace period,
	// then stop them. Results are read only after wg.Wait.
	scraped := make(chan struct{})
	go func() { wg.Wait(); close(scraped) }()
	select {
	case <-scraped:
	case <-time.After(5 * time.Second):
	}
	close(stopScrape)
	wg.Wait()

	// (1) Mid-run scrapes: the coordinator served fleet-health gauges and
	// every worker incarnation served its engine families.
	if !coordMidRun.ok {
		t.Errorf("coordinator /metrics never served graphite_cluster_lease_remaining_ms mid-run")
	}
	for i, s := range workerScrapes {
		if !s.ok {
			t.Errorf("worker %d /metrics never served the engine families; last body:\n%s", i, s.body)
		}
	}

	// (2) Post-run coordinator scrape: attribution and relay families.
	final, err := httpGet(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{
		"# TYPE graphite_cluster_superstep_compute_ns histogram",
		"graphite_cluster_superstep_compute_ns_bucket{le=\"",
		"graphite_cluster_superstep_compute_ns_sum",
		"graphite_cluster_superstep_compute_ns_count",
		"graphite_cluster_step_skew_milli",
		"graphite_cluster_slowest_shard",
		"graphite_cluster_relay_bytes_total",
		`graphite_cluster_shard_compute_ns{shard="0"}`,
		`graphite_cluster_shard_compute_ns{shard="1"}`,
	} {
		if !strings.Contains(final, fam) {
			t.Errorf("coordinator /metrics missing %q", fam)
		}
	}

	// (3) The coordinator trace validates as a standard run trace.
	coordEvents := rec.Events()
	run := trimToRun(coordEvents)
	if run == nil {
		t.Fatal("coordinator trace has no run")
	}
	if err := obs.ValidateTrace(run); err != nil {
		t.Fatalf("coordinator trace does not validate: %v", err)
	}

	// (4) Merge the coordinator trace with both per-slot worker traces (the
	// killed slot's file spans two incarnations) and reconcile.
	var workerTraces [][]obs.Event
	for _, dir := range dirs {
		workerTraces = append(workerTraces, parseTraceFile(t, filepath.Join(dir, WorkerTraceFile)))
	}
	ct, err := obs.MergeClusterTrace(coordEvents, workerTraces)
	if err != nil {
		t.Fatalf("cluster trace reconciliation failed: %v", err)
	}
	if ct.Span != coord.Span() {
		t.Errorf("merged trace span %q, coordinator minted %q", ct.Span, coord.Span())
	}
	if ct.Workers != smokeWorkers {
		t.Errorf("merged trace workers = %d, want %d", ct.Workers, smokeWorkers)
	}
	if ct.Recoveries < 1 {
		t.Errorf("merged trace records no recovery; the kill should force one")
	}
	if len(ct.Steps) != o.res.Metrics.Supersteps {
		t.Errorf("merged trace has %d supersteps, run metrics say %d", len(ct.Steps), o.res.Metrics.Supersteps)
	}
	for _, row := range ct.Steps {
		phases := map[string]int{}
		for _, sp := range row.Spans {
			phases[sp.Phase]++
			if sp.Span != coord.Span() {
				t.Errorf("superstep %d %s span carries %q, want %q",
					row.Step.Superstep, sp.Phase, sp.Span, coord.Span())
			}
		}
		for _, ph := range []string{"compute", "barrier_wait", "relay"} {
			if phases[ph] != smokeWorkers {
				t.Errorf("superstep %d: %d %s spans, want one per worker (%d)",
					row.Step.Superstep, phases[ph], ph, smokeWorkers)
			}
		}
		if len(row.Shards) != smokeWorkers {
			t.Errorf("superstep %d: %d worker-measured reports, want %d",
				row.Step.Superstep, len(row.Shards), smokeWorkers)
		}
	}

	// (5) /debug/cluster attribution matches the merged trace: every
	// surviving superstep's wall time, slowest shard and skew agree.
	debugBody, err := httpGet(srv.URL + "/debug/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var dbg struct {
		Span        string                    `json:"span"`
		Attribution []cluster.StepAttribution `json:"attribution"`
	}
	if err := json.Unmarshal([]byte(debugBody), &dbg); err != nil {
		t.Fatalf("decode /debug/cluster: %v", err)
	}
	if dbg.Span != coord.Span() {
		t.Errorf("/debug/cluster span %q, want %q", dbg.Span, coord.Span())
	}
	// The attribution log keeps every execution (replays included); the
	// merged trace keeps the surviving one — the LAST attribution row of a
	// superstep.
	last := map[int]cluster.StepAttribution{}
	for _, a := range dbg.Attribution {
		last[a.Superstep] = a
	}
	if len(dbg.Attribution) < len(ct.Steps) {
		t.Errorf("/debug/cluster has %d attribution rows, merged trace has %d surviving supersteps",
			len(dbg.Attribution), len(ct.Steps))
	}
	for _, row := range ct.Steps {
		a, ok := last[row.Step.Superstep]
		if !ok {
			t.Errorf("superstep %d missing from /debug/cluster attribution", row.Step.Superstep)
			continue
		}
		if a.Epoch != row.Step.Epoch || a.WallNS != row.Step.WallNS ||
			a.SlowestShard != row.Step.SlowestShard || a.SkewMilli != row.Step.SkewMilli {
			t.Errorf("superstep %d: /debug/cluster %+v disagrees with merged trace %+v",
				row.Step.Superstep, a, row.Step)
		}
		if len(a.Shards) != smokeWorkers {
			t.Errorf("superstep %d: attribution has %d shard timings, want %d",
				row.Step.Superstep, len(a.Shards), smokeWorkers)
		}
	}

	// (6) The merged timeline renders.
	var sb strings.Builder
	ct.Render(&sb)
	if testing.Verbose() {
		t.Log("\n" + sb.String())
	}
	if !strings.Contains(sb.String(), "span="+coord.Span()) {
		t.Errorf("rendered cluster timeline missing the span header")
	}
}
