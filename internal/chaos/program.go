package chaos

import (
	"fmt"
	"sync"

	"graphite/internal/engine"
)

// AnyVertex makes a PanicPlan fire on whichever vertex of the superstep
// executes first.
const AnyVertex = -1

// PanicPlan schedules one injected user-program panic: it fires the first
// time a vertex matching Vertex executes in superstep Superstep, then never
// again — modelling a transient worker fault that a replay survives. Plans
// with Superstep 1 fire during Init, before any checkpoint exists, so they
// make the run fail rather than recover.
type PanicPlan struct {
	Superstep int // 1-based superstep to fire in
	Vertex    int // dense vertex index, or AnyVertex
}

// FaultyProgram wraps an engine.Program and panics on schedule. Use Wrap as
// core.Options.WrapProgram (or wrap an engine program directly) and Panics
// to assert the faults actually fired. A FaultyProgram tracks which plans
// fired across rollbacks, so it must not be reused between runs.
type FaultyProgram struct {
	mu     sync.Mutex
	inner  engine.Program
	plans  []PanicPlan
	fired  []bool
	panics int
}

// NewFaultyProgram schedules the given panics.
func NewFaultyProgram(plans ...PanicPlan) *FaultyProgram {
	return &FaultyProgram{plans: plans, fired: make([]bool, len(plans))}
}

// Wrap binds the inner program and returns the program to hand to the
// engine. When the inner program supports checkpointing (engine.Snapshotter)
// the returned wrapper does too; otherwise it deliberately does not, so the
// engine's CheckpointEvery validation still works through the wrapper.
func (f *FaultyProgram) Wrap(p engine.Program) engine.Program {
	f.mu.Lock()
	f.inner = p
	f.mu.Unlock()
	if snap, ok := p.(engine.Snapshotter); ok {
		return &snapshottingFaulty{FaultyProgram: f, snap: snap}
	}
	return f
}

// Panics returns how many scheduled panics have fired.
func (f *FaultyProgram) Panics() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.panics
}

func (f *FaultyProgram) maybePanic(superstep, vertex int) {
	f.mu.Lock()
	for i, p := range f.plans {
		if f.fired[i] || p.Superstep != superstep {
			continue
		}
		if p.Vertex != AnyVertex && p.Vertex != vertex {
			continue
		}
		f.fired[i] = true
		f.panics++
		f.mu.Unlock()
		panic(fmt.Sprintf("chaos: injected panic at vertex %d, superstep %d", vertex, superstep))
	}
	f.mu.Unlock()
}

// Init implements engine.Program.
func (f *FaultyProgram) Init(ctx *engine.Context) {
	f.maybePanic(ctx.Superstep(), ctx.Vertex())
	f.inner.Init(ctx)
}

// Run implements engine.Program.
func (f *FaultyProgram) Run(ctx *engine.Context, msgs []engine.Message) {
	f.maybePanic(ctx.Superstep(), ctx.Vertex())
	f.inner.Run(ctx, msgs)
}

// snapshottingFaulty adds the Snapshotter contract when the inner program
// has it. The panic bookkeeping itself is deliberately NOT part of the
// snapshot: a fired fault stays fired across rollbacks, which is exactly
// what makes the injected fault transient.
type snapshottingFaulty struct {
	*FaultyProgram
	snap engine.Snapshotter
}

func (s *snapshottingFaulty) Snapshot() any        { return s.snap.Snapshot() }
func (s *snapshottingFaulty) Restore(snapshot any) { s.snap.Restore(snapshot) }
