package chaos

import (
	"encoding/binary"
	"errors"
	"reflect"
	"sync"
	"testing"

	"graphite/internal/algorithms"
	"graphite/internal/codec"
	"graphite/internal/core"
	"graphite/internal/engine"
	ival "graphite/internal/interval"
	"graphite/internal/obs"
	"graphite/internal/tgraph"
)

// TestTransportFaultSchedule drives the chaos mesh directly and checks every
// fault kind manifests the way the engine expects: drops error at Send,
// corruption poisons the frame, duplication trips the straggler check, and
// Reset wipes the slate.
func TestTransportFaultSchedule(t *testing.T) {
	tr, err := NewTransport(2, TransportOptions{Seed: 1, Drops: 1, Every: 1})
	if err != nil {
		t.Fatalf("NewTransport: %v", err)
	}
	if err := tr.Send(0, 1, []byte{1, 2, 3}); err == nil {
		t.Fatalf("first send should be dropped")
	}
	if err := tr.Send(0, 1, []byte{1, 2, 3}); err != nil {
		t.Fatalf("retry after drop: %v", err)
	}
	frames, err := tr.Recv(1)
	if err != nil || len(frames) != 1 || !reflect.DeepEqual(frames[0], []byte{1, 2, 3}) {
		t.Fatalf("recv after retry: %v %v", frames, err)
	}

	// Corruption: the frame arrives but is undecodable.
	tr, _ = NewTransport(2, TransportOptions{Seed: 1, Corruptions: 1, Every: 1})
	if err := tr.Send(0, 1, []byte{1, 2, 3}); err != nil {
		t.Fatalf("corrupting send should succeed: %v", err)
	}
	frames, err = tr.Recv(1)
	if err != nil {
		t.Fatalf("recv of corrupt frame: %v", err)
	}
	if reflect.DeepEqual(frames[0], []byte{1, 2, 3}) {
		t.Fatalf("frame should have been corrupted")
	}
	if _, k := binary.Uvarint(frames[0]); k > 0 {
		t.Fatalf("corrupt frame still has a decodable batch header")
	}

	// Duplication: the straggler check fails the superstep; Reset clears it.
	tr, _ = NewTransport(2, TransportOptions{Seed: 1, Duplicates: 1, Every: 1})
	if err := tr.Send(0, 1, []byte{9}); err != nil {
		t.Fatalf("duplicating send: %v", err)
	}
	if _, err := tr.Recv(1); err == nil {
		t.Fatalf("duplicate frame must fail the receive")
	}
	if err := tr.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if _, err := tr.Recv(1); err == nil {
		t.Fatalf("after Reset the queue must be empty (missing frame)")
	}
	if s := tr.Stats(); s.Duplicates != 1 || s.Resets != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// ringProgram is a BFS-level program over a directed ring implementing
// engine.Snapshotter, so it can run under checkpointing.
type ringProgram struct {
	n    int
	mu   sync.Mutex
	dist []int64
}

func newRingProgram(n int) *ringProgram {
	return &ringProgram{n: n, dist: make([]int64, n)}
}

func (p *ringProgram) Init(ctx *engine.Context) {
	p.mu.Lock()
	p.dist[ctx.Vertex()] = 1 << 30
	p.mu.Unlock()
}

func (p *ringProgram) Run(ctx *engine.Context, msgs []engine.Message) {
	ctx.AddComputeCalls(1)
	v := ctx.Vertex()
	best := int64(1 << 30)
	if ctx.Superstep() == 1 && v == 0 {
		best = 0
	}
	for _, m := range msgs {
		if d := m.Value.(int64); d < best {
			best = d
		}
	}
	p.mu.Lock()
	cur := p.dist[v]
	if best < cur {
		p.dist[v] = best
	}
	p.mu.Unlock()
	if best < cur {
		ctx.Send((v+1)%p.n, ival.Universe, best+1)
	}
}

func (p *ringProgram) Snapshot() any {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]int64(nil), p.dist...)
}

func (p *ringProgram) Restore(snapshot any) {
	p.mu.Lock()
	copy(p.dist, snapshot.([]int64))
	p.mu.Unlock()
}

// TestEngineRecoversOverChaosTransport runs BFS over the chaos mesh with
// checkpointing on and every fault kind scheduled, and demands bit-identical
// results plus at least one recovery.
func TestEngineRecoversOverChaosTransport(t *testing.T) {
	n := 24
	if testing.Short() {
		n = 8
	}
	tr, err := NewTransport(3, TransportOptions{
		Seed: 42, Drops: 2, Corruptions: 2, Duplicates: 1, Delays: 2, Every: 7,
	})
	if err != nil {
		t.Fatalf("NewTransport: %v", err)
	}
	defer tr.Close()
	p := newRingProgram(n)
	fp := NewFaultyProgram(PanicPlan{Superstep: 3, Vertex: AnyVertex})
	e, err := engine.New(n, fp.Wrap(p), engine.Config{
		NumWorkers:      3,
		PayloadCodec:    codec.Int64{},
		Transport:       tr,
		CheckpointEvery: 2,
		MaxRecoveries:   10,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m, err := e.Run()
	if err != nil {
		t.Fatalf("Run under chaos: %v", err)
	}
	for i := 0; i < n; i++ {
		if p.dist[i] != int64(i) {
			t.Fatalf("dist[%d] = %d, want %d", i, p.dist[i], i)
		}
	}
	if fp.Panics() < 1 {
		t.Errorf("scheduled panic never fired")
	}
	if tr.Stats().Faults() < 1 {
		t.Errorf("no transport fault fired: %+v", tr.Stats())
	}
	if m.Recoveries < 1 {
		t.Errorf("run recovered %d times, want >= 1: %v", m.Recoveries, m)
	}
	if m.Checkpoints < 1 {
		t.Errorf("no checkpoints captured: %v", m)
	}
	// The ring needs n+1 supersteps of propagation regardless of faults.
	if m.Supersteps != n+1 {
		t.Errorf("supersteps = %d, want %d", m.Supersteps, n+1)
	}
	if m.Messages != int64(n) {
		t.Errorf("messages = %d, want %d (replays must not double-count)", m.Messages, n)
	}
}

// chaosSSSP runs temporal SSSP from A over the paper's transit example with
// the given fault injection; faultFree ignores the chaos knobs entirely.
func chaosSSSP(t *testing.T, checkpointEvery int, tr *Transport, fp *FaultyProgram) (*core.Result, error) {
	t.Helper()
	g := tgraph.TransitExample()
	a := &algorithms.SSSP{Source: 0, StartTime: 0}
	opts := a.Options()
	opts.NumWorkers = 3
	opts.CheckpointEvery = checkpointEvery
	opts.MaxRecoveries = 10
	if tr != nil {
		opts.Transport = tr
	}
	if fp != nil {
		opts.WrapProgram = fp.Wrap
	}
	return core.Run(g, a, opts)
}

// TestChaosSSSPMatchesFaultFree is the headline guarantee: an SSSP run over
// the transit example with seeded fault injection (transport faults and an
// injected panic) and checkpointing enabled completes and decodes to exactly
// the fault-free answer, with identical deterministic metrics.
func TestChaosSSSPMatchesFaultFree(t *testing.T) {
	base, err := chaosSSSP(t, 0, nil, nil)
	if err != nil {
		t.Fatalf("fault-free run: %v", err)
	}

	tr, err := NewTransport(3, TransportOptions{
		Seed: 7, Drops: 1, Corruptions: 1, Duplicates: 1, Delays: 1, Every: 4,
	})
	if err != nil {
		t.Fatalf("NewTransport: %v", err)
	}
	defer tr.Close()
	fp := NewFaultyProgram(PanicPlan{Superstep: 2, Vertex: AnyVertex})
	got, err := chaosSSSP(t, 1, tr, fp)
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}

	// The injected faults must actually have fired.
	if fp.Panics() < 1 {
		t.Fatalf("scheduled panic never fired")
	}
	if tr.Stats().Faults() < 1 {
		t.Fatalf("no transport fault fired: %+v", tr.Stats())
	}
	if got.Metrics.Recoveries < 1 {
		t.Errorf("chaos run recovered %d times, want >= 1", got.Metrics.Recoveries)
	}

	// Decoded results are bit-identical to the fault-free run for every
	// transit stop, including the paper's published costs for B and E.
	for id := tgraph.VertexID(0); id < 6; id++ {
		want := algorithms.SSSPCosts(base, id)
		have := algorithms.SSSPCosts(got, id)
		if !reflect.DeepEqual(want, have) {
			t.Errorf("vertex %s: costs %v, want %v", tgraph.TransitVertexName(id), have, want)
		}
	}
	// Stronger than the decoded costs: the raw partitioned states must be
	// bit-for-bit identical. Delivery now runs through pooled message slabs
	// that rollback recycles, so this pins that no replay ever aliases a
	// recycled (or chaos-corrupted) buffer into a surviving state.
	for i := 0; i < base.Graph.NumVertices(); i++ {
		if !reflect.DeepEqual(base.State(i).Parts(), got.State(i).Parts()) {
			t.Errorf("vertex %d partitions diverged:\nfault-free: %v\nchaos:      %v",
				i, base.State(i).Parts(), got.State(i).Parts())
		}
	}
	// Deterministic metrics match; timings differ, so compare counters only.
	bm, gm := base.Metrics, got.Metrics
	if bm.Supersteps != gm.Supersteps || bm.ComputeCalls != gm.ComputeCalls ||
		bm.ScatterCalls != gm.ScatterCalls || bm.Messages != gm.Messages ||
		bm.MessageBytes != gm.MessageBytes {
		t.Errorf("metrics diverged:\nfault-free: %v\nchaos:      %v", bm, gm)
	}
	if base.Stats != got.Stats {
		t.Errorf("ICM stats diverged:\nfault-free: %+v\nchaos:      %+v", base.Stats, got.Stats)
	}
}

// TestChaosTraceEvents attaches a tracer to a chaos run and demands the
// fault path shows up in the event stream — checkpoints, recoveries and
// send retries — and that the resulting trace still validates: the
// replay-aware reconciliation must hold even when supersteps were rolled
// back and re-executed.
func TestChaosTraceEvents(t *testing.T) {
	tr, err := NewTransport(3, TransportOptions{
		Seed: 7, Drops: 1, Corruptions: 1, Duplicates: 1, Delays: 1, Every: 4,
	})
	if err != nil {
		t.Fatalf("NewTransport: %v", err)
	}
	defer tr.Close()
	fp := NewFaultyProgram(PanicPlan{Superstep: 2, Vertex: AnyVertex})

	g := tgraph.TransitExample()
	a := &algorithms.SSSP{Source: 0, StartTime: 0}
	opts := a.Options()
	opts.NumWorkers = 3
	opts.CheckpointEvery = 1
	opts.MaxRecoveries = 10
	opts.Transport = tr
	opts.WrapProgram = fp.Wrap
	rec := &obs.Recorder{}
	opts.Tracer = rec
	res, err := core.Run(g, a, opts)
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}

	if got := rec.Count("checkpoint"); got != res.Metrics.Checkpoints || got < 1 {
		t.Errorf("checkpoint events = %d, metrics say %d (want >= 1)", got, res.Metrics.Checkpoints)
	}
	if got := rec.Count("recovery"); got != res.Metrics.Recoveries || got < 1 {
		t.Errorf("recovery events = %d, metrics say %d (want >= 1)", got, res.Metrics.Recoveries)
	}
	if tr.Stats().Drops >= 1 && rec.Count("send_retry") < 1 {
		t.Errorf("transport dropped %d sends but no send_retry event was traced", tr.Stats().Drops)
	}
	for _, e := range rec.Events() {
		if r, ok := e.(obs.Recovery); ok {
			if r.Reason == "" || r.Attempt < 1 || r.ResumeAt < 1 || r.Failed < r.ResumeAt {
				t.Errorf("recovery event underspecified: %+v", r)
			}
		}
	}
	if err := obs.ValidateTrace(rec.Events()); err != nil {
		t.Errorf("chaos trace does not validate: %v", err)
	}
}

// TestChaosWithoutCheckpointFailsCleanly reruns the faulty configurations
// with checkpointing disabled: the run must return a typed error — with the
// process alive — instead of recovering or crashing.
func TestChaosWithoutCheckpointFailsCleanly(t *testing.T) {
	t.Run("panic", func(t *testing.T) {
		fp := NewFaultyProgram(PanicPlan{Superstep: 2, Vertex: AnyVertex})
		_, err := chaosSSSP(t, 0, nil, fp)
		var vp *engine.VertexPanicError
		if !errors.As(err, &vp) {
			t.Fatalf("want *engine.VertexPanicError, got %v", err)
		}
		if vp.Superstep != 2 || vp.Vertex < 0 || len(vp.Stack) == 0 {
			t.Errorf("panic detail = vertex %d superstep %d stack %d bytes",
				vp.Vertex, vp.Superstep, len(vp.Stack))
		}
	})
	t.Run("transport", func(t *testing.T) {
		// Three corruptions: send retries can't mask them, and without a
		// checkpoint the first one is terminal.
		tr, err := NewTransport(3, TransportOptions{Seed: 3, Corruptions: 3, Every: 4})
		if err != nil {
			t.Fatalf("NewTransport: %v", err)
		}
		defer tr.Close()
		if _, err := chaosSSSP(t, 0, tr, nil); err == nil {
			t.Fatalf("corrupted exchange without checkpointing must fail the run")
		}
	})
}
