package codec

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame I/O for the cluster control and data planes: every message between
// coordinator and workers travels as one frame —
//
//	u32 length | u8 type | payload | u32 crc
//
// with the big-endian length covering type byte and payload, and the CRC32
// (IEEE) covering the same bytes. The CRC turns a torn or bit-rotted frame
// into a typed error at the reader instead of a misparsed control message;
// the cluster treats a corrupt frame like a dead connection.

// MaxFrameSize bounds a frame's declared length so a corrupted or hostile
// length prefix cannot make the reader allocate unbounded memory. 1 GiB
// comfortably exceeds any shard checkpoint or message batch in the bench
// suite.
const MaxFrameSize = 1 << 30

// ErrFrameCorrupt reports a frame that failed structural or CRC
// validation. It wraps ErrCorrupt so existing errors.Is checks on the
// codec's corruption sentinel keep working.
var ErrFrameCorrupt = fmt.Errorf("%w: frame", ErrCorrupt)

// WriteFrame writes one frame. The payload may be nil (a bare signal
// frame). The write is a single Write call so concurrent writers
// serialized by a mutex never interleave partial frames.
func WriteFrame(w io.Writer, ftype byte, payload []byte) error {
	if len(payload)+1 > MaxFrameSize {
		return fmt.Errorf("codec: frame payload %d bytes exceeds limit", len(payload))
	}
	buf := make([]byte, 0, 4+1+len(payload)+4)
	buf = binary.BigEndian.AppendUint32(buf, uint32(1+len(payload)))
	buf = append(buf, ftype)
	buf = append(buf, payload...)
	crc := crc32.ChecksumIEEE(buf[4:])
	buf = binary.BigEndian.AppendUint32(buf, crc)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame, verifying length and CRC. On a clean EOF at a
// frame boundary it returns io.EOF; a connection dying mid-frame is
// io.ErrUnexpectedEOF; a bad length or CRC mismatch wraps ErrFrameCorrupt.
func ReadFrame(r io.Reader) (ftype byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 || n > MaxFrameSize {
		return 0, nil, fmt.Errorf("%w: bad length %d", ErrFrameCorrupt, n)
	}
	body := make([]byte, n+4) // type + payload + trailing CRC
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	want := binary.BigEndian.Uint32(body[n:])
	if got := crc32.ChecksumIEEE(body[:n]); got != want {
		return 0, nil, fmt.Errorf("%w: CRC mismatch (got %08x, want %08x)", ErrFrameCorrupt, got, want)
	}
	return body[0], body[1:n:n], nil
}
