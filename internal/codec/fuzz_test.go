package codec

import (
	"testing"

	ival "graphite/internal/interval"
)

// FuzzIntervalDecode asserts the interval decoder never panics and that
// anything it accepts re-encodes to an equivalent value.
func FuzzIntervalDecode(f *testing.F) {
	f.Add([]byte{0x00, 0x05, 0x03})
	f.Add([]byte{0x01, 0x07})
	f.Add([]byte{0x02, 0xFF, 0x01})
	f.Add([]byte{0x04})
	f.Fuzz(func(t *testing.T, data []byte) {
		iv, n, err := Interval(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		// Round-trip whatever was decoded.
		if iv.IsEmpty() {
			return
		}
		buf := AppendInterval(nil, iv)
		got, _, err := Interval(buf)
		if err != nil || got != iv {
			t.Fatalf("re-encode mismatch: %v -> %v (%v)", iv, got, err)
		}
	})
}

// FuzzInt64SliceDecode asserts the slice decoder never panics or
// over-allocates on hostile length prefixes.
func FuzzInt64SliceDecode(f *testing.F) {
	c := Int64Slice{}
	f.Add(c.Append(nil, []int64{1, -2, 1 << 40}))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x0F})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, n, err := c.Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		s := v.([]int64)
		buf := c.Append(nil, s)
		got, _, err := c.Decode(buf)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		g := got.([]int64)
		if len(g) != len(s) {
			t.Fatalf("length mismatch")
		}
		for i := range s {
			if g[i] != s[i] {
				t.Fatalf("element %d mismatch", i)
			}
		}
	})
}

// FuzzIntervalAppendDecode drives the encoder with arbitrary endpoints.
func FuzzIntervalAppendDecode(f *testing.F) {
	f.Add(int64(0), int64(5))
	f.Add(int64(3), ival.Infinity)
	f.Add(int64(7), int64(8))
	f.Fuzz(func(t *testing.T, s, e int64) {
		if s < 0 {
			s = -s
		}
		if e < 0 {
			e = -e
		}
		iv := ival.New(s, e)
		buf := AppendInterval(nil, iv)
		got, n, err := Interval(buf)
		if err != nil || n != len(buf) {
			t.Fatalf("decode of encoded %v failed: %v", iv, err)
		}
		if iv.IsEmpty() {
			if !got.IsEmpty() {
				t.Fatalf("empty interval decoded as %v", got)
			}
			return
		}
		if got != iv {
			t.Fatalf("round trip %v -> %v", iv, got)
		}
	})
}
