package codec

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	ival "graphite/internal/interval"
)

func TestIntervalRoundTrip(t *testing.T) {
	cases := []ival.Interval{
		ival.Empty,
		ival.Point(0),
		ival.Point(5),
		ival.Point(1 << 40),
		ival.From(0),
		ival.From(123456),
		ival.New(3, 9),
		ival.New(0, 1000000),
		ival.Universe,
	}
	for _, iv := range cases {
		buf := AppendInterval(nil, iv)
		if len(buf) != IntervalSize(iv) {
			t.Errorf("%v: size %d != IntervalSize %d", iv, len(buf), IntervalSize(iv))
		}
		got, n, err := Interval(buf)
		if err != nil || n != len(buf) {
			t.Fatalf("%v: decode err=%v n=%d len=%d", iv, err, n, len(buf))
		}
		if iv.IsEmpty() {
			if !got.IsEmpty() {
				t.Errorf("empty interval decoded as %v", got)
			}
			continue
		}
		if got != iv {
			t.Errorf("round trip %v -> %v", iv, got)
		}
	}
}

func TestIntervalRoundTripRandom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := r.Int63n(1 << 32)
		var iv ival.Interval
		switch r.Intn(3) {
		case 0:
			iv = ival.Point(s)
		case 1:
			iv = ival.From(s)
		default:
			iv = ival.New(s, s+r.Int63n(1000)+1)
		}
		// Encode with a non-empty prefix to check append semantics.
		prefix := []byte{0xAA, 0xBB}
		buf := AppendInterval(prefix, iv)
		got, n, err := Interval(buf[2:])
		return err == nil && n == len(buf)-2 && got == iv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntervalDecodeCorrupt(t *testing.T) {
	for _, buf := range [][]byte{nil, {}, {0x00}, {0x00, 0x80}, {0x01}, {0x02, 0xFF}} {
		if _, _, err := Interval(buf); err == nil {
			t.Errorf("buffer %v should fail to decode", buf)
		}
	}
}

func TestVarByteSavings(t *testing.T) {
	// The paper's claim: variable byte-length intervals cut message sizes by
	// 59-78%. For small time domains with many unit/unbounded intervals the
	// encoded interval must be far below the fixed 16-byte layout.
	ivs := []ival.Interval{ival.Point(7), ival.From(12), ival.New(3, 20)}
	var total int
	for _, iv := range ivs {
		total += IntervalSize(iv)
	}
	fixed := FixedIntervalSize * len(ivs)
	saving := 1 - float64(total)/float64(fixed)
	if saving < 0.59 {
		t.Errorf("saving = %.2f, want >= 0.59 for small time-points", saving)
	}
}

func TestInt64Codec(t *testing.T) {
	c := Int64{}
	for _, v := range []int64{0, 1, -1, 1 << 50, -(1 << 50)} {
		buf := c.Append(nil, v)
		got, n, err := c.Decode(buf)
		if err != nil || n != len(buf) || got.(int64) != v {
			t.Errorf("round trip %d failed: got=%v n=%d err=%v", v, got, n, err)
		}
	}
	if _, _, err := c.Decode(nil); err == nil {
		t.Errorf("empty decode should fail")
	}
}

func TestPairCodec(t *testing.T) {
	c := PairCodec{}
	p := Int64Pair{A: -42, B: 1 << 33}
	buf := c.Append(nil, p)
	got, n, err := c.Decode(buf)
	if err != nil || n != len(buf) || got.(Int64Pair) != p {
		t.Fatalf("round trip failed: %v %d %v", got, n, err)
	}
	if _, _, err := c.Decode(buf[:1]); err == nil {
		t.Errorf("truncated decode should fail")
	}
}

func TestInt64SliceCodec(t *testing.T) {
	c := Int64Slice{}
	for _, s := range [][]int64{{}, {1}, {3, -7, 1 << 40, 0}} {
		buf := c.Append(nil, s)
		got, n, err := c.Decode(buf)
		if err != nil || n != len(buf) {
			t.Fatalf("decode: n=%d err=%v", n, err)
		}
		if !reflect.DeepEqual(got.([]int64), s) && len(s) > 0 {
			t.Errorf("round trip %v -> %v", s, got)
		}
	}
	// Corrupt: declared length beyond buffer.
	if _, _, err := c.Decode([]byte{0xFF, 0xFF, 0x01}); err == nil {
		t.Errorf("oversized length should fail")
	}
}
