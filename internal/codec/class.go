package codec

import ival "graphite/internal/interval"

// IntervalClass names the encoding class an interval falls into — the same
// taxonomy the header flags encode. The observability layer splits message
// byte counts by class, since the unit/unbounded single-point encodings are
// where the paper's 59–78% size reduction comes from.
type IntervalClass uint8

// Interval encoding classes, in header-flag order.
const (
	ClassEmpty IntervalClass = iota
	ClassUnit
	ClassUnbounded
	ClassGeneral

	// NumIntervalClasses sizes per-class accumulator arrays.
	NumIntervalClasses = 4
)

// ClassOf returns the encoding class AppendInterval would use for iv.
func ClassOf(iv ival.Interval) IntervalClass {
	switch {
	case iv.IsEmpty():
		return ClassEmpty
	case iv.IsUnit():
		return ClassUnit
	case iv.IsUnbounded():
		return ClassUnbounded
	default:
		return ClassGeneral
	}
}

// String returns the class name as used in registry metric names.
func (c IntervalClass) String() string {
	switch c {
	case ClassEmpty:
		return "empty"
	case ClassUnit:
		return "unit"
	case ClassUnbounded:
		return "unbounded"
	case ClassGeneral:
		return "general"
	}
	return "unknown"
}
