package codec

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("abc"), 1000)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, byte(i+1), p); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i, p := range payloads {
		ft, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if ft != byte(i+1) || !bytes.Equal(got, p) {
			t.Fatalf("frame %d: type %d payload %d bytes", i, ft, len(got))
		}
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("drained reader err = %v, want io.EOF", err)
	}
}

func TestFrameCorruptCRC(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 7, []byte("control message")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[8] ^= 0x01 // flip a payload bit; the trailing CRC no longer matches
	_, _, err := ReadFrame(bytes.NewReader(raw))
	if !errors.Is(err, ErrFrameCorrupt) || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrFrameCorrupt wrapping ErrCorrupt", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 3, []byte("about to be cut")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	_, _, err := ReadFrame(bytes.NewReader(raw[:len(raw)-3]))
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("mid-frame truncation err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestFrameBadLength(t *testing.T) {
	// A zero length cannot hold even the type byte.
	raw := []byte{0, 0, 0, 0, 0, 0, 0, 0}
	if _, _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("zero-length err = %v, want ErrFrameCorrupt", err)
	}
	// A length past MaxFrameSize must be rejected before any allocation.
	raw = []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	if _, _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("oversized-length err = %v, want ErrFrameCorrupt", err)
	}
}
