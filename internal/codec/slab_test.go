package codec

import "testing"

// TestSlabPoolRecycles checks the byte-slab pool contract: a recycled slab
// comes back truncated with capacity intact, and the counters distinguish
// hits from misses and account reused bytes.
func TestSlabPoolRecycles(t *testing.T) {
	if raceEnabled {
		t.Skip("recycle contract skipped under -race: sync.Pool drops puts at random under the race detector")
	}
	var p SlabPool
	s := p.Get()
	if s == nil || len(s.Buf) != 0 {
		t.Fatalf("fresh slab: %+v", s)
	}
	if hits, misses, reused := p.Stats(); hits != 0 || misses != 1 || reused != 0 {
		t.Fatalf("after first get: hits=%d misses=%d reused=%d, want 0/1/0", hits, misses, reused)
	}
	s.Buf = append(s.Buf, 1, 2, 3, 4)
	wantCap := cap(s.Buf)
	p.Put(s)

	s2 := p.Get()
	if len(s2.Buf) != 0 || cap(s2.Buf) != wantCap {
		t.Fatalf("recycled slab: len=%d cap=%d, want 0/%d", len(s2.Buf), cap(s2.Buf), wantCap)
	}
	if hits, misses, reused := p.Stats(); hits != 1 || misses != 1 || reused != int64(wantCap) {
		t.Fatalf("after recycle: hits=%d misses=%d reused=%d, want 1/1/%d", hits, misses, reused, wantCap)
	}
	p.Put(s2)
	p.Put(nil) // nil put is a harmless no-op
}
