//go:build race

package codec

// raceEnabled mirrors internal/engine's: deterministic pool-recycle contracts
// are skipped under the race detector, where sync.Pool drops puts at random.
const raceEnabled = true
