package codec

import (
	"sync"
	"sync/atomic"
)

// Slab is a reusable byte buffer for encoded message batches. Callers append
// into Buf and hand the slab back to its pool when the bytes are no longer
// referenced by anyone; the backing array is then reused instead of
// reallocated, which is what keeps the steady-state exchange phase off the
// allocator.
type Slab struct {
	Buf []byte
}

// SlabPool hands out byte slabs backed by a sync.Pool and keeps reuse
// statistics. The zero value is ready. A slab must only be Put back once
// nothing retains its bytes: consumers that keep a reference (a transport
// that queues frames, a checkpoint) must copy first — returning an aliased
// slab would let the next Get scribble over data someone still reads, which
// is exactly how a fault-injected (corrupted) frame could leak back into a
// healthy superstep.
type SlabPool struct {
	pool        sync.Pool
	hits        atomic.Int64
	misses      atomic.Int64
	bytesReused atomic.Int64
}

// Get returns a slab with zero length and whatever capacity a previous user
// grew it to.
func (p *SlabPool) Get() *Slab {
	if v := p.pool.Get(); v != nil {
		s := v.(*Slab)
		p.hits.Add(1)
		p.bytesReused.Add(int64(cap(s.Buf)))
		s.Buf = s.Buf[:0]
		return s
	}
	p.misses.Add(1)
	return &Slab{}
}

// Put returns a slab to the pool. The caller must not touch the slab after.
func (p *SlabPool) Put(s *Slab) {
	if s == nil {
		return
	}
	s.Buf = s.Buf[:0]
	p.pool.Put(s)
}

// Stats reports cumulative pool behaviour: hits (a Get served from the
// pool), misses (a Get that had to allocate), and the total capacity in
// bytes handed back out by hits.
func (p *SlabPool) Stats() (hits, misses, bytesReused int64) {
	return p.hits.Load(), p.misses.Load(), p.bytesReused.Load()
}
