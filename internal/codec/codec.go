// Package codec implements the wire encoding GRAPHITE uses for interval
// messages (Sec. VI "Interval Messages"): time-points are variable
// byte-length numbers, unit-length intervals and intervals extending to ∞
// are flagged in a header byte so only the start point is transmitted.
// The paper reports 59–78% message-size reductions from this encoding; the
// MsgSize experiment reproduces that measurement.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	ival "graphite/internal/interval"
)

// Header flags for interval encoding.
const (
	flagUnit      = 0x01 // [t, t+1): only start encoded
	flagUnbounded = 0x02 // [t, ∞): only start encoded
	flagEmpty     = 0x04 // empty interval: nothing else encoded
)

// ErrCorrupt is returned when a buffer cannot be decoded.
var ErrCorrupt = errors.New("codec: corrupt buffer")

// AppendInterval appends the variable-length encoding of iv to buf.
func AppendInterval(buf []byte, iv ival.Interval) []byte {
	switch {
	case iv.IsEmpty():
		return append(buf, flagEmpty)
	case iv.IsUnit():
		buf = append(buf, flagUnit)
		return binary.AppendUvarint(buf, uint64(iv.Start))
	case iv.IsUnbounded():
		buf = append(buf, flagUnbounded)
		return binary.AppendUvarint(buf, uint64(iv.Start))
	default:
		buf = append(buf, 0)
		buf = binary.AppendUvarint(buf, uint64(iv.Start))
		// Length, not end: deltas are small for typical intervals.
		return binary.AppendUvarint(buf, uint64(iv.End-iv.Start))
	}
}

// Interval decodes an interval from buf, returning it and the bytes consumed.
func Interval(buf []byte) (ival.Interval, int, error) {
	if len(buf) == 0 {
		return ival.Empty, 0, ErrCorrupt
	}
	flags := buf[0]
	n := 1
	if flags&flagEmpty != 0 {
		return ival.Empty, n, nil
	}
	start, k := binary.Uvarint(buf[n:])
	if k <= 0 {
		return ival.Empty, 0, ErrCorrupt
	}
	n += k
	switch {
	case flags&flagUnit != 0:
		return ival.Point(int64(start)), n, nil
	case flags&flagUnbounded != 0:
		return ival.From(int64(start)), n, nil
	default:
		length, k := binary.Uvarint(buf[n:])
		if k <= 0 {
			return ival.Empty, 0, ErrCorrupt
		}
		n += k
		return ival.New(int64(start), int64(start)+int64(length)), n, nil
	}
}

// IntervalSize returns the encoded size of iv without allocating.
func IntervalSize(iv ival.Interval) int {
	switch {
	case iv.IsEmpty():
		return 1
	case iv.IsUnit(), iv.IsUnbounded():
		return 1 + uvarintLen(uint64(iv.Start))
	default:
		return 1 + uvarintLen(uint64(iv.Start)) + uvarintLen(uint64(iv.End-iv.Start))
	}
}

// FixedIntervalSize is the size of the naive encoding the paper compares
// against: two 8-byte longs.
const FixedIntervalSize = 16

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Payload encodes and decodes a message payload. Algorithms register one
// per message type so the engine can serialize across the worker transport
// and account message bytes.
type Payload interface {
	// Append appends the encoding of v to buf.
	Append(buf []byte, v any) []byte
	// Decode reads one value from buf, returning it and the bytes consumed.
	Decode(buf []byte) (any, int, error)
}

// Int64 encodes int64 payloads as zig-zag varints.
type Int64 struct{}

// Append implements Payload.
func (Int64) Append(buf []byte, v any) []byte {
	return binary.AppendVarint(buf, v.(int64))
}

// Decode implements Payload.
func (Int64) Decode(buf []byte) (any, int, error) {
	v, n := binary.Varint(buf)
	if n <= 0 {
		return nil, 0, ErrCorrupt
	}
	return v, n, nil
}

// Int64Pair is a two-field payload, e.g. (arrival, parent) for TMST or
// (value, origin) for path algorithms.
type Int64Pair struct{ A, B int64 }

// PairCodec encodes Int64Pair payloads.
type PairCodec struct{}

// Append implements Payload.
func (PairCodec) Append(buf []byte, v any) []byte {
	p := v.(Int64Pair)
	buf = binary.AppendVarint(buf, p.A)
	return binary.AppendVarint(buf, p.B)
}

// Decode implements Payload.
func (PairCodec) Decode(buf []byte) (any, int, error) {
	a, n := binary.Varint(buf)
	if n <= 0 {
		return nil, 0, ErrCorrupt
	}
	b, k := binary.Varint(buf[n:])
	if k <= 0 {
		return nil, 0, ErrCorrupt
	}
	return Int64Pair{A: a, B: b}, n + k, nil
}

// Int64Slice encodes []int64 payloads (used by the clustering algorithms,
// whose messages carry neighbor lists).
type Int64Slice struct{}

// Append implements Payload.
func (Int64Slice) Append(buf []byte, v any) []byte {
	s := v.([]int64)
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	for _, x := range s {
		buf = binary.AppendVarint(buf, x)
	}
	return buf
}

// Decode implements Payload.
func (Int64Slice) Decode(buf []byte) (any, int, error) {
	n := 0
	l, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, 0, ErrCorrupt
	}
	n += k
	if l > uint64(len(buf)) { // cheap sanity bound: ≥1 byte per element
		return nil, 0, fmt.Errorf("%w: slice length %d", ErrCorrupt, l)
	}
	s := make([]int64, l)
	for i := range s {
		v, k := binary.Varint(buf[n:])
		if k <= 0 {
			return nil, 0, ErrCorrupt
		}
		s[i] = v
		n += k
	}
	return s, n, nil
}

// Float64 encodes float64 payloads as fixed 8-byte IEEE-754 values.
type Float64 struct{}

// Append implements Payload.
func (Float64) Append(buf []byte, v any) []byte {
	return binary.BigEndian.AppendUint64(buf, math.Float64bits(v.(float64)))
}

// Decode implements Payload.
func (Float64) Decode(buf []byte) (any, int, error) {
	if len(buf) < 8 {
		return nil, 0, ErrCorrupt
	}
	return math.Float64frombits(binary.BigEndian.Uint64(buf)), 8, nil
}
