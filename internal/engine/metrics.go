package engine

import (
	"fmt"
	"time"
)

// Metrics records the behaviour of a run, matching the quantities the paper
// reports: the makespan is split into compute+ time (user logic interleaved
// with message emission), exclusive messaging time (delivery after compute)
// and barrier time; the counters capture the primitive-intrinsic costs
// (user compute calls, scatter calls, messages, encoded message bytes).
type Metrics struct {
	Supersteps   int
	ComputeCalls int64
	ScatterCalls int64
	Messages     int64
	MessageBytes int64

	// Checkpoints and Recoveries count fault-tolerance events: recovery
	// points captured and rollback-and-replay cycles taken. Both are zero on
	// a fault-free run without checkpointing.
	Checkpoints int
	Recoveries  int

	// Runs is how many engine runs are folded into these metrics: 1 for a
	// single run, accumulated by Add for the baselines that execute one run
	// per snapshot or per batch. Makespan is then the total across runs;
	// MeanMakespan and MaxMakespan summarize the per-run distribution.
	Runs        int
	MaxMakespan time.Duration

	ComputePlusTime time.Duration
	MessagingTime   time.Duration
	BarrierTime     time.Duration
	Makespan        time.Duration
}

// Add accumulates another run's metrics into m; used by baselines that
// execute one engine run per snapshot or per batch. Metrics built before the
// Runs counter existed (zero Runs) count as one run, so mean/max stay honest
// for hand-assembled values too.
func (m *Metrics) Add(o *Metrics) {
	// The receiver needs the same normalization as o: a hand-assembled
	// single run holds zero Runs and zero MaxMakespan, and without this its
	// own makespan would never enter the max and Runs would come up one
	// short. A zero-valued accumulator stays at zero runs.
	if m.Runs == 0 && *m != (Metrics{}) {
		m.Runs = 1
		if m.MaxMakespan == 0 {
			m.MaxMakespan = m.Makespan
		}
	}
	m.Supersteps += o.Supersteps
	m.ComputeCalls += o.ComputeCalls
	m.ScatterCalls += o.ScatterCalls
	m.Messages += o.Messages
	m.MessageBytes += o.MessageBytes
	m.Checkpoints += o.Checkpoints
	m.Recoveries += o.Recoveries
	oRuns, oMax := o.Runs, o.MaxMakespan
	if oRuns == 0 {
		oRuns = 1
	}
	if oMax == 0 {
		oMax = o.Makespan
	}
	m.Runs += oRuns
	if oMax > m.MaxMakespan {
		m.MaxMakespan = oMax
	}
	m.ComputePlusTime += o.ComputePlusTime
	m.MessagingTime += o.MessagingTime
	m.BarrierTime += o.BarrierTime
	m.Makespan += o.Makespan
}

// MeanMakespan returns the average makespan per folded run (the makespan
// itself when Runs is zero or one).
func (m *Metrics) MeanMakespan() time.Duration {
	if m.Runs <= 1 {
		return m.Makespan
	}
	return m.Makespan / time.Duration(m.Runs)
}

// String summarizes the metrics on one line; fault-tolerance counters only
// appear when non-zero.
func (m *Metrics) String() string {
	s := fmt.Sprintf("supersteps=%d compute_calls=%d messages=%d bytes=%d compute+=%v messaging=%v barrier=%v makespan=%v",
		m.Supersteps, m.ComputeCalls, m.Messages, m.MessageBytes,
		m.ComputePlusTime.Round(time.Microsecond), m.MessagingTime.Round(time.Microsecond),
		m.BarrierTime.Round(time.Microsecond), m.Makespan.Round(time.Microsecond))
	if m.Checkpoints > 0 || m.Recoveries > 0 {
		s += fmt.Sprintf(" checkpoints=%d recoveries=%d", m.Checkpoints, m.Recoveries)
	}
	if m.Runs > 1 {
		s += fmt.Sprintf(" runs=%d mean_makespan=%v max_makespan=%v",
			m.Runs, m.MeanMakespan().Round(time.Microsecond), m.MaxMakespan.Round(time.Microsecond))
	}
	return s
}
