package engine

import (
	"fmt"
	"time"
)

// Metrics records the behaviour of a run, matching the quantities the paper
// reports: the makespan is split into compute+ time (user logic interleaved
// with message emission), exclusive messaging time (delivery after compute)
// and barrier time; the counters capture the primitive-intrinsic costs
// (user compute calls, scatter calls, messages, encoded message bytes).
type Metrics struct {
	Supersteps   int
	ComputeCalls int64
	ScatterCalls int64
	Messages     int64
	MessageBytes int64

	// Checkpoints and Recoveries count fault-tolerance events: recovery
	// points captured and rollback-and-replay cycles taken. Both are zero on
	// a fault-free run without checkpointing.
	Checkpoints int
	Recoveries  int

	ComputePlusTime time.Duration
	MessagingTime   time.Duration
	BarrierTime     time.Duration
	Makespan        time.Duration
}

// Add accumulates another run's metrics into m; used by baselines that
// execute one engine run per snapshot or per batch.
func (m *Metrics) Add(o *Metrics) {
	m.Supersteps += o.Supersteps
	m.ComputeCalls += o.ComputeCalls
	m.ScatterCalls += o.ScatterCalls
	m.Messages += o.Messages
	m.MessageBytes += o.MessageBytes
	m.Checkpoints += o.Checkpoints
	m.Recoveries += o.Recoveries
	m.ComputePlusTime += o.ComputePlusTime
	m.MessagingTime += o.MessagingTime
	m.BarrierTime += o.BarrierTime
	m.Makespan += o.Makespan
}

// String summarizes the metrics on one line; fault-tolerance counters only
// appear when non-zero.
func (m *Metrics) String() string {
	s := fmt.Sprintf("supersteps=%d compute_calls=%d messages=%d bytes=%d compute+=%v messaging=%v barrier=%v makespan=%v",
		m.Supersteps, m.ComputeCalls, m.Messages, m.MessageBytes,
		m.ComputePlusTime.Round(time.Microsecond), m.MessagingTime.Round(time.Microsecond),
		m.BarrierTime.Round(time.Microsecond), m.Makespan.Round(time.Microsecond))
	if m.Checkpoints > 0 || m.Recoveries > 0 {
		s += fmt.Sprintf(" checkpoints=%d recoveries=%d", m.Checkpoints, m.Recoveries)
	}
	return s
}
