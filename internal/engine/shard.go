package engine

import (
	"encoding/binary"
	"fmt"
	"runtime/debug"
	"slices"
)

// This file exposes one engine worker as an externally-driven shard, the
// building block of the multi-process cluster runtime (internal/cluster).
// Every worker process constructs the FULL engine over the whole graph with
// the same deterministic configuration — partitioner, worker count, codec —
// so the vertex→worker and vertex→slot maps are identical in every process,
// then executes only its own worker's slots. Remote vertices exist as
// routing entries only; their state lives in the processes that own them.
//
// The cluster coordinator drives the BSP loop from outside: Compute →
// Outbound (encoded batches for the wire) → Deliver (batches received from
// peers) → Barrier, one call set per superstep per shard. Delivery order
// matches the in-process transported exchange exactly — own outbox first,
// then peer batches in ascending shard order — so a cluster run is
// bit-identical to a single-process run over the same configuration, which
// is what the kill-recovery chaos tests assert.

// SnapshotCodec is the Program extension the durable checkpoint path
// requires on top of Snapshotter: the opaque snapshot must serialize, since
// a replacement process restores it from disk rather than from memory.
type SnapshotCodec interface {
	// AppendSnapshot appends a serialized form of a Snapshot() result to buf.
	AppendSnapshot(buf []byte, snap any) ([]byte, error)
	// DecodeSnapshot reconstructs a snapshot suitable for Restore from bytes
	// produced by AppendSnapshot.
	DecodeSnapshot(data []byte) (any, error)
}

// StepReport is one shard's contribution to a superstep barrier. The
// coordinator sums Delivered and Active across shards to detect global
// quiescence (the engine's halt condition, distributed).
type StepReport struct {
	Superstep    int   // the superstep just completed
	Delivered    int64 // messages delivered into this shard
	Active       int   // this shard's vertices active for the next superstep
	ComputeCalls int64
	ScatterCalls int64
	SentMsgs     int64
	SentBytes    int64
}

// Shard is one worker's slice of an engine, stepped from outside.
type Shard struct {
	eng       *Engine
	w         *worker
	id        int
	snap      SnapshotCodec
	delivered int64
}

// NewShard builds the full engine for numVertices vertices and returns the
// handle for executing worker shard of cfg.NumWorkers. The configuration
// must be identical across every process of the cluster (same partitioner,
// worker count, codec, program construction), which is why NumWorkers must
// be explicit — a GOMAXPROCS default would diverge between hosts. Single-
// process concerns are rejected: Transport (the cluster IS the transport),
// Steal (no shared memory to steal from), Master and CheckpointEvery (the
// coordinator owns control flow and durable checkpoints), Context
// (cancellation arrives as a connection close, not a ctx).
func NewShard(numVertices int, program Program, cfg Config, shard int) (*Shard, error) {
	if cfg.NumWorkers <= 0 {
		return nil, fmt.Errorf("%w: shard execution requires an explicit NumWorkers", ErrBadConfig)
	}
	if cfg.Transport != nil {
		return nil, fmt.Errorf("%w: shard execution replaces Transport", ErrBadConfig)
	}
	if cfg.Steal {
		return nil, fmt.Errorf("%w: work stealing requires shared memory; shards have none", ErrBadConfig)
	}
	if cfg.Master != nil {
		return nil, fmt.Errorf("%w: master compute is centralized at the cluster coordinator", ErrBadConfig)
	}
	if cfg.CheckpointEvery > 0 {
		return nil, fmt.Errorf("%w: shards checkpoint durably via CaptureDurable, not CheckpointEvery", ErrBadConfig)
	}
	if cfg.Context != nil {
		return nil, fmt.Errorf("%w: shard execution is driven externally; Context is unsupported", ErrBadConfig)
	}
	if cfg.PayloadCodec == nil {
		return nil, fmt.Errorf("%w: shard execution requires PayloadCodec", ErrBadConfig)
	}
	if _, ok := program.(Snapshotter); !ok {
		return nil, fmt.Errorf("%w: shard execution requires a Program implementing Snapshotter", ErrBadConfig)
	}
	snap, ok := program.(SnapshotCodec)
	if !ok {
		return nil, fmt.Errorf("%w: shard execution requires a Program implementing SnapshotCodec", ErrBadConfig)
	}
	e, err := New(numVertices, program, cfg)
	if err != nil {
		return nil, err
	}
	if shard < 0 || shard >= len(e.workers) {
		return nil, fmt.Errorf("%w: shard %d out of range for %d workers", ErrBadConfig, shard, len(e.workers))
	}
	return &Shard{eng: e, w: e.workers[shard], id: shard, snap: snap}, nil
}

// ID returns the shard index.
func (s *Shard) ID() int { return s.id }

// NumShards returns the cluster width the engine was built for.
func (s *Shard) NumShards() int { return len(s.eng.workers) }

// Superstep returns the 1-based superstep about to execute (or executing).
func (s *Shard) Superstep() int { return s.eng.superstp }

// Owned returns the dense vertex indices this shard owns, in slot order.
// The slice is the engine's own; callers must not mutate it.
func (s *Shard) Owned() []int32 { return s.w.local }

// Init runs Program.Init over this shard's vertices (superstep-1 setup),
// activating all of them, exactly as Run's init phase does for one worker.
func (s *Shard) Init() error {
	e, w := s.eng, s.w
	e.superstp = 1
	ctx := Context{eng: e, w: w}
	for slot, v := range w.local {
		ctx.vertex = v
		ctx.slot = slot
		w.activate(slot)
		if !e.guardedCall(int(v), func() { e.program.Init(&ctx) }) {
			return e.takeErr()
		}
	}
	return e.takeErr()
}

// Compute runs this shard's compute phase over its active frontier,
// emitting into per-destination outboxes. A user-program panic surfaces as
// a *VertexPanicError, never kills the process.
func (s *Shard) Compute() error {
	e := s.eng
	func() {
		defer func() {
			if r := recover(); r != nil {
				e.fail(&VertexPanicError{
					Vertex:    -1,
					Superstep: e.superstp,
					Value:     r,
					Stack:     debug.Stack(),
				})
			}
		}()
		s.w.computeStatic()
	}()
	return e.takeErr()
}

// Outbound drains and encodes the cross-shard outboxes: one batch per
// destination shard (possibly empty — peers expect exactly one frame from
// every other shard per superstep), nil at this shard's own index. The
// self-addressed outbox is retained for Deliver. Batches are freshly
// allocated: they are handed to the wire asynchronously, so the pooled-slab
// discipline of the in-process hot path does not apply.
func (s *Shard) Outbound() ([][]byte, error) {
	e, w := s.eng, s.w
	if err := e.takeErr(); err != nil {
		return nil, err
	}
	out := make([][]byte, len(e.workers))
	for dst := range e.workers {
		if dst == s.id {
			continue
		}
		out[dst] = encodeBatch(nil, w.outbox[dst], e.cfg.PayloadCodec)
		w.outbox[dst] = w.outbox[dst][:0]
	}
	return out, nil
}

// Deliver runs this shard's receive phase: the self-addressed outbox first,
// then the peer batches in the order given — callers MUST pass them in
// ascending source-shard order, mirroring Transport.Recv, or cluster runs
// lose bit-identity with single-process runs. Returns the number of
// messages delivered into this shard.
func (s *Shard) Deliver(batches [][]byte) (int64, error) {
	e, w := s.eng, s.w
	var n int64
	for _, m := range w.outbox[s.id] {
		_, slot := e.owner(m.Dst)
		w.deliver(slot, m)
		n++
	}
	w.outbox[s.id] = w.outbox[s.id][:0]
	for _, b := range batches {
		msgs, err := decodeBatchInto(w.decode[:0], b, e.cfg.PayloadCodec)
		w.decode = msgs[:0]
		if err != nil {
			return n, fmt.Errorf("engine: shard %d: %w", s.id, err)
		}
		for _, m := range msgs {
			dw, slot := e.owner(m.Dst)
			if dw != s.id {
				return n, fmt.Errorf("engine: shard %d received message for vertex %d owned by shard %d",
					s.id, m.Dst, dw)
			}
			w.deliver(slot, m)
			n++
		}
	}
	clear(w.decode[:cap(w.decode)])
	s.delivered = n
	return n, nil
}

// Barrier closes the current superstep: partials fold into the registry and
// the report the coordinator aggregates is returned. Call after Deliver.
func (s *Shard) Barrier() StepReport {
	e := s.eng
	st := e.mergePartials()
	rep := StepReport{
		Superstep:    e.superstp,
		Delivered:    s.delivered,
		Active:       len(s.w.frontier),
		ComputeCalls: st.computeCalls,
		ScatterCalls: st.scatterCalls,
		SentMsgs:     st.sentMsgs,
		SentBytes:    st.sentBytes,
	}
	e.ec.supersteps.Inc()
	e.setSchedulerGauges()
	e.superstp++
	s.delivered = 0
	return rep
}

// shardCkptVersion tags the durable shard-checkpoint format.
const shardCkptVersion = 1

// CaptureDurable serializes everything a replacement process needs to
// resume this shard at the current superstep boundary: the superstep
// counter, the program's vertex state (via SnapshotCodec), the active slot
// set, and the undelivered inboxes. Call only at a barrier (after Barrier,
// before the next Compute). The bytes are canonical — active slots sorted,
// inboxes in slot order — so identical state yields identical bytes.
func (s *Shard) CaptureDurable() ([]byte, error) {
	e, w := s.eng, s.w
	if err := e.takeErr(); err != nil {
		return nil, err
	}
	snapBytes, err := s.snap.AppendSnapshot(nil, e.program.(Snapshotter).Snapshot())
	if err != nil {
		return nil, fmt.Errorf("engine: shard %d snapshot: %w", s.id, err)
	}
	buf := []byte{shardCkptVersion}
	buf = binary.AppendUvarint(buf, uint64(e.superstp))
	buf = binary.AppendUvarint(buf, uint64(len(snapBytes)))
	buf = append(buf, snapBytes...)

	slots := append([]int32(nil), w.frontier...)
	slices.Sort(slots)
	buf = binary.AppendUvarint(buf, uint64(len(slots)))
	for _, sl := range slots {
		buf = binary.AppendUvarint(buf, uint64(sl))
	}

	nonEmpty := 0
	for _, sl := range w.inbox {
		if sl != nil && len(sl.msgs) > 0 {
			nonEmpty++
		}
	}
	buf = binary.AppendUvarint(buf, uint64(nonEmpty))
	for slot, sl := range w.inbox {
		if sl == nil || len(sl.msgs) == 0 {
			continue
		}
		buf = binary.AppendUvarint(buf, uint64(slot))
		// Each inbox batch is length-prefixed so the restore parser can walk
		// entry to entry without decoding ahead.
		batch := encodeBatch(nil, sl.msgs, e.cfg.PayloadCodec)
		buf = binary.AppendUvarint(buf, uint64(len(batch)))
		buf = append(buf, batch...)
	}
	return buf, nil
}

// readUvarint pops one uvarint off buf.
func readUvarint(buf []byte, what string) (uint64, []byte, error) {
	v, k := binary.Uvarint(buf)
	if k <= 0 {
		return 0, nil, fmt.Errorf("%w: shard checkpoint: bad %s", ErrCheckpointCorrupt, what)
	}
	return v, buf[k:], nil
}

// RestoreDurable rewinds this shard to a CaptureDurable state: program
// state, active set, inboxes and superstep counter are replaced; outboxes,
// partials and any recorded failure are discarded. Works on a freshly
// Init()ed shard (the replacement-process path) and on a live one rolling
// back with the survivors.
func (s *Shard) RestoreDurable(data []byte) error {
	e, w := s.eng, s.w
	if len(data) < 1 || data[0] != shardCkptVersion {
		return fmt.Errorf("%w: shard checkpoint: unknown version", ErrCheckpointCorrupt)
	}
	buf := data[1:]
	superstep, buf, err := readUvarint(buf, "superstep")
	if err != nil {
		return err
	}
	snapLen, buf, err := readUvarint(buf, "snapshot length")
	if err != nil {
		return err
	}
	if uint64(len(buf)) < snapLen {
		return fmt.Errorf("%w: shard checkpoint: snapshot truncated", ErrCheckpointCorrupt)
	}
	snap, err := s.snap.DecodeSnapshot(buf[:snapLen])
	if err != nil {
		return fmt.Errorf("engine: shard %d snapshot decode: %w", s.id, err)
	}
	buf = buf[snapLen:]

	nActive, buf, err := readUvarint(buf, "active count")
	if err != nil {
		return err
	}
	if nActive > uint64(len(w.local)) {
		return fmt.Errorf("%w: shard checkpoint: %d active of %d slots", ErrCheckpointCorrupt, nActive, len(w.local))
	}
	activeSlots := make([]int, 0, nActive)
	for i := uint64(0); i < nActive; i++ {
		var slot uint64
		slot, buf, err = readUvarint(buf, "active slot")
		if err != nil {
			return err
		}
		if slot >= uint64(len(w.local)) {
			return fmt.Errorf("%w: shard checkpoint: active slot %d out of range", ErrCheckpointCorrupt, slot)
		}
		activeSlots = append(activeSlots, int(slot))
	}

	type inboxEntry struct {
		slot int
		msgs []Message
	}
	nInbox, buf, err := readUvarint(buf, "inbox count")
	if err != nil {
		return err
	}
	entries := make([]inboxEntry, 0, nInbox)
	for i := uint64(0); i < nInbox; i++ {
		var slot, blen uint64
		slot, buf, err = readUvarint(buf, "inbox slot")
		if err != nil {
			return err
		}
		if slot >= uint64(len(w.local)) {
			return fmt.Errorf("%w: shard checkpoint: inbox slot %d out of range", ErrCheckpointCorrupt, slot)
		}
		blen, buf, err = readUvarint(buf, "inbox batch length")
		if err != nil {
			return err
		}
		if uint64(len(buf)) < blen {
			return fmt.Errorf("%w: shard checkpoint: inbox batch truncated", ErrCheckpointCorrupt)
		}
		msgs, derr := decodeBatch(buf[:blen], e.cfg.PayloadCodec)
		if derr != nil {
			return fmt.Errorf("engine: shard %d inbox decode: %w", s.id, derr)
		}
		buf = buf[blen:]
		entries = append(entries, inboxEntry{slot: int(slot), msgs: msgs})
	}

	// All parsed and validated — now mutate. Recycle whatever the aborted
	// superstep delivered, then rebuild from the checkpoint.
	e.program.(Snapshotter).Restore(snap)
	for slot := range w.inbox {
		if sl := w.inbox[slot]; sl != nil {
			w.inbox[slot] = nil
			msgArena.put(sl)
		}
	}
	clear(w.active)
	w.frontier = w.frontier[:0]
	for _, slot := range activeSlots {
		w.activate(slot)
	}
	for _, ent := range entries {
		sl := msgArena.get()
		sl.msgs = append(sl.msgs, ent.msgs...)
		w.inbox[ent.slot] = sl
	}
	for d := range w.outbox {
		w.outbox[d] = w.outbox[d][:0]
	}
	w.resetPartials()
	e.clearErr()
	e.superstp = int(superstep)
	s.delivered = 0
	return nil
}
