package engine

import (
	"graphite/internal/codec"
	ival "graphite/internal/interval"
)

// Context is handed to Program.Init and Program.Run; it identifies the
// vertex being executed and provides messaging, aggregation and metric
// facilities. A Context is only valid for the duration of the call.
type Context struct {
	eng    *Engine
	w      *worker // the executing worker: partials and scratch are its own
	vertex int32
	slot   int
	// lanes, when non-nil, are the per-destination outbox lanes of the chunk
	// being executed; Send appends there instead of the worker outboxes so
	// stolen chunks stay order-independent until the deterministic merge.
	lanes [][]Message
}

// Vertex returns the dense index of the vertex being executed.
func (c *Context) Vertex() int { return int(c.vertex) }

// Superstep returns the 1-based superstep number.
func (c *Context) Superstep() int { return c.eng.superstp }

// NumWorkers returns the number of BSP workers.
func (c *Context) NumWorkers() int { return len(c.eng.workers) }

// Worker returns the id of the worker executing this vertex — under work
// stealing, the thief, not the vertex's owner. Platform layers key
// per-worker scratch workspaces off it: a worker goroutine only ever
// executes one vertex at a time, so workspace access needs no
// synchronization even when the vertex belongs to another worker's
// partition.
func (c *Context) Worker() int { return c.w.id }

// Phase returns the master-set phase number (0 until changed).
func (c *Context) Phase() int { return c.eng.phase }

// Send queues a message to the vertex with dense index dst, valid for the
// given interval, delivered at the next barrier.
func (c *Context) Send(dst int, when ival.Interval, value any) {
	w := c.w
	dw := int(c.eng.part[dst])
	m := Message{Dst: int32(dst), When: when, Value: value}
	if c.lanes != nil {
		c.lanes[dw] = append(c.lanes[dw], m)
	} else {
		w.outbox[dw] = append(w.outbox[dw], m)
	}
	w.sentMsgs++
	ivalBytes := int64(codec.IntervalSize(when))
	w.sentBytes += ivalBytes + c.payloadSize(value)
	w.classBytes[codec.ClassOf(when)] += ivalBytes
}

// payloadSize estimates encoded payload bytes, preferring the configured
// codec; the worker's scratch buffer keeps the sizing allocation-free.
func (c *Context) payloadSize(v any) int64 {
	if pc := c.eng.cfg.PayloadCodec; pc != nil {
		c.w.scratch = pc.Append(c.w.scratch[:0], v)
		return int64(len(c.w.scratch))
	}
	switch x := v.(type) {
	case nil:
		return 0
	case bool, int8, uint8:
		return 1
	case []int64:
		return int64(8 * len(x))
	default:
		return 8
	}
}

// AddComputeCalls adds to the run's user-compute-call counter; the platform
// layers call this once per user logic invocation.
func (c *Context) AddComputeCalls(n int) { c.w.computeCalls += int64(n) }

// AddScatterCalls adds to the run's scatter-call counter.
func (c *Context) AddScatterCalls(n int) { c.w.scatterCalls += int64(n) }

// Aggregate contributes a value to a named aggregator; it becomes visible
// in the next superstep.
func (c *Context) Aggregate(name string, v any) {
	c.eng.aggs[name].accumulate(v)
}

// AggValue returns the merged value a named aggregator held at the end of
// the previous superstep (nil in superstep 1).
func (c *Context) AggValue(name string) any { return c.eng.aggVals[name] }

// MasterControl is the master-compute interface: it runs between supersteps
// on merged aggregator state.
type MasterControl struct {
	eng  *Engine
	halt bool
}

// Superstep returns the superstep about to execute (1-based).
func (m *MasterControl) Superstep() int { return m.eng.superstp }

// Halt stops the computation before the upcoming superstep.
func (m *MasterControl) Halt() { m.halt = true }

// Phase returns the current phase number.
func (m *MasterControl) Phase() int { return m.eng.phase }

// SetPhase changes the phase number visible to vertices via Context.Phase.
func (m *MasterControl) SetPhase(p int) { m.eng.phase = p }

// AggValue returns the merged value of a named aggregator from the previous
// superstep.
func (m *MasterControl) AggValue(name string) any { return m.eng.aggVals[name] }
