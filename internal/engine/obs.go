package engine

import (
	"time"

	"graphite/internal/codec"
	"graphite/internal/obs"
)

// engCounters caches the registry handles the engine touches, so barriers
// and the send-retry path never take the registry lock.
type engCounters struct {
	supersteps   *obs.Counter
	computeCalls *obs.Counter
	scatterCalls *obs.Counter
	messages     *obs.Counter
	messageBytes *obs.Counter
	checkpoints  *obs.Counter
	recoveries   *obs.Counter
	sendRetries  *obs.Counter
	steals       *obs.Counter
	computeNS    *obs.Counter
	messagingNS  *obs.Counter
	barrierNS    *obs.Counter
	makespanNS   *obs.Counter

	// classBytes splits interval-encoding bytes by codec class, indexed by
	// codec.IntervalClass.
	classBytes [codec.NumIntervalClasses]*obs.Counter

	// Pool gauges: refreshed at every barrier from the shared buffer pools
	// so traces and /debug/vars show hot-path reuse as the run progresses.
	poolHits    *obs.Gauge
	poolMisses  *obs.Gauge
	bytesReused *obs.Gauge

	// Scheduler gauges: frontier size after the latest delivery barrier and
	// the latest superstep's worker compute-time imbalance (max/mean ·1000).
	activeVertices *obs.Gauge
	imbalance      *obs.Gauge

	hCompute   *obs.Histogram
	hMessaging *obs.Histogram
	hBarrier   *obs.Histogram
}

// bindRegistry resolves every handle the engine publishes under once.
func (e *Engine) bindRegistry(reg *obs.Registry) {
	e.reg = reg
	e.ec = engCounters{
		supersteps:   reg.Counter(obs.CSupersteps),
		computeCalls: reg.Counter(obs.CComputeCalls),
		scatterCalls: reg.Counter(obs.CScatterCalls),
		messages:     reg.Counter(obs.CMessages),
		messageBytes: reg.Counter(obs.CMessageBytes),
		checkpoints:  reg.Counter(obs.CCheckpoints),
		recoveries:   reg.Counter(obs.CRecoveries),
		sendRetries:  reg.Counter(obs.CSendRetries),
		steals:       reg.Counter(obs.CSteals),
		computeNS:    reg.Counter(obs.CComputePlusNS),
		messagingNS:  reg.Counter(obs.CMessagingNS),
		barrierNS:    reg.Counter(obs.CBarrierNS),
		makespanNS:   reg.Counter(obs.CMakespanNS),
		classBytes: [codec.NumIntervalClasses]*obs.Counter{
			codec.ClassEmpty:     reg.Counter(obs.CIntervalBytesEmpty),
			codec.ClassUnit:      reg.Counter(obs.CIntervalBytesUnit),
			codec.ClassUnbounded: reg.Counter(obs.CIntervalBytesUnbounded),
			codec.ClassGeneral:   reg.Counter(obs.CIntervalBytesGeneral),
		},
		poolHits:       reg.Gauge(obs.GPoolHits),
		poolMisses:     reg.Gauge(obs.GPoolMisses),
		bytesReused:    reg.Gauge(obs.GBytesReused),
		activeVertices: reg.Gauge(obs.GActiveVertices),
		imbalance:      reg.Gauge(obs.GComputeImbalanceMilli),
		hCompute:       reg.Histogram(obs.HSuperstepComputeNS),
		hMessaging:     reg.Histogram(obs.HSuperstepMessagingNS),
		hBarrier:       reg.Histogram(obs.HSuperstepBarrierNS),
	}
}

// setPoolGauges publishes the shared pools' cumulative statistics. Called
// at barriers and at run end — never from worker goroutines.
func (e *Engine) setPoolGauges() {
	hits, misses, bytes := poolStats()
	e.ec.poolHits.Set(hits)
	e.ec.poolMisses.Set(misses)
	e.ec.bytesReused.Set(bytes)
}

// rawView reads the absolute registry totals. With a shared Registry these
// span every run that published into it; per-run views subtract the Run-start
// baseline.
func (e *Engine) rawView() Metrics {
	return Metrics{
		Supersteps:      int(e.ec.supersteps.Load()),
		ComputeCalls:    e.ec.computeCalls.Load(),
		ScatterCalls:    e.ec.scatterCalls.Load(),
		Messages:        e.ec.messages.Load(),
		MessageBytes:    e.ec.messageBytes.Load(),
		ComputePlusTime: time.Duration(e.ec.computeNS.Load()),
		MessagingTime:   time.Duration(e.ec.messagingNS.Load()),
		BarrierTime:     time.Duration(e.ec.barrierNS.Load()),
		Makespan:        time.Duration(e.ec.makespanNS.Load()),
	}
}

// metricsView assembles the per-run Metrics view over the registry: registry
// totals minus the Run-start baseline, fault counters from the engine's own
// per-run tallies, makespan as stored (it is overwritten, not accumulated).
func (e *Engine) metricsView() Metrics {
	m := e.rawView()
	b := e.base
	m.Supersteps -= b.Supersteps
	m.ComputeCalls -= b.ComputeCalls
	m.ScatterCalls -= b.ScatterCalls
	m.Messages -= b.Messages
	m.MessageBytes -= b.MessageBytes
	m.ComputePlusTime -= b.ComputePlusTime
	m.MessagingTime -= b.MessagingTime
	m.BarrierTime -= b.BarrierTime
	m.Checkpoints = e.checkpoints
	m.Recoveries = e.recoveries
	m.Runs = 1
	m.MaxMakespan = m.Makespan
	return m
}

// storeRaw rewinds the rewindable registry totals to checkpoint-captured
// absolute values. Fault counters (checkpoints, recoveries, send retries),
// the makespan and the phase histograms are never rewound: they observe what
// actually happened, replays included.
func (e *Engine) storeRaw(m Metrics, classBytes [codec.NumIntervalClasses]int64) {
	e.ec.supersteps.Store(int64(m.Supersteps))
	e.ec.computeCalls.Store(m.ComputeCalls)
	e.ec.scatterCalls.Store(m.ScatterCalls)
	e.ec.messages.Store(m.Messages)
	e.ec.messageBytes.Store(m.MessageBytes)
	e.ec.computeNS.Store(int64(m.ComputePlusTime))
	e.ec.messagingNS.Store(int64(m.MessagingTime))
	e.ec.barrierNS.Store(int64(m.BarrierTime))
	for i, n := range classBytes {
		e.ec.classBytes[i].Store(n)
	}
}

// countActive counts activated vertices — O(workers) off the dense frontier
// lengths maintained at delivery time, never a slot-array rescan. The
// frontier dedups through the active bitmap, so the count equals the number
// of set flags.
func (e *Engine) countActive() int {
	n := 0
	for _, w := range e.workers {
		n += len(w.frontier)
	}
	return n
}

// setSchedulerGauges publishes the frontier size after the barrier's
// delivery and the finished compute phase's worker imbalance. Called at
// barriers only, never from worker goroutines.
func (e *Engine) setSchedulerGauges() {
	e.ec.activeVertices.Set(int64(e.countActive()))
	e.ec.imbalance.Set(e.imbalanceMilli())
}

// stepTotals are one superstep's counter deltas, folded from the per-worker
// partials at the barrier.
type stepTotals struct {
	computeCalls int64
	scatterCalls int64
	sentMsgs     int64
	sentBytes    int64
	steals       int64
	classBytes   [codec.NumIntervalClasses]int64
}

// mergePartials folds every worker's partials into the registry and resets
// them, returning the superstep's deltas for trace emission.
func (e *Engine) mergePartials() stepTotals {
	var st stepTotals
	for _, w := range e.workers {
		st.computeCalls += w.computeCalls
		st.scatterCalls += w.scatterCalls
		st.sentMsgs += w.sentMsgs
		st.sentBytes += w.sentBytes
		st.steals += w.steals
		for i, b := range w.classBytes {
			st.classBytes[i] += b
		}
		w.resetPartials()
	}
	e.ec.computeCalls.Add(st.computeCalls)
	e.ec.scatterCalls.Add(st.scatterCalls)
	e.ec.messages.Add(st.sentMsgs)
	e.ec.messageBytes.Add(st.sentBytes)
	if st.steals != 0 {
		e.ec.steals.Add(st.steals)
	}
	for i, n := range st.classBytes {
		if n != 0 {
			e.ec.classBytes[i].Add(n)
		}
	}
	return st
}

// resetPartials clears a worker's per-superstep metric partials.
func (w *worker) resetPartials() {
	w.computeCalls, w.scatterCalls, w.sentMsgs, w.sentBytes = 0, 0, 0, 0
	w.steals = 0
	w.classBytes = [codec.NumIntervalClasses]int64{}
}

// emitWorkerPhases reports one phase of the finished superstep for every
// worker, in worker order, from the coordinating goroutine — trace output
// stays deterministic because workers never emit.
func (e *Engine) emitWorkerPhases(phase string) {
	for _, w := range e.workers {
		ev := obs.WorkerPhase{
			Superstep: e.superstp,
			Worker:    w.id,
			Phase:     phase,
		}
		switch phase {
		case "compute":
			ev.NS = w.computeNS
			ev.ComputeCalls = w.computeCalls
			ev.ScatterCalls = w.scatterCalls
			ev.SentMsgs = w.sentMsgs
			ev.SentBytes = w.sentBytes
			ev.StealNS = w.stealNS
			ev.Steals = w.steals
		case "ship":
			ev.NS = w.shipNS
		case "exchange":
			ev.NS = w.exchangeNS
			ev.Delivered = w.delivered
		}
		e.tracer.Emit(ev)
	}
}
