package engine

import (
	"errors"
	"sync"
	"testing"

	"graphite/internal/codec"
	ival "graphite/internal/interval"
)

// distProgram is a BFS-level propagation program over a static adjacency
// list: vertex 0 starts at level 0, everyone adopts 1+min(neighbor levels).
type distProgram struct {
	adj  [][]int
	mu   sync.Mutex
	dist []int64
}

func (p *distProgram) Init(ctx *Context) {
	v := ctx.Vertex()
	p.mu.Lock()
	p.dist[v] = 1 << 30
	p.mu.Unlock()
}

func (p *distProgram) Run(ctx *Context, msgs []Message) {
	ctx.AddComputeCalls(1)
	v := ctx.Vertex()
	best := int64(1 << 30)
	if ctx.Superstep() == 1 && v == 0 {
		best = 0
	}
	for _, m := range msgs {
		if d := m.Value.(int64); d < best {
			best = d
		}
	}
	p.mu.Lock()
	cur := p.dist[v]
	if best < cur {
		p.dist[v] = best
	}
	p.mu.Unlock()
	if best < cur {
		for _, n := range p.adj[v] {
			ctx.Send(n, ival.Universe, best+1)
		}
	}
}

func ring(n int) [][]int {
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		adj[i] = []int{(i + 1) % n}
	}
	return adj
}

func TestEngineBFSRing(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		n := 10
		p := &distProgram{adj: ring(n), dist: make([]int64, n)}
		e, err := New(n, p, Config{NumWorkers: workers})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		m, err := e.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		for i := 0; i < n; i++ {
			if p.dist[i] != int64(i) {
				t.Fatalf("workers=%d: dist[%d] = %d, want %d", workers, i, p.dist[i], i)
			}
		}
		// Directed ring: n supersteps of propagation + 1 to drain.
		if m.Supersteps != n+1 {
			t.Errorf("workers=%d: supersteps = %d, want %d", workers, m.Supersteps, n+1)
		}
		if m.Messages != int64(n) {
			t.Errorf("workers=%d: messages = %d, want %d", workers, m.Messages, n)
		}
		if m.ComputeCalls < int64(n) {
			t.Errorf("workers=%d: compute calls = %d, want >= %d", workers, m.ComputeCalls, n)
		}
		if m.MessageBytes <= 0 {
			t.Errorf("workers=%d: message bytes not accounted", workers)
		}
	}
}

func TestEngineHaltsWithNoMessages(t *testing.T) {
	p := &distProgram{adj: make([][]int, 3), dist: make([]int64, 3)}
	e, _ := New(3, p, Config{NumWorkers: 2})
	m, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Supersteps != 1 {
		t.Errorf("supersteps = %d, want 1 (no edges, nothing to do)", m.Supersteps)
	}
}

// countProgram counts Run invocations per superstep and always sends to self.
type countProgram struct {
	mu    sync.Mutex
	runs  int
	limit int
}

func (p *countProgram) Init(*Context) {}
func (p *countProgram) Run(ctx *Context, msgs []Message) {
	p.mu.Lock()
	p.runs++
	p.mu.Unlock()
	if ctx.Superstep() < p.limit {
		ctx.Send(ctx.Vertex(), ival.Universe, int64(1))
	}
}

func TestMaxSupersteps(t *testing.T) {
	p := &countProgram{limit: 1 << 30}
	e, _ := New(4, p, Config{NumWorkers: 2, MaxSupersteps: 5})
	m, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Supersteps != 5 {
		t.Errorf("supersteps = %d, want 5", m.Supersteps)
	}
}

func TestActivateAllRequiresBound(t *testing.T) {
	p := &countProgram{limit: 0}
	e, _ := New(2, p, Config{NumWorkers: 1, ActivateAll: true})
	if _, err := e.Run(); !errors.Is(err, ErrBadConfig) {
		t.Errorf("want ErrBadConfig, got %v", err)
	}
	// With MaxSupersteps it must run every vertex every superstep.
	p = &countProgram{limit: 0}
	e, _ = New(3, p, Config{NumWorkers: 2, ActivateAll: true, MaxSupersteps: 4})
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if p.runs != 3*4 {
		t.Errorf("runs = %d, want 12", p.runs)
	}
}

// combineProgram sends k messages to vertex 0 and records how many arrive.
type combineProgram struct {
	mu       sync.Mutex
	received []int64
}

func (p *combineProgram) Init(*Context) {}
func (p *combineProgram) Run(ctx *Context, msgs []Message) {
	if ctx.Superstep() == 1 {
		ctx.Send(0, ival.New(0, 5), int64(ctx.Vertex()))
		ctx.Send(0, ival.New(5, 9), int64(ctx.Vertex()))
		return
	}
	if ctx.Vertex() == 0 {
		p.mu.Lock()
		for _, m := range msgs {
			p.received = append(p.received, m.Value.(int64))
		}
		p.mu.Unlock()
	}
}

func TestReceiverSideCombiner(t *testing.T) {
	p := &combineProgram{}
	sum := CombinerFunc(func(a, b any) any { return a.(int64) + b.(int64) })
	e, _ := New(4, p, Config{NumWorkers: 2, Combiner: sum})
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 4 senders × 2 intervals combine down to 2 messages of value 0+1+2+3.
	if len(p.received) != 2 {
		t.Fatalf("received %d messages, want 2 (combined per interval): %v", len(p.received), p.received)
	}
	if p.received[0]+p.received[1] != 12 {
		t.Errorf("combined sum = %d, want 12", p.received[0]+p.received[1])
	}
}

// aggProgram contributes its vertex id each superstep.
type aggProgram struct {
	mu   sync.Mutex
	seen []int64 // aggregate value observed at each superstep > 1
}

func (p *aggProgram) Init(*Context) {}
func (p *aggProgram) Run(ctx *Context, msgs []Message) {
	ctx.Aggregate("sum", int64(1))
	if ctx.Superstep() > 1 && ctx.Vertex() == 0 {
		p.mu.Lock()
		p.seen = append(p.seen, ctx.AggValue("sum").(int64))
		p.mu.Unlock()
	}
	if ctx.Superstep() < 3 {
		ctx.Send(ctx.Vertex(), ival.Universe, nil)
	}
}

func TestAggregators(t *testing.T) {
	p := &aggProgram{}
	e, _ := New(5, p, Config{NumWorkers: 3})
	e.RegisterAggregator("sum", SumInt64())
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Superstep 2 sees the sum from superstep 1 (5 vertices), superstep 3
	// sees superstep 2's (5 again).
	if len(p.seen) != 2 || p.seen[0] != 5 || p.seen[1] != 5 {
		t.Errorf("aggregate history = %v, want [5 5]", p.seen)
	}
}

// haltMaster halts before superstep 3.
type haltMaster struct{ phases []int }

func (m *haltMaster) BeforeSuperstep(mc *MasterControl) {
	m.phases = append(m.phases, mc.Phase())
	mc.SetPhase(mc.Superstep())
	if mc.Superstep() >= 3 {
		mc.Halt()
	}
}

func TestMasterHaltAndPhases(t *testing.T) {
	p := &countProgram{limit: 1 << 30}
	master := &haltMaster{}
	e, _ := New(2, p, Config{NumWorkers: 1, Master: master})
	m, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Supersteps != 2 {
		t.Errorf("supersteps = %d, want 2", m.Supersteps)
	}
	if !e.Halted() {
		t.Errorf("engine should report master halt")
	}
	if len(master.phases) != 3 || master.phases[0] != 0 || master.phases[1] != 1 || master.phases[2] != 2 {
		t.Errorf("phases = %v", master.phases)
	}
}

func TestVerifyCodecRoundTrips(t *testing.T) {
	n := 6
	p := &distProgram{adj: ring(n), dist: make([]int64, n)}
	e, err := New(n, p, Config{NumWorkers: 3, PayloadCodec: codec.Int64{}, VerifyCodec: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < n; i++ {
		if p.dist[i] != int64(i) {
			t.Fatalf("dist[%d] = %d, want %d", i, p.dist[i], i)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(0, &countProgram{}, Config{}); !errors.Is(err, ErrNoVertices) {
		t.Errorf("want ErrNoVertices, got %v", err)
	}
	if _, err := New(3, nil, Config{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("want ErrBadConfig for nil program, got %v", err)
	}
	if _, err := New(3, &countProgram{}, Config{VerifyCodec: true}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("want ErrBadConfig for VerifyCodec without codec, got %v", err)
	}
	// More workers than vertices is clamped, not an error.
	e, err := New(2, &countProgram{}, Config{NumWorkers: 16})
	if err != nil || len(e.workers) != 2 {
		t.Errorf("worker clamp failed: %v %d", err, len(e.workers))
	}
}

func TestCustomPartitioner(t *testing.T) {
	// Range partitioner: first half to worker 0, rest to worker 1. Results
	// must be identical to hash partitioning.
	n := 10
	rangePart := func(v, workers int) int {
		if v < n/2 {
			return 0
		}
		return 1
	}
	p := &distProgram{adj: ring(n), dist: make([]int64, n)}
	e, err := New(n, p, Config{NumWorkers: 2, Partitioner: rangePart})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < n; i++ {
		if p.dist[i] != int64(i) {
			t.Fatalf("dist[%d] = %d, want %d", i, p.dist[i], i)
		}
	}
	// An out-of-range partitioner is rejected.
	bad := func(v, workers int) int { return workers }
	if _, err := New(n, p, Config{NumWorkers: 2, Partitioner: bad}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
}

func TestMetricsTimeSplit(t *testing.T) {
	n := 64
	p := &distProgram{adj: ring(n), dist: make([]int64, n)}
	e, _ := New(n, p, Config{NumWorkers: 4})
	m, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.ComputePlusTime <= 0 || m.Makespan <= 0 {
		t.Errorf("time metrics not populated: %v", m)
	}
	if m.ComputePlusTime+m.MessagingTime+m.BarrierTime > m.Makespan {
		t.Errorf("phase times exceed makespan: %v", m)
	}
	// Metrics accumulate across Add.
	var sum Metrics
	sum.Add(m)
	sum.Add(m)
	if sum.Messages != 2*m.Messages || sum.Supersteps != 2*m.Supersteps {
		t.Errorf("Add accumulation wrong: %v", sum)
	}
	if sum.String() == "" {
		t.Errorf("String should render")
	}
}

func TestAggregatorConstructors(t *testing.T) {
	min := MinInt64(99)
	min.accumulate(int64(7))
	min.accumulate(int64(3))
	if v := min.drain().(int64); v != 3 {
		t.Errorf("MinInt64 drain = %d, want 3", v)
	}
	if v := min.drain().(int64); v != 99 {
		t.Errorf("MinInt64 identity = %d, want 99", v)
	}
	sum := SumFloat64()
	sum.accumulate(1.5)
	sum.accumulate(2.25)
	if v := sum.drain().(float64); v != 3.75 {
		t.Errorf("SumFloat64 drain = %v", v)
	}
	or := BoolOr()
	if v := or.drain().(bool); v {
		t.Errorf("BoolOr identity should be false")
	}
	or.accumulate(true)
	or.accumulate(false)
	if v := or.drain().(bool); !v {
		t.Errorf("BoolOr drain should be true")
	}
}
