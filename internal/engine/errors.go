package engine

import (
	"errors"
	"fmt"
)

// VertexPanicError reports a panic that escaped user Program code (Init or
// Run). The engine recovers it inside the worker goroutine so the process
// stays alive, and surfaces it as the run error — or rolls back to the
// latest checkpoint when checkpointing is enabled.
type VertexPanicError struct {
	// Vertex is the dense index of the vertex whose user logic panicked,
	// or -1 when the panic was not attributable to a single vertex.
	Vertex int
	// Superstep is the 1-based superstep during which the panic fired.
	Superstep int
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at the recovery point.
	Stack []byte
}

// Error implements error.
func (e *VertexPanicError) Error() string {
	return fmt.Sprintf("engine: program panic at vertex %d, superstep %d: %v",
		e.Vertex, e.Superstep, e.Value)
}

// ErrRecoveryExhausted is wrapped into the run error when rollback-and-replay
// attempts exceed Config.MaxRecoveries.
var ErrRecoveryExhausted = errors.New("engine: recovery attempts exhausted")
