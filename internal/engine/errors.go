package engine

import (
	"errors"
	"fmt"
)

// VertexPanicError reports a panic that escaped user Program code (Init or
// Run). The engine recovers it inside the worker goroutine so the process
// stays alive, and surfaces it as the run error — or rolls back to the
// latest checkpoint when checkpointing is enabled.
type VertexPanicError struct {
	// Vertex is the dense index of the vertex whose user logic panicked,
	// or -1 when the panic was not attributable to a single vertex.
	Vertex int
	// Superstep is the 1-based superstep during which the panic fired.
	Superstep int
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at the recovery point.
	Stack []byte
}

// Error implements error.
func (e *VertexPanicError) Error() string {
	return fmt.Sprintf("engine: program panic at vertex %d, superstep %d: %v",
		e.Vertex, e.Superstep, e.Value)
}

// ErrRecoveryExhausted is wrapped into the run error when rollback-and-replay
// attempts exceed Config.MaxRecoveries.
var ErrRecoveryExhausted = errors.New("engine: recovery attempts exhausted")

// ErrCanceled is wrapped into the run error when Config.Context is canceled.
// Cancellation is cooperative: workers stop claiming vertices as soon as they
// observe it, and the run aborts at the next superstep barrier. It is an
// external abort, not a fault — checkpoint recovery never rolls back and
// replays a canceled superstep. Test with errors.Is(err, ErrCanceled).
var ErrCanceled = errors.New("engine: run canceled")
