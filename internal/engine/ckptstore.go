package engine

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// This file is the durable half of the checkpoint subsystem: while
// checkpoint.go captures in-memory recovery points for single-process
// rollback-and-replay, the CheckpointStore persists a shard's serialized
// checkpoints to disk so a worker process that was SIGKILLed can be
// replaced and reload its shard state. Durability discipline: checkpoint
// bytes are written to a temp file, fsynced, and atomically renamed into
// place; a generation only becomes visible once the versioned manifest —
// itself updated by atomic rename — records it. Every load verifies a CRC32
// over the payload, so a torn or corrupted file is a typed error and never
// silently loaded; LatestValid walks the manifest newest-first past corrupt
// generations.

// Checkpoint-store errors. ErrCheckpointCorrupt wraps every integrity
// failure (bad magic, truncation, CRC mismatch); callers fall back to an
// older generation via LatestValid.
var (
	ErrCheckpointCorrupt = errors.New("engine: checkpoint corrupt")
	ErrNoCheckpoint      = errors.New("engine: no checkpoint available")
)

// ckptMagic opens every checkpoint file: 4 bytes of magic including a
// format version.
var ckptMagic = [4]byte{'G', 'C', 'K', '1'}

const (
	manifestName = "MANIFEST.json"
	// DefaultKeepGenerations is how many generations Prune retains by
	// default. The cluster rollback target is the last globally-committed
	// generation, which trails any single worker's newest by at most one, so
	// even two would suffice; the margin keeps forensics possible.
	DefaultKeepGenerations = 4
)

// CheckpointMeta describes one stored generation.
type CheckpointMeta struct {
	Gen       int    `json:"gen"`
	Superstep int    `json:"superstep"` // superstep about to execute on restore
	Bytes     int64  `json:"bytes"`
	CRC       uint32 `json:"crc"`
}

// ckptManifest is the on-disk index of generations, ascending by Gen.
type ckptManifest struct {
	Version     int              `json:"version"`
	Generations []CheckpointMeta `json:"generations"`
}

// CheckpointStore persists checkpoint generations in one directory. Safe
// for use by one process at a time (the worker owning the shard); methods
// are internally serialized.
type CheckpointStore struct {
	// CommitHook, when set, is invoked at the named stages of Save:
	// "written" after the temp file is written and synced but before the
	// atomic rename, and "committed" after the rename but before the
	// manifest update. It is the seam the process-kill chaos driver uses to
	// SIGKILL a worker mid-checkpoint and prove recovery falls back to the
	// previous generation.
	CommitHook func(stage string)

	dir string
	mu  sync.Mutex
	man ckptManifest
}

// OpenCheckpointStore opens (creating if needed) a checkpoint directory and
// loads its manifest. A missing manifest means an empty store; an unreadable
// one is an error (the directory is in an unknown state).
func OpenCheckpointStore(dir string) (*CheckpointStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: checkpoint dir: %w", err)
	}
	s := &CheckpointStore{dir: dir, man: ckptManifest{Version: 1}}
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case errors.Is(err, os.ErrNotExist):
		return s, nil
	case err != nil:
		return nil, fmt.Errorf("engine: read checkpoint manifest: %w", err)
	}
	if err := json.Unmarshal(raw, &s.man); err != nil {
		return nil, fmt.Errorf("engine: parse checkpoint manifest: %w", err)
	}
	sort.Slice(s.man.Generations, func(a, b int) bool {
		return s.man.Generations[a].Gen < s.man.Generations[b].Gen
	})
	return s, nil
}

// Dir returns the store's directory.
func (s *CheckpointStore) Dir() string { return s.dir }

func (s *CheckpointStore) genPath(gen int) string {
	return filepath.Join(s.dir, fmt.Sprintf("ckpt-%08d.bin", gen))
}

// Save persists one generation: temp file + fsync + atomic rename, then the
// manifest (same discipline). Re-saving an existing generation overwrites
// it. The data is framed as magic, a little-endian length, the payload, and
// a CRC32 (IEEE) of the payload.
func (s *CheckpointStore) Save(gen, superstep int, data []byte) (CheckpointMeta, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	meta := CheckpointMeta{
		Gen:       gen,
		Superstep: superstep,
		Bytes:     int64(len(data)),
		CRC:       crc32.ChecksumIEEE(data),
	}
	frame := make([]byte, 0, len(ckptMagic)+8+len(data)+4)
	frame = append(frame, ckptMagic[:]...)
	frame = binary.LittleEndian.AppendUint64(frame, uint64(len(data)))
	frame = append(frame, data...)
	frame = binary.LittleEndian.AppendUint32(frame, meta.CRC)

	final := s.genPath(gen)
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, frame); err != nil {
		return CheckpointMeta{}, err
	}
	if s.CommitHook != nil {
		s.CommitHook("written")
	}
	if err := os.Rename(tmp, final); err != nil {
		return CheckpointMeta{}, fmt.Errorf("engine: commit checkpoint gen %d: %w", gen, err)
	}
	if s.CommitHook != nil {
		s.CommitHook("committed")
	}

	gens := s.man.Generations[:0]
	for _, m := range s.man.Generations {
		if m.Gen != gen {
			gens = append(gens, m)
		}
	}
	s.man.Generations = append(gens, meta)
	sort.Slice(s.man.Generations, func(a, b int) bool {
		return s.man.Generations[a].Gen < s.man.Generations[b].Gen
	})
	if err := s.writeManifest(); err != nil {
		return CheckpointMeta{}, err
	}
	return meta, nil
}

// writeFileSync writes data to path and fsyncs before closing, so a rename
// never publishes a file whose bytes are still in the page cache only.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("engine: write checkpoint: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("engine: write checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("engine: sync checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("engine: close checkpoint: %w", err)
	}
	return nil
}

func (s *CheckpointStore) writeManifest() error {
	raw, err := json.MarshalIndent(&s.man, "", "  ")
	if err != nil {
		return err
	}
	final := filepath.Join(s.dir, manifestName)
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, append(raw, '\n')); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("engine: commit checkpoint manifest: %w", err)
	}
	return nil
}

// Load reads and verifies one generation. Any integrity failure — bad
// magic, truncated frame, payload shorter than its header claims, CRC
// mismatch — returns an error wrapping ErrCheckpointCorrupt; an absent
// generation returns ErrNoCheckpoint.
func (s *CheckpointStore) Load(gen int) ([]byte, CheckpointMeta, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loadLocked(gen)
}

func (s *CheckpointStore) loadLocked(gen int) ([]byte, CheckpointMeta, error) {
	var meta CheckpointMeta
	found := false
	for _, m := range s.man.Generations {
		if m.Gen == gen {
			meta, found = m, true
			break
		}
	}
	if !found {
		return nil, CheckpointMeta{}, fmt.Errorf("%w: generation %d not in manifest", ErrNoCheckpoint, gen)
	}
	frame, err := os.ReadFile(s.genPath(gen))
	if errors.Is(err, os.ErrNotExist) {
		return nil, CheckpointMeta{}, fmt.Errorf("%w: generation %d file missing", ErrCheckpointCorrupt, gen)
	}
	if err != nil {
		return nil, CheckpointMeta{}, fmt.Errorf("engine: read checkpoint gen %d: %w", gen, err)
	}
	hdr := len(ckptMagic) + 8
	if len(frame) < hdr+4 || [4]byte(frame[:4]) != ckptMagic {
		return nil, CheckpointMeta{}, fmt.Errorf("%w: gen %d: bad header (%d bytes)", ErrCheckpointCorrupt, gen, len(frame))
	}
	n := binary.LittleEndian.Uint64(frame[4:hdr])
	if uint64(len(frame)) != uint64(hdr)+n+4 {
		return nil, CheckpointMeta{}, fmt.Errorf("%w: gen %d: truncated (%d of %d payload bytes)",
			ErrCheckpointCorrupt, gen, len(frame)-hdr-4, n)
	}
	data := frame[hdr : hdr+int(n)]
	crc := binary.LittleEndian.Uint32(frame[hdr+int(n):])
	if got := crc32.ChecksumIEEE(data); got != crc {
		return nil, CheckpointMeta{}, fmt.Errorf("%w: gen %d: CRC mismatch (got %08x, want %08x)",
			ErrCheckpointCorrupt, gen, got, crc)
	}
	if meta.Bytes != int64(n) || meta.CRC != crc {
		return nil, CheckpointMeta{}, fmt.Errorf("%w: gen %d: manifest disagrees with file", ErrCheckpointCorrupt, gen)
	}
	return data, meta, nil
}

// LatestValid returns the newest generation that loads and verifies
// cleanly, walking the manifest past corrupt or missing generations — the
// fallback path a torn checkpoint write must land on. ErrNoCheckpoint when
// nothing valid remains.
func (s *CheckpointStore) LatestValid() ([]byte, CheckpointMeta, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.man.Generations) - 1; i >= 0; i-- {
		data, meta, err := s.loadLocked(s.man.Generations[i].Gen)
		if err == nil {
			return data, meta, nil
		}
		if !errors.Is(err, ErrCheckpointCorrupt) && !errors.Is(err, ErrNoCheckpoint) {
			return nil, CheckpointMeta{}, err
		}
	}
	return nil, CheckpointMeta{}, ErrNoCheckpoint
}

// Generations returns the manifest's generations, ascending.
func (s *CheckpointStore) Generations() []CheckpointMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]CheckpointMeta(nil), s.man.Generations...)
}

// Prune drops all but the newest keep generations (files and manifest
// entries); keep <= 0 means DefaultKeepGenerations.
func (s *CheckpointStore) Prune(keep int) error {
	if keep <= 0 {
		keep = DefaultKeepGenerations
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.man.Generations) <= keep {
		return nil
	}
	drop := s.man.Generations[:len(s.man.Generations)-keep]
	s.man.Generations = append([]CheckpointMeta(nil), s.man.Generations[len(s.man.Generations)-keep:]...)
	if err := s.writeManifest(); err != nil {
		return err
	}
	for _, m := range drop {
		if err := os.Remove(s.genPath(m.Gen)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	return nil
}
