package engine

import (
	"strings"
	"testing"
	"time"
)

// TestMetricsAddFoldsRuns: the baselines fold one engine run per snapshot
// (or batch) with Add — the run count, mean and max makespan must summarize
// the per-run distribution, and pre-Runs-era values (zero Runs) must count
// as one run each.
func TestMetricsAddFoldsRuns(t *testing.T) {
	var m Metrics
	m.Add(&Metrics{Supersteps: 3, Messages: 10, Makespan: 30 * time.Millisecond})
	m.Add(&Metrics{Supersteps: 2, Messages: 5, Makespan: 10 * time.Millisecond})
	m.Add(&Metrics{Supersteps: 1, Messages: 1, Makespan: 20 * time.Millisecond})

	if m.Runs != 3 {
		t.Errorf("Runs = %d, want 3", m.Runs)
	}
	if m.Supersteps != 6 || m.Messages != 16 {
		t.Errorf("sums wrong: supersteps=%d messages=%d", m.Supersteps, m.Messages)
	}
	if m.Makespan != 60*time.Millisecond {
		t.Errorf("Makespan = %v, want 60ms (total across runs)", m.Makespan)
	}
	if got := m.MeanMakespan(); got != 20*time.Millisecond {
		t.Errorf("MeanMakespan = %v, want 20ms", got)
	}
	if m.MaxMakespan != 30*time.Millisecond {
		t.Errorf("MaxMakespan = %v, want 30ms", m.MaxMakespan)
	}

	// Folding already-folded metrics keeps the run count and max honest.
	var total Metrics
	total.Add(&m)
	total.Add(&Metrics{Runs: 2, Makespan: 100 * time.Millisecond, MaxMakespan: 90 * time.Millisecond})
	if total.Runs != 5 {
		t.Errorf("nested Runs = %d, want 5", total.Runs)
	}
	if total.MaxMakespan != 90*time.Millisecond {
		t.Errorf("nested MaxMakespan = %v, want 90ms", total.MaxMakespan)
	}
	if got := total.MeanMakespan(); got != 32*time.Millisecond {
		t.Errorf("nested MeanMakespan = %v, want 32ms", got)
	}
}

// TestMetricsAddNormalizesReceiver: a hand-assembled single run used as the
// accumulator (zero Runs, zero MaxMakespan) must count itself — its own
// makespan enters the max and the run count, not just o's.
func TestMetricsAddNormalizesReceiver(t *testing.T) {
	m := Metrics{Supersteps: 4, Makespan: 40 * time.Millisecond}
	m.Add(&Metrics{Supersteps: 1, Makespan: 10 * time.Millisecond})
	if m.Runs != 2 {
		t.Errorf("Runs = %d, want 2 (receiver run + added run)", m.Runs)
	}
	if m.MaxMakespan != 40*time.Millisecond {
		t.Errorf("MaxMakespan = %v, want 40ms (the receiver's own run)", m.MaxMakespan)
	}
	if got := m.MeanMakespan(); got != 25*time.Millisecond {
		t.Errorf("MeanMakespan = %v, want 25ms", got)
	}
}

func TestMetricsStringRunsSuffix(t *testing.T) {
	single := &Metrics{Makespan: 10 * time.Millisecond}
	if s := single.String(); strings.Contains(s, "runs=") {
		t.Errorf("single-run String should omit runs summary: %s", s)
	}
	m := &Metrics{}
	m.Add(&Metrics{Makespan: 10 * time.Millisecond})
	m.Add(&Metrics{Makespan: 30 * time.Millisecond})
	m.Add(&Metrics{Makespan: 20 * time.Millisecond})
	s := m.String()
	for _, want := range []string{"runs=3", "mean_makespan=20ms", "max_makespan=30ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}
