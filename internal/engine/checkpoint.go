package engine

import (
	"fmt"

	"graphite/internal/codec"
	"graphite/internal/obs"
)

// Snapshotter is the optional Program extension checkpointing requires
// (Config.CheckpointEvery). Snapshot returns an opaque deep-enough copy of
// all user vertex state; Restore replaces the live state with a previously
// returned snapshot. A snapshot may be restored more than once (a later
// superstep can fail again before the next checkpoint), so implementations
// must not hand out mutable internals that a replay would corrupt.
type Snapshotter interface {
	Snapshot() any
	Restore(snapshot any)
}

// Resettable is an optional Transport extension. Reset discards every
// in-flight frame so a rolled-back exchange can be replayed from a clean
// slate; without it the engine refuses to roll back past a transport
// failure, because frames from the aborted superstep would desynchronize the
// replay (the loopback TCP mesh is in this category — a broken socket needs
// a re-dial, which is out of scope, like master failure).
type Resettable interface {
	Reset() error
}

// checkpoint is one recovery point: everything Run mutates between
// supersteps, captured at a barrier (no frames in flight, outboxes empty).
type checkpoint struct {
	superstep  int
	phase      int
	halted     bool
	metrics    Metrics // absolute registry totals at capture time
	classBytes [codec.NumIntervalClasses]int64
	aggVals    map[string]any
	program    any           // Snapshotter-provided user state
	inbox      [][][]Message // [worker][slot]
	active     [][]bool      // [worker][slot]
}

// capture records a recovery point for the state "about to execute superstep
// e.superstp". It runs only at barriers, never concurrently with workers.
func (e *Engine) capture() {
	c := &checkpoint{
		superstep: e.superstp,
		phase:     e.phase,
		halted:    e.halted,
		metrics:   e.rawView(),
		aggVals:   make(map[string]any, len(e.aggVals)),
		program:   e.program.(Snapshotter).Snapshot(),
		inbox:     make([][][]Message, len(e.workers)),
		active:    make([][]bool, len(e.workers)),
	}
	for i, ctr := range e.ec.classBytes {
		c.classBytes[i] = ctr.Load()
	}
	for k, v := range e.aggVals {
		c.aggVals[k] = v
	}
	for i, w := range e.workers {
		c.inbox[i] = make([][]Message, len(w.inbox))
		for s, sl := range w.inbox {
			if sl != nil && len(sl.msgs) > 0 {
				// Checkpoints copy out of the pooled slab: a slab is recycled
				// long before a rollback might need the snapshot again.
				c.inbox[i][s] = append([]Message(nil), sl.msgs...)
			}
		}
		c.active[i] = append([]bool(nil), w.active...)
	}
	e.ckpt = c
	e.checkpoints++
	e.ec.checkpoints.Inc()
	if e.traced {
		e.tracer.Emit(obs.Checkpoint{Superstep: e.superstp, Index: e.checkpoints})
	}
}

// restoreCheckpoint rewinds the engine to the latest checkpoint: superstep
// counter, phase, metrics, merged aggregates, user state, inboxes and active
// flags; outboxes, aggregator partials and per-worker metric partials from
// the aborted superstep are discarded.
func (e *Engine) restoreCheckpoint() {
	c := e.ckpt
	e.superstp = c.superstep
	e.phase = c.phase
	e.halted = c.halted
	e.storeRaw(c.metrics, c.classBytes)
	e.aggVals = make(map[string]any, len(c.aggVals))
	for k, v := range c.aggVals {
		e.aggVals[k] = v
	}
	e.program.(Snapshotter).Restore(c.program)
	for _, agg := range e.aggs {
		agg.drain()
	}
	for i, w := range e.workers {
		for s := range w.inbox {
			// Recycle whatever the failed superstep delivered — including
			// payloads decoded from corrupted frames; put zeroes the slab so
			// nothing poisoned survives in the pool — then rebuild the slot
			// from a fresh copy of the snapshot (a snapshot can be restored
			// more than once, so it must never share a buffer with live state).
			if sl := w.inbox[s]; sl != nil {
				w.inbox[s] = nil
				msgArena.put(sl)
			}
			if msgs := c.inbox[i][s]; len(msgs) > 0 {
				sl := msgArena.get()
				sl.msgs = append(sl.msgs, msgs...)
				w.inbox[s] = sl
			}
		}
		copy(w.active, c.active[i])
		// The dense frontier mirrors the active bitmap; rebuild it so the
		// replayed compute phase schedules exactly the restored activations.
		w.rebuildFrontier()
		for d := range w.outbox {
			w.outbox[d] = w.outbox[d][:0]
		}
		w.resetPartials()
	}
}

// rollback attempts to recover a failed superstep by rewinding to the latest
// checkpoint and reports whether the run should resume. needsReset says the
// failure happened during the exchange phase, which may have left frames in
// flight; recovery then additionally requires a Resettable transport.
func (e *Engine) rollback(needsReset bool) bool {
	if e.ckpt == nil {
		return false
	}
	if needsReset && e.cfg.Transport != nil {
		r, ok := e.cfg.Transport.(Resettable)
		if !ok {
			return false
		}
		if err := r.Reset(); err != nil {
			return false
		}
	}
	max := e.cfg.MaxRecoveries
	if max <= 0 {
		max = DefaultMaxRecoveries
	}
	if e.recoveries >= max {
		e.errMu.Lock()
		e.runErr = fmt.Errorf("%w: superstep %d still failing after %d recoveries: %w",
			ErrRecoveryExhausted, e.superstp, e.recoveries, e.runErr)
		e.errMu.Unlock()
		return false
	}
	failed := e.superstp
	reason := ""
	if err := e.takeErr(); err != nil {
		reason = err.Error()
	}
	e.recoveries++
	e.ec.recoveries.Inc()
	e.restoreCheckpoint()
	e.clearErr()
	if e.traced {
		e.tracer.Emit(obs.Recovery{
			Failed:   failed,
			ResumeAt: e.superstp,
			Attempt:  e.recoveries,
			Reason:   reason,
			Reset:    needsReset && e.cfg.Transport != nil,
		})
	}
	return true
}
